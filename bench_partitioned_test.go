package grefar_test

import (
	"fmt"
	"testing"

	"grefar/internal/controller"
	"grefar/internal/controlplane"
	"grefar/internal/core"
	"grefar/internal/hollow"
	"grefar/internal/sched"
)

// partitionedBenchCells is the (fleet size, partition count) sweep recorded
// in BENCH_distributed.json. BenchmarkHollowSlot at the same agent counts is
// the single-controller baseline these cells are read against.
var partitionedBenchCells = []struct{ agents, parts int }{
	{500, 4},
	{1000, 4},
	{1000, 8},
	{2000, 8},
}

// BenchmarkPartitionedSlot measures one slot tick of the partitioned control
// plane against a hollow fleet: P concurrent controller partitions each
// batch-gathering from their owned agents, deciding against the shared
// versioned queue board, committing optimistically, and batch-scattering
// their allocations. Compared with BenchmarkHollowSlot/agents=N it shows
// what partition concurrency buys (and what the commit protocol costs) on
// the slot-tick critical path; make bench-compare fails on >15% regressions.
func BenchmarkPartitionedSlot(b *testing.B) {
	for _, cell := range partitionedBenchCells {
		b.Run(fmt.Sprintf("agents=%d/parts=%d", cell.agents, cell.parts), func(b *testing.B) {
			in, err := hollow.NewScaleInputs(2012, cell.agents, 4096)
			if err != nil {
				b.Fatal(err)
			}
			fleet, err := hollow.NewFleet(in, hollow.Options{})
			if err != nil {
				b.Fatal(err)
			}
			pl, err := controlplane.New(in.Cluster, fleet.Conns(), controlplane.Config{
				Partitions: cell.parts,
				NewScheduler: func() (sched.Scheduler, error) {
					return core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
				},
				Policy: controller.Degrade,
			})
			if err != nil {
				fleet.Close()
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i % 4096
				if _, _, _, err := pl.RunSlot(t, in.Workload.Arrivals(t)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fleet.Close()
		})
	}
}
