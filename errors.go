package grefar

import (
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/sim"
	"grefar/internal/solve"
)

// Sentinel errors re-exported from the implementation packages. Every
// validation or solver failure wraps one of these, so callers can classify
// outcomes with errors.Is regardless of how much slot or site context has
// been layered on top:
//
//	if _, err := grefar.New(c, grefar.WithV(v)); errors.Is(err, grefar.ErrInvalidCluster) { ... }
var (
	// ErrInvalidCluster marks a structurally inconsistent system description.
	ErrInvalidCluster = model.ErrInvalidCluster
	// ErrInvalidState marks a slot state malformed for its cluster.
	ErrInvalidState = model.ErrInvalidState
	// ErrInfeasibleAction marks an action violating the model constraints.
	ErrInfeasibleAction = model.ErrInfeasibleAction
	// ErrBadConfig marks a rejected scheduler knob (negative V or beta).
	ErrBadConfig = core.ErrBadConfig
	// ErrBadInputs marks rejected simulation inputs or options.
	ErrBadInputs = sim.ErrBadInputs
	// ErrNotConverged marks a solver stopping at its iteration cap with the
	// tolerance unmet (only surfaced under FWOptions.RequireConvergence).
	ErrNotConverged = solve.ErrNotConverged
)

// NotConvergedError carries the solver, iteration count, and residual of a
// convergence failure; retrieve it with errors.As.
type NotConvergedError = solve.NotConvergedError
