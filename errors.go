package grefar

import (
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/serve"
	"grefar/internal/sim"
	"grefar/internal/solve"
)

// Sentinel errors re-exported from the implementation packages. Every
// validation or solver failure wraps one of these, so callers can classify
// outcomes with errors.Is regardless of how much slot or site context has
// been layered on top:
//
//	if _, err := grefar.New(c, grefar.WithV(v)); errors.Is(err, grefar.ErrInvalidCluster) { ... }
var (
	// ErrInvalidCluster marks a structurally inconsistent system description.
	ErrInvalidCluster = model.ErrInvalidCluster
	// ErrInvalidState marks a slot state malformed for its cluster.
	ErrInvalidState = model.ErrInvalidState
	// ErrInfeasibleAction marks an action violating the model constraints.
	ErrInfeasibleAction = model.ErrInfeasibleAction
	// ErrBadConfig marks a rejected scheduler knob (negative V or beta).
	ErrBadConfig = core.ErrBadConfig
	// ErrBadInputs marks rejected simulation inputs or options.
	ErrBadInputs = sim.ErrBadInputs
	// ErrNotConverged marks a solver stopping at its iteration cap with the
	// tolerance unmet (only surfaced under FWOptions.RequireConvergence).
	ErrNotConverged = solve.ErrNotConverged
)

// Serving-mode sentinels (see Open, Restore, and the Session methods).
var (
	// ErrCorruptSnapshot marks a checkpoint whose framing, checksum, or
	// payload failed validation; restore leaves the session untouched.
	ErrCorruptSnapshot = serve.ErrCorruptSnapshot
	// ErrNoSnapshot marks a restore source holding no snapshot at all.
	ErrNoSnapshot = serve.ErrNoSnapshot
	// ErrSnapshotVersion marks a checkpoint written by an incompatible
	// (newer) snapshot format version.
	ErrSnapshotVersion = serve.ErrSnapshotVersion
	// ErrSnapshotMismatch marks a well-formed checkpoint taken under a
	// different cluster shape than the session restoring it.
	ErrSnapshotMismatch = serve.ErrSnapshotMismatch
	// ErrBadJob marks a rejected Submit batch (unknown type, negative
	// count); batches are atomic, so nothing from the batch is admitted.
	ErrBadJob = serve.ErrBadJob
	// ErrSessionClosed marks any operation on a closed Session.
	ErrSessionClosed = serve.ErrClosed
)

// NotConvergedError carries the solver, iteration count, and residual of a
// convergence failure; retrieve it with errors.As.
type NotConvergedError = solve.NotConvergedError
