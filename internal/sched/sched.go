// Package sched defines the scheduler abstraction shared by the GreFar
// algorithm and its baselines, and implements the two comparison policies of
// the paper's evaluation: the myopic "Always" policy (section VI-B3), which
// schedules jobs immediately whenever resources are available, and the
// optimal T-step lookahead benchmark of Theorem 1 (eqs. 15-18), computed by
// linear programming with full future information.
package sched

import (
	"grefar/internal/model"
	"grefar/internal/queue"
)

// Scheduler decides the slot action from purely per-slot observable inputs:
// the revealed data center state x(t) and the queue backlogs Theta(t).
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the action z(t) for slot t. Implementations must treat
	// st and q as read-only.
	Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error)
}

// routeBudget returns how many type-j jobs may still be routed to data
// center i in one slot given the bound r_max (0 means unbounded, represented
// here by a large budget).
func routeBudget(jt model.JobType) int {
	if jt.MaxRoute > 0 {
		return jt.MaxRoute
	}
	return 1 << 30
}

// processBudget returns the per-slot processing bound for a (data center,
// job type) pair, capped at the jobs physically queued.
func processBudget(jt model.JobType, queued float64) float64 {
	b := queued
	if jt.MaxProcess > 0 && jt.MaxProcess < b {
		b = jt.MaxProcess
	}
	return b
}

// drainScale returns the largest uniform factor in [0,1] by which the given
// per-type processing budgets can be executed at site i without violating
// the CPU capacity or any auxiliary resource capacity (footnote 3). The
// drain-everything baselines use it so they stay feasible on clusters with
// vector demands.
func drainScale(c *model.Cluster, i int, budgets []float64, capacity float64) float64 {
	scale := 1.0
	var want float64
	for j, b := range budgets {
		want += b * c.JobTypes[j].Demand
	}
	if want > capacity && want > 0 {
		scale = capacity / want
	}
	for r := 0; r < c.Aux(); r++ {
		var use float64
		for j, b := range budgets {
			if r < len(c.JobTypes[j].AuxDemand) {
				use += b * c.JobTypes[j].AuxDemand[r]
			}
		}
		if cap := c.DataCenters[i].AuxCapacity[r]; use > cap && use > 0 {
			if s := cap / use; s < scale {
				scale = s
			}
		}
	}
	return scale
}
