package sched

import (
	"math"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

func refCluster(t *testing.T) *model.Cluster {
	t.Helper()
	c := model.NewReferenceCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func stateWith(c *model.Cluster, avail float64, prices []float64) *model.State {
	st := model.NewState(c)
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(i); k++ {
			st.Avail[i][k] = avail
		}
		st.Price[i] = prices[i]
	}
	return st
}

func emptyLengths(c *model.Cluster) queue.Lengths {
	l := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range l.Local {
		l.Local[i] = make([]float64, c.J())
	}
	return l
}

func TestNewAlwaysRejectsInvalidCluster(t *testing.T) {
	bad := model.NewReferenceCluster()
	bad.JobTypes[0].Demand = -1
	if _, err := NewAlways(bad); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestAlwaysRoutesEverythingImmediately(t *testing.T) {
	c := refCluster(t)
	a, err := NewAlways(c)
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{0.9, 0.9, 0.9}) // price must not matter
	q := emptyLengths(c)
	q.Central[0] = 12
	q.Central[5] = 4
	act, err := a.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	var routed0, routed5 int
	for i := 0; i < c.N(); i++ {
		routed0 += act.Route[i][0]
		routed5 += act.Route[i][5]
	}
	if routed0 != 12 || routed5 != 4 {
		t.Errorf("routed %d and %d, want 12 and 4", routed0, routed5)
	}
	if a.Name() != "always" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestAlwaysProcessesQueuedWorkRegardlessOfPrice(t *testing.T) {
	c := refCluster(t)
	a, err := NewAlways(c)
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{99, 99, 99})
	q := emptyLengths(c)
	q.Local[0][0] = 7
	q.Local[2][3] = 2
	act, err := a.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] < 7-1e-9 {
		t.Errorf("processed %v of 7 queued", act.Process[0][0])
	}
	if act.Process[2][3] < 2-1e-9 {
		t.Errorf("processed %v of 2 queued", act.Process[2][3])
	}
	if err := act.Validate(c, st); err != nil {
		t.Errorf("infeasible action: %v", err)
	}
}

func TestAlwaysScalesDownWhenOverCapacity(t *testing.T) {
	c := refCluster(t)
	a, err := NewAlways(c)
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 5, []float64{0.4, 0.4, 0.4}) // dc1 capacity = 5 work units
	q := emptyLengths(c)
	q.Local[0][1] = 10 // demand 4 each: 40 work queued, 5 available
	act, err := a.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := act.WorkAt(c, 0); got > 5+1e-9 {
		t.Errorf("scheduled %v work on capacity 5", got)
	}
	if act.Process[0][1] <= 0 {
		t.Error("should still process a fraction")
	}
	if err := act.Validate(c, st); err != nil {
		t.Errorf("infeasible action: %v", err)
	}
}

func TestAlwaysSpreadsLoadAcrossSites(t *testing.T) {
	c := refCluster(t)
	a, err := NewAlways(c)
	if err != nil {
		t.Fatal(err)
	}
	// Load heavy relative to capacity (capacities 10/7.5/11.5) so the
	// slack-balancing router must use every site.
	st := stateWith(c, 10, []float64{0.4, 0.4, 0.4})
	q := emptyLengths(c)
	q.Central[0] = 25
	act, err := a.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		if act.Route[i][0] == 0 {
			t.Errorf("site %d received nothing; Always should spread by slack: %v", i, act.Route)
		}
	}
}

func TestLookaheadValidation(t *testing.T) {
	c := refCluster(t)
	if _, err := NewLookaheadPlanner(c, 0); err == nil {
		t.Error("zero frame length accepted")
	}
	bad := model.NewReferenceCluster()
	bad.Accounts = nil
	if _, err := NewLookaheadPlanner(bad, 4); err == nil {
		t.Error("invalid cluster accepted")
	}
	p, err := NewLookaheadPlanner(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.T() != 4 {
		t.Errorf("T = %d, want 4", p.T())
	}
	if _, err := p.FrameCost(nil, nil); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := p.AverageCost(make([]*model.State, 3), make([][]int, 3)); err == nil {
		t.Error("non-multiple horizon accepted")
	}
}

func TestLookaheadPicksCheapSlot(t *testing.T) {
	// Two slots, one job type, prices 1.0 then 0.2: the lookahead must do
	// all the work in the cheap slot.
	c := &model.Cluster{
		DataCenters: []model.DataCenter{{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}}},
		JobTypes:    []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxArrival: 10, MaxProcess: 100}},
		Accounts:    []model.Account{{Name: "a", Weight: 1}},
	}
	p, err := NewLookaheadPlanner(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	mkState := func(price float64) *model.State {
		st := model.NewState(c)
		st.Avail[0][0] = 100
		st.Price[0] = price
		return st
	}
	states := []*model.State{mkState(1.0), mkState(0.2)}
	arrivals := [][]int{{10}, {0}}
	got, err := p.FrameCost(states, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// 10 work units at price 0.2, power/speed 1, averaged over 2 slots = 1.0.
	if math.Abs(got-1.0) > 1e-6 {
		t.Errorf("FrameCost = %v, want 1.0 (all work in cheap slot)", got)
	}
}

func TestLookaheadPicksCheapSite(t *testing.T) {
	// One slot, two sites with equal price but different efficiency: work
	// must land on the energy-efficient site.
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 0.5}}},
		},
		JobTypes: []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0, 1}, Account: 0, MaxArrival: 10, MaxProcess: 100}},
		Accounts: []model.Account{{Name: "a", Weight: 1}},
	}
	p, err := NewLookaheadPlanner(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0], st.Avail[1][0] = 100, 100
	st.Price[0], st.Price[1] = 0.5, 0.5
	got, err := p.FrameCost([]*model.State{st}, [][]int{{10}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-6 { // 10 * 0.5(power) * 0.5(price)
		t.Errorf("FrameCost = %v, want 2.5", got)
	}
}

func TestLookaheadInfeasibleFrame(t *testing.T) {
	c := &model.Cluster{
		DataCenters: []model.DataCenter{{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}}},
		JobTypes:    []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 100}},
		Accounts:    []model.Account{{Name: "a", Weight: 1}},
	}
	p, err := NewLookaheadPlanner(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0] = 1 // capacity 1, demand 10
	st.Price[0] = 1
	if _, err := p.FrameCost([]*model.State{st}, [][]int{{10}}); err == nil {
		t.Error("infeasible frame accepted")
	}
}

func TestLookaheadAverageCost(t *testing.T) {
	c := &model.Cluster{
		DataCenters: []model.DataCenter{{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}}},
		JobTypes:    []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 100}},
		Accounts:    []model.Account{{Name: "a", Weight: 1}},
	}
	p, err := NewLookaheadPlanner(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(price float64) *model.State {
		st := model.NewState(c)
		st.Avail[0][0] = 100
		st.Price[0] = price
		return st
	}
	states := []*model.State{mk(1), mk(0.5), mk(0.4), mk(0.1)}
	arrivals := [][]int{{4}, {0}, {4}, {0}}
	got, err := p.AverageCost(states, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 1: 4 work at 0.5 -> avg 1.0. Frame 2: 4 at 0.1 -> avg 0.2.
	if math.Abs(got-0.6) > 1e-6 {
		t.Errorf("AverageCost = %v, want 0.6", got)
	}
}

func TestLongerLookaheadNeverCostsMore(t *testing.T) {
	// Doubling T can only merge frames and reduce the optimal cost when the
	// boundary constraints bind; it must never increase it.
	c := &model.Cluster{
		DataCenters: []model.DataCenter{{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}}},
		JobTypes:    []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 100}},
		Accounts:    []model.Account{{Name: "a", Weight: 1}},
	}
	mk := func(price float64) *model.State {
		st := model.NewState(c)
		st.Avail[0][0] = 100
		st.Price[0] = price
		return st
	}
	states := []*model.State{mk(1), mk(0.9), mk(0.3), mk(0.2)}
	arrivals := [][]int{{5}, {5}, {0}, {0}}
	p2, _ := NewLookaheadPlanner(c, 2)
	p4, _ := NewLookaheadPlanner(c, 4)
	c2, err := p2.AverageCost(states, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := p4.AverageCost(states, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if c4 > c2+1e-9 {
		t.Errorf("T=4 cost %v exceeds T=2 cost %v", c4, c2)
	}
}

func TestFrameCostFairReducesToLinearAtZeroBeta(t *testing.T) {
	c := refCluster(t)
	p, err := NewLookaheadPlanner(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*model.State, 4)
	arrivals := make([][]int, 4)
	for tt := range states {
		st := model.NewState(c)
		for i := 0; i < c.N(); i++ {
			st.Avail[i][0] = 80
			st.Price[i] = 0.3 + 0.1*float64(i) + 0.05*float64(tt)
		}
		states[tt] = st
		arrivals[tt] = make([]int, c.J())
		arrivals[tt][0] = 5
		arrivals[tt][3] = 2
	}
	base, err := p.FrameCost(states, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.FrameCostFair(states, arrivals, 0, accountWeights(c), solve.FWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-base) > 1e-9 {
		t.Errorf("beta=0 FrameCostFair %v != FrameCost %v", got, base)
	}
}

func TestFrameCostFairMonotoneInBeta(t *testing.T) {
	// g = e - beta*f with f <= 0, so the optimal frame cost is
	// non-decreasing in beta; and the energy-optimal plan upper-bounds it.
	c := refCluster(t)
	p, err := NewLookaheadPlanner(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*model.State, 3)
	arrivals := make([][]int, 3)
	for tt := range states {
		st := model.NewState(c)
		for i := 0; i < c.N(); i++ {
			st.Avail[i][0] = 60
			st.Price[i] = 0.4 + 0.1*float64((tt+i)%3)
		}
		states[tt] = st
		arrivals[tt] = make([]int, c.J())
		arrivals[tt][0] = 6
		arrivals[tt][2] = 3
	}
	gamma := accountWeights(c)
	opts := solve.FWOptions{MaxIters: 400, Tol: 1e-10}
	prev := -math.MaxFloat64
	for _, beta := range []float64{0, 1, 10, 50} {
		got, err := p.FrameCostFair(states, arrivals, beta, gamma, opts)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		if got < prev-1e-6 {
			t.Errorf("frame cost decreased with beta: %v -> %v", prev, got)
		}
		prev = got
	}
}

func TestFrameCostFairValidation(t *testing.T) {
	c := refCluster(t)
	p, _ := NewLookaheadPlanner(c, 2)
	if _, err := p.FrameCostFair(nil, nil, -1, accountWeights(c), solve.FWOptions{}); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := p.FrameCostFair(make([]*model.State, 2), make([][]int, 2), 1, []float64{1}, solve.FWOptions{}); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func accountWeights(c *model.Cluster) []float64 {
	out := make([]float64, c.M())
	for m, a := range c.Accounts {
		out[m] = a.Weight
	}
	return out
}
