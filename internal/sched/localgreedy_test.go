package sched

import (
	"testing"

	"grefar/internal/model"
)

func TestNewLocalGreedyValidation(t *testing.T) {
	bad := model.NewReferenceCluster()
	bad.Accounts = nil
	if _, err := NewLocalGreedy(bad); err == nil {
		t.Error("invalid cluster accepted")
	}
	c := refCluster(t)
	l, err := NewLocalGreedy(c)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "local-greedy" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLocalGreedyRoutesToCheapestSite(t *testing.T) {
	c := refCluster(t)
	l, err := NewLocalGreedy(c)
	if err != nil {
		t.Fatal(err)
	}
	// With equal prices, dc2 (cost/work 0.8*price) is the cheapest site.
	st := stateWith(c, 100, []float64{0.5, 0.5, 0.5})
	q := emptyLengths(c)
	q.Central[0] = 10
	act, err := l.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Route[1][0] != 10 {
		t.Errorf("Route = %v, want all 10 at dc2", act.Route)
	}

	// Invert the advantage with prices: make dc2 very expensive.
	st = stateWith(c, 100, []float64{0.5, 2.0, 0.5})
	act, err = l.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Route[1][0] != 0 {
		t.Errorf("routed to expensive dc2: %v", act.Route)
	}
	// dc1 cost/work 0.5 < dc3 0.5*1.043: dc1 wins.
	if act.Route[0][0] != 10 {
		t.Errorf("Route = %v, want all 10 at dc1", act.Route)
	}
}

func TestLocalGreedySpillsOverWhenFull(t *testing.T) {
	c := refCluster(t)
	l, err := NewLocalGreedy(c)
	if err != nil {
		t.Fatal(err)
	}
	// dc2 capacity is tiny; overflow must go to the next-cheapest site.
	st := stateWith(c, 100, []float64{0.5, 0.5, 0.5})
	st.Avail[1][0] = 4 // capacity 3 work units
	q := emptyLengths(c)
	q.Central[0] = 10 // demand 1 each
	act, err := l.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for i := 0; i < c.N(); i++ {
		total += act.Route[i][0]
	}
	if total != 10 {
		t.Errorf("routed %d, want 10", total)
	}
	if act.Route[1][0] > 3 {
		t.Errorf("overfilled dc2: %v", act.Route)
	}
	if act.Route[0][0] == 0 {
		t.Errorf("no spill-over to dc1: %v", act.Route)
	}
}

func TestLocalGreedyProcessesImmediately(t *testing.T) {
	c := refCluster(t)
	l, err := NewLocalGreedy(c)
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{0.9, 0.9, 0.9})
	q := emptyLengths(c)
	q.Local[2][4] = 6
	act, err := l.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[2][4] < 6-1e-9 {
		t.Errorf("processed %v of 6", act.Process[2][4])
	}
	if err := act.Validate(c, st); err != nil {
		t.Errorf("infeasible action: %v", err)
	}
}
