package sched

import (
	"fmt"

	"grefar/internal/model"
)

// LookaheadPlanner computes the cost of the optimal T-step lookahead policy
// of Theorem 1: for each frame of T slots it solves the offline problem
// (15)-(18) with perfect knowledge of the frame's data center states and job
// arrivals, yielding the frame optimum G*_r. The average of G*_r over frames
// is the benchmark GreFar provably approaches within O(1/V).
//
// The integer routing variables are relaxed to continuous ones, which can
// only lower the benchmark cost; the Theorem 1 comparison made by the test
// suite and benchmarks is therefore conservative.
type LookaheadPlanner struct {
	cluster *model.Cluster
	t       int
}

// NewLookaheadPlanner builds a planner with frame length t >= 1.
func NewLookaheadPlanner(c *model.Cluster, t int) (*LookaheadPlanner, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if t < 1 {
		return nil, fmt.Errorf("frame length %d is not positive", t)
	}
	return &LookaheadPlanner{cluster: c, t: t}, nil
}

// T returns the frame length.
func (p *LookaheadPlanner) T() int { return p.t }

// FrameCost solves the frame problem (15)-(18) for one frame: states[t] and
// arrivals[t] describe the frame's T slots. It returns G*_r, the minimum
// time-averaged energy cost of serving all of the frame's arrivals within
// the frame. Fairness is not included (beta = 0), matching the evaluation
// experiments that compare against the lookahead benchmark.
func (p *LookaheadPlanner) FrameCost(states []*model.State, arrivals [][]int) (float64, error) {
	c := p.cluster
	if len(states) != p.t || len(arrivals) != p.t {
		return 0, fmt.Errorf("frame needs %d states and arrivals, got %d and %d", p.t, len(states), len(arrivals))
	}

	layout := p.frameLayout()
	costs := make([]float64, layout.total)
	for tt := 0; tt < p.t; tt++ {
		off := layout.bBase(tt)
		for i := 0; i < c.N(); i++ {
			for _, stype := range c.DataCenters[i].Servers {
				costs[off] = states[tt].Price[i] * stype.Power
				off++
			}
		}
	}
	x, err := p.solveFrameLP(states, arrivals, costs)
	if err != nil {
		return 0, err
	}
	var obj float64
	for v, cv := range costs {
		obj += cv * x[v]
	}
	return obj / float64(p.t), nil
}

// AverageCost splits a horizon of R*T slots into R frames and returns
// (1/R) sum_r G*_r, the benchmark of Theorem 1's inequality (24).
func (p *LookaheadPlanner) AverageCost(states []*model.State, arrivals [][]int) (float64, error) {
	if len(states) != len(arrivals) {
		return 0, fmt.Errorf("got %d states but %d arrival rows", len(states), len(arrivals))
	}
	if len(states) == 0 || len(states)%p.t != 0 {
		return 0, fmt.Errorf("horizon %d is not a positive multiple of frame length %d", len(states), p.t)
	}
	r := len(states) / p.t
	var sum float64
	for f := 0; f < r; f++ {
		g, err := p.FrameCost(states[f*p.t:(f+1)*p.t], arrivals[f*p.t:(f+1)*p.t])
		if err != nil {
			return 0, fmt.Errorf("frame %d: %w", f, err)
		}
		sum += g
	}
	return sum / float64(r), nil
}
