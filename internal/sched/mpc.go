package sched

import (
	"fmt"

	"grefar/internal/lp"
	"grefar/internal/model"
	"grefar/internal/queue"
)

// Oracle supplies the future the MPC plans against: the data center state
// and job arrivals of any slot. In experiments it is backed by the actual
// traces (a perfect forecast); a production deployment would plug in a
// predictor here, which is exactly the approach of the prediction-based
// provisioning work the paper cites (Guenter et al.) — OracleMPC therefore
// upper-bounds what any such predictor-driven scheduler could achieve.
type Oracle interface {
	// Future returns the state and arrivals of slot t.
	Future(t int) (*model.State, []int, error)
}

// OracleMPC is a receding-horizon (model-predictive control) scheduler: each
// slot it solves a window LP over the next Window slots with full knowledge
// of prices, availability, and arrivals, then executes only the first slot
// of the plan. Unlike GreFar it needs the future; unlike the T-step
// lookahead benchmark it is an executable online policy with real queues.
type OracleMPC struct {
	cluster *model.Cluster
	oracle  Oracle
	window  int
	// unservedPenalty prices leaving a unit of work unserved at the window
	// edge, forcing the plan to serve everything feasible.
	unservedPenalty float64
}

var _ Scheduler = (*OracleMPC)(nil)

// NewOracleMPC builds the policy. window >= 1 is the planning horizon in
// slots.
func NewOracleMPC(c *model.Cluster, oracle Oracle, window int) (*OracleMPC, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, fmt.Errorf("nil oracle")
	}
	if window < 1 {
		return nil, fmt.Errorf("window %d is not positive", window)
	}
	// Penalty above any plausible marginal energy cost per unit work.
	var maxRate float64
	for _, dc := range c.DataCenters {
		for _, s := range dc.Servers {
			if r := s.CostPerWork(); r > maxRate {
				maxRate = r
			}
		}
	}
	return &OracleMPC{
		cluster:         c,
		oracle:          oracle,
		window:          window,
		unservedPenalty: 100 * (1 + maxRate),
	}, nil
}

// Name implements Scheduler.
func (m *OracleMPC) Name() string { return fmt.Sprintf("oracle-mpc(W=%d)", m.window) }

// Decide implements Scheduler: solve the window plan, execute its first
// slot.
func (m *OracleMPC) Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error) {
	c := m.cluster

	// Gather the window's future (slot t itself comes from the live state).
	states := make([]*model.State, m.window)
	arrivals := make([][]int, m.window)
	states[0] = st
	arrivals[0] = make([]int, c.J()) // slot-t arrivals land after this slot's decisions
	for w := 1; w < m.window; w++ {
		futureState, _, err := m.oracle.Future(t + w)
		if err != nil {
			return nil, fmt.Errorf("oracle at slot %d: %w", t+w, err)
		}
		states[w] = futureState
		// Arrivals during slot t+w-1 become routable work at slot t+w.
		_, fa, err := m.oracle.Future(t + w - 1)
		if err != nil {
			return nil, fmt.Errorf("oracle at slot %d: %w", t+w-1, err)
		}
		arrivals[w] = fa
	}

	plan, err := m.solveWindow(states, arrivals, q)
	if err != nil {
		return nil, err
	}

	act := model.NewAction(c)
	// Execute the plan's first slot: process what the plan says (capped at
	// queue content), and route central jobs toward the sites the plan
	// wants to process them at over the window.
	for i := 0; i < c.N(); i++ {
		var work float64
		for j := 0; j < c.J(); j++ {
			h := plan.process[i][j]
			if h > q.Local[i][j] {
				h = q.Local[i][j]
			}
			act.Process[i][j] = h
			work += h * c.JobTypes[j].Demand
		}
		busy, _, err := model.Provision(c.DataCenters[i], st.Avail[i], work)
		if err != nil {
			return nil, fmt.Errorf("data center %d: %w", i, err)
		}
		act.Busy[i] = busy
	}
	for j := 0; j < c.J(); j++ {
		m.routeByPlanShares(j, int(q.Central[j]), plan.windowWork[j], act)
	}
	return act, nil
}

// routeByPlanShares splits available central jobs across eligible sites
// proportionally to the plan's window processing per site.
func (m *OracleMPC) routeByPlanShares(j, available int, shares []float64, act *model.Action) {
	c := m.cluster
	if available <= 0 {
		return
	}
	jt := c.JobTypes[j]
	var total float64
	for _, i := range jt.Eligible {
		total += shares[i]
	}
	budget := routeBudget(jt)
	if total <= 0 {
		// Plan serves nothing in-window (e.g. far-future work): park the
		// jobs at the first eligible site.
		r := available
		if r > budget {
			r = budget
		}
		act.Route[jt.Eligible[0]][j] = r
		return
	}
	assigned := 0
	for x, i := range jt.Eligible {
		var r int
		if x == len(jt.Eligible)-1 {
			r = available - assigned
		} else {
			r = int(float64(available) * shares[i] / total)
		}
		if r > budget {
			r = budget
		}
		act.Route[i][j] = r
		assigned += r
	}
}

// windowPlan is the first-slot slice and per-type site totals of a solved
// window.
type windowPlan struct {
	process    [][]float64 // h[0][i][j]
	windowWork [][]float64 // per job type j: work planned per site over the window
}

// solveWindow builds and solves the window LP:
//
//	min  sum_t price*power*b  +  penalty * sum_j d_j * rem_j
//	s.t. sum_{t,i} h_{t,i,j} + rem_j >= backlog_j + window arrivals_j
//	     per-slot capacity coupling and bounds
func (m *OracleMPC) solveWindow(states []*model.State, arrivals [][]int, q queue.Lengths) (*windowPlan, error) {
	c := m.cluster
	w := m.window
	hVars := w * c.N() * c.J()
	kTotal := 0
	for i := 0; i < c.N(); i++ {
		kTotal += c.K(i)
	}
	total := hVars + w*kTotal + c.J() // + rem_j
	hIndex := func(t, i, j int) int { return (t*c.N()+i)*c.J() + j }
	bBase := func(t int) int { return hVars + t*kTotal }
	remIndex := func(j int) int { return hVars + w*kTotal + j }

	prob := lp.NewProblem(total)
	costs := make([]float64, total)
	for tt := 0; tt < w; tt++ {
		off := bBase(tt)
		for i := 0; i < c.N(); i++ {
			for _, stype := range c.DataCenters[i].Servers {
				costs[off] = states[tt].Price[i] * stype.Power
				off++
			}
		}
	}
	for j := 0; j < c.J(); j++ {
		costs[remIndex(j)] = m.unservedPenalty * c.JobTypes[j].Demand
	}
	if err := prob.SetObjective(costs); err != nil {
		return nil, err
	}

	for j := 0; j < c.J(); j++ {
		demand := q.Central[j]
		for i := 0; i < c.N(); i++ {
			demand += q.Local[i][j]
		}
		for tt := 0; tt < w; tt++ {
			demand += float64(arrivals[tt][j])
		}
		idx := []int{remIndex(j)}
		coef := []float64{1}
		for tt := 0; tt < w; tt++ {
			for _, i := range c.JobTypes[j].Eligible {
				idx = append(idx, hIndex(tt, i, j))
				coef = append(coef, 1)
			}
		}
		if err := prob.AddSparseConstraint(idx, coef, lp.GE, demand); err != nil {
			return nil, err
		}
	}
	for tt := 0; tt < w; tt++ {
		for i := 0; i < c.N(); i++ {
			idx := make([]int, 0, c.J()+c.K(i))
			coef := make([]float64, 0, c.J()+c.K(i))
			for j := 0; j < c.J(); j++ {
				idx = append(idx, hIndex(tt, i, j))
				coef = append(coef, c.JobTypes[j].Demand)
			}
			off := bBase(tt)
			for ii := 0; ii < i; ii++ {
				off += c.K(ii)
			}
			for k, stype := range c.DataCenters[i].Servers {
				idx = append(idx, off+k)
				coef = append(coef, -stype.Speed)
				if err := prob.AddUpperBound(off+k, states[tt].Avail[i][k]); err != nil {
					return nil, err
				}
			}
			if err := prob.AddSparseConstraint(idx, coef, lp.LE, 0); err != nil {
				return nil, err
			}
			for r := 0; r < c.Aux(); r++ {
				var aIdx []int
				var aCoef []float64
				for j := 0; j < c.J(); j++ {
					if r < len(c.JobTypes[j].AuxDemand) && c.JobTypes[j].AuxDemand[r] > 0 {
						aIdx = append(aIdx, hIndex(tt, i, j))
						aCoef = append(aCoef, c.JobTypes[j].AuxDemand[r])
					}
				}
				if len(aIdx) == 0 {
					continue
				}
				if err := prob.AddSparseConstraint(aIdx, aCoef, lp.LE, c.DataCenters[i].AuxCapacity[r]); err != nil {
					return nil, err
				}
			}
			for j := 0; j < c.J(); j++ {
				jt := c.JobTypes[j]
				hi := float64(0)
				if jt.EligibleSet(i) {
					hi = jt.MaxProcess
					if hi <= 0 {
						hi = 1e9
					}
				}
				if err := prob.AddUpperBound(hIndex(tt, i, j), hi); err != nil {
					return nil, err
				}
			}
		}
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("window LP is %v", sol.Status)
	}

	plan := &windowPlan{
		process:    make([][]float64, c.N()),
		windowWork: make([][]float64, c.J()),
	}
	for i := 0; i < c.N(); i++ {
		plan.process[i] = make([]float64, c.J())
		for j := 0; j < c.J(); j++ {
			plan.process[i][j] = sol.X[hIndex(0, i, j)]
		}
	}
	for j := 0; j < c.J(); j++ {
		plan.windowWork[j] = make([]float64, c.N())
		for i := 0; i < c.N(); i++ {
			for tt := 0; tt < w; tt++ {
				plan.windowWork[j][i] += sol.X[hIndex(tt, i, j)]
			}
		}
	}
	return plan, nil
}

// TraceOracle backs an Oracle with simulation inputs (perfect foresight).
type TraceOracle struct {
	// States returns x(t); Arrivals returns a_j(t).
	States   func(t int) (*model.State, error)
	Arrivals func(t int) []int
}

var _ Oracle = (*TraceOracle)(nil)

// Future implements Oracle.
func (o *TraceOracle) Future(t int) (*model.State, []int, error) {
	st, err := o.States(t)
	if err != nil {
		return nil, nil, err
	}
	return st, o.Arrivals(t), nil
}
