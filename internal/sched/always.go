package sched

import (
	"fmt"

	"grefar/internal/model"
	"grefar/internal/queue"
)

// Always is the paper's comparison policy (section VI-B3): it schedules jobs
// immediately whenever there are resources available, ignoring electricity
// prices entirely. Queued jobs are routed to the eligible data center with
// the most spare capacity and every local queue is drained as fast as the
// slot's capacity allows, so most jobs run in the slot after they arrive and
// the average delay is about one — at the cost of buying energy at whatever
// the current price happens to be.
type Always struct {
	cluster *model.Cluster
}

var _ Scheduler = (*Always)(nil)

// NewAlways builds the policy for a cluster.
func NewAlways(c *model.Cluster) (*Always, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Always{cluster: c}, nil
}

// Name implements Scheduler.
func (a *Always) Name() string { return "always" }

// Decide implements Scheduler.
func (a *Always) Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error) {
	c := a.cluster
	act := model.NewAction(c)

	// Per-DC load ledger: work already queued locally plus work assigned by
	// routing this slot, used to spread new jobs onto the least-loaded
	// eligible site.
	load := make([]float64, c.N())
	capacity := make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		capacity[i] = st.Capacity(c, i)
		for j := 0; j < c.J(); j++ {
			load[i] += q.Local[i][j] * c.JobTypes[j].Demand
		}
	}

	// Route every queued job to the eligible data center with the most
	// remaining slack.
	for j := 0; j < c.J(); j++ {
		jt := c.JobTypes[j]
		budget := routeBudget(jt)
		remaining := int(q.Central[j])
		for n := 0; n < remaining; n++ {
			best := -1
			var bestSlack float64
			for _, i := range jt.Eligible {
				if act.Route[i][j] >= budget {
					continue
				}
				slack := capacity[i] - load[i]
				if best < 0 || slack > bestSlack {
					best, bestSlack = i, slack
				}
			}
			if best < 0 {
				break // every eligible site is at its routing bound
			}
			act.Route[best][j]++
			load[best] += jt.Demand
		}
	}

	// Process as much queued work as the slot's capacity (CPU and any
	// auxiliary resources) allows, scaling all job types at a site down
	// proportionally when over capacity.
	for i := 0; i < c.N(); i++ {
		budgets := make([]float64, c.J())
		for j := 0; j < c.J(); j++ {
			if !c.JobTypes[j].EligibleSet(i) {
				continue
			}
			budgets[j] = processBudget(c.JobTypes[j], q.Local[i][j])
		}
		scale := drainScale(c, i, budgets, capacity[i])
		var work float64
		for j := 0; j < c.J(); j++ {
			act.Process[i][j] = budgets[j] * scale
			work += act.Process[i][j] * c.JobTypes[j].Demand
		}
		busy, _, err := model.Provision(c.DataCenters[i], st.Avail[i], work)
		if err != nil {
			return nil, fmt.Errorf("data center %d: %w", i, err)
		}
		act.Busy[i] = busy
	}
	return act, nil
}
