package sched

import (
	"testing"

	"grefar/internal/model"
)

// mpcOracle backs an Oracle with fixed price/availability/arrival series.
type mpcOracle struct {
	c        *model.Cluster
	prices   [][]float64 // [t][i]
	avail    float64
	arrivals [][]int // [t][j]
}

func (o *mpcOracle) Future(t int) (*model.State, []int, error) {
	st := model.NewState(o.c)
	idx := t % len(o.prices)
	for i := 0; i < o.c.N(); i++ {
		for k := 0; k < o.c.K(i); k++ {
			st.Avail[i][k] = o.avail
		}
		st.Price[i] = o.prices[idx][i]
	}
	arr := make([]int, o.c.J())
	copy(arr, o.arrivals[t%len(o.arrivals)])
	return st, arr, nil
}

func singleSiteCluster() *model.Cluster {
	return &model.Cluster{
		DataCenters: []model.DataCenter{{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}}},
		JobTypes:    []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 1000}},
		Accounts:    []model.Account{{Name: "a", Weight: 1}},
	}
}

func TestNewOracleMPCValidation(t *testing.T) {
	c := singleSiteCluster()
	o := &mpcOracle{c: c, prices: [][]float64{{1}}, avail: 10, arrivals: [][]int{{0}}}
	if _, err := NewOracleMPC(c, nil, 4); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := NewOracleMPC(c, o, 0); err == nil {
		t.Error("zero window accepted")
	}
	bad := singleSiteCluster()
	bad.JobTypes[0].Demand = -1
	if _, err := NewOracleMPC(bad, o, 4); err == nil {
		t.Error("invalid cluster accepted")
	}
	m, err := NewOracleMPC(c, o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "oracle-mpc(W=4)" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestOracleMPCWaitsForCheapSlot(t *testing.T) {
	// Prices alternate expensive (slot even) / cheap (slot odd). With a
	// 2-slot window and backlog that fits in one slot, the MPC must defer
	// processing at the expensive slot 0 and process at the cheap slot 1.
	c := singleSiteCluster()
	o := &mpcOracle{
		c:        c,
		prices:   [][]float64{{1.0}, {0.2}},
		avail:    100,
		arrivals: [][]int{{0}, {0}},
	}
	m, err := NewOracleMPC(c, o, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := o.Future(0)
	if err != nil {
		t.Fatal(err)
	}
	q := emptyLengths(c)
	q.Local[0][0] = 10
	act, err := m.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] > 1e-9 {
		t.Errorf("processed %v at the expensive slot; should defer", act.Process[0][0])
	}

	// At the cheap slot the plan must process everything.
	st1, _, err := o.Future(1)
	if err != nil {
		t.Fatal(err)
	}
	act, err = m.Decide(1, st1, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] < 10-1e-6 {
		t.Errorf("processed %v at the cheap slot, want 10", act.Process[0][0])
	}
}

func TestOracleMPCServesEverythingInWindow(t *testing.T) {
	// Flat prices: no reason to defer; backlog drains immediately.
	c := singleSiteCluster()
	o := &mpcOracle{c: c, prices: [][]float64{{0.5}}, avail: 100, arrivals: [][]int{{0}}}
	m, err := NewOracleMPC(c, o, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, _, _ := o.Future(0)
	q := emptyLengths(c)
	q.Local[0][0] = 7
	act, err := m.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] < 7-1e-6 {
		t.Errorf("processed %v with flat prices, want all 7", act.Process[0][0])
	}
}

func TestOracleMPCRoutesByPlanShares(t *testing.T) {
	// Two sites, second much cheaper: central jobs must route there.
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 0.4}}},
		},
		JobTypes: []model.JobType{{Name: "j", Demand: 1, Eligible: []int{0, 1}, Account: 0, MaxProcess: 1000}},
		Accounts: []model.Account{{Name: "a", Weight: 1}},
	}
	o := &mpcOracle{c: c, prices: [][]float64{{0.5, 0.5}}, avail: 100, arrivals: [][]int{{0}}}
	m, err := NewOracleMPC(c, o, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _, _ := o.Future(0)
	q := emptyLengths(c)
	q.Central[0] = 8
	act, err := m.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Route[1][0] != 8 {
		t.Errorf("Route = %v, want all 8 at the cheap site", act.Route)
	}
}
