package sched

import (
	"fmt"
	"sort"

	"grefar/internal/model"
	"grefar/internal/queue"
)

// LocalGreedy is the related-work baseline the paper contrasts with
// (section II): policies that "perform local optimization at each time
// period without considering the electricity variations across time
// periods". Each slot it routes jobs to the eligible site with the lowest
// *current* energy cost per unit work and processes every queued job
// immediately, exactly like Always — so it exploits price differences
// across space but never across time, and offers no bound on long-run cost.
type LocalGreedy struct {
	cluster *model.Cluster
}

var _ Scheduler = (*LocalGreedy)(nil)

// NewLocalGreedy builds the policy for a cluster.
func NewLocalGreedy(c *model.Cluster) (*LocalGreedy, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &LocalGreedy{cluster: c}, nil
}

// Name implements Scheduler.
func (l *LocalGreedy) Name() string { return "local-greedy" }

// Decide implements Scheduler.
func (l *LocalGreedy) Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error) {
	c := l.cluster
	act := model.NewAction(c)

	// Rank sites by the current marginal energy cost per unit work of their
	// cheapest segment.
	type ranked struct {
		site int
		cost float64
	}
	costs := make([]ranked, c.N())
	for i := 0; i < c.N(); i++ {
		costs[i] = ranked{site: i, cost: model.EnergyPerWork(c.DataCenters[i], st.Avail[i], st.Price[i], 0)}
	}
	sort.Slice(costs, func(a, b int) bool {
		if costs[a].cost != costs[b].cost {
			return costs[a].cost < costs[b].cost
		}
		return costs[a].site < costs[b].site
	})

	// Route every queued job to the cheapest eligible site with remaining
	// spare capacity, falling over to the next cheapest.
	load := make([]float64, c.N())
	capacity := make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		capacity[i] = st.Capacity(c, i)
		for j := 0; j < c.J(); j++ {
			load[i] += q.Local[i][j] * c.JobTypes[j].Demand
		}
	}
	for j := 0; j < c.J(); j++ {
		jt := c.JobTypes[j]
		budget := routeBudget(jt)
		remaining := int(q.Central[j])
		for _, rk := range costs {
			if remaining <= 0 {
				break
			}
			if !jt.EligibleSet(rk.site) {
				continue
			}
			// Fill up to the site's spare capacity in whole jobs.
			spare := capacity[rk.site] - load[rk.site]
			fit := int(spare / jt.Demand)
			if fit > remaining {
				fit = remaining
			}
			if fit > budget {
				fit = budget
			}
			if fit <= 0 {
				continue
			}
			act.Route[rk.site][j] = fit
			load[rk.site] += float64(fit) * jt.Demand
			remaining -= fit
		}
		// Anything that fits nowhere goes to the cheapest eligible site
		// anyway (it will queue there).
		if remaining > 0 {
			for _, rk := range costs {
				if jt.EligibleSet(rk.site) && act.Route[rk.site][j]+remaining <= budget {
					act.Route[rk.site][j] += remaining
					remaining = 0
					break
				}
			}
		}
	}

	// Process everything queued, scaled to CPU and auxiliary capacity —
	// same drain rule as Always.
	for i := 0; i < c.N(); i++ {
		budgets := make([]float64, c.J())
		for j := 0; j < c.J(); j++ {
			if !c.JobTypes[j].EligibleSet(i) {
				continue
			}
			budgets[j] = processBudget(c.JobTypes[j], q.Local[i][j])
		}
		scale := drainScale(c, i, budgets, capacity[i])
		var work float64
		for j := 0; j < c.J(); j++ {
			act.Process[i][j] = budgets[j] * scale
			work += act.Process[i][j] * c.JobTypes[j].Demand
		}
		busy, _, err := model.Provision(c.DataCenters[i], st.Avail[i], work)
		if err != nil {
			return nil, fmt.Errorf("data center %d: %w", i, err)
		}
		act.Busy[i] = busy
	}
	return act, nil
}
