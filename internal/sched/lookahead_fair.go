package sched

import (
	"fmt"

	"grefar/internal/lp"
	"grefar/internal/model"
	"grefar/internal/solve"
)

// FrameCostFair extends the T-step lookahead benchmark to beta > 0: it
// minimizes the frame-average energy-fairness cost (1/T) sum_t g(t) with
// g(t) = e(t) - beta*f(t) and the paper's quadratic fairness function, over
// the same frame polytope (16)-(18). The problem is a convex QP; it is
// solved by Frank-Wolfe whose linear oracle is the frame LP, starting from
// the beta = 0 optimum (a feasible vertex).
func (p *LookaheadPlanner) FrameCostFair(states []*model.State, arrivals [][]int, beta float64, gamma []float64, opts solve.FWOptions) (float64, error) {
	if beta < 0 {
		return 0, fmt.Errorf("negative beta %v", beta)
	}
	if beta == 0 {
		return p.FrameCost(states, arrivals)
	}
	c := p.cluster
	if len(gamma) != c.M() {
		return 0, fmt.Errorf("got %d weights, cluster has %d accounts", len(gamma), c.M())
	}
	if len(states) != p.t || len(arrivals) != p.t {
		return 0, fmt.Errorf("frame needs %d states and arrivals, got %d and %d", p.t, len(states), len(arrivals))
	}

	layout := p.frameLayout()

	// Objective: linear energy costs on b plus per-slot fairness squares on h.
	obj := &solve.Quadratic{Linear: make([]float64, layout.total)}
	for tt := 0; tt < p.t; tt++ {
		off := layout.bBase(tt)
		for i := 0; i < c.N(); i++ {
			for _, stype := range c.DataCenters[i].Servers {
				obj.Linear[off] = states[tt].Price[i] * stype.Power
				off++
			}
		}
		totalRes := states[tt].TotalResource(c)
		if totalRes <= 0 {
			continue
		}
		for m := 0; m < c.M(); m++ {
			var idx []int
			var coef []float64
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					if c.JobTypes[j].Account != m {
						continue
					}
					idx = append(idx, layout.hIndex(tt, i, j))
					coef = append(coef, c.JobTypes[j].Demand/totalRes)
				}
			}
			obj.Squares = append(obj.Squares, solve.AffineSquare{
				Weight: beta, Index: idx, Coef: coef, Offset: -gamma[m],
			})
		}
	}
	if err := obj.Validate(layout.total); err != nil {
		return 0, fmt.Errorf("building frame objective: %w", err)
	}

	// Feasible start: the beta = 0 frame optimum.
	x0, err := p.solveFrameLP(states, arrivals, obj.Linear)
	if err != nil {
		return 0, fmt.Errorf("frame warm start: %w", err)
	}

	var oracleErr error
	oracle := func(grad []float64, out []float64) {
		x, err := p.solveFrameLP(states, arrivals, grad)
		if err != nil {
			oracleErr = err
			return
		}
		copy(out, x)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 200
	}
	res, err := solve.FrankWolfe(obj, oracle, x0, opts)
	if err != nil {
		return 0, err
	}
	if oracleErr != nil {
		return 0, fmt.Errorf("frame oracle: %w", oracleErr)
	}
	// The fairness squares omit the constant for slots where an account has
	// zero variables (none here) and obj already contains the full squared
	// terms, so the value is exactly sum_t [e(t) + beta*sum_m dev^2] =
	// sum_t g(t). Average over the frame.
	return res.Value / float64(p.t), nil
}

// frameLayout captures the flattened variable indexing shared by the frame
// LP and QP.
type frameLayout struct {
	t, n, j, kTotal, total int
	hVars                  int
}

func (p *LookaheadPlanner) frameLayout() frameLayout {
	c := p.cluster
	l := frameLayout{t: p.t, n: c.N(), j: c.J()}
	l.hVars = p.t * c.N() * c.J()
	for i := 0; i < c.N(); i++ {
		l.kTotal += c.K(i)
	}
	l.total = l.hVars + p.t*l.kTotal
	return l
}

func (l frameLayout) hIndex(t, i, j int) int { return (t*l.n+i)*l.j + j }
func (l frameLayout) bBase(t int) int        { return l.hVars + t*l.kTotal }

// solveFrameLP minimizes an arbitrary linear objective over the frame
// polytope (16)-(18) and returns the optimal point. It is both the beta = 0
// warm start and the Frank-Wolfe oracle of FrameCostFair.
func (p *LookaheadPlanner) solveFrameLP(states []*model.State, arrivals [][]int, costs []float64) ([]float64, error) {
	c := p.cluster
	layout := p.frameLayout()
	prob := lp.NewProblem(layout.total)
	if err := prob.SetObjective(costs); err != nil {
		return nil, err
	}
	// Frame service constraints.
	for j := 0; j < c.J(); j++ {
		var demand float64
		for tt := 0; tt < p.t; tt++ {
			demand += float64(arrivals[tt][j])
		}
		var idx []int
		var coef []float64
		for tt := 0; tt < p.t; tt++ {
			for _, i := range c.JobTypes[j].Eligible {
				idx = append(idx, layout.hIndex(tt, i, j))
				coef = append(coef, 1)
			}
		}
		if err := prob.AddSparseConstraint(idx, coef, lp.GE, demand); err != nil {
			return nil, err
		}
	}
	// Per-slot capacity and bounds.
	for tt := 0; tt < p.t; tt++ {
		for i := 0; i < c.N(); i++ {
			idx := make([]int, 0, c.J()+c.K(i))
			coef := make([]float64, 0, c.J()+c.K(i))
			for j := 0; j < c.J(); j++ {
				idx = append(idx, layout.hIndex(tt, i, j))
				coef = append(coef, c.JobTypes[j].Demand)
			}
			off := layout.bBase(tt)
			for ii := 0; ii < i; ii++ {
				off += c.K(ii)
			}
			for k, stype := range c.DataCenters[i].Servers {
				idx = append(idx, off+k)
				coef = append(coef, -stype.Speed)
				if err := prob.AddUpperBound(off+k, states[tt].Avail[i][k]); err != nil {
					return nil, err
				}
			}
			if err := prob.AddSparseConstraint(idx, coef, lp.LE, 0); err != nil {
				return nil, err
			}
			for r := 0; r < c.Aux(); r++ {
				var aIdx []int
				var aCoef []float64
				for j := 0; j < c.J(); j++ {
					if r < len(c.JobTypes[j].AuxDemand) && c.JobTypes[j].AuxDemand[r] > 0 {
						aIdx = append(aIdx, layout.hIndex(tt, i, j))
						aCoef = append(aCoef, c.JobTypes[j].AuxDemand[r])
					}
				}
				if len(aIdx) == 0 {
					continue
				}
				if err := prob.AddSparseConstraint(aIdx, aCoef, lp.LE, c.DataCenters[i].AuxCapacity[r]); err != nil {
					return nil, err
				}
			}
			for j := 0; j < c.J(); j++ {
				jt := c.JobTypes[j]
				hi := float64(0)
				if jt.EligibleSet(i) {
					hi = jt.MaxProcess
					if hi <= 0 {
						hi = 1e9
					}
				}
				if err := prob.AddUpperBound(layout.hIndex(tt, i, j), hi); err != nil {
					return nil, err
				}
			}
		}
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.X, nil
	case lp.Infeasible:
		return nil, fmt.Errorf("frame is infeasible: arrivals exceed frame capacity (slackness violated)")
	default:
		return nil, fmt.Errorf("frame LP is %v", sol.Status)
	}
}
