package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLObserver writes one JSON object per SlotEvent, newline-delimited —
// the offline-analysis twin of the Prometheus exposition. The first write
// error sticks and silences all later events; check Err after the run.
type JSONLObserver struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLObserver builds an observer writing to w. The caller owns w's
// lifecycle (flush/close).
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{enc: json.NewEncoder(w)}
}

// ObserveSlot implements SlotObserver.
func (o *JSONLObserver) ObserveSlot(ev SlotEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return
	}
	o.err = o.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (o *JSONLObserver) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}
