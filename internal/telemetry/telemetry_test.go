package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("grefar_test_total", "A test counter.", "kind")
	c.With("a").Add(2)
	c.With("a").Inc()
	c.With("b").Inc()
	c.With("b").Add(-5) // ignored: counters are monotone
	g := reg.Gauge("grefar_test_gauge", "A test gauge.")
	g.With().Set(1.5)
	g.With().Add(-0.5)

	out := expose(t, reg)
	for _, want := range []string{
		"# HELP grefar_test_total A test counter.\n",
		"# TYPE grefar_test_total counter\n",
		`grefar_test_total{kind="a"} 3` + "\n",
		`grefar_test_total{kind="b"} 1` + "\n",
		"# TYPE grefar_test_gauge gauge\n",
		"grefar_test_gauge 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("grefar_test_iters", "Iterations.", []float64{1, 5, 10}, "solver")
	fw := h.With("fw")
	fw.Observe(1)
	fw.Observe(3)
	fw.Observe(7)
	fw.Observe(40)

	out := expose(t, reg)
	for _, want := range []string{
		"# TYPE grefar_test_iters histogram\n",
		`grefar_test_iters_bucket{solver="fw",le="1"} 1` + "\n",
		`grefar_test_iters_bucket{solver="fw",le="5"} 2` + "\n",
		`grefar_test_iters_bucket{solver="fw",le="10"} 3` + "\n",
		`grefar_test_iters_bucket{solver="fw",le="+Inf"} 4` + "\n",
		`grefar_test_iters_sum{solver="fw"} 51` + "\n",
		`grefar_test_iters_count{solver="fw"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("grefar_same_total", "One.", "x")
	b := reg.Counter("grefar_same_total", "Two.", "x")
	a.With("v").Inc()
	b.With("v").Inc()
	if got := a.With("v").Value(); got != 2 {
		t.Errorf("shared counter = %v, want 2", got)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("grefar_clash_total", "Counter.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type did not panic")
		}
	}()
	reg.Gauge("grefar_clash_total", "Gauge.")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("grefar_esc", "Esc.", "name").With(`a"b\c` + "\nd").Set(1)
	out := expose(t, reg)
	want := `grefar_esc{name="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatValue(-Inf) = %q", got)
	}
	if got := formatValue(0.25); got != "0.25" {
		t.Errorf("formatValue(0.25) = %q", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("grefar_conc_total", "Concurrent.", "w")
	h := reg.Histogram("grefar_conc_hist", "Concurrent.", []float64{10, 100}, "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := string(rune('a' + w%2))
			for n := 0; n < 1000; n++ {
				c.With(lab).Inc()
				h.With(lab).Observe(float64(n % 150))
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != 8000 {
		t.Errorf("total count = %v, want 8000", got)
	}
}
