// Package telemetry is the live-observability layer of the GreFar system:
// stdlib-only counters, gauges, and histograms behind a Registry with
// Prometheus text exposition, plus the SlotObserver hook the scheduler, the
// simulator, and the distributed controller/agent loops invoke each slot.
//
// The offline prefix-average statistics in internal/metrics answer "what did
// the run average to"; this package answers "what is the deployment doing
// right now": queue backlogs Theta(t), the drift and V*g(t) penalty
// components of the per-slot objective (paper eq. 14), per-data-center
// energy spend, and solver health (which solver ran, how many iterations,
// whether it converged).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the Prometheus metric family type.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registering
// the same family twice returns the existing one, so independent components
// can share a registry without coordinating.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric family: a name, help text, a type, and children keyed
// by label values.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	children map[string]*sample
	order    []string
}

// sample is one child of a family: a concrete label-value combination and
// its metric.
type sample struct {
	labelValues []string
	value       *atomicFloat // counters and gauges
	hist        *Histogram   // histograms
}

// register returns the family, creating it if absent. A name collision with
// a different type or label set is a programming error and panics.
func (r *Registry) register(name, help string, typ metricType, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*sample),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the sample for the label values, creating it on first use.
func (f *family) child(labelValues []string) *sample {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q got %d label values, want %d",
			f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[key]; ok {
		return s
	}
	s := &sample{labelValues: append([]string(nil), labelValues...)}
	if f.typ == typeHistogram {
		s.hist = newHistogram(f.bounds)
	} else {
		s.value = &atomicFloat{}
	}
	f.children[key] = s
	f.order = append(f.order, key)
	return s
}

// atomicFloat is a float64 updated atomically via its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) add(delta float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ fam *family }

// Counter registers (or fetches) a counter family. labels are the label
// names; a family with no labels has a single child reached via With().
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.fam.child(labelValues).value}
}

// Counter is one monotonically increasing series.
type Counter struct{ v *atomicFloat }

// Add increases the counter; negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.add(delta)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// GaugeVec is a family of gauges.
type GaugeVec struct{ fam *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.fam.child(labelValues).value}
}

// Gauge is one series that can go up and down.
type Gauge struct{ v *atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the gauge value.
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// HistogramVec is a family of histograms sharing bucket bounds.
type HistogramVec struct{ fam *family }

// Histogram registers (or fetches) a histogram family with the given
// strictly increasing bucket upper bounds (observations above the last bound
// land in the implicit +Inf bucket).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.child(labelValues).hist
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4). Families and children are emitted in sorted order so the
// output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family (header plus all children).
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]*sample, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	sort.Sort(&sampleSorter{keys, children})
	for _, s := range children {
		if f.typ == typeHistogram {
			f.writeHistogram(b, s)
			continue
		}
		b.WriteString(f.name)
		writeLabels(b, f.labels, s.labelValues, "", 0)
		b.WriteByte(' ')
		b.WriteString(formatValue(s.value.load()))
		b.WriteByte('\n')
	}
}

// writeHistogram renders one histogram child as cumulative le-buckets plus
// _sum and _count series.
func (f *family) writeHistogram(b *strings.Builder, s *sample) {
	bounds, counts, sum, total := s.hist.snapshot()
	var cum float64
	for i, bound := range bounds {
		cum += counts[i]
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.labelValues, "le", bound)
		b.WriteByte(' ')
		b.WriteString(formatValue(cum))
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_sum", f.name)
	writeLabels(b, f.labels, s.labelValues, "", 0)
	fmt.Fprintf(b, " %s\n", formatValue(sum))
	fmt.Fprintf(b, "%s_count", f.name)
	writeLabels(b, f.labels, s.labelValues, "", 0)
	fmt.Fprintf(b, " %s\n", formatValue(total))
}

// writeLabels renders the {k="v",...} block, appending an le label when
// leName is non-empty. Nothing is written when there are no labels at all.
func writeLabels(b *strings.Builder, names, values []string, leName string, le float64) {
	if len(names) == 0 && leName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// sampleSorter sorts children by their label-value key.
type sampleSorter struct {
	keys     []string
	children []*sample
}

func (s *sampleSorter) Len() int           { return len(s.keys) }
func (s *sampleSorter) Less(a, b int) bool { return s.keys[a] < s.keys[b] }
func (s *sampleSorter) Swap(a, b int) {
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
	s.children[a], s.children[b] = s.children[b], s.children[a]
}

// formatValue renders a float the way Prometheus expects, including the
// "+Inf" spelling for the overflow bucket bound.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes help text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
