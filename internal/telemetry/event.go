package telemetry

// Event origins: which loop emitted a SlotEvent. The same registry can
// absorb events from several origins at once; counters are labeled by
// origin so a scheduler-side event never double-counts a simulator-side one.
const (
	// OriginDecide marks events emitted by core.GreFar.Decide: the slot
	// objective decomposition and solver health, observed before the action
	// is applied.
	OriginDecide = "decide"
	// OriginSim marks events emitted by sim.Run after applying the slot
	// action: realized energy, fairness, flows, and post-slot backlogs.
	OriginSim = "sim"
	// OriginController marks events emitted by the distributed controller's
	// run loop, the deployment analogue of OriginSim.
	OriginController = "controller"
	// OriginAgent marks events emitted by one data-center agent when it
	// executes an allocation; only that site's fields are populated.
	OriginAgent = "agent"
)

// Solver names used in SolveStats.Solver and as the "solver" label value of
// the grefar_solver_* metric families.
const (
	// SolverGreedy is the closed-form greedy exchange for linear slots.
	SolverGreedy = "greedy"
	// SolverLP is the simplex LP used when auxiliary resources are present.
	SolverLP = "simplex"
	// SolverFrankWolfe is the Frank-Wolfe convex solver used when beta > 0.
	SolverFrankWolfe = "frank-wolfe"
	// SolverProjGrad is the projected-gradient solver (lookahead baselines).
	SolverProjGrad = "projected-gradient"
	// SolverDecomposed is the block-decomposed slot solver: per-data-center
	// subproblems coordinated by sharing ADMM, finished by a Frank-Wolfe
	// polish.
	SolverDecomposed = "decomposed"
)

// Warm-start outcomes used in SolveStats.Warm. One of these is recorded per
// slot when the scheduler runs with warm-starting enabled; the field stays
// empty otherwise.
const (
	// WarmHit: the previous slot's iterate was feasible as-is and seeded the
	// solve unchanged.
	WarmHit = "hit"
	// WarmRepaired: the previous iterate violated the current slot's caps
	// (availability shrank) and was clamped/rescaled back into the feasible
	// set before seeding the solve.
	WarmRepaired = "repaired"
	// WarmFallback: no usable previous iterate (first slot, availability
	// collapse, or non-finite state) — the solve cold-started from zero.
	WarmFallback = "fallback"
)

// SolveStats describes how the per-slot optimization was solved. It is
// attached to OriginDecide events. Every field beyond the base four is
// omitted from the JSON encoding when it carries its zero value, so traces
// recorded with the solver extensions off are byte-identical to traces from
// before the extensions existed.
type SolveStats struct {
	// Solver names the algorithm that produced the processing decision:
	// "greedy" (the closed-form exchange for linear slots), "simplex" (the
	// general LP under auxiliary resources), or "frank-wolfe" (the convex
	// program when beta > 0).
	Solver string `json:"solver"`
	// Iterations is the iteration count (1 for the one-shot solvers).
	Iterations int `json:"iterations"`
	// Converged reports whether the solver met its stopping tolerance.
	Converged bool `json:"converged"`
	// Residual is the convergence residual: the Frank-Wolfe duality gap, an
	// upper bound on the suboptimality of the slot decision. Zero for exact
	// solvers.
	Residual float64 `json:"residual"`

	// Variant names the solver variant when it departs from the default
	// (e.g. "away-step" Frank-Wolfe); empty for the vanilla method.
	Variant string `json:"variant,omitempty"`

	// Outer is the number of outer coordination rounds of a decomposed solve
	// (the ADMM iterations); zero for monolithic solvers.
	Outer int `json:"outer,omitempty"`

	// Warm records this slot's warm-start outcome (WarmHit, WarmRepaired, or
	// WarmFallback); empty when warm-starting is off.
	Warm string `json:"warm,omitempty"`
	// WarmHits, WarmRepairs, and WarmFallbacks are the scheduler's cumulative
	// warm-start outcome counts, including this slot.
	WarmHits      int `json:"warm_hits,omitempty"`
	WarmRepairs   int `json:"warm_repairs,omitempty"`
	WarmFallbacks int `json:"warm_fallbacks,omitempty"`

	// Options carries the effective solver options, attached once per
	// scheduler (on its first event) and only when some option departs from
	// the defaults.
	Options *SolverOptions `json:"options,omitempty"`
}

// SolverOptions is the effective solver configuration a scheduler resolved
// at construction: explicit knobs with defaults already substituted.
type SolverOptions struct {
	// MaxIters is the effective iteration cap.
	MaxIters int `json:"max_iters"`
	// Tol is the effective duality-gap tolerance (0 = solver default).
	Tol float64 `json:"tol"`
	// AwaySteps reports whether the away-step Frank-Wolfe variant is on.
	AwaySteps bool `json:"away_steps"`
	// WarmStart reports whether cross-slot warm-starting is on.
	WarmStart bool `json:"warm_start"`
	// Solver names the configured solver kind when it departs from the
	// automatic selection ("monolithic", "sparse", "decomposed").
	Solver string `json:"solver,omitempty"`
	// Workers is the configured block-solve worker count of the decomposed
	// solver; zero (omitted) means serial.
	Workers int `json:"workers,omitempty"`
}

// SlotEvent is the structured record one control-loop iteration emits.
// Fields outside the common block are populated per origin: OriginDecide
// carries the objective decomposition and solver stats, OriginSim and
// OriginController carry realized flows and costs, OriginAgent carries a
// single site's view.
type SlotEvent struct {
	// Slot is the time slot t.
	Slot int `json:"slot"`
	// Origin is one of the Origin* constants.
	Origin string `json:"origin"`
	// Scheduler names the policy in play, when known.
	Scheduler string `json:"scheduler,omitempty"`
	// DataCenter is the site index for OriginAgent events; -1 for
	// cluster-wide events.
	DataCenter int `json:"dc"`

	// CentralBacklog is sum_j Q_j(t).
	CentralBacklog float64 `json:"central_backlog"`
	// LocalBacklog[i] is sum_j q_{i,j}(t) per data center (nil when the
	// emitter sees only one site).
	LocalBacklog []float64 `json:"local_backlog,omitempty"`
	// TotalBacklog is the total backlog across every queue the emitter sees.
	TotalBacklog float64 `json:"total_backlog"`

	// Degraded lists the data centers masked out of this slot's decision
	// because their agents were failed, malformed, or dead (controller
	// events under the Degrade failure policy; nil on healthy slots).
	Degraded []int `json:"degraded,omitempty"`

	// Drift is the queue-drift component of the slot objective (paper
	// eq. 14): sum_j sum_{i in D_j} [q_{i,j}(r-h) - Q_j r].
	Drift float64 `json:"drift,omitempty"`
	// Penalty is the V*g(t) penalty component: V times the energy-fairness
	// cost of the chosen action.
	Penalty float64 `json:"penalty,omitempty"`
	// Objective is Drift + Penalty, the value of (14) at the chosen action.
	Objective float64 `json:"objective,omitempty"`

	// Energy is the billed energy cost of the slot (the emitter's view).
	Energy float64 `json:"energy"`
	// EnergyPerDC[i] is the per-site billed energy cost (nil for
	// single-site emitters).
	EnergyPerDC []float64 `json:"energy_per_dc,omitempty"`
	// Fairness is the slot's fairness score f(t), when the emitter computes
	// it.
	Fairness float64 `json:"fairness,omitempty"`

	// Arrived, Processed, and Dropped count jobs this slot.
	Arrived   float64 `json:"arrived,omitempty"`
	Processed float64 `json:"processed,omitempty"`
	Dropped   float64 `json:"dropped,omitempty"`

	// Solve carries solver health for OriginDecide events, nil otherwise.
	Solve *SolveStats `json:"solve,omitempty"`

	// Detail carries the full slot evidence (state, action, queue snapshots)
	// for verification consumers. Emitters populate it only when the wired
	// observer implements DetailObserver and asks for it; it never enters
	// the JSONL stream.
	Detail *SlotDetail `json:"-"`
}

// SlotObserver receives one SlotEvent per control-loop iteration.
// Implementations must be safe for concurrent use when shared across
// schedulers or agents, and should return quickly: observers run inline in
// the control loop.
type SlotObserver interface {
	ObserveSlot(ev SlotEvent)
}

// ObserverFunc adapts a function to the SlotObserver interface.
type ObserverFunc func(ev SlotEvent)

// ObserveSlot implements SlotObserver.
func (f ObserverFunc) ObserveSlot(ev SlotEvent) { f(ev) }

// MultiObserver fans one event out to several observers in order.
type MultiObserver []SlotObserver

// ObserveSlot implements SlotObserver.
func (m MultiObserver) ObserveSlot(ev SlotEvent) {
	for _, o := range m {
		if o != nil {
			o.ObserveSlot(ev)
		}
	}
}

// SetDCNames implements DCNamer by forwarding to every member that names
// data centers.
func (m MultiObserver) SetDCNames(names []string) {
	for _, o := range m {
		if n, ok := o.(DCNamer); ok {
			n.SetDCNames(names)
		}
	}
}

// Multi bundles observers into one, dropping nils. It returns nil when
// nothing remains, so callers can keep the fast nil-observer path.
func Multi(obs ...SlotObserver) SlotObserver {
	out := make(MultiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
