package telemetry

import (
	"sync"

	"grefar/internal/metrics"
)

// Histogram is a concurrency-safe wrapper over metrics.Histogram shaped for
// Prometheus exposition: fixed bucket bounds, cumulative rendering, and a
// _sum/_count pair.
type Histogram struct {
	mu sync.Mutex
	h  *metrics.Histogram
}

// newHistogram builds a histogram over the bounds; the bounds were validated
// at family registration.
func newHistogram(bounds []float64) *Histogram {
	h, err := metrics.NewHistogram(bounds)
	if err != nil {
		panic("telemetry: " + err.Error())
	}
	return &Histogram{h: h}
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records weight observations of v (non-positive weights are
// ignored, matching metrics.Histogram).
func (h *Histogram) ObserveN(v, weight float64) {
	h.mu.Lock()
	h.h.Add(v, weight)
	h.mu.Unlock()
}

// snapshot returns the bucket bounds (ending with +Inf), per-bucket counts,
// the weighted sum of observations, and the total weight.
func (h *Histogram) snapshot() (bounds, counts []float64, sum, total float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds, counts = h.h.Buckets()
	return bounds, counts, h.h.Sum(), h.h.Total()
}

// IterationBounds is a default bucket layout for solver iteration counts:
// fine resolution near the greedy/LP single-shot regime, expanding to the
// Frank-Wolfe iteration caps.
func IterationBounds() []float64 {
	return []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377}
}
