package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// ServeHTTP renders the registry in Prometheus text exposition format,
// making *Registry an http.Handler for /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// MuxOptions tunes NewMux.
type MuxOptions struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints on a scrape port are an operational choice.
	EnablePprof bool
	// Healthy, when non-nil, gates /healthz: it returns 503 while Healthy
	// reports false. Nil means always healthy.
	Healthy func() bool
}

// NewMux builds the observability endpoint of a GreFar binary: /metrics
// (Prometheus text format), /healthz, and optionally /debug/pprof/.
func NewMux(reg *Registry, opts MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Healthy != nil && !opts.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("unhealthy\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
