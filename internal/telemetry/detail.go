package telemetry

import (
	"grefar/internal/model"
	"grefar/internal/queue"
)

// SlotDetail is the full per-slot evidence an emitter can attach to a
// SlotEvent for verification consumers: the revealed state, the chosen
// action, and the queue snapshots around it. Aggregate observers (the
// Prometheus registry, the JSONL stream) ignore it; the invariant checker
// re-derives every SlotEvent summary field from it.
//
// Collecting a detail costs deep copies of the state, action, and queue
// snapshots, so emitters populate it only when the wired observer asks for
// it via the DetailObserver interface. The JSONL stream deliberately omits
// it (json:"-") to keep the event schema stable and the stream compact.
type SlotDetail struct {
	// State is x(t): prices, availability, and base energy as revealed to
	// the scheduler at the beginning of the slot.
	State *model.State `json:"-"`
	// Action is z(t): the routing, processing, and busy-server decision.
	Action *model.Action `json:"-"`
	// Pre is the queue snapshot Theta(t) the decision was made against.
	Pre queue.Lengths `json:"-"`
	// Post is the queue snapshot after the action and arrivals were applied.
	// Zero-valued for OriginDecide events, which observe no queue update.
	Post queue.Lengths `json:"-"`
	// Arrivals are the admitted arrival counts a_j(t) (OriginSim only).
	Arrivals []int `json:"-"`
	// Routed[i][j] and Processed[i][j] are the jobs that actually moved,
	// after capping at queue content (OriginSim only).
	Routed, Processed [][]float64 `json:"-"`
}

// DetailObserver is implemented by slot observers that need the full
// SlotDetail evidence (the invariant checker, the golden-trace recorder).
// Emitters call WantsDetail on their wired observer once and skip the
// collection cost entirely when it reports false.
type DetailObserver interface {
	SlotObserver
	// WantsSlotDetail reports whether ObserveSlot expects SlotEvent.Detail
	// to be populated.
	WantsSlotDetail() bool
}

// WantsDetail reports whether the observer (possibly a MultiObserver
// composite) asks for SlotEvent.Detail. A nil observer wants nothing.
func WantsDetail(o SlotObserver) bool {
	d, ok := o.(DetailObserver)
	return ok && d.WantsSlotDetail()
}

// WantsSlotDetail implements DetailObserver: a composite wants detail as
// soon as any member does.
func (m MultiObserver) WantsSlotDetail() bool {
	for _, o := range m {
		if WantsDetail(o) {
			return true
		}
	}
	return false
}
