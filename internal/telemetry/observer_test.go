package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func decideEvent(slot int) SlotEvent {
	return SlotEvent{
		Slot: slot, Origin: OriginDecide, Scheduler: "test", DataCenter: -1,
		CentralBacklog: 5, LocalBacklog: []float64{1, 2}, TotalBacklog: 8,
		Drift: -3, Penalty: 10, Objective: 7,
		Solve: &SolveStats{Solver: "frank-wolfe", Iterations: 12, Converged: false, Residual: 0.25},
	}
}

func simEvent(slot int) SlotEvent {
	return SlotEvent{
		Slot: slot, Origin: OriginSim, Scheduler: "test", DataCenter: -1,
		CentralBacklog: 4, LocalBacklog: []float64{2, 1}, TotalBacklog: 7,
		Energy: 3, EnergyPerDC: []float64{1, 2}, Fairness: -0.01,
		Arrived: 6, Processed: 5, Dropped: 1,
	}
}

func TestRegistryObserverSeries(t *testing.T) {
	reg := NewRegistry()
	obs := NewRegistryObserver(reg)
	obs.SetDCNames([]string{"east", "west"})
	for slot := 0; slot < 3; slot++ {
		obs.ObserveSlot(decideEvent(slot))
		obs.ObserveSlot(simEvent(slot))
	}
	obs.ObserveSlot(SlotEvent{Slot: 3, Origin: OriginAgent, DataCenter: 1, TotalBacklog: 9, Energy: 2, Processed: 4})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`grefar_slots_total{origin="decide"} 3`,
		`grefar_slots_total{origin="sim"} 3`,
		`grefar_slots_total{origin="agent"} 1`,
		`grefar_queue_backlog{queue="central"} 4`,
		`grefar_queue_backlog{queue="east"} 2`,
		`grefar_queue_backlog{queue="west"} 9`, // agent event wrote last
		`grefar_drift -3`,
		`grefar_penalty 10`,
		`grefar_slot_objective 7`,
		`grefar_dc_energy_cost_total{dc="east"} 3`,
		`grefar_dc_energy_cost_total{dc="west"} 8`, // 3 sim slots *2 + agent 2
		`grefar_fairness -0.01`,
		`grefar_jobs_arrived_total 18`,
		`grefar_jobs_processed_total 19`, // 3*5 sim + 4 agent
		`grefar_jobs_dropped_total 3`,
		`grefar_solver_slots_total{solver="frank-wolfe"} 3`,
		`grefar_solver_unconverged_total{solver="frank-wolfe"} 3`,
		`grefar_solver_residual 0.25`,
		`grefar_solver_iterations_count{solver="frank-wolfe"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestRegistryObserverUnnamedDCFallback(t *testing.T) {
	reg := NewRegistry()
	obs := NewRegistryObserver(reg)
	obs.ObserveSlot(SlotEvent{Slot: 0, Origin: OriginAgent, DataCenter: 2, TotalBacklog: 1, Energy: 1})
	out := captureExposition(t, reg)
	if !strings.Contains(out, `grefar_queue_backlog{queue="dc2"} 1`) {
		t.Errorf("fallback dc label missing:\n%s", out)
	}
}

func captureExposition(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestMultiObserver(t *testing.T) {
	var a, b int
	obs := Multi(nil, ObserverFunc(func(SlotEvent) { a++ }), nil, ObserverFunc(func(SlotEvent) { b++ }))
	obs.ObserveSlot(SlotEvent{})
	obs.ObserveSlot(SlotEvent{})
	if a != 2 || b != 2 {
		t.Errorf("fan-out counts = %d, %d, want 2, 2", a, b)
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should collapse to nil")
	}
	single := ObserverFunc(func(SlotEvent) {})
	if got := Multi(nil, single); got == nil {
		t.Error("Multi with one live observer returned nil")
	}
}

func TestJSONLObserver(t *testing.T) {
	var buf strings.Builder
	obs := NewJSONLObserver(&buf)
	obs.ObserveSlot(decideEvent(0))
	obs.ObserveSlot(simEvent(0))
	if err := obs.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines int
	for sc.Scan() {
		var ev SlotEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("wrote %d lines, want 2", lines)
	}
	if !strings.Contains(buf.String(), `"solver":"frank-wolfe"`) {
		t.Errorf("decide line lacks solver stats: %s", buf.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestJSONLObserverStickyError(t *testing.T) {
	obs := NewJSONLObserver(failWriter{})
	obs.ObserveSlot(SlotEvent{})
	obs.ObserveSlot(SlotEvent{})
	if obs.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	obs := NewRegistryObserver(reg)
	obs.ObserveSlot(simEvent(0))
	healthy := true
	mux := NewMux(reg, MuxOptions{EnablePprof: true, Healthy: func() bool { return healthy }})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body, ctype := get(t, ts.URL+"/metrics", http.StatusOK)
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "grefar_slots_total") {
		t.Errorf("metrics body missing series:\n%s", body)
	}

	body, _ = get(t, ts.URL+"/healthz", http.StatusOK)
	if body != "ok\n" {
		t.Errorf("healthz body = %q", body)
	}
	healthy = false
	get(t, ts.URL+"/healthz", http.StatusServiceUnavailable)
	healthy = true

	body, _ = get(t, ts.URL+"/debug/pprof/", http.StatusOK)
	if !strings.Contains(body, "profile") {
		t.Errorf("pprof index looks wrong: %q", body[:min(len(body), 120)])
	}
}

func TestMuxWithoutPprof(t *testing.T) {
	mux := NewMux(NewRegistry(), MuxOptions{})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof mounted although disabled")
	}
}

func get(t *testing.T, url string, wantStatus int) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %q)", url, resp.StatusCode, wantStatus, raw)
	}
	return string(raw), resp.Header.Get("Content-Type")
}
