package telemetry

import (
	"strconv"
	"sync"
)

// RegistryObserver translates SlotEvents into the standard grefar_* metric
// families of a Registry. It is the default bridge between the control loops
// and Prometheus exposition: wire it as the observer of a scheduler, a
// simulation, a controller, or an agent (any combination sharing one
// registry is fine — counters are origin- or site-labeled so they never
// double-count).
//
// Families maintained:
//
//	grefar_slots_total{origin}                 counter
//	grefar_queue_backlog{queue}                gauge   ("central" or a DC name)
//	grefar_drift                               gauge
//	grefar_penalty                             gauge
//	grefar_slot_objective                      gauge
//	grefar_dc_energy_cost{dc}                  gauge   (last slot)
//	grefar_dc_energy_cost_total{dc}            counter
//	grefar_fairness                            gauge
//	grefar_jobs_arrived_total                  counter
//	grefar_jobs_processed_total                counter
//	grefar_jobs_dropped_total                  counter
//	grefar_solver_slots_total{solver}          counter
//	grefar_solver_iterations{solver}           histogram
//	grefar_solver_residual                     gauge
//	grefar_solver_unconverged_total{solver}    counter
type RegistryObserver struct {
	slots       *CounterVec
	backlog     *GaugeVec
	drift       *GaugeVec
	penalty     *GaugeVec
	objective   *GaugeVec
	dcEnergy    *GaugeVec
	dcEnergyTot *CounterVec
	fairness    *GaugeVec
	arrived     *CounterVec
	processed   *CounterVec
	dropped     *CounterVec
	solverSlots *CounterVec
	solverIters *HistogramVec
	solverRes   *GaugeVec
	unconverged *CounterVec

	mu      sync.RWMutex
	dcNames []string
}

// NewRegistryObserver registers the standard grefar_* families in the
// registry and returns the observer. Call SetDCNames to label per-site
// series with data-center names; unnamed sites fall back to "dc<i>".
func NewRegistryObserver(reg *Registry) *RegistryObserver {
	return &RegistryObserver{
		slots:       reg.Counter("grefar_slots_total", "Control-loop slot events observed, by emitting loop.", "origin"),
		backlog:     reg.Gauge("grefar_queue_backlog", "Queue backlog Theta(t) in jobs, central and per data center.", "queue"),
		drift:       reg.Gauge("grefar_drift", "Queue-drift component of the last slot objective (paper eq. 14)."),
		penalty:     reg.Gauge("grefar_penalty", "V*g(t) penalty component of the last slot objective."),
		objective:   reg.Gauge("grefar_slot_objective", "Drift-plus-penalty value of the last slot decision."),
		dcEnergy:    reg.Gauge("grefar_dc_energy_cost", "Billed energy cost of the last slot per data center.", "dc"),
		dcEnergyTot: reg.Counter("grefar_dc_energy_cost_total", "Cumulative billed energy cost per data center.", "dc"),
		fairness:    reg.Gauge("grefar_fairness", "Fairness score f(t) of the last slot."),
		arrived:     reg.Counter("grefar_jobs_arrived_total", "Jobs arrived at the central scheduler."),
		processed:   reg.Counter("grefar_jobs_processed_total", "Jobs processed across all data centers."),
		dropped:     reg.Counter("grefar_jobs_dropped_total", "Jobs rejected by admission control."),
		solverSlots: reg.Counter("grefar_solver_slots_total", "Slot decisions per solver backend.", "solver"),
		solverIters: reg.Histogram("grefar_solver_iterations", "Iterations per slot solve.", IterationBounds(), "solver"),
		solverRes:   reg.Gauge("grefar_solver_residual", "Convergence residual (Frank-Wolfe duality gap) of the last solve."),
		unconverged: reg.Counter("grefar_solver_unconverged_total", "Slot solves that stopped at the iteration cap.", "solver"),
	}
}

// DCNamer is implemented by observers that label per-site series with
// data-center names. MultiObserver forwards to every member that implements
// it, so facades can inject names without knowing the observer composition.
type DCNamer interface {
	SetDCNames(names []string)
}

// SetDCNames provides data-center names for per-site labels. Safe to call
// concurrently with ObserveSlot; later calls win.
func (o *RegistryObserver) SetDCNames(names []string) {
	o.mu.Lock()
	o.dcNames = append([]string(nil), names...)
	o.mu.Unlock()
}

// dcName maps a site index to its label value.
func (o *RegistryObserver) dcName(i int) string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if i >= 0 && i < len(o.dcNames) {
		return o.dcNames[i]
	}
	return "dc" + strconv.Itoa(i)
}

// ObserveSlot implements SlotObserver.
func (o *RegistryObserver) ObserveSlot(ev SlotEvent) {
	o.slots.With(ev.Origin).Inc()
	switch ev.Origin {
	case OriginDecide:
		o.observeBacklogs(ev)
		o.drift.With().Set(ev.Drift)
		o.penalty.With().Set(ev.Penalty)
		o.objective.With().Set(ev.Objective)
		if s := ev.Solve; s != nil {
			o.solverSlots.With(s.Solver).Inc()
			o.solverIters.With(s.Solver).Observe(float64(s.Iterations))
			o.solverRes.With().Set(s.Residual)
			if !s.Converged {
				o.unconverged.With(s.Solver).Inc()
			}
		}
	case OriginAgent:
		// A single site's view: only its own backlog and energy.
		dc := o.dcName(ev.DataCenter)
		o.backlog.With(dc).Set(ev.TotalBacklog)
		o.dcEnergy.With(dc).Set(ev.Energy)
		o.dcEnergyTot.With(dc).Add(ev.Energy)
		o.processed.With().Add(ev.Processed)
	default: // OriginSim, OriginController
		o.observeBacklogs(ev)
		for i, e := range ev.EnergyPerDC {
			dc := o.dcName(i)
			o.dcEnergy.With(dc).Set(e)
			o.dcEnergyTot.With(dc).Add(e)
		}
		o.fairness.With().Set(ev.Fairness)
		o.arrived.With().Add(ev.Arrived)
		o.processed.With().Add(ev.Processed)
		o.dropped.With().Add(ev.Dropped)
	}
}

// observeBacklogs updates the backlog gauges from a cluster-wide event.
func (o *RegistryObserver) observeBacklogs(ev SlotEvent) {
	o.backlog.With("central").Set(ev.CentralBacklog)
	for i, q := range ev.LocalBacklog {
		o.backlog.With(o.dcName(i)).Set(q)
	}
}
