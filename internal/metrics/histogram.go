package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates weighted observations into fixed bucket boundaries
// and answers quantile queries. It is used for per-job delay distributions:
// mean delay (what the paper plots) hides the tail, and a p99 queueing delay
// is what an operator actually provisions against.
type Histogram struct {
	bounds []float64 // upper bounds of all but the overflow bucket
	counts []float64 // len(bounds)+1, last is overflow
	total  float64
	sum    float64
	max    float64
}

// NewHistogram builds a histogram with the given strictly increasing bucket
// upper bounds. Values above the last bound land in an overflow bucket.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("histogram needs at least one bucket bound")
	}
	prev := math.Inf(-1)
	for b, v := range bounds {
		if v <= prev {
			return nil, fmt.Errorf("bucket bound %d (%v) is not increasing", b, v)
		}
		prev = v
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]float64, len(bounds)+1),
	}, nil
}

// DelayBounds is a default bucket layout for queueing delays in slots:
// sub-slot resolution at the low end, expanding geometrically to a week.
func DelayBounds() []float64 {
	return []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 36, 48, 72, 96, 168}
}

// Add records weight observations of the given value (e.g. `count` jobs that
// waited `delay` slots). Non-positive weights are ignored.
func (h *Histogram) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, value)
	h.counts[idx] += weight
	h.total += weight
	h.sum += value * weight
	if value > h.max {
		h.max = value
	}
}

// Total returns the accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Sum returns the weighted sum of the observed values — the numerator of
// Mean, exposed for Prometheus-style histogram exposition.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the weighted mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / h.total
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) using the
// bucket upper bounds; the overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * h.total
	var cum float64
	for b, cnt := range h.counts {
		cum += cnt
		if cum >= target-1e-12 {
			if b < len(h.bounds) {
				return h.bounds[b]
			}
			return h.max
		}
	}
	return h.max
}

// Buckets returns (bound, count) pairs including the overflow bucket, whose
// bound is reported as +Inf. The slices are copies.
func (h *Histogram) Buckets() (bounds, counts []float64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts = append([]float64(nil), h.counts...)
	return bounds, counts
}
