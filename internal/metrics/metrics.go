// Package metrics provides the statistics the evaluation needs: running
// (prefix) averages as plotted in the paper's figures, weighted delay
// accumulators, and Welford summary statistics.
package metrics

import "math"

// Running accumulates a running (prefix) average and optionally records the
// average after every observation — the exact quantity the paper plots
// ("the average values at time t are obtained by summing up all the values
// up to time t and then dividing the sum by t").
type Running struct {
	sum    float64
	n      int
	record bool
	series []float64
}

// NewRunning creates a running average; when record is true the average
// after each Add is kept in a series.
func NewRunning(record bool) *Running {
	return &Running{record: record}
}

// Add observes one value.
func (r *Running) Add(v float64) {
	r.sum += v
	r.n++
	if r.record {
		r.series = append(r.series, r.sum/float64(r.n))
	}
}

// Mean returns the running average so far (0 before any observation).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Count returns the number of observations.
func (r *Running) Count() int { return r.n }

// Series returns the recorded prefix-average series. The caller must not
// mutate it.
func (r *Running) Series() []float64 { return r.series }

// Ratio accumulates a weighted-average as numerator/denominator pairs —
// e.g. total waiting time over total jobs processed, which is the per-job
// average delay of the figures. The recorded series is the prefix ratio.
type Ratio struct {
	num, den float64
	record   bool
	series   []float64
}

// NewRatio creates a ratio accumulator; when record is true the prefix ratio
// after each Add is kept.
func NewRatio(record bool) *Ratio {
	return &Ratio{record: record}
}

// Add observes a numerator/denominator increment.
func (r *Ratio) Add(num, den float64) {
	r.num += num
	r.den += den
	if r.record {
		r.series = append(r.series, r.Value())
	}
}

// Value returns the current ratio (0 when the denominator is 0).
func (r *Ratio) Value() float64 {
	if r.den == 0 {
		return 0
	}
	return r.num / r.den
}

// Series returns the recorded prefix-ratio series.
func (r *Ratio) Series() []float64 { return r.series }

// Welford computes numerically stable mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add observes one value.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Mean returns the sample mean.
func (w *Welford) Mean() float64 { return w.mean }

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Variance returns the sample variance (0 for fewer than two observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Max tracks a running maximum.
type Max struct {
	set bool
	v   float64
}

// Add observes one value.
func (m *Max) Add(v float64) {
	if !m.set || v > m.v {
		m.set, m.v = true, v
	}
}

// Value returns the maximum observed (0 before any observation).
func (m *Max) Value() float64 { return m.v }
