package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMeanAndSeries(t *testing.T) {
	r := NewRunning(true)
	if r.Mean() != 0 || r.Count() != 0 {
		t.Error("fresh Running not zero")
	}
	r.Add(2)
	r.Add(4)
	r.Add(6)
	if r.Mean() != 4 {
		t.Errorf("Mean = %v, want 4", r.Mean())
	}
	want := []float64{2, 3, 4}
	for i, v := range r.Series() {
		if v != want[i] {
			t.Errorf("Series[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestRunningNoRecord(t *testing.T) {
	r := NewRunning(false)
	r.Add(1)
	if r.Series() != nil {
		t.Error("unrecorded Running kept a series")
	}
}

func TestRatio(t *testing.T) {
	r := NewRatio(true)
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Add(3, 1) // delay 3, one job
	r.Add(0, 0) // idle slot: no jobs processed
	r.Add(1, 1)
	if r.Value() != 2 {
		t.Errorf("Value = %v, want 2", r.Value())
	}
	want := []float64{3, 3, 2}
	for i, v := range r.Series() {
		if v != want[i] {
			t.Errorf("Series[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Stddev = %v", w.Stddev())
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	var single Welford
	single.Add(5)
	if single.Variance() != 0 {
		t.Error("variance of one sample should be 0")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(vals) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range vals {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		naive := ss / float64(len(vals)-1)
		return math.Abs(w.Variance()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax(t *testing.T) {
	var m Max
	if m.Value() != 0 {
		t.Error("empty Max should be 0")
	}
	m.Add(-5)
	if m.Value() != -5 {
		t.Errorf("Value = %v, want -5", m.Value())
	}
	m.Add(3)
	m.Add(1)
	if m.Value() != 3 {
		t.Errorf("Value = %v, want 3", m.Value())
	}
}
