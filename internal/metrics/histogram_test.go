package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing bounds accepted")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should answer zeros")
	}
	h.Add(0.5, 10) // bucket <=1
	h.Add(1.5, 10) // bucket <=2
	h.Add(3, 10)   // bucket <=4
	h.Add(9, 10)   // overflow
	h.Add(1, -5)   // ignored

	if h.Total() != 40 {
		t.Errorf("Total = %v, want 40", h.Total())
	}
	if math.Abs(h.Mean()-(0.5+1.5+3+9)/4) > 1e-12 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 9 {
		t.Errorf("Max = %v, want 9", h.Max())
	}
	// Quantiles report bucket upper bounds; overflow reports the max.
	if got := h.Quantile(0.25); got != 1 {
		t.Errorf("p25 = %v, want 1", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(0.75); got != 4 {
		t.Errorf("p75 = %v, want 4", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("p100 = %v, want 9", got)
	}
	if got := h.Quantile(2); got != 9 {
		t.Errorf("clamped quantile = %v, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 2})
	h.Add(0.5, 3)
	h.Add(5, 1)
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 3 {
		t.Fatalf("shape %d/%d", len(bounds), len(counts))
	}
	if !math.IsInf(bounds[2], 1) {
		t.Error("overflow bound should be +Inf")
	}
	if counts[0] != 3 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// Mutating the copies must not corrupt the histogram.
	counts[0] = 999
	if _, c2 := h.Buckets(); c2[0] != 3 {
		t.Error("Buckets returned shared storage")
	}
}

// TestHistogramQuantileMonotone property: quantiles are non-decreasing in q
// and bracket the observations.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h, err := NewHistogram(DelayBounds())
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Add(float64(v)/2, 1)
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return h.Quantile(1) >= h.Mean()-1e-9 || h.Total() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDelayBoundsIncreasing(t *testing.T) {
	if _, err := NewHistogram(DelayBounds()); err != nil {
		t.Fatal(err)
	}
}
