package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads an arrival trace from CSV: one column per job type, one row
// per slot, with a header row of job type names. It is the inverse of the
// tracegen tool's output and the hook for replaying a real trace (the role
// the Microsoft Cosmos trace plays in the paper) instead of the synthetic
// generator.
func ReadCSV(r io.Reader) (names []string, trace *Trace, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("read csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("csv needs a header and at least one data row, got %d rows", len(rows))
	}
	names = rows[0]
	counts := make([][]int, 0, len(rows)-1)
	for rIdx, row := range rows[1:] {
		if len(row) != len(names) {
			return nil, nil, fmt.Errorf("row %d has %d fields, header has %d", rIdx+2, len(row), len(names))
		}
		slot := make([]int, len(names))
		for col, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d column %q: %w", rIdx+2, names[col], err)
			}
			if v < 0 || v != float64(int(v)) {
				return nil, nil, fmt.Errorf("row %d column %q: arrival count %v is not a non-negative integer", rIdx+2, names[col], v)
			}
			slot[col] = int(v)
		}
		counts = append(counts, slot)
	}
	return names, &Trace{Counts: counts}, nil
}
