package workload

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/model"
)

func TestTraceWrapAndCopy(t *testing.T) {
	tr := &Trace{Counts: [][]int{{1, 2}, {3, 4}}}
	if got := tr.Arrivals(2); got[0] != 1 || got[1] != 2 {
		t.Errorf("wrap failed: %v", got)
	}
	got := tr.Arrivals(0)
	got[0] = 99
	if tr.Counts[0][0] == 99 {
		t.Error("Arrivals shares storage with the trace")
	}
	if (&Trace{}).Arrivals(0) != nil {
		t.Error("empty trace should return nil")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestGenerateValidation(t *testing.T) {
	c := model.NewReferenceCluster()
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, c, 0, ReferenceProfiles()); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Generate(rng, c, 10, ReferenceProfiles()[:3]); err == nil {
		t.Error("wrong profile count accepted")
	}
	bad := ReferenceProfiles()
	bad[0].MeanPerSlot = -1
	if _, err := Generate(rng, c, 10, bad); err == nil {
		t.Error("negative mean accepted")
	}
	bad = ReferenceProfiles()
	bad[1].DiurnalDepth = 1.5
	if _, err := Generate(rng, c, 10, bad); err == nil {
		t.Error("diurnal depth > 1 accepted")
	}
	bad = ReferenceProfiles()
	bad[2].BurstProb = 2
	if _, err := Generate(rng, c, 10, bad); err == nil {
		t.Error("burst prob > 1 accepted")
	}
}

func TestGenerateRespectsArrivalBounds(t *testing.T) {
	// Boundedness (paper eq. 1) is the only assumption the analysis makes
	// about arrivals, so it must hold unconditionally.
	c := model.NewReferenceCluster()
	tr, err := NewReferenceWorkload(42, c, 24*200)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < tr.Len(); t2++ {
		for j, a := range tr.Arrivals(t2) {
			if a < 0 {
				t.Fatalf("negative arrivals at %d,%d", t2, j)
			}
			if max := c.JobTypes[j].MaxArrival; max > 0 && a > max {
				t.Fatalf("arrivals %d exceed bound %d at slot %d job %d", a, max, t2, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := model.NewReferenceCluster()
	a, err := NewReferenceWorkload(7, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReferenceWorkload(7, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 100; t2++ {
		ra, rb := a.Arrivals(t2), b.Arrivals(t2)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("same seed differs at %d,%d", t2, j)
			}
		}
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	// Afternoon (4pm) volume must comfortably exceed night (4am) volume for
	// a strongly diurnal profile, averaged over many days.
	c := model.NewReferenceCluster()
	profiles := make([]Profile, c.J())
	for j := range profiles {
		profiles[j] = Profile{MeanPerSlot: 8, DiurnalDepth: 0.8}
	}
	rng := rand.New(rand.NewSource(3))
	tr, err := Generate(rng, c, 24*300, profiles)
	if err != nil {
		t.Fatal(err)
	}
	var night, day float64
	for d := 0; d < 300; d++ {
		for _, a := range tr.Arrivals(24*d + 4) {
			night += float64(a)
		}
		for _, a := range tr.Arrivals(24*d + 16) {
			day += float64(a)
		}
	}
	if day < 2*night {
		t.Errorf("day volume %v not >> night volume %v", day, night)
	}
}

func TestAccountWorkSkew(t *testing.T) {
	// The reference workload deliberately deviates from the 40/30/15/15
	// fairness targets (org1 over-submits ~47%, org2 under-submits ~20%),
	// so that fairness-blind scheduling realizes an unfair allocation.
	c := model.NewReferenceCluster()
	tr, err := NewReferenceWorkload(2012, c, 24*400)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, c.M())
	var sum float64
	for t2 := 0; t2 < tr.Len(); t2++ {
		for m, w := range tr.AccountWork(c, t2) {
			totals[m] += w
			sum += w
		}
	}
	wants := []float64{0.478, 0.207, 0.174, 0.141}
	for m, want := range wants {
		share := totals[m] / sum
		if math.Abs(share-want) > 0.06 {
			t.Errorf("account %d share = %v, want ~%v", m, share, want)
		}
	}
	// The whole point: org1's share must be well above its 40% target and
	// org2's well below its 30% target.
	if totals[0]/sum < 0.43 {
		t.Errorf("org1 share %v should exceed its 0.40 target by a margin", totals[0]/sum)
	}
	if totals[1]/sum > 0.26 {
		t.Errorf("org2 share %v should fall short of its 0.30 target", totals[1]/sum)
	}
}

func TestTotalWorkMatchesHandComputation(t *testing.T) {
	c := model.NewReferenceCluster()
	counts := make([][]int, 1)
	counts[0] = make([]int, c.J())
	counts[0][0] = 2 // demand 1
	counts[0][1] = 3 // demand 4
	tr := &Trace{Counts: counts}
	if got, want := tr.TotalWork(c, 0), 14.0; got != want {
		t.Errorf("TotalWork = %v, want %v", got, want)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rate := range []float64{0.5, 4, 25, 60} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, rate))
		}
		mean := sum / n
		if math.Abs(mean-rate) > 0.08*rate+0.05 {
			t.Errorf("poisson(%v) mean = %v", rate, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive rate should yield 0")
	}
}

func TestNonStationarity(t *testing.T) {
	// With weekly drift, week-over-week volumes differ measurably.
	c := model.NewReferenceCluster()
	tr, err := NewReferenceWorkload(5, c, 24*7*4)
	if err != nil {
		t.Fatal(err)
	}
	weekly := make([]float64, 4)
	for w := 0; w < 4; w++ {
		for h := 0; h < 24*7; h++ {
			weekly[w] += tr.TotalWork(c, 24*7*w+h)
		}
	}
	var min, max = weekly[0], weekly[0]
	for _, v := range weekly {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if (max-min)/max < 0.01 {
		t.Errorf("weekly volumes suspiciously flat: %v", weekly)
	}
}
