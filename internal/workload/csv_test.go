package workload

import (
	"strings"
	"testing"
)

func TestWorkloadReadCSVRoundTrip(t *testing.T) {
	in := "a,b\n3,0\n1,5\n"
	names, tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Arrivals(1)
	if got[0] != 1 || got[1] != 5 {
		t.Errorf("Arrivals(1) = %v", got)
	}
}

func TestWorkloadReadCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"header only", "a\n"},
		{"ragged", "a,b\n1\n"},
		{"non numeric", "a\nx\n"},
		{"negative", "a\n-1\n"},
		{"fractional", "a\n1.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
}
