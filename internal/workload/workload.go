// Package workload generates the batch-job arrival processes a_j(t) that
// drive the simulation.
//
// The paper uses a proprietary trace from Microsoft Cosmos clusters; its
// Fig. 1 shows arrivals that are strongly time-of-day dependent, bursty, and
// non-stationary, with four organizations submitting very different volumes.
// This package substitutes a synthetic process with those properties:
// per-job-type Poisson-like arrivals modulated by a diurnal cycle, sporadic
// multiplicative bursts, and a slow non-stationary drift. Arrivals are always
// clamped to the job type's a_max bound (paper eq. 1) — the only assumption
// the analysis needs.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"grefar/internal/model"
)

// Generator yields the arrival counts for every job type at slot t.
// Implementations must be deterministic in t.
type Generator interface {
	Arrivals(t int) []int
}

// Trace replays a materialized arrival series, wrapping at the end.
type Trace struct {
	// Counts[t][j] is the number of type-j jobs arriving during slot t.
	Counts [][]int
}

var _ Generator = (*Trace)(nil)

// Arrivals implements Generator. The returned slice is a copy.
func (tr *Trace) Arrivals(t int) []int {
	if len(tr.Counts) == 0 {
		return nil
	}
	row := tr.Counts[((t%len(tr.Counts))+len(tr.Counts))%len(tr.Counts)]
	return append([]int(nil), row...)
}

// Len returns the number of materialized slots.
func (tr *Trace) Len() int { return len(tr.Counts) }

// TotalWork returns the total service demand (jobs x demand) arriving at
// slot t, the quantity plotted in the paper's Fig. 1 bottom panel.
func (tr *Trace) TotalWork(c *model.Cluster, t int) float64 {
	var w float64
	for j, a := range tr.Arrivals(t) {
		w += float64(a) * c.JobTypes[j].Demand
	}
	return w
}

// AccountWork returns the arriving service demand per account at slot t.
func (tr *Trace) AccountWork(c *model.Cluster, t int) []float64 {
	out := make([]float64, c.M())
	for j, a := range tr.Arrivals(t) {
		jt := c.JobTypes[j]
		out[jt.Account] += float64(a) * jt.Demand
	}
	return out
}

// Profile configures the synthetic arrival process of one job type.
type Profile struct {
	// MeanPerSlot is the long-run average arrival rate in jobs per slot.
	MeanPerSlot float64
	// DiurnalDepth in [0,1] scales the day/night swing: at depth 1 the
	// night-time rate drops to zero and the afternoon rate doubles.
	DiurnalDepth float64
	// BurstProb is the per-slot probability of a burst.
	BurstProb float64
	// BurstScale multiplies the rate during a burst.
	BurstScale float64
	// DriftPeriod, when positive, adds a slow sinusoidal non-stationarity
	// with this period in slots (e.g. a week), of relative amplitude
	// DriftDepth.
	DriftPeriod int
	DriftDepth  float64
	// PhaseHours shifts this type's diurnal cycle.
	PhaseHours int
}

func (p Profile) validate(j int) error {
	if p.MeanPerSlot < 0 {
		return fmt.Errorf("profile %d: negative mean %v", j, p.MeanPerSlot)
	}
	if p.DiurnalDepth < 0 || p.DiurnalDepth > 1 {
		return fmt.Errorf("profile %d: diurnal depth %v outside [0,1]", j, p.DiurnalDepth)
	}
	if p.BurstProb < 0 || p.BurstProb > 1 {
		return fmt.Errorf("profile %d: burst probability %v outside [0,1]", j, p.BurstProb)
	}
	if p.BurstScale < 0 {
		return fmt.Errorf("profile %d: negative burst scale %v", j, p.BurstScale)
	}
	if p.DriftDepth < 0 || p.DriftDepth > 1 {
		return fmt.Errorf("profile %d: drift depth %v outside [0,1]", j, p.DriftDepth)
	}
	return nil
}

// Generate materializes n slots of arrivals for the cluster's job types from
// the given profiles (one per job type). Counts are clamped to each type's
// MaxArrival bound when that bound is positive.
func Generate(rng *rand.Rand, c *model.Cluster, n int, profiles []Profile) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace length %d is not positive", n)
	}
	if len(profiles) != c.J() {
		return nil, fmt.Errorf("got %d profiles, cluster has %d job types", len(profiles), c.J())
	}
	for j, p := range profiles {
		if err := p.validate(j); err != nil {
			return nil, err
		}
	}
	counts := make([][]int, n)
	for t := 0; t < n; t++ {
		row := make([]int, c.J())
		for j, p := range profiles {
			rate := p.MeanPerSlot
			// Diurnal modulation: trough at 4am, peak at 4pm, mean 1.
			hour := float64((t + p.PhaseHours) % 24)
			rate *= 1 - p.DiurnalDepth*math.Cos(2*math.Pi*(hour-4)/24)
			if p.DriftPeriod > 0 {
				rate *= 1 + p.DriftDepth*math.Sin(2*math.Pi*float64(t)/float64(p.DriftPeriod))
			}
			if p.BurstProb > 0 && rng.Float64() < p.BurstProb {
				rate *= p.BurstScale
			}
			a := poisson(rng, rate)
			if max := c.JobTypes[j].MaxArrival; max > 0 && a > max {
				a = max
			}
			row[j] = a
		}
		counts[t] = row
	}
	return &Trace{Counts: counts}, nil
}

// poisson draws a Poisson variate by inversion for small rates and a normal
// approximation for large ones. The result is never negative.
func poisson(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	if rate > 30 {
		v := int(math.Round(rate + math.Sqrt(rate)*rng.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// ReferenceProfiles returns per-job-type profiles for the reference cluster:
// four organizations with arrival volumes roughly proportional to their
// fairness weights (40/30/15/15), strong diurnal cycles, occasional bursts,
// and a slow four-week drift so the process is visibly non-stationary,
// echoing the paper's Fig. 1.
func ReferenceProfiles() []Profile {
	return []Profile{
		// org1 over-submits relative to its 40% target: ~47% of the work.
		// Short (demand 1) and long (demand 4) jobs, afternoon-heavy,
		// arriving in sporadic surges (the paper remarks organizations
		// "only submit job requests sporadically").
		{MeanPerSlot: 9.2, DiurnalDepth: 0.9, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.2},
		{MeanPerSlot: 6.2, DiurnalDepth: 0.8, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.2, PhaseHours: 1},
		// org2 under-submits relative to its 30% target: ~20%. Short (1)
		// and long (3), peaking six hours later (another time zone).
		{MeanPerSlot: 5.4, DiurnalDepth: 0.9, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.25, PhaseHours: 6},
		{MeanPerSlot: 3.1, DiurnalDepth: 0.8, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.15, PhaseHours: 7},
		// org3 slightly over target (15% -> ~17%): short (1) and long (2);
		// sporadic overnight submitter (batch pipelines).
		{MeanPerSlot: 5.9, DiurnalDepth: 0.9, BurstProb: 0.12, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.3, PhaseHours: 12},
		{MeanPerSlot: 3.1, DiurnalDepth: 0.8, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.2, PhaseHours: 13},
		// org4 near target (~14%): short (1) and long (2); early-morning.
		{MeanPerSlot: 4.6, DiurnalDepth: 0.9, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.25, PhaseHours: 18},
		{MeanPerSlot: 2.7, DiurnalDepth: 0.8, BurstProb: 0.10, BurstScale: 4, DriftPeriod: 672, DriftDepth: 0.2, PhaseHours: 19},
	}
}

// NewReferenceWorkload materializes n slots of the reference arrival process
// for the reference cluster with a deterministic seed.
func NewReferenceWorkload(seed int64, c *model.Cluster, n int) (*Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	return Generate(rng, c, n, ReferenceProfiles())
}
