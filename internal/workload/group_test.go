package workload

import (
	"testing"

	"grefar/internal/model"
)

func rawLog() []RawJob {
	return []RawJob{
		{Slot: 0, Demand: 0.7, Account: 0, Eligible: []int{0, 1}},
		{Slot: 0, Demand: 0.9, Account: 0, Eligible: []int{1, 0}}, // same type (rounded to 1, same set)
		{Slot: 1, Demand: 0.5, Account: 0, Eligible: []int{0, 1}},
		{Slot: 0, Demand: 3.2, Account: 1, Eligible: []int{0}}, // rounds to 4
		{Slot: 2, Demand: 3.9, Account: 1, Eligible: []int{0}}, // same type
		{Slot: 2, Demand: 1.0, Account: 0, Eligible: []int{0}}, // different eligible set -> own type
	}
}

func TestGroupJobs(t *testing.T) {
	types, tr, err := GroupJobs(rawLog(), 2, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 3 {
		t.Fatalf("got %d types, want 3: %+v", len(types), types)
	}
	// Deterministic order: account then demand then eligible-set.
	if types[0].Account != 0 || types[0].Demand != 1 {
		t.Errorf("type 0 = %+v", types[0])
	}
	if types[2].Account != 1 || types[2].Demand != 4 {
		t.Errorf("type 2 = %+v", types[2])
	}
	// Eligible sets are sorted.
	if len(types[0].Eligible) != 1 && len(types[1].Eligible) != 1 {
		t.Errorf("one of the account-0 types should have the single-site set")
	}
	// Trace spans slots 0..2 and counts match.
	if tr.Len() != 3 {
		t.Fatalf("trace length %d, want 3", tr.Len())
	}
	var total int
	for slot := 0; slot < tr.Len(); slot++ {
		for _, a := range tr.Arrivals(slot) {
			total += a
		}
	}
	if total != len(rawLog()) {
		t.Errorf("trace has %d jobs, log has %d", total, len(rawLog()))
	}
	// MaxArrival reflects the observed per-slot peak (2 for the two-site
	// account-0 type at slot 0).
	if types[duoIndex(types)].MaxArrival != 2 {
		t.Errorf("MaxArrival = %d, want 2", types[duoIndex(types)].MaxArrival)
	}
}

// duoIndex finds the account-0 type with the two-site eligible set.
func duoIndex(types []model.JobType) int {
	for j, jt := range types {
		if jt.Account == 0 && len(jt.Eligible) == 2 {
			return j
		}
	}
	return -1
}

func TestGroupJobsBuildsValidCluster(t *testing.T) {
	// The grouped types must drop into a model.Cluster and simulate.
	types, tr, err := GroupJobs(rawLog(), 2, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 0.8}}},
		},
		JobTypes: types,
		Accounts: []model.Account{{Name: "x", Weight: 0.5}, {Name: "y", Weight: 0.5}},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("grouped cluster invalid: %v", err)
	}
	if got := tr.TotalWork(c, 0); got <= 0 {
		t.Errorf("TotalWork(0) = %v", got)
	}
}

func TestGroupJobsValidation(t *testing.T) {
	if _, _, err := GroupJobs(nil, 1, GroupOptions{}); err == nil {
		t.Error("empty log accepted")
	}
	if _, _, err := GroupJobs([]RawJob{{Slot: -1, Demand: 1, Eligible: []int{0}}}, 1, GroupOptions{}); err == nil {
		t.Error("negative slot accepted")
	}
	if _, _, err := GroupJobs([]RawJob{{Slot: 0, Demand: 0, Eligible: []int{0}}}, 1, GroupOptions{}); err == nil {
		t.Error("zero demand accepted")
	}
	if _, _, err := GroupJobs([]RawJob{{Slot: 0, Demand: 1, Account: 5, Eligible: []int{0}}}, 1, GroupOptions{}); err == nil {
		t.Error("out-of-range account accepted")
	}
	if _, _, err := GroupJobs([]RawJob{{Slot: 0, Demand: 1}}, 1, GroupOptions{}); err == nil {
		t.Error("empty eligible set accepted")
	}
}

func TestGroupJobsQuantum(t *testing.T) {
	jobs := []RawJob{
		{Slot: 0, Demand: 1.2, Account: 0, Eligible: []int{0}},
		{Slot: 0, Demand: 2.4, Account: 0, Eligible: []int{0}},
	}
	// Quantum 2: demands round to 2 and 4 -> two types.
	types, _, err := GroupJobs(jobs, 1, GroupOptions{DemandQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0].Demand != 2 || types[1].Demand != 4 {
		t.Errorf("types = %+v", types)
	}
	// Quantum 4: both round to 4 -> one type.
	types, _, err = GroupJobs(jobs, 1, GroupOptions{DemandQuantum: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0].Demand != 4 {
		t.Errorf("types = %+v", types)
	}
}

func TestGroupJobsDemandNeverRoundsDown(t *testing.T) {
	jobs := []RawJob{{Slot: 0, Demand: 2.0001, Account: 0, Eligible: []int{0}}}
	types, _, err := GroupJobs(jobs, 1, GroupOptions{DemandQuantum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if types[0].Demand < 2.0001 {
		t.Errorf("demand rounded down: %v", types[0].Demand)
	}
}
