package workload

import (
	"fmt"
	"math"
	"sort"

	"grefar/internal/model"
)

// RawJob is one job as it appears in a raw trace before type grouping: an
// arrival slot, an exact service demand, the submitting account, and the
// sites its data allows.
type RawJob struct {
	// Slot is the arrival time in slots from trace start.
	Slot int
	// Demand is the exact service demand in work units.
	Demand float64
	// Account is the submitting organization index.
	Account int
	// Eligible are the data center indices the job may run in.
	Eligible []int
}

// GroupOptions tune the job-type quantization.
type GroupOptions struct {
	// DemandQuantum rounds demands up to multiples of this value before
	// grouping; jobs with the same rounded demand, account, and eligible
	// set share a type (default 1).
	DemandQuantum float64
	// MaxRouteFactor and MaxProcessFactor derive each type's r_max and
	// h_max bounds from its observed peak arrivals (defaults 3 and 5).
	MaxRouteFactor, MaxProcessFactor float64
}

func (o GroupOptions) withDefaults() GroupOptions {
	if o.DemandQuantum <= 0 {
		o.DemandQuantum = 1
	}
	if o.MaxRouteFactor <= 0 {
		o.MaxRouteFactor = 3
	}
	if o.MaxProcessFactor <= 0 {
		o.MaxProcessFactor = 5
	}
	return o
}

// GroupJobs implements the paper's preprocessing step ("in practice, we can
// group jobs having approximately the same characteristics into the same
// type"): it quantizes a raw job log into job types and an arrival trace.
// Rounding demands *up* keeps the derived trace's capacity needs a safe
// over-estimate of the raw log's. The returned job types are ordered
// deterministically (by account, demand, then eligible set), and the trace
// spans [0, maxSlot].
func GroupJobs(jobs []RawJob, numAccounts int, opts GroupOptions) ([]model.JobType, *Trace, error) {
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("empty job log")
	}
	opts = opts.withDefaults()

	type key struct {
		account  int
		demand   float64
		eligible string
	}
	groups := make(map[key][]RawJob)
	maxSlot := 0
	for idx, job := range jobs {
		if job.Slot < 0 {
			return nil, nil, fmt.Errorf("job %d: negative slot %d", idx, job.Slot)
		}
		if job.Demand <= 0 {
			return nil, nil, fmt.Errorf("job %d: demand %v is not positive", idx, job.Demand)
		}
		if job.Account < 0 || job.Account >= numAccounts {
			return nil, nil, fmt.Errorf("job %d: account %d out of range [0,%d)", idx, job.Account, numAccounts)
		}
		if len(job.Eligible) == 0 {
			return nil, nil, fmt.Errorf("job %d: empty eligible set", idx)
		}
		k := key{
			account:  job.Account,
			demand:   math.Ceil(job.Demand/opts.DemandQuantum) * opts.DemandQuantum,
			eligible: eligibleKey(job.Eligible),
		}
		groups[k] = append(groups[k], job)
		if job.Slot > maxSlot {
			maxSlot = job.Slot
		}
	}

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].account != keys[b].account {
			return keys[a].account < keys[b].account
		}
		if keys[a].demand != keys[b].demand {
			return keys[a].demand < keys[b].demand
		}
		return keys[a].eligible < keys[b].eligible
	})

	types := make([]model.JobType, len(keys))
	counts := make([][]int, maxSlot+1)
	for t := range counts {
		counts[t] = make([]int, len(keys))
	}
	for j, k := range keys {
		members := groups[k]
		peak := 0
		perSlot := make(map[int]int)
		for _, job := range members {
			perSlot[job.Slot]++
			if perSlot[job.Slot] > peak {
				peak = perSlot[job.Slot]
			}
			counts[job.Slot][j]++
		}
		types[j] = model.JobType{
			Name:       fmt.Sprintf("acct%d-d%g", k.account, k.demand),
			Demand:     k.demand,
			Eligible:   parseEligible(members[0].Eligible),
			Account:    k.account,
			MaxArrival: peak,
			MaxRoute:   int(math.Ceil(float64(peak) * opts.MaxRouteFactor)),
			MaxProcess: float64(peak) * opts.MaxProcessFactor,
		}
	}
	return types, &Trace{Counts: counts}, nil
}

// eligibleKey canonicalizes an eligible set into a map key.
func eligibleKey(eligible []int) string {
	sorted := append([]int(nil), eligible...)
	sort.Ints(sorted)
	out := make([]byte, 0, len(sorted)*3)
	for _, e := range sorted {
		out = append(out, byte('0'+e/10), byte('0'+e%10), ',')
	}
	return string(out)
}

// parseEligible returns a sorted, deduplicated copy of an eligible set.
func parseEligible(eligible []int) []int {
	sorted := append([]int(nil), eligible...)
	sort.Ints(sorted)
	out := make([]int, 0, len(sorted))
	for i, e := range sorted {
		if i == 0 || e != sorted[i-1] {
			out = append(out, e)
		}
	}
	return out
}
