// Package runner is the deterministic parallel sweep engine: it fans a fixed
// number of independent tasks out across a bounded worker pool and collects
// their results in task order, so a sweep driven through it is byte-identical
// to the same sweep run serially. The experiments of the paper's evaluation
// (one full simulation per scheduler/V/seed point) are exactly this shape —
// every task builds its own inputs from a seed and shares no mutable state —
// which is also the structural argument of the distributed-control related
// work: independent per-system subproblems run concurrently, with
// coordination only at aggregation.
//
// Determinism contract:
//
//   - Results are delivered indexed: result i is whatever task i returned,
//     regardless of completion order.
//   - Error propagation is by lowest task index, not by wall-clock order:
//     if tasks 4 and 2 both fail, Map returns task 2's error every time.
//   - Tasks must not share mutable state; the pool adds no synchronization
//     beyond completion. Run each task against its own inputs (verified
//     repo-wide under -race).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers resolves a worker-count knob: values <= 0 select
// GOMAXPROCS, everything else passes through. Both Map and Do apply it, so
// callers can thread a zero-valued "use the hardware" default from flags and
// config structs without special-casing.
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(ctx, i) for every i in [0, n) on a pool of at most workers
// goroutines and returns the n results in index order. workers <= 0 selects
// GOMAXPROCS; workers == 1 degenerates to a serial loop on the calling
// goroutine, with no goroutines spawned.
//
// The first failure — by task index, for determinism — cancels the context
// passed to the remaining tasks and stops new tasks from starting; Map then
// waits for in-flight tasks to return before reporting that error. When ctx
// is canceled externally, Map returns an error wrapping ctx.Err(). A nil ctx
// means the sweep cannot be interrupted.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("runner: nil task function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Serial fast path: same semantics, no goroutines, so single-worker
		// sweeps keep their exact serial profile (and stack traces).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("runner: task %d not started: %w", i, err)
			}
			r, err := fn(ctx, i)
			if err != nil {
				return nil, fmt.Errorf("runner: task %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}

	// Parallel path: workers pull indices from a shared counter; each writes
	// only its own result slot, so the slice needs no locking. Failures are
	// recorded per index and resolved to the lowest failed index at the end.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return // canceled: stop claiming new tasks
				}
				i, ok := claim()
				if !ok {
					return
				}
				r, err := fn(runCtx, i)
				if err != nil {
					errs[i] = err
					cancel() // first failure drains the pool
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: task %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		// External cancellation with no task failure: some tasks never ran.
		return nil, fmt.Errorf("runner: sweep canceled: %w", err)
	}
	return out, nil
}

// Do is Map for tasks that produce no value: it runs fn(ctx, i) for every i
// in [0, n) under the same pool, ordering, and error semantics.
func Do(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
