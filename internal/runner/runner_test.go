package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			n := 50
			got, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("got %d results, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got (%v, %v), want empty and nil", got, err)
	}
}

func TestMapRejectsBadArguments(t *testing.T) {
	if _, err := Map(context.Background(), 2, -1, func(_ context.Context, i int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Map[int](context.Background(), 2, 3, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

// TestMapPropagatesLowestIndexError pins the determinism contract: with
// several failing tasks racing, the reported error is always the one with the
// lowest index.
func TestMapPropagatesLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 16, func(_ context.Context, i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 11:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want the index-3 error", trial, err)
		}
	}
}

// TestMapCancelsRemainingTasksOnError verifies a failure stops the sweep:
// tasks observe the canceled pool context, and far fewer than n tasks start
// once the failure has been seen.
func TestMapCancelsRemainingTasksOnError(t *testing.T) {
	boom := errors.New("boom")
	var canceledSeen atomic.Bool
	_, err := Map(context.Background(), 2, 1000, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		if ctx.Err() != nil {
			canceledSeen.Store(true)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestMapHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	var once sync.Once
	_, err := Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		return i, ctx.Err()
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("%d tasks started after cancellation, want early stop", n)
	}
}

func TestMapSerialPathChecksContextBetweenTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Map(ctx, 1, 10, func(_ context.Context, i int) (int, error) {
		ran++
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d tasks after cancel at task 2, want 3", ran)
	}
}

// TestMapBoundsConcurrency tracks the high-water mark of concurrently running
// tasks and requires it never exceeds the pool size.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), workers, 200, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, pool size is %d", p, workers)
	}
}

func TestMapNilContext(t *testing.T) {
	got, err := Map(nil, 2, 4, func(ctx context.Context, i int) (int, error) {
		if ctx == nil {
			return 0, errors.New("nil ctx passed to task")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(5); got != 5 {
		t.Errorf("DefaultWorkers(5) = %d, want 5", got)
	}
}

func TestDoPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	if err := Do(context.Background(), 4, 8, func(_ context.Context, i int) error {
		if i == 5 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	var sum atomic.Int64
	if err := Do(context.Background(), 4, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 28 {
		t.Fatalf("tasks summed to %d, want 28", sum.Load())
	}
}
