package solve

import (
	"testing"
)

// unitBoxOracle is the [0, 1]^n instance of the shared boxOracle helper.
func unitBoxOracle(n int) LinearOracle {
	hi := make([]float64, n)
	for j := range hi {
		hi[j] = 1
	}
	return boxOracle(hi)
}

// boxQuadratic builds f(x) = sum_j (x_j - c_j)^2 with minimizer c inside the
// unit box.
func boxQuadratic(center []float64) *Quadratic {
	q := &Quadratic{Linear: make([]float64, len(center))}
	for j, cj := range center {
		q.Squares = append(q.Squares, AffineSquare{
			Weight: 1, Index: []int{j}, Coef: []float64{1}, Offset: -cj,
		})
	}
	return q
}

func TestFWWorkspaceResizeReleasesCapacity(t *testing.T) {
	var ws FWWorkspace
	ws.resize(1024)
	big := cap(ws.x)
	if big < 1024 {
		t.Fatalf("resize(1024) left cap %d", big)
	}

	// Mild shrink keeps the backing arrays (hysteresis).
	ws.resize(600)
	if cap(ws.x) != big {
		t.Fatalf("resize(600) reallocated: cap %d, want %d kept", cap(ws.x), big)
	}
	if len(ws.x) != 600 {
		t.Fatalf("resize(600) left len %d", len(ws.x))
	}

	// Dropping below a quarter of the held capacity must release it.
	ws.resize(100)
	if cap(ws.x) >= big {
		t.Fatalf("resize(100) kept peak capacity %d", cap(ws.x))
	}
	if len(ws.x) != 100 || len(ws.grad) != 100 || len(ws.v) != 100 || len(ws.dir) != 100 {
		t.Fatal("resize(100) left inconsistent buffer lengths")
	}

	// The atom pool releases its entries on a dimension change too.
	ws.resize(50)
	ws.pushAtom(make([]float64, 50), 1)
	ws.resetAtoms(8)
	for s := range ws.atoms {
		if ws.atoms[s] != nil {
			t.Fatal("resetAtoms kept a stale atom reference after a dimension change")
		}
	}
}

// TestFWWorkspaceSteadyStateAllocFree pins the workspace contract: repeated
// same-sized solves — the shape of every slot decision a scheduler makes —
// allocate nothing after the first call, for both Frank-Wolfe variants.
func TestFWWorkspaceSteadyStateAllocFree(t *testing.T) {
	center := []float64{0.3, 0.8, 0.5, 0.1}
	obj := boxQuadratic(center)
	x0 := make([]float64, len(center))
	oracle := unitBoxOracle(len(center))
	for _, away := range []bool{false, true} {
		var ws FWWorkspace
		opts := FWOptions{MaxIters: 60, Tol: 1e-9, AwaySteps: away}
		if _, err := FrankWolfeWS(&ws, obj, oracle, x0, opts); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := FrankWolfeWS(&ws, obj, oracle, x0, opts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("away=%v: steady-state solve allocates %v times per run", away, allocs)
		}
	}
}

// goldenSectionReference is the pre-cap implementation: loop purely on the
// width test. The capped search must pin its minimizers exactly whenever the
// reference terminates.
func goldenSectionReference(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

func TestGoldenSectionMatchesUncappedReference(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		tol  float64
	}{
		{"parabola", func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, 0, 5, 1e-9},
		{"linear", func(x float64) float64 { return x }, 2, 9, 1e-9},
		{"quartic", func(x float64) float64 { d := x - 0.25; return d * d * d * d }, -3, 4, 1e-8},
		{"default-tol", func(x float64) float64 { return (x + 2) * (x + 2) }, -10, 10, 0},
	}
	for _, tc := range cases {
		got := GoldenSection(tc.f, tc.a, tc.b, tc.tol)
		want := goldenSectionReference(tc.f, tc.a, tc.b, tc.tol)
		if got != want {
			t.Errorf("%s: capped search returned %v, reference %v", tc.name, got, want)
		}
	}
}

// TestGoldenSectionTerminatesBelowResolution drives the search with a
// tolerance far below the floating-point resolution of the bracket — the
// regime where the pure width test can never be satisfied — and requires
// termination at a sensible point.
func TestGoldenSectionTerminatesBelowResolution(t *testing.T) {
	got := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 1e6, 1e-300)
	if got < 3-1e-6 || got > 3+1e-6 {
		t.Errorf("sub-resolution tolerance: minimizer %v, want ~3", got)
	}
	// A constant objective exercises the stall path with no curvature signal.
	flat := GoldenSection(func(float64) float64 { return 1 }, 0, 1, 1e-300)
	if flat < 0 || flat > 1 {
		t.Errorf("constant objective escaped the bracket: %v", flat)
	}
}
