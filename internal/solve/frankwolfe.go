package solve

import (
	"errors"
	"fmt"
	"math"
)

// LinearOracle solves the linearized subproblem of Frank-Wolfe: given the
// current gradient, it writes into out a minimizer of grad . v over the
// feasible polytope. The oracle defines the feasible set; the solver never
// needs an explicit constraint description.
type LinearOracle func(grad []float64, out []float64)

// Variant names for FWResult.Variant.
const (
	// VariantVanilla is the classic conditional-gradient method: every step
	// moves toward an oracle vertex. Sublinear O(1/k) convergence, but no
	// per-iteration state beyond the iterate.
	VariantVanilla = "vanilla"
	// VariantAwayStep is the away-step variant (Guelat-Marcotte; analysis by
	// Lacoste-Julien & Jaggi): it carries the active atom set of the iterate
	// and may step away from a bad atom instead of toward a vertex, which
	// restores linear convergence on polytopes.
	VariantAwayStep = "away-step"
)

// FWOptions tunes the Frank-Wolfe solver. Zero values select defaults.
type FWOptions struct {
	// MaxIters caps the number of iterations (default 200).
	MaxIters int
	// Tol is the duality-gap stopping tolerance (default 1e-7), measured
	// relative to 1+|f(x)|.
	Tol float64
	// RequireConvergence makes FrankWolfe return a NotConvergedError
	// (wrapping ErrNotConverged) when the gap tolerance is not met within
	// MaxIters, instead of silently returning the last iterate. Off by
	// default: the last iterate is feasible and its gap bounds the
	// suboptimality, which is usually good enough for a slot decision.
	RequireConvergence bool
	// AwaySteps selects the away-step variant, which maintains the active
	// atom set of the iterate in the workspace and can remove mass from a
	// bad atom instead of only adding vertices. On polytopes this converges
	// linearly where the vanilla method zigzags at O(1/k). Off by default;
	// results are equal within tolerance but not bit-identical.
	AwaySteps bool
}

// Validate rejects option values that a solve would otherwise have to paper
// over: a NaN or negative tolerance and a negative iteration cap have no
// sensible meaning (zero means "use the default" and stays accepted).
func (o FWOptions) Validate() error {
	if o.MaxIters < 0 {
		return fmt.Errorf("solve: MaxIters = %d is negative", o.MaxIters)
	}
	if math.IsNaN(o.Tol) {
		return errors.New("solve: Tol is NaN")
	}
	if o.Tol < 0 {
		return fmt.Errorf("solve: Tol = %v is negative", o.Tol)
	}
	return nil
}

func (o FWOptions) withDefaults() FWOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// FWResult reports the outcome of a Frank-Wolfe run.
type FWResult struct {
	// X is the final iterate.
	X []float64
	// Value is f(X).
	Value float64
	// Gap is the final Frank-Wolfe duality gap grad.(x - v), an upper bound
	// on f(X) - f*.
	Gap float64
	// Iters is the number of iterations performed.
	Iters int
	// Converged reports whether the gap tolerance was met.
	Converged bool
	// Variant names the algorithm that ran: VariantVanilla or
	// VariantAwayStep.
	Variant string
}

// ErrDimensionMismatch is returned when the starting point and oracle output
// have different lengths.
var ErrDimensionMismatch = errors.New("solve: dimension mismatch between x0 and oracle output")

// ErrNotConverged is the sentinel wrapped by every convergence failure, so
// callers can classify solver outcomes with errors.Is without knowing which
// backend ran.
var ErrNotConverged = errors.New("solve: did not converge")

// NotConvergedError reports a solver stopping at its iteration cap with the
// tolerance unmet. It wraps ErrNotConverged (matchable with errors.Is) and
// carries the diagnosis for errors.As.
type NotConvergedError struct {
	// Solver names the backend, e.g. "frank-wolfe".
	Solver string
	// Iters is the number of iterations performed.
	Iters int
	// Residual is the final convergence residual (the duality gap for
	// Frank-Wolfe).
	Residual float64
}

// Error implements error.
func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("solve: %s did not converge after %d iterations (residual %g)", e.Solver, e.Iters, e.Residual)
}

// Unwrap makes errors.Is(err, ErrNotConverged) true.
func (e *NotConvergedError) Unwrap() error { return ErrNotConverged }

// FWWorkspace holds the iterate and direction buffers of a Frank-Wolfe run —
// and, for the away-step variant, the active atom set of the iterate — so
// repeated solves of same-sized problems allocate nothing. A workspace is
// sized lazily on first use and may be reused across calls of any dimension;
// it must not be shared between concurrent solves.
type FWWorkspace struct {
	x, grad, v, dir []float64

	// Active atom set of the away-step variant: the iterate is the convex
	// combination sum_s weights[s]*atoms[s] over the first nAtoms entries.
	// Entries beyond nAtoms are a reuse pool. The set is rebuilt from the
	// starting point on every call; nothing in it survives across solves.
	atoms   [][]float64
	weights []float64
	nAtoms  int
}

// resize makes every buffer exactly n long. It reallocates on growth, and
// also releases capacity when the requested size drops below a quarter of
// what is held: without that, a single large-instance solve would pin
// peak-sized scratch vectors (and, via resetAtoms, the atom pool) for the
// lifetime of the scheduler that owns the workspace. The 4x hysteresis keeps
// steady-state solves of equal or mildly varying size allocation-free.
func (ws *FWWorkspace) resize(n int) {
	if c := cap(ws.x); c < n || (n > 0 && c >= 4*n) {
		ws.x = make([]float64, n)
		ws.grad = make([]float64, n)
		ws.v = make([]float64, n)
		ws.dir = make([]float64, n)
	}
	ws.x = ws.x[:n]
	ws.grad = ws.grad[:n]
	ws.v = ws.v[:n]
	ws.dir = ws.dir[:n]
}

// weightEps is the atom weight below which an atom is dropped from the
// active set: barycentric mass that small is numerical dust and would only
// produce degenerate away steps.
const weightEps = 1e-12

// resetAtoms empties the active set, dropping the reuse pool when its entries
// were sized for a different dimension. Dropped entries are nilled out before
// the pool is truncated: atoms[:0] keeps the backing array alive, so a stale
// reference there would otherwise pin every peak-sized atom vector.
func (ws *FWWorkspace) resetAtoms(n int) {
	ws.nAtoms = 0
	if len(ws.atoms) > 0 && len(ws.atoms[0]) != n {
		for s := range ws.atoms {
			ws.atoms[s] = nil
		}
		ws.atoms = ws.atoms[:0]
	}
}

// pushAtom appends a copy of src with the given weight, reusing pooled
// storage when available.
func (ws *FWWorkspace) pushAtom(src []float64, w float64) {
	if ws.nAtoms < len(ws.atoms) {
		copy(ws.atoms[ws.nAtoms], src)
	} else {
		ws.atoms = append(ws.atoms, append([]float64(nil), src...))
	}
	if ws.nAtoms < len(ws.weights) {
		ws.weights[ws.nAtoms] = w
	} else {
		ws.weights = append(ws.weights, w)
	}
	ws.nAtoms++
}

// removeAtom swap-removes atom i, keeping its storage in the pool.
func (ws *FWWorkspace) removeAtom(i int) {
	last := ws.nAtoms - 1
	ws.atoms[i], ws.atoms[last] = ws.atoms[last], ws.atoms[i]
	ws.weights[i], ws.weights[last] = ws.weights[last], ws.weights[i]
	ws.nAtoms = last
}

// findAtom returns the index of the active atom equal to v, or -1. Equality
// is exact: oracle vertices are computed deterministically, so the same
// vertex reproduces the same floats; a near-duplicate merely becomes an
// extra atom, which costs a few flops but no correctness.
func (ws *FWWorkspace) findAtom(v []float64) int {
	for s := 0; s < ws.nAtoms; s++ {
		a := ws.atoms[s]
		same := true
		for j := range v {
			if a[j] != v[j] {
				same = false
				break
			}
		}
		if same {
			return s
		}
	}
	return -1
}

// FrankWolfe minimizes a convex objective over the polytope implicitly
// defined by the linear oracle, starting from the feasible point x0.
//
// Each iteration calls the oracle at the current gradient to obtain a vertex
// v, forms the direction d = v - x, and steps by an exact line search when
// the objective exposes CurvatureAlong (always the case for Quadratic), or by
// the classic diminishing step 2/(k+2) otherwise. The duality gap
// grad.(x - v) >= f(x) - f* provides a certified stopping criterion. With
// FWOptions.AwaySteps the solver additionally tracks the active atom set of
// the iterate and may step away from its worst atom, which is linearly
// convergent on polytopes.
func FrankWolfe(obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	return FrankWolfeWS(nil, obj, oracle, x0, opts)
}

// FrankWolfeWS is FrankWolfe running inside the given workspace (nil gets a
// fresh one). The returned FWResult.X aliases workspace memory and is valid
// only until the next call with the same workspace; callers that keep the
// iterate must copy it out first.
func FrankWolfeWS(ws *FWWorkspace, obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	if ws == nil {
		ws = &FWWorkspace{}
	}
	opts = opts.withDefaults()
	ws.resize(len(x0))
	if opts.AwaySteps {
		return awayStepFW(ws, obj, oracle, x0, opts)
	}
	return vanillaFW(ws, obj, oracle, x0, opts)
}

func vanillaFW(ws *FWWorkspace, obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	n := len(x0)
	x, grad, v, dir := ws.x, ws.grad, ws.v, ws.dir
	copy(x, x0)
	curv, hasCurv := obj.(CurvatureAlong)

	res := FWResult{Variant: VariantVanilla}
	// f(x) is tracked across iterations: the stopping test only needs it for
	// the relative-tolerance scale, and the exact line search updates it in
	// closed form, so the per-iteration full objective pass is unnecessary.
	fx := obj.Value(x)
	for k := 0; k < opts.MaxIters; k++ {
		res.Iters = k + 1
		obj.Grad(x, grad)
		for j := range v {
			v[j] = 0
		}
		oracle(grad, v)
		if len(v) != n {
			return FWResult{}, ErrDimensionMismatch
		}
		var gdotd float64
		for j := range dir {
			dir[j] = v[j] - x[j]
			gdotd += grad[j] * dir[j]
		}
		gap := -gdotd // grad.(x - v)
		res.Gap = gap
		if gap <= opts.Tol*(1+math.Abs(fx)) {
			res.Converged = true
			break
		}
		alpha := 2 / float64(k+2)
		var c float64
		if hasCurv {
			if c = curv.CurvatureAlong(x, dir); c > 0 {
				alpha = -gdotd / c
			} else {
				// Linear along dir: jump to the vertex.
				alpha = 1
			}
			if alpha > 1 {
				alpha = 1
			} else if alpha < 0 {
				alpha = 0
			}
		}
		for j := range x {
			x[j] += alpha * dir[j]
		}
		if hasCurv {
			if c < 0 {
				c = 0
			}
			fx += alpha*gdotd + 0.5*alpha*alpha*c
		} else {
			fx = obj.Value(x)
		}
	}
	res.X = x
	res.Value = obj.Value(x)
	if opts.RequireConvergence && !res.Converged {
		return res, &NotConvergedError{Solver: "frank-wolfe", Iters: res.Iters, Residual: res.Gap}
	}
	return res, nil
}

// awayStepFW is the away-step variant. The iterate is maintained as a convex
// combination of atoms: the starting point (which need not be a vertex) plus
// every oracle vertex stepped toward. Each iteration compares the classic
// Frank-Wolfe direction v-x against the away direction x-a, where a is the
// active atom with the largest gradient inner product, and takes the steeper
// of the two; an away step capped at its maximal length removes atom a from
// the set entirely (a "drop step"). Feasibility is preserved throughout:
// every iterate stays a convex combination of feasible atoms.
func awayStepFW(ws *FWWorkspace, obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	n := len(x0)
	x, grad, v, dir := ws.x, ws.grad, ws.v, ws.dir
	copy(x, x0)
	ws.resetAtoms(n)
	ws.pushAtom(x, 1)
	curv, hasCurv := obj.(CurvatureAlong)

	res := FWResult{Variant: VariantAwayStep}
	fx := obj.Value(x)
	for k := 0; k < opts.MaxIters; k++ {
		res.Iters = k + 1
		obj.Grad(x, grad)
		for j := range v {
			v[j] = 0
		}
		oracle(grad, v)
		if len(v) != n {
			return FWResult{}, ErrDimensionMismatch
		}
		var gX, gV float64
		for j := range grad {
			gX += grad[j] * x[j]
			gV += grad[j] * v[j]
		}
		gap := gX - gV // grad.(x - v), the certified FW gap
		res.Gap = gap
		if gap <= opts.Tol*(1+math.Abs(fx)) {
			res.Converged = true
			break
		}

		// Away atom: the active atom with the largest gradient inner product
		// (ties to the lowest index, keeping the run deterministic).
		aIdx, gA := 0, math.Inf(-1)
		for s := 0; s < ws.nAtoms; s++ {
			var d float64
			a := ws.atoms[s]
			for j := range grad {
				d += grad[j] * a[j]
			}
			if d > gA {
				gA, aIdx = d, s
			}
		}

		away := ws.nAtoms > 1 && gA-gX > gap
		var gammaMax, gdotd float64
		if away {
			w := ws.weights[aIdx]
			if w > 1-weightEps {
				// Numerically all mass already sits on the away atom; the
				// away direction is degenerate. Restart the active set at
				// the current (feasible) iterate and try again.
				ws.resetAtoms(n)
				ws.pushAtom(x, 1)
				continue
			}
			a := ws.atoms[aIdx]
			for j := range dir {
				dir[j] = x[j] - a[j]
			}
			gammaMax = w / (1 - w)
			gdotd = gX - gA
		} else {
			for j := range dir {
				dir[j] = v[j] - x[j]
			}
			gammaMax = 1
			gdotd = gV - gX
		}

		alpha := 2 / float64(k+2)
		var c float64
		if hasCurv {
			if c = curv.CurvatureAlong(x, dir); c > 0 {
				alpha = -gdotd / c
			} else {
				// Linear along dir: go as far as the step cap allows.
				alpha = gammaMax
			}
		}
		if alpha > gammaMax {
			alpha = gammaMax
		}
		if alpha < 0 {
			alpha = 0
		}
		for j := range x {
			x[j] += alpha * dir[j]
		}
		if hasCurv {
			if c < 0 {
				c = 0
			}
			fx += alpha*gdotd + 0.5*alpha*alpha*c
		} else {
			fx = obj.Value(x)
		}

		// Barycentric bookkeeping. Both updates preserve sum(weights) = 1.
		if away {
			for s := 0; s < ws.nAtoms; s++ {
				ws.weights[s] *= 1 + alpha
			}
			ws.weights[aIdx] -= alpha
		} else if alpha >= 1 {
			// Full step onto the vertex: the active set collapses to {v}.
			ws.resetAtoms(n)
			ws.pushAtom(v, 1)
		} else {
			for s := 0; s < ws.nAtoms; s++ {
				ws.weights[s] *= 1 - alpha
			}
			if idx := ws.findAtom(v); idx >= 0 {
				ws.weights[idx] += alpha
			} else {
				ws.pushAtom(v, alpha)
			}
		}
		for s := ws.nAtoms - 1; s >= 0; s-- {
			if ws.weights[s] <= weightEps {
				ws.removeAtom(s)
			}
		}
	}
	res.X = x
	res.Value = obj.Value(x)
	if opts.RequireConvergence && !res.Converged {
		return res, &NotConvergedError{Solver: "away-step frank-wolfe", Iters: res.Iters, Residual: res.Gap}
	}
	return res, nil
}
