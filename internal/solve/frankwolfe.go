package solve

import (
	"errors"
	"fmt"
	"math"
)

// LinearOracle solves the linearized subproblem of Frank-Wolfe: given the
// current gradient, it writes into out a minimizer of grad . v over the
// feasible polytope. The oracle defines the feasible set; the solver never
// needs an explicit constraint description.
type LinearOracle func(grad []float64, out []float64)

// FWOptions tunes the Frank-Wolfe solver. Zero values select defaults.
type FWOptions struct {
	// MaxIters caps the number of iterations (default 200).
	MaxIters int
	// Tol is the duality-gap stopping tolerance (default 1e-7), measured
	// relative to 1+|f(x)|.
	Tol float64
	// RequireConvergence makes FrankWolfe return a NotConvergedError
	// (wrapping ErrNotConverged) when the gap tolerance is not met within
	// MaxIters, instead of silently returning the last iterate. Off by
	// default: the last iterate is feasible and its gap bounds the
	// suboptimality, which is usually good enough for a slot decision.
	RequireConvergence bool
}

func (o FWOptions) withDefaults() FWOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// FWResult reports the outcome of a Frank-Wolfe run.
type FWResult struct {
	// X is the final iterate.
	X []float64
	// Value is f(X).
	Value float64
	// Gap is the final Frank-Wolfe duality gap grad.(x - v), an upper bound
	// on f(X) - f*.
	Gap float64
	// Iters is the number of iterations performed.
	Iters int
	// Converged reports whether the gap tolerance was met.
	Converged bool
}

// ErrDimensionMismatch is returned when the starting point and oracle output
// have different lengths.
var ErrDimensionMismatch = errors.New("solve: dimension mismatch between x0 and oracle output")

// ErrNotConverged is the sentinel wrapped by every convergence failure, so
// callers can classify solver outcomes with errors.Is without knowing which
// backend ran.
var ErrNotConverged = errors.New("solve: did not converge")

// NotConvergedError reports a solver stopping at its iteration cap with the
// tolerance unmet. It wraps ErrNotConverged (matchable with errors.Is) and
// carries the diagnosis for errors.As.
type NotConvergedError struct {
	// Solver names the backend, e.g. "frank-wolfe".
	Solver string
	// Iters is the number of iterations performed.
	Iters int
	// Residual is the final convergence residual (the duality gap for
	// Frank-Wolfe).
	Residual float64
}

// Error implements error.
func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("solve: %s did not converge after %d iterations (residual %g)", e.Solver, e.Iters, e.Residual)
}

// Unwrap makes errors.Is(err, ErrNotConverged) true.
func (e *NotConvergedError) Unwrap() error { return ErrNotConverged }

// FWWorkspace holds the iterate and direction buffers of a Frank-Wolfe run
// so repeated solves of same-sized problems allocate nothing. A workspace is
// sized lazily on first use and may be reused across calls of any dimension;
// it must not be shared between concurrent solves.
type FWWorkspace struct {
	x, grad, v, dir []float64
}

// resize makes every buffer exactly n long, reallocating only on growth.
func (ws *FWWorkspace) resize(n int) {
	if cap(ws.x) < n {
		ws.x = make([]float64, n)
		ws.grad = make([]float64, n)
		ws.v = make([]float64, n)
		ws.dir = make([]float64, n)
	}
	ws.x = ws.x[:n]
	ws.grad = ws.grad[:n]
	ws.v = ws.v[:n]
	ws.dir = ws.dir[:n]
}

// FrankWolfe minimizes a convex objective over the polytope implicitly
// defined by the linear oracle, starting from the feasible point x0.
//
// Each iteration calls the oracle at the current gradient to obtain a vertex
// v, forms the direction d = v - x, and steps by an exact line search when
// the objective exposes CurvatureAlong (always the case for Quadratic), or by
// the classic diminishing step 2/(k+2) otherwise. The duality gap
// grad.(x - v) >= f(x) - f* provides a certified stopping criterion.
func FrankWolfe(obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	return FrankWolfeWS(nil, obj, oracle, x0, opts)
}

// FrankWolfeWS is FrankWolfe running inside the given workspace (nil gets a
// fresh one). The returned FWResult.X aliases workspace memory and is valid
// only until the next call with the same workspace; callers that keep the
// iterate must copy it out first.
func FrankWolfeWS(ws *FWWorkspace, obj Objective, oracle LinearOracle, x0 []float64, opts FWOptions) (FWResult, error) {
	if ws == nil {
		ws = &FWWorkspace{}
	}
	opts = opts.withDefaults()
	n := len(x0)
	ws.resize(n)
	x, grad, v, dir := ws.x, ws.grad, ws.v, ws.dir
	copy(x, x0)
	curv, hasCurv := obj.(CurvatureAlong)

	res := FWResult{}
	for k := 0; k < opts.MaxIters; k++ {
		res.Iters = k + 1
		obj.Grad(x, grad)
		for j := range v {
			v[j] = 0
		}
		oracle(grad, v)
		if len(v) != n {
			return FWResult{}, ErrDimensionMismatch
		}
		var gdotd float64
		for j := range dir {
			dir[j] = v[j] - x[j]
			gdotd += grad[j] * dir[j]
		}
		gap := -gdotd // grad.(x - v)
		res.Gap = gap
		if gap <= opts.Tol*(1+math.Abs(obj.Value(x))) {
			res.Converged = true
			break
		}
		alpha := 2 / float64(k+2)
		if hasCurv {
			if c := curv.CurvatureAlong(x, dir); c > 0 {
				alpha = -gdotd / c
			} else {
				// Linear along dir: jump to the vertex.
				alpha = 1
			}
			if alpha > 1 {
				alpha = 1
			} else if alpha < 0 {
				alpha = 0
			}
		}
		for j := range x {
			x[j] += alpha * dir[j]
		}
	}
	res.X = x
	res.Value = obj.Value(x)
	if opts.RequireConvergence && !res.Converged {
		return res, &NotConvergedError{Solver: "frank-wolfe", Iters: res.Iters, Residual: res.Gap}
	}
	return res, nil
}
