package solve

import (
	"errors"
	"math"
	"testing"
)

// sharingTestProblem is the two-block scalar sharing program
//
//	min c1*x1 + c2*x2 + (x1 + x2 - target)^2,  x_i in [0, 1]
//
// whose block update and prox both have closed forms, so the test exercises
// the driver's iteration rather than inner solvers.
type sharingTestProblem struct {
	c      []float64
	target float64
	x      []float64
}

func (p *sharingTestProblem) blockSolver() SharingBlockSolver {
	return func(i int, v []float64, rho float64, contrib []float64) error {
		// argmin_{x in [0,1]} c_i x + (rho/2)(x - v)^2 = clamp(v - c_i/rho).
		x := v[0] - p.c[i]/rho
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		p.x[i] = x
		contrib[0] = x
		return nil
	}
}

func (p *sharingTestProblem) prox(n int) SharingProx {
	nf := float64(n)
	return func(t []float64, rho float64, z []float64) {
		// argmin_z (n z - target)^2 + (n rho/2)(z - t)^2:
		// 2n(nz - target) + n rho (z - t) = 0.
		z[0] = (2*p.target + rho*t[0]) / (2*nf + rho)
	}
}

func serialPar(n int, f func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			return err
		}
	}
	return nil
}

func (p *sharingTestProblem) value() float64 {
	s := 0.0
	v := 0.0
	for i, x := range p.x {
		v += p.c[i] * x
		s += x
	}
	d := s - p.target
	return v + d*d
}

func TestSharingADMMConvergesToOptimum(t *testing.T) {
	// Optimum: x2 = 0 (more expensive), x1 from 1 + 2(x1 - 1) = 0 => 0.5,
	// value 0.75.
	p := &sharingTestProblem{c: []float64{1, 3}, target: 1, x: make([]float64, 2)}
	contribs := [][]float64{make([]float64, 1), make([]float64, 1)}
	var ws SharingWorkspace
	res, err := SharingADMM(2, 1, &ws, p.blockSolver(), p.prox(2), contribs,
		serialPar, SharingOptions{Rho: 1, MaxIters: 400, AbsTol: 1e-12, RelTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(p.x[0]-0.5) > 1e-6 || math.Abs(p.x[1]) > 1e-6 {
		t.Errorf("iterate (%v, %v), want (0.5, 0)", p.x[0], p.x[1])
	}
	if v := p.value(); math.Abs(v-0.75) > 1e-6 {
		t.Errorf("objective %v, want 0.75", v)
	}
}

// TestSharingADMMOrderIndependent runs the block stage in reverse order and
// requires bit-identical iterates: the driver snapshots abar/Z/U before the
// stage and reduces serially in block order, so execution order of the block
// solves must not matter.
func TestSharingADMMOrderIndependent(t *testing.T) {
	run := func(par func(n int, f func(i int) error) error) ([]float64, SharingResult) {
		p := &sharingTestProblem{c: []float64{1, 3}, target: 1, x: make([]float64, 2)}
		contribs := [][]float64{make([]float64, 1), make([]float64, 1)}
		var ws SharingWorkspace
		res, err := SharingADMM(2, 1, &ws, p.blockSolver(), p.prox(2), contribs,
			par, SharingOptions{Rho: 2, MaxIters: 30, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), p.x...), res
	}
	reversePar := func(n int, f func(i int) error) error {
		for i := n - 1; i >= 0; i-- {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	xa, ra := run(serialPar)
	xb, rb := run(reversePar)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Errorf("block %d: forward %v vs reverse %v", i, xa[i], xb[i])
		}
	}
	if ra != rb {
		t.Errorf("results differ: %+v vs %+v", ra, rb)
	}
}

// TestSharingADMMWarmDuals verifies the workspace carries dual state: a second
// solve of the same problem starting from the converged duals finishes in far
// fewer iterations than the cold solve.
func TestSharingADMMWarmDuals(t *testing.T) {
	p := &sharingTestProblem{c: []float64{1, 3}, target: 1, x: make([]float64, 2)}
	contribs := [][]float64{make([]float64, 1), make([]float64, 1)}
	var ws SharingWorkspace
	opts := SharingOptions{Rho: 1, MaxIters: 400, AbsTol: 1e-10, RelTol: 1e-10}
	cold, err := SharingADMM(2, 1, &ws, p.blockSolver(), p.prox(2), contribs, serialPar, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SharingADMM(2, 1, &ws, p.blockSolver(), p.prox(2), contribs, serialPar, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged || warm.Iters >= cold.Iters {
		t.Errorf("warm solve took %d iterations, cold took %d", warm.Iters, cold.Iters)
	}
}

func TestSharingADMMValidation(t *testing.T) {
	var ws SharingWorkspace
	if _, err := SharingADMM(1, 1, &ws, nil, nil, nil, serialPar, SharingOptions{Rho: 0}); err == nil {
		t.Error("rho = 0 accepted")
	}
	if _, err := SharingADMM(1, 1, &ws, nil, nil, nil, serialPar, SharingOptions{Rho: math.NaN()}); err == nil {
		t.Error("rho = NaN accepted")
	}

	// Block errors propagate.
	boom := errors.New("boom")
	p := &sharingTestProblem{c: []float64{1}, target: 1, x: make([]float64, 1)}
	contribs := [][]float64{make([]float64, 1)}
	_, err := SharingADMM(1, 1, &ws,
		func(i int, v []float64, rho float64, contrib []float64) error { return boom },
		p.prox(1), contribs, serialPar, SharingOptions{Rho: 1})
	if !errors.Is(err, boom) {
		t.Errorf("block error not propagated: %v", err)
	}
}
