package solve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// simpleQuadratic builds f(x) = (x0-1)^2 + 2*(x1-2)^2 as a Quadratic.
func simpleQuadratic() *Quadratic {
	return &Quadratic{
		Linear: []float64{0, 0},
		Squares: []AffineSquare{
			{Weight: 1, Index: []int{0}, Coef: []float64{1}, Offset: -1},
			{Weight: 2, Index: []int{1}, Coef: []float64{1}, Offset: -2},
		},
	}
}

func TestQuadraticValueGradCurvature(t *testing.T) {
	q := simpleQuadratic()
	if err := q.Validate(2); err != nil {
		t.Fatal(err)
	}
	x := []float64{3, 1}
	if got, want := q.Value(x), 4.0+2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %v, want %v", got, want)
	}
	grad := make([]float64, 2)
	q.Grad(x, grad)
	if math.Abs(grad[0]-4) > 1e-12 || math.Abs(grad[1]+4) > 1e-12 {
		t.Errorf("Grad = %v, want [4 -4]", grad)
	}
	// Curvature along d: 2*(d0)^2 + 4*(d1)^2.
	if got, want := q.CurvatureAlong(x, []float64{1, 1}), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("CurvatureAlong = %v, want %v", got, want)
	}
}

func TestQuadraticGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := &Quadratic{
		Linear: []float64{0.3, -1.2, 2.0, 0.1},
		Squares: []AffineSquare{
			{Weight: 1.5, Index: []int{0, 2}, Coef: []float64{1, -2}, Offset: 0.5},
			{Weight: 0.7, Index: []int{1, 3}, Coef: []float64{2, 1}, Offset: -1},
			{Weight: 2.0, Index: []int{0, 1, 2, 3}, Coef: []float64{1, 1, 1, 1}, Offset: 0},
		},
		Const: 3,
	}
	if err := q.Validate(4); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	for j := range x {
		x[j] = rng.Float64()*4 - 2
	}
	grad := make([]float64, 4)
	q.Grad(x, grad)
	const eps = 1e-6
	for j := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[j] += eps
		xm[j] -= eps
		fd := (q.Value(xp) - q.Value(xm)) / (2 * eps)
		if math.Abs(fd-grad[j]) > 1e-5 {
			t.Errorf("grad[%d] = %v, finite difference %v", j, grad[j], fd)
		}
	}
}

func TestQuadraticValidate(t *testing.T) {
	q := &Quadratic{Linear: []float64{1}}
	if err := q.Validate(2); err == nil {
		t.Error("wrong linear length accepted")
	}
	q = &Quadratic{Linear: []float64{1, 1}, Squares: []AffineSquare{{Weight: -1}}}
	if err := q.Validate(2); err == nil {
		t.Error("negative weight accepted")
	}
	q = &Quadratic{Linear: []float64{1, 1}, Squares: []AffineSquare{{Weight: 1, Index: []int{5}, Coef: []float64{1}}}}
	if err := q.Validate(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	q = &Quadratic{Linear: []float64{1, 1}, Squares: []AffineSquare{{Weight: 1, Index: []int{0}, Coef: []float64{1, 2}}}}
	if err := q.Validate(2); err == nil {
		t.Error("mismatched index/coef accepted")
	}
}

// boxOracle is the linear oracle for the box [0, hi]^n: pick hi where the
// gradient is negative, 0 otherwise.
func boxOracle(hi []float64) LinearOracle {
	return func(grad, out []float64) {
		for j := range out {
			if grad[j] < 0 {
				out[j] = hi[j]
			} else {
				out[j] = 0
			}
		}
	}
}

func TestFrankWolfeOnBox(t *testing.T) {
	// Minimize (x0-1)^2 + 2(x1-2)^2 over [0,5]^2: optimum (1,2), value 0.
	q := simpleQuadratic()
	res, err := FrankWolfe(q, boxOracle([]float64{5, 5}), []float64{0, 0}, FWOptions{MaxIters: 2000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-2) > 1e-3 {
		t.Errorf("X = %v, want [1 2] (gap %v, iters %d)", res.X, res.Gap, res.Iters)
	}
	if res.Value > 1e-5 {
		t.Errorf("Value = %v, want ~0", res.Value)
	}
}

func TestFrankWolfeActiveConstraint(t *testing.T) {
	// Minimize (x0-4)^2 over [0,2]: optimum at the boundary x0=2.
	q := &Quadratic{
		Linear:  []float64{0},
		Squares: []AffineSquare{{Weight: 1, Index: []int{0}, Coef: []float64{1}, Offset: -4}},
	}
	res, err := FrankWolfe(q, boxOracle([]float64{2}), []float64{0}, FWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("X = %v, want [2]", res.X)
	}
	if !res.Converged {
		t.Error("expected convergence on a 1-D problem")
	}
}

func TestFrankWolfeLinearObjective(t *testing.T) {
	// A purely linear objective must land on a vertex in one step.
	q := &Quadratic{Linear: []float64{-1, 2, 0}}
	res, err := FrankWolfe(q, boxOracle([]float64{1, 1, 1}), []float64{0.5, 0.5, 0.5}, FWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-9 || math.Abs(res.X[1]) > 1e-9 {
		t.Errorf("X = %v, want x0=1, x1=0", res.X)
	}
}

func TestFrankWolfeGapIsUpperBound(t *testing.T) {
	// Property: for convex f, the reported gap bounds f(x) - f*.
	f := func(c0, c1 uint8) bool {
		q := &Quadratic{
			Linear: []float64{float64(c0%10) - 5, float64(c1%10) - 5},
			Squares: []AffineSquare{
				{Weight: 1, Index: []int{0}, Coef: []float64{1}, Offset: -float64(c1 % 4)},
				{Weight: 1, Index: []int{1}, Coef: []float64{1}, Offset: -float64(c0 % 4)},
			},
		}
		res, err := FrankWolfe(q, boxOracle([]float64{3, 3}), []float64{1, 1}, FWOptions{MaxIters: 500})
		if err != nil {
			return false
		}
		// Compare to dense grid optimum.
		best := math.Inf(1)
		for gx := 0; gx <= 90; gx++ {
			for gy := 0; gy <= 90; gy++ {
				v := q.Value([]float64{float64(gx) / 30, float64(gy) / 30})
				if v < best {
					best = v
				}
			}
		}
		return res.Value <= best+res.Gap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestProjectedGradientMatchesFrankWolfe(t *testing.T) {
	q := &Quadratic{
		Linear: []float64{-3, 1, -0.5},
		Squares: []AffineSquare{
			{Weight: 2, Index: []int{0, 1}, Coef: []float64{1, 1}, Offset: -1},
			{Weight: 1, Index: []int{2}, Coef: []float64{1}, Offset: -2},
		},
	}
	hi := []float64{2, 2, 2}
	fw, err := FrankWolfe(q, boxOracle(hi), []float64{0, 0, 0}, FWOptions{MaxIters: 3000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	pg := ProjectedGradient(q, func(x []float64) { ProjectBox(x, nil, hi) }, []float64{0, 0, 0}, PGOptions{MaxIters: 3000})
	if math.Abs(fw.Value-pg.Value) > 1e-4 {
		t.Errorf("FW value %v vs PG value %v", fw.Value, pg.Value)
	}
}

func TestProjectBox(t *testing.T) {
	x := []float64{-1, 0.5, 9}
	ProjectBox(x, nil, []float64{2, 2, 2})
	want := []float64{0, 0.5, 2}
	for j := range want {
		if x[j] != want[j] {
			t.Errorf("x[%d] = %v, want %v", j, x[j], want[j])
		}
	}
	x = []float64{-5, 5}
	ProjectBox(x, []float64{-1, -1}, nil)
	if x[0] != -1 || x[1] != 5 {
		t.Errorf("x = %v, want [-1 5]", x)
	}
}

func TestProjectWeightedCapBoxInactive(t *testing.T) {
	y := []float64{1, 1}
	ProjectWeightedCapBox(y, []float64{1, 1}, []float64{5, 5}, 10)
	if y[0] != 1 || y[1] != 1 {
		t.Errorf("inactive cap changed point: %v", y)
	}
}

func TestProjectWeightedCapBoxActive(t *testing.T) {
	// Project (3,3) onto {x >= 0, x <= 4, x0 + x1 <= 2}: answer (1,1).
	y := []float64{3, 3}
	ProjectWeightedCapBox(y, []float64{1, 1}, []float64{4, 4}, 2)
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]-1) > 1e-6 {
		t.Errorf("y = %v, want [1 1]", y)
	}
}

// TestProjectWeightedCapBoxIsProjection property: the result is feasible and
// no grid point of the feasible set is closer to the input.
func TestProjectWeightedCapBoxIsProjection(t *testing.T) {
	f := func(aa, bb uint8) bool {
		y0 := []float64{float64(aa%60)/10 - 1, float64(bb%60)/10 - 1}
		w := []float64{1 + float64(bb%3), 1 + float64(aa%3)}
		hi := []float64{3, 3}
		cap := 4.0
		y := append([]float64(nil), y0...)
		ProjectWeightedCapBox(y, w, hi, cap)
		// Feasible?
		if y[0] < -1e-9 || y[1] < -1e-9 || y[0] > 3+1e-9 || y[1] > 3+1e-9 {
			return false
		}
		if w[0]*y[0]+w[1]*y[1] > cap+1e-6 {
			return false
		}
		dist := (y[0]-y0[0])*(y[0]-y0[0]) + (y[1]-y0[1])*(y[1]-y0[1])
		for gx := 0; gx <= 60; gx++ {
			for gy := 0; gy <= 60; gy++ {
				px, py := float64(gx)/20, float64(gy)/20
				if w[0]*px+w[1]*py > cap {
					continue
				}
				d := (px-y0[0])*(px-y0[0]) + (py-y0[1])*(py-y0[1])
				if d < dist-1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSection(t *testing.T) {
	got := GoldenSection(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, 0, 5, 1e-9)
	if math.Abs(got-1.7) > 1e-6 {
		t.Errorf("GoldenSection = %v, want 1.7", got)
	}
	// Boundary minimum.
	got = GoldenSection(func(x float64) float64 { return x }, 2, 9, 1e-9)
	if math.Abs(got-2) > 1e-6 {
		t.Errorf("GoldenSection = %v, want 2", got)
	}
}

func TestFWOptionsValidate(t *testing.T) {
	good := []FWOptions{{}, {MaxIters: 10, Tol: 1e-3}, {AwaySteps: true}}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []FWOptions{
		{MaxIters: -1},
		{Tol: -1e-9},
		{Tol: math.NaN()},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", o)
		}
	}
}

func TestAwayStepOnBoxMatchesVanilla(t *testing.T) {
	q := simpleQuadratic()
	res, err := FrankWolfe(q, boxOracle([]float64{5, 5}), []float64{0, 0}, FWOptions{MaxIters: 2000, Tol: 1e-10, AwaySteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != VariantAwayStep {
		t.Errorf("Variant = %q, want %q", res.Variant, VariantAwayStep)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-2) > 1e-4 {
		t.Errorf("X = %v, want [1 2] (gap %v, iters %d)", res.X, res.Gap, res.Iters)
	}
	if res.Value > 1e-6 {
		t.Errorf("Value = %v, want ~0", res.Value)
	}
}

// TestAwayStepConvergesWhereVanillaZigzags pins the point of the variant: on
// a boundary optimum that is not a vertex, vanilla Frank-Wolfe zigzags
// between the adjacent vertices at O(1/k) while the away-step variant drops
// the misweighted atoms and converges linearly, reaching a far tighter gap in
// the same iteration budget.
func TestAwayStepConvergesWhereVanillaZigzags(t *testing.T) {
	// Minimize (x0 + x1 - 1)^2 + (x0 - x1 - 0.6)^2 over [0,1]^2: optimum
	// (0.8, 0.2), in the interior of no vertex; from a corner start the
	// vanilla method keeps averaging vertices.
	q := &Quadratic{
		Linear: []float64{0, 0},
		Squares: []AffineSquare{
			{Weight: 1, Index: []int{0, 1}, Coef: []float64{1, 1}, Offset: -1},
			{Weight: 1, Index: []int{0, 1}, Coef: []float64{1, -1}, Offset: -0.6},
		},
	}
	opts := FWOptions{MaxIters: 60, Tol: 1e-12}
	van, err := FrankWolfe(q, boxOracle([]float64{1, 1}), []float64{0, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AwaySteps = true
	away, err := FrankWolfe(q, boxOracle([]float64{1, 1}), []float64{0, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(away.X[0]-0.8) > 1e-6 || math.Abs(away.X[1]-0.2) > 1e-6 {
		t.Errorf("away X = %v, want [0.8 0.2]", away.X)
	}
	if away.Value > van.Value+1e-12 {
		t.Errorf("away value %v worse than vanilla %v", away.Value, van.Value)
	}
	if !away.Converged {
		t.Errorf("away-step did not converge in %d iters (gap %v); vanilla gap %v", away.Iters, away.Gap, van.Gap)
	}
	if away.Gap > van.Gap/10 && van.Gap > 1e-12 {
		t.Errorf("away gap %v not decisively tighter than vanilla gap %v", away.Gap, van.Gap)
	}
}

// TestAwayStepWarmStart starts from a feasible non-vertex point, the shape a
// cross-slot warm start hands the solver, and must still find the optimum.
func TestAwayStepWarmStart(t *testing.T) {
	q := simpleQuadratic()
	for _, start := range [][]float64{{0.9, 2.1}, {1, 2}, {5, 5}, {3, 0.5}} {
		res, err := FrankWolfe(q, boxOracle([]float64{5, 5}), start, FWOptions{MaxIters: 500, Tol: 1e-10, AwaySteps: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-2) > 1e-4 {
			t.Errorf("start %v: X = %v, want [1 2]", start, res.X)
		}
	}
	// A warm start at the optimum must converge immediately.
	res, err := FrankWolfe(q, boxOracle([]float64{5, 5}), []float64{1, 2}, FWOptions{AwaySteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 1 || !res.Converged {
		t.Errorf("optimum start took %d iters (converged %v), want 1", res.Iters, res.Converged)
	}
}

// TestAwayStepGapIsUpperBound mirrors the vanilla property test: the
// certified gap still bounds suboptimality with away steps on.
func TestAwayStepGapIsUpperBound(t *testing.T) {
	f := func(c0, c1 uint8) bool {
		q := &Quadratic{
			Linear: []float64{float64(c0%10) - 5, float64(c1%10) - 5},
			Squares: []AffineSquare{
				{Weight: 1, Index: []int{0}, Coef: []float64{1}, Offset: -float64(c1 % 4)},
				{Weight: 1, Index: []int{1}, Coef: []float64{1}, Offset: -float64(c0 % 4)},
			},
		}
		res, err := FrankWolfe(q, boxOracle([]float64{3, 3}), []float64{1, 1}, FWOptions{MaxIters: 500, AwaySteps: true})
		if err != nil {
			return false
		}
		best := math.Inf(1)
		for gx := 0; gx <= 90; gx++ {
			for gy := 0; gy <= 90; gy++ {
				v := q.Value([]float64{float64(gx) / 30, float64(gy) / 30})
				if v < best {
					best = v
				}
			}
		}
		return res.Value <= best+res.Gap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAwayStepWorkspaceReuse runs solves of different dimensions through one
// workspace: the atom pool must invalidate cleanly between them.
func TestAwayStepWorkspaceReuse(t *testing.T) {
	ws := &FWWorkspace{}
	opts := FWOptions{MaxIters: 500, Tol: 1e-10, AwaySteps: true}
	q2 := simpleQuadratic()
	q3 := &Quadratic{
		Linear: []float64{-3, 1, -0.5},
		Squares: []AffineSquare{
			{Weight: 2, Index: []int{0, 1}, Coef: []float64{1, 1}, Offset: -1},
			{Weight: 1, Index: []int{2}, Coef: []float64{1}, Offset: -2},
		},
	}
	for round := 0; round < 3; round++ {
		r2, err := FrankWolfeWS(ws, q2, boxOracle([]float64{5, 5}), []float64{0, 0}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r2.X[0]-1) > 1e-4 || math.Abs(r2.X[1]-2) > 1e-4 {
			t.Fatalf("round %d dim 2: X = %v", round, r2.X)
		}
		r3, err := FrankWolfeWS(ws, q3, boxOracle([]float64{2, 2, 2}), []float64{0, 0, 0}, opts)
		if err != nil {
			t.Fatal(err)
		}
		pg := ProjectedGradient(q3, func(x []float64) { ProjectBox(x, nil, []float64{2, 2, 2}) }, []float64{0, 0, 0}, PGOptions{MaxIters: 3000})
		if math.Abs(r3.Value-pg.Value) > 1e-4 {
			t.Fatalf("round %d dim 3: away %v vs PG %v", round, r3.Value, pg.Value)
		}
	}
}
