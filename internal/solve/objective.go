// Package solve provides the convex-optimization machinery used by the
// GreFar scheduler when the energy-fairness parameter beta is positive: the
// per-slot problem (paper eq. 14) is then a convex quadratic program over the
// scheduling polytope. The package offers a Frank-Wolfe (conditional
// gradient) solver, whose linear subproblem is exactly the beta=0 greedy
// oracle, and a projected-gradient solver used to cross-validate it, plus the
// projection and line-search primitives they need.
package solve

import "fmt"

// Objective is a differentiable convex function on R^n.
type Objective interface {
	// Value evaluates the function at x.
	Value(x []float64) float64
	// Grad writes the gradient at x into grad, which has the same length
	// as x.
	Grad(x, grad []float64)
}

// CurvatureAlong is implemented by objectives that can report the exact
// directional curvature d' H(x) d. For quadratics this is constant in x and
// enables exact line search.
type CurvatureAlong interface {
	CurvatureAlong(x, dir []float64) float64
}

// AffineSquare is one term w * (coef . x[idx] + offset)^2 of a Quadratic.
type AffineSquare struct {
	// Weight is w >= 0.
	Weight float64
	// Index and Coef describe the sparse linear form.
	Index []int
	Coef  []float64
	// Offset is the constant added inside the square.
	Offset float64
}

// value returns the affine form's value at x.
func (a *AffineSquare) value(x []float64) float64 {
	v := a.Offset
	for t, j := range a.Index {
		v += a.Coef[t] * x[j]
	}
	return v
}

// dot returns the affine form's directional derivative coef . d.
func (a *AffineSquare) dot(d []float64) float64 {
	var v float64
	for t, j := range a.Index {
		v += a.Coef[t] * d[j]
	}
	return v
}

// Quadratic is a convex function of the form
//
//	f(x) = Const + Linear.x + sum_t Weight_t * (Coef_t . x + Offset_t)^2
//
// — a linear part plus a weighted sum of squared affine forms. The GreFar
// slot objective has exactly this shape: the energy and queue-backlog terms
// are linear in (h, b) and the fairness penalty is a sum of squared account
// share deviations.
type Quadratic struct {
	// Linear is the linear coefficient vector (length n).
	Linear []float64
	// Squares are the squared affine terms.
	Squares []AffineSquare
	// Const is an additive constant (irrelevant to minimizers, relevant for
	// reporting objective values).
	Const float64
}

var (
	_ Objective      = (*Quadratic)(nil)
	_ CurvatureAlong = (*Quadratic)(nil)
)

// Validate checks index ranges and weight signs for dimension n.
func (q *Quadratic) Validate(n int) error {
	if len(q.Linear) != n {
		return fmt.Errorf("linear part has %d coefficients, want %d", len(q.Linear), n)
	}
	for t := range q.Squares {
		s := &q.Squares[t]
		if s.Weight < 0 {
			return fmt.Errorf("square %d: negative weight %v makes the function non-convex", t, s.Weight)
		}
		if len(s.Index) != len(s.Coef) {
			return fmt.Errorf("square %d: %d indices but %d coefficients", t, len(s.Index), len(s.Coef))
		}
		for _, j := range s.Index {
			if j < 0 || j >= n {
				return fmt.Errorf("square %d: index %d out of range [0,%d)", t, j, n)
			}
		}
	}
	return nil
}

// Value evaluates f(x).
func (q *Quadratic) Value(x []float64) float64 {
	v := q.Const
	for j, c := range q.Linear {
		v += c * x[j]
	}
	for t := range q.Squares {
		s := &q.Squares[t]
		a := s.value(x)
		v += s.Weight * a * a
	}
	return v
}

// Grad writes the gradient at x.
func (q *Quadratic) Grad(x, grad []float64) {
	copy(grad, q.Linear)
	for t := range q.Squares {
		s := &q.Squares[t]
		scale := 2 * s.Weight * s.value(x)
		if scale == 0 {
			continue
		}
		for u, j := range s.Index {
			grad[j] += scale * s.Coef[u]
		}
	}
}

// CurvatureAlong returns d' H d = sum_t 2*Weight_t*(Coef_t . d)^2, which is
// independent of x for a quadratic.
func (q *Quadratic) CurvatureAlong(_, dir []float64) float64 {
	var v float64
	for t := range q.Squares {
		s := &q.Squares[t]
		dd := s.dot(dir)
		v += 2 * s.Weight * dd * dd
	}
	return v
}
