package solve

import (
	"fmt"
	"math"
)

// This file implements the consensus-sharing form of ADMM (Boyd et al.,
// "Distributed Optimization and Statistical Learning via ADMM", §7.3) used by
// the decomposed slot solver: n blocks, each with its own feasible set and
// linear cost, coupled only through a shared M-dimensional sum of per-block
// contributions on which a convex coupling function is charged.
//
//	minimize  sum_i f_i(x_i) + g(sum_i A_i x_i)
//	subject to x_i in P_i
//
// In scaled form with block averages (abar = mean_i A_i x_i, z the averaged
// coupling iterate, u the scaled dual):
//
//	x_i^{k+1} = argmin_{P_i} f_i(x_i) + (rho/2) ||A_i x_i - v_i||^2
//	            with v_i = A_i x_i^k - abar^k + z^k - u^k
//	z^{k+1}   = argmin_z g(n z) + (n rho/2) ||z - (abar^{k+1} + u^k)||^2
//	u^{k+1}   = u^k + abar^{k+1} - z^{k+1}
//
// The driver is generic: block subproblems and the coupling prox are supplied
// as callbacks, and the caller decides how (or whether) block solves run in
// parallel. Reductions — the averaging of block contributions and the dual
// update — always run serially in block order, which makes the iteration
// byte-stable for any parallelism degree of the block stage.

// SharingBlockSolver solves block i's subproblem
//
//	argmin_{x_i in P_i} f_i(x_i) + (rho/2) ||A_i x_i - v||^2
//
// for the m-dimensional target v, updating the caller's block iterate in
// place and writing the new contribution A_i x_i into contrib (len m). The v
// slice is owned by the driver and valid only for the duration of the call.
type SharingBlockSolver func(i int, v []float64, rho float64, contrib []float64) error

// SharingProx solves the coupling update: given t = abar + u it writes into z
// the minimizer of g(n*z_m) + (n*rho/2)(z_m - t_m)^2 per coordinate (or the
// joint minimizer for non-separable g).
type SharingProx func(t []float64, rho float64, z []float64)

// SharingOptions tunes SharingADMM. Zero values select defaults.
type SharingOptions struct {
	// Rho is the starting penalty parameter (required > 0).
	Rho float64
	// MaxIters caps the outer iterations (default 25).
	MaxIters int
	// AbsTol and RelTol build the primal/dual stopping thresholds in the
	// usual Boyd §3.3 form (defaults 1e-10 and 1e-8).
	AbsTol, RelTol float64
	// Adaptive enables residual-balancing rho adaptation: rho doubles when
	// the primal residual dominates the dual by 10x and halves in the
	// opposite case, rescaling the scaled dual to match.
	Adaptive bool
}

func (o SharingOptions) withDefaults() SharingOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 25
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-10
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-8
	}
	return o
}

// SharingResult reports one SharingADMM run.
type SharingResult struct {
	// Iters is the number of outer iterations performed.
	Iters int
	// PriRes and DualRes are the final primal (||abar - z||) and dual
	// (rho*||z - z_prev||) residual norms.
	PriRes, DualRes float64
	// Converged reports whether both residual thresholds were met.
	Converged bool
	// Rho is the final penalty parameter (differs from the starting value
	// only under Adaptive).
	Rho float64
}

// SharingWorkspace carries the dual state of the sharing iteration across
// calls, so consecutive solves of a slowly drifting problem warm-start from
// the previous slot's prices. U and Z are exported: they are the part of the
// iteration a caller must persist to make a restored run continue exactly.
type SharingWorkspace struct {
	// U is the scaled dual on the coupling constraint; Z the averaged
	// coupling iterate. Both have the coupling dimension m.
	U, Z []float64

	abar, zprev, t []float64
	vbuf           [][]float64
}

// Resize shapes the workspace for n blocks and coupling dimension m,
// preserving U and Z when the dimension is unchanged and zeroing them
// otherwise.
func (ws *SharingWorkspace) Resize(n, m int) {
	if len(ws.U) != m {
		ws.U = make([]float64, m)
		ws.Z = make([]float64, m)
	}
	if len(ws.abar) != m {
		ws.abar = make([]float64, m)
		ws.zprev = make([]float64, m)
		ws.t = make([]float64, m)
	}
	if len(ws.vbuf) < n || (len(ws.vbuf) > 0 && len(ws.vbuf[0]) != m) {
		ws.vbuf = make([][]float64, n)
		for i := range ws.vbuf {
			ws.vbuf[i] = make([]float64, m)
		}
	}
}

// Reset zeroes the carried dual state, restarting the iteration cold.
func (ws *SharingWorkspace) Reset() {
	for j := range ws.U {
		ws.U[j] = 0
		ws.Z[j] = 0
	}
}

// SharingADMM runs the scaled sharing iteration over n blocks with coupling
// dimension m. contribs[i] must hold A_i x_i for the caller's current block
// iterates on entry and is kept up to date by the block solver; parallel runs
// the block stage (call f for every i in [0, n), any order or concurrency)
// and must return the first error by block index. The dual state carried in
// ws is used as-is; callers that want a cold start call ws.Reset first.
func SharingADMM(n, m int, ws *SharingWorkspace, solveBlock SharingBlockSolver, prox SharingProx, contribs [][]float64, parallel func(n int, f func(i int) error) error, opts SharingOptions) (SharingResult, error) {
	if opts.Rho <= 0 || math.IsNaN(opts.Rho) {
		return SharingResult{}, fmt.Errorf("solve: sharing ADMM rho = %v is not positive", opts.Rho)
	}
	opts = opts.withDefaults()
	ws.Resize(n, m)
	res := SharingResult{Rho: opts.Rho}
	rho := opts.Rho
	sqrtM := math.Sqrt(float64(m))

	// abar from the caller's starting iterates, serial in block order.
	average := func() {
		for j := range ws.abar {
			ws.abar[j] = 0
		}
		for i := 0; i < n; i++ {
			ci := contribs[i]
			for j := range ws.abar {
				ws.abar[j] += ci[j]
			}
		}
		inv := 1 / float64(n)
		for j := range ws.abar {
			ws.abar[j] *= inv
		}
	}
	average()

	for k := 0; k < opts.MaxIters; k++ {
		res.Iters = k + 1

		// Block stage: each block gets its own target buffer so the stage
		// can run concurrently; the targets are built from the same abar/Z/U
		// snapshot regardless of execution order.
		err := parallel(n, func(i int) error {
			v := ws.vbuf[i]
			ci := contribs[i]
			for j := range v {
				v[j] = ci[j] - ws.abar[j] + ws.Z[j] - ws.U[j]
			}
			return solveBlock(i, v, rho, ci)
		})
		if err != nil {
			return res, err
		}
		average()

		copy(ws.zprev, ws.Z)
		for j := range ws.t {
			ws.t[j] = ws.abar[j] + ws.U[j]
		}
		prox(ws.t, rho, ws.Z)

		var pri, dual, nAbar, nZ, nU float64
		for j := range ws.U {
			r := ws.abar[j] - ws.Z[j]
			ws.U[j] += r
			pri += r * r
			s := ws.Z[j] - ws.zprev[j]
			dual += s * s
			nAbar += ws.abar[j] * ws.abar[j]
			nZ += ws.Z[j] * ws.Z[j]
			nU += ws.U[j] * ws.U[j]
		}
		res.PriRes = math.Sqrt(pri)
		res.DualRes = rho * math.Sqrt(dual)
		epsPri := opts.AbsTol*sqrtM + opts.RelTol*math.Max(math.Sqrt(nAbar), math.Sqrt(nZ))
		epsDual := opts.AbsTol*sqrtM + opts.RelTol*rho*math.Sqrt(nU)
		if res.PriRes <= epsPri && res.DualRes <= epsDual {
			res.Converged = true
			break
		}

		if opts.Adaptive {
			// Residual balancing (Boyd §3.4.1): rescaling rho also rescales
			// the scaled dual u = y/rho so the underlying multiplier y is
			// unchanged.
			if res.PriRes > 10*res.DualRes {
				rho *= 2
				for j := range ws.U {
					ws.U[j] /= 2
				}
			} else if res.DualRes > 10*res.PriRes {
				rho /= 2
				for j := range ws.U {
					ws.U[j] *= 2
				}
			}
		}
	}
	res.Rho = rho
	return res, nil
}
