package solve

import "math"

// Projector maps a point to its Euclidean projection onto the feasible set,
// in place.
type Projector func(x []float64)

// PGOptions tunes the projected-gradient solver. Zero values select
// defaults.
type PGOptions struct {
	// MaxIters caps iterations (default 500).
	MaxIters int
	// Step is the initial step size (default 1.0); each iteration uses
	// Armijo backtracking from this value.
	Step float64
	// Tol stops when the projected step moves less than Tol in L-infinity
	// norm (default 1e-9).
	Tol float64
}

func (o PGOptions) withDefaults() PGOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Step <= 0 {
		o.Step = 1.0
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// PGResult reports the outcome of a projected-gradient run.
type PGResult struct {
	// X is the final iterate.
	X []float64
	// Value is f(X).
	Value float64
	// Iters is the number of iterations performed.
	Iters int
	// Converged reports whether the movement tolerance was met.
	Converged bool
}

// ProjectedGradient minimizes a convex objective over the set defined by the
// projector, starting from the feasible point x0, using Armijo backtracking
// line search on the projected step.
func ProjectedGradient(obj Objective, project Projector, x0 []float64, opts PGOptions) PGResult {
	opts = opts.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	project(x)
	grad := make([]float64, n)
	cand := make([]float64, n)

	res := PGResult{}
	fx := obj.Value(x)
	step := opts.Step
	for k := 0; k < opts.MaxIters; k++ {
		res.Iters = k + 1
		obj.Grad(x, grad)

		// Backtrack until the projected point improves the objective.
		accepted := false
		for bt := 0; bt < 40; bt++ {
			for j := range cand {
				cand[j] = x[j] - step*grad[j]
			}
			project(cand)
			fc := obj.Value(cand)
			if fc <= fx-1e-12 {
				accepted = true
				break
			}
			// No sufficient decrease: also accept stationarity (projection
			// returned essentially x).
			if maxAbsDiff(cand, x) <= opts.Tol {
				res.Converged = true
				res.X = x
				res.Value = fx
				return res
			}
			step /= 2
		}
		if !accepted {
			res.Converged = true
			break
		}
		move := maxAbsDiff(cand, x)
		copy(x, cand)
		fx = obj.Value(x)
		if move <= opts.Tol {
			res.Converged = true
			break
		}
		// Gentle step growth so a single cautious backtrack does not keep
		// the step small forever.
		step *= 1.3
		if step > 1e6 {
			step = 1e6
		}
	}
	res.X = x
	res.Value = fx
	return res
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for j := range a {
		if d := math.Abs(a[j] - b[j]); d > m {
			m = d
		}
	}
	return m
}

// ProjectBox projects x onto the box [lo, hi] element-wise, in place. A nil
// lo means zero lower bounds; a nil hi means no upper bounds.
func ProjectBox(x, lo, hi []float64) {
	for j := range x {
		l := 0.0
		if lo != nil {
			l = lo[j]
		}
		if x[j] < l {
			x[j] = l
		}
		if hi != nil && x[j] > hi[j] {
			x[j] = hi[j]
		}
	}
}

// ProjectWeightedCapBox projects y (in place) onto the set
//
//	{ x : 0 <= x_j <= hi_j,  sum_j w_j * x_j <= cap }
//
// with all w_j > 0, by bisecting on the Lagrange multiplier of the capacity
// constraint. This is the feasible region of the processing variables of a
// single data center (paper eq. 11) expressed in job units.
func ProjectWeightedCapBox(y, w, hi []float64, cap float64) {
	// The KKT conditions give x_j = clamp(y0_j - lambda*w_j, 0, hi_j) in
	// terms of the ORIGINAL point, so keep it before any clipping.
	y0 := append([]float64(nil), y...)
	clip := func(lambda float64) float64 {
		var total float64
		for j := range y0 {
			v := y0[j] - lambda*w[j]
			if v < 0 {
				v = 0
			}
			if hi != nil && v > hi[j] {
				v = hi[j]
			}
			total += w[j] * v
		}
		return total
	}
	ProjectBox(y, nil, hi)
	var used float64
	for j := range y {
		used += w[j] * y[j]
	}
	if used <= cap {
		return
	}
	// Find lambda such that the clipped point meets the capacity.
	lo, hiL := 0.0, 1.0
	for clip(hiL) > cap {
		hiL *= 2
		if hiL > 1e18 {
			break
		}
	}
	for it := 0; it < 100; it++ {
		mid := (lo + hiL) / 2
		if clip(mid) > cap {
			lo = mid
		} else {
			hiL = mid
		}
	}
	lambda := hiL
	for j := range y {
		v := y0[j] - lambda*w[j]
		if v < 0 {
			v = 0
		}
		if hi != nil && v > hi[j] {
			v = hi[j]
		}
		y[j] = v
	}
}

// goldenMaxIters caps a golden-section search. The bracket shrinks by the
// golden ratio every iteration, so 200 iterations cover any tolerance
// representable in float64 (0.618^200 ~ 1e-42 of the initial width); the cap
// only ever fires when tol is below the floating-point resolution of the
// interval and the width test alone would spin forever.
const goldenMaxIters = 200

// GoldenSection minimizes a unimodal function on [a, b] to within tol and
// returns the minimizing point. It is used as a generic line-search fallback
// and in tests as an independent check on exact line searches. The search
// exits as soon as the bracket width reaches tol; if the width stalls at the
// floating-point resolution of the interval before that (tol below one ulp of
// the endpoints), the stall is detected and the search returns instead of
// iterating to the cap.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for it := 0; b-a > tol && it < goldenMaxIters; it++ {
		prev := b - a
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
		if !(b-a < prev) {
			// The bracket stopped shrinking: endpoints are adjacent floats
			// (or f returned NaN and poisoned the comparisons). More
			// iterations cannot improve the answer.
			break
		}
	}
	return (a + b) / 2
}
