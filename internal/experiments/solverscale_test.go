package experiments

import (
	"math"
	"testing"
)

func TestNewSolverScaleInstanceShape(t *testing.T) {
	in, err := NewSolverScaleInstance(2012, 40, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Cluster.N() != 40 || in.Cluster.J() != 20 {
		t.Fatalf("instance shape %dx%d, want 40x20", in.Cluster.N(), in.Cluster.J())
	}
	want := 0.1 * 40 * 20
	if f := float64(in.ActivePairs); f < want/2 || f > want*2 {
		t.Errorf("active pairs %d, want around %.0f", in.ActivePairs, want)
	}
	if _, err := NewSolverScaleInstance(1, 0, 5, 0.1); err == nil {
		t.Error("zero-site instance accepted")
	}
	if _, err := NewSolverScaleInstance(1, 5, 5, 1.5); err == nil {
		t.Error("density > 1 accepted")
	}

	// Mutation drifts values but preserves the active-pair set.
	active := func() int {
		n := 0
		for i := range in.Lengths.Local {
			for j := range in.Lengths.Local[i] {
				if in.Lengths.Local[i][j] > 0 {
					n++
				}
			}
		}
		return n
	}
	before := active()
	for s := 0; s < 10; s++ {
		in.Mutate()
	}
	if after := active(); after != before {
		t.Errorf("mutation changed active pairs: %d -> %d", before, after)
	}
}

// TestSolverScaleSweep runs a miniature sweep and checks every arm produced a
// sane measurement and all arms of a cell land on nearby objectives — the
// solvers are interchangeable, not just individually fast.
func TestSolverScaleSweep(t *testing.T) {
	res, err := SolverScale(SolverScaleConfig{
		Seed:      2012,
		Shapes:    [][2]int{{12, 6}},
		Densities: []float64{0.2},
		Slots:     4,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4 arms", len(res.Points))
	}
	names := map[string]bool{}
	var ref float64
	for x, pt := range res.Points {
		names[pt.Solver] = true
		if pt.DecideMicros <= 0 {
			t.Errorf("%s: non-positive decide latency %v", pt.Solver, pt.DecideMicros)
		}
		if pt.AllocsPerDecide < 0 || math.IsNaN(pt.Objective) {
			t.Errorf("%s: bad measurement %+v", pt.Solver, pt)
		}
		if x == 0 {
			ref = pt.Objective
			continue
		}
		scale := math.Max(1, math.Abs(ref))
		if math.Abs(pt.Objective-ref)/scale > 0.01 {
			t.Errorf("%s objective %v far from monolithic %v", pt.Solver, pt.Objective, ref)
		}
	}
	for _, want := range []string{"monolithic", "sparse", "decomposed", "decomposed-pool"} {
		if !names[want] {
			t.Errorf("missing arm %q", want)
		}
	}
}
