package experiments

import (
	"context"
	"testing"
	"time"
)

// TestScaleSweepSmall runs the full scale harness — fleet construction, the
// fault-free cell, and the chaos cell — at test-sized fleets and checks every
// measured field is sane. The production-sized sweep (100..2000 agents) runs
// through grefar-sim and make hollow-bench, not in tier-1.
func TestScaleSweepSmall(t *testing.T) {
	res, err := Scale(ScaleConfig{
		Seed:   7,
		Agents: []int{8, 24},
		Slots:  16,
		Chaos:  true,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4 (2 sizes x fault-free+chaos)", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.P50 <= 0 || pt.P99 < pt.P50 {
			t.Errorf("agents=%d chaos=%v: bad latency percentiles p50=%v p99=%v", pt.Agents, pt.Chaos, pt.P50, pt.P99)
		}
		if pt.SlotsPerSec <= 0 {
			t.Errorf("agents=%d chaos=%v: throughput %v", pt.Agents, pt.Chaos, pt.SlotsPerSec)
		}
		if pt.AllocsPerSlot <= 0 {
			t.Errorf("agents=%d chaos=%v: allocs/slot %v", pt.Agents, pt.Chaos, pt.AllocsPerSlot)
		}
		if pt.EnergyPerSlot <= 0 {
			t.Errorf("agents=%d chaos=%v: no energy spent; the fleet did no work", pt.Agents, pt.Chaos)
		}
		if !pt.Chaos && pt.DegradedSlots != 0 {
			t.Errorf("agents=%d: fault-free run reported %d degraded slots", pt.Agents, pt.DegradedSlots)
		}
	}
	// The chaos cells must actually exercise the degraded path: the plan
	// partitions at least one agent inside the horizon.
	for _, pt := range res.Points {
		if pt.Chaos && pt.DegradedSlots == 0 {
			t.Errorf("agents=%d: chaos run never degraded", pt.Agents)
		}
	}
}

func TestScaleContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Scale(ScaleConfig{Agents: []int{8}, Slots: 1000, Context: ctx})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
}

func TestScaleChaosPlanShape(t *testing.T) {
	cfg := ScaleConfig{Slots: 40, KillFrac: 0.05}.withDefaults()
	for _, n := range []int{2, 20, 100, 1000} {
		plan := scaleChaosPlan(cfg, n)
		if err := plan.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int(float64(n) * 0.05)
		if want < 1 {
			want = 1
		}
		if want >= n {
			want = n - 1
		}
		if len(plan.Windows) != want {
			t.Errorf("n=%d: %d windows, want %d", n, len(plan.Windows), want)
		}
		for _, w := range plan.Windows {
			if w.Agent < 1 || w.Agent >= n {
				t.Errorf("n=%d: window partitions agent %d", n, w.Agent)
			}
			if w.From < 0 || w.To > cfg.Slots {
				t.Errorf("n=%d: window [%d,%d) outside horizon %d", n, w.From, w.To, cfg.Slots)
			}
		}
	}
}

// TestScaleLatencyUnits guards against the classic harness bug of reporting
// percentiles in the wrong unit: a 16-slot run's p99 must be under a minute.
func TestScaleLatencyUnits(t *testing.T) {
	res, err := Scale(ScaleConfig{Seed: 3, Agents: []int{8}, Slots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p99 := res.Points[0].P99; p99 > time.Minute {
		t.Errorf("p99 = %v; unit bug?", p99)
	}
}
