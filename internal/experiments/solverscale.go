package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/queue"
)

// solverScaleAccounts is how many organizations share the synthetic
// large-instance cluster: enough that the decomposed solver's per-account
// coupling terms are non-trivial, few enough that the fairness prox stays a
// small fraction of the slot cost.
const solverScaleAccounts = 8

// SolverScaleInstance is one synthetic large slot instance: a validated
// cluster of N multi-server data centers and J job types, a price/availability
// snapshot, and a backlog whose active-pair density (fraction of eligible
// (site, job) pairs with positive backlog) is the experiment's sparsity knob.
type SolverScaleInstance struct {
	Cluster *model.Cluster
	State   *model.State
	Lengths queue.Lengths
	// ActivePairs counts (i, j) pairs with positive local backlog.
	ActivePairs int
	rng         *rand.Rand
}

// NewSolverScaleInstance builds a deterministic instance at the requested
// shape. Sites cycle through three efficiency classes (mirroring the hollow
// scale cluster) with two server types each; jobs are eligible everywhere and
// striped across solverScaleAccounts accounts; prices follow a diurnal-ish
// per-site curve. The backlog seeds roughly density*N*J active pairs.
func NewSolverScaleInstance(seed int64, n, j int, density float64) (*SolverScaleInstance, error) {
	if n <= 0 || j <= 0 {
		return nil, fmt.Errorf("solverscale: shape %dx%d is not positive", n, j)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("solverscale: density %g outside [0, 1]", density)
	}
	c := &model.Cluster{
		DataCenters: make([]model.DataCenter, n),
		JobTypes:    make([]model.JobType, j),
		Accounts:    make([]model.Account, solverScaleAccounts),
	}
	everywhere := make([]int, n)
	for i := range everywhere {
		everywhere[i] = i
	}
	for i := range c.DataCenters {
		class := i % 3
		c.DataCenters[i] = model.DataCenter{
			Name: fmt.Sprintf("ss-dc%d", i),
			Servers: []model.ServerType{
				{Name: "std", Speed: []float64{2.0, 1.6, 1.2}[class], Power: []float64{1.0, 1.1, 1.3}[class]},
				{Name: "eco", Speed: []float64{1.2, 1.0, 0.8}[class], Power: []float64{0.5, 0.6, 0.7}[class]},
			},
		}
	}
	for t := range c.JobTypes {
		c.JobTypes[t] = model.JobType{
			Name:       fmt.Sprintf("ss-type%d", t),
			Demand:     1.0 + 0.25*float64(t%5),
			Eligible:   everywhere,
			Account:    t % solverScaleAccounts,
			MaxArrival: 4 * n,
		}
	}
	for m := range c.Accounts {
		c.Accounts[m] = model.Account{Name: fmt.Sprintf("org%d", m), Weight: 1 + 0.5*float64(m%3)}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("solverscale: %w", err)
	}

	rng := rand.New(rand.NewSource(seed))
	st := model.NewState(c)
	for i := 0; i < n; i++ {
		st.Avail[i] = []float64{3 + float64(rng.Intn(3)), 2 + float64(rng.Intn(3))}
		level := []float64{0.40, 0.45, 0.55}[i%3]
		st.Price[i] = level * (1 + 0.3*math.Cos(2*math.Pi*float64(i%24)/24))
	}

	in := &SolverScaleInstance{Cluster: c, State: st, rng: rng}
	in.Lengths = queue.Lengths{Central: make([]float64, j), Local: make([][]float64, n)}
	for t := 0; t < j; t++ {
		in.Lengths.Central[t] = float64(rng.Intn(20))
	}
	for i := 0; i < n; i++ {
		in.Lengths.Local[i] = make([]float64, j)
		for t := 0; t < j; t++ {
			if rng.Float64() < density {
				in.Lengths.Local[i][t] = float64(1 + rng.Intn(25))
				in.ActivePairs++
			}
		}
	}
	return in, nil
}

// Mutate applies one slot's worth of small input drift — a few backlog
// updates on already-active pairs plus a price nudge — without changing which
// pairs are active, so an incremental-refresh solver stays on its in-place
// path. It mirrors the queue evolution between consecutive slot decisions.
func (in *SolverScaleInstance) Mutate() {
	c := in.Cluster
	for step := 0; step < 4; step++ {
		i := in.rng.Intn(c.N())
		for t := range in.Lengths.Local[i] {
			if in.Lengths.Local[i][t] > 0 {
				in.Lengths.Local[i][t] = 1 + float64(in.rng.Intn(25))
			}
		}
	}
	i := in.rng.Intn(c.N())
	in.State.Price[i] = 0.3 + 0.4*in.rng.Float64()
}

// SolverScaleConfig tunes the solver-scale sweep: for each (N, J, density)
// shape, every solver arm decides the same evolving slot sequence while the
// harness measures per-decision latency and allocation rate.
type SolverScaleConfig struct {
	// Seed drives instance generation (0 = DefaultSeed; SeedZero for 0).
	Seed int64
	// Shapes are the (N, J) grid points (default {50, 25}, {100, 50},
	// {200, 100}).
	Shapes [][2]int
	// Densities are the active-pair fractions per shape (default 0.1, 0.5).
	Densities []float64
	// Slots is the per-arm horizon (default 20).
	Slots int
	// Beta and V parameterize the objective (defaults 100, 7.5).
	Beta, V float64
	// Workers is the pooled arm's worker count (0 = one per CPU).
	Workers int
	// Context cancels the sweep between arms.
	Context context.Context
}

func (c SolverScaleConfig) withDefaults() SolverScaleConfig {
	c.Seed = CanonicalSeed(c.Seed)
	if len(c.Shapes) == 0 {
		c.Shapes = [][2]int{{50, 25}, {100, 50}, {200, 100}}
	}
	if len(c.Densities) == 0 {
		c.Densities = []float64{0.1, 0.5}
	}
	if c.Slots <= 0 {
		c.Slots = 20
	}
	if c.Beta == 0 {
		c.Beta = 100
	}
	if c.V == 0 {
		c.V = 7.5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// SolverScalePoint is one measured (shape, density, solver arm) cell.
type SolverScalePoint struct {
	// N, J, and ActivePairs describe the instance; Density is the requested
	// active-pair fraction.
	N, J, ActivePairs int
	Density           float64
	// Solver names the arm; Workers is its pool size (1 = serial).
	Solver  string
	Workers int
	// DecideMicros is the mean per-Decide wall time over the horizon.
	DecideMicros float64
	// AllocsPerDecide is the mean heap allocation count per Decide.
	AllocsPerDecide float64
	// Objective is the final slot's processing objective, a cross-arm
	// agreement signal (arms on the same instance must match closely).
	Objective float64
}

// SolverScaleResult is the full sweep.
type SolverScaleResult struct {
	Points []SolverScalePoint
}

// solverScaleArm describes one solver configuration under measurement.
type solverScaleArm struct {
	name    string
	kind    core.SolverKind
	workers int
}

// solverScaleRun measures one cell: fresh instance, warm-up decide, then the
// timed horizon with per-slot input drift.
func solverScaleRun(cfg SolverScaleConfig, shape [2]int, density float64, arm solverScaleArm) (SolverScalePoint, error) {
	pt := SolverScalePoint{N: shape[0], J: shape[1], Density: density, Solver: arm.name, Workers: arm.workers}
	in, err := NewSolverScaleInstance(cfg.Seed, shape[0], shape[1], density)
	if err != nil {
		return pt, err
	}
	pt.ActivePairs = in.ActivePairs
	ccfg := core.Config{V: cfg.V, Beta: cfg.Beta, WarmStart: true, Solver: arm.kind, SolverWorkers: arm.workers}
	g, err := core.New(in.Cluster, ccfg)
	if err != nil {
		return pt, err
	}
	if _, err := g.Decide(0, in.State, in.Lengths); err != nil {
		return pt, err
	}

	var act *model.Action
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for t := 1; t <= cfg.Slots; t++ {
		if err := cfg.Context.Err(); err != nil {
			return pt, err
		}
		in.Mutate()
		if act, err = g.Decide(t, in.State, in.Lengths); err != nil {
			return pt, fmt.Errorf("%s %dx%d slot %d: %w", arm.name, shape[0], shape[1], t, err)
		}
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)

	pt.DecideMicros = total.Seconds() * 1e6 / float64(cfg.Slots)
	pt.AllocsPerDecide = float64(after.Mallocs-before.Mallocs) / float64(cfg.Slots)
	for i := range act.Process {
		for j, h := range act.Process[i] {
			pt.Objective += -in.Lengths.Local[i][j] * h
		}
		for k, b := range act.Busy[i] {
			pt.Objective += cfg.V * in.State.Price[i] * in.Cluster.DataCenters[i].Servers[k].Power * b
		}
	}
	return pt, nil
}

// SolverScale runs the solver-scale sweep: for each shape and density, the
// monolithic, sparse, decomposed, and pooled-decomposed solvers decide the
// same drifting slot sequence. Cells run sequentially — never in parallel —
// because each one times solver work on the shared cores.
func SolverScale(cfg SolverScaleConfig) (*SolverScaleResult, error) {
	cfg = cfg.withDefaults()
	arms := []solverScaleArm{
		{"monolithic", core.SolverMonolithic, 1},
		{"sparse", core.SolverSparse, 1},
		{"decomposed", core.SolverDecomposed, 1},
		{"decomposed-pool", core.SolverDecomposed, cfg.Workers},
	}
	res := &SolverScaleResult{}
	for _, shape := range cfg.Shapes {
		for _, density := range cfg.Densities {
			for _, arm := range arms {
				pt, err := solverScaleRun(cfg, shape, density, arm)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}
