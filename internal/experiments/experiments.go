// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (section VI), plus the Theorem 1 sanity
// experiment and the ablations called out in DESIGN.md. Each experiment
// assembles the reference inputs (Table I cluster, calibrated prices,
// Cosmos-like workload, slackness-respecting availability), runs the
// schedulers, and returns the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"math"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/runner"
	"grefar/internal/sched"
	"grefar/internal/sim"
)

// DefaultSeed seeds every stochastic input when Config.Seed is left zero.
const DefaultSeed int64 = 2012

// SeedZero explicitly requests the literal seed 0, which a plain zero Seed
// field cannot express because zero means "use DefaultSeed". Pass it wherever
// a Config.Seed or a Robustness seed is accepted.
const SeedZero int64 = math.MinInt64

// CanonicalSeed resolves the package's seed conventions: 0 maps to
// DefaultSeed and SeedZero maps to the literal seed 0; every other value
// passes through. Config.withDefaults and Robustness both apply it, so the
// two conventions behave identically everywhere seeds enter.
func CanonicalSeed(seed int64) int64 {
	switch seed {
	case 0:
		return DefaultSeed
	case SeedZero:
		return 0
	}
	return seed
}

// Config tunes an experiment run. The zero value selects the paper-scale
// defaults (2000 hourly slots, seed 2012, one worker per CPU).
type Config struct {
	// Seed drives every stochastic input deterministically. Zero selects
	// DefaultSeed; use SeedZero for the literal seed 0.
	Seed int64
	// Slots is the simulation horizon in hours (default 2000, matching the
	// paper's 2000-hour plots).
	Slots int
	// Check attaches the invariant checker to every run: each slot's queue
	// dynamics, feasibility, and conservation are re-verified and the run
	// fails on the first violation. Off by default — it roughly doubles the
	// per-slot bookkeeping.
	Check bool
	// Workers bounds how many independent simulation runs an experiment
	// executes concurrently (<= 0 selects GOMAXPROCS). Results are identical
	// to a serial run at any setting: every run is seeded independently,
	// builds its own scheduler, and is assembled in sweep order.
	Workers int
	// Context, when non-nil, cancels the whole experiment: in-flight runs
	// stop between slots and unstarted runs never start. Nil means run to
	// completion.
	Context context.Context
}

func (c Config) withDefaults() Config {
	c.Seed = CanonicalSeed(c.Seed)
	if c.Slots <= 0 {
		c.Slots = 2000
	}
	return c
}

// ctx resolves the experiment context for the sweep engine.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// simOptions builds the sim.Options every experiment run shares, threading
// the Check flag through so one -check on the CLI covers the whole suite.
// The context is the per-run context handed out by the sweep engine, so the
// first failing run (or an external cancellation) stops sibling runs between
// slots.
func (c Config) simOptions(ctx context.Context, recordSeries bool) sim.Options {
	return sim.Options{Slots: c.Slots, RecordSeries: recordSeries, ValidateActions: true, Check: c.Check, Context: ctx}
}

func (c Config) inputs() (sim.Inputs, error) {
	return sim.NewReferenceInputs(c.Seed, c.Slots)
}

// TableIRow is one data center row of Table I.
type TableIRow struct {
	DC          string
	Speed       float64
	Power       float64
	AvgPrice    float64
	CostPerWork float64 // average energy cost per unit work = AvgPrice * p/s
}

// TableI reproduces Table I: server configuration and measured average
// electricity price per data center, with the derived average energy cost
// per unit work that explains why most work lands on data center 2.
func TableI(cfg Config) ([]TableIRow, error) {
	cfg = cfg.withDefaults()
	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	c := in.Cluster
	rows := make([]TableIRow, c.N())
	for i := 0; i < c.N(); i++ {
		var sum float64
		for t := 0; t < cfg.Slots; t++ {
			sum += in.Prices[i].At(t)
		}
		avg := sum / float64(cfg.Slots)
		st := c.DataCenters[i].Servers[0]
		rows[i] = TableIRow{
			DC:          c.DataCenters[i].Name,
			Speed:       st.Speed,
			Power:       st.Power,
			AvgPrice:    avg,
			CostPerWork: avg * st.CostPerWork(),
		}
	}
	return rows, nil
}

// Fig1Result carries the three-day input trace of Fig. 1.
type Fig1Result struct {
	// Hours is the trace length (72).
	Hours int
	// Prices[i][t] is the price at data center i.
	Prices [][]float64
	// OrgWork[m][t] is the total work arriving from organization m.
	OrgWork [][]float64
}

// Fig1 reproduces Fig. 1: a three-day trace of electricity prices in the
// three data centers and of the total work arriving from each organization.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	const hours = 72
	if cfg.Slots < hours {
		cfg.Slots = hours
	}
	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	c := in.Cluster
	res := &Fig1Result{
		Hours:   hours,
		Prices:  make([][]float64, c.N()),
		OrgWork: make([][]float64, c.M()),
	}
	for i := 0; i < c.N(); i++ {
		res.Prices[i] = make([]float64, hours)
		for t := 0; t < hours; t++ {
			res.Prices[i][t] = in.Prices[i].At(t)
		}
	}
	for m := 0; m < c.M(); m++ {
		res.OrgWork[m] = make([]float64, hours)
	}
	for t := 0; t < hours; t++ {
		arr := in.Workload.Arrivals(t)
		for j, a := range arr {
			jt := c.JobTypes[j]
			res.OrgWork[jt.Account][t] += float64(a) * jt.Demand
		}
	}
	return res, nil
}

// Fig2Values are the cost-delay parameter settings of Fig. 2.
var Fig2Values = []float64{0.1, 2.5, 7.5, 20}

// Fig2Result carries one sub-figure set per V value.
type Fig2Result struct {
	V []float64
	// Energy[vi] is the running-average energy cost series (Fig. 2a).
	Energy [][]float64
	// DelayDC1[vi] and DelayDC2[vi] are the running per-job average delays
	// at data centers 1 and 2 (Fig. 2b/2c).
	DelayDC1, DelayDC2 [][]float64
	// FinalEnergy, FinalDelayDC1, FinalDelayDC2 are the horizon values.
	FinalEnergy, FinalDelayDC1, FinalDelayDC2 []float64
}

// Fig2 reproduces Fig. 2: GreFar with beta = 0 for each V in Fig2Values.
// Greater V must reduce energy cost and increase delay. The per-V runs are
// independent and fan out across Config.Workers; results are assembled in
// Fig2Values order, so the output is identical at any worker count.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig2Result{V: append([]float64(nil), Fig2Values...)}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(res.V), func(ctx context.Context, vi int) (*sim.Result, error) {
		v := res.V[vi]
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		g, err := core.New(in.Cluster, core.Config{V: v})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, g, cfg.simOptions(ctx, true))
		if err != nil {
			return nil, fmt.Errorf("V=%g: %w", v, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		res.Energy = append(res.Energy, r.EnergySeries)
		res.DelayDC1 = append(res.DelayDC1, r.LocalDelaySeries[0])
		res.DelayDC2 = append(res.DelayDC2, r.LocalDelaySeries[1])
		res.FinalEnergy = append(res.FinalEnergy, r.AvgEnergy)
		res.FinalDelayDC1 = append(res.FinalDelayDC1, r.AvgLocalDelay[0])
		res.FinalDelayDC2 = append(res.FinalDelayDC2, r.AvgLocalDelay[1])
	}
	return res, nil
}

// Fig3Result compares beta = 0 against beta = 100 at V = 7.5.
type Fig3Result struct {
	Beta []float64
	// Energy, Fairness, DelayDC1 are running-average series per beta.
	Energy, Fairness, DelayDC1 [][]float64
	// Final values per beta.
	FinalEnergy, FinalFairness, FinalDelayDC1 []float64
}

// Fig3 reproduces Fig. 3: the impact of the energy-fairness parameter. With
// beta = 100 the fairness score rises sharply while energy cost increases
// only marginally and the DC1 delay drops (the fairness term encourages
// resource use).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig3Result{Beta: []float64{0, 100}}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(res.Beta), func(ctx context.Context, bi int) (*sim.Result, error) {
		beta := res.Beta[bi]
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: beta})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, g, cfg.simOptions(ctx, true))
		if err != nil {
			return nil, fmt.Errorf("beta=%g: %w", beta, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		res.Energy = append(res.Energy, r.EnergySeries)
		res.Fairness = append(res.Fairness, r.FairnessSeries)
		res.DelayDC1 = append(res.DelayDC1, r.LocalDelaySeries[0])
		res.FinalEnergy = append(res.FinalEnergy, r.AvgEnergy)
		res.FinalFairness = append(res.FinalFairness, r.AvgFairness)
		res.FinalDelayDC1 = append(res.FinalDelayDC1, r.AvgLocalDelay[0])
	}
	return res, nil
}

// Fig4Result compares GreFar (V=7.5, beta=100) against Always.
type Fig4Result struct {
	Names []string
	// Energy, Fairness, DelayDC1 are running-average series per policy.
	Energy, Fairness, DelayDC1 [][]float64
	// Final values per policy.
	FinalEnergy, FinalFairness, FinalDelayDC1 []float64
	// WorkPerDC[p][i] is the average work per slot per site, the section
	// VI-B1 work-share observation.
	WorkPerDC [][]float64
}

// Fig4 reproduces Fig. 4: GreFar incurs lower energy cost and better
// fairness than Always at the expense of increased average delay (Always'
// delay is about one slot).
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig4Result{}
	// Each run builds its own scheduler against its own inputs: a GreFar
	// instance owns a solver workspace and must not be shared across
	// concurrent runs.
	builders := []func(c *model.Cluster) (sched.Scheduler, error){
		func(c *model.Cluster) (sched.Scheduler, error) { return core.New(c, core.Config{V: 7.5, Beta: 100}) },
		func(c *model.Cluster) (sched.Scheduler, error) { return sched.NewAlways(c) },
	}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(builders), func(ctx context.Context, si int) (*sim.Result, error) {
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		s, err := builders[si](in.Cluster)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, s, cfg.simOptions(ctx, true))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		res.Names = append(res.Names, r.SchedulerName)
		res.Energy = append(res.Energy, r.EnergySeries)
		res.Fairness = append(res.Fairness, r.FairnessSeries)
		res.DelayDC1 = append(res.DelayDC1, r.LocalDelaySeries[0])
		res.FinalEnergy = append(res.FinalEnergy, r.AvgEnergy)
		res.FinalFairness = append(res.FinalFairness, r.AvgFairness)
		res.FinalDelayDC1 = append(res.FinalDelayDC1, r.AvgLocalDelay[0])
		res.WorkPerDC = append(res.WorkPerDC, r.AvgWorkPerDC)
	}
	return res, nil
}

// Fig5Result is the one-day schedule snapshot at data center 1.
type Fig5Result struct {
	// Hour 0..23 of the snapshot day.
	PriceDC1 []float64
	// GreFarWork and AlwaysWork are the work processed at DC1 per hour.
	GreFarWork, AlwaysWork []float64
	// MeanPriceDC1 is the plain time-average DC1 price over the whole run.
	MeanPriceDC1 float64
	// GreFarPricePaid and AlwaysPricePaid are the work-weighted average DC1
	// prices over the whole run — the price each policy actually paid per
	// unit of work. GreFar's must be below Always', which sits near the
	// (arrival-weighted) average: this is Fig. 5's "GreFar avoids high
	// electricity prices" claim in one number.
	GreFarPricePaid, AlwaysPricePaid float64
	// GreFarCorr and AlwaysCorr are the raw price-work Pearson correlations
	// over the run, reported for reference. Both can be positive because
	// arrivals and prices share the afternoon peak; the price-paid metric
	// above removes that confound.
	GreFarCorr, AlwaysCorr float64
}

// Fig5 reproduces Fig. 5: a one-day snapshot (beta=0, V=7.5) showing GreFar
// scheduling work when the DC1 price dips while Always is price-blind.
func Fig5(cfg Config, day int) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	if day < 0 || (day+1)*24 > cfg.Slots {
		return nil, fmt.Errorf("day %d outside horizon of %d slots", day, cfg.Slots)
	}
	builders := []struct {
		name  string
		build func(c *model.Cluster) (sched.Scheduler, error)
	}{
		{"grefar", func(c *model.Cluster) (sched.Scheduler, error) { return core.New(c, core.Config{V: 7.5}) }},
		{"always", func(c *model.Cluster) (sched.Scheduler, error) { return sched.NewAlways(c) }},
	}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(builders), func(ctx context.Context, si int) (*sim.Result, error) {
		in, err := cfg.inputs()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		sc, err := builders[si].build(in.Cluster)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		r, err := sim.Run(in, sc, cfg.simOptions(ctx, true))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rg, ra := runs[0], runs[1]
	res := &Fig5Result{
		PriceDC1:        rg.PriceSeries[0][day*24 : (day+1)*24],
		GreFarWork:      rg.WorkSeries[0][day*24 : (day+1)*24],
		AlwaysWork:      ra.WorkSeries[0][day*24 : (day+1)*24],
		MeanPriceDC1:    mean(rg.PriceSeries[0]),
		GreFarPricePaid: weightedMean(rg.PriceSeries[0], rg.WorkSeries[0]),
		AlwaysPricePaid: weightedMean(ra.PriceSeries[0], ra.WorkSeries[0]),
		GreFarCorr:      correlation(rg.PriceSeries[0], rg.WorkSeries[0]),
		AlwaysCorr:      correlation(ra.PriceSeries[0], ra.WorkSeries[0]),
	}
	return res, nil
}

func mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// weightedMean returns sum(v*w)/sum(w), the w-weighted average of v.
// Mismatched or empty series yield 0, like correlation: indexing w while
// ranging over a longer v would panic mid-experiment otherwise.
func weightedMean(v, w []float64) float64 {
	if len(v) == 0 || len(v) != len(w) {
		return 0
	}
	var num, den float64
	for i := range v {
		num += v[i] * w[i]
		den += w[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// DelayTailsResult extends Fig. 2's mean-delay story with the tail: per V,
// the p50/p95/p99 per-job delay at DC1 from the run's delay histogram. The
// paper plots only means; an operator provisions against the tail, and the
// tail grows faster than the mean because GreFar holds work for price dips.
type DelayTailsResult struct {
	V                []float64
	MeanDC1          []float64
	P50, P95, P99    []float64
	MaxDC1           []float64
	ProcessedSamples []float64
	// RefBounds/RefCounts are the DC1 delay histogram buckets of the V=7.5
	// run, for rendering the distribution shape.
	RefBounds, RefCounts []float64
}

// DelayTails runs GreFar (beta=0) for each V in Fig2Values and reports DC1
// delay quantiles.
func DelayTails(cfg Config) (*DelayTailsResult, error) {
	cfg = cfg.withDefaults()
	res := &DelayTailsResult{V: append([]float64(nil), Fig2Values...)}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(res.V), func(ctx context.Context, vi int) (*sim.Result, error) {
		v := res.V[vi]
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		g, err := core.New(in.Cluster, core.Config{V: v})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, g, cfg.simOptions(ctx, false))
		if err != nil {
			return nil, fmt.Errorf("V=%g: %w", v, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, r := range runs {
		v := res.V[vi]
		h := r.DelayHistograms[0]
		res.MeanDC1 = append(res.MeanDC1, h.Mean())
		res.P50 = append(res.P50, h.Quantile(0.5))
		res.P95 = append(res.P95, h.Quantile(0.95))
		res.P99 = append(res.P99, h.Quantile(0.99))
		res.MaxDC1 = append(res.MaxDC1, h.Max())
		res.ProcessedSamples = append(res.ProcessedSamples, h.Total())
		if v == 7.5 {
			res.RefBounds, res.RefCounts = h.Buckets()
		}
	}
	return res, nil
}

// ThreeWayResult compares GreFar against both myopic baselines: Always
// (price-blind) and LocalGreedy (price-aware in space, blind in time).
type ThreeWayResult struct {
	Names     []string
	Energy    []float64
	DelayDC1  []float64
	WorkPerDC [][]float64
}

// ThreeWay is the extension experiment separating GreFar's two sources of
// savings: routing to cheap sites (which LocalGreedy also does) and waiting
// for cheap hours (which only GreFar does). Expected ordering:
// GreFar < LocalGreedy < Always on energy.
func ThreeWay(cfg Config, v float64) (*ThreeWayResult, error) {
	cfg = cfg.withDefaults()
	if v <= 0 {
		v = 7.5
	}
	builders := []func(c *model.Cluster) (sched.Scheduler, error){
		func(c *model.Cluster) (sched.Scheduler, error) { return core.New(c, core.Config{V: v}) },
		func(c *model.Cluster) (sched.Scheduler, error) { return sched.NewLocalGreedy(c) },
		func(c *model.Cluster) (sched.Scheduler, error) { return sched.NewAlways(c) },
	}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(builders), func(ctx context.Context, si int) (*sim.Result, error) {
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		s, err := builders[si](in.Cluster)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, s, cfg.simOptions(ctx, false))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ThreeWayResult{}
	for _, r := range runs {
		res.Names = append(res.Names, r.SchedulerName)
		res.Energy = append(res.Energy, r.AvgEnergy)
		res.DelayDC1 = append(res.DelayDC1, r.AvgLocalDelay[0])
		res.WorkPerDC = append(res.WorkPerDC, r.AvgWorkPerDC)
	}
	return res, nil
}

// MPCResult compares online GreFar against the receding-horizon OracleMPC
// policy that replans each slot with a perfect W-slot forecast — an upper
// bound on what the prediction-driven provisioning approaches of the
// paper's related work could achieve with an ideal predictor.
type MPCResult struct {
	Window                 int
	GreFarEnergy           float64
	GreFarDelay            float64
	MPCEnergy              float64
	MPCDelay               float64
	AlwaysEnergy           float64
	ForesightAdvantageFrac float64 // (GreFar - MPC)/GreFar
}

// MPCComparison runs GreFar (V=7.5), OracleMPC(window), and Always on the
// same inputs.
func MPCComparison(cfg Config, window int) (*MPCResult, error) {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 24
	}
	// Each run owns its inputs and scheduler; the MPC run additionally owns
	// the perfect-foresight oracle over its inputs. The MPC plans beyond the
	// horizon, so the oracle wraps via the traces' own wrap-around.
	builders := []struct {
		name  string
		build func(in sim.Inputs) (sched.Scheduler, error)
	}{
		{"mpc", func(in sim.Inputs) (sched.Scheduler, error) {
			c := in.Cluster
			oracle := &sched.TraceOracle{
				States: func(t int) (*model.State, error) {
					st := model.NewState(c)
					avail := in.Availability.At(t)
					for i := 0; i < c.N(); i++ {
						copy(st.Avail[i], avail[i])
						st.Price[i] = in.Prices[i].At(t)
					}
					return st, nil
				},
				Arrivals: func(t int) []int { return in.Workload.Arrivals(t) },
			}
			return sched.NewOracleMPC(c, oracle, window)
		}},
		{"grefar", func(in sim.Inputs) (sched.Scheduler, error) {
			return core.New(in.Cluster, core.Config{V: 7.5})
		}},
		{"always", func(in sim.Inputs) (sched.Scheduler, error) {
			return sched.NewAlways(in.Cluster)
		}},
	}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(builders), func(ctx context.Context, si int) (*sim.Result, error) {
		in, err := cfg.inputs()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		s, err := builders[si].build(in)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		r, err := sim.Run(in, s, cfg.simOptions(ctx, false))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", builders[si].name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rm, rg, ra := runs[0], runs[1], runs[2]

	return &MPCResult{
		Window:                 window,
		GreFarEnergy:           rg.AvgEnergy,
		GreFarDelay:            rg.AvgLocalDelay[0],
		MPCEnergy:              rm.AvgEnergy,
		MPCDelay:               rm.AvgLocalDelay[0],
		AlwaysEnergy:           ra.AvgEnergy,
		ForesightAdvantageFrac: (rg.AvgEnergy - rm.AvgEnergy) / rg.AvgEnergy,
	}, nil
}

// correlation returns the Pearson correlation of two equal-length series.
func correlation(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
