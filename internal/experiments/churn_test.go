package experiments

import "testing"

func TestChurnDefaultsAndValidation(t *testing.T) {
	cfg, err := ChurnConfig{}.withDefaults(3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kill != 2 || cfg.Down != 6 || cfg.Slots != 240 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Kill is capped so at least one site survives.
	cfg, err = ChurnConfig{Kill: 9}.withDefaults(3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kill != 2 {
		t.Errorf("Kill = %d, want capped to 2", cfg.Kill)
	}
	if _, err := (ChurnConfig{Slots: 10, From: 8, Down: 6}).withDefaults(3); err == nil {
		t.Error("outage past the horizon accepted")
	}
	if _, err := Churn(ChurnConfig{Slots: 40, Drop: 2}); err == nil {
		t.Error("bad drop probability accepted")
	}
	ws := ChurnConfig{Kill: 2, From: 10, Down: 4, Stagger: 8}.windows()
	if len(ws) != 2 || ws[0].Agent != 1 || ws[1].Agent != 2 || ws[1].From != 18 || ws[1].To != 22 {
		t.Errorf("windows = %+v", ws)
	}
}

// TestChurnExperiment runs the full kill/restart scenario at a small horizon:
// both runs pass the invariant checker (inside Churn), every outage window
// degrades the schedule, recovery is bounded, and the chaos run's backlog
// inflation is measurable while the outage lasts.
func TestChurnExperiment(t *testing.T) {
	cfg := ChurnConfig{Slots: 72, From: 20, Down: 5, Kill: 2}
	res, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 72 {
		t.Errorf("Slots = %d", res.Slots)
	}
	if res.DegradedSlots < 2*5 {
		t.Errorf("DegradedSlots = %d, want >= 10 (two 5-slot outages)", res.DegradedSlots)
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("got %d recoveries, want 2", len(res.Recoveries))
	}
	for _, r := range res.Recoveries {
		if r.RecoverySlots > 1 {
			t.Errorf("agent %d took %d slots past its window to rejoin", r.Agent, r.RecoverySlots)
		}
	}
	if res.MaxBacklogInflation <= 0 {
		t.Error("masking two sites never inflated the backlog, which cannot be right")
	}
	if res.BaselineEnergy <= 0 || res.ChaosEnergy <= 0 {
		t.Errorf("energy: baseline %v, chaos %v", res.BaselineEnergy, res.ChaosEnergy)
	}

	// Same config, same seeds: the experiment must reproduce exactly.
	again, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.DegradedSlots != res.DegradedSlots ||
		again.ChaosEnergy != res.ChaosEnergy ||
		again.ChaosFinalBacklog != res.ChaosFinalBacklog ||
		again.MaxBacklogInflation != res.MaxBacklogInflation {
		t.Errorf("rerun diverged: %+v vs %+v", again, res)
	}
}
