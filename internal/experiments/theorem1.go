package experiments

import (
	"context"
	"fmt"

	"grefar/internal/core"
	"grefar/internal/runner"
	"grefar/internal/sched"
	"grefar/internal/sim"
)

// Theorem1Result records the Theorem 1 sanity sweep: for each V, the largest
// queue backlog (bounded by V*C3/delta, i.e. O(V)) and the gap between
// GreFar's time-average energy cost and the optimal T-step lookahead
// benchmark (bounded by (B + D(T-1))/V, i.e. O(1/V)).
type Theorem1Result struct {
	V []float64
	// MaxQueue[vi] is the largest single queue length under GreFar.
	MaxQueue []float64
	// AvgCost[vi] is GreFar's time-average energy cost (beta = 0).
	AvgCost []float64
	// FinalBacklog[vi] is the work left queued at the horizon; a large value
	// warns that AvgCost undercounts deferred work.
	FinalBacklog []float64
	// LookaheadCost is the T-step lookahead benchmark (1/R) sum_r G*_r.
	LookaheadCost float64
	// T is the lookahead frame length used.
	T int
}

// Gap returns AvgCost[vi] - LookaheadCost for each V.
func (r *Theorem1Result) Gap() []float64 {
	out := make([]float64, len(r.V))
	for i, c := range r.AvgCost {
		out[i] = c - r.LookaheadCost
	}
	return out
}

// Theorem1 runs the bound-checking sweep. The horizon is truncated to a
// multiple of the frame length. The lookahead LP relaxes integer routing, so
// the benchmark is conservative (a lower bound).
func Theorem1(cfg Config, vs []float64, frameT int) (*Theorem1Result, error) {
	cfg = cfg.withDefaults()
	if len(vs) == 0 {
		vs = []float64{0.5, 2.5, 7.5, 20}
	}
	if frameT <= 0 {
		frameT = 12
	}
	slots := cfg.Slots - cfg.Slots%frameT
	if slots <= 0 {
		return nil, fmt.Errorf("horizon %d shorter than one frame %d", cfg.Slots, frameT)
	}
	cfg.Slots = slots

	res := &Theorem1Result{T: frameT}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(vs), func(ctx context.Context, vi int) (*sim.Result, error) {
		v := vs[vi]
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		g, err := core.New(in.Cluster, core.Config{V: v})
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(in, g, cfg.simOptions(ctx, false))
		if err != nil {
			return nil, fmt.Errorf("V=%g: %w", v, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, r := range runs {
		res.V = append(res.V, vs[vi])
		res.MaxQueue = append(res.MaxQueue, r.MaxQueue)
		res.AvgCost = append(res.AvgCost, r.AvgEnergy)
		res.FinalBacklog = append(res.FinalBacklog, r.FinalBacklog)
	}

	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	states, arrivals, err := sim.CollectStates(in, slots)
	if err != nil {
		return nil, err
	}
	planner, err := sched.NewLookaheadPlanner(in.Cluster, frameT)
	if err != nil {
		return nil, err
	}
	res.LookaheadCost, err = planner.AverageCost(states, arrivals)
	if err != nil {
		return nil, fmt.Errorf("lookahead benchmark: %w", err)
	}
	return res, nil
}
