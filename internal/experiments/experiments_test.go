package experiments

import (
	"math"
	"reflect"
	"testing"
)

// testCfg keeps test runtimes reasonable while preserving the qualitative
// shapes; the full 2000-slot runs happen in the benchmarks.
func testCfg() Config { return Config{Seed: 2012, Slots: 24 * 30} }

func TestTableI(t *testing.T) {
	rows, err := TableI(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Paper's Table I: speeds 1.00/0.75/1.15, powers 1.00/0.60/1.20, average
	// prices ~0.392/0.433/0.548, cost per unit work ~0.392/0.346/0.572.
	wantsPrice := []float64{0.392, 0.433, 0.548}
	wantsCost := []float64{0.392, 0.346, 0.572}
	for i, row := range rows {
		if math.Abs(row.AvgPrice-wantsPrice[i]) > 0.03 {
			t.Errorf("row %d: avg price %v, want ~%v", i, row.AvgPrice, wantsPrice[i])
		}
		if math.Abs(row.CostPerWork-wantsCost[i]) > 0.04 {
			t.Errorf("row %d: cost/work %v, want ~%v", i, row.CostPerWork, wantsCost[i])
		}
	}
	// DC2 must be the cheapest per unit work, DC3 the most expensive.
	if !(rows[1].CostPerWork < rows[0].CostPerWork && rows[0].CostPerWork < rows[2].CostPerWork) {
		t.Errorf("cost ordering broken: %+v", rows)
	}
}

func TestFig1(t *testing.T) {
	res, err := Fig1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours != 72 {
		t.Fatalf("Hours = %d", res.Hours)
	}
	if len(res.Prices) != 3 || len(res.OrgWork) != 4 {
		t.Fatalf("shape: %d price rows, %d org rows", len(res.Prices), len(res.OrgWork))
	}
	for i := range res.Prices {
		if len(res.Prices[i]) != 72 {
			t.Errorf("price row %d has %d hours", i, len(res.Prices[i]))
		}
	}
	// Arrivals must be time-varying (non-degenerate trace).
	var min, max float64 = math.Inf(1), 0
	for _, v := range res.OrgWork[0] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 5 {
		t.Errorf("org1 work barely varies over 3 days: min %v max %v", min, max)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.V) != 4 || len(res.FinalEnergy) != 4 {
		t.Fatalf("shape: %v", res.V)
	}
	// Energy strictly decreasing in V, delays increasing.
	for x := 1; x < 4; x++ {
		if res.FinalEnergy[x] >= res.FinalEnergy[x-1] {
			t.Errorf("energy not decreasing: V=%v -> %v, V=%v -> %v",
				res.V[x-1], res.FinalEnergy[x-1], res.V[x], res.FinalEnergy[x])
		}
		if res.FinalDelayDC1[x] <= res.FinalDelayDC1[x-1] {
			t.Errorf("DC1 delay not increasing: %v", res.FinalDelayDC1)
		}
	}
	if len(res.Energy[0]) != testCfg().Slots {
		t.Errorf("series length %d, want %d", len(res.Energy[0]), testCfg().Slots)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// beta=100 fairness must be much better (closer to 0) than beta=0.
	if res.FinalFairness[1] <= res.FinalFairness[0] {
		t.Errorf("fairness: beta=100 %v not above beta=0 %v", res.FinalFairness[1], res.FinalFairness[0])
	}
	// Energy increase must be marginal (the paper's observation): allow up
	// to 35% on the short test horizon.
	if res.FinalEnergy[1] > 1.35*res.FinalEnergy[0] {
		t.Errorf("beta=100 energy %v is not a marginal increase over %v", res.FinalEnergy[1], res.FinalEnergy[0])
	}
	// The fairness side effect: delay with beta=100 is lower.
	if res.FinalDelayDC1[1] >= res.FinalDelayDC1[0] {
		t.Errorf("delay: beta=100 %v not below beta=0 %v", res.FinalDelayDC1[1], res.FinalDelayDC1[0])
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 {
		t.Fatalf("want 2 policies, got %v", res.Names)
	}
	// GreFar (index 0) beats Always (index 1) on energy and fairness, loses
	// on delay; Always' delay is about one.
	if res.FinalEnergy[0] >= res.FinalEnergy[1] {
		t.Errorf("GreFar energy %v not below Always %v", res.FinalEnergy[0], res.FinalEnergy[1])
	}
	if res.FinalFairness[0] <= res.FinalFairness[1] {
		t.Errorf("GreFar fairness %v not above Always %v", res.FinalFairness[0], res.FinalFairness[1])
	}
	if res.FinalDelayDC1[0] <= res.FinalDelayDC1[1] {
		t.Errorf("GreFar delay %v not above Always %v", res.FinalDelayDC1[0], res.FinalDelayDC1[1])
	}
	if res.FinalDelayDC1[1] < 0.9 || res.FinalDelayDC1[1] > 1.5 {
		t.Errorf("Always delay %v, want ~1", res.FinalDelayDC1[1])
	}
}

func TestFig4WorkShareFavorsCheapSite(t *testing.T) {
	res, err := Fig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ws := res.WorkPerDC[0] // GreFar
	// Section VI-B1: most work goes to DC2 (cheapest per unit work), least
	// to DC3 (most expensive).
	if !(ws[1] > ws[0] && ws[0] > ws[2]) {
		t.Errorf("work share %v does not follow cost ordering dc2 > dc1 > dc3", ws)
	}
}

func TestFig5PriceAnticorrelation(t *testing.T) {
	res, err := Fig5(testCfg(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PriceDC1) != 24 || len(res.GreFarWork) != 24 || len(res.AlwaysWork) != 24 {
		t.Fatalf("snapshot lengths wrong")
	}
	// GreFar buys DC1 energy below the price Always pays (the Fig. 5
	// "avoids high electricity prices" claim), with a real margin.
	if res.GreFarPricePaid >= res.AlwaysPricePaid-0.005 {
		t.Errorf("GreFar paid %v per unit work at DC1, Always paid %v; want a clear saving",
			res.GreFarPricePaid, res.AlwaysPricePaid)
	}
	// And GreFar's processing is more price-averse than Always' in the raw
	// correlation too.
	if res.GreFarCorr >= res.AlwaysCorr {
		t.Errorf("GreFar correlation %v not below Always' %v", res.GreFarCorr, res.AlwaysCorr)
	}
}

func TestFig5DayOutOfRange(t *testing.T) {
	if _, err := Fig5(testCfg(), 10000); err == nil {
		t.Error("out-of-range day accepted")
	}
}

func TestTheorem1Bounds(t *testing.T) {
	cfg := Config{Seed: 2012, Slots: 24 * 10}
	res, err := Theorem1(cfg, []float64{0.5, 5, 20}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Queue bound O(V): max queue grows with V but stays bounded.
	if !(res.MaxQueue[0] <= res.MaxQueue[1] && res.MaxQueue[1] <= res.MaxQueue[2]) {
		t.Errorf("max queue not monotone in V: %v", res.MaxQueue)
	}
	// Cost gap O(1/V): the gap to the lookahead benchmark shrinks in V.
	gaps := res.Gap()
	if gaps[2] > gaps[0] {
		t.Errorf("cost gap not shrinking in V: %v", gaps)
	}
	if res.LookaheadCost <= 0 {
		t.Errorf("lookahead benchmark %v should be positive", res.LookaheadCost)
	}
}

func TestAblationGreedyVsLP(t *testing.T) {
	res, err := AblationGreedyVsLP(Config{Seed: 2012, Slots: 100}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxObjectiveDiff > 1e-5 {
		t.Errorf("greedy and LP disagree by %v", res.MaxObjectiveDiff)
	}
	// On the small reference system the LP is also quick, so only require a
	// clear win; the benchmark reports the actual factor.
	if res.Speedup < 1.2 {
		t.Errorf("greedy speedup %vx is suspiciously low", res.Speedup)
	}
}

func TestAblationFWIters(t *testing.T) {
	res, err := AblationFWIters(Config{Seed: 2012, Slots: 200}, []int{5, 150}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// More iterations cannot be worse on average (both measured against a
	// 2000-iteration reference), and 150 iterations should be near-exact.
	if res.RelGap[1] > res.RelGap[0]+1e-9 {
		t.Errorf("gap grew with iterations: %v", res.RelGap)
	}
	if math.Abs(res.RelGap[1]) > 1e-3 {
		t.Errorf("150-iteration gap %v not near zero", res.RelGap[1])
	}
}

func TestWorkShare(t *testing.T) {
	ws, err := WorkShare(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d sites", len(ws))
	}
	var total float64
	for _, w := range ws {
		total += w
	}
	// Average scheduled work should be in the ballpark of the average
	// arriving work (roughly 60-110 units/slot for the reference workload).
	if total < 40 || total > 150 {
		t.Errorf("total work/slot %v outside plausible range", total)
	}
	if !(ws[1] > ws[2]) {
		t.Errorf("cheapest site dc2 (%v) should out-process dc3 (%v)", ws[1], ws[2])
	}
}

func TestAblationRoutingTieBreak(t *testing.T) {
	res, err := AblationRoutingTieBreak(Config{Seed: 2012, Slots: 24 * 20})
	if err != nil {
		t.Fatal(err)
	}
	// Tie-splitting uses every site (including the expensive dc3); the
	// first-site rule starves dc3 by index accident at V=0.1.
	if res.SplitWork[2] <= res.FirstWork[2] {
		t.Errorf("tie-splitting dc3 work %v should exceed first-site %v", res.SplitWork[2], res.FirstWork[2])
	}
	// And therefore tie-splitting honestly pays more at V=0.1.
	if res.SplitEnergy <= res.FirstEnergy {
		t.Errorf("split energy %v should exceed first-site energy %v", res.SplitEnergy, res.FirstEnergy)
	}
}

func TestThreeWayOrdering(t *testing.T) {
	res, err := ThreeWay(Config{Seed: 2012, Slots: 24 * 30}, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	grefar, local, always := res.Energy[0], res.Energy[1], res.Energy[2]
	// Site-awareness alone (LocalGreedy) must beat price-blind Always, and
	// GreFar's time-awareness must beat both.
	if !(grefar < local && local < always) {
		t.Errorf("energy ordering grefar %v < local-greedy %v < always %v violated", grefar, local, always)
	}
	// LocalGreedy stays a next-slot policy: delay ~1.
	if res.DelayDC1[1] < 0.9 || res.DelayDC1[1] > 1.6 {
		t.Errorf("local-greedy delay %v, want ~1", res.DelayDC1[1])
	}
}

func TestRobustnessAcrossSeeds(t *testing.T) {
	res, err := Robustness(Config{Slots: 24 * 20}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("headline orderings failed on %d of 3 seeds: %+v", res.Violations, res)
	}
	if res.EnergyGapFrac.Mean <= 0 {
		t.Errorf("mean energy gap %v not positive", res.EnergyGapFrac.Mean)
	}
	if res.GreFarEnergy.Seeds != 3 {
		t.Errorf("seeds = %d", res.GreFarEnergy.Seeds)
	}
}

func TestDelayTails(t *testing.T) {
	res, err := DelayTails(Config{Seed: 2012, Slots: 24 * 25})
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.V) - 1
	// Quantile ordering per V and tail growth in V.
	for x := range res.V {
		if !(res.P50[x] <= res.P95[x] && res.P95[x] <= res.P99[x] && res.P99[x] <= res.MaxDC1[x]) {
			t.Errorf("V=%v: quantiles out of order p50=%v p95=%v p99=%v max=%v",
				res.V[x], res.P50[x], res.P95[x], res.P99[x], res.MaxDC1[x])
		}
		if res.ProcessedSamples[x] <= 0 {
			t.Errorf("V=%v: empty histogram", res.V[x])
		}
	}
	if res.P95[last] <= res.P95[0] {
		t.Errorf("p95 tail did not grow with V: %v", res.P95)
	}
	// The tail at V=20 is heavier relative to the median than at V=0.1.
	if res.P95[last]/res.P50[last] <= res.P95[0]/res.P50[0] {
		t.Errorf("tail-to-median ratio did not grow: %v / %v", res.P95, res.P50)
	}
}

func TestMPCComparison(t *testing.T) {
	res, err := MPCComparison(Config{Seed: 2012, Slots: 24 * 10}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect foresight beats the price-blind baseline comfortably.
	if res.MPCEnergy >= res.AlwaysEnergy {
		t.Errorf("MPC energy %v not below Always %v", res.MPCEnergy, res.AlwaysEnergy)
	}
	// The MPC serves everything within its window, so delays stay bounded
	// by the window length.
	if res.MPCDelay >= float64(res.Window) {
		t.Errorf("MPC delay %v not below window %d", res.MPCDelay, res.Window)
	}
	if res.MPCDelay <= 0 {
		t.Errorf("MPC delay %v suspiciously low", res.MPCDelay)
	}
}

func TestWeightedMean(t *testing.T) {
	v := []float64{2, 4, 6}
	w := []float64{1, 1, 2}
	if got, want := weightedMean(v, w), (2+4+12)/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("weightedMean = %v, want %v", got, want)
	}
	// Regression: a weights slice shorter than the values slice used to
	// index w out of range. Mismatched lengths must yield 0, not panic.
	if got := weightedMean([]float64{1, 2, 3}, []float64{1}); got != 0 {
		t.Errorf("mismatched lengths: got %v, want 0", got)
	}
	if got := weightedMean(nil, nil); got != 0 {
		t.Errorf("empty: got %v, want 0", got)
	}
	if got := weightedMean([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero total weight: got %v, want 0", got)
	}
}

func TestCanonicalSeed(t *testing.T) {
	if got := CanonicalSeed(0); got != DefaultSeed {
		t.Errorf("CanonicalSeed(0) = %d, want DefaultSeed %d", got, DefaultSeed)
	}
	if got := CanonicalSeed(SeedZero); got != 0 {
		t.Errorf("CanonicalSeed(SeedZero) = %d, want 0", got)
	}
	if got := CanonicalSeed(41); got != 41 {
		t.Errorf("CanonicalSeed(41) = %d, want 41", got)
	}
	// Regression: Seed 0 used to silently become 2012, making the literal
	// seed 0 unrunnable. SeedZero must produce a run distinct from the
	// default-seeded one.
	cfg := Config{Seed: SeedZero, Slots: 48}.withDefaults()
	if cfg.Seed != 0 {
		t.Fatalf("withDefaults(SeedZero).Seed = %d, want 0", cfg.Seed)
	}
	if def := (Config{Slots: 48}).withDefaults(); def.Seed != DefaultSeed {
		t.Fatalf("withDefaults(0).Seed = %d, want DefaultSeed", def.Seed)
	}
}

func TestSeedZeroRunsDistinctFromDefault(t *testing.T) {
	zero, err := Fig2(Config{Seed: SeedZero, Slots: 48, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Fig2(Config{Slots: 48, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range zero.FinalEnergy {
		if zero.FinalEnergy[i] != def.FinalEnergy[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("SeedZero run identical to default-seed run; seed 0 is still unreachable")
	}
}

// TestParallelMatchesSerial is the determinism keystone for the sweep
// engine: the same experiment at any worker count must produce deep-equal
// results, because every run is isolated and assembly happens in index
// order. A mismatch here means shared state leaked between parallel runs.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := func(workers int) Config {
		return Config{Seed: 2012, Slots: 72, Workers: workers}
	}
	t.Run("Fig2", func(t *testing.T) {
		serial, err := Fig2(cfg(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Fig2(cfg(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Error("Fig2 with 4 workers differs from serial run")
		}
	})
	t.Run("Robustness", func(t *testing.T) {
		seeds := []int64{2012, 7, 41}
		serial, err := Robustness(cfg(1), seeds)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Robustness(cfg(4), seeds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Error("Robustness with 4 workers differs from serial run")
		}
	})
}
