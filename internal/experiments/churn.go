package experiments

import (
	"fmt"

	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/transport/chaos"
)

// ChurnConfig tunes the agent-churn chaos experiment: a distributed control
// loop (controller plus in-process agents) is run twice on identical inputs —
// once fault-free, once with Kill agents partitioned for Down-slot windows —
// and the two trajectories are compared. Every fault is drawn from ChaosSeed,
// so the experiment is exactly reproducible.
type ChurnConfig struct {
	// Seed drives the workload, prices, and availability (0 = DefaultSeed;
	// SeedZero for the literal seed 0).
	Seed int64
	// ChaosSeed drives the fault streams (0 = DefaultSeed; SeedZero for 0).
	ChaosSeed int64
	// Slots is the horizon (default 240).
	Slots int
	// Kill is how many agents are partitioned, staggered one after another
	// starting from data center 1 (default 2, capped at N-1 so the cluster
	// never loses every site).
	Kill int
	// From is the slot the first outage starts at (default Slots/4).
	From int
	// Down is each outage's length in slots (default 6).
	Down int
	// Stagger is the gap between consecutive agents' outage starts
	// (default Down+2, so outages overlap the recovery of the previous one
	// only when configured to).
	Stagger int
	// Drop adds a per-call drop probability on top of the partitions
	// (default 0: churn only).
	Drop float64
}

func (c ChurnConfig) withDefaults(n int) (ChurnConfig, error) {
	c.Seed = CanonicalSeed(c.Seed)
	c.ChaosSeed = CanonicalSeed(c.ChaosSeed)
	if c.Slots <= 0 {
		c.Slots = 240
	}
	if c.Kill <= 0 {
		c.Kill = 2
	}
	if c.Kill >= n {
		c.Kill = n - 1
	}
	if c.From <= 0 {
		c.From = c.Slots / 4
	}
	if c.Down <= 0 {
		c.Down = 6
	}
	if c.Stagger <= 0 {
		c.Stagger = c.Down + 2
	}
	lastEnd := c.From + (c.Kill-1)*c.Stagger + c.Down
	if lastEnd >= c.Slots {
		return c, fmt.Errorf("churn: last outage ends at slot %d, horizon is %d", lastEnd, c.Slots)
	}
	if c.Drop < 0 || c.Drop > 1 {
		return c, fmt.Errorf("churn: drop probability %v outside [0,1]", c.Drop)
	}
	return c, nil
}

// windows builds the staggered partition schedule.
func (c ChurnConfig) windows() []chaos.Window {
	out := make([]chaos.Window, c.Kill)
	for k := 0; k < c.Kill; k++ {
		from := c.From + k*c.Stagger
		out[k] = chaos.Window{Agent: 1 + k, From: from, To: from + c.Down}
	}
	return out
}

// ChurnRecovery reports how one partitioned agent came back.
type ChurnRecovery struct {
	// Agent is the data-center index that was partitioned.
	Agent int
	// From and To bound the injected outage window [From, To).
	From, To int
	// RecoverySlots is how many slots past the window's end the agent stayed
	// masked; 0 means it rejoined at the first reachable slot.
	RecoverySlots int
}

// ChurnResult compares the chaos run against the fault-free baseline.
type ChurnResult struct {
	// Slots is the horizon both runs covered.
	Slots int
	// DegradedSlots counts slots the chaos run scheduled with >= 1 agent
	// masked.
	DegradedSlots int
	// Recoveries has one entry per partitioned agent.
	Recoveries []ChurnRecovery
	// BaselineEnergy and ChaosEnergy are the average energy costs per slot.
	BaselineEnergy, ChaosEnergy float64
	// BaselineFinalBacklog and ChaosFinalBacklog are the total backlogs
	// (central + local) at the horizon.
	BaselineFinalBacklog, ChaosFinalBacklog float64
	// MaxBacklogInflation is the largest per-slot excess of the chaos run's
	// total backlog over the baseline's — the peak queue cost of the outages.
	MaxBacklogInflation float64
	// FinalBacklogInflation is ChaosFinalBacklog - BaselineFinalBacklog: what
	// the system had not yet drained by the horizon.
	FinalBacklogInflation float64
}

// churnCollector records the per-slot signals the experiment compares.
type churnCollector struct {
	backlog  []float64
	energy   []float64
	degraded [][]int
}

func (cc *churnCollector) ObserveSlot(ev telemetry.SlotEvent) {
	if ev.Origin != telemetry.OriginController {
		return
	}
	cc.backlog = append(cc.backlog, ev.TotalBacklog)
	cc.energy = append(cc.energy, ev.Energy)
	cc.degraded = append(cc.degraded, ev.Degraded)
}

// churnRun drives one distributed run over in-process loopback agents with
// the given chaos plan (nil = fault-free), the Degrade policy, and the
// invariant checker attached to every applied slot.
func churnRun(cfg ChurnConfig, plan *chaos.Plan) (*churnCollector, error) {
	in, err := sim.NewReferenceInputs(cfg.Seed, cfg.Slots)
	if err != nil {
		return nil, err
	}
	c := in.Cluster
	conns := make([]controller.AgentConn, c.N())
	for i := 0; i < c.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      c,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			return nil, err
		}
		var conn controller.AgentConn = transport.NewLoopback(a.Handle)
		if plan != nil {
			conn = plan.Wrap(conn, i)
		}
		conns[i] = conn
	}
	g, err := core.New(c, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		return nil, err
	}
	col := &churnCollector{}
	ck := invariant.NewChecker(c, invariant.CheckerOptions{})
	ct, err := controller.New(c, g, conns,
		controller.WithObserver(telemetry.Multi(col, ck)),
		controller.WithFailurePolicy(controller.Degrade),
	)
	if err != nil {
		return nil, err
	}
	for t := 0; t < cfg.Slots; t++ {
		if _, _, _, err := ct.RunSlot(t, in.Workload.Arrivals(t)); err != nil {
			return nil, fmt.Errorf("slot %d: %w", t, err)
		}
	}
	if err := ck.Err(); err != nil {
		return nil, fmt.Errorf("invariant check: %w", err)
	}
	return col, nil
}

// Churn is the fault-tolerance experiment: it measures what a burst of agent
// churn (Kill agents partitioned for Down slots each, staggered) costs the
// Degrade-mode control loop relative to a fault-free run of the same inputs —
// slots to recovery per agent, degraded-slot count, and queue-backlog
// inflation both at its per-slot peak and at the horizon. The invariant
// checker verifies every applied slot of both runs.
func Churn(cfg ChurnConfig) (*ChurnResult, error) {
	in, err := sim.NewReferenceInputs(CanonicalSeed(cfg.Seed), 1)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.withDefaults(in.Cluster.N())
	if err != nil {
		return nil, err
	}
	plan := &chaos.Plan{Seed: cfg.ChaosSeed, Drop: cfg.Drop, Windows: cfg.windows()}
	if err := plan.Validate(); err != nil {
		return nil, err
	}

	base, err := churnRun(cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("baseline run: %w", err)
	}
	chaotic, err := churnRun(cfg, plan)
	if err != nil {
		return nil, fmt.Errorf("chaos run: %w", err)
	}
	if len(base.backlog) != cfg.Slots || len(chaotic.backlog) != cfg.Slots {
		return nil, fmt.Errorf("observer captured %d/%d slots, want %d", len(base.backlog), len(chaotic.backlog), cfg.Slots)
	}

	res := &ChurnResult{
		Slots:                cfg.Slots,
		BaselineFinalBacklog: base.backlog[cfg.Slots-1],
		ChaosFinalBacklog:    chaotic.backlog[cfg.Slots-1],
	}
	for t := 0; t < cfg.Slots; t++ {
		res.BaselineEnergy += base.energy[t]
		res.ChaosEnergy += chaotic.energy[t]
		if len(chaotic.degraded[t]) > 0 {
			res.DegradedSlots++
		}
		if d := chaotic.backlog[t] - base.backlog[t]; d > res.MaxBacklogInflation {
			res.MaxBacklogInflation = d
		}
	}
	res.BaselineEnergy /= float64(cfg.Slots)
	res.ChaosEnergy /= float64(cfg.Slots)
	res.FinalBacklogInflation = res.ChaosFinalBacklog - res.BaselineFinalBacklog

	maskedAt := func(agent, slot int) bool {
		for _, i := range chaotic.degraded[slot] {
			if i == agent {
				return true
			}
		}
		return false
	}
	for _, w := range plan.Windows {
		rec := ChurnRecovery{Agent: w.Agent, From: w.From, To: w.To}
		s := w.To
		for s < cfg.Slots && maskedAt(w.Agent, s) {
			s++
		}
		rec.RecoverySlots = s - w.To
		res.Recoveries = append(res.Recoveries, rec)
	}
	return res, nil
}
