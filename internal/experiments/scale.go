package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"grefar/internal/controller"
	"grefar/internal/controlplane"
	"grefar/internal/core"
	"grefar/internal/hollow"
	"grefar/internal/invariant"
	"grefar/internal/model"
	"grefar/internal/sched"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/transport/chaos"
)

// ScaleConfig tunes the hollow-fleet scale experiment: for each agent count,
// a full distributed control loop — real controller, real gob-over-TCP wire,
// N real agents multiplexed into one process — runs for Slots slots while the
// harness measures slot-tick latency, throughput, controller allocation rate,
// and heap ceiling. With Chaos set, every point is additionally run with
// churn injected from the chaos plans (staggered partitions over KillFrac of
// the fleet plus a small drop rate), which is the degraded-mode trajectory
// ROADMAP items 1-2 must not regress.
type ScaleConfig struct {
	// Seed drives workload and prices (0 = DefaultSeed; SeedZero for 0).
	Seed int64
	// ChaosSeed drives the fault streams of the chaos variant.
	ChaosSeed int64
	// Agents are the fleet sizes to sweep (default 100, 500, 1000, 2000).
	Agents []int
	// Slots is the per-point horizon (default 40).
	Slots int
	// Conns is how many multiplexed connections carry the fleet's traffic
	// (default hollow.Options default).
	Conns int
	// Chaos adds a second run per agent count with partitions and drops.
	Chaos bool
	// Partitions, when > 1, adds a partitioned-control-plane arm per agent
	// count: the same fleet driven by that many concurrent controller
	// partitions committing optimistically against the shared queue board
	// (fault-free, and under chaos when Chaos is set).
	Partitions int
	// KillFrac is the fraction of agents the chaos variant partitions
	// (default 0.05), staggered through the middle half of the horizon.
	KillFrac float64
	// Check attaches the invariant checker to every run (always on for the
	// chaos variant, where the masked-slot evidence is the point).
	Check bool
	// Observer, when non-nil, additionally receives every controller
	// SlotEvent of every run.
	Observer telemetry.SlotObserver
	// Context cancels the sweep between slots.
	Context context.Context
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	c.Seed = CanonicalSeed(c.Seed)
	c.ChaosSeed = CanonicalSeed(c.ChaosSeed)
	if len(c.Agents) == 0 {
		c.Agents = []int{100, 500, 1000, 2000}
	}
	if c.Slots <= 0 {
		c.Slots = 40
	}
	if c.KillFrac <= 0 {
		c.KillFrac = 0.05
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// ScalePoint is one measured (agent count, chaos) cell of the sweep.
type ScalePoint struct {
	// Agents is the fleet size; Slots the horizon measured.
	Agents, Slots int
	// Chaos marks the churn/partition variant of the sweep.
	Chaos bool
	// Partitions is the controller partition count driving this cell
	// (1 = the single controller).
	Partitions int
	// Conflicts, Retries, and ForcedCommits aggregate the optimistic-commit
	// protocol across partitions and slots; all zero for Partitions == 1.
	Conflicts, Retries, ForcedCommits int64
	// P50 and P99 are slot-tick latency percentiles: one tick is probe +
	// gather + decide + scatter + settle, the full RunSlot critical path.
	P50, P99 time.Duration
	// SlotsPerSec is the sustained tick throughput over the horizon.
	SlotsPerSec float64
	// AllocsPerSlot is the process-wide heap allocation count per slot
	// (controller + hollow agents + transport; the hollow harness shares the
	// process, so this is an upper bound on the controller's own rate).
	AllocsPerSlot float64
	// HeapMB is the live heap after the run, in MiB — the memory ceiling
	// signal for the fleet-size sweep.
	HeapMB float64
	// DegradedSlots counts slots scheduled with >= 1 agent masked.
	DegradedSlots int
	// EnergyPerSlot and FinalBacklog summarize the schedule itself, so a
	// transport-level speedup that silently breaks scheduling shows up here.
	EnergyPerSlot float64
	FinalBacklog  float64
}

// ScaleResult is the full sweep.
type ScaleResult struct {
	Points []ScalePoint
}

// scaleCollector records the per-slot controller signals.
type scaleCollector struct {
	degraded int
	energy   float64
	backlog  float64
}

func (sc *scaleCollector) ObserveSlot(ev telemetry.SlotEvent) {
	if ev.Origin != telemetry.OriginController {
		return
	}
	if len(ev.Degraded) > 0 {
		sc.degraded++
	}
	sc.energy += ev.Energy
	sc.backlog = ev.TotalBacklog
}

// scaleChaosPlan builds the churn plan for an n-agent fleet: KillFrac of the
// agents partitioned for 4 slots each, starts staggered across the middle
// half of the horizon, plus a 1% call-drop rate over everyone.
func scaleChaosPlan(cfg ScaleConfig, n int) *chaos.Plan {
	kill := int(float64(n) * cfg.KillFrac)
	if kill < 1 {
		kill = 1
	}
	if kill >= n {
		kill = n - 1
	}
	const down = 4
	from, to := cfg.Slots/4, cfg.Slots*3/4-down
	if to < from {
		to = from
	}
	windows := make([]chaos.Window, kill)
	for k := 0; k < kill; k++ {
		start := from
		if kill > 1 {
			start = from + k*(to-from)/(kill-1)
		}
		windows[k] = chaos.Window{Agent: 1 + (k*7)%(n-1), From: start, To: start + down}
	}
	return &chaos.Plan{Seed: cfg.ChaosSeed, Drop: 0.01, Windows: windows}
}

// scaleRun measures one cell: build the fleet, run the horizon, report the
// point. plan nil is the fault-free variant; parts > 1 drives the fleet with
// the partitioned control plane instead of the single controller.
func scaleRun(cfg ScaleConfig, n, parts int, plan *chaos.Plan) (ScalePoint, error) {
	pt := ScalePoint{Agents: n, Slots: cfg.Slots, Chaos: plan != nil, Partitions: parts}
	in, err := hollow.NewScaleInputs(cfg.Seed, n, cfg.Slots)
	if err != nil {
		return pt, err
	}
	fleet, err := hollow.NewFleet(in, hollow.Options{Conns: cfg.Conns})
	if err != nil {
		return pt, err
	}
	defer fleet.Close()

	conns := fleet.Conns()
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return pt, err
		}
		for i := range conns {
			conns[i] = plan.Wrap(conns[i], i)
		}
	}
	col := &scaleCollector{}
	obs := []telemetry.SlotObserver{col}
	var ck *invariant.Checker
	if cfg.Check || plan != nil {
		ck = invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
		obs = append(obs, ck)
	}
	if cfg.Observer != nil {
		obs = append(obs, cfg.Observer)
	}
	type slotDriver interface {
		RunSlotContext(ctx context.Context, t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error)
	}
	var ct slotDriver
	var plane *controlplane.Plane
	if parts > 1 {
		plane, err = controlplane.New(in.Cluster, conns, controlplane.Config{
			Partitions: parts,
			NewScheduler: func() (sched.Scheduler, error) {
				return core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
			},
			Policy:   controller.Degrade,
			Observer: telemetry.Multi(obs...),
		})
		if err != nil {
			return pt, err
		}
		ct = plane
	} else {
		g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
		if err != nil {
			return pt, err
		}
		ctrl, err := controller.New(in.Cluster, g, conns,
			controller.WithObserver(telemetry.Multi(obs...)),
			controller.WithFailurePolicy(controller.Degrade),
		)
		if err != nil {
			return pt, err
		}
		ct = ctrl
	}

	ticks := make([]time.Duration, cfg.Slots)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for t := 0; t < cfg.Slots; t++ {
		if err := cfg.Context.Err(); err != nil {
			return pt, err
		}
		t0 := time.Now()
		if _, _, _, err := ct.RunSlotContext(cfg.Context, t, in.Workload.Arrivals(t)); err != nil {
			return pt, fmt.Errorf("agents=%d slot %d: %w", n, t, err)
		}
		ticks[t] = time.Since(t0)
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	if ck != nil {
		if err := ck.Err(); err != nil {
			return pt, fmt.Errorf("agents=%d invariant check: %w", n, err)
		}
	}

	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	pt.P50 = ticks[len(ticks)/2]
	pt.P99 = ticks[(len(ticks)*99)/100]
	pt.SlotsPerSec = float64(cfg.Slots) / total.Seconds()
	pt.AllocsPerSlot = float64(after.Mallocs-before.Mallocs) / float64(cfg.Slots)
	pt.HeapMB = float64(after.HeapAlloc) / (1 << 20)
	pt.DegradedSlots = col.degraded
	pt.EnergyPerSlot = col.energy / float64(cfg.Slots)
	pt.FinalBacklog = col.backlog
	if plane != nil {
		for _, st := range plane.Stats() {
			pt.Conflicts += st.Conflicts
			pt.Retries += st.Retries
			pt.ForcedCommits += st.Forced
		}
	}
	return pt, nil
}

// Scale runs the hollow-fleet scale sweep. Points are measured sequentially
// — never in parallel — because every cell times a shared-process control
// loop and concurrent cells would contend for the same cores.
func Scale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{}
	for _, n := range cfg.Agents {
		pt, err := scaleRun(cfg, n, 1, nil)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
		if cfg.Chaos {
			cpt, err := scaleRun(cfg, n, 1, scaleChaosPlan(cfg, n))
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, cpt)
		}
		if cfg.Partitions > 1 && cfg.Partitions <= n {
			ppt, err := scaleRun(cfg, n, cfg.Partitions, nil)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, ppt)
			if cfg.Chaos {
				cpt, err := scaleRun(cfg, n, cfg.Partitions, scaleChaosPlan(cfg, n))
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, cpt)
			}
		}
	}
	return res, nil
}
