package experiments

import (
	"context"
	"math"
	"math/rand"
	"time"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/runner"
	"grefar/internal/sim"
	"grefar/internal/solve"
)

// GreedyVsLPResult compares the closed-form greedy slot solver against the
// simplex LP on the same sequence of slot problems.
type GreedyVsLPResult struct {
	// Slots is the number of slot problems solved.
	Slots int
	// MaxObjectiveDiff is the largest |greedy - LP| objective discrepancy
	// relative to 1+|LP| (must be ~solver tolerance).
	MaxObjectiveDiff float64
	// GreedyTime and LPTime are the total wall-clock times.
	GreedyTime, LPTime time.Duration
	// Speedup is LPTime/GreedyTime.
	Speedup float64
}

// AblationGreedyVsLP runs both beta=0 slot solvers on a simulated queue
// trajectory and reports agreement and speed, quantifying the DESIGN.md
// claim that the greedy is exact and much faster.
func AblationGreedyVsLP(cfg Config, slots int) (*GreedyVsLPResult, error) {
	cfg = cfg.withDefaults()
	if slots <= 0 {
		slots = 50
	}
	if cfg.Slots < slots {
		cfg.Slots = slots
	}
	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	c := in.Cluster
	gcfg := core.Config{V: 7.5}
	g, err := core.New(c, gcfg)
	if err != nil {
		return nil, err
	}

	// Drive a realistic backlog trajectory with GreFar itself, timing the
	// two slot solvers head to head on the same inputs each slot.
	qs := queue.NewSet(c)
	st := model.NewState(c)
	res := &GreedyVsLPResult{Slots: slots}
	for t := 0; t < slots; t++ {
		avail := in.Availability.At(t)
		for i := 0; i < c.N(); i++ {
			copy(st.Avail[i], avail[i])
			st.Price[i] = in.Prices[i].At(t)
		}
		lengths := qs.Lengths()

		start := time.Now()
		_, _, greedyObj, err := core.SolveSlotGreedy(c, gcfg, st, lengths)
		if err != nil {
			return nil, err
		}
		res.GreedyTime += time.Since(start)

		start = time.Now()
		_, _, lpObj, err := core.SolveSlotLP(c, gcfg, st, lengths)
		if err != nil {
			return nil, err
		}
		res.LPTime += time.Since(start)

		diff := math.Abs(greedyObj-lpObj) / (1 + math.Abs(lpObj))
		if diff > res.MaxObjectiveDiff {
			res.MaxObjectiveDiff = diff
		}

		act, err := g.Decide(t, st, lengths)
		if err != nil {
			return nil, err
		}
		if _, err := qs.Apply(t, act); err != nil {
			return nil, err
		}
		if err := qs.Arrive(t, in.Workload.Arrivals(t)); err != nil {
			return nil, err
		}
	}
	if res.GreedyTime > 0 {
		res.Speedup = float64(res.LPTime) / float64(res.GreedyTime)
	}
	return res, nil
}

// FWItersResult records the Frank-Wolfe iteration-budget ablation: the
// objective gap of cheap budgets relative to a high-budget reference.
type FWItersResult struct {
	Iters []int
	// RelGap[i] is (obj(iters) - obj(reference)) / (1+|obj(reference)|),
	// averaged over the sampled slot problems.
	RelGap []float64
}

// AblationFWIters sweeps the Frank-Wolfe iteration budget on beta>0 slot
// problems, quantifying how many iterations the per-slot QP actually needs.
func AblationFWIters(cfg Config, iters []int, samples int) (*FWItersResult, error) {
	cfg = cfg.withDefaults()
	if len(iters) == 0 {
		iters = []int{5, 20, 50, 150}
	}
	if samples <= 0 {
		samples = 10
	}
	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	c := in.Cluster
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	// Reference: a generous budget.
	ref, err := core.New(c, core.Config{V: 7.5, Beta: 100, FW: solve.FWOptions{MaxIters: 2000, Tol: 1e-12}})
	if err != nil {
		return nil, err
	}
	cands := make([]*core.GreFar, len(iters))
	for x, it := range iters {
		cands[x], err = core.New(c, core.Config{V: 7.5, Beta: 100, FW: solve.FWOptions{MaxIters: it, Tol: 1e-12}})
		if err != nil {
			return nil, err
		}
	}
	gamma := core.AccountWeights(c)
	gaps := make([]float64, len(iters))

	st := model.NewState(c)
	for s := 0; s < samples; s++ {
		t := rng.Intn(cfg.Slots)
		avail := in.Availability.At(t)
		for i := 0; i < c.N(); i++ {
			copy(st.Avail[i], avail[i])
			st.Price[i] = in.Prices[i].At(t)
		}
		lengths := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
		for j := range lengths.Central {
			lengths.Central[j] = float64(rng.Intn(40))
		}
		for i := range lengths.Local {
			lengths.Local[i] = make([]float64, c.J())
			for j := range lengths.Local[i] {
				lengths.Local[i][j] = float64(rng.Intn(40))
			}
		}
		refAct, err := ref.Decide(t, st, lengths)
		if err != nil {
			return nil, err
		}
		refObj := core.DriftPlusPenalty(c, core.Config{V: 7.5, Beta: 100}, st, lengths, refAct, gamma)
		for x, cand := range cands {
			act, err := cand.Decide(t, st, lengths)
			if err != nil {
				return nil, err
			}
			obj := core.DriftPlusPenalty(c, core.Config{V: 7.5, Beta: 100}, st, lengths, act, gamma)
			gaps[x] += (obj - refObj) / (1 + math.Abs(refObj))
		}
	}
	res := &FWItersResult{Iters: iters, RelGap: make([]float64, len(iters))}
	for x := range iters {
		res.RelGap[x] = gaps[x] / float64(samples)
	}
	return res, nil
}

// RoutingTieBreakResult compares the two routing tie-break rules at small V,
// where all local queues hover near zero and ties dominate.
type RoutingTieBreakResult struct {
	// SplitEnergy and FirstEnergy are the average energy costs under the
	// default tie-splitting rule and the naive first-site rule.
	SplitEnergy, FirstEnergy float64
	// SplitWork and FirstWork are the per-site work shares.
	SplitWork, FirstWork []float64
}

// AblationRoutingTieBreak quantifies the DESIGN.md routing ablation: at
// V = 0.1 the naive first-site rule never routes to the later (expensive)
// site simply because indices break ties, accidentally hiding its cost; the
// faithful tie-splitting rule spreads jobs and reports the true small-V
// energy cost, which is what makes Fig. 2's energy curve monotone in V.
func AblationRoutingTieBreak(cfg Config) (*RoutingTieBreakResult, error) {
	cfg = cfg.withDefaults()
	rules := []core.RoutingRule{core.SplitTies, core.FirstSiteWins}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(rules), func(ctx context.Context, ri int) (*sim.Result, error) {
		in, err := cfg.inputs()
		if err != nil {
			return nil, err
		}
		g, err := core.New(in.Cluster, core.Config{V: 0.1, Routing: rules[ri]})
		if err != nil {
			return nil, err
		}
		return sim.Run(in, g, cfg.simOptions(ctx, false))
	})
	if err != nil {
		return nil, err
	}
	res := &RoutingTieBreakResult{
		SplitEnergy: runs[0].AvgEnergy, SplitWork: runs[0].AvgWorkPerDC,
		FirstEnergy: runs[1].AvgEnergy, FirstWork: runs[1].AvgWorkPerDC,
	}
	return res, nil
}

// WorkShare returns the average work per slot scheduled to each data center
// under GreFar with V=7.5, beta=100 — the paper reports 33.967, 48.502, and
// 14.770, i.e. the bulk of the work landing on the cheapest site (DC2).
func WorkShare(cfg Config) ([]float64, error) {
	cfg = cfg.withDefaults()
	in, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(in, g, cfg.simOptions(cfg.ctx(), false))
	if err != nil {
		return nil, err
	}
	return r.AvgWorkPerDC, nil
}
