package experiments

import (
	"fmt"

	"grefar/internal/core"
	"grefar/internal/metrics"
	"grefar/internal/sched"
	"grefar/internal/sim"
)

// Replication summarizes one metric across seeds as mean and standard
// deviation.
type Replication struct {
	Mean, Stddev float64
	// Seeds is the number of replicas aggregated.
	Seeds int
}

func (r Replication) String() string {
	return fmt.Sprintf("%.3f +- %.3f (n=%d)", r.Mean, r.Stddev, r.Seeds)
}

// RobustnessResult reports the headline Fig. 4 comparison replicated over
// independent seeds: if the orderings only held for one lucky seed, the
// reproduction would be an illusion. EnergyGapFrac is
// (Always - GreFar)/Always per seed aggregated; FairnessGap is
// GreFar - Always (positive means GreFar fairer).
type RobustnessResult struct {
	GreFarEnergy, AlwaysEnergy Replication
	EnergyGapFrac              Replication
	FairnessGap                Replication
	DelayGap                   Replication
	// Violations counts seeds where any headline ordering failed
	// (GreFar cheaper, GreFar fairer, Always delay ~1).
	Violations int
}

// Robustness replicates the GreFar-vs-Always comparison across the given
// seeds (defaults to 1..5) at V=7.5, beta=100.
func Robustness(cfg Config, seeds []int64) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	var ge, ae, gap, fair, delay metrics.Welford
	res := &RobustnessResult{}
	for _, seed := range seeds {
		in, err := sim.NewReferenceInputs(seed, cfg.Slots)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
		if err != nil {
			return nil, err
		}
		a, err := sched.NewAlways(in.Cluster)
		if err != nil {
			return nil, err
		}
		rg, err := sim.Run(in, g, cfg.simOptions(false))
		if err != nil {
			return nil, fmt.Errorf("seed %d grefar: %w", seed, err)
		}
		// Rebuild inputs so both schedulers consume identical traces.
		in2, err := sim.NewReferenceInputs(seed, cfg.Slots)
		if err != nil {
			return nil, err
		}
		ra, err := sim.Run(in2, a, cfg.simOptions(false))
		if err != nil {
			return nil, fmt.Errorf("seed %d always: %w", seed, err)
		}

		ge.Add(rg.AvgEnergy)
		ae.Add(ra.AvgEnergy)
		gap.Add((ra.AvgEnergy - rg.AvgEnergy) / ra.AvgEnergy)
		fair.Add(rg.AvgFairness - ra.AvgFairness)
		delay.Add(rg.AvgLocalDelay[0] - ra.AvgLocalDelay[0])
		if !(rg.AvgEnergy < ra.AvgEnergy && rg.AvgFairness > ra.AvgFairness &&
			ra.AvgLocalDelay[0] > 0.9 && ra.AvgLocalDelay[0] < 1.5) {
			res.Violations++
		}
	}
	mk := func(w metrics.Welford) Replication {
		return Replication{Mean: w.Mean(), Stddev: w.Stddev(), Seeds: w.Count()}
	}
	res.GreFarEnergy = mk(ge)
	res.AlwaysEnergy = mk(ae)
	res.EnergyGapFrac = mk(gap)
	res.FairnessGap = mk(fair)
	res.DelayGap = mk(delay)
	return res, nil
}
