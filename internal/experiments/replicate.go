package experiments

import (
	"context"
	"fmt"

	"grefar/internal/core"
	"grefar/internal/metrics"
	"grefar/internal/runner"
	"grefar/internal/sched"
	"grefar/internal/sim"
)

// Replication summarizes one metric across seeds as mean and standard
// deviation.
type Replication struct {
	Mean, Stddev float64
	// Seeds is the number of replicas aggregated.
	Seeds int
}

func (r Replication) String() string {
	return fmt.Sprintf("%.3f +- %.3f (n=%d)", r.Mean, r.Stddev, r.Seeds)
}

// RobustnessResult reports the headline Fig. 4 comparison replicated over
// independent seeds: if the orderings only held for one lucky seed, the
// reproduction would be an illusion. EnergyGapFrac is
// (Always - GreFar)/Always per seed aggregated; FairnessGap is
// GreFar - Always (positive means GreFar fairer).
type RobustnessResult struct {
	GreFarEnergy, AlwaysEnergy Replication
	EnergyGapFrac              Replication
	FairnessGap                Replication
	DelayGap                   Replication
	// Violations counts seeds where any headline ordering failed
	// (GreFar cheaper, GreFar fairer, Always delay ~1).
	Violations int
}

// Robustness replicates the GreFar-vs-Always comparison across the given
// seeds (defaults to 1..5) at V=7.5, beta=100. Seeds pass through
// CanonicalSeed, so a literal 0 in the list is expressed as SeedZero. The
// per-seed replicas fan out across Config.Workers; the Welford aggregation
// runs serially in seed order afterwards, so the floating-point results are
// bit-identical at any worker count.
func Robustness(cfg Config, seeds []int64) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	type seedRuns struct {
		grefar, always *sim.Result
	}
	runs, err := runner.Map(cfg.ctx(), cfg.Workers, len(seeds), func(ctx context.Context, si int) (seedRuns, error) {
		seed := CanonicalSeed(seeds[si])
		in, err := sim.NewReferenceInputs(seed, cfg.Slots)
		if err != nil {
			return seedRuns{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
		if err != nil {
			return seedRuns{}, err
		}
		a, err := sched.NewAlways(in.Cluster)
		if err != nil {
			return seedRuns{}, err
		}
		rg, err := sim.Run(in, g, cfg.simOptions(ctx, false))
		if err != nil {
			return seedRuns{}, fmt.Errorf("seed %d grefar: %w", seed, err)
		}
		// Rebuild inputs so both schedulers consume identical traces.
		in2, err := sim.NewReferenceInputs(seed, cfg.Slots)
		if err != nil {
			return seedRuns{}, err
		}
		ra, err := sim.Run(in2, a, cfg.simOptions(ctx, false))
		if err != nil {
			return seedRuns{}, fmt.Errorf("seed %d always: %w", seed, err)
		}
		return seedRuns{grefar: rg, always: ra}, nil
	})
	if err != nil {
		return nil, err
	}

	var ge, ae, gap, fair, delay metrics.Welford
	res := &RobustnessResult{}
	for _, sr := range runs {
		rg, ra := sr.grefar, sr.always

		ge.Add(rg.AvgEnergy)
		ae.Add(ra.AvgEnergy)
		gap.Add((ra.AvgEnergy - rg.AvgEnergy) / ra.AvgEnergy)
		fair.Add(rg.AvgFairness - ra.AvgFairness)
		delay.Add(rg.AvgLocalDelay[0] - ra.AvgLocalDelay[0])
		if !(rg.AvgEnergy < ra.AvgEnergy && rg.AvgFairness > ra.AvgFairness &&
			ra.AvgLocalDelay[0] > 0.9 && ra.AvgLocalDelay[0] < 1.5) {
			res.Violations++
		}
	}
	mk := func(w metrics.Welford) Replication {
		return Replication{Mean: w.Mean(), Stddev: w.Stddev(), Seeds: w.Count()}
	}
	res.GreFarEnergy = mk(ge)
	res.AlwaysEnergy = mk(ae)
	res.EnergyGapFrac = mk(gap)
	res.FairnessGap = mk(fair)
	res.DelayGap = mk(delay)
	return res, nil
}
