package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoServer(t *testing.T) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, func(kind string, body []byte) (any, error) {
		switch kind {
		case KindPing:
			var p Ping
			if err := Unmarshal(body, &p); err != nil {
				return nil, err
			}
			return p, nil
		case "boom":
			return nil, errors.New("kaboom")
		default:
			return nil, fmt.Errorf("unknown kind %q", kind)
		}
	})
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp Ping
	if err := c.Call(KindPing, Ping{Nonce: 42}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Nonce != 42 {
		t.Errorf("Nonce = %d, want 42", resp.Nonce)
	}
}

func TestCallRemoteError(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", Ping{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Kind != "boom" || !strings.Contains(re.Error(), "kaboom") {
		t.Errorf("unexpected error: %v", re)
	}
	// The connection survives a remote error.
	var resp Ping
	if err := c.Call(KindPing, Ping{Nonce: 7}, &resp); err != nil || resp.Nonce != 7 {
		t.Errorf("call after error failed: %v", err)
	}
}

func TestCallUnknownKind(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nope", Ping{}, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConcurrentCallsSerialized(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for n := 0; n < 20; n++ {
		wg.Add(1)
		go func(n uint64) {
			defer wg.Done()
			var resp Ping
			if err := c.Call(KindPing, Ping{Nonce: n}, &resp); err != nil {
				t.Errorf("call %d: %v", n, err)
				return
			}
			if resp.Nonce != n {
				t.Errorf("call %d got nonce %d", n, resp.Nonce)
			}
		}(uint64(n))
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	_, addr := echoServer(t)
	for n := 0; n < 5; n++ {
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var resp Ping
		if err := c.Call(KindPing, Ping{Nonce: uint64(n)}, &resp); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

func TestClientClosed(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Call(KindPing, Ping{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := echoServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestCallTimeout(t *testing.T) {
	// A server that never answers must trip the client deadline.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := Dial(lis.Addr().String(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Call(KindPing, Ping{}, nil); err == nil {
		t.Error("call to mute server succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	rep := StateReport{Slot: 3, DataCenter: 1, Avail: []float64{5}, Price: 0.42, QueueLens: []float64{1, 2}}
	data, err := Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got StateReport
	if err := Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Slot != 3 || got.Price != 0.42 || got.QueueLens[1] != 2 {
		t.Errorf("round trip mangled: %+v", got)
	}
	if err := Unmarshal([]byte("garbage"), &got); err == nil {
		t.Error("garbage decoded")
	}
}
