package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Backoff bounds for the retry loop: attempt n waits baseBackoff * 2^(n-1),
// capped at maxBackoff, before redialing. Without this, a dead agent turns
// the retry loop into a tight spin of connection attempts.
const (
	baseBackoff = 50 * time.Millisecond
	maxBackoff  = 2 * time.Second
)

// ReconnectClient wraps Dial with lazy connection establishment and
// bounded-retry reconnection: if a call fails because the connection broke
// (agent restart, transient network fault), the client redials and replays
// the request. Because the control-loop requests are idempotent snapshots
// and slot-tagged commands, replay is safe: an agent that already applied an
// allocation for a slot would only be asked again if its reply was lost, and
// the controller aborts the run on a genuine remote error rather than
// retrying it.
type ReconnectClient struct {
	addr    string
	timeout time.Duration
	retries int
	// backoff is the first retry delay (doubled per attempt, capped at
	// maxBackoff); defaults to baseBackoff, overridable in tests.
	backoff time.Duration

	// jitterMu guards rng; retryDelay runs outside mu so a slow backoff
	// computation never extends the connection critical section.
	jitterMu sync.Mutex
	rng      *rand.Rand

	mu     sync.Mutex
	client *Client
	closed bool
}

// NewReconnectClient builds a client for addr that (re)connects on demand
// and retries a failed call up to retries times (default 2).
func NewReconnectClient(addr string, timeout time.Duration, retries int) *ReconnectClient {
	if retries <= 0 {
		retries = 2
	}
	// Seed the backoff jitter from the address so each client draws a
	// distinct but reproducible delay sequence: a fleet of agents restarted
	// together spreads its reconnect attempts instead of herding, and a test
	// re-running the same topology sees the same delays.
	h := fnv.New64a()
	h.Write([]byte(addr))
	return &ReconnectClient{
		addr:    addr,
		timeout: timeout,
		retries: retries,
		backoff: baseBackoff,
		rng:     rand.New(rand.NewSource(int64(h.Sum64()))),
	}
}

// SetJitterSeed reseeds the backoff jitter, pinning the exact delay sequence
// for deterministic tests.
func (r *ReconnectClient) SetJitterSeed(seed int64) {
	r.jitterMu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.jitterMu.Unlock()
}

// retryDelay returns how long to wait before the given retry attempt
// (attempt >= 1): capped exponential growth from the base delay, with equal
// jitter — the upper half of the window is drawn uniformly, so the delay
// lands in [d/2, d]. Jitter never exceeds the un-jittered cap, keeping every
// existing worst-case bound intact.
func (r *ReconnectClient) retryDelay(attempt int) time.Duration {
	d := r.backoff
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	r.jitterMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.jitterMu.Unlock()
	return half + j
}

// sleepContext waits for d or until ctx is canceled, whichever comes first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ensure returns a live client, dialing if necessary. Caller holds mu.
func (r *ReconnectClient) ensure() (*Client, error) {
	if r.closed {
		return nil, ErrClosed
	}
	if r.client != nil {
		return r.client, nil
	}
	c, err := Dial(r.addr, r.timeout)
	if err != nil {
		return nil, err
	}
	r.client = c
	return c, nil
}

// Call sends a request, redialing and retrying on transport failures with
// capped exponential backoff between attempts. Remote handler errors
// (RemoteError) are not retried: the remote side saw the request and rejected
// it, so replaying cannot help.
func (r *ReconnectClient) Call(kind string, reqBody, respBody any) error {
	return r.CallContext(context.Background(), kind, reqBody, respBody)
}

// CallContext is Call honoring a context: cancellation aborts the retry loop
// immediately, including mid-backoff, so an interrupted controller does not
// sit out the remaining delays of an unreachable agent. The in-flight network
// operation itself is still bounded by the client's I/O timeout rather than
// the context.
func (r *ReconnectClient) CallContext(ctx context.Context, kind string, reqBody, respBody any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for attempt := 0; attempt <= r.retries; attempt++ {
		if attempt > 0 {
			if err := sleepContext(ctx, r.retryDelay(attempt)); err != nil {
				if lastErr != nil {
					return fmt.Errorf("canceled after %d attempts (last error: %v): %w", attempt, lastErr, err)
				}
				return err
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		c, err := r.ensure()
		if err != nil {
			r.mu.Unlock()
			if err == ErrClosed {
				return err
			}
			lastErr = err
			continue
		}
		err = c.Call(kind, reqBody, respBody)
		if err == nil {
			r.mu.Unlock()
			return nil
		}
		if _, remote := err.(*RemoteError); remote {
			r.mu.Unlock()
			return err
		}
		// Transport failure: drop the connection so the next attempt
		// redials.
		c.Close()
		r.client = nil
		r.mu.Unlock()
		lastErr = err
	}
	return fmt.Errorf("after %d attempts: %w", r.retries+1, lastErr)
}

// DropConn severs the current connection without closing the client: the
// next call redials. It exists for fault injection — the chaos transport's
// kill fault uses it to model an agent-side connection reset — and is a no-op
// when no connection is live.
func (r *ReconnectClient) DropConn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		r.client.Close()
		r.client = nil
	}
}

// Close shuts the client down permanently.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.client != nil {
		err := r.client.Close()
		r.client = nil
		return err
	}
	return nil
}
