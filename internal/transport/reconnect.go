package transport

import (
	"fmt"
	"sync"
	"time"
)

// ReconnectClient wraps Dial with lazy connection establishment and
// bounded-retry reconnection: if a call fails because the connection broke
// (agent restart, transient network fault), the client redials and replays
// the request. Because the control-loop requests are idempotent snapshots
// and slot-tagged commands, replay is safe: an agent that already applied an
// allocation for a slot would only be asked again if its reply was lost, and
// the controller aborts the run on a genuine remote error rather than
// retrying it.
type ReconnectClient struct {
	addr    string
	timeout time.Duration
	retries int

	mu     sync.Mutex
	client *Client
	closed bool
}

// NewReconnectClient builds a client for addr that (re)connects on demand
// and retries a failed call up to retries times (default 2).
func NewReconnectClient(addr string, timeout time.Duration, retries int) *ReconnectClient {
	if retries <= 0 {
		retries = 2
	}
	return &ReconnectClient{addr: addr, timeout: timeout, retries: retries}
}

// ensure returns a live client, dialing if necessary. Caller holds mu.
func (r *ReconnectClient) ensure() (*Client, error) {
	if r.closed {
		return nil, ErrClosed
	}
	if r.client != nil {
		return r.client, nil
	}
	c, err := Dial(r.addr, r.timeout)
	if err != nil {
		return nil, err
	}
	r.client = c
	return c, nil
}

// Call sends a request, redialing and retrying on transport failures.
// Remote handler errors (RemoteError) are not retried: the remote side saw
// the request and rejected it, so replaying cannot help.
func (r *ReconnectClient) Call(kind string, reqBody, respBody any) error {
	var lastErr error
	for attempt := 0; attempt <= r.retries; attempt++ {
		r.mu.Lock()
		c, err := r.ensure()
		if err != nil {
			r.mu.Unlock()
			if err == ErrClosed {
				return err
			}
			lastErr = err
			continue
		}
		err = c.Call(kind, reqBody, respBody)
		if err == nil {
			r.mu.Unlock()
			return nil
		}
		if _, remote := err.(*RemoteError); remote {
			r.mu.Unlock()
			return err
		}
		// Transport failure: drop the connection so the next attempt
		// redials.
		c.Close()
		r.client = nil
		r.mu.Unlock()
		lastErr = err
	}
	return fmt.Errorf("after %d attempts: %w", r.retries+1, lastErr)
}

// Close shuts the client down permanently.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.client != nil {
		err := r.client.Close()
		r.client = nil
		return err
	}
	return nil
}
