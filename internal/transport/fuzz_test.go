package transport_test

import (
	"net"
	"testing"
	"time"

	"grefar/internal/transport"
)

// FuzzServerFrame streams arbitrary bytes at a live transport server as if
// they were a gob frame stream. Whatever arrives — garbage, truncated frames,
// huge claimed lengths, or a byte-flipped valid frame — the server must
// neither panic nor wedge: the poisoned session dies alone and the accept
// loop keeps answering clean clients. This is the wire-level contract the
// chaos NetConn tests sample and the fuzzer explores exhaustively.
func FuzzServerFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x00"))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	// A plausible gob stream prefix with flipped bytes (from a real frame).
	f.Add([]byte("\x13\xff\x81\x03\x01\x01\x05frame\x01\xff\x82"))
	// A length prefix claiming an enormous message.
	f.Add([]byte("\xf8\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input adds wire time, not coverage")
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(lis, func(kind string, body []byte) (any, error) {
			var p transport.Ping
			if err := transport.Unmarshal(body, &p); err != nil {
				return nil, err
			}
			return p, nil
		})
		go srv.Serve()
		defer srv.Close()

		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// A short deadline keeps throughput up: when the input is a valid
		// frame prefix the server just waits for more bytes, and the
		// interesting assertion is the clean dial below, not this read.
		raw.SetDeadline(time.Now().Add(100 * time.Millisecond))
		// Write errors are expected: the server may reset the connection as
		// soon as decoding fails.
		_, _ = raw.Write(data)
		buf := make([]byte, 512)
		_, _ = raw.Read(buf)
		raw.Close()

		// The accept loop must still serve a clean session.
		cli, err := transport.Dial(srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatalf("dial after poisoned session: %v", err)
		}
		defer cli.Close()
		var pong transport.Ping
		if err := cli.Call(transport.KindPing, transport.Ping{Nonce: 42}, &pong); err != nil {
			t.Fatalf("ping after poisoned session: %v", err)
		}
		if pong.Nonce != 42 {
			t.Fatalf("Nonce = %d, want 42", pong.Nonce)
		}
	})
}
