package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pingHandler answers pings and fails "boom" requests.
func pingHandler(kind string, body []byte) (any, error) {
	switch kind {
	case KindPing:
		var p Ping
		if err := Unmarshal(body, &p); err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, errors.New("kaboom")
	}
}

func TestReconnectClientSurvivesServerRestart(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := NewServer(lis, pingHandler)
	go srv.Serve()

	c := NewReconnectClient(addr, time.Second, 3)
	defer c.Close()
	var resp Ping
	if err := c.Call(KindPing, Ping{Nonce: 1}, &resp); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the established connection is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(lis2, pingHandler)
	go srv2.Serve()
	defer srv2.Close()

	// The call must transparently redial and succeed.
	if err := c.Call(KindPing, Ping{Nonce: 2}, &resp); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if resp.Nonce != 2 {
		t.Errorf("Nonce = %d, want 2", resp.Nonce)
	}
}

func TestReconnectClientGivesUpEventually(t *testing.T) {
	// No server at all: the call must fail after bounded retries, not hang.
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 2)
	defer c.Close()
	start := time.Now()
	if err := c.Call(KindPing, Ping{}, nil); err == nil {
		t.Error("call with no server succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("retries took too long")
	}
}

func TestReconnectClientDoesNotRetryRemoteErrors(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, pingHandler)
	go srv.Serve()
	defer srv.Close()

	c := NewReconnectClient(srv.Addr(), time.Second, 3)
	defer c.Close()
	err = c.Call("boom", Ping{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError (no retries)", err)
	}
}

func TestReconnectClientClosed(t *testing.T) {
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(KindPing, Ping{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}
