package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// pingHandler answers pings and fails "boom" requests.
func pingHandler(kind string, body []byte) (any, error) {
	switch kind {
	case KindPing:
		var p Ping
		if err := Unmarshal(body, &p); err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, errors.New("kaboom")
	}
}

func TestReconnectClientSurvivesServerRestart(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := NewServer(lis, pingHandler)
	go srv.Serve()

	c := NewReconnectClient(addr, time.Second, 3)
	defer c.Close()
	var resp Ping
	if err := c.Call(KindPing, Ping{Nonce: 1}, &resp); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the established connection is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(lis2, pingHandler)
	go srv2.Serve()
	defer srv2.Close()

	// The call must transparently redial and succeed.
	if err := c.Call(KindPing, Ping{Nonce: 2}, &resp); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if resp.Nonce != 2 {
		t.Errorf("Nonce = %d, want 2", resp.Nonce)
	}
}

func TestReconnectClientGivesUpEventually(t *testing.T) {
	// No server at all: the call must fail after bounded retries, not hang.
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 2)
	defer c.Close()
	start := time.Now()
	if err := c.Call(KindPing, Ping{}, nil); err == nil {
		t.Error("call with no server succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("retries took too long")
	}
}

func TestReconnectClientDoesNotRetryRemoteErrors(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, pingHandler)
	go srv.Serve()
	defer srv.Close()

	c := NewReconnectClient(srv.Addr(), time.Second, 3)
	defer c.Close()
	err = c.Call("boom", Ping{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError (no retries)", err)
	}
}

// flakyListener accepts TCP connections but slams the door on the first
// refusals of them, then hands the rest to a real server — the shape of an
// agent that is restarting while the controller retries.
type flakyListener struct {
	net.Listener
	refusals int
}

func (fl *flakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if fl.refusals > 0 {
			fl.refusals--
			conn.Close()
			continue
		}
		return conn, nil
	}
}

func TestReconnectClientBacksOffThroughRefusals(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: lis, refusals: 2}
	srv := NewServer(fl, pingHandler)
	go srv.Serve()
	defer srv.Close()

	c := NewReconnectClient(lis.Addr().String(), time.Second, 4)
	c.backoff = 10 * time.Millisecond
	defer c.Close()

	start := time.Now()
	var resp Ping
	if err := c.CallContext(context.Background(), KindPing, Ping{Nonce: 7}, &resp); err != nil {
		t.Fatalf("call through refusals: %v", err)
	}
	if resp.Nonce != 7 {
		t.Errorf("Nonce = %d, want 7", resp.Nonce)
	}
	// Two refused connections force at least two backoff sleeps; with equal
	// jitter the windows are [5,10]ms and [10,20]ms, so at least 15ms total.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("call returned after %v; expected at least 15ms of backoff", elapsed)
	}
}

func TestReconnectClientCallContextCanceledMidRetry(t *testing.T) {
	// No server at all, large retry budget with long backoff: only
	// cancellation can end the loop quickly.
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 10)
	c.backoff = 10 * time.Second
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.CallContext(ctx, KindPing, Ping{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; the retry loop must abort mid-backoff", elapsed)
	}
}

func TestReconnectClientCallContextAlreadyCanceled(t *testing.T) {
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 3)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.CallContext(ctx, KindPing, Ping{}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled without any dial attempt", err)
	}
}

func TestRetryDelayCappedWithJitter(t *testing.T) {
	c := NewReconnectClient("127.0.0.1:1", time.Second, 3)
	// Equal jitter draws each delay from [d/2, d], where d is the un-jittered
	// capped exponential value; the cap is never exceeded.
	for attempt, want := range map[int]time.Duration{1: baseBackoff, 2: 2 * baseBackoff, 100: maxBackoff} {
		for trial := 0; trial < 32; trial++ {
			if d := c.retryDelay(attempt); d < want/2 || d > want {
				t.Errorf("retryDelay(%d) = %v, want within [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func TestRetryDelayJitterDeterministic(t *testing.T) {
	// Same seed, same sequence: tests can pin the exact delays.
	sample := func(seed int64) []time.Duration {
		c := NewReconnectClient("127.0.0.1:1", time.Second, 3)
		c.SetJitterSeed(seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.retryDelay(i + 1)
		}
		return out
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v != %v with identical seeds", i, a[i], b[i])
		}
	}
	// Different addresses default to different streams (anti thundering-herd):
	// at least one of the first 8 delays should differ.
	c1 := NewReconnectClient("127.0.0.1:1", time.Second, 3)
	c2 := NewReconnectClient("127.0.0.1:2", time.Second, 3)
	same := true
	for i := 1; i <= 8; i++ {
		if c1.retryDelay(i) != c2.retryDelay(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("two addresses drew identical jitter sequences")
	}
}

func TestDropConnForcesRedial(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, pingHandler)
	go srv.Serve()
	defer srv.Close()

	c := NewReconnectClient(srv.Addr(), time.Second, 3)
	defer c.Close()
	var resp Ping
	if err := c.Call(KindPing, Ping{Nonce: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	c.DropConn()
	if c.client != nil {
		t.Fatal("DropConn left a live connection")
	}
	if err := c.Call(KindPing, Ping{Nonce: 2}, &resp); err != nil {
		t.Fatalf("call after DropConn: %v", err)
	}
	if resp.Nonce != 2 {
		t.Errorf("Nonce = %d, want 2", resp.Nonce)
	}
}

func TestReconnectClientClosed(t *testing.T) {
	c := NewReconnectClient("127.0.0.1:1", 100*time.Millisecond, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(KindPing, Ping{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}
