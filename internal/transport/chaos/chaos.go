// Package chaos injects deterministic, seed-driven transport faults between
// the GreFar controller and its agents. A Plan describes the fault mix —
// per-call drop/kill/delay/duplicate probabilities plus hard partition
// windows over slot ranges — and Wrap turns any agent connection into one
// that executes the plan. Every fault decision is drawn from a per-agent
// PRNG seeded from the plan, so two runs with the same seed, topology, and
// call sequence fail in exactly the same places: chaos runs are replayable,
// golden-traceable experiments, not flaky tests.
//
// The fault model matches what the control loop's failure handling must
// survive: a dropped call looks like a network timeout, a killed connection
// forces the client to redial, a duplicated request exercises the agents'
// idempotent allocation path, a delay stretches the call without failing it,
// and a partition window [From, To) makes an agent unreachable for a slot
// range — the shape of a rack losing uplink and coming back.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"grefar/internal/transport"
)

// Fault names, as reported by Error.Fault.
const (
	// FaultDrop is a call that never reached the agent.
	FaultDrop = "drop"
	// FaultKill is a dropped call that also severed the underlying
	// connection, forcing a redial.
	FaultKill = "kill"
	// FaultPartition is a call refused because the agent is inside a
	// partition window.
	FaultPartition = "partition"
)

// Window makes one agent unreachable for the slot range [From, To): every
// call tagged with a slot in the window fails with FaultPartition, including
// liveness probes.
type Window struct {
	// Agent is the data-center index the window applies to.
	Agent int
	// From (inclusive) and To (exclusive) bound the unreachable slot range.
	From, To int
}

// Contains reports whether the window blackholes the given agent and slot.
func (w Window) Contains(agent, slot int) bool {
	return w.Agent == agent && slot >= w.From && slot < w.To
}

// Plan is a deterministic fault schedule. The zero value injects nothing;
// probabilities are per call, evaluated in a fixed order (partition, drop,
// kill, delay, duplicate) against a per-agent PRNG derived from Seed, so the
// fault sequence is a pure function of (Seed, agent, call order).
type Plan struct {
	// Seed derives every per-agent fault stream.
	Seed int64
	// Drop is the probability a call fails without reaching the agent.
	Drop float64
	// Kill is the probability a call fails and severs the connection (the
	// wrapped connection's DropConn is invoked when it has one).
	Kill float64
	// Delay is the probability a call is stalled before proceeding.
	Delay float64
	// MaxDelay bounds the injected stall (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// Dup is the probability a call is delivered twice, with the first
	// response discarded — the retransmission shape that catches
	// non-idempotent handlers.
	Dup float64
	// Windows are hard partition intervals per agent.
	Windows []Window
}

// Validate checks the plan's probabilities and windows.
func (p *Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"kill", p.Kill}, {"delay", p.Delay}, {"dup", p.Dup}} {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("chaos: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	for _, w := range p.Windows {
		if w.Agent < 0 || w.From < 0 || w.To < w.From {
			return fmt.Errorf("chaos: bad partition window %+v", w)
		}
	}
	return nil
}

// Partitioned reports whether the plan blackholes the agent at the slot.
func (p *Plan) Partitioned(agent, slot int) bool {
	for _, w := range p.Windows {
		if w.Contains(agent, slot) {
			return true
		}
	}
	return false
}

// Error is the typed failure a chaos fault produces, identifying what was
// injected and where so tests can assert on the fault stream.
type Error struct {
	Fault string
	Agent int
	Slot  int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("chaos: %s fault at agent %d slot %d", e.Fault, e.Agent, e.Slot)
}

// Conn is the calling surface chaos wraps — satisfied by transport.Client,
// transport.ReconnectClient, transport.Loopback, and the controller's
// in-process fakes.
type Conn interface {
	Call(kind string, reqBody, respBody any) error
}

// connDropper is implemented by connections that can sever their transport
// (transport.ReconnectClient); the kill fault uses it.
type connDropper interface {
	DropConn()
}

// contextConn mirrors controller.ContextAgentConn without importing it.
type contextConn interface {
	CallContext(ctx context.Context, kind string, reqBody, respBody any) error
}

// AgentConn wraps one agent's connection with the plan's fault stream. It is
// safe for concurrent use; note that faults are deterministic only when the
// per-agent call order is (the control loop issues each agent's calls
// sequentially, so cross-agent goroutine interleaving cannot perturb the
// streams).
type AgentConn struct {
	inner Conn
	agent int
	plan  *Plan

	mu  sync.Mutex
	rng *rand.Rand
}

// agentSeedStride decorrelates per-agent streams derived from one plan seed.
const agentSeedStride int64 = 0x5851f42d4c957f2d

// Wrap builds the chaos-injected connection for one agent.
func (p *Plan) Wrap(inner Conn, agent int) *AgentConn {
	return &AgentConn{
		inner: inner,
		agent: agent,
		plan:  p,
		rng:   rand.New(rand.NewSource(p.Seed + int64(agent)*agentSeedStride)),
	}
}

// slotOf extracts the control-loop slot a request is tagged with; untagged
// kinds report false and bypass partition windows.
func slotOf(reqBody any) (int, bool) {
	switch r := reqBody.(type) {
	case transport.StateRequest:
		return r.Slot, true
	case *transport.StateRequest:
		return r.Slot, true
	case transport.Allocate:
		return r.Slot, true
	case *transport.Allocate:
		return r.Slot, true
	case transport.Ping:
		return r.Slot, true
	case *transport.Ping:
		return r.Slot, true
	case transport.RestoreRequest:
		return r.Slot, true
	case *transport.RestoreRequest:
		return r.Slot, true
	}
	return 0, false
}

// Call implements Conn, running the fault schedule before (possibly)
// delegating to the wrapped connection.
func (c *AgentConn) Call(kind string, reqBody, respBody any) error {
	return c.CallContext(context.Background(), kind, reqBody, respBody)
}

// CallContext is Call honoring a context; the wrapped connection's context
// path is used when it has one.
func (c *AgentConn) CallContext(ctx context.Context, kind string, reqBody, respBody any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	slot, tagged := slotOf(reqBody)
	// Partition windows are pure functions of the slot: no PRNG draw, so
	// enabling a window never perturbs the probabilistic fault stream.
	if tagged && c.plan.Partitioned(c.agent, slot) {
		return &Error{Fault: FaultPartition, Agent: c.agent, Slot: slot}
	}
	dup := false
	var stall time.Duration
	c.mu.Lock()
	// Draw only for configured faults, in fixed order, so adding a fault
	// class to a plan does not reshuffle the draws of the others.
	if c.plan.Drop > 0 && c.rng.Float64() < c.plan.Drop {
		c.mu.Unlock()
		return &Error{Fault: FaultDrop, Agent: c.agent, Slot: slot}
	}
	if c.plan.Kill > 0 && c.rng.Float64() < c.plan.Kill {
		c.mu.Unlock()
		if d, ok := c.inner.(connDropper); ok {
			d.DropConn()
		}
		return &Error{Fault: FaultKill, Agent: c.agent, Slot: slot}
	}
	if c.plan.Delay > 0 && c.rng.Float64() < c.plan.Delay {
		max := c.plan.MaxDelay
		if max <= 0 {
			max = 10 * time.Millisecond
		}
		stall = time.Duration(c.rng.Int63n(int64(max) + 1))
	}
	if c.plan.Dup > 0 && c.rng.Float64() < c.plan.Dup {
		dup = true
	}
	c.mu.Unlock()
	if stall > 0 {
		t := time.NewTimer(stall)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if dup {
		// Deliver the request twice and discard the first response: a
		// retransmission whose original was not actually lost. The second
		// delivery's response is the one the caller sees, so non-idempotent
		// handlers surface as divergence, not as a transport error.
		if err := c.call(ctx, kind, reqBody, nil); err != nil {
			return err
		}
	}
	return c.call(ctx, kind, reqBody, respBody)
}

func (c *AgentConn) call(ctx context.Context, kind string, reqBody, respBody any) error {
	if cc, ok := c.inner.(contextConn); ok {
		return cc.CallContext(ctx, kind, reqBody, respBody)
	}
	return c.inner.Call(kind, reqBody, respBody)
}

// NetConn wraps a raw network connection with seeded byte-level faults: each
// Write may corrupt one byte or abruptly close the connection. It drives the
// transport-level robustness tests — a server facing a NetConn peer sees
// undecodable frames and mid-stream hangups, which must end that session
// only, never the accept loop.
type NetConn struct {
	inner interface {
		Write(p []byte) (int, error)
		Close() error
	}

	mu      sync.Mutex
	rng     *rand.Rand
	corrupt float64
	kill    float64
}

// WrapNetConn builds the byte-level fault injector. corrupt and kill are
// per-Write probabilities.
func WrapNetConn(inner interface {
	Write(p []byte) (int, error)
	Close() error
}, seed int64, corrupt, kill float64) *NetConn {
	return &NetConn{inner: inner, rng: rand.New(rand.NewSource(seed)), corrupt: corrupt, kill: kill}
}

// Write implements io.Writer with the fault schedule applied.
func (c *NetConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.kill > 0 && c.rng.Float64() < c.kill {
		c.mu.Unlock()
		c.inner.Close()
		return 0, fmt.Errorf("chaos: connection killed mid-write")
	}
	if c.corrupt > 0 && len(p) > 0 && c.rng.Float64() < c.corrupt {
		i := c.rng.Intn(len(p))
		mutated := append([]byte(nil), p...)
		mutated[i] ^= 0xff
		c.mu.Unlock()
		return c.inner.Write(mutated)
	}
	c.mu.Unlock()
	return c.inner.Write(p)
}

// Close closes the wrapped connection.
func (c *NetConn) Close() error { return c.inner.Close() }
