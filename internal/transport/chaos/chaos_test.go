package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"grefar/internal/transport"
)

// echoHandler answers pings and counts deliveries.
type echoHandler struct{ calls atomic.Int64 }

func (h *echoHandler) handle(kind string, body []byte) (any, error) {
	h.calls.Add(1)
	var p transport.Ping
	if err := transport.Unmarshal(body, &p); err != nil {
		return nil, err
	}
	return p, nil
}

// faultSequence records which of n slot-tagged calls fail, and how.
func faultSequence(t *testing.T, plan *Plan, n int) []string {
	t.Helper()
	h := &echoHandler{}
	conn := plan.Wrap(transport.NewLoopback(h.handle), 0)
	out := make([]string, n)
	for s := 0; s < n; s++ {
		var resp transport.Ping
		err := conn.Call(transport.KindPing, transport.Ping{Nonce: uint64(s), Slot: s}, &resp)
		switch e := err.(type) {
		case nil:
			out[s] = "ok"
		case *Error:
			out[s] = e.Fault
		default:
			t.Fatalf("slot %d: unexpected error type %T: %v", s, err, err)
		}
	}
	return out
}

func TestPlanDeterministicAcrossRuns(t *testing.T) {
	plan := &Plan{Seed: 7, Drop: 0.3, Kill: 0.1}
	a := faultSequence(t, plan, 200)
	b := faultSequence(t, plan, 200)
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %q != %q across identical runs", i, a[i], b[i])
		}
		if a[i] != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Error("200 calls at 40% combined fault rate produced no faults")
	}
	if c := faultSequence(t, &Plan{Seed: 8, Drop: 0.3, Kill: 0.1}, 200); equalSeq(a, c) {
		t.Error("different seeds produced identical fault sequences")
	}
}

func equalSeq(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPartitionWindowExactAndDrawFree(t *testing.T) {
	base := &Plan{Seed: 3, Drop: 0.25}
	withWindow := &Plan{Seed: 3, Drop: 0.25, Windows: []Window{{Agent: 0, From: 5, To: 9}}}
	a := faultSequence(t, base, 20)
	b := faultSequence(t, withWindow, 20)
	for s := 0; s < 20; s++ {
		if s >= 5 && s < 9 {
			if b[s] != FaultPartition {
				t.Errorf("slot %d inside window: fault %q, want %q", s, b[s], FaultPartition)
			}
			continue
		}
		// Partition checks draw nothing from the PRNG, so outside the window
		// the probabilistic fault stream is untouched... but only up to the
		// first in-window call, after which the windowed run has made fewer
		// draws. Verify the prefix exactly.
		if s < 5 && a[s] != b[s] {
			t.Errorf("slot %d before window: %q != %q; window perturbed the fault stream", s, a[s], b[s])
		}
	}
	// A window for another agent must not blackhole this one.
	other := &Plan{Seed: 3, Windows: []Window{{Agent: 2, From: 0, To: 100}}}
	for s, f := range faultSequence(t, other, 10) {
		if f != "ok" {
			t.Errorf("slot %d: fault %q from another agent's window", s, f)
		}
	}
}

// outcomeSequence issues one slot-tagged ping per entry of slots through a
// fresh wrap of plan, recording each call's fault class ("ok" on success) and
// how many times it reached the handler (2 when duplicated, 0 when it never
// arrived). Loopback calls are synchronous, so the plain map is safe.
func outcomeSequence(t *testing.T, plan *Plan, slots []int) (faults []string, deliveries []int) {
	t.Helper()
	counts := map[uint64]int{}
	conn := plan.Wrap(transport.NewLoopback(func(kind string, body []byte) (any, error) {
		var p transport.Ping
		if err := transport.Unmarshal(body, &p); err != nil {
			return nil, err
		}
		counts[p.Nonce]++
		return p, nil
	}), 0)
	faults = make([]string, len(slots))
	deliveries = make([]int, len(slots))
	for k, s := range slots {
		var resp transport.Ping
		err := conn.Call(transport.KindPing, transport.Ping{Nonce: uint64(s), Slot: s}, &resp)
		switch e := err.(type) {
		case nil:
			faults[k] = "ok"
		case *Error:
			faults[k] = e.Fault
		default:
			t.Fatalf("slot %d: unexpected error type %T: %v", s, err, err)
		}
		deliveries[k] = counts[uint64(s)]
	}
	return faults, deliveries
}

// TestPartitionWindowsRNGNeutralProperty pins the property degraded-mode
// reproducibility rests on: a partition window is a pure slot predicate that
// consumes no PRNG draws, so adding or removing one never changes which of
// the calls *outside* the window drop, kill, or duplicate. Stated precisely:
// the windowed run, restricted to its outside-window calls, must equal —
// pairwise, in fault class and delivery count — an unwindowed run of the same
// seeded plan that issues exactly those calls; and every in-window call must
// fail as a partition with zero deliveries. Delay neutrality is covered
// indirectly: a spurious delay draw would shift every later drop/kill/dup
// outcome, which cannot hide across this many random plans.
func TestPartitionWindowsRNGNeutralProperty(t *testing.T) {
	meta := rand.New(rand.NewSource(20120808))
	const n = 30
	for trial := 0; trial < 120; trial++ {
		base := &Plan{
			Seed:     meta.Int63(),
			Drop:     meta.Float64() * 0.35,
			Kill:     meta.Float64() * 0.15,
			Delay:    meta.Float64() * 0.3,
			MaxDelay: time.Microsecond,
			Dup:      meta.Float64() * 0.35,
		}
		from := meta.Intn(n - 1)
		to := from + 1 + meta.Intn(n-from)
		windowed := *base
		windowed.Windows = []Window{{Agent: 0, From: from, To: to}}

		all := make([]int, n)
		outside := make([]int, 0, n)
		for s := range all {
			all[s] = s
			if s < from || s >= to {
				outside = append(outside, s)
			}
		}
		wf, wd := outcomeSequence(t, &windowed, all)
		bf, bd := outcomeSequence(t, base, outside)

		k := 0
		for s := 0; s < n; s++ {
			if s >= from && s < to {
				if wf[s] != FaultPartition {
					t.Fatalf("trial %d window [%d,%d): slot %d inside window: fault %q, want %q",
						trial, from, to, s, wf[s], FaultPartition)
				}
				if wd[s] != 0 {
					t.Fatalf("trial %d window [%d,%d): slot %d inside window delivered %d times, want 0",
						trial, from, to, s, wd[s])
				}
				continue
			}
			if wf[s] != bf[k] || wd[s] != bd[k] {
				t.Fatalf("trial %d seed %d window [%d,%d): slot %d: windowed run saw (%q, %d deliveries), unwindowed saw (%q, %d) — the window perturbed the fault stream",
					trial, base.Seed, from, to, s, wf[s], wd[s], bf[k], bd[k])
			}
			k++
		}
	}
}

func TestDupDeliversTwice(t *testing.T) {
	h := &echoHandler{}
	plan := &Plan{Seed: 1, Dup: 1}
	conn := plan.Wrap(transport.NewLoopback(h.handle), 0)
	var resp transport.Ping
	if err := conn.Call(transport.KindPing, transport.Ping{Nonce: 9}, &resp); err != nil {
		t.Fatal(err)
	}
	if got := h.calls.Load(); got != 2 {
		t.Errorf("handler saw %d deliveries, want 2", got)
	}
	if resp.Nonce != 9 {
		t.Errorf("Nonce = %d, want 9", resp.Nonce)
	}
}

// dropperConn counts DropConn invocations.
type dropperConn struct {
	Conn
	drops atomic.Int64
}

func (d *dropperConn) DropConn() { d.drops.Add(1) }

func TestKillSeversConnection(t *testing.T) {
	h := &echoHandler{}
	inner := &dropperConn{Conn: transport.NewLoopback(h.handle)}
	plan := &Plan{Seed: 1, Kill: 1}
	conn := plan.Wrap(inner, 0)
	err := conn.Call(transport.KindPing, transport.Ping{}, nil)
	var ce *Error
	if !errors.As(err, &ce) || ce.Fault != FaultKill {
		t.Fatalf("err = %v, want kill fault", err)
	}
	if inner.drops.Load() != 1 {
		t.Errorf("DropConn called %d times, want 1", inner.drops.Load())
	}
	if h.calls.Load() != 0 {
		t.Error("killed call still reached the handler")
	}
}

func TestDelayStallsButSucceeds(t *testing.T) {
	h := &echoHandler{}
	plan := &Plan{Seed: 1, Delay: 1, MaxDelay: 20 * time.Millisecond}
	conn := plan.Wrap(transport.NewLoopback(h.handle), 0)
	if err := conn.Call(transport.KindPing, transport.Ping{}, nil); err != nil {
		t.Fatalf("delayed call failed: %v", err)
	}
	if h.calls.Load() != 1 {
		t.Error("delayed call did not reach the handler")
	}
}

func TestPlanValidate(t *testing.T) {
	for _, bad := range []*Plan{
		{Drop: -0.1},
		{Kill: 1.5},
		{Windows: []Window{{Agent: -1}}},
		{Windows: []Window{{From: 5, To: 2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("plan %+v validated", bad)
		}
	}
	if err := (&Plan{Seed: 1, Drop: 0.5, Windows: []Window{{Agent: 0, From: 1, To: 4}}}).Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// TestNetConnFaultsDoNotWedgeServer streams corrupted frames at a live
// transport server: each poisoned session must die alone, leaving the accept
// loop serving fresh connections.
func TestNetConnFaultsDoNotWedgeServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(lis, func(kind string, body []byte) (any, error) {
		var p transport.Ping
		if err := transport.Unmarshal(body, &p); err != nil {
			return nil, err
		}
		return p, nil
	})
	go srv.Serve()
	defer srv.Close()

	for trial := 0; trial < 8; trial++ {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cc := WrapNetConn(raw, int64(trial), 0.7, 0.1)
		// A gob stream with flipped bytes; the server should shrug each
		// session off. Errors here are expected (killed connections).
		for i := 0; i < 20; i++ {
			if _, err := cc.Write([]byte("\x13\xff\x81\x03\x01\x01\x05frame\x01\xff\x82")); err != nil {
				break
			}
		}
		cc.Close()
	}

	// The accept loop must still answer a clean client.
	cli, err := transport.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial after chaos sessions: %v", err)
	}
	defer cli.Close()
	var resp transport.Ping
	if err := cli.Call(transport.KindPing, transport.Ping{Nonce: 77}, &resp); err != nil {
		t.Fatalf("ping after chaos sessions: %v", err)
	}
	if resp.Nonce != 77 {
		t.Errorf("Nonce = %d, want 77", resp.Nonce)
	}
}
