// Multiplexed transport: many logical endpoints behind one listener, many
// in-flight calls on one connection.
//
// The point-to-point Client/Server pair costs one TCP connection, one
// goroutine, and one file descriptor per agent — fine for the paper's three
// sites, fatal for a hollow fleet of thousands. The mux layer reuses the
// exact frame format and gob encoding but adds two degrees of freedom:
//
//   - MuxServer hosts any number of targets behind a single listener. Each
//     request frame carries a Target index and is dispatched to one handler
//     with that index; in-flight requests on a connection are served
//     concurrently, so one slow target never head-of-line-blocks the rest.
//
//   - MuxClient pipelines calls: any number of goroutines issue requests on
//     the same connection concurrently, and a reader goroutine routes each
//     response back to its caller by frame ID. A gather over N agents
//     therefore costs max(RTT) wall-clock, not N*RTT.
//
// Agent(target) binds a MuxClient to one target index as a per-agent
// connection satisfying the controller's AgentConn and ContextAgentConn,
// so the scale-out path slots into the existing control loop unchanged.
package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// MuxHandler processes one request addressed to a target endpoint.
type MuxHandler func(target int, kind string, body []byte) (any, error)

// MuxServer accepts connections and dispatches frames to a target-aware
// handler. Every request on a connection is served in its own goroutine;
// responses are serialized onto the connection's encoder.
type MuxServer struct {
	lis     net.Listener
	handler MuxHandler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewMuxServer wraps a listener. Call Serve to start accepting.
func NewMuxServer(lis net.Listener, handler MuxHandler) *MuxServer {
	return &MuxServer{lis: lis, handler: handler, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listener address.
func (s *MuxServer) Addr() string { return s.lis.Addr().String() }

// Serve accepts connections until the server is closed. It blocks; run it in
// a goroutine and call Close to stop.
func (s *MuxServer) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *MuxServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex // response writes interleave across request goroutines
	for {
		var req frame
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection ends the session
		}
		go func(req frame) {
			resp := frame{ID: req.ID, Target: req.Target, Kind: req.Kind}
			body, err := s.handler(req.Target, req.Kind, req.Body)
			if err != nil {
				resp.Err = err.Error()
			} else if encoded, merr := Marshal(body); merr != nil {
				resp.Err = merr.Error()
			} else {
				resp.Body = encoded
			}
			encMu.Lock()
			err = enc.Encode(&resp)
			encMu.Unlock()
			if err != nil {
				conn.Close() // the reader loop notices and ends the session
			}
		}(req)
	}
}

// Close stops accepting and closes open connections. Like net/http's Close,
// it does not wait for in-flight handlers: a wedged handler must not wedge
// shutdown, and its eventual response write fails harmlessly on the closed
// connection. It does wait for the per-connection reader goroutines.
func (s *MuxServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.lis.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// MuxClient is a pipelining RPC client: calls from any number of goroutines
// share one connection, with responses routed back by frame ID. Per-call
// timeouts are enforced with timers rather than connection deadlines, because
// a deadline would abort every in-flight call, not the late one.
type MuxClient struct {
	conn    net.Conn
	timeout time.Duration

	encMu sync.Mutex // gob encoders are not concurrent-safe
	enc   *gob.Encoder

	mu      sync.Mutex
	pending map[uint64]chan frame
	nextID  uint64
	closed  bool
	readErr error
	done    chan struct{} // closed when the read loop exits
}

// DialMux connects a pipelining client to a MuxServer. timeout bounds the
// dial and each call; zero means 10 seconds.
func DialMux(addr string, timeout time.Duration) (*MuxClient, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	m := &MuxClient{
		conn:    conn,
		timeout: timeout,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan frame),
		done:    make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// readLoop routes response frames to their waiting callers until the
// connection dies, then fails every pending call.
func (m *MuxClient) readLoop() {
	dec := gob.NewDecoder(m.conn)
	for {
		var resp frame
		if err := dec.Decode(&resp); err != nil {
			m.mu.Lock()
			if m.readErr == nil {
				m.readErr = fmt.Errorf("mux read: %w", err)
			}
			m.mu.Unlock()
			close(m.done)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[resp.ID]
		if ok {
			delete(m.pending, resp.ID)
		}
		m.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks the read loop
		}
	}
}

// CallTarget sends a request addressed to target and decodes the response
// into respBody (nil discards it). It honors ctx and the client timeout;
// an abandoned call's late response is dropped by the read loop.
func (m *MuxClient) CallTarget(ctx context.Context, target int, kind string, reqBody, respBody any) error {
	body, err := Marshal(reqBody)
	if err != nil {
		return err
	}
	ch := make(chan frame, 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.readErr != nil {
		err := m.readErr
		m.mu.Unlock()
		return err
	}
	m.nextID++
	id := m.nextID
	m.pending[id] = ch
	m.mu.Unlock()

	req := frame{ID: id, Target: target, Kind: kind, Body: body}
	m.encMu.Lock()
	// Bound the write alone: a per-connection read deadline would abort
	// every pipelined call in flight, not just a stalled one.
	m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
	err = m.enc.Encode(&req)
	m.encMu.Unlock()
	if err != nil {
		m.abandon(id)
		return fmt.Errorf("send %s to target %d: %w", kind, target, err)
	}

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return &RemoteError{Kind: kind, Message: resp.Err}
		}
		if respBody == nil {
			return nil
		}
		return Unmarshal(resp.Body, respBody)
	case <-ctxDone:
		m.abandon(id)
		return ctx.Err()
	case <-timer.C:
		m.abandon(id)
		return fmt.Errorf("target %d %s: %w", target, kind, ErrCallTimeout)
	case <-m.done:
		m.abandon(id)
		// The read loop may have delivered the response before dying.
		select {
		case resp := <-ch:
			if resp.Err != "" {
				return &RemoteError{Kind: kind, Message: resp.Err}
			}
			if respBody == nil {
				return nil
			}
			return Unmarshal(resp.Body, respBody)
		default:
		}
		m.mu.Lock()
		err := m.readErr
		m.mu.Unlock()
		return err
	}
}

// ErrCallTimeout marks a pipelined call that outlived the client timeout.
var ErrCallTimeout = fmt.Errorf("transport: call timed out")

// abandon forgets a pending call so its late response is dropped.
func (m *MuxClient) abandon(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// Close shuts down the connection; pending calls fail promptly.
func (m *MuxClient) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.conn.Close()
	<-m.done // read loop exit fails the stragglers
	return err
}

// MuxConn binds a MuxClient to one target, satisfying the controller's
// per-agent connection surfaces (Call and CallContext).
type MuxConn struct {
	client *MuxClient
	target int
}

// Agent returns the per-target connection for one multiplexed endpoint.
func (m *MuxClient) Agent(target int) *MuxConn {
	return &MuxConn{client: m, target: target}
}

// Call implements the synchronous connection surface.
func (c *MuxConn) Call(kind string, reqBody, respBody any) error {
	return c.client.CallTarget(context.Background(), c.target, kind, reqBody, respBody)
}

// CallContext is Call honoring a context.
func (c *MuxConn) CallContext(ctx context.Context, kind string, reqBody, respBody any) error {
	return c.client.CallTarget(ctx, c.target, kind, reqBody, respBody)
}
