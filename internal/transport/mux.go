// Multiplexed transport: many logical endpoints behind one listener, many
// in-flight calls on one connection.
//
// The point-to-point Client/Server pair costs one TCP connection, one
// goroutine, and one file descriptor per agent — fine for the paper's three
// sites, fatal for a hollow fleet of thousands. The mux layer reuses the
// exact frame format and gob encoding but adds two degrees of freedom:
//
//   - MuxServer hosts any number of targets behind a single listener. Each
//     request frame carries a Target index and is dispatched to one handler
//     with that index; in-flight requests on a connection are served
//     concurrently, so one slow target never head-of-line-blocks the rest.
//
//   - MuxClient pipelines calls: any number of goroutines issue requests on
//     the same connection concurrently, and a reader goroutine routes each
//     response back to its caller by frame ID. A gather over N agents
//     therefore costs max(RTT) wall-clock, not N*RTT.
//
// Agent(target) binds a MuxClient to one target index as a per-agent
// connection satisfying the controller's AgentConn and ContextAgentConn,
// so the scale-out path slots into the existing control loop unchanged.
package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// MuxHandler processes one request addressed to a target endpoint.
type MuxHandler func(target int, kind string, body []byte) (any, error)

// KindBatch is the reserved frame kind carrying a batch of requests. The
// server unpacks it itself; handlers never see it.
const KindBatch = "__batch"

// batchItem and batchReply are the gob wire shapes inside a batch frame:
// one request and one response per call, kept in item order.
type batchItem struct {
	Target int
	Kind   string
	Body   []byte
}

type batchReply struct {
	Err  string
	Body []byte
}

// MuxServer accepts connections and dispatches frames to a target-aware
// handler. Every request on a connection is served in its own goroutine;
// responses are serialized onto the connection's encoder.
type MuxServer struct {
	lis     net.Listener
	handler MuxHandler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewMuxServer wraps a listener. Call Serve to start accepting.
func NewMuxServer(lis net.Listener, handler MuxHandler) *MuxServer {
	return &MuxServer{lis: lis, handler: handler, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listener address.
func (s *MuxServer) Addr() string { return s.lis.Addr().String() }

// Serve accepts connections until the server is closed. It blocks; run it in
// a goroutine and call Close to stop.
func (s *MuxServer) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *MuxServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex // response writes interleave across request goroutines
	for {
		var req frame
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection ends the session
		}
		go func(req frame) {
			resp := frame{ID: req.ID, Target: req.Target, Kind: req.Kind}
			var body any
			var err error
			if req.Kind == KindBatch {
				body, err = s.serveBatch(req.Body)
			} else {
				body, err = s.handler(req.Target, req.Kind, req.Body)
			}
			if err != nil {
				resp.Err = err.Error()
			} else if encoded, merr := Marshal(body); merr != nil {
				resp.Err = merr.Error()
			} else {
				resp.Body = encoded
			}
			encMu.Lock()
			err = enc.Encode(&resp)
			encMu.Unlock()
			if err != nil {
				conn.Close() // the reader loop notices and ends the session
			}
		}(req)
	}
}

// serveBatch fans the items of one batch frame out to the handler
// concurrently — a gather over the targets behind this connection costs one
// slow handler, not the sum — and collects the replies in item order.
func (s *MuxServer) serveBatch(body []byte) ([]batchReply, error) {
	var items []batchItem
	if err := Unmarshal(body, &items); err != nil {
		return nil, fmt.Errorf("batch decode: %w", err)
	}
	replies := make([]batchReply, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(i int) {
			defer wg.Done()
			out, err := s.handler(items[i].Target, items[i].Kind, items[i].Body)
			if err != nil {
				replies[i].Err = err.Error()
				return
			}
			encoded, merr := Marshal(out)
			if merr != nil {
				replies[i].Err = merr.Error()
				return
			}
			replies[i].Body = encoded
		}(i)
	}
	wg.Wait()
	return replies, nil
}

// Close stops accepting and closes open connections. Like net/http's Close,
// it does not wait for in-flight handlers: a wedged handler must not wedge
// shutdown, and its eventual response write fails harmlessly on the closed
// connection. It does wait for the per-connection reader goroutines.
func (s *MuxServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.lis.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// MuxClient is a pipelining RPC client: calls from any number of goroutines
// share one connection, with responses routed back by frame ID. Per-call
// timeouts are enforced with timers rather than connection deadlines, because
// a deadline would abort every in-flight call, not the late one.
type MuxClient struct {
	conn    net.Conn
	timeout time.Duration

	encMu sync.Mutex // gob encoders are not concurrent-safe
	enc   *gob.Encoder

	mu      sync.Mutex
	pending map[uint64]chan frame
	nextID  uint64
	closed  bool
	readErr error
	done    chan struct{} // closed when the read loop exits
}

// DialMux connects a pipelining client to a MuxServer. timeout bounds the
// dial and each call; zero means 10 seconds.
func DialMux(addr string, timeout time.Duration) (*MuxClient, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	m := &MuxClient{
		conn:    conn,
		timeout: timeout,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan frame),
		done:    make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

// readLoop routes response frames to their waiting callers until the
// connection dies, then fails every pending call.
func (m *MuxClient) readLoop() {
	dec := gob.NewDecoder(m.conn)
	for {
		var resp frame
		if err := dec.Decode(&resp); err != nil {
			m.mu.Lock()
			if m.readErr == nil {
				m.readErr = fmt.Errorf("mux read: %w", err)
			}
			m.mu.Unlock()
			close(m.done)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[resp.ID]
		if ok {
			delete(m.pending, resp.ID)
		}
		m.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks the read loop
		}
	}
}

// CallTarget sends a request addressed to target and decodes the response
// into respBody (nil discards it). It honors ctx and the client timeout;
// an abandoned call's late response is dropped by the read loop.
func (m *MuxClient) CallTarget(ctx context.Context, target int, kind string, reqBody, respBody any) error {
	body, err := Marshal(reqBody)
	if err != nil {
		return err
	}
	resp, err := m.roundTrip(ctx, target, kind, body)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return &RemoteError{Kind: kind, Message: resp.Err}
	}
	if respBody == nil {
		return nil
	}
	return Unmarshal(resp.Body, respBody)
}

// roundTrip sends one pre-marshalled frame and waits for its response. All
// client calls — single and batched — funnel through here, so the poisoning,
// timeout, and abandonment rules are identical across both surfaces.
func (m *MuxClient) roundTrip(ctx context.Context, target int, kind string, body []byte) (frame, error) {
	ch := make(chan frame, 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return frame{}, ErrClosed
	}
	if m.readErr != nil {
		err := m.readErr
		m.mu.Unlock()
		return frame{}, err
	}
	m.nextID++
	id := m.nextID
	m.pending[id] = ch
	m.mu.Unlock()

	req := frame{ID: id, Target: target, Kind: kind, Body: body}
	m.encMu.Lock()
	// Bound the write alone: a per-connection read deadline would abort
	// every pipelined call in flight, not just a stalled one.
	m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
	err := m.enc.Encode(&req)
	m.encMu.Unlock()
	if err != nil {
		// The gob stream is shared and stateful: a partial write leaves it
		// corrupt for every later call on this client, so poison the whole
		// client rather than letting the next call emit garbage frames.
		m.poison(fmt.Errorf("%w: send %s to target %d: %v", ErrClientPoisoned, kind, target, err))
		m.abandon(id)
		return frame{}, fmt.Errorf("send %s to target %d: %w", kind, target, err)
	}

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctxDone:
		m.abandon(id)
		return frame{}, ctx.Err()
	case <-timer.C:
		m.abandon(id)
		return frame{}, fmt.Errorf("target %d %s: %w", target, kind, ErrCallTimeout)
	case <-m.done:
		m.abandon(id)
		// The read loop may have delivered the response before dying.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		m.mu.Lock()
		err := m.readErr
		m.mu.Unlock()
		return frame{}, err
	}
}

// poison marks the client's stream as unusable and closes the connection so
// the read loop exits and fails every pending and future call. The first
// error recorded wins; later failures keep it.
func (m *MuxClient) poison(err error) {
	m.mu.Lock()
	if m.readErr == nil {
		m.readErr = err
	}
	m.mu.Unlock()
	m.conn.Close()
}

// BatchCall is one request in a MuxClient.CallBatch: the target endpoint and
// kind, the request to marshal, an optional response destination, and the
// per-call result. Transport-level failures fail the whole batch; per-call
// handler errors land in Err.
type BatchCall struct {
	Target int
	Kind   string
	Req    any
	Resp   any
	Err    error
}

// CallBatch sends every call in one frame and decodes the replies in order.
// The server fans the items out to its handler concurrently, so a batch over
// N targets costs one round trip plus the slowest handler, not N round trips
// or N frame encodes. A nil return means the batch itself was delivered and
// answered; inspect each call's Err for per-target outcomes.
func (m *MuxClient) CallBatch(ctx context.Context, calls []BatchCall) error {
	if len(calls) == 0 {
		return nil
	}
	items := make([]batchItem, len(calls))
	for i := range calls {
		body, err := Marshal(calls[i].Req)
		if err != nil {
			return fmt.Errorf("batch call %d (%s): %w", i, calls[i].Kind, err)
		}
		items[i] = batchItem{Target: calls[i].Target, Kind: calls[i].Kind, Body: body}
	}
	body, err := Marshal(items)
	if err != nil {
		return err
	}
	resp, err := m.roundTrip(ctx, -1, KindBatch, body)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return &RemoteError{Kind: KindBatch, Message: resp.Err}
	}
	var replies []batchReply
	if err := Unmarshal(resp.Body, &replies); err != nil {
		return err
	}
	if len(replies) != len(calls) {
		return fmt.Errorf("batch: %d replies for %d calls", len(replies), len(calls))
	}
	for i := range calls {
		if replies[i].Err != "" {
			calls[i].Err = &RemoteError{Kind: calls[i].Kind, Message: replies[i].Err}
			continue
		}
		if calls[i].Resp == nil {
			calls[i].Err = nil
			continue
		}
		calls[i].Err = Unmarshal(replies[i].Body, calls[i].Resp)
	}
	return nil
}

// ErrCallTimeout marks a pipelined call that outlived the client timeout.
var ErrCallTimeout = fmt.Errorf("transport: call timed out")

// ErrClientPoisoned marks a MuxClient whose shared gob stream may be corrupt
// after a failed request write. The client closes itself; every later call
// fails fast with an error wrapping this one instead of emitting garbage.
var ErrClientPoisoned = fmt.Errorf("transport: mux client poisoned by failed write")

// abandon forgets a pending call so its late response is dropped.
func (m *MuxClient) abandon(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// Close shuts down the connection; pending calls fail promptly.
func (m *MuxClient) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.conn.Close()
	<-m.done // read loop exit fails the stragglers
	return err
}

// MuxConn binds a MuxClient to one target, satisfying the controller's
// per-agent connection surfaces (Call and CallContext).
type MuxConn struct {
	client *MuxClient
	target int
}

// Agent returns the per-target connection for one multiplexed endpoint.
func (m *MuxClient) Agent(target int) *MuxConn {
	return &MuxConn{client: m, target: target}
}

// Client returns the multiplexed client carrying this connection, so callers
// holding many MuxConns can group them by wire and batch their calls.
func (c *MuxConn) Client() *MuxClient { return c.client }

// Target returns the endpoint index this connection is bound to.
func (c *MuxConn) Target() int { return c.target }

// Call implements the synchronous connection surface.
func (c *MuxConn) Call(kind string, reqBody, respBody any) error {
	return c.client.CallTarget(context.Background(), c.target, kind, reqBody, respBody)
}

// CallContext is Call honoring a context.
func (c *MuxConn) CallContext(ctx context.Context, kind string, reqBody, respBody any) error {
	return c.client.CallTarget(ctx, c.target, kind, reqBody, respBody)
}
