package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startMux spins up a MuxServer on loopback TCP with the given handler and
// returns it with a connected client; both are torn down with the test.
func startMux(t *testing.T, h MuxHandler) (*MuxServer, *MuxClient) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMuxServer(lis, h)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	cli, err := DialMux(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// echoMux answers pings with the target folded into the nonce so tests can
// verify routing.
func echoMux(target int, kind string, body []byte) (any, error) {
	var p Ping
	if err := Unmarshal(body, &p); err != nil {
		return nil, err
	}
	p.Nonce += uint64(target) * 1000
	return p, nil
}

func TestMuxRoutesByTarget(t *testing.T) {
	_, cli := startMux(t, echoMux)
	for target := 0; target < 5; target++ {
		var pong Ping
		if err := cli.Agent(target).Call(KindPing, Ping{Nonce: 7}, &pong); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if want := uint64(7 + target*1000); pong.Nonce != want {
			t.Errorf("target %d answered nonce %d, want %d", target, pong.Nonce, want)
		}
	}
}

// TestMuxPipelinesConcurrentCalls proves a slow target does not serialize the
// rest: N calls that each stall 30ms must complete together, far under N*30ms.
func TestMuxPipelinesConcurrentCalls(t *testing.T) {
	const n = 16
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return echoMux(target, kind, body)
	})
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			errs[i] = cli.Agent(i).Call(KindPing, Ping{Nonce: uint64(i)}, &pong)
			if errs[i] == nil && pong.Nonce != uint64(i+i*1000) {
				errs[i] = fmt.Errorf("target %d got nonce %d", i, pong.Nonce)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	// Sequential round-trips would take n*30ms = 480ms; pipelined they share
	// the stall. The bound is loose to survive CI scheduling noise.
	if elapsed > 300*time.Millisecond {
		t.Errorf("%d pipelined 30ms calls took %v; transport is serializing", n, elapsed)
	}
}

func TestMuxRemoteErrorAndConcurrentMix(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		if target%2 == 1 {
			return nil, fmt.Errorf("target %d is down", target)
		}
		return echoMux(target, kind, body)
	})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			err := cli.Agent(i).Call(KindPing, Ping{Nonce: 1}, &pong)
			if i%2 == 1 {
				var re *RemoteError
				if !errors.As(err, &re) {
					t.Errorf("target %d: err = %v, want RemoteError", i, err)
				}
			} else if err != nil {
				t.Errorf("target %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestMuxCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, _ := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	cli, err := DialMux(srv.Addr(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Agent(0).Call(KindPing, Ping{}, nil); !errors.Is(err, ErrCallTimeout) {
		t.Errorf("err = %v, want ErrCallTimeout", err)
	}
}

func TestMuxContextCancelAbortsCall(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := cli.Agent(0).CallContext(ctx, KindPing, Ping{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not abort the call promptly")
	}
}

func TestMuxServerCloseFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	errCh := make(chan error, 1)
	go func() { errCh <- cli.Agent(0).Call(KindPing, Ping{}, nil) }()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("call against a closed server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not fail after server close")
	}
}

func TestMuxClosedClient(t *testing.T) {
	_, cli := startMux(t, echoMux)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Agent(0).Call(KindPing, Ping{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestMuxControlLoopShapes runs the real message kinds (state, allocate)
// through the mux wire to prove the framing round-trips typed bodies exactly
// as the point-to-point client does.
func TestMuxControlLoopShapes(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		switch kind {
		case KindState:
			var req StateRequest
			if err := Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return StateReport{
				Slot: req.Slot, DataCenter: target,
				Price: 0.5, Avail: []float64{3}, QueueLens: []float64{1, 2},
			}, nil
		case KindAllocate:
			var req Allocate
			if err := Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return AllocateAck{Slot: req.Slot, Processed: make([]float64, len(req.Process)), DelaySum: make([]float64, len(req.Process))}, nil
		}
		return nil, fmt.Errorf("unknown kind %q", kind)
	})
	var rep StateReport
	if err := cli.Agent(3).Call(KindState, StateRequest{Slot: 9}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DataCenter != 3 || rep.Slot != 9 {
		t.Errorf("report = %+v", rep)
	}
	if err := rep.Validate(3, 9, 1, 2); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}
	var ack AllocateAck
	if err := cli.Agent(3).Call(KindAllocate, Allocate{Slot: 9, Route: []int{0, 1}, Process: []float64{0, 1}, Busy: []float64{1}}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Slot != 9 {
		t.Errorf("ack slot = %d", ack.Slot)
	}
}

// TestMuxShutdownLeaksNoGoroutines pins the lifecycle: a served fleet of
// calls followed by client and server shutdown must return the process to
// its pre-test goroutine count.
func TestMuxShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMuxServer(lis, echoMux)
	go srv.Serve()
	cli, err := DialMux(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			if err := cli.Agent(i).Call(KindPing, Ping{Nonce: 1}, &pong); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	cli.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before, %d after shutdown", before, got)
	}
}

// TestMuxEncodeFailurePoisonsClient pins the poisoning contract: a write that
// dies mid-encode leaves the shared gob stream in an unknown state, so the
// client must refuse all later calls with a typed error rather than emitting
// garbage frames or hanging. The failed write is forced by pointing the
// client at a peer that accepts but never reads, then pushing a payload far
// larger than the kernel socket buffers under a short write deadline.
func TestMuxEncodeFailurePoisonsClient(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		<-done // hold the connection open without ever reading
		conn.Close()
	}()
	cli, err := DialMux(lis.Addr().String(), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	payload := make([]byte, 32<<20)
	err = cli.CallTarget(context.Background(), 0, KindPing, payload, nil)
	if err == nil {
		t.Fatal("32MB write to a never-reading peer succeeded; wanted a deadline failure")
	}

	start := time.Now()
	err = cli.CallTarget(context.Background(), 0, KindPing, Ping{Nonce: 1}, nil)
	if !errors.Is(err, ErrClientPoisoned) {
		t.Fatalf("post-failure call returned %v, want ErrClientPoisoned", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("post-failure call took %v; poisoned clients must fail fast", elapsed)
	}
	var calls = []BatchCall{{Target: 0, Kind: KindPing, Req: Ping{Nonce: 2}}}
	if err := cli.CallBatch(context.Background(), calls); !errors.Is(err, ErrClientPoisoned) {
		t.Fatalf("post-failure batch returned %v, want ErrClientPoisoned", err)
	}
}

// TestMuxBatchRoundTrip exercises the batched call surface end to end:
// responses land in call order, per-call handler errors surface as that
// call's RemoteError without failing the batch, and targets are routed.
func TestMuxBatchRoundTrip(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		if target == 3 {
			return nil, fmt.Errorf("target 3 rejects")
		}
		return echoMux(target, kind, body)
	})
	calls := make([]BatchCall, 5)
	pongs := make([]Ping, 5)
	for i := range calls {
		calls[i] = BatchCall{Target: i, Kind: KindPing, Req: Ping{Nonce: 7}, Resp: &pongs[i]}
	}
	if err := cli.CallBatch(context.Background(), calls); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if i == 3 {
			var re *RemoteError
			if !errors.As(calls[i].Err, &re) {
				t.Fatalf("call 3 err = %v, want RemoteError", calls[i].Err)
			}
			continue
		}
		if calls[i].Err != nil {
			t.Fatalf("call %d: %v", i, calls[i].Err)
		}
		if want := uint64(7 + i*1000); pongs[i].Nonce != want {
			t.Errorf("call %d answered nonce %d, want %d", i, pongs[i].Nonce, want)
		}
	}
	if err := cli.CallBatch(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestMuxBatchFansOutConcurrently proves the server dispatches batch items
// in parallel: 8 handlers that each stall 30ms must answer together, far
// under the 240ms a serial walk would cost.
func TestMuxBatchFansOutConcurrently(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return echoMux(target, kind, body)
	})
	calls := make([]BatchCall, 8)
	for i := range calls {
		calls[i] = BatchCall{Target: i, Kind: KindPing, Req: Ping{Nonce: 1}}
	}
	start := time.Now()
	if err := cli.CallBatch(context.Background(), calls); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("batch of 8x30ms handlers took %v; want concurrent fan-out", elapsed)
	}
	for i, c := range calls {
		if c.Err != nil {
			t.Errorf("call %d: %v", i, c.Err)
		}
	}
}
