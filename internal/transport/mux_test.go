package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startMux spins up a MuxServer on loopback TCP with the given handler and
// returns it with a connected client; both are torn down with the test.
func startMux(t *testing.T, h MuxHandler) (*MuxServer, *MuxClient) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMuxServer(lis, h)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	cli, err := DialMux(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// echoMux answers pings with the target folded into the nonce so tests can
// verify routing.
func echoMux(target int, kind string, body []byte) (any, error) {
	var p Ping
	if err := Unmarshal(body, &p); err != nil {
		return nil, err
	}
	p.Nonce += uint64(target) * 1000
	return p, nil
}

func TestMuxRoutesByTarget(t *testing.T) {
	_, cli := startMux(t, echoMux)
	for target := 0; target < 5; target++ {
		var pong Ping
		if err := cli.Agent(target).Call(KindPing, Ping{Nonce: 7}, &pong); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if want := uint64(7 + target*1000); pong.Nonce != want {
			t.Errorf("target %d answered nonce %d, want %d", target, pong.Nonce, want)
		}
	}
}

// TestMuxPipelinesConcurrentCalls proves a slow target does not serialize the
// rest: N calls that each stall 30ms must complete together, far under N*30ms.
func TestMuxPipelinesConcurrentCalls(t *testing.T) {
	const n = 16
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return echoMux(target, kind, body)
	})
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			errs[i] = cli.Agent(i).Call(KindPing, Ping{Nonce: uint64(i)}, &pong)
			if errs[i] == nil && pong.Nonce != uint64(i+i*1000) {
				errs[i] = fmt.Errorf("target %d got nonce %d", i, pong.Nonce)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	// Sequential round-trips would take n*30ms = 480ms; pipelined they share
	// the stall. The bound is loose to survive CI scheduling noise.
	if elapsed > 300*time.Millisecond {
		t.Errorf("%d pipelined 30ms calls took %v; transport is serializing", n, elapsed)
	}
}

func TestMuxRemoteErrorAndConcurrentMix(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		if target%2 == 1 {
			return nil, fmt.Errorf("target %d is down", target)
		}
		return echoMux(target, kind, body)
	})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			err := cli.Agent(i).Call(KindPing, Ping{Nonce: 1}, &pong)
			if i%2 == 1 {
				var re *RemoteError
				if !errors.As(err, &re) {
					t.Errorf("target %d: err = %v, want RemoteError", i, err)
				}
			} else if err != nil {
				t.Errorf("target %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestMuxCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, _ := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	cli, err := DialMux(srv.Addr(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Agent(0).Call(KindPing, Ping{}, nil); !errors.Is(err, ErrCallTimeout) {
		t.Errorf("err = %v, want ErrCallTimeout", err)
	}
}

func TestMuxContextCancelAbortsCall(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := cli.Agent(0).CallContext(ctx, KindPing, Ping{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not abort the call promptly")
	}
}

func TestMuxServerCloseFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		<-block
		return Ping{}, nil
	})
	errCh := make(chan error, 1)
	go func() { errCh <- cli.Agent(0).Call(KindPing, Ping{}, nil) }()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("call against a closed server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not fail after server close")
	}
}

func TestMuxClosedClient(t *testing.T) {
	_, cli := startMux(t, echoMux)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Agent(0).Call(KindPing, Ping{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestMuxControlLoopShapes runs the real message kinds (state, allocate)
// through the mux wire to prove the framing round-trips typed bodies exactly
// as the point-to-point client does.
func TestMuxControlLoopShapes(t *testing.T) {
	_, cli := startMux(t, func(target int, kind string, body []byte) (any, error) {
		switch kind {
		case KindState:
			var req StateRequest
			if err := Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return StateReport{
				Slot: req.Slot, DataCenter: target,
				Price: 0.5, Avail: []float64{3}, QueueLens: []float64{1, 2},
			}, nil
		case KindAllocate:
			var req Allocate
			if err := Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return AllocateAck{Slot: req.Slot, Processed: make([]float64, len(req.Process)), DelaySum: make([]float64, len(req.Process))}, nil
		}
		return nil, fmt.Errorf("unknown kind %q", kind)
	})
	var rep StateReport
	if err := cli.Agent(3).Call(KindState, StateRequest{Slot: 9}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DataCenter != 3 || rep.Slot != 9 {
		t.Errorf("report = %+v", rep)
	}
	if err := rep.Validate(3, 9, 1, 2); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}
	var ack AllocateAck
	if err := cli.Agent(3).Call(KindAllocate, Allocate{Slot: 9, Route: []int{0, 1}, Process: []float64{0, 1}, Busy: []float64{1}}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Slot != 9 {
		t.Errorf("ack slot = %d", ack.Slot)
	}
}

// TestMuxShutdownLeaksNoGoroutines pins the lifecycle: a served fleet of
// calls followed by client and server shutdown must return the process to
// its pre-test goroutine count.
func TestMuxShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMuxServer(lis, echoMux)
	go srv.Serve()
	cli, err := DialMux(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pong Ping
			if err := cli.Agent(i).Call(KindPing, Ping{Nonce: 1}, &pong); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	cli.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines: %d before, %d after shutdown", before, got)
	}
}
