// Package transport implements the wire protocol between the central GreFar
// controller and the per-data-center agents: a minimal synchronous
// request/response RPC over TCP with gob encoding, plus the typed messages
// of the scheduling control loop. The paper's system model — a central
// scheduler observing per-site state x_i(t) and issuing per-site decisions —
// maps directly onto this protocol.
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"
)

// Message kinds understood by agents.
const (
	// KindState asks an agent for its slot state (availability, price,
	// local queue lengths).
	KindState = "state"
	// KindAllocate delivers the controller's slot decision to an agent.
	KindAllocate = "allocate"
	// KindPing checks liveness.
	KindPing = "ping"
	// KindRestore replaces an agent's local queue state from a controller
	// snapshot, re-syncing a rejoined agent onto the controller's view.
	KindRestore = "restore"
)

// StateRequest asks an agent to reveal its state for a slot.
type StateRequest struct {
	Slot int
}

// StateReport is an agent's view of its data center at the beginning of a
// slot: the components of x_i(t) plus its local queue backlogs q_{i,j}(t).
type StateReport struct {
	Slot int
	// DataCenter is the agent's site index i.
	DataCenter int
	// Avail[k] is n_{i,k}(t).
	Avail []float64
	// Price is phi_i(t).
	Price float64
	// QueueLens[j] is q_{i,j}(t).
	QueueLens []float64
}

// Allocate carries the controller's decision for one site and slot: the jobs
// being routed in, the jobs to process, and the servers to keep busy.
type Allocate struct {
	Slot int
	// Route[j] is r_{i,j}(t): jobs of type j being dispatched to this site.
	Route []int
	// Process[j] is h_{i,j}(t).
	Process []float64
	// Busy[k] is b_{i,k}(t).
	Busy []float64
}

// AllocateAck reports what the agent actually did.
type AllocateAck struct {
	Slot int
	// Processed[j] is the number of type-j jobs actually completed (capped
	// at queue content).
	Processed []float64
	// DelaySum[j] is the summed waiting time of the processed jobs.
	DelaySum []float64
	// Energy is e_i(t) under the agent's local price.
	Energy float64
	// Work is the processed service demand this slot.
	Work float64
}

// ErrMalformedReport classifies a StateReport that fails Validate; wrap
// checks with errors.Is. A malformed report means the agent and controller
// disagree about the cluster shape (or the payload was corrupted in flight),
// so the controller must reject it before assembling the global state rather
// than panic or silently corrupt the slot downstream.
var ErrMalformedReport = errors.New("transport: malformed state report")

// Validate checks the report against the expected site index, slot, and
// cluster dimensions (K server types at this site, J job types): lengths must
// match, and every numeric field must be finite and non-negative. Errors wrap
// ErrMalformedReport.
func (r *StateReport) Validate(site, slot, numServers, numJobTypes int) error {
	switch {
	case r.DataCenter != site:
		return fmt.Errorf("%w: reported site %d, want %d", ErrMalformedReport, r.DataCenter, site)
	case r.Slot != slot:
		return fmt.Errorf("%w: site %d reported slot %d, want %d", ErrMalformedReport, site, r.Slot, slot)
	case len(r.Avail) != numServers:
		return fmt.Errorf("%w: site %d reported %d availability entries, want %d", ErrMalformedReport, site, len(r.Avail), numServers)
	case len(r.QueueLens) != numJobTypes:
		return fmt.Errorf("%w: site %d reported %d queue lengths, want %d", ErrMalformedReport, site, len(r.QueueLens), numJobTypes)
	}
	if !isFiniteNonNeg(r.Price) {
		return fmt.Errorf("%w: site %d reported price %v", ErrMalformedReport, site, r.Price)
	}
	for k, v := range r.Avail {
		if !isFiniteNonNeg(v) {
			return fmt.Errorf("%w: site %d reported avail[%d]=%v", ErrMalformedReport, site, k, v)
		}
	}
	for j, v := range r.QueueLens {
		if !isFiniteNonNeg(v) {
			return fmt.Errorf("%w: site %d reported queue[%d]=%v", ErrMalformedReport, site, j, v)
		}
	}
	return nil
}

// isFiniteNonNeg reports whether v is a finite, non-negative float (NaN and
// infinities fail).
func isFiniteNonNeg(v float64) bool {
	return v >= 0 && v <= math.MaxFloat64
}

// RestoreRequest carries a queue.SnapshotLedgers payload for the agent's
// local queues; the controller sends it to re-sync a rejoining agent onto the
// authoritative (shadow) queue state it tracked through the outage.
type RestoreRequest struct {
	Slot     int
	Snapshot []byte
}

// RestoreAck confirms a restore and echoes the post-restore queue lengths so
// the controller can verify the agent landed exactly on the intended state.
type RestoreAck struct {
	Slot      int
	QueueLens []float64
}

// Ping is a liveness probe; agents echo it. Slot tags the probe with the
// control-loop slot that issued it (zero for plain liveness checks), letting
// slot-aware transport middleware — the chaos injector's partition windows —
// decide the probe's fate deterministically.
type Ping struct {
	Nonce uint64
	Slot  int
}

// frame is the wire envelope. Bodies are gob-encoded separately so the
// dispatcher can route on Kind without knowing every body type. Target
// addresses one of many endpoints multiplexed behind a shared listener
// (MuxServer); the plain Server ignores it, and gob skips absent fields, so
// mux-aware and historical peers interoperate on the same wire format.
type frame struct {
	ID     uint64
	Target int
	Kind   string
	Err    string
	Body   []byte
}

// Marshal gob-encodes a message body.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes a message body.
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("decode %T: %w", v, err)
	}
	return nil
}

// Handler processes one request body and returns a response body.
type Handler func(kind string, body []byte) (any, error)

// Server accepts connections and dispatches frames to a handler.
type Server struct {
	lis     net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a listener. Call Serve to start accepting.
func NewServer(lis net.Listener, handler Handler) *Server {
	return &Server{lis: lis, handler: handler, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Serve accepts connections until the server is closed. It blocks; run it in
// a goroutine and call Close to stop.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req frame
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection ends the session
		}
		resp := frame{ID: req.ID, Kind: req.Kind}
		body, err := s.handler(req.Kind, req.Body)
		if err != nil {
			resp.Err = err.Error()
		} else if encoded, merr := Marshal(body); merr != nil {
			resp.Err = merr.Error()
		} else {
			resp.Body = encoded
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections, and waits for in-flight
// requests to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.lis.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: client closed")

// Client is a synchronous RPC client. Calls are serialized over a single
// connection; the control loop issues one request per agent per phase, so no
// pipelining is needed.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	nextID  uint64
	timeout time.Duration
	closed  bool
}

// Dial connects to a server. timeout bounds both the dial and each call;
// zero means 10 seconds.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: timeout,
	}, nil
}

// Call sends a request and decodes the response into respBody (which may be
// nil to discard).
func (c *Client) Call(kind string, reqBody, respBody any) error {
	body, err := Marshal(reqBody)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	req := frame{ID: c.nextID, Kind: kind, Body: body}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if err := c.enc.Encode(&req); err != nil {
		return fmt.Errorf("send %s: %w", kind, err)
	}
	var resp frame
	if err := c.dec.Decode(&resp); err != nil {
		return fmt.Errorf("receive %s: %w", kind, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("response id %d does not match request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return &RemoteError{Kind: kind, Message: resp.Err}
	}
	if respBody == nil {
		return nil
	}
	return Unmarshal(resp.Body, respBody)
}

// Close shuts down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Loopback is an in-process connection that routes calls straight to a
// Handler through the same Marshal/Unmarshal round-trip the TCP path uses, so
// tests and experiments exercise the real wire encoding without sockets. It
// is safe for concurrent calls when the handler is.
type Loopback struct {
	handler Handler
}

// NewLoopback wraps a handler (typically agent.Agent.Handle) as a connection.
func NewLoopback(h Handler) *Loopback { return &Loopback{handler: h} }

// Call encodes the request, dispatches it to the handler, and decodes the
// response, mirroring Client.Call's semantics: handler errors come back as
// *RemoteError, exactly as they would over TCP.
func (l *Loopback) Call(kind string, reqBody, respBody any) error {
	body, err := Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := l.handler(kind, body)
	if err != nil {
		return &RemoteError{Kind: kind, Message: err.Error()}
	}
	if respBody == nil {
		return nil
	}
	data, err := Marshal(out)
	if err != nil {
		return err
	}
	return Unmarshal(data, respBody)
}

// RemoteError is an error returned by the remote handler, preserving the
// request kind for context.
type RemoteError struct {
	Kind    string
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s: %s", e.Kind, e.Message)
}
