package tariff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinear(t *testing.T) {
	var l Linear
	if got := l.Cost(0.5, 10); got != 5 {
		t.Errorf("Cost = %v, want 5", got)
	}
	if got := l.Marginal(0.5, 99); got != 0.5 {
		t.Errorf("Marginal = %v, want 0.5", got)
	}
	if l.CostCurvature(0.5) != 0 {
		t.Error("linear curvature should be 0")
	}
	if l.Name() == "" {
		t.Error("empty name")
	}
}

func TestQuadratic(t *testing.T) {
	if _, err := NewQuadratic(0); err == nil {
		t.Error("zero scale accepted")
	}
	q, err := NewQuadratic(100)
	if err != nil {
		t.Fatal(err)
	}
	// At E = Scale, marginal price has doubled.
	if got := q.Marginal(0.5, 100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Marginal at scale = %v, want 1.0", got)
	}
	// Cost(E) = phi*E*(1+E/(2S)): at E=100, 0.5*100*1.5 = 75.
	if got := q.Cost(0.5, 100); math.Abs(got-75) > 1e-12 {
		t.Errorf("Cost = %v, want 75", got)
	}
	if got := q.CostCurvature(0.5); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("CostCurvature = %v, want 0.005", got)
	}
	if q.Name() == "" {
		t.Error("empty name")
	}
}

func TestQuadraticDerivativeConsistency(t *testing.T) {
	q, _ := NewQuadratic(42)
	f := func(e16 uint16) bool {
		e := float64(e16) / 100
		const phi, eps = 0.7, 1e-5
		fd := (q.Cost(phi, e+eps) - q.Cost(phi, e-eps)) / (2 * eps)
		return math.Abs(fd-q.Marginal(phi, e)) < 1e-6*(1+fd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTieredValidation(t *testing.T) {
	if _, err := NewTiered([]float64{10}, []float64{1}); err == nil {
		t.Error("wrong multiplier count accepted")
	}
	if _, err := NewTiered([]float64{10, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("non-increasing limits accepted")
	}
	if _, err := NewTiered([]float64{10}, []float64{2, 1}); err == nil {
		t.Error("decreasing multipliers (non-convex) accepted")
	}
	if _, err := NewTiered(nil, []float64{-1}); err == nil {
		t.Error("negative multiplier accepted")
	}
}

func TestTieredCostAndMarginal(t *testing.T) {
	// Blocks: [0,10) at 1x, [10,30) at 2x, beyond at 4x.
	tr, err := NewTiered([]float64{10, 30}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	const phi = 0.5
	cases := []struct{ e, cost, marginal float64 }{
		{0, 0, 0.5},
		{5, 2.5, 0.5},
		{10, 5, 1.0},
		{20, 15, 1.0},
		{30, 25, 2.0},
		{40, 45, 2.0},
	}
	for _, tc := range cases {
		if got := tr.Cost(phi, tc.e); math.Abs(got-tc.cost) > 1e-12 {
			t.Errorf("Cost(%v) = %v, want %v", tc.e, got, tc.cost)
		}
		if got := tr.Marginal(phi, tc.e); math.Abs(got-tc.marginal) > 1e-12 {
			t.Errorf("Marginal(%v) = %v, want %v", tc.e, got, tc.marginal)
		}
	}
	if tr.Name() == "" {
		t.Error("empty name")
	}
}

// TestTariffsAreConvex property: for every tariff, cost is increasing and
// marginal is non-decreasing in energy.
func TestTariffsAreConvex(t *testing.T) {
	quad, _ := NewQuadratic(50)
	tiered, _ := NewTiered([]float64{5, 20}, []float64{1, 1.5, 3})
	for _, tr := range []Tariff{Linear{}, quad, tiered} {
		f := func(a, b uint16) bool {
			e1, e2 := float64(a)/100, float64(b)/100
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			const phi = 0.4
			if tr.Cost(phi, e2) < tr.Cost(phi, e1)-1e-12 {
				return false
			}
			return tr.Marginal(phi, e2) >= tr.Marginal(phi, e1)-1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}
