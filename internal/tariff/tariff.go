// Package tariff models how a data center's power draw maps to money. The
// paper's baseline treats the electricity price as constant within a slot
// (cost = phi * energy), but section III-A2 explicitly allows "an increasing
// and convex (or other) function of the energy consumption", with the energy
// consumed by other (interactive) workloads entering the data center state.
// This package provides that generalization: a Tariff turns a slot's total
// energy draw — batch plus base load — into cost, and exposes the marginal
// price the optimizer needs.
package tariff

import "fmt"

// Tariff maps a data center's total energy use in one slot to its cost.
// Implementations must be increasing and convex in the energy argument so
// the slot problem stays convex.
type Tariff interface {
	// Cost returns the money charged when the site draws energy units in
	// one slot at posted price phi.
	Cost(phi, energy float64) float64
	// Marginal returns d Cost / d energy at the given draw — the price the
	// next unit of energy actually costs. For convex tariffs this is
	// non-decreasing in energy.
	Marginal(phi, energy float64) float64
	// Name identifies the tariff in reports.
	Name() string
}

// SecondDerivative is implemented by tariffs whose cost has a constant,
// finite second derivative in energy, enabling exact line search in the
// slot optimizer. Piecewise-linear tariffs (Tiered) deliberately do not
// implement it.
type SecondDerivative interface {
	// CostCurvature returns d^2 Cost / d energy^2 at posted price phi.
	CostCurvature(phi float64) float64
}

// Linear is the paper's baseline: cost = phi * energy.
type Linear struct{}

var _ Tariff = Linear{}

// Cost implements Tariff.
func (Linear) Cost(phi, energy float64) float64 { return phi * energy }

// Marginal implements Tariff.
func (Linear) Marginal(phi, _ float64) float64 { return phi }

// Name implements Tariff.
func (Linear) Name() string { return "linear" }

// CostCurvature implements SecondDerivative: a linear tariff has none.
func (Linear) CostCurvature(float64) float64 { return 0 }

var _ SecondDerivative = Linear{}

// Quadratic adds a convex surcharge: cost = phi*E + Surcharge*phi*E^2/Scale.
// It models demand charges and peak pricing: the more a site draws in one
// slot, the more each additional unit costs. Scale sets the draw at which
// the marginal price has doubled.
type Quadratic struct {
	// Scale is the energy draw at which the marginal price is 2*phi. Must
	// be positive.
	Scale float64
}

var _ Tariff = Quadratic{}

// NewQuadratic validates and builds the tariff.
func NewQuadratic(scale float64) (Quadratic, error) {
	if scale <= 0 {
		return Quadratic{}, fmt.Errorf("scale %v is not positive", scale)
	}
	return Quadratic{Scale: scale}, nil
}

// Cost implements Tariff: phi*E*(1 + E/(2*Scale)).
func (q Quadratic) Cost(phi, energy float64) float64 {
	return phi * energy * (1 + energy/(2*q.Scale))
}

// Marginal implements Tariff: phi*(1 + E/Scale).
func (q Quadratic) Marginal(phi, energy float64) float64 {
	return phi * (1 + energy/q.Scale)
}

// Name implements Tariff.
func (q Quadratic) Name() string { return fmt.Sprintf("quadratic(scale=%g)", q.Scale) }

// CostCurvature implements SecondDerivative: phi/Scale, constant in energy.
func (q Quadratic) CostCurvature(phi float64) float64 { return phi / q.Scale }

var _ SecondDerivative = Quadratic{}

// Tiered charges each block of energy at an increasing multiple of the
// posted price — a piecewise-linear convex tariff like real block rates.
type Tiered struct {
	// Limits are the upper boundaries of each block except the last, which
	// is unbounded; must be strictly increasing.
	Limits []float64
	// Multipliers scale phi within each block; len = len(Limits)+1 and must
	// be non-decreasing for convexity.
	Multipliers []float64
}

var _ Tariff = (*Tiered)(nil)

// NewTiered validates and builds a block-rate tariff.
func NewTiered(limits, multipliers []float64) (*Tiered, error) {
	if len(multipliers) != len(limits)+1 {
		return nil, fmt.Errorf("need %d multipliers for %d limits, got %d", len(limits)+1, len(limits), len(multipliers))
	}
	prev := 0.0
	for b, l := range limits {
		if l <= prev {
			return nil, fmt.Errorf("block limit %d (%v) is not increasing", b, l)
		}
		prev = l
	}
	prevM := 0.0
	for b, m := range multipliers {
		if m < prevM {
			return nil, fmt.Errorf("multiplier %d (%v) decreases; tariff would be non-convex", b, m)
		}
		if m < 0 {
			return nil, fmt.Errorf("multiplier %d (%v) is negative", b, m)
		}
		prevM = m
	}
	return &Tiered{
		Limits:      append([]float64(nil), limits...),
		Multipliers: append([]float64(nil), multipliers...),
	}, nil
}

// Cost implements Tariff.
func (t *Tiered) Cost(phi, energy float64) float64 {
	var cost, prev float64
	for b, limit := range t.Limits {
		if energy <= prev {
			break
		}
		upper := limit
		if energy < upper {
			upper = energy
		}
		cost += phi * t.Multipliers[b] * (upper - prev)
		prev = limit
	}
	if energy > prev {
		cost += phi * t.Multipliers[len(t.Multipliers)-1] * (energy - prev)
	}
	return cost
}

// Marginal implements Tariff.
func (t *Tiered) Marginal(phi, energy float64) float64 {
	for b, limit := range t.Limits {
		if energy < limit {
			return phi * t.Multipliers[b]
		}
	}
	return phi * t.Multipliers[len(t.Multipliers)-1]
}

// Name implements Tariff.
func (t *Tiered) Name() string { return fmt.Sprintf("tiered(%d blocks)", len(t.Multipliers)) }
