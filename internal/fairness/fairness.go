// Package fairness implements the fairness functions used to score resource
// allocation across accounts. The paper's function (eq. 3) is the negative
// squared deviation of realized shares from target weights:
//
//	f(t) = - sum_m ( r_m(t)/R(t) - gamma_m )^2
//
// where r_m(t) is the resource allocated to account m, R(t) the total
// available resource, and gamma_m the account's target share. The maximum
// (ideal) score is 0. An alpha-fair alternative is provided as the extension
// the paper's footnote 5 invites ("our analysis also applies if other
// fairness functions are considered").
package fairness

import (
	"fmt"
	"math"
)

// Function scores an allocation. alloc[m] is the resource given to account m
// this slot (r_m(t)); total is the available resource R(t). Higher is fairer.
type Function interface {
	// Score returns the fairness value f(t).
	Score(alloc []float64, total float64) float64
	// Name identifies the function in reports.
	Name() string
}

// Quadratic is the paper's fairness function (eq. 3).
type Quadratic struct {
	// Weights are the target shares gamma_m >= 0.
	Weights []float64
}

var _ Function = (*Quadratic)(nil)

// NewQuadratic builds the paper's fairness function for the given target
// shares. Weights must be non-negative.
func NewQuadratic(weights []float64) (*Quadratic, error) {
	for m, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("weight %d is negative: %v", m, w)
		}
	}
	return &Quadratic{Weights: append([]float64(nil), weights...)}, nil
}

// Score returns -sum_m (alloc_m/total - gamma_m)^2. When total is zero the
// score is the (constant) value at zero allocation, -sum gamma^2.
func (q *Quadratic) Score(alloc []float64, total float64) float64 {
	var s float64
	for m, w := range q.Weights {
		share := 0.0
		if total > 0 && m < len(alloc) {
			share = alloc[m] / total
		}
		d := share - w
		s -= d * d
	}
	return s
}

// Name implements Function.
func (q *Quadratic) Name() string { return "quadratic-deviation" }

// Deviations returns the per-account share deviations share_m - gamma_m,
// useful for diagnostics and reports.
func (q *Quadratic) Deviations(alloc []float64, total float64) []float64 {
	out := make([]float64, len(q.Weights))
	for m, w := range q.Weights {
		share := 0.0
		if total > 0 && m < len(alloc) {
			share = alloc[m] / total
		}
		out[m] = share - w
	}
	return out
}

// AlphaFair is the alpha-fair utility family of Mo and Walrand, aggregated
// over accounts with the target weights: for alpha != 1 the per-account
// utility of share x is w_m * x^(1-alpha)/(1-alpha); for alpha = 1 it is
// w_m * log(x). alpha = 0 is utilitarian, alpha -> infinity approaches
// max-min fairness. Shares are floored at Epsilon to keep the score finite.
type AlphaFair struct {
	// Alpha selects the fairness curve (>= 0).
	Alpha float64
	// Weights are per-account multipliers.
	Weights []float64
	// Epsilon floors shares (default 1e-6 when zero).
	Epsilon float64
}

var _ Function = (*AlphaFair)(nil)

// NewAlphaFair builds an alpha-fair function.
func NewAlphaFair(alpha float64, weights []float64) (*AlphaFair, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("alpha %v is negative", alpha)
	}
	for m, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("weight %d is negative: %v", m, w)
		}
	}
	return &AlphaFair{Alpha: alpha, Weights: append([]float64(nil), weights...)}, nil
}

// Score implements Function.
func (a *AlphaFair) Score(alloc []float64, total float64) float64 {
	eps := a.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	var s float64
	for m, w := range a.Weights {
		share := eps
		if total > 0 && m < len(alloc) && alloc[m]/total > eps {
			share = alloc[m] / total
		}
		switch {
		case a.Alpha == 1:
			s += w * math.Log(share)
		default:
			s += w * math.Pow(share, 1-a.Alpha) / (1 - a.Alpha)
		}
	}
	return s
}

// Name implements Function.
func (a *AlphaFair) Name() string { return fmt.Sprintf("alpha-fair(%g)", a.Alpha) }
