package fairness

import (
	"math"
	"testing"
)

func TestQuadraticPenaltyMatchesScore(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.4, 0.6})
	alloc := []float64{30, 20}
	if got, want := q.Penalty(alloc, 100), -q.Score(alloc, 100); math.Abs(got-want) > 1e-15 {
		t.Errorf("Penalty = %v, want %v", got, want)
	}
}

func TestQuadraticPenaltyGradFiniteDifference(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.4, 0.3, 0.3})
	alloc := []float64{10, 40, 25}
	const total, eps = 120.0, 1e-6
	grad := make([]float64, 3)
	q.PenaltyGrad(alloc, total, grad)
	for m := range alloc {
		up := append([]float64(nil), alloc...)
		dn := append([]float64(nil), alloc...)
		up[m] += eps
		dn[m] -= eps
		fd := (q.Penalty(up, total) - q.Penalty(dn, total)) / (2 * eps)
		if math.Abs(fd-grad[m]) > 1e-6 {
			t.Errorf("grad[%d] = %v, finite difference %v", m, grad[m], fd)
		}
	}
	// Zero total resource: gradient must be zero, not NaN.
	q.PenaltyGrad(alloc, 0, grad)
	for m, g := range grad {
		if g != 0 {
			t.Errorf("grad[%d] = %v with zero resource", m, g)
		}
	}
}

func TestQuadraticPenaltyCurvature(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.5, 0.5})
	// Along dir in allocation space: 2*sum (dir_m/R)^2.
	got := q.PenaltyCurvatureAlong([]float64{10, -5}, 100)
	want := 2 * (0.01 + 0.0025)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("curvature = %v, want %v", got, want)
	}
	if q.PenaltyCurvatureAlong([]float64{1, 1}, 0) != 0 {
		t.Error("curvature with zero resource should be 0")
	}
}

func TestAlphaFairPenaltyGradFiniteDifference(t *testing.T) {
	a, _ := NewAlphaFair(2, []float64{1, 0.5})
	alloc := []float64{30, 15}
	const total, eps = 100.0, 1e-6
	grad := make([]float64, 2)
	a.PenaltyGrad(alloc, total, grad)
	for m := range alloc {
		up := append([]float64(nil), alloc...)
		dn := append([]float64(nil), alloc...)
		up[m] += eps
		dn[m] -= eps
		fd := (a.Penalty(up, total) - a.Penalty(dn, total)) / (2 * eps)
		if math.Abs(fd-grad[m]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, finite difference %v", m, grad[m], fd)
		}
	}
}

func TestAlphaFairPenaltyGradBoundedAtZero(t *testing.T) {
	a, _ := NewAlphaFair(1, []float64{1})
	grad := make([]float64, 1)
	a.PenaltyGrad([]float64{0}, 100, grad)
	if math.IsInf(grad[0], 0) || math.IsNaN(grad[0]) {
		t.Errorf("grad at zero allocation = %v, want finite", grad[0])
	}
	if grad[0] >= 0 {
		t.Errorf("grad at zero allocation = %v, want negative (pull toward allocating)", grad[0])
	}
	a.PenaltyGrad([]float64{0}, 0, grad)
	if grad[0] != 0 {
		t.Error("grad with zero resource should be 0")
	}
}
