package fairness

import "math"

// The Penalty* methods expose each fairness function as a convex penalty
// P(alloc) = -f(alloc, total) with first-order (and, where available,
// second-order directional) information, which is what the GreFar slot
// optimizer needs to include fairness in its convex program. The paper's
// footnote 5 notes the analysis applies to other fairness functions; these
// adapters are what makes the scheduler actually pluggable.

// Penalty returns -Score for the quadratic function: sum_m (a_m/R - g_m)^2.
func (q *Quadratic) Penalty(alloc []float64, total float64) float64 {
	return -q.Score(alloc, total)
}

// PenaltyGrad writes dP/d(alloc_m) = 2*(a_m/R - g_m)/R into grad.
func (q *Quadratic) PenaltyGrad(alloc []float64, total float64, grad []float64) {
	for m := range q.Weights {
		grad[m] = 0
	}
	if total <= 0 {
		return
	}
	for m, w := range q.Weights {
		share := 0.0
		if m < len(alloc) {
			share = alloc[m] / total
		}
		grad[m] = 2 * (share - w) / total
	}
}

// PenaltyCurvatureAlong returns dir' H dir = sum_m 2*(dir_m/R)^2, which is
// constant in the allocation: the quadratic term admits exact line search.
func (q *Quadratic) PenaltyCurvatureAlong(dir []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	var v float64
	for m := range q.Weights {
		if m >= len(dir) {
			break
		}
		d := dir[m] / total
		v += 2 * d * d
	}
	return v
}

// Penalty returns -Score for the alpha-fair function. It is convex because
// the alpha-fair utility is concave in the shares.
func (a *AlphaFair) Penalty(alloc []float64, total float64) float64 {
	return -a.Score(alloc, total)
}

// PenaltyGrad writes the (sub)gradient of the alpha-fair penalty. Shares are
// floored at Epsilon exactly as in Score, which caps the gradient magnitude
// near zero allocations and keeps the optimizer stable.
func (a *AlphaFair) PenaltyGrad(alloc []float64, total float64, grad []float64) {
	eps := a.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	for m := range a.Weights {
		grad[m] = 0
	}
	if total <= 0 {
		return
	}
	for m, w := range a.Weights {
		// Below the floor the scored utility is locally flat; evaluating
		// the derivative at the floored share keeps a bounded one-sided
		// pull toward allocating, which is the stable smoothing choice.
		share := eps
		if m < len(alloc) && alloc[m]/total > eps {
			share = alloc[m] / total
		}
		grad[m] = -w * math.Pow(share, -a.Alpha) / total
	}
}
