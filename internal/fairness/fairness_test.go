package fairness

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuadraticIdealAllocationScoresZero(t *testing.T) {
	q, err := NewQuadratic([]float64{0.4, 0.3, 0.15, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	alloc := []float64{40, 30, 15, 15}
	if got := q.Score(alloc, 100); math.Abs(got) > 1e-12 {
		t.Errorf("Score(ideal) = %v, want 0", got)
	}
}

func TestQuadraticScoreKnownValue(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.5, 0.5})
	// Shares 1.0 and 0.0: deviations +0.5 and -0.5 -> score -0.5.
	if got := q.Score([]float64{10, 0}, 10); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("Score = %v, want -0.5", got)
	}
}

func TestQuadraticZeroAllocationPenalty(t *testing.T) {
	// The paper notes idle resources score poorly: all-zero allocation gives
	// -sum gamma^2 < 0.
	q, _ := NewQuadratic([]float64{0.4, 0.3, 0.15, 0.15})
	want := -(0.4*0.4 + 0.3*0.3 + 0.15*0.15 + 0.15*0.15)
	if got := q.Score([]float64{0, 0, 0, 0}, 100); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(zero) = %v, want %v", got, want)
	}
	// Zero total resource degenerates to the same constant.
	if got := q.Score([]float64{0, 0, 0, 0}, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(total=0) = %v, want %v", got, want)
	}
}

func TestQuadraticScoreNeverPositive(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.4, 0.3, 0.15, 0.15})
	f := func(a, b, c, d uint16) bool {
		alloc := []float64{float64(a), float64(b), float64(c), float64(d)}
		return q.Score(alloc, 1000) <= 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadraticMaximizedAtTargetShares(t *testing.T) {
	// Property: perturbing a single account away from its target share can
	// only decrease the score.
	q, _ := NewQuadratic([]float64{0.4, 0.3, 0.15, 0.15})
	ideal := []float64{40, 30, 15, 15}
	base := q.Score(ideal, 100)
	for m := range ideal {
		for _, delta := range []float64{-10, -1, 1, 10} {
			perturbed := append([]float64(nil), ideal...)
			perturbed[m] += delta
			if got := q.Score(perturbed, 100); got > base+1e-12 {
				t.Errorf("perturbing account %d by %v increased score: %v > %v", m, delta, got, base)
			}
		}
	}
}

func TestQuadraticDeviations(t *testing.T) {
	q, _ := NewQuadratic([]float64{0.6, 0.4})
	dev := q.Deviations([]float64{30, 70}, 100)
	if math.Abs(dev[0]-(-0.3)) > 1e-12 || math.Abs(dev[1]-0.3) > 1e-12 {
		t.Errorf("Deviations = %v, want [-0.3 0.3]", dev)
	}
}

func TestNewQuadraticRejectsNegativeWeights(t *testing.T) {
	if _, err := NewQuadratic([]float64{0.5, -0.1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestQuadraticName(t *testing.T) {
	q, _ := NewQuadratic(nil)
	if q.Name() == "" {
		t.Error("empty name")
	}
}

func TestAlphaFairOrdering(t *testing.T) {
	// For alpha > 0, a balanced allocation beats a skewed one of equal sum.
	a, err := NewAlphaFair(2, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	balanced := a.Score([]float64{50, 50}, 100)
	skewed := a.Score([]float64{90, 10}, 100)
	if balanced <= skewed {
		t.Errorf("balanced %v should beat skewed %v for alpha=2", balanced, skewed)
	}
}

func TestAlphaFairLogCase(t *testing.T) {
	a, _ := NewAlphaFair(1, []float64{1, 1})
	got := a.Score([]float64{50, 50}, 100)
	want := 2 * math.Log(0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", got, want)
	}
}

func TestAlphaFairZeroShareFinite(t *testing.T) {
	a, _ := NewAlphaFair(1, []float64{1, 1})
	if got := a.Score([]float64{100, 0}, 100); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Score with a zero share = %v, want finite", got)
	}
}

func TestNewAlphaFairValidation(t *testing.T) {
	if _, err := NewAlphaFair(-1, []float64{1}); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewAlphaFair(1, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	a, _ := NewAlphaFair(2, []float64{1})
	if a.Name() == "" {
		t.Error("empty name")
	}
}
