// Package price models hourly electricity prices per data-center location.
//
// The paper drives its simulation with publicly available hourly prices
// (FERC/CAISO) at three undisclosed locations; this package substitutes a
// synthetic process with the same structure GreFar exploits: a diurnal
// trough/peak cycle, location-specific level and phase, and mean-reverting
// stochastic variation. The reference configuration is calibrated so the
// long-run average prices match Table I of the paper
// (0.392, 0.433, 0.548).
package price

import (
	"fmt"
	"math"
	"math/rand"
)

// Source yields the electricity price phi_i(t) of one location at slot t.
// Implementations must be deterministic in t so simulations are repeatable.
type Source interface {
	At(t int) float64
}

// Constant is a fixed price, as assumed by right-sizing work the paper cites.
type Constant float64

var _ Source = Constant(0)

// At implements Source.
func (c Constant) At(int) float64 { return float64(c) }

// Trace replays a materialized price series, wrapping around at the end so a
// simulation may run longer than the trace.
type Trace struct {
	Values []float64
}

var _ Source = (*Trace)(nil)

// At implements Source.
func (tr *Trace) At(t int) float64 {
	if len(tr.Values) == 0 {
		return 0
	}
	return tr.Values[((t%len(tr.Values))+len(tr.Values))%len(tr.Values)]
}

// Stats returns the mean, minimum, and maximum of the trace.
func (tr *Trace) Stats() (mean, min, max float64) {
	if len(tr.Values) == 0 {
		return 0, 0, 0
	}
	min, max = tr.Values[0], tr.Values[0]
	var sum float64
	for _, v := range tr.Values {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return sum / float64(len(tr.Values)), min, max
}

// DiurnalParams configure a synthetic hourly price process: a daily cosine
// shape (trough in the early morning, peak in the late afternoon) around
// Mean, plus mean-reverting (discretized Ornstein-Uhlenbeck) noise.
type DiurnalParams struct {
	// Mean is the long-run average price level.
	Mean float64
	// Amplitude is half the trough-to-peak swing of the daily shape.
	Amplitude float64
	// PeriodHours is the length of a day in slots (default 24).
	PeriodHours int
	// PhaseHours shifts the daily shape, modelling time zones.
	PhaseHours int
	// NoiseSigma is the standard deviation of the per-slot noise shock.
	NoiseSigma float64
	// Reversion is the mean-reversion strength theta in (0, 1]; larger snaps
	// back faster (default 0.3).
	Reversion float64
	// Floor is the minimum price (default 10% of Mean).
	Floor float64
}

func (p DiurnalParams) withDefaults() DiurnalParams {
	if p.PeriodHours <= 0 {
		p.PeriodHours = 24
	}
	if p.Reversion <= 0 {
		p.Reversion = 0.3
	}
	if p.Floor <= 0 {
		p.Floor = 0.1 * p.Mean
	}
	return p
}

// GenerateDiurnal materializes n slots of the process using the given
// deterministic random source.
func GenerateDiurnal(rng *rand.Rand, n int, p DiurnalParams) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace length %d is not positive", n)
	}
	if p.Mean <= 0 {
		return nil, fmt.Errorf("mean price %v is not positive", p.Mean)
	}
	if p.Amplitude < 0 || p.NoiseSigma < 0 {
		return nil, fmt.Errorf("amplitude %v and noise %v must be non-negative", p.Amplitude, p.NoiseSigma)
	}
	p = p.withDefaults()
	values := make([]float64, n)
	var ou float64
	for t := 0; t < n; t++ {
		// Trough near 4am, peak near 4pm local time.
		hour := float64((t + p.PhaseHours) % p.PeriodHours)
		shape := -math.Cos(2 * math.Pi * (hour - 4) / float64(p.PeriodHours))
		ou += p.Reversion*(0-ou) + p.NoiseSigma*rng.NormFloat64()
		v := p.Mean + p.Amplitude*shape + ou
		if v < p.Floor {
			v = p.Floor
		}
		values[t] = v
	}
	return &Trace{Values: values}, nil
}

// ReferenceParams returns the three-location configuration calibrated to the
// paper's Table I average prices. Phases differ to model distinct time
// zones, which is what creates the cross-location arbitrage GreFar exploits.
func ReferenceParams() []DiurnalParams {
	return []DiurnalParams{
		{Mean: 0.392, Amplitude: 0.050, PhaseHours: 0, NoiseSigma: 0.055, Reversion: 0.25},
		{Mean: 0.433, Amplitude: 0.055, PhaseHours: 3, NoiseSigma: 0.060, Reversion: 0.25},
		{Mean: 0.548, Amplitude: 0.070, PhaseHours: 6, NoiseSigma: 0.075, Reversion: 0.25},
	}
}

// NewReferenceSources materializes n slots of the three reference locations
// with a deterministic seed.
func NewReferenceSources(seed int64, n int) ([]*Trace, error) {
	params := ReferenceParams()
	out := make([]*Trace, len(params))
	rng := rand.New(rand.NewSource(seed))
	for i, p := range params {
		tr, err := GenerateDiurnal(rng, n, p)
		if err != nil {
			return nil, fmt.Errorf("location %d: %w", i, err)
		}
		out[i] = tr
	}
	return out, nil
}
