package price

import (
	"strings"
	"testing"
)

func TestReadCSVRoundTrip(t *testing.T) {
	in := "dc1,dc2\n0.4,0.5\n0.41,0.52\n0.39,0.48\n"
	names, traces, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "dc1" || names[1] != "dc2" {
		t.Errorf("names = %v", names)
	}
	if len(traces) != 2 || len(traces[0].Values) != 3 {
		t.Fatalf("wrong shape")
	}
	if traces[1].At(1) != 0.52 {
		t.Errorf("At(1) = %v, want 0.52", traces[1].At(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"header only", "dc1\n"},
		{"ragged", "dc1,dc2\n0.4\n"},
		{"non numeric", "dc1\nhello\n"},
		{"negative", "dc1\n-0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
}
