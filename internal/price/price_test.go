package price

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant(0.42)
	if c.At(0) != 0.42 || c.At(999) != 0.42 {
		t.Error("constant source not constant")
	}
}

func TestTraceWrapsAround(t *testing.T) {
	tr := &Trace{Values: []float64{1, 2, 3}}
	if tr.At(0) != 1 || tr.At(4) != 2 || tr.At(3) != 1 {
		t.Errorf("wrap-around broken: %v %v %v", tr.At(0), tr.At(4), tr.At(3))
	}
	if tr.At(-1) != 3 {
		t.Errorf("negative index: got %v, want 3", tr.At(-1))
	}
	empty := &Trace{}
	if empty.At(5) != 0 {
		t.Error("empty trace should read 0")
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Values: []float64{1, 2, 3, 6}}
	mean, min, max := tr.Stats()
	if mean != 3 || min != 1 || max != 6 {
		t.Errorf("Stats = %v,%v,%v, want 3,1,6", mean, min, max)
	}
	mean, min, max = (&Trace{}).Stats()
	if mean != 0 || min != 0 || max != 0 {
		t.Error("empty Stats should be zeros")
	}
}

func TestGenerateDiurnalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateDiurnal(rng, 0, DiurnalParams{Mean: 1}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := GenerateDiurnal(rng, 10, DiurnalParams{Mean: 0}); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := GenerateDiurnal(rng, 10, DiurnalParams{Mean: 1, Amplitude: -1}); err == nil {
		t.Error("negative amplitude accepted")
	}
}

func TestGenerateDiurnalMeanAndPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	p := DiurnalParams{Mean: 0.45, Amplitude: 0.06, NoiseSigma: 0.015}
	tr, err := GenerateDiurnal(rng, 24*365, p)
	if err != nil {
		t.Fatal(err)
	}
	mean, min, _ := tr.Stats()
	if math.Abs(mean-0.45) > 0.02 {
		t.Errorf("mean = %v, want ~0.45", mean)
	}
	if min <= 0 {
		t.Errorf("min = %v, want positive", min)
	}
}

func TestGenerateDiurnalHasDailyCycle(t *testing.T) {
	// Without noise, the 4am price must be the daily trough and the 4pm
	// price the daily peak.
	rng := rand.New(rand.NewSource(1))
	tr, err := GenerateDiurnal(rng, 48, DiurnalParams{Mean: 0.5, Amplitude: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.At(4)-0.4) > 1e-9 {
		t.Errorf("trough price = %v, want 0.4", tr.At(4))
	}
	if math.Abs(tr.At(16)-0.6) > 1e-9 {
		t.Errorf("peak price = %v, want 0.6", tr.At(16))
	}
	// Periodicity.
	if math.Abs(tr.At(4)-tr.At(28)) > 1e-9 {
		t.Error("daily cycle not periodic")
	}
}

func TestPhaseShiftsCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, _ := GenerateDiurnal(rng, 24, DiurnalParams{Mean: 0.5, Amplitude: 0.1})
	b, _ := GenerateDiurnal(rng, 24, DiurnalParams{Mean: 0.5, Amplitude: 0.1, PhaseHours: 6})
	// b at slot t equals a at slot t+6.
	for t2 := 0; t2 < 18; t2++ {
		if math.Abs(b.At(t2)-a.At(t2+6)) > 1e-9 {
			t.Fatalf("phase shift wrong at %d: %v vs %v", t2, b.At(t2), a.At(t2+6))
		}
	}
}

func TestGenerateDiurnalDeterministic(t *testing.T) {
	a, err := NewReferenceSources(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReferenceSources(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for t2 := 0; t2 < 100; t2++ {
			if a[i].At(t2) != b[i].At(t2) {
				t.Fatalf("same seed produced different traces at %d,%d", i, t2)
			}
		}
	}
}

func TestReferenceSourcesMatchTableI(t *testing.T) {
	// Table I average prices: 0.392, 0.433, 0.548.
	srcs, err := NewReferenceSources(2012, 24*2000)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{0.392, 0.433, 0.548}
	for i, want := range wants {
		mean, min, max := srcs[i].Stats()
		if math.Abs(mean-want) > 0.015 {
			t.Errorf("location %d mean = %v, want ~%v", i, mean, want)
		}
		if min <= 0 {
			t.Errorf("location %d has non-positive prices", i)
		}
		if max-min < 0.05 {
			t.Errorf("location %d barely varies (%v..%v); arbitrage needs variation", i, min, max)
		}
	}
}

func TestFloorRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr, err := GenerateDiurnal(rng, 5000, DiurnalParams{Mean: 0.2, Amplitude: 0.25, NoiseSigma: 0.1, Floor: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	_, min, _ := tr.Stats()
	if min < 0.05-1e-12 {
		t.Errorf("floor violated: min %v", min)
	}
}
