package price

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads price traces from CSV: one column per location, one row per
// slot, with a header row of location names. It is the inverse of the
// tracegen tool's output and the hook for replaying real market data
// (e.g. downloaded FERC/CAISO series, which the paper used) instead of the
// synthetic process.
func ReadCSV(r io.Reader) (names []string, traces []*Trace, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("read csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("csv needs a header and at least one data row, got %d rows", len(rows))
	}
	names = rows[0]
	traces = make([]*Trace, len(names))
	for i := range traces {
		traces[i] = &Trace{Values: make([]float64, 0, len(rows)-1)}
	}
	for rIdx, row := range rows[1:] {
		if len(row) != len(names) {
			return nil, nil, fmt.Errorf("row %d has %d fields, header has %d", rIdx+2, len(row), len(names))
		}
		for col, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d column %q: %w", rIdx+2, names[col], err)
			}
			if v < 0 {
				return nil, nil, fmt.Errorf("row %d column %q: negative price %v", rIdx+2, names[col], v)
			}
			traces[col].Values = append(traces[col].Values, v)
		}
	}
	return names, traces, nil
}
