// Package integration holds cross-module scenario tests: configurations the
// unit tests do not reach (heterogeneous server fleets, every extension
// enabled at once) driven through the full simulation pipeline.
package integration

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/availability"
	"grefar/internal/core"
	"grefar/internal/fairness"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/tariff"
	"grefar/internal/workload"
)

// heterogeneousCluster has multiple server generations per site, exercising
// the multi-segment provisioning and greedy paths the single-type reference
// system never touches.
func heterogeneousCluster() *model.Cluster {
	all := []int{0, 1}
	return &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "west", Servers: []model.ServerType{
				{Name: "gen2", Speed: 0.8, Power: 1.1}, // rate 1.375
				{Name: "gen3", Speed: 1.0, Power: 0.9}, // rate 0.9
				{Name: "gen4", Speed: 1.3, Power: 0.8}, // rate 0.615
			}},
			{Name: "east", Servers: []model.ServerType{
				{Name: "gen2", Speed: 0.8, Power: 1.2},  // rate 1.5
				{Name: "gen4", Speed: 1.3, Power: 0.75}, // rate 0.577
			}},
		},
		JobTypes: []model.JobType{
			{Name: "short", Demand: 1, Eligible: all, Account: 0, MaxArrival: 20, MaxProcess: 200},
			{Name: "long", Demand: 5, Eligible: all, Account: 1, MaxArrival: 5, MaxProcess: 40},
		},
		Accounts: []model.Account{
			{Name: "a", Weight: 0.6},
			{Name: "b", Weight: 0.4},
		},
	}
}

func heterogeneousInputs(t *testing.T, slots int) sim.Inputs {
	t.Helper()
	c := heterogeneousCluster()
	rng := rand.New(rand.NewSource(99))
	p1, err := price.GenerateDiurnal(rng, slots, price.DiurnalParams{Mean: 0.4, Amplitude: 0.05, NoiseSigma: 0.05, Reversion: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := price.GenerateDiurnal(rng, slots, price.DiurnalParams{Mean: 0.5, Amplitude: 0.06, NoiseSigma: 0.06, Reversion: 0.25, PhaseHours: 5})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(rng, c, slots, []workload.Profile{
		{MeanPerSlot: 10, DiurnalDepth: 0.7, BurstProb: 0.08, BurstScale: 3},
		{MeanPerSlot: 2.5, DiurnalDepth: 0.5, BurstProb: 0.05, BurstScale: 2, PhaseHours: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	av, err := availability.Generate(rng, c, slots, availability.Params{
		Base:             [][]float64{{12, 14, 10}, {10, 16}},
		InteractiveShare: 0.1,
		DiurnalDepth:     0.3,
		Jitter:           0.03,
		MinShare:         0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Inputs{
		Cluster:      c,
		Prices:       []price.Source{p1, p2},
		Workload:     wl,
		Availability: av,
	}
}

func TestHeterogeneousFleetEndToEnd(t *testing.T) {
	const slots = 24 * 30
	in := heterogeneousInputs(t, slots)

	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := sim.Run(in, g, sim.Options{Slots: slots, ValidateActions: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sim.Run(in, a, sim.Options{Slots: slots, ValidateActions: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}

	// GreFar exploits both generations and prices: cheaper than Always.
	if rg.AvgEnergy >= ra.AvgEnergy {
		t.Errorf("GreFar energy %v not below Always %v", rg.AvgEnergy, ra.AvgEnergy)
	}
	// Stability and conservation.
	if rg.MaxQueue > 1500 {
		t.Errorf("max queue %v suggests instability", rg.MaxQueue)
	}
	if math.Abs(rg.TotalArrived-rg.TotalProcessed-rg.FinalBacklog) > 1e-6 {
		t.Error("conservation violated")
	}
}

func TestHeterogeneousGreedyMatchesLPOverTrajectory(t *testing.T) {
	// The greedy-vs-LP agreement must also hold with multiple server
	// segments per site, where the exchange argument is subtler.
	const slots = 60
	in := heterogeneousInputs(t, slots)
	c := in.Cluster
	cfg := core.Config{V: 5}
	g, err := core.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in, g, sim.Options{Slots: slots, ValidateActions: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	// Re-derive a few slot problems and compare against the LP directly.
	states, _, err := sim.CollectStates(in, slots)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	gamma := core.AccountWeights(c)
	for trial := 0; trial < 10; trial++ {
		st := states[rng.Intn(slots)]
		q := randomLengths(rng, c, 30)
		act, err := g.Decide(0, st, q)
		if err != nil {
			t.Fatal(err)
		}
		greedyDPP := core.DriftPlusPenalty(c, cfg, st, q, act, gamma)

		pr, bu, _, err := core.SolveSlotLP(c, cfg, st, q)
		if err != nil {
			t.Fatal(err)
		}
		lpAct := model.NewAction(c)
		for i := 0; i < c.N(); i++ {
			copy(lpAct.Process[i], pr[i])
			copy(lpAct.Busy[i], bu[i])
			lpAct.Route[i] = act.Route[i] // same routing; compare processing
		}
		lpDPP := core.DriftPlusPenalty(c, cfg, st, q, lpAct, gamma)
		if greedyDPP > lpDPP+1e-5*(1+math.Abs(lpDPP)) {
			t.Errorf("trial %d: greedy DPP %v worse than LP %v", trial, greedyDPP, lpDPP)
		}
	}
}

func randomLengths(rng *rand.Rand, c *model.Cluster, scale float64) queue.Lengths {
	var q queue.Lengths
	q.Central = make([]float64, c.J())
	q.Local = make([][]float64, c.N())
	for j := range q.Central {
		q.Central[j] = float64(rng.Intn(int(scale)))
	}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
		for j := range q.Local[i] {
			q.Local[i][j] = float64(rng.Intn(int(scale)))
		}
	}
	return q
}

func TestEverythingEnabledAtOnce(t *testing.T) {
	// Alpha-fairness + convex tariff + base load + admission control +
	// auxiliary resources, all through the public pipeline, must produce a
	// feasible, stable, conserving run.
	const slots = 24 * 15
	in := heterogeneousInputs(t, slots)
	c := in.Cluster
	c.DataCenters[0].AuxCapacity = []float64{200}
	c.DataCenters[1].AuxCapacity = []float64{150}
	c.JobTypes[0].AuxDemand = []float64{2}
	c.JobTypes[1].AuxDemand = []float64{12}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	af, err := fairness.NewAlphaFair(1, core.AccountWeights(c))
	if err != nil {
		t.Fatal(err)
	}
	trf, err := tariff.NewQuadratic(40)
	if err != nil {
		t.Fatal(err)
	}
	base := []price.Source{price.Constant(10), price.Constant(8)}
	adm, err := sim.NewThresholdAdmission([]float64{300, 120})
	if err != nil {
		t.Fatal(err)
	}

	g, err := core.New(c, core.Config{V: 5, Beta: 30, Fairness: af, Tariff: trf})
	if err != nil {
		t.Fatal(err)
	}
	in.Tariff = trf
	in.BaseLoad = base
	in.Fairness = af
	res, err := sim.Run(in, g, sim.Options{
		Slots:           slots,
		ValidateActions: true,
		Check:           true,
		Admission:       adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed <= 0 {
		t.Error("nothing processed")
	}
	if got := res.TotalArrived - res.TotalDropped - res.TotalProcessed - res.FinalBacklog; math.Abs(got) > 1e-6 {
		t.Errorf("conservation violated by %v", got)
	}
	if res.MaxQueue > 500 {
		t.Errorf("max queue %v unbounded despite admission control", res.MaxQueue)
	}
}

// TestBaselinesRespectAuxResources verifies that every scheduler — not just
// GreFar — stays feasible on a cluster with vector demands (footnote 3):
// the drain-everything baselines must scale down to the auxiliary capacity.
func TestBaselinesRespectAuxResources(t *testing.T) {
	const slots = 24 * 5
	in := heterogeneousInputs(t, slots)
	c := in.Cluster
	c.DataCenters[0].AuxCapacity = []float64{60}
	c.DataCenters[1].AuxCapacity = []float64{40}
	c.JobTypes[0].AuxDemand = []float64{2}
	c.JobTypes[1].AuxDemand = []float64{15}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	al, err := sched.NewAlways(c)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := sched.NewLocalGreedy(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Scheduler{al, lg} {
		res, err := sim.Run(in, s, sim.Options{Slots: slots, ValidateActions: true, Check: true})
		if err != nil {
			t.Fatalf("%s on aux cluster: %v", s.Name(), err)
		}
		if res.TotalProcessed <= 0 {
			t.Errorf("%s processed nothing", s.Name())
		}
	}
}
