package invariant_test

import (
	"errors"
	"math/rand"
	"testing"

	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
)

// TestCheckerCleanOnReferenceRuns drives the full reference pipeline with
// Options.Check on: every slot of every seed configuration must satisfy the
// queue dynamics, feasibility, and conservation invariants.
func TestCheckerCleanOnReferenceRuns(t *testing.T) {
	const slots = 24 * 10
	cases := []struct {
		name    string
		v, beta float64
	}{
		{"v0.1-beta0", 0.1, 0},
		{"v7.5-beta0", 7.5, 0},
		{"v7.5-beta100", 7.5, 100},
		{"v20-beta0", 20, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := sim.NewReferenceInputs(2012, slots)
			if err != nil {
				t.Fatal(err)
			}
			g, err := core.New(in.Cluster, core.Config{V: tc.v, Beta: tc.beta})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(in, g, sim.Options{Slots: slots, ValidateActions: true, Check: true})
			if err != nil {
				t.Fatalf("checked run failed: %v", err)
			}
			if res.TotalProcessed <= 0 {
				t.Error("nothing processed")
			}
		})
	}
}

// TestCheckerCleanForBaselines verifies the invariants hold for the
// non-GreFar policies too: the checker constrains the simulator, not one
// scheduler.
func TestCheckerCleanForBaselines(t *testing.T) {
	const slots = 24 * 5
	in, err := sim.NewReferenceInputs(7, slots)
	if err != nil {
		t.Fatal(err)
	}
	al, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := sched.NewLocalGreedy(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Scheduler{al, lg} {
		if _, err := sim.Run(in, s, sim.Options{Slots: slots, Check: true}); err != nil {
			t.Errorf("%s: checked run failed: %v", s.Name(), err)
		}
	}
}

// TestCheckerObjectiveRecompute attaches a checker with an ObjectiveSpec to
// the scheduler side and verifies the emitted drift/penalty decomposition
// against the independent recomputation over real decisions.
func TestCheckerObjectiveRecompute(t *testing.T) {
	const slots = 24 * 5
	for _, beta := range []float64{0, 100} {
		in, err := sim.NewReferenceInputs(2012, slots)
		if err != nil {
			t.Fatal(err)
		}
		ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{
			Objective: &invariant.ObjectiveSpec{V: 7.5, Beta: beta},
		})
		g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: beta, Observer: ck})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(in, g, sim.Options{Slots: slots}); err != nil {
			t.Fatal(err)
		}
		if err := ck.Err(); err != nil {
			t.Errorf("beta=%g: decide-side check failed: %v", beta, err)
		}
	}
}

// smallCluster is a two-site, two-type system for hand-built events.
func smallCluster(t *testing.T) *model.Cluster {
	t.Helper()
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 2, Power: 1.5}}},
		},
		JobTypes: []model.JobType{
			{Name: "j0", Demand: 1, Eligible: []int{0, 1}, Account: 0},
			{Name: "j1", Demand: 2, Eligible: []int{1}, Account: 0},
		},
		Accounts: []model.Account{{Name: "acct", Weight: 1}},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// validAppliedEvent builds a self-consistent applied-slot event on the small
// cluster, which tests then corrupt one field at a time.
func validAppliedEvent(t *testing.T, c *model.Cluster) telemetry.SlotEvent {
	t.Helper()
	st := model.NewState(c)
	st.Avail = [][]float64{{10}, {10}}
	st.Price = []float64{0.5, 0.4}
	act := model.NewAction(c)
	act.Route[0][0] = 2
	act.Process[1][0] = 1
	act.Busy[1][0] = 0.5
	pre := queue.Lengths{Central: []float64{5, 0}, Local: [][]float64{{1, 0}, {3, 0}}}
	post := queue.Lengths{Central: []float64{3 + 4, 0}, Local: [][]float64{{3, 0}, {2, 0}}}
	return telemetry.SlotEvent{
		Slot:       0,
		Origin:     telemetry.OriginSim,
		DataCenter: -1,
		Processed:  1,
		TotalBacklog: func() float64 {
			return post.Sum()
		}(),
		Detail: &telemetry.SlotDetail{
			State:     st,
			Action:    act,
			Pre:       pre,
			Post:      post,
			Arrivals:  []int{4, 0},
			Routed:    [][]float64{{2, 0}, {0, 0}},
			Processed: [][]float64{{0, 0}, {1, 0}},
		},
	}
}

func TestCheckerAcceptsConsistentEvent(t *testing.T) {
	c := smallCluster(t)
	ck := invariant.NewChecker(c, invariant.CheckerOptions{})
	ck.ObserveSlot(validAppliedEvent(t, c))
	if err := ck.Err(); err != nil {
		t.Fatalf("consistent event rejected: %v", err)
	}
	if ck.Slots() != 1 {
		t.Errorf("checked %d slots, want 1", ck.Slots())
	}
}

// TestCheckerCatchesCorruption corrupts one aspect of a valid event per case
// and requires the checker to flag exactly the matching rule.
func TestCheckerCatchesCorruption(t *testing.T) {
	c := smallCluster(t)
	cases := []struct {
		name    string
		rule    string
		corrupt func(ev *telemetry.SlotEvent)
	}{
		{"negative-backlog", "queue-dynamics-local", func(ev *telemetry.SlotEvent) {
			ev.Detail.Post.Local[1][0] = -1
		}},
		{"broken-central-dynamics", "queue-dynamics-central", func(ev *telemetry.SlotEvent) {
			ev.Detail.Post.Central[0] += 1
		}},
		{"phantom-processing", "flow-processed", func(ev *telemetry.SlotEvent) {
			ev.Detail.Processed[1][0] = 5 // more than queued
		}},
		{"over-routing", "flow-routed", func(ev *telemetry.SlotEvent) {
			ev.Detail.Routed[0][0] = 3 // more than nominal
		}},
		{"busy-over-availability", "feasibility-availability", func(ev *telemetry.SlotEvent) {
			ev.Detail.Action.Busy[0][0] = 99
		}},
		{"ineligible-processing", "feasibility-eligibility", func(ev *telemetry.SlotEvent) {
			ev.Detail.Action.Process[0][1] = 1
			ev.Detail.Action.Busy[0][0] = 2
			ev.Detail.Pre.Local[0][1] = 2
			ev.Detail.Processed[0][1] = 1
			ev.Detail.Post.Local[0][1] = 1
			ev.Processed += 1
			ev.TotalBacklog += 1
		}},
		{"work-over-capacity", "feasibility-capacity", func(ev *telemetry.SlotEvent) {
			ev.Detail.Action.Busy[1][0] = 0.1 // 1 unit of work on 0.2 resource
		}},
		{"event-backlog-mismatch", "event-backlog", func(ev *telemetry.SlotEvent) {
			ev.TotalBacklog += 7
		}},
		{"missing-detail", "missing-detail", func(ev *telemetry.SlotEvent) {
			ev.Detail = nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := invariant.NewChecker(c, invariant.CheckerOptions{})
			ev := validAppliedEvent(t, c)
			tc.corrupt(&ev)
			ck.ObserveSlot(ev)
			err := ck.Err()
			if err == nil {
				t.Fatal("corrupted event accepted")
			}
			if !errors.Is(err, invariant.ErrViolation) {
				t.Errorf("error %v does not wrap ErrViolation", err)
			}
			found := false
			for _, v := range ck.Violations() {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation of rule %q; got %v", tc.rule, ck.Violations())
			}
		})
	}
}

// TestCheckerContinuity requires consecutive slots to share a queue
// trajectory: slot t must start where slot t-1 ended.
func TestCheckerContinuity(t *testing.T) {
	c := smallCluster(t)
	ck := invariant.NewChecker(c, invariant.CheckerOptions{})
	ck.ObserveSlot(validAppliedEvent(t, c))
	// Second slot with a pre snapshot that does not match the first post.
	ev := validAppliedEvent(t, c)
	ev.Slot = 1
	ck.ObserveSlot(ev)
	err := ck.Err()
	if err == nil {
		t.Fatal("discontinuous trajectory accepted")
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "continuity-central" || v.Rule == "continuity-local" {
			found = true
		}
	}
	if !found {
		t.Errorf("no continuity violation recorded; got %v", ck.Violations())
	}
}

// TestCheckerConservation feeds a trajectory that silently loses a job and
// expects the cumulative conservation check to notice.
func TestCheckerConservation(t *testing.T) {
	c := smallCluster(t)
	ck := invariant.NewChecker(c, invariant.CheckerOptions{})
	ev := validAppliedEvent(t, c)
	// Claim fewer arrivals than the post-slot backlog accounts for.
	ev.Detail.Arrivals = []int{2, 0}
	ck.ObserveSlot(ev)
	err := ck.Err()
	if err == nil {
		t.Fatal("job-losing trajectory accepted")
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "conservation" || v.Rule == "queue-dynamics-central" {
			found = true
		}
	}
	if !found {
		t.Errorf("no conservation violation recorded; got %v", ck.Violations())
	}
}

// TestSimRunFailsOnBadScheduler wires a scheduler that fabricates infeasible
// busy counts through sim.Run with Check on; ValidateActions alone is kept
// off so the failure must come from the invariant checker.
func TestSimRunFailsOnBadScheduler(t *testing.T) {
	const slots = 10
	in, err := sim.NewReferenceInputs(3, slots)
	if err != nil {
		t.Fatal(err)
	}
	bad := overBusyScheduler{cluster: in.Cluster}
	_, err = sim.Run(in, bad, sim.Options{Slots: slots, Check: true})
	if err == nil {
		t.Fatal("sim.Run accepted an infeasible trajectory under Check")
	}
	if !errors.Is(err, invariant.ErrViolation) {
		t.Errorf("error %v does not wrap invariant.ErrViolation", err)
	}
}

// overBusyScheduler keeps more servers busy than are available.
type overBusyScheduler struct {
	cluster *model.Cluster
}

func (s overBusyScheduler) Name() string { return "over-busy" }

func (s overBusyScheduler) Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error) {
	act := model.NewAction(s.cluster)
	for i := range act.Busy {
		for k := range act.Busy[i] {
			act.Busy[i][k] = st.Avail[i][k] * 2
		}
	}
	return act, nil
}

// TestCheckerViolationCap verifies the recording cap counts every violation
// while bounding memory.
func TestCheckerViolationCap(t *testing.T) {
	c := smallCluster(t)
	ck := invariant.NewChecker(c, invariant.CheckerOptions{MaxViolations: 3})
	for s := 0; s < 10; s++ {
		ev := validAppliedEvent(t, c)
		ev.Slot = s
		ev.Detail = nil // one missing-detail violation each
		ck.ObserveSlot(ev)
	}
	if got := len(ck.Violations()); got != 3 {
		t.Errorf("recorded %d violations, want cap 3", got)
	}
	if ck.Count() != 10 {
		t.Errorf("counted %d violations, want 10", ck.Count())
	}
}

// TestCheckerRandomizedTrajectories replays many random feasible actions
// through a real queue.Set and asserts the checker stays silent — the checker
// must not flag legal behavior, whatever the action mix.
func TestCheckerRandomizedTrajectories(t *testing.T) {
	c := smallCluster(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ck := invariant.NewChecker(c, invariant.CheckerOptions{})
		qs := queue.NewSet(c)
		st := model.NewState(c)
		st.Avail = [][]float64{{8}, {8}}
		st.Price = []float64{0.5, 0.6}
		for slot := 0; slot < 30; slot++ {
			pre := qs.Lengths()
			act := model.NewAction(c)
			for j := 0; j < c.J(); j++ {
				for _, i := range c.JobTypes[j].Eligible {
					act.Route[i][j] = rng.Intn(4)
					// Cap processing at content so capacity stays feasible.
					h := float64(rng.Intn(4))
					if h > pre.Local[i][j] {
						h = pre.Local[i][j]
					}
					act.Process[i][j] += h
				}
			}
			// Provision exactly the work demanded.
			for i := 0; i < c.N(); i++ {
				act.Busy[i][0] = act.WorkAt(c, i) / c.DataCenters[i].Servers[0].Speed
			}
			flows, err := qs.Apply(slot, act)
			if err != nil {
				t.Fatal(err)
			}
			arr := []int{rng.Intn(5), rng.Intn(3)}
			if err := qs.Arrive(slot, arr); err != nil {
				t.Fatal(err)
			}
			post := qs.Lengths()
			var processed float64
			for i := range flows.Processed {
				for _, h := range flows.Processed[i] {
					processed += h
				}
			}
			ck.ObserveSlot(telemetry.SlotEvent{
				Slot:         slot,
				Origin:       telemetry.OriginSim,
				DataCenter:   -1,
				Processed:    processed,
				TotalBacklog: post.Sum(),
				Detail: &telemetry.SlotDetail{
					State:     st.Clone(),
					Action:    act,
					Pre:       pre,
					Post:      post,
					Arrivals:  arr,
					Routed:    flows.Routed,
					Processed: flows.Processed,
				},
			})
		}
		if err := ck.Err(); err != nil {
			t.Fatalf("trial %d: checker flagged a legal trajectory: %v", trial, err)
		}
	}
}
