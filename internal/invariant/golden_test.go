package invariant_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/golden")

// goldenCases are the pinned configurations. Keep them small: 48 slots of the
// reference workload is two simulated days, enough to exercise admission,
// routing, processing, and both the beta = 0 and beta > 0 penalty paths.
var goldenCases = []struct {
	name    string
	v, beta float64
}{
	{"grefar-v7.5-beta0", 7.5, 0},
	{"grefar-v7.5-beta100", 7.5, 100},
}

const (
	goldenSeed  = 2012
	goldenSlots = 48
)

// runGoldenTrace runs one pinned configuration with the invariant checker on
// and a trace recorder attached to both the decide-side and sim-side event
// streams, returning the serialized JSONL trace.
func runGoldenTrace(t *testing.T, v, beta float64) []byte {
	t.Helper()
	in, err := sim.NewReferenceInputs(goldenSeed, goldenSlots)
	if err != nil {
		t.Fatal(err)
	}
	rec := &invariant.TraceRecorder{}
	g, err := core.New(in.Cluster, core.Config{V: v, Beta: beta, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(in, g, sim.Options{Slots: goldenSlots, Observer: rec, ValidateActions: true, Check: true}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorder captured no events")
	}
	out, err := rec.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenTraces pins the full slot-event stream of the reference runs.
// Any change to routing, processing, admission, energy accounting, or solver
// behavior shows up as a diff against testdata/golden; regenerate
// deliberately with `make golden` (go test -run TestGolden -update).
func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := runGoldenTrace(t, tc.v, tc.beta)
			path := filepath.Join("testdata", "golden", tc.name+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `make golden`): %v", err)
			}
			if diff := invariant.DiffJSONL(got, want); diff != "" {
				t.Errorf("trace deviates from %s:\n%s", path, diff)
			}
		})
	}
}

// TestGoldenTraceDeterminism reruns a pinned configuration twice in-process
// and requires byte-identical traces: the simulation must be free of map
// iteration order, timestamps, and other nondeterminism.
func TestGoldenTraceDeterminism(t *testing.T) {
	first := runGoldenTrace(t, 7.5, 100)
	second := runGoldenTrace(t, 7.5, 100)
	if diff := invariant.DiffJSONL(second, first); diff != "" {
		t.Errorf("same-seed reruns diverge:\n%s", diff)
	}
}
