package invariant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"grefar/internal/telemetry"
)

// TraceRecorder captures the slot-event stream of a run for the golden-trace
// regression tests: every scheduling decision and applied slot, serialized as
// one JSON object per line in arrival order. Serialization is deterministic —
// struct fields marshal in declaration order and floats use Go's shortest
// round-trip encoding — so two runs of a deterministic simulation produce
// byte-identical traces, and any behavioral drift in routing, processing,
// energy accounting, or solver health shows up as a golden-file diff.
type TraceRecorder struct {
	mu     sync.Mutex
	events []telemetry.SlotEvent
}

var _ telemetry.SlotObserver = (*TraceRecorder)(nil)

// ObserveSlot implements telemetry.SlotObserver. The evidence payload
// (SlotEvent.Detail) is dropped: the golden trace pins the public event
// schema, not the internal deep copies.
func (r *TraceRecorder) ObserveSlot(ev telemetry.SlotEvent) {
	ev.Detail = nil
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *TraceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in arrival order.
func (r *TraceRecorder) Events() []telemetry.SlotEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]telemetry.SlotEvent(nil), r.events...)
}

// WriteJSONL writes the recorded events to w, one JSON object per line.
func (r *TraceRecorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.events {
		b, err := json.Marshal(&r.events[i])
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONL renders the recorded events as a JSONL byte slice.
func (r *TraceRecorder) MarshalJSONL() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DiffJSONL compares a trace against a reference JSONL document and returns a
// description of the first difference, or "" when they are byte-identical.
// The description carries the 1-based line number and both lines, so a golden
// test failure points straight at the first diverging slot.
func DiffJSONL(got, want []byte) string {
	if bytes.Equal(got, want) {
		return ""
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) > n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			return fmt.Sprintf("line %d differs\n  got:  %s\n  want: %s", i+1, g, w)
		}
	}
	return fmt.Sprintf("traces differ in length: got %d lines, want %d", len(gotLines), len(wantLines))
}
