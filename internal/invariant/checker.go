// Package invariant is the runtime verification harness for the GreFar
// reproduction. It re-derives, from first principles and independently of the
// scheduler and simulator code paths, every property the paper's model
// guarantees per slot — queue dynamics (12)-(13), action feasibility under
// the revealed state x(t), end-to-end job conservation, and the
// drift-plus-penalty decomposition of (14) — and reports any slot where the
// running system disagrees with the model.
//
// The package has three entry points:
//
//   - Checker is a telemetry.SlotObserver that validates every slot of a live
//     run; sim.Run wires it behind Options.Check.
//   - CrossCheckSolvers is the differential engine: it runs the four beta = 0
//     slot solvers (greedy exchange, simplex LP, Frank-Wolfe,
//     projected gradient) on identical inputs and fails when their objective
//     values disagree beyond tolerance.
//   - TraceRecorder captures slot-event streams for the golden-trace
//     regression tests under testdata/golden.
package invariant

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/tariff"
	"grefar/internal/telemetry"
)

// ErrViolation is the sentinel wrapped by every failure this package reports,
// so callers can classify checker and differential outcomes with errors.Is.
var ErrViolation = errors.New("invariant: violation")

// Violation is one detected disagreement between the running system and the
// paper's model.
type Violation struct {
	// Slot is the time slot t the violating event belongs to.
	Slot int
	// Origin is the telemetry origin of the event ("decide", "sim", ...).
	Origin string
	// Rule names the invariant that failed, e.g. "queue-dynamics-central".
	Rule string
	// Detail is a human-readable account of the disagreement.
	Detail string
}

// String renders the violation for error messages.
func (v Violation) String() string {
	return fmt.Sprintf("slot %d [%s] %s: %s", v.Slot, v.Origin, v.Rule, v.Detail)
}

// ObjectiveSpec enables the decide-side objective recomputation: with the
// scheduler's knobs known, the checker independently re-derives the V*g(t)
// penalty of each decision and compares it against the emitted decomposition.
// The recomputation assumes the paper's quadratic fairness function (eq. 3);
// schedulers running other fairness terms should leave the spec nil, which
// still verifies the drift term and the Objective = Drift + Penalty identity.
type ObjectiveSpec struct {
	// V and Beta are the scheduler's control knobs.
	V, Beta float64
	// Weights are the account target shares gamma_m. Nil selects the
	// cluster's account weights.
	Weights []float64
	// Tariff is the energy tariff the scheduler optimizes against (nil means
	// the paper's baseline linear pricing).
	Tariff tariff.Tariff
}

// CheckerOptions tune a Checker. The zero value checks everything that does
// not require scheduler configuration.
type CheckerOptions struct {
	// Tol is the numeric comparison tolerance (default 1e-6). Comparisons are
	// relative: a and b agree when |a-b| <= Tol * (1 + max(|a|, |b|)).
	Tol float64
	// Objective, when non-nil, additionally verifies the decide-side penalty
	// term against an independent recomputation.
	Objective *ObjectiveSpec
	// MaxViolations caps how many violations are recorded in full before the
	// checker only counts (default 32).
	MaxViolations int
}

// Checker validates every observed slot against the paper's model. It
// implements telemetry.SlotObserver and telemetry.DetailObserver: emitters
// attach the full slot evidence (state, action, queue snapshots, realized
// flows) so the checker can recompute each transition independently.
//
// A Checker is safe for concurrent use, but the cross-slot checks
// (continuity, conservation) assume the slots of one run arrive in order from
// a single control loop.
type Checker struct {
	cluster *model.Cluster
	opts    CheckerOptions

	mu         sync.Mutex
	violations []Violation
	count      int
	slots      int

	// Sim-origin trajectory bookkeeping.
	lastPost  *queue.Lengths // post-slot snapshot of the previous sim event
	arrived   float64        // cumulative admitted jobs
	processed float64        // cumulative actually-processed jobs
}

var _ telemetry.DetailObserver = (*Checker)(nil)

// NewChecker builds a checker for the cluster.
func NewChecker(c *model.Cluster, opts CheckerOptions) *Checker {
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 32
	}
	return &Checker{cluster: c, opts: opts}
}

// WantsSlotDetail implements telemetry.DetailObserver: the checker always
// needs the full slot evidence.
func (ck *Checker) WantsSlotDetail() bool { return true }

// ObserveSlot implements telemetry.SlotObserver.
func (ck *Checker) ObserveSlot(ev telemetry.SlotEvent) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	switch ev.Origin {
	case telemetry.OriginSim, telemetry.OriginController:
		ck.slots++
		ck.checkApplied(ev)
	case telemetry.OriginDecide:
		ck.checkDecision(ev)
	default:
		// Agent-scope events carry a single site's view; the cluster-wide
		// invariants do not apply.
	}
}

// Violations returns a copy of the recorded violations (capped at
// MaxViolations; Count reports the true total).
func (ck *Checker) Violations() []Violation {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return append([]Violation(nil), ck.violations...)
}

// Count returns the total number of violations detected, including any beyond
// the recording cap.
func (ck *Checker) Count() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.count
}

// Slots returns the number of applied (sim-origin) slots checked.
func (ck *Checker) Slots() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.slots
}

// Err returns nil when every checked slot satisfied the model, or an error
// wrapping ErrViolation describing the first violation and the total count.
func (ck *Checker) Err() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.count == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s (%d total)", ErrViolation, ck.violations[0], ck.count)
}

func (ck *Checker) report(ev telemetry.SlotEvent, rule, format string, args ...any) {
	ck.count++
	if len(ck.violations) < ck.opts.MaxViolations {
		ck.violations = append(ck.violations, Violation{
			Slot:   ev.Slot,
			Origin: ev.Origin,
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// close reports whether a and b agree within the relative tolerance.
func (ck *Checker) close(a, b float64) bool {
	return math.Abs(a-b) <= ck.opts.Tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// checkApplied verifies one applied slot: the evidence must reproduce the
// paper's queue dynamics exactly, the action must be feasible under the
// revealed state, and the cumulative flows must conserve jobs.
func (ck *Checker) checkApplied(ev telemetry.SlotEvent) {
	d := ev.Detail
	if d == nil {
		ck.report(ev, "missing-detail", "applied slot carries no evidence; emitter ignored WantsSlotDetail")
		return
	}
	if d.State == nil || d.Action == nil {
		ck.report(ev, "missing-detail", "slot evidence lacks state or action")
		return
	}
	c := ck.cluster
	tol := ck.opts.Tol

	// The conservation ledger counts jobs from the first observed slot on;
	// backlog already queued then is treated as having arrived earlier.
	if ck.lastPost == nil {
		ck.arrived += d.Pre.Sum()
	}

	// Trajectory continuity: nothing may touch the queues between the end of
	// slot t-1 and the decision of slot t.
	if ck.lastPost != nil {
		for j := range d.Pre.Central {
			if !ck.close(d.Pre.Central[j], ck.lastPost.Central[j]) {
				ck.report(ev, "continuity-central", "Q_%d(t)=%v but previous slot ended at %v", j, d.Pre.Central[j], ck.lastPost.Central[j])
			}
		}
		for i := range d.Pre.Local {
			for j := range d.Pre.Local[i] {
				if !ck.close(d.Pre.Local[i][j], ck.lastPost.Local[i][j]) {
					ck.report(ev, "continuity-local", "q_{%d,%d}(t)=%v but previous slot ended at %v", i, j, d.Pre.Local[i][j], ck.lastPost.Local[i][j])
				}
			}
		}
	}

	ck.checkFeasible(ev, d.State, d.Action, d.Pre)

	// Realized flows: processing pops exactly min(h, q) from each local
	// ledger; routing consumes the central content in data-center order.
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			want := math.Min(d.Action.Process[i][j], d.Pre.Local[i][j])
			if want < 0 {
				want = 0
			}
			if !ck.close(d.Processed[i][j], want) {
				ck.report(ev, "flow-processed", "processed[%d][%d]=%v, want min(h=%v, q=%v)=%v",
					i, j, d.Processed[i][j], d.Action.Process[i][j], d.Pre.Local[i][j], want)
			}
		}
	}
	for j := 0; j < c.J(); j++ {
		remaining := d.Pre.Central[j]
		for i := 0; i < c.N(); i++ {
			want := math.Min(float64(d.Action.Route[i][j]), math.Max(remaining, 0))
			remaining -= want
			if !ck.close(d.Routed[i][j], want) {
				ck.report(ev, "flow-routed", "routed[%d][%d]=%v, want %v (nominal %d, central content consumed in DC order)",
					i, j, d.Routed[i][j], want, d.Action.Route[i][j])
			}
		}
	}

	// Queue dynamics. The central queue follows (12) exactly: routing is
	// capped at content, so Q(t+1) = max[Q - sum_i r, 0] + a. The local
	// ledgers process before routing, so q(t+1) = max[q - h, 0] + routed,
	// which the clipped paper form (13) dominates.
	if len(d.Arrivals) != c.J() {
		ck.report(ev, "missing-detail", "slot evidence has %d arrival counts, want %d", len(d.Arrivals), c.J())
		return
	}
	var slotArrived, slotProcessed float64
	for j := 0; j < c.J(); j++ {
		var nominal, actual float64
		for i := 0; i < c.N(); i++ {
			nominal += float64(d.Action.Route[i][j])
			actual += d.Routed[i][j]
		}
		a := float64(d.Arrivals[j])
		slotArrived += a
		wantExact := d.Pre.Central[j] - actual + a
		if !ck.close(d.Post.Central[j], wantExact) {
			ck.report(ev, "queue-dynamics-central", "Q_%d(t+1)=%v, want Q - routed + a = %v", j, d.Post.Central[j], wantExact)
		}
		wantPaper := math.Max(d.Pre.Central[j]-nominal, 0) + a
		if !ck.close(d.Post.Central[j], wantPaper) {
			ck.report(ev, "queue-dynamics-central-12", "Q_%d(t+1)=%v, want max[Q - sum_i r, 0] + a = %v (eq. 12)", j, d.Post.Central[j], wantPaper)
		}
		if d.Post.Central[j] < -tol {
			ck.report(ev, "nonnegativity-central", "Q_%d(t+1)=%v is negative", j, d.Post.Central[j])
		}
	}
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			slotProcessed += d.Processed[i][j]
			wantExact := d.Pre.Local[i][j] - d.Processed[i][j] + d.Routed[i][j]
			if !ck.close(d.Post.Local[i][j], wantExact) {
				ck.report(ev, "queue-dynamics-local", "q_{%d,%d}(t+1)=%v, want q - processed + routed = %v", i, j, d.Post.Local[i][j], wantExact)
			}
			// The clipped virtual dynamics (13) with nominal decisions bound
			// the physical ledger from above: capping never adds backlog.
			paper := math.Max(d.Pre.Local[i][j]-d.Action.Process[i][j], 0) + float64(d.Action.Route[i][j])
			if d.Post.Local[i][j] > paper+tol*(1+paper) {
				ck.report(ev, "virtual-dominance", "q_{%d,%d}(t+1)=%v exceeds the clipped eq. 13 value %v", i, j, d.Post.Local[i][j], paper)
			}
			if d.Post.Local[i][j] < -tol {
				ck.report(ev, "nonnegativity-local", "q_{%d,%d}(t+1)=%v is negative", i, j, d.Post.Local[i][j])
			}
		}
	}

	// Job conservation: every admitted job is queued somewhere until it is
	// processed. The ledgers and the Lengths snapshot must tell one story.
	ck.arrived += slotArrived
	ck.processed += slotProcessed
	if backlog := d.Post.Sum(); !ck.closeAt(ck.arrived-ck.processed, backlog, ck.arrived) {
		ck.report(ev, "conservation", "cumulative arrived %v - processed %v = %v, but total backlog is %v",
			ck.arrived, ck.processed, ck.arrived-ck.processed, backlog)
	}

	// The public event fields must agree with the evidence they summarize.
	if !ck.close(ev.Processed, slotProcessed) {
		ck.report(ev, "event-processed", "event reports %v processed, evidence sums to %v", ev.Processed, slotProcessed)
	}
	if !ck.close(ev.TotalBacklog, d.Post.Sum()) {
		ck.report(ev, "event-backlog", "event reports total backlog %v, snapshot sums to %v", ev.TotalBacklog, d.Post.Sum())
	}

	post := d.Post.Clone()
	ck.lastPost = &post
}

// closeAt is close with the tolerance scaled to a magnitude, for cumulative
// quantities whose rounding error grows with the run.
func (ck *Checker) closeAt(a, b, scale float64) bool {
	return math.Abs(a-b) <= ck.opts.Tol*(1+math.Abs(scale))
}

// checkDecision verifies one scheduling decision: feasibility against the
// revealed state and the drift-plus-penalty decomposition of (14).
func (ck *Checker) checkDecision(ev telemetry.SlotEvent) {
	d := ev.Detail
	if d == nil {
		ck.report(ev, "missing-detail", "decide slot carries no evidence; emitter ignored WantsSlotDetail")
		return
	}
	if d.State == nil || d.Action == nil {
		ck.report(ev, "missing-detail", "slot evidence lacks state or action")
		return
	}
	c := ck.cluster
	ck.checkFeasible(ev, d.State, d.Action, d.Pre)

	// Objective = Drift + Penalty is the definition of (14)'s decomposition.
	if !ck.close(ev.Objective, ev.Drift+ev.Penalty) {
		ck.report(ev, "objective-decomposition", "objective %v != drift %v + penalty %v", ev.Objective, ev.Drift, ev.Penalty)
	}

	// Independent drift recomputation from the pre-decision backlogs:
	// sum_j sum_{i in D_j} [q_{i,j}(r - h) - Q_j r].
	var drift float64
	for j := 0; j < c.J(); j++ {
		for _, i := range c.JobTypes[j].Eligible {
			r := float64(d.Action.Route[i][j])
			drift += d.Pre.Local[i][j]*(r-d.Action.Process[i][j]) - d.Pre.Central[j]*r
		}
	}
	if !ck.close(ev.Drift, drift) {
		ck.report(ev, "drift-recompute", "event drift %v, independent recomputation %v", ev.Drift, drift)
	}

	if spec := ck.opts.Objective; spec != nil {
		energy := ck.billedEnergy(d.State, d.Action, spec.Tariff)
		if !ck.close(ev.Energy, energy) {
			ck.report(ev, "energy-recompute", "event energy %v, independent recomputation %v", ev.Energy, energy)
		}
		penalty := spec.V * (energy + spec.Beta*ck.fairnessPenalty(d.State, d.Action, spec.Weights))
		if !ck.close(ev.Penalty, penalty) {
			ck.report(ev, "penalty-recompute", "event penalty %v, independent recomputation %v", ev.Penalty, penalty)
		}
	}
}

// checkFeasible re-derives action feasibility from the cluster description
// and the revealed state, independently of model.Action.Validate: routing,
// processing, and busy-server decisions must respect eligibility, per-slot
// bounds, availability, capacity coupling (eq. 11), auxiliary capacities, and
// processing must never exceed the backlog plus same-slot routing.
func (ck *Checker) checkFeasible(ev telemetry.SlotEvent, st *model.State, act *model.Action, pre queue.Lengths) {
	c := ck.cluster
	tol := ck.opts.Tol
	if len(act.Route) != c.N() || len(act.Process) != c.N() || len(act.Busy) != c.N() {
		ck.report(ev, "feasibility-shape", "action shaped for %d data centers, cluster has %d", len(act.Route), c.N())
		return
	}
	for i := 0; i < c.N(); i++ {
		var work, provided float64
		for j := 0; j < c.J(); j++ {
			jt := c.JobTypes[j]
			r, h := float64(act.Route[i][j]), act.Process[i][j]
			if r < 0 || h < -tol {
				ck.report(ev, "feasibility-sign", "negative decision at (%d,%d): r=%v h=%v", i, j, r, h)
			}
			if !jt.EligibleSet(i) && (r > 0 || h > tol) {
				ck.report(ev, "feasibility-eligibility", "job type %d scheduled at ineligible data center %d (r=%v h=%v)", j, i, r, h)
			}
			if jt.MaxRoute > 0 && r > float64(jt.MaxRoute) {
				ck.report(ev, "feasibility-route-bound", "route[%d][%d]=%v exceeds r_max=%d", i, j, r, jt.MaxRoute)
			}
			if jt.MaxProcess > 0 && h > jt.MaxProcess+tol*(1+jt.MaxProcess) {
				ck.report(ev, "feasibility-process-bound", "process[%d][%d]=%v exceeds h_max=%v", i, j, h, jt.MaxProcess)
			}
			// Processing draws on the local backlog; at most the queued jobs
			// plus this slot's routing can be worked on.
			if limit := pre.Local[i][j] + r; h > limit+tol*(1+limit) {
				ck.report(ev, "feasibility-backlog", "process[%d][%d]=%v exceeds backlog %v + routed %v", i, j, h, pre.Local[i][j], r)
			}
			work += h * jt.Demand
		}
		for k, stype := range c.DataCenters[i].Servers {
			b := act.Busy[i][k]
			if b < -tol {
				ck.report(ev, "feasibility-sign", "busy[%d][%d]=%v is negative", i, k, b)
			}
			if b > st.Avail[i][k]+tol*(1+st.Avail[i][k]) {
				ck.report(ev, "feasibility-availability", "busy[%d][%d]=%v exceeds availability n=%v", i, k, b, st.Avail[i][k])
			}
			provided += b * stype.Speed
		}
		if work > provided+tol*(1+provided) {
			ck.report(ev, "feasibility-capacity", "data center %d: work %v exceeds provided resource %v (eq. 11)", i, work, provided)
		}
		for r := 0; r < c.Aux(); r++ {
			var use float64
			for j := 0; j < c.J(); j++ {
				if r < len(c.JobTypes[j].AuxDemand) {
					use += act.Process[i][j] * c.JobTypes[j].AuxDemand[r]
				}
			}
			if capR := c.DataCenters[i].AuxCapacity[r]; use > capR+tol*(1+capR) {
				ck.report(ev, "feasibility-aux", "data center %d: auxiliary resource %d usage %v exceeds capacity %v", i, r, use, capR)
			}
		}
	}
}

// billedEnergy independently recomputes the billed energy cost of an action:
// the increment the batch draw adds on top of the base load under the tariff,
// or phi_i * sum_k b*p under the baseline linear pricing.
func (ck *Checker) billedEnergy(st *model.State, act *model.Action, trf tariff.Tariff) float64 {
	c := ck.cluster
	var total float64
	for i := 0; i < c.N(); i++ {
		var draw float64
		for k, stype := range c.DataCenters[i].Servers {
			draw += act.Busy[i][k] * stype.Power
		}
		if trf == nil {
			total += st.Price[i] * draw
			continue
		}
		base := st.BaseEnergyAt(i)
		total += trf.Cost(st.Price[i], base+draw) - trf.Cost(st.Price[i], base)
	}
	return total
}

// fairnessPenalty independently recomputes the paper's quadratic fairness
// penalty P = sum_m (r_m/R - gamma_m)^2 = -f(t) for an action's allocation.
func (ck *Checker) fairnessPenalty(st *model.State, act *model.Action, weights []float64) float64 {
	c := ck.cluster
	if weights == nil {
		weights = make([]float64, c.M())
		for m, a := range c.Accounts {
			weights[m] = a.Weight
		}
	}
	alloc := make([]float64, c.M())
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			jt := c.JobTypes[j]
			alloc[jt.Account] += act.Process[i][j] * jt.Demand
		}
	}
	total := st.TotalResource(c)
	var p float64
	for m, w := range weights {
		share := 0.0
		if total > 0 {
			share = alloc[m] / total
		}
		d := share - w
		p += d * d
	}
	return p
}
