package invariant_test

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sim"
)

const diffTol = 1e-6

func randLengths(rng *rand.Rand, c *model.Cluster, scale int) queue.Lengths {
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for j := range q.Central {
		q.Central[j] = float64(rng.Intn(scale))
	}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
		for j := range q.Local[i] {
			q.Local[i][j] = float64(rng.Intn(scale))
		}
	}
	return q
}

// TestCrossCheckSolversReferenceCluster runs the four beta = 0 solvers over
// slot problems sampled from the reference system and requires objective
// agreement within 1e-6 relatively.
func TestCrossCheckSolversReferenceCluster(t *testing.T) {
	const slots = 100
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := sim.CollectStates(in, slots)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var maxDiff float64
	for trial := 0; trial < 25; trial++ {
		st := states[rng.Intn(slots)]
		q := randLengths(rng, in.Cluster, 40)
		cfg := core.Config{V: []float64{0.1, 2.5, 7.5, 20}[trial%4]}
		res, err := invariant.CrossCheckSolvers(in.Cluster, cfg, st, q, diffTol)
		if err != nil {
			t.Fatalf("trial %d (V=%g): %v", trial, cfg.V, err)
		}
		if math.IsNaN(res.Greedy) {
			t.Fatalf("trial %d: greedy skipped on an aux-free cluster", trial)
		}
		if res.MaxRelDiff > maxDiff {
			maxDiff = res.MaxRelDiff
		}
	}
	t.Logf("max relative solver disagreement over 25 reference slots: %.3g", maxDiff)
}

// TestCrossCheckSolversHeterogeneous exercises multi-segment sites (several
// server generations per data center), where the greedy's exchange argument
// is subtler.
func TestCrossCheckSolversHeterogeneous(t *testing.T) {
	all := []int{0, 1}
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "west", Servers: []model.ServerType{
				{Name: "gen2", Speed: 0.8, Power: 1.1},
				{Name: "gen3", Speed: 1.0, Power: 0.9},
				{Name: "gen4", Speed: 1.3, Power: 0.8},
			}},
			{Name: "east", Servers: []model.ServerType{
				{Name: "gen2", Speed: 0.8, Power: 1.2},
				{Name: "gen4", Speed: 1.3, Power: 0.75},
			}},
		},
		JobTypes: []model.JobType{
			{Name: "short", Demand: 1, Eligible: all, Account: 0, MaxProcess: 50},
			{Name: "long", Demand: 5, Eligible: all, Account: 1, MaxProcess: 20},
			{Name: "west-only", Demand: 2, Eligible: []int{0}, Account: 0},
		},
		Accounts: []model.Account{{Name: "a", Weight: 0.6}, {Name: "b", Weight: 0.4}},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		st := model.NewState(c)
		for i := range st.Avail {
			for k := range st.Avail[i] {
				st.Avail[i][k] = float64(rng.Intn(12))
			}
			st.Price[i] = 0.2 + rng.Float64()
		}
		q := randLengths(rng, c, 30)
		cfg := core.Config{V: 1 + 10*rng.Float64()}
		if _, err := invariant.CrossCheckSolvers(c, cfg, st, q, diffTol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCrossCheckSolversAuxResources covers the footnote-3 vector-demand
// extension: the greedy does not apply, and the LP, Frank-Wolfe, and
// projected-gradient paths must still agree through the auxiliary rows.
func TestCrossCheckSolversAuxResources(t *testing.T) {
	all := []int{0, 1}
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}, AuxCapacity: []float64{25}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 2, Power: 1.4}}, AuxCapacity: []float64{18}},
		},
		JobTypes: []model.JobType{
			{Name: "light", Demand: 1, Eligible: all, Account: 0, AuxDemand: []float64{1}},
			{Name: "heavy", Demand: 3, Eligible: all, Account: 0, AuxDemand: []float64{6}},
		},
		Accounts: []model.Account{{Name: "acct", Weight: 1}},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		st := model.NewState(c)
		for i := range st.Avail {
			st.Avail[i][0] = float64(5 + rng.Intn(15))
			st.Price[i] = 0.3 + rng.Float64()
		}
		q := randLengths(rng, c, 25)
		cfg := core.Config{V: 1 + 8*rng.Float64()}
		res, err := invariant.CrossCheckSolvers(c, cfg, st, q, diffTol)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !math.IsNaN(res.Greedy) {
			t.Fatal("greedy should be skipped on aux clusters")
		}
	}
}

// TestCrossCheckSolversEmptyAndSaturated covers the degenerate corners: no
// backlog (every solver must return 0) and huge backlog with scarce servers
// (the capacity constraint binds everywhere).
func TestCrossCheckSolversEmptyAndSaturated(t *testing.T) {
	in, err := sim.NewReferenceInputs(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cluster
	states, _, err := sim.CollectStates(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := states[0]

	empty := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range empty.Local {
		empty.Local[i] = make([]float64, c.J())
	}
	res, err := invariant.CrossCheckSolvers(c, core.Config{V: 7.5}, st, empty, diffTol)
	if err != nil {
		t.Fatalf("empty backlog: %v", err)
	}
	if res.LP != 0 {
		t.Errorf("empty backlog LP objective %v, want 0", res.LP)
	}

	huge := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range huge.Local {
		huge.Local[i] = make([]float64, c.J())
		for j := range huge.Local[i] {
			huge.Local[i][j] = 5000
		}
	}
	if _, err := invariant.CrossCheckSolvers(c, core.Config{V: 7.5}, st, huge, diffTol); err != nil {
		t.Fatalf("saturated backlog: %v", err)
	}
}

// TestCrossCheckSolversQuadratic runs the beta > 0 mode over slot problems
// sampled from the reference system: vanilla Frank-Wolfe, away-step
// Frank-Wolfe, and projected gradient must agree on the convex slot
// objective within 1e-6 relatively, with every iterate feasible. The greedy
// and the LP solve linear slots only and must be marked NaN.
func TestCrossCheckSolversQuadratic(t *testing.T) {
	const slots = 50
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := sim.CollectStates(in, slots)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var maxDiff float64
	for trial := 0; trial < 12; trial++ {
		st := states[rng.Intn(slots)]
		q := randLengths(rng, in.Cluster, 40)
		cfg := core.Config{
			V:    []float64{2.5, 7.5, 20}[trial%3],
			Beta: []float64{1, 100, 5000}[trial/4],
		}
		res, err := invariant.CrossCheckSolvers(in.Cluster, cfg, st, q, diffTol)
		if err != nil {
			t.Fatalf("trial %d (V=%g beta=%g): %v", trial, cfg.V, cfg.Beta, err)
		}
		if !math.IsNaN(res.Greedy) || !math.IsNaN(res.LP) {
			t.Fatalf("trial %d: linear solvers ran on a quadratic slot (greedy=%v lp=%v)", trial, res.Greedy, res.LP)
		}
		if res.MaxRelDiff > maxDiff {
			maxDiff = res.MaxRelDiff
		}
	}
	t.Logf("max relative solver disagreement over 12 quadratic slots: %.3g", maxDiff)
}

// TestCrossCheckSolversQuadraticAux combines beta > 0 with auxiliary
// resource rows: the projection and the oracle must both honor the extra
// halfspaces while the fairness term couples the sites.
func TestCrossCheckSolversQuadraticAux(t *testing.T) {
	all := []int{0, 1}
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}, AuxCapacity: []float64{25}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 2, Power: 1.4}}, AuxCapacity: []float64{18}},
		},
		JobTypes: []model.JobType{
			{Name: "light", Demand: 1, Eligible: all, Account: 0, AuxDemand: []float64{1}},
			{Name: "heavy", Demand: 3, Eligible: all, Account: 1, AuxDemand: []float64{6}},
		},
		Accounts: []model.Account{{Name: "acct-a", Weight: 0.7}, {Name: "acct-b", Weight: 0.3}},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		st := model.NewState(c)
		for i := range st.Avail {
			st.Avail[i][0] = float64(5 + rng.Intn(15))
			st.Price[i] = 0.3 + rng.Float64()
		}
		q := randLengths(rng, c, 25)
		cfg := core.Config{V: 1 + 8*rng.Float64(), Beta: 10 * (1 + 50*rng.Float64())}
		if _, err := invariant.CrossCheckSolvers(c, cfg, st, q, diffTol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCrossCheckSolversBetaZeroRunsAway pins that the beta = 0 mode also
// cross-runs the away-step variant rather than silently skipping it.
func TestCrossCheckSolversBetaZeroRunsAway(t *testing.T) {
	in, err := sim.NewReferenceInputs(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := sim.CollectStates(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := randLengths(rand.New(rand.NewSource(1)), in.Cluster, 10)
	res, err := invariant.CrossCheckSolvers(in.Cluster, core.Config{V: 7.5}, states[0], q, diffTol)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FrankWolfeAway) {
		t.Error("away-step objective not computed at beta = 0")
	}
	if math.IsNaN(res.FrankWolfe) {
		t.Error("vanilla objective not computed at beta = 0")
	}
}

// TestCrossCheckDecomposed pins the decomposed solver's participation in the
// differential harness: it must run and agree on aux-free clusters in both
// the linear and quadratic arms, and sit out (NaN) when auxiliary resources
// put the slot outside its domain.
func TestCrossCheckDecomposed(t *testing.T) {
	const slots = 20
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := sim.CollectStates(in, slots)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	for trial, beta := range []float64{0, 100} {
		st := states[rng.Intn(slots)]
		q := randLengths(rng, in.Cluster, 40)
		cfg := core.Config{V: 7.5, Beta: beta}
		res, err := invariant.CrossCheckSolvers(in.Cluster, cfg, st, q, diffTol)
		if err != nil {
			t.Fatalf("trial %d (beta=%g): %v", trial, beta, err)
		}
		if math.IsNaN(res.Decomposed) {
			t.Fatalf("trial %d (beta=%g): decomposed solver sat out an aux-free slot", trial, beta)
		}
	}

	aux := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}, AuxCapacity: []float64{25}},
		},
		JobTypes: []model.JobType{
			{Name: "light", Demand: 1, Eligible: []int{0}, Account: 0, AuxDemand: []float64{1}},
		},
		Accounts: []model.Account{{Name: "acct", Weight: 1}},
	}
	if err := aux.Validate(); err != nil {
		t.Fatal(err)
	}
	st := model.NewState(aux)
	st.Avail[0][0] = 10
	st.Price[0] = 0.5
	res, err := invariant.CrossCheckSolvers(aux, core.Config{V: 2}, st, randLengths(rng, aux, 10), diffTol)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Decomposed) {
		t.Error("decomposed solver claimed an auxiliary-resource slot")
	}
}
