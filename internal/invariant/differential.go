package invariant

import (
	"fmt"
	"math"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

// SolverObjectives holds the slot objective value each beta = 0 solver
// reached on one identical slot input. NaN marks a solver that does not apply
// (the closed-form greedy cannot handle auxiliary resources).
type SolverObjectives struct {
	// Greedy is the closed-form greedy exchange's objective.
	Greedy float64
	// LP is the two-phase simplex objective.
	LP float64
	// FrankWolfe is the Frank-Wolfe objective over the same polytope.
	FrankWolfe float64
	// ProjGrad is the projected-gradient objective, using exact Euclidean
	// projection onto the slot polytope via dual bisection.
	ProjGrad float64
	// MaxRelDiff is the largest pairwise relative disagreement among the
	// applicable solvers.
	MaxRelDiff float64
}

// CrossCheckSolvers is the differential testing engine for the beta = 0 slot
// problem: it runs the greedy exchange, the simplex LP, Frank-Wolfe, and a
// projected-gradient solver on the identical slot input (cluster, config,
// state, backlogs) and returns an error wrapping ErrViolation when any two
// objective values disagree by more than tol relatively. The four solvers
// share no iterative machinery — greedy is combinatorial, the simplex pivots
// a tableau, Frank-Wolfe calls a linear oracle, and projected gradient only
// ever projects — so agreement is strong evidence each one is correct.
//
// tol <= 0 selects 1e-6. Clusters with auxiliary resources skip the greedy
// (it handles the single capacity constraint only) and compare the remaining
// three.
func CrossCheckSolvers(c *model.Cluster, cfg core.Config, st *model.State, q queue.Lengths, tol float64) (*SolverObjectives, error) {
	if cfg.Beta != 0 {
		return nil, fmt.Errorf("%w: differential engine handles beta = 0 only, got %v", ErrViolation, cfg.Beta)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	out := &SolverObjectives{Greedy: math.NaN()}

	if c.Aux() == 0 {
		_, _, obj, err := core.SolveSlotGreedy(c, cfg, st, q)
		if err != nil {
			return nil, fmt.Errorf("%w: greedy solver failed: %v", ErrViolation, err)
		}
		out.Greedy = obj
	}

	_, _, lpObj, err := core.SolveSlotLP(c, cfg, st, q)
	if err != nil {
		return nil, fmt.Errorf("%w: LP solver failed: %v", ErrViolation, err)
	}
	out.LP = lpObj

	cH, cB, hCap := core.SlotCoefficients(c, cfg, st, q)
	out.FrankWolfe = frankWolfeSlot(c, st, cH, cB, hCap)
	out.ProjGrad = projGradSlot(c, st, cH, cB, hCap)

	vals := []struct {
		name string
		v    float64
	}{
		{"greedy", out.Greedy},
		{"simplex", out.LP},
		{"frank-wolfe", out.FrankWolfe},
		{"projected-gradient", out.ProjGrad},
	}
	for a := 0; a < len(vals); a++ {
		if math.IsNaN(vals[a].v) {
			continue
		}
		for b := a + 1; b < len(vals); b++ {
			if math.IsNaN(vals[b].v) {
				continue
			}
			rel := math.Abs(vals[a].v-vals[b].v) / math.Max(1, math.Max(math.Abs(vals[a].v), math.Abs(vals[b].v)))
			if rel > out.MaxRelDiff {
				out.MaxRelDiff = rel
			}
			if rel > tol {
				return out, fmt.Errorf("%w: solvers disagree: %s=%v vs %s=%v (relative diff %.3g > %.3g)",
					ErrViolation, vals[a].name, vals[a].v, vals[b].name, vals[b].v, rel, tol)
			}
		}
	}
	return out, nil
}

// slotVars mirrors the core package's flat variable layout for the slot
// problem: the N*J processing variables h_{i,j} first (row-major), then each
// data center's busy-server variables b_{i,k}. core.SlotOracle documents this
// order as its contract.
type slotVars struct {
	nJ    int
	bOff  []int
	total int
}

func newSlotVars(c *model.Cluster) slotVars {
	l := slotVars{nJ: c.J(), bOff: make([]int, c.N()), total: c.N() * c.J()}
	for i := 0; i < c.N(); i++ {
		l.bOff[i] = l.total
		l.total += c.K(i)
	}
	return l
}

func (l slotVars) hIndex(i, j int) int { return i*l.nJ + j }

// frankWolfeSlot minimizes the linear slot objective with Frank-Wolfe over
// the scheduling polytope. The objective is linear, so the first oracle call
// lands on the optimal vertex and the exact line search jumps straight to it;
// the run still exercises the full gradient/oracle/gap machinery.
func frankWolfeSlot(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) float64 {
	l := newSlotVars(c)
	linear := make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			linear[l.hIndex(i, j)] = cH[i][j]
		}
		for k := 0; k < c.K(i); k++ {
			linear[l.bOff[i]+k] = cB[i][k]
		}
	}
	obj := &solve.Quadratic{Linear: linear}
	oracle := core.SlotOracle(c, st, hCap)
	res, err := solve.FrankWolfe(obj, oracle, make([]float64, l.total), solve.FWOptions{MaxIters: 50, Tol: 1e-12})
	if err != nil {
		return math.NaN()
	}
	return res.Value
}

// projGradSlot minimizes the linear slot objective with projected gradient
// descent, one independent run per data center (the constraints do not couple
// sites). The feasible set — the box [0,hCap]x[0,avail] intersected with the
// capacity halfspace sum_j d_j h_j - sum_k s_k b_k <= 0 and the auxiliary
// halfspaces — is projected onto exactly via dual bisection, so this path
// shares nothing with the oracle-based solvers.
func projGradSlot(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) float64 {
	var total float64
	for i := 0; i < c.N(); i++ {
		total += projGradSite(c, st, i, cH[i], cB[i], hCap[i])
	}
	return total
}

// halfspace is one constraint a.x <= b.
type halfspace struct {
	a []float64
	b float64
}

func projGradSite(c *model.Cluster, st *model.State, i int, cH, cB, hCap []float64) float64 {
	nJ, nK := c.J(), c.K(i)
	n := nJ + nK
	linear := make([]float64, n)
	hi := make([]float64, n)
	copy(linear, cH)
	copy(hi, hCap)
	for k := 0; k < nK; k++ {
		linear[nJ+k] = cB[k]
		hi[nJ+k] = st.Avail[i][k]
	}

	// Capacity coupling (eq. 11) plus the footnote-3 auxiliary rows.
	capRow := halfspace{a: make([]float64, n)}
	for j := 0; j < nJ; j++ {
		capRow.a[j] = c.JobTypes[j].Demand
	}
	for k, stype := range c.DataCenters[i].Servers {
		capRow.a[nJ+k] = -stype.Speed
	}
	hs := []halfspace{capRow}
	for r := 0; r < c.Aux(); r++ {
		row := halfspace{a: make([]float64, n), b: c.DataCenters[i].AuxCapacity[r]}
		nonzero := false
		for j := 0; j < nJ; j++ {
			if r < len(c.JobTypes[j].AuxDemand) {
				row.a[j] = c.JobTypes[j].AuxDemand[r]
				nonzero = nonzero || row.a[j] != 0
			}
		}
		if nonzero {
			hs = append(hs, row)
		}
	}

	project := func(x []float64) { projectPolytope(x, hi, hs) }
	obj := &solve.Quadratic{Linear: linear}
	res := solve.ProjectedGradient(obj, project, make([]float64, n), solve.PGOptions{
		MaxIters: 4000,
		Step:     64,
		Tol:      1e-12,
	})
	return res.Value
}

// projectPolytope overwrites x with its exact Euclidean projection onto the
// intersection of the box [0, hi] with every halfspace, by recursive
// bisection on the dual multipliers: the projection is
// clamp(y - sum_m lambda_m a_m, 0, hi) for KKT multipliers lambda_m >= 0,
// and partially maximizing the (concave) dual over all but the last
// multiplier leaves a concave one-dimensional reduced dual, so the last
// multiplier can be bisected with each evaluation a recursive projection
// onto the remaining halfspaces. Exact projection is what projected gradient
// needs for correctness — with it, a projected step that returns x exactly
// certifies stationarity. The result is always box-feasible.
func projectPolytope(x []float64, hi []float64, hs []halfspace) {
	y := append([]float64(nil), x...)
	projectRecursive(x, y, hi, hs)
}

// projectRecursive writes into x the projection of y onto the box
// intersected with every halfspace in hs. The base case clamps to the box;
// each level solves the scalar multiplier of its last halfspace by
// bisection, evaluating g(lambda) = a.P_rest(y - lambda*a) - b, which is
// nonincreasing in lambda because it is the gradient of the reduced dual.
// The upper bracket end is kept, so the result lands on the feasible side.
func projectRecursive(x, y, hi []float64, hs []halfspace) {
	n := len(y)
	if len(hs) == 0 {
		for t := 0; t < n; t++ {
			v := y[t]
			if v < 0 {
				v = 0
			}
			if v > hi[t] {
				v = hi[t]
			}
			x[t] = v
		}
		return
	}
	h := hs[len(hs)-1]
	rest := hs[:len(hs)-1]
	z := make([]float64, n)
	at := func(lambda float64) float64 {
		for t := 0; t < n; t++ {
			z[t] = y[t] - lambda*h.a[t]
		}
		projectRecursive(x, z, hi, rest)
		var dot float64
		for t := 0; t < n; t++ {
			dot += h.a[t] * x[t]
		}
		return dot
	}
	if at(0) <= h.b {
		return
	}
	lambdaHi := 1.0
	for at(lambdaHi) > h.b && lambdaHi < 1e18 {
		lambdaHi *= 2
	}
	lambdaLo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lambdaLo + lambdaHi)
		if mid == lambdaLo || mid == lambdaHi {
			break
		}
		if at(mid) > h.b {
			lambdaLo = mid
		} else {
			lambdaHi = mid
		}
	}
	at(lambdaHi)
}
