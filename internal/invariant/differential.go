package invariant

import (
	"fmt"
	"math"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
	"grefar/internal/tariff"
)

// SolverObjectives holds the slot objective value each solver reached on one
// identical slot input. NaN marks a solver that does not apply (the
// closed-form greedy cannot handle auxiliary resources; the greedy and the
// simplex solve linear slots only, so both sit out when beta > 0).
type SolverObjectives struct {
	// Greedy is the closed-form greedy exchange's objective.
	Greedy float64
	// LP is the two-phase simplex objective.
	LP float64
	// FrankWolfe is the vanilla Frank-Wolfe objective over the same polytope.
	FrankWolfe float64
	// FrankWolfeAway is the away-step Frank-Wolfe objective: same oracle and
	// feasible set as FrankWolfe, but entirely different step machinery
	// (active atom set, away directions, drop steps).
	FrankWolfeAway float64
	// ProjGrad is the projected-gradient objective, using exact Euclidean
	// projection onto the slot polytope via dual bisection.
	ProjGrad float64
	// Decomposed is the block-decomposed solver's objective (sharing ADMM
	// over per-site subproblems plus a Frank-Wolfe polish), evaluated on the
	// same dense objective as the monolithic solvers. NaN when the cluster
	// has auxiliary resources or the tariff is non-linear (the decomposed
	// solver rejects those configurations).
	Decomposed float64
	// MaxRelDiff is the largest pairwise relative disagreement among the
	// applicable solvers.
	MaxRelDiff float64
}

// compare runs the pairwise relative-difference check over the applicable
// solver objectives, recording MaxRelDiff and failing past tol.
func (out *SolverObjectives) compare(tol float64) error {
	vals := []struct {
		name string
		v    float64
	}{
		{"greedy", out.Greedy},
		{"simplex", out.LP},
		{"frank-wolfe", out.FrankWolfe},
		{"away-step frank-wolfe", out.FrankWolfeAway},
		{"projected-gradient", out.ProjGrad},
		{"decomposed", out.Decomposed},
	}
	for a := 0; a < len(vals); a++ {
		if math.IsNaN(vals[a].v) {
			continue
		}
		for b := a + 1; b < len(vals); b++ {
			if math.IsNaN(vals[b].v) {
				continue
			}
			rel := math.Abs(vals[a].v-vals[b].v) / math.Max(1, math.Max(math.Abs(vals[a].v), math.Abs(vals[b].v)))
			if rel > out.MaxRelDiff {
				out.MaxRelDiff = rel
			}
			if rel > tol {
				return fmt.Errorf("%w: solvers disagree: %s=%v vs %s=%v (relative diff %.3g > %.3g)",
					ErrViolation, vals[a].name, vals[a].v, vals[b].name, vals[b].v, rel, tol)
			}
		}
	}
	return nil
}

// CrossCheckSolvers is the differential testing engine for the per-slot
// processing problem. At beta = 0 it runs the greedy exchange, the simplex
// LP, both Frank-Wolfe variants, and a projected-gradient solver on the
// identical slot input (cluster, config, state, backlogs); the solvers share
// no iterative machinery — greedy is combinatorial, the simplex pivots a
// tableau, Frank-Wolfe calls a linear oracle, and projected gradient only
// ever projects — so agreement is strong evidence each one is correct. At
// beta > 0 the slot program is the convex QP of (14); the two one-shot
// linear solvers sit out (Greedy and LP are NaN) and the engine compares
// vanilla Frank-Wolfe, away-step Frank-Wolfe, and projected gradient on the
// exact objective core.Decide optimizes (core.SlotObjective), additionally
// verifying every final iterate is feasible for the scheduling polytope.
// An error wrapping ErrViolation reports any two objectives disagreeing by
// more than tol relatively, or an infeasible iterate.
//
// tol <= 0 selects 1e-6. Clusters with auxiliary resources skip the greedy
// (it handles the single capacity constraint only).
func CrossCheckSolvers(c *model.Cluster, cfg core.Config, st *model.State, q queue.Lengths, tol float64) (*SolverObjectives, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	if cfg.Beta != 0 {
		return crossCheckQuadratic(c, cfg, st, q, tol)
	}
	out := &SolverObjectives{Greedy: math.NaN()}

	if c.Aux() == 0 {
		_, _, obj, err := core.SolveSlotGreedy(c, cfg, st, q)
		if err != nil {
			return nil, fmt.Errorf("%w: greedy solver failed: %v", ErrViolation, err)
		}
		out.Greedy = obj
	}

	_, _, lpObj, err := core.SolveSlotLP(c, cfg, st, q)
	if err != nil {
		return nil, fmt.Errorf("%w: LP solver failed: %v", ErrViolation, err)
	}
	out.LP = lpObj

	cH, cB, hCap := core.SlotCoefficients(c, cfg, st, q)
	out.FrankWolfe = frankWolfeSlot(c, st, cH, cB, hCap, false)
	out.FrankWolfeAway = frankWolfeSlot(c, st, cH, cB, hCap, true)
	out.ProjGrad = projGradSlot(c, st, cH, cB, hCap)

	out.Decomposed = math.NaN()
	if decomposedApplies(c, cfg) {
		x, err := core.SolveSlotDecomposed(c, cfg, st, q)
		if err != nil {
			return nil, fmt.Errorf("%w: decomposed solver failed: %v", ErrViolation, err)
		}
		l := newSlotVars(c)
		if err := checkSlotFeasible(c, st, hCap, l, x); err != nil {
			return out, fmt.Errorf("%w: decomposed iterate infeasible: %v", ErrViolation, err)
		}
		var v float64
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				v += cH[i][j] * x[l.hIndex(i, j)]
			}
			for k := 0; k < c.K(i); k++ {
				v += cB[i][k] * x[l.bOff[i]+k]
			}
		}
		out.Decomposed = v
	}

	if err := out.compare(tol); err != nil {
		return out, err
	}
	return out, nil
}

// decomposedApplies reports whether the block-decomposed solver accepts this
// configuration: no auxiliary resources and a linear (or absent) tariff.
func decomposedApplies(c *model.Cluster, cfg core.Config) bool {
	if c.Aux() > 0 {
		return false
	}
	if cfg.Tariff != nil {
		if _, linear := cfg.Tariff.(tariff.Linear); !linear {
			return false
		}
	}
	return true
}

// crossCheckQuadratic is the beta > 0 arm of CrossCheckSolvers: vanilla
// Frank-Wolfe vs away-step Frank-Wolfe vs projected gradient on the convex
// slot objective, with feasibility verification of every final iterate.
//
// The away-step variant and projected gradient both converge linearly, so
// their objectives must agree strictly within tol. Vanilla Frank-Wolfe
// zigzags at O(1/k) on this QP — reaching 1e-6 relative agreement would take
// hundreds of thousands of oracle calls, which is precisely why the
// away-step variant exists — so it is checked against its own duality-gap
// certificate instead: its value may exceed the converged optimum by at most
// its certified gap, and may never undercut it (an undercut means the
// evaluation or the feasible set is wrong, not the convergence rate).
func crossCheckQuadratic(c *model.Cluster, cfg core.Config, st *model.State, q queue.Lengths, tol float64) (*SolverObjectives, error) {
	obj, hCap, err := core.SlotObjective(c, cfg, st, q)
	if err != nil {
		return nil, fmt.Errorf("%w: slot objective: %v", ErrViolation, err)
	}
	out := &SolverObjectives{Greedy: math.NaN(), LP: math.NaN()}
	l := newSlotVars(c)
	oracle := core.SlotOracle(c, st, hCap)

	opts := solve.FWOptions{MaxIters: 4000, Tol: 1e-10}
	van, err := solve.FrankWolfe(obj, oracle, make([]float64, l.total), opts)
	if err != nil {
		return nil, fmt.Errorf("%w: frank-wolfe failed: %v", ErrViolation, err)
	}
	out.FrankWolfe = van.Value

	opts.AwaySteps = true
	away, err := solve.FrankWolfe(obj, oracle, make([]float64, l.total), opts)
	if err != nil {
		return nil, fmt.Errorf("%w: away-step frank-wolfe failed: %v", ErrViolation, err)
	}
	out.FrankWolfeAway = away.Value

	pg := projGradQuadratic(c, st, obj, hCap)
	out.ProjGrad = pg.Value

	out.Decomposed = math.NaN()
	var decX []float64
	if decomposedApplies(c, cfg) {
		x, err := core.SolveSlotDecomposed(c, cfg, st, q)
		if err != nil {
			return nil, fmt.Errorf("%w: decomposed solver failed: %v", ErrViolation, err)
		}
		decX = x
		out.Decomposed = obj.Value(x)
	}

	for _, it := range []struct {
		name string
		x    []float64
	}{
		{"frank-wolfe", van.X},
		{"away-step frank-wolfe", away.X},
		{"projected-gradient", pg.X},
		{"decomposed", decX},
	} {
		if it.x == nil {
			continue
		}
		if err := checkSlotFeasible(c, st, hCap, l, it.x); err != nil {
			return out, fmt.Errorf("%w: %s iterate infeasible: %v", ErrViolation, it.name, err)
		}
	}

	// Strict agreement between the linearly convergent, mechanically
	// unrelated solvers: away-step Frank-Wolfe, projected gradient, and (when
	// applicable) the ADMM-decomposed solver, whose away-step polish gives it
	// the same convergence guarantee.
	strict := []struct {
		name string
		v    float64
	}{
		{"away-step frank-wolfe", away.Value},
		{"projected-gradient", pg.Value},
		{"decomposed", out.Decomposed},
	}
	for a := 0; a < len(strict); a++ {
		if math.IsNaN(strict[a].v) {
			continue
		}
		for b := a + 1; b < len(strict); b++ {
			if math.IsNaN(strict[b].v) {
				continue
			}
			s := math.Max(1, math.Max(math.Abs(strict[a].v), math.Abs(strict[b].v)))
			rel := math.Abs(strict[a].v-strict[b].v) / s
			if rel > out.MaxRelDiff {
				out.MaxRelDiff = rel
			}
			if rel > tol {
				return out, fmt.Errorf("%w: solvers disagree: %s=%v vs %s=%v (relative diff %.3g > %.3g)",
					ErrViolation, strict[a].name, strict[a].v, strict[b].name, strict[b].v, rel, tol)
			}
		}
	}
	scale := math.Max(1, math.Max(math.Abs(away.Value), math.Abs(pg.Value)))

	// Vanilla certificate check against the converged optimum.
	best := math.Min(away.Value, pg.Value)
	if van.Value < best-tol*scale {
		return out, fmt.Errorf("%w: vanilla frank-wolfe value %v undercuts the converged optimum %v",
			ErrViolation, van.Value, best)
	}
	if van.Value-best > van.Gap+tol*scale {
		return out, fmt.Errorf("%w: vanilla frank-wolfe value %v exceeds optimum %v by more than its certified gap %v",
			ErrViolation, van.Value, best, van.Gap)
	}
	return out, nil
}

// feasTol is the absolute slack allowed when verifying solver iterates
// against the polytope, matching the model package's action feasibility
// tolerance.
const feasTol = 1e-6

// checkSlotFeasible verifies a flat (h, b) iterate against the scheduling
// polytope: the boxes [0, hCap] and [0, avail], the per-site capacity
// coupling (eq. 11), and the auxiliary rows.
func checkSlotFeasible(c *model.Cluster, st *model.State, hCap [][]float64, l slotVars, x []float64) error {
	for i := 0; i < c.N(); i++ {
		var work, capWork float64
		for j := 0; j < c.J(); j++ {
			h := x[l.hIndex(i, j)]
			if h < -feasTol || h > hCap[i][j]+feasTol {
				return fmt.Errorf("site %d job %d: h=%v outside [0, %v]", i, j, h, hCap[i][j])
			}
			work += c.JobTypes[j].Demand * h
		}
		for k, stype := range c.DataCenters[i].Servers {
			b := x[l.bOff[i]+k]
			if b < -feasTol || b > st.Avail[i][k]+feasTol {
				return fmt.Errorf("site %d server %d: b=%v outside [0, %v]", i, k, b, st.Avail[i][k])
			}
			capWork += stype.Speed * b
		}
		if work > capWork+feasTol*(1+capWork) {
			return fmt.Errorf("site %d: work %v exceeds capacity %v", i, work, capWork)
		}
		for r := 0; r < c.Aux(); r++ {
			var usage float64
			for j := 0; j < c.J(); j++ {
				if r < len(c.JobTypes[j].AuxDemand) {
					usage += c.JobTypes[j].AuxDemand[r] * x[l.hIndex(i, j)]
				}
			}
			if capR := c.DataCenters[i].AuxCapacity[r]; usage > capR+feasTol*(1+capR) {
				return fmt.Errorf("site %d aux %d: usage %v exceeds capacity %v", i, r, usage, capR)
			}
		}
	}
	return nil
}

// slotVars mirrors the core package's flat variable layout for the slot
// problem: the N*J processing variables h_{i,j} first (row-major), then each
// data center's busy-server variables b_{i,k}. core.SlotOracle documents this
// order as its contract.
type slotVars struct {
	nJ    int
	bOff  []int
	total int
}

func newSlotVars(c *model.Cluster) slotVars {
	l := slotVars{nJ: c.J(), bOff: make([]int, c.N()), total: c.N() * c.J()}
	for i := 0; i < c.N(); i++ {
		l.bOff[i] = l.total
		l.total += c.K(i)
	}
	return l
}

func (l slotVars) hIndex(i, j int) int { return i*l.nJ + j }

// frankWolfeSlot minimizes the linear slot objective with Frank-Wolfe over
// the scheduling polytope. The objective is linear, so the first oracle call
// lands on the optimal vertex and the exact line search jumps straight to it;
// the run still exercises the full gradient/oracle/gap machinery (and, with
// away set, the active-atom bookkeeping of the away-step variant).
func frankWolfeSlot(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64, away bool) float64 {
	l := newSlotVars(c)
	linear := make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			linear[l.hIndex(i, j)] = cH[i][j]
		}
		for k := 0; k < c.K(i); k++ {
			linear[l.bOff[i]+k] = cB[i][k]
		}
	}
	obj := &solve.Quadratic{Linear: linear}
	oracle := core.SlotOracle(c, st, hCap)
	res, err := solve.FrankWolfe(obj, oracle, make([]float64, l.total), solve.FWOptions{MaxIters: 50, Tol: 1e-12, AwaySteps: away})
	if err != nil {
		return math.NaN()
	}
	return res.Value
}

// projGradSlot minimizes the linear slot objective with projected gradient
// descent, one independent run per data center (the constraints do not couple
// sites). The feasible set — the box [0,hCap]x[0,avail] intersected with the
// capacity halfspace sum_j d_j h_j - sum_k s_k b_k <= 0 and the auxiliary
// halfspaces — is projected onto exactly via dual bisection, so this path
// shares nothing with the oracle-based solvers.
func projGradSlot(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) float64 {
	var total float64
	for i := 0; i < c.N(); i++ {
		total += projGradSite(c, st, i, cH[i], cB[i], hCap[i])
	}
	return total
}

// halfspace is one constraint a.x <= b.
type halfspace struct {
	a []float64
	b float64
}

// siteConstraints builds one data center's feasible set over its local
// (h, b) subvector — the box upper bounds and the halfspaces of the capacity
// coupling (eq. 11) plus the footnote-3 auxiliary rows. Both
// projected-gradient paths share it: the per-site runs of the linear mode
// and the gather/scatter projection of the quadratic mode.
func siteConstraints(c *model.Cluster, st *model.State, i int, hCap []float64) (hi []float64, hs []halfspace) {
	nJ, nK := c.J(), c.K(i)
	n := nJ + nK
	hi = make([]float64, n)
	copy(hi, hCap)
	for k := 0; k < nK; k++ {
		hi[nJ+k] = st.Avail[i][k]
	}

	capRow := halfspace{a: make([]float64, n)}
	for j := 0; j < nJ; j++ {
		capRow.a[j] = c.JobTypes[j].Demand
	}
	for k, stype := range c.DataCenters[i].Servers {
		capRow.a[nJ+k] = -stype.Speed
	}
	hs = []halfspace{capRow}
	for r := 0; r < c.Aux(); r++ {
		row := halfspace{a: make([]float64, n), b: c.DataCenters[i].AuxCapacity[r]}
		nonzero := false
		for j := 0; j < nJ; j++ {
			if r < len(c.JobTypes[j].AuxDemand) {
				row.a[j] = c.JobTypes[j].AuxDemand[r]
				nonzero = nonzero || row.a[j] != 0
			}
		}
		if nonzero {
			hs = append(hs, row)
		}
	}
	return hi, hs
}

func projGradSite(c *model.Cluster, st *model.State, i int, cH, cB, hCap []float64) float64 {
	nJ, nK := c.J(), c.K(i)
	n := nJ + nK
	linear := make([]float64, n)
	copy(linear, cH)
	for k := 0; k < nK; k++ {
		linear[nJ+k] = cB[k]
	}
	hi, hs := siteConstraints(c, st, i, hCap)

	project := func(x []float64) { projectPolytope(x, hi, hs) }
	obj := &solve.Quadratic{Linear: linear}
	res := solve.ProjectedGradient(obj, project, make([]float64, n), solve.PGOptions{
		MaxIters: 4000,
		Step:     64,
		Tol:      1e-12,
	})
	return res.Value
}

// projGradQuadratic minimizes the full beta > 0 slot objective with
// projected gradient descent over the whole concatenated (h, b) vector. The
// fairness term couples sites through shared accounts, so the objective
// cannot be split per site — but the constraints still can: the feasible set
// is a product of per-site polytopes, so the Euclidean projection decomposes
// into independent exact per-site projections, gathered from and scattered
// back to the site's non-contiguous slice of the flat vector.
func projGradQuadratic(c *model.Cluster, st *model.State, obj solve.Objective, hCap [][]float64) solve.PGResult {
	l := newSlotVars(c)
	type siteProj struct {
		idx []int // flat-vector index of each local variable
		hi  []float64
		hs  []halfspace
		buf []float64
	}
	sites := make([]siteProj, c.N())
	for i := 0; i < c.N(); i++ {
		nJ, nK := c.J(), c.K(i)
		sp := siteProj{idx: make([]int, nJ+nK), buf: make([]float64, nJ+nK)}
		for j := 0; j < nJ; j++ {
			sp.idx[j] = l.hIndex(i, j)
		}
		for k := 0; k < nK; k++ {
			sp.idx[nJ+k] = l.bOff[i] + k
		}
		sp.hi, sp.hs = siteConstraints(c, st, i, hCap[i])
		sites[i] = sp
	}
	project := func(x []float64) {
		for s := range sites {
			sp := &sites[s]
			for t, id := range sp.idx {
				sp.buf[t] = x[id]
			}
			projectPolytope(sp.buf, sp.hi, sp.hs)
			for t, id := range sp.idx {
				x[id] = sp.buf[t]
			}
		}
	}
	return solve.ProjectedGradient(obj, project, make([]float64, l.total), solve.PGOptions{
		MaxIters: 4000,
		Step:     64,
		Tol:      1e-12,
	})
}

// projectPolytope overwrites x with its exact Euclidean projection onto the
// intersection of the box [0, hi] with every halfspace, by recursive
// bisection on the dual multipliers: the projection is
// clamp(y - sum_m lambda_m a_m, 0, hi) for KKT multipliers lambda_m >= 0,
// and partially maximizing the (concave) dual over all but the last
// multiplier leaves a concave one-dimensional reduced dual, so the last
// multiplier can be bisected with each evaluation a recursive projection
// onto the remaining halfspaces. Exact projection is what projected gradient
// needs for correctness — with it, a projected step that returns x exactly
// certifies stationarity. The result is always box-feasible.
func projectPolytope(x []float64, hi []float64, hs []halfspace) {
	y := append([]float64(nil), x...)
	projectRecursive(x, y, hi, hs)
}

// projectRecursive writes into x the projection of y onto the box
// intersected with every halfspace in hs. The base case clamps to the box;
// each level solves the scalar multiplier of its last halfspace by
// bisection, evaluating g(lambda) = a.P_rest(y - lambda*a) - b, which is
// nonincreasing in lambda because it is the gradient of the reduced dual.
// The upper bracket end is kept, so the result lands on the feasible side.
func projectRecursive(x, y, hi []float64, hs []halfspace) {
	n := len(y)
	if len(hs) == 0 {
		for t := 0; t < n; t++ {
			v := y[t]
			if v < 0 {
				v = 0
			}
			if v > hi[t] {
				v = hi[t]
			}
			x[t] = v
		}
		return
	}
	h := hs[len(hs)-1]
	rest := hs[:len(hs)-1]
	z := make([]float64, n)
	at := func(lambda float64) float64 {
		for t := 0; t < n; t++ {
			z[t] = y[t] - lambda*h.a[t]
		}
		projectRecursive(x, z, hi, rest)
		var dot float64
		for t := 0; t < n; t++ {
			dot += h.a[t] * x[t]
		}
		return dot
	}
	if at(0) <= h.b {
		return
	}
	lambdaHi := 1.0
	for at(lambdaHi) > h.b && lambdaHi < 1e18 {
		lambdaHi *= 2
	}
	lambdaLo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lambdaLo + lambdaHi)
		if mid == lambdaLo || mid == lambdaHi {
			break
		}
		if at(mid) > h.b {
			lambdaLo = mid
		} else {
			lambdaHi = mid
		}
	}
	at(lambdaHi)
}
