package sim

import (
	"fmt"

	"grefar/internal/fairness"
	"grefar/internal/invariant"
	"grefar/internal/metrics"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/telemetry"
)

// Engine is the resumable slot-stepping core of the simulator: the exact
// control loop Run executes, exposed one slot at a time so long-running
// consumers (the serving mode's Session) can drive it from a wall clock or an
// HTTP tick, inject externally ingested arrivals, and checkpoint/restore its
// durable state across restarts.
//
// Run is a thin wrapper — NewEngine plus Options.Slots calls to Step — so the
// batch and serving paths share one implementation and the golden traces pin
// both at once.
//
// An Engine is single-owner like the scheduler workspace it drives: Step and
// the accessors must not be called concurrently.
type Engine struct {
	in   Inputs
	s    sched.Scheduler
	opt  Options
	c    *model.Cluster
	fair fairness.Function

	qs *queue.Set
	st *model.State

	obs        telemetry.SlotObserver
	checker    *invariant.Checker
	wantDetail bool

	energy, fairScore  *metrics.Running
	localDelay         []*metrics.Ratio
	workAvg            []*metrics.Running
	centralDelay       *metrics.Ratio
	hists              []*metrics.Histogram
	maxQ               metrics.Max
	avgQ               metrics.Running
	arrived, processed float64

	res           *Result
	admissionLens []float64
	zeroArrivals  []int
	arrivalsBuf   []int
	t             int
}

// NewEngine validates the inputs and builds a ready-to-step engine at slot 0.
// Unlike Run, the workload generator is optional: an engine without one sees
// only the arrivals injected through Step's extra parameter (the serving
// mode's ingest stream). Options.Slots is ignored — the horizon is however
// many Step calls the caller makes.
func NewEngine(in Inputs, s sched.Scheduler, opt Options) (*Engine, error) {
	c := in.Cluster
	if c == nil {
		return nil, fmt.Errorf("%w: nil cluster", ErrBadInputs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(in.Prices) != c.N() {
		return nil, fmt.Errorf("%w: got %d price sources, cluster has %d data centers", ErrBadInputs, len(in.Prices), c.N())
	}
	if in.Availability == nil {
		return nil, fmt.Errorf("%w: availability is required", ErrBadInputs)
	}
	fair := in.Fairness
	if fair == nil {
		weights := make([]float64, c.M())
		for m, a := range c.Accounts {
			weights[m] = a.Weight
		}
		var err error
		fair, err = fairness.NewQuadratic(weights)
		if err != nil {
			return nil, err
		}
	}

	e := &Engine{in: in, s: s, opt: opt, c: c, fair: fair}
	e.qs = queue.NewSet(c)
	e.st = model.NewState(c)

	// Compose the run observer with the invariant checker when checking is
	// on; collect slot details only when something downstream consumes them.
	e.obs = opt.Observer
	if opt.Check {
		e.checker = invariant.NewChecker(c, invariant.CheckerOptions{})
		e.obs = telemetry.Multi(e.obs, e.checker)
	}
	e.wantDetail = telemetry.WantsDetail(e.obs)

	e.energy = metrics.NewRunning(opt.RecordSeries)
	e.fairScore = metrics.NewRunning(opt.RecordSeries)
	e.localDelay = make([]*metrics.Ratio, c.N())
	e.workAvg = make([]*metrics.Running, c.N())
	for i := range e.localDelay {
		e.localDelay[i] = metrics.NewRatio(opt.RecordSeries)
		e.workAvg[i] = metrics.NewRunning(false)
	}
	e.centralDelay = metrics.NewRatio(false)
	e.hists = make([]*metrics.Histogram, c.N())
	for i := range e.hists {
		var err error
		e.hists[i], err = metrics.NewHistogram(metrics.DelayBounds())
		if err != nil {
			return nil, err
		}
	}

	e.res = &Result{SchedulerName: s.Name()}
	if opt.RecordSeries {
		e.res.WorkSeries = make([][]float64, c.N())
		e.res.PriceSeries = make([][]float64, c.N())
	}

	if in.BaseLoad != nil {
		if len(in.BaseLoad) != c.N() {
			return nil, fmt.Errorf("%w: got %d base-load sources, cluster has %d data centers", ErrBadInputs, len(in.BaseLoad), c.N())
		}
		e.st.BaseEnergy = make([]float64, c.N())
	}
	if opt.Admission != nil {
		e.admissionLens = make([]float64, c.J())
	}
	e.zeroArrivals = make([]int, c.J())
	e.arrivalsBuf = make([]int, c.J())
	return e, nil
}

// Slot returns the index of the next slot Step will execute (equivalently,
// the number of slots executed so far).
func (e *Engine) Slot() int { return e.t }

// Lengths returns a snapshot of the current queue backlogs Theta(t).
func (e *Engine) Lengths() queue.Lengths { return e.qs.Lengths() }

// Scheduler returns the policy currently driving the engine.
func (e *Engine) Scheduler() sched.Scheduler { return e.s }

// SetScheduler swaps the driving policy at a slot boundary — the serving
// mode's hot reload of V/beta/tariff. The caller owns the lifecycle of the
// old scheduler; queue state is untouched.
func (e *Engine) SetScheduler(s sched.Scheduler) {
	e.s = s
	e.res.SchedulerName = s.Name()
}

// CheckerErr surfaces the invariant checker's verdict (nil when checking is
// off or every slot passed).
func (e *Engine) CheckerErr() error {
	if e.checker == nil {
		return nil
	}
	return e.checker.Err()
}

// Step executes one slot: reveal x(t), decide, apply, admit this slot's
// arrivals, and accumulate metrics. The slot's arrivals are the workload
// generator's output (when a generator is configured) plus extra, the
// externally ingested counts per job type (nil means none). Errors carry the
// slot context exactly as Run reports them.
func (e *Engine) Step(extra []int) error {
	c, st, t := e.c, e.st, e.t
	in, opt := &e.in, &e.opt
	res := e.res

	// Reveal x(t).
	avail := in.Availability.At(t)
	for i := 0; i < c.N(); i++ {
		copy(st.Avail[i], avail[i])
		st.Price[i] = in.Prices[i].At(t)
		if in.BaseLoad != nil {
			st.BaseEnergy[i] = in.BaseLoad[i].At(t)
		}
	}
	if err := st.Validate(c); err != nil {
		return fmt.Errorf("slot %d: bad state: %w", t, err)
	}

	// Decide and apply.
	lengths := e.qs.Lengths()
	act, err := e.s.Decide(t, st, lengths)
	if err != nil {
		return fmt.Errorf("slot %d: %s: %w", t, e.s.Name(), err)
	}
	if opt.ValidateActions {
		if err := act.Validate(c, st); err != nil {
			return fmt.Errorf("slot %d: %s produced an infeasible action: %w", t, e.s.Name(), err)
		}
	}
	flows, err := e.qs.Apply(t, act)
	if err != nil {
		return fmt.Errorf("slot %d: applying action: %w", t, err)
	}
	arrivals := e.zeroArrivals
	if in.Workload != nil {
		arrivals = in.Workload.Arrivals(t)
	}
	if extra != nil {
		if len(extra) != c.J() {
			return fmt.Errorf("slot %d: got %d extra arrival counts, cluster has %d job types", t, len(extra), c.J())
		}
		buf := e.arrivalsBuf
		for j := range buf {
			a := extra[j]
			if a < 0 {
				return fmt.Errorf("slot %d: job type %d: negative extra arrivals %d", t, j, a)
			}
			buf[j] = arrivals[j] + a
		}
		arrivals = buf
	}
	admitted := arrivals
	var slotDropped float64
	if opt.Admission != nil {
		lens := e.admissionLens
		for j := range lens {
			lens[j] = e.qs.CentralLen(j)
		}
		admitted = opt.Admission.Admit(t, arrivals, lens)
		if len(admitted) != c.J() {
			return fmt.Errorf("slot %d: admission policy returned %d counts, want %d", t, len(admitted), c.J())
		}
		for j := range admitted {
			if admitted[j] < 0 || admitted[j] > arrivals[j] {
				return fmt.Errorf("slot %d: admission policy admitted %d of %d for job type %d",
					t, admitted[j], arrivals[j], j)
			}
			slotDropped += float64(arrivals[j] - admitted[j])
		}
	}
	if err := e.qs.Arrive(t, admitted); err != nil {
		return fmt.Errorf("slot %d: arrivals: %w", t, err)
	}
	res.TotalDropped += slotDropped

	// Metrics.
	slotEnergy := act.BilledCost(c, st, in.Tariff)
	slotFairness := e.fair.Score(act.AccountWork(c), st.TotalResource(c))
	e.energy.Add(slotEnergy)
	e.fairScore.Add(slotFairness)
	var slotProcessed float64
	for i := 0; i < c.N(); i++ {
		var dSum, dCount float64
		for j := 0; j < c.J(); j++ {
			dSum += flows.LocalDelaySum[i][j]
			dCount += flows.Processed[i][j]
			e.processed += flows.Processed[i][j]
			slotProcessed += flows.Processed[i][j]
		}
		e.localDelay[i].Add(dSum, dCount)
		for _, sample := range flows.LocalDelaySamples[i] {
			e.hists[i].Add(sample.Delay, sample.Jobs)
		}
		e.workAvg[i].Add(act.WorkAt(c, i))
		if opt.RecordSeries {
			res.WorkSeries[i] = append(res.WorkSeries[i], act.WorkAt(c, i))
			res.PriceSeries[i] = append(res.PriceSeries[i], st.Price[i])
		}
	}
	var slotArrived float64
	for j := 0; j < c.J(); j++ {
		e.centralDelay.Add(flows.CentralDelaySum[j], flows.CentralRouted[j])
		e.arrived += float64(arrivals[j])
		slotArrived += float64(arrivals[j])
	}
	post := e.qs.Lengths()
	for _, v := range post.Central {
		e.maxQ.Add(v)
	}
	for i := range post.Local {
		for _, v := range post.Local[i] {
			e.maxQ.Add(v)
		}
	}
	e.avgQ.Add(post.Sum())

	if e.obs != nil {
		ev := slotEvent(c, e.s.Name(), t, post, act, st, in.Tariff,
			slotEnergy, slotFairness, slotArrived, slotProcessed, slotDropped)
		if e.wantDetail {
			ev.Detail = &telemetry.SlotDetail{
				State:     st.Clone(),
				Action:    act.Clone(),
				Pre:       lengths,
				Post:      post,
				Arrivals:  append([]int(nil), admitted...),
				Routed:    flows.Routed,
				Processed: flows.Processed,
			}
		}
		e.obs.ObserveSlot(ev)
	}
	if e.checker != nil {
		if err := e.checker.Err(); err != nil {
			return fmt.Errorf("slot %d: %s: %w", t, e.s.Name(), err)
		}
	}
	e.t++
	return nil
}

// Result finalizes the aggregate metrics over the slots executed so far. The
// returned Result is owned by the engine and remains valid (but stale) after
// further Step calls; Run calls it exactly once at the horizon.
func (e *Engine) Result() *Result {
	c, res := e.c, e.res
	res.Slots = e.t
	res.AvgEnergy = e.energy.Mean()
	res.EnergySeries = e.energy.Series()
	res.AvgFairness = e.fairScore.Mean()
	res.FairnessSeries = e.fairScore.Series()
	res.AvgLocalDelay = make([]float64, c.N())
	res.AvgWorkPerDC = make([]float64, c.N())
	if e.opt.RecordSeries {
		res.LocalDelaySeries = make([][]float64, c.N())
	}
	for i := 0; i < c.N(); i++ {
		res.AvgLocalDelay[i] = e.localDelay[i].Value()
		res.AvgWorkPerDC[i] = e.workAvg[i].Mean()
		if e.opt.RecordSeries {
			res.LocalDelaySeries[i] = e.localDelay[i].Series()
		}
	}
	res.AvgCentralDelay = e.centralDelay.Value()
	res.DelayHistograms = e.hists
	res.MaxQueue = e.maxQ.Value()
	res.AvgQueue = e.avgQ.Mean()
	res.FinalBacklog = e.qs.Lengths().Sum()
	res.TotalArrived = e.arrived
	res.TotalProcessed = e.processed
	return res
}

// EngineState is the durable state of an engine: what must survive a restart
// for the queue trajectory to continue byte-identically. Aggregate metrics
// (running averages, delay histograms, recorded series) are derived
// observations of the trajectory, not part of it — a restored engine starts
// them fresh, and its Result covers the slots since restore. All fields are
// exported so the state serializes with encoding/gob.
type EngineState struct {
	// Slot is the next slot index to execute.
	Slot int
	// Queues is the full queue.Set snapshot: every FIFO cohort with its
	// arrival slot, so restored delay measurements stay exact.
	Queues []byte
	// TotalArrived, TotalProcessed, and TotalDropped are the lifetime job
	// counters, kept durable so conservation accounting spans restarts.
	TotalArrived, TotalProcessed, TotalDropped float64
}

// ExportState captures the engine's durable state. Safe to call between any
// two Steps; the snapshot owns its memory.
func (e *Engine) ExportState() (*EngineState, error) {
	qs, err := e.qs.Snapshot()
	if err != nil {
		return nil, err
	}
	return &EngineState{
		Slot:           e.t,
		Queues:         qs,
		TotalArrived:   e.arrived,
		TotalProcessed: e.processed,
		TotalDropped:   e.res.TotalDropped,
	}, nil
}

// RestoreState rewinds a freshly built engine onto a previously exported
// trajectory point: queue contents (with per-cohort arrival slots), the slot
// counter, and the lifetime job counters. The engine must have been built
// for the same cluster shape. Aggregate metrics restart from zero — see
// EngineState for what is durable versus derived.
func (e *Engine) RestoreState(st *EngineState) error {
	if st == nil {
		return nil
	}
	if st.Slot < 0 {
		return fmt.Errorf("%w: negative slot counter %d", ErrBadInputs, st.Slot)
	}
	if err := e.qs.Restore(st.Queues); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInputs, err)
	}
	e.t = st.Slot
	e.arrived = st.TotalArrived
	e.processed = st.TotalProcessed
	e.res.TotalDropped = st.TotalDropped
	return nil
}
