package sim

import (
	"reflect"
	"testing"

	"grefar/internal/core"
	"grefar/internal/queue"
	"grefar/internal/sched"
)

// TestEngineMatchesRun checks that stepping an Engine manually produces the
// exact Result Run does — Run is a thin wrapper and must stay one.
func TestEngineMatchesRun(t *testing.T) {
	const slots = 48
	opt := Options{Slots: slots, RecordSeries: true, ValidateActions: true, Check: true}

	in1 := refInputs(t, slots)
	g1, err := core.New(in1.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(in1, g1, opt)
	if err != nil {
		t.Fatal(err)
	}

	in2 := refInputs(t, slots)
	g2, err := core.New(in2.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in2, g2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < slots; s++ {
		if got := e.Slot(); got != s {
			t.Fatalf("Slot() = %d before step %d", got, s)
		}
		if err := e.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CheckerErr(); err != nil {
		t.Fatal(err)
	}
	if got := e.Result(); !reflect.DeepEqual(got, want) {
		t.Fatalf("engine result diverged from Run:\n got %+v\nwant %+v", got, want)
	}
}

// steppedArrivals is a deterministic generator for splitting arrivals between
// the workload path and the extra path.
type steppedArrivals struct {
	counts [][]int
}

func (g *steppedArrivals) Arrivals(t int) []int { return g.counts[t%len(g.counts)] }

// TestEngineExtraArrivals checks that arrivals injected through Step's extra
// parameter land in the queues exactly like generator arrivals: a run whose
// generator emits a+b matches a run whose generator emits a with b injected.
func TestEngineExtraArrivals(t *testing.T) {
	const slots = 24
	base := refInputs(t, slots)
	c := base.Cluster
	full := make([][]int, slots)
	half := make([][]int, slots)
	extra := make([][]int, slots)
	for s := 0; s < slots; s++ {
		full[s] = make([]int, c.J())
		half[s] = make([]int, c.J())
		extra[s] = make([]int, c.J())
		for j := 0; j < c.J(); j++ {
			full[s][j] = (s + 2*j) % 5
			half[s][j] = full[s][j] / 2
			extra[s][j] = full[s][j] - half[s][j]
		}
	}

	run := func(gen *steppedArrivals, extras [][]int) *Result {
		t.Helper()
		in := refInputs(t, slots)
		in.Workload = gen
		g, err := core.New(in.Cluster, core.Config{V: 7.5})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(in, g, Options{ValidateActions: true, Check: true})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < slots; s++ {
			var ex []int
			if extras != nil {
				ex = extras[s]
			}
			if err := e.Step(ex); err != nil {
				t.Fatal(err)
			}
		}
		return e.Result()
	}

	want := run(&steppedArrivals{counts: full}, nil)
	got := run(&steppedArrivals{counts: half}, extra)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extra-arrival run diverged from combined-generator run:\n got %+v\nwant %+v", got, want)
	}

	// No generator at all: the extra stream is the only arrival source.
	in := refInputs(t, slots)
	in.Workload = nil
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, g, Options{ValidateActions: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < slots; s++ {
		if err := e.Step(full[s]); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Result(); got.TotalArrived != want.TotalArrived {
		t.Fatalf("generator-less run arrived %v jobs, want %v", got.TotalArrived, want.TotalArrived)
	}

	// Malformed extras are rejected with slot context.
	if err := e.Step(make([]int, c.J()+1)); err == nil {
		t.Fatal("wrong-length extra arrivals accepted")
	}
	neg := make([]int, c.J())
	neg[0] = -1
	if err := e.Step(neg); err == nil {
		t.Fatal("negative extra arrivals accepted")
	}
}

// TestEngineStateRoundTrip runs N slots, exports engine + scheduler state
// into fresh instances, runs M more, and requires the continued queue
// trajectory and totals to match the uninterrupted run exactly.
func TestEngineStateRoundTrip(t *testing.T) {
	const slots, split = 40, 20
	cfg := core.Config{V: 7.5, Beta: 100, WarmStart: true}
	opt := Options{ValidateActions: true, Check: true}

	trajectory := func(e *Engine, from, to int) []queue.Lengths {
		t.Helper()
		var traj []queue.Lengths
		for s := from; s < to; s++ {
			if err := e.Step(nil); err != nil {
				t.Fatal(err)
			}
			traj = append(traj, e.Lengths())
		}
		return traj
	}

	inFull := refInputs(t, slots)
	gFull, err := core.New(inFull.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eFull, err := NewEngine(inFull, gFull, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantTraj := trajectory(eFull, 0, slots)
	want := eFull.Result()

	inA := refInputs(t, slots)
	gA, err := core.New(inA.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eA, err := NewEngine(inA, gA, opt)
	if err != nil {
		t.Fatal(err)
	}
	trajectory(eA, 0, split)
	engSt, err := eA.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	schedSt := gA.ExportState()

	inB := refInputs(t, slots)
	gB, err := core.New(inB.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := gB.RestoreState(schedSt); err != nil {
		t.Fatal(err)
	}
	eB, err := NewEngine(inB, gB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := eB.RestoreState(engSt); err != nil {
		t.Fatal(err)
	}
	if got := eB.Slot(); got != split {
		t.Fatalf("restored engine at slot %d, want %d", got, split)
	}
	gotTraj := trajectory(eB, split, slots)
	if !reflect.DeepEqual(gotTraj, wantTraj[split:]) {
		t.Fatal("restored engine's queue trajectory diverged from the uninterrupted run")
	}
	got := eB.Result()
	if got.TotalArrived != want.TotalArrived || got.TotalProcessed != want.TotalProcessed ||
		got.FinalBacklog != want.FinalBacklog || got.TotalDropped != want.TotalDropped {
		t.Fatalf("restored engine totals diverged: got arrived=%v processed=%v backlog=%v dropped=%v, want %v/%v/%v/%v",
			got.TotalArrived, got.TotalProcessed, got.FinalBacklog, got.TotalDropped,
			want.TotalArrived, want.TotalProcessed, want.FinalBacklog, want.TotalDropped)
	}
	if err := eB.CheckerErr(); err != nil {
		t.Fatal(err)
	}

	// Restores reject garbage but a nil state is a no-op.
	if err := eB.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if err := eB.RestoreState(&EngineState{Slot: -1}); err == nil {
		t.Fatal("negative slot counter accepted")
	}
	if err := eB.RestoreState(&EngineState{Slot: 1, Queues: []byte("junk")}); err == nil {
		t.Fatal("corrupt queue snapshot accepted")
	}
}

// TestEngineSetScheduler checks hot-swapping the policy at a slot boundary.
func TestEngineSetScheduler(t *testing.T) {
	const slots = 8
	in := refInputs(t, slots)
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, g, Options{ValidateActions: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < slots/2; s++ {
		if err := e.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	e.SetScheduler(a)
	if e.Scheduler() != a {
		t.Fatal("Scheduler() does not report the swapped policy")
	}
	for s := slots / 2; s < slots; s++ {
		if err := e.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if res := e.Result(); res.SchedulerName != a.Name() || res.Slots != slots {
		t.Fatalf("post-swap result: scheduler %q slots %d", res.SchedulerName, res.Slots)
	}
}
