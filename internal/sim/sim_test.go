package sim

import (
	"math"
	"testing"

	"grefar/internal/core"
	"grefar/internal/price"
	"grefar/internal/sched"
)

func refInputs(t *testing.T, slots int) Inputs {
	t.Helper()
	in, err := NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func runSched(t *testing.T, in Inputs, s sched.Scheduler, slots int) *Result {
	t.Helper()
	res, err := Run(in, s, Options{Slots: slots, RecordSeries: true, ValidateActions: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	in := refInputs(t, 10)
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Inputs{}, a, Options{Slots: 1}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(in, a, Options{Slots: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := in
	bad.Prices = bad.Prices[:1]
	if _, err := Run(bad, a, Options{Slots: 1}); err == nil {
		t.Error("short price slice accepted")
	}
	bad = in
	bad.Workload = nil
	if _, err := Run(bad, a, Options{Slots: 1}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestAlwaysConservationAndDelay(t *testing.T) {
	in := refInputs(t, 24*60)
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	res := runSched(t, in, a, 24*60)

	// Conservation: arrived = processed + still queued.
	if math.Abs(res.TotalArrived-res.TotalProcessed-res.FinalBacklog) > 1e-6 {
		t.Errorf("conservation violated: arrived %v, processed %v, backlog %v",
			res.TotalArrived, res.TotalProcessed, res.FinalBacklog)
	}
	// The paper: Always' average delay is expected to be about one.
	if res.AvgLocalDelay[0] < 0.9 || res.AvgLocalDelay[0] > 1.5 {
		t.Errorf("Always delay in DC1 = %v, want ~1", res.AvgLocalDelay[0])
	}
	if res.AvgCentralDelay < 0.9 || res.AvgCentralDelay > 1.5 {
		t.Errorf("Always central delay = %v, want ~1", res.AvgCentralDelay)
	}
	if res.SchedulerName != "always" {
		t.Errorf("SchedulerName = %q", res.SchedulerName)
	}
}

func TestGreFarStableQueues(t *testing.T) {
	in := refInputs(t, 24*60)
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	res := runSched(t, in, g, 24*60)
	// Queues must stay bounded (Theorem 1a): backlog comparable to a few
	// days of arrivals at most, not growing with the 60-day horizon.
	if res.MaxQueue > 2000 {
		t.Errorf("max queue %v suggests instability", res.MaxQueue)
	}
	if math.Abs(res.TotalArrived-res.TotalProcessed-res.FinalBacklog) > 1e-6 {
		t.Errorf("conservation violated")
	}
	// GreFar must actually process the work (not idle forever).
	if res.TotalProcessed < 0.8*res.TotalArrived {
		t.Errorf("processed only %v of %v arrived", res.TotalProcessed, res.TotalArrived)
	}
}

func TestGreFarCheaperThanAlways(t *testing.T) {
	// The headline result (Fig. 4a): GreFar's average energy cost is lower
	// than Always', at the price of higher delay.
	slots := 24 * 60
	in := refInputs(t, slots)
	a, _ := sched.NewAlways(in.Cluster)
	g, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	ra := runSched(t, in, a, slots)
	rg := runSched(t, in, g, slots)
	if rg.AvgEnergy >= ra.AvgEnergy {
		t.Errorf("GreFar energy %v not below Always %v", rg.AvgEnergy, ra.AvgEnergy)
	}
	if rg.AvgLocalDelay[0] <= ra.AvgLocalDelay[0] {
		t.Errorf("GreFar delay %v should exceed Always %v", rg.AvgLocalDelay[0], ra.AvgLocalDelay[0])
	}
}

func TestVTradeoff(t *testing.T) {
	// Fig. 2: larger V gives lower energy cost and higher delay.
	slots := 24 * 60
	in := refInputs(t, slots)
	var energies, delays []float64
	for _, v := range []float64{0.1, 7.5, 20} {
		g, err := core.New(in.Cluster, core.Config{V: v})
		if err != nil {
			t.Fatal(err)
		}
		res := runSched(t, in, g, slots)
		energies = append(energies, res.AvgEnergy)
		delays = append(delays, res.AvgLocalDelay[0])
	}
	if !(energies[0] > energies[1] && energies[1] > energies[2]) {
		t.Errorf("energy not decreasing in V: %v", energies)
	}
	if !(delays[0] < delays[1] && delays[1] < delays[2]) {
		t.Errorf("delay not increasing in V: %v", delays)
	}
}

func TestRecordSeriesShapes(t *testing.T) {
	in := refInputs(t, 48)
	g, err := core.New(in.Cluster, core.Config{V: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	res := runSched(t, in, g, 48)
	if len(res.EnergySeries) != 48 || len(res.FairnessSeries) != 48 {
		t.Errorf("series lengths %d, %d, want 48", len(res.EnergySeries), len(res.FairnessSeries))
	}
	for i := 0; i < in.Cluster.N(); i++ {
		if len(res.WorkSeries[i]) != 48 || len(res.PriceSeries[i]) != 48 || len(res.LocalDelaySeries[i]) != 48 {
			t.Errorf("per-DC series lengths wrong at %d", i)
		}
	}
}

func TestCollectStates(t *testing.T) {
	in := refInputs(t, 24)
	states, arrivals, err := CollectStates(in, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 24 || len(arrivals) != 24 {
		t.Fatalf("lengths %d, %d", len(states), len(arrivals))
	}
	// States must match what Run would see.
	if states[3].Price[1] != in.Prices[1].At(3) {
		t.Error("state price mismatch")
	}
	if states[7].Avail[2][0] != in.Availability.At(7)[2][0] {
		t.Error("state availability mismatch")
	}
}

func TestDeterministicRuns(t *testing.T) {
	slots := 24 * 5
	in1 := refInputs(t, slots)
	in2 := refInputs(t, slots)
	g1, _ := core.New(in1.Cluster, core.Config{V: 7.5, Beta: 100})
	g2, _ := core.New(in2.Cluster, core.Config{V: 7.5, Beta: 100})
	r1 := runSched(t, in1, g1, slots)
	r2 := runSched(t, in2, g2, slots)
	if r1.AvgEnergy != r2.AvgEnergy || r1.AvgFairness != r2.AvgFairness {
		t.Errorf("same seed, different results: %v vs %v", r1.AvgEnergy, r2.AvgEnergy)
	}
}

func TestConstantPriceSourcesWork(t *testing.T) {
	// The simulator accepts any Source implementation.
	in := refInputs(t, 24)
	in.Prices = []price.Source{price.Constant(0.4), price.Constant(0.4), price.Constant(0.4)}
	a, _ := sched.NewAlways(in.Cluster)
	res, err := Run(in, a, Options{Slots: 24, ValidateActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 24 {
		t.Errorf("Slots = %d", res.Slots)
	}
}

func TestBetaImprovesFairness(t *testing.T) {
	// Fig. 3b: beta=100 must yield a clearly better average fairness score
	// than beta=0 at the same V.
	slots := 24 * 45
	in := refInputs(t, slots)
	g0, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	g100, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	r0 := runSched(t, in, g0, slots)
	r100 := runSched(t, in, g100, slots)
	if r100.AvgFairness <= r0.AvgFairness {
		t.Errorf("beta=100 fairness %v not above beta=0 fairness %v", r100.AvgFairness, r0.AvgFairness)
	}
}

func TestDelayHistograms(t *testing.T) {
	slots := 24 * 20
	in := refInputs(t, slots)
	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	res := runSched(t, in, a, slots)
	h := res.DelayHistograms[0]
	if h.Total() <= 0 {
		t.Fatal("no delay samples recorded")
	}
	// Always processes next slot: the median delay bucket is exactly 1.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("Always p50 delay = %v, want 1", got)
	}
	// Histogram mean must agree with the Ratio-based mean delay.
	if math.Abs(h.Mean()-res.AvgLocalDelay[0]) > 1e-9 {
		t.Errorf("histogram mean %v != ratio mean %v", h.Mean(), res.AvgLocalDelay[0])
	}

	// GreFar at high V has a heavy tail: p95 well above the median.
	g, err := core.New(in.Cluster, core.Config{V: 20})
	if err != nil {
		t.Fatal(err)
	}
	rg := runSched(t, in, g, slots)
	hg := rg.DelayHistograms[0]
	if hg.Quantile(0.95) < 2*hg.Quantile(0.5) {
		t.Errorf("GreFar delay tail p95=%v not well above p50=%v", hg.Quantile(0.95), hg.Quantile(0.5))
	}
}
