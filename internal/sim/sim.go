// Package sim is the time-slot simulator that drives a scheduler against the
// stochastic inputs: at the beginning of each slot it reveals the data center
// state x(t) (prices, availability), asks the scheduler for an action z(t),
// verifies feasibility, applies the queue dynamics, and accumulates the
// running-average metrics the paper's figures plot.
package sim

import (
	"context"
	"fmt"

	"grefar/internal/availability"
	"grefar/internal/fairness"
	"grefar/internal/metrics"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/tariff"
	"grefar/internal/telemetry"
	"grefar/internal/workload"
)

// Inputs bundles the system description and its stochastic drivers.
type Inputs struct {
	// Cluster is the static system description.
	Cluster *model.Cluster
	// Prices yields phi_i(t), one source per data center.
	Prices []price.Source
	// Workload yields the arrival counts a_j(t).
	Workload workload.Generator
	// Availability yields n_{i,k}(t).
	Availability availability.Process
	// Fairness scores allocations for the reported fairness metric. When
	// nil, the paper's quadratic function with the account weights is used.
	Fairness fairness.Function
	// Tariff maps each site's energy draw to billed cost (nil means the
	// paper's baseline linear pricing). The simulator's AvgEnergy metric is
	// the incremental cost of the batch load under this tariff.
	Tariff tariff.Tariff
	// BaseLoad optionally yields the energy drawn by non-batch workloads
	// per site (one source per data center); it shifts the operating point
	// on convex tariffs. Nil means zero base load.
	BaseLoad []price.Source
}

// Options tune a run.
type Options struct {
	// Slots is the horizon length t_end (required, > 0).
	Slots int
	// RecordSeries keeps per-slot prefix-average series for plotting; when
	// false only scalar summaries are produced.
	RecordSeries bool
	// ValidateActions re-checks every action against the model constraints
	// and fails the run on violation. Cheap; on by default in experiments.
	ValidateActions bool
	// Admission optionally filters arrivals before they enter the central
	// queues (paper section V suggests admission control for overload).
	// Nil admits everything.
	Admission AdmissionPolicy
	// Observer, when non-nil, receives one telemetry.SlotEvent per slot
	// (origin "sim") after the action is applied: realized energy per site,
	// fairness, job flows, and post-slot backlogs. Nil costs nothing.
	Observer telemetry.SlotObserver
	// Context, when non-nil, cancels the run between slots: Run returns an
	// error wrapping the context's error as soon as cancellation is observed.
	// Nil means the run cannot be interrupted.
	Context context.Context
	// Check attaches the runtime invariant checker (internal/invariant) to
	// the run: every slot is verified against the paper's queue dynamics
	// (12)-(13), action feasibility under the revealed state, and
	// end-to-end job conservation, and Run fails with an error wrapping
	// invariant.ErrViolation on the first violation. Strictly stronger than
	// ValidateActions; costs one deep copy of the slot evidence per slot,
	// so leave it off in benchmarks.
	Check bool
}

// ApplySim replaces the whole option set with o, making an Options literal
// usable wherever a simulation option is accepted. This is the compatibility
// bridge for the pre-options call style
// (grefar.Simulate(in, s, grefar.SimOptions{...})): an Options used as an
// option resets every knob, so combine it with finer-grained options only
// before them, not after.
//
// Deprecated: pass functional options (WithSlots, WithCheck, WithAdmission,
// ...) instead of a positional SimOptions literal; the struct form remains
// supported but new knobs will only get option constructors.
func (o Options) ApplySim(dst *Options) { *dst = o }

// Result summarizes a run.
type Result struct {
	// SchedulerName identifies the policy that produced this result.
	SchedulerName string
	// Slots is the executed horizon.
	Slots int

	// AvgEnergy is the time-average energy cost (1/t) sum e(tau) —
	// Fig. 2a/3a/4a's final value.
	AvgEnergy float64
	// EnergySeries is the running average of e(t) per slot.
	EnergySeries []float64

	// AvgFairness is the time-average fairness score — Fig. 3b/4b.
	AvgFairness float64
	// FairnessSeries is the running average of f(t).
	FairnessSeries []float64

	// AvgLocalDelay[i] is the per-job average queueing delay in data center
	// i (slots) — Fig. 2b/2c/3c/4c.
	AvgLocalDelay []float64
	// LocalDelaySeries[i] is the running per-job average delay at site i.
	LocalDelaySeries [][]float64
	// AvgCentralDelay is the per-job average delay at the central scheduler.
	AvgCentralDelay float64

	// AvgWorkPerDC[i] is the average work per slot processed at site i —
	// the section VI-B1 work-share observation.
	AvgWorkPerDC []float64
	// WorkSeries[i] is the raw per-slot processed work at site i (kept only
	// with RecordSeries), used for the Fig. 5 snapshot.
	WorkSeries [][]float64
	// PriceSeries[i] is the raw per-slot price at site i (kept only with
	// RecordSeries).
	PriceSeries [][]float64

	// DelayHistograms[i] is the per-job delay distribution at site i; its
	// quantiles expose the tail the mean delay of the figures hides.
	DelayHistograms []*metrics.Histogram

	// MaxQueue is the largest single queue backlog observed — the O(V)
	// bound of Theorem 1a.
	MaxQueue float64
	// AvgQueue is the time-average total backlog.
	AvgQueue float64
	// FinalBacklog is the total backlog at the horizon.
	FinalBacklog float64
	// TotalArrived and TotalProcessed count jobs for conservation checks.
	TotalArrived, TotalProcessed float64
	// TotalDropped counts jobs rejected by the admission policy.
	TotalDropped float64
}

// Run simulates the scheduler over the horizon. Malformed inputs or options
// yield an error wrapping ErrBadInputs (a malformed cluster wraps
// model.ErrInvalidCluster instead). Run is a thin driver over Engine — the
// resumable slot-stepping core shared with the serving mode.
func Run(in Inputs, s sched.Scheduler, opt Options) (*Result, error) {
	// Batch-specific validation first, in the historical order (NewEngine
	// re-checks the shared subset; a generator-less engine is legal only in
	// the serving mode, and a horizon is meaningless there).
	c := in.Cluster
	if c == nil {
		return nil, fmt.Errorf("%w: nil cluster", ErrBadInputs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(in.Prices) != c.N() {
		return nil, fmt.Errorf("%w: got %d price sources, cluster has %d data centers", ErrBadInputs, len(in.Prices), c.N())
	}
	if in.Workload == nil || in.Availability == nil {
		return nil, fmt.Errorf("%w: workload and availability are required", ErrBadInputs)
	}
	if opt.Slots <= 0 {
		return nil, fmt.Errorf("%w: horizon %d is not positive", ErrBadInputs, opt.Slots)
	}
	e, err := NewEngine(in, s, opt)
	if err != nil {
		return nil, err
	}
	for t := 0; t < opt.Slots; t++ {
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("slot %d: run canceled: %w", t, err)
			}
		}
		if err := e.Step(nil); err != nil {
			return nil, err
		}
	}
	return e.Result(), nil
}

// slotEvent assembles the origin-"sim" telemetry event for one applied slot:
// realized billed energy (total and per site), the fairness score, the job
// flows, and the post-slot backlog snapshot.
func slotEvent(c *model.Cluster, scheduler string, t int, post queue.Lengths, act *model.Action,
	st *model.State, trf tariff.Tariff, energy, fairness, arrived, processed, dropped float64) telemetry.SlotEvent {
	ev := telemetry.SlotEvent{
		Slot:       t,
		Origin:     telemetry.OriginSim,
		Scheduler:  scheduler,
		DataCenter: -1,
		Energy:     energy,
		Fairness:   fairness,
		Arrived:    arrived,
		Processed:  processed,
		Dropped:    dropped,
	}
	ev.EnergyPerDC = make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		ev.EnergyPerDC[i] = act.BilledCostAt(c, st, i, trf)
	}
	for _, v := range post.Central {
		ev.CentralBacklog += v
	}
	ev.LocalBacklog = make([]float64, c.N())
	for i := range post.Local {
		for _, v := range post.Local[i] {
			ev.LocalBacklog[i] += v
		}
	}
	ev.TotalBacklog = ev.CentralBacklog
	for _, v := range ev.LocalBacklog {
		ev.TotalBacklog += v
	}
	return ev
}

// CollectStates materializes the per-slot states and arrivals of the inputs
// over a horizon, for consumers that need the whole future at once (the
// T-step lookahead benchmark).
func CollectStates(in Inputs, slots int) ([]*model.State, [][]int, error) {
	c := in.Cluster
	states := make([]*model.State, slots)
	arrivals := make([][]int, slots)
	for t := 0; t < slots; t++ {
		st := model.NewState(c)
		avail := in.Availability.At(t)
		for i := 0; i < c.N(); i++ {
			copy(st.Avail[i], avail[i])
			st.Price[i] = in.Prices[i].At(t)
		}
		if err := st.Validate(c); err != nil {
			return nil, nil, fmt.Errorf("slot %d: %w", t, err)
		}
		states[t] = st
		arrivals[t] = in.Workload.Arrivals(t)
	}
	return states, arrivals, nil
}

// NewReferenceInputs assembles the paper's evaluation setup: the Table I
// cluster, three price processes calibrated to the Table I averages, the
// four-organization Cosmos-like workload, and slackness-respecting
// availability. The seed makes the whole configuration deterministic.
func NewReferenceInputs(seed int64, slots int) (Inputs, error) {
	c := model.NewReferenceCluster()
	prices, err := price.NewReferenceSources(seed, slots)
	if err != nil {
		return Inputs{}, fmt.Errorf("prices: %w", err)
	}
	srcs := make([]price.Source, len(prices))
	for i, p := range prices {
		srcs[i] = p
	}
	wl, err := workload.NewReferenceWorkload(seed+1, c, slots)
	if err != nil {
		return Inputs{}, fmt.Errorf("workload: %w", err)
	}
	avail, err := availability.NewReferenceAvailability(seed+2, c, slots)
	if err != nil {
		return Inputs{}, fmt.Errorf("availability: %w", err)
	}
	return Inputs{Cluster: c, Prices: srcs, Workload: wl, Availability: avail}, nil
}
