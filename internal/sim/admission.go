package sim

import "fmt"

// AdmissionPolicy decides how many of a slot's arriving jobs are admitted
// into the central queues. The paper (section V) notes that when the system
// is overloaded — so the slackness conditions cannot hold — "admission
// control techniques can be applied to complement our scheme"; this is that
// complement.
type AdmissionPolicy interface {
	// Admit returns how many of the arriving jobs of each type to accept,
	// given the current central backlogs. The returned slice may alias
	// arrivals. Each entry must be in [0, arrivals[j]].
	Admit(t int, arrivals []int, centralLens []float64) []int
	// Name identifies the policy in reports.
	Name() string
}

// ThresholdAdmission rejects arrivals that would push a job type's central
// backlog above a fixed threshold — the classic tail-drop rule. It keeps
// every queue trivially bounded regardless of load, at the cost of loss.
type ThresholdAdmission struct {
	// Limit[j] is the maximum admitted central backlog for job type j; a
	// non-positive entry disables the limit for that type.
	Limit []float64
}

var _ AdmissionPolicy = (*ThresholdAdmission)(nil)

// NewThresholdAdmission builds the policy with one limit per job type.
func NewThresholdAdmission(limit []float64) (*ThresholdAdmission, error) {
	for j, l := range limit {
		if l < 0 {
			return nil, fmt.Errorf("job type %d: negative limit %v", j, l)
		}
	}
	return &ThresholdAdmission{Limit: append([]float64(nil), limit...)}, nil
}

// Admit implements AdmissionPolicy.
func (p *ThresholdAdmission) Admit(_ int, arrivals []int, centralLens []float64) []int {
	out := make([]int, len(arrivals))
	for j, a := range arrivals {
		out[j] = a
		if j >= len(p.Limit) || p.Limit[j] <= 0 {
			continue
		}
		room := p.Limit[j] - centralLens[j]
		if room < 0 {
			room = 0
		}
		if float64(a) > room {
			out[j] = int(room)
		}
	}
	return out
}

// Name implements AdmissionPolicy.
func (p *ThresholdAdmission) Name() string { return "threshold-admission" }
