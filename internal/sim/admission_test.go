package sim

import (
	"math"
	"testing"

	"grefar/internal/availability"
	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/workload"
)

func TestThresholdAdmissionValidation(t *testing.T) {
	if _, err := NewThresholdAdmission([]float64{-1}); err == nil {
		t.Error("negative limit accepted")
	}
	p, err := NewThresholdAdmission([]float64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestThresholdAdmissionCaps(t *testing.T) {
	p, _ := NewThresholdAdmission([]float64{5, 0})
	got := p.Admit(0, []int{10, 10}, []float64{3, 3})
	if got[0] != 2 { // room = 5-3
		t.Errorf("admitted %d, want 2", got[0])
	}
	if got[1] != 10 { // unlimited
		t.Errorf("admitted %d, want 10", got[1])
	}
	// Already over the limit: admit nothing.
	got = p.Admit(0, []int{4, 0}, []float64{9, 0})
	if got[0] != 0 {
		t.Errorf("admitted %d, want 0", got[0])
	}
}

// overloadedInputs builds a system whose arrivals far exceed capacity, so
// queues grow without bound unless admission control intervenes.
func overloadedInputs(t *testing.T, slots int) Inputs {
	t.Helper()
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
		},
		JobTypes: []model.JobType{
			{Name: "j", Demand: 1, Eligible: []int{0}, Account: 0, MaxArrival: 100, MaxProcess: 1000},
		},
		Accounts: []model.Account{{Name: "a", Weight: 1}},
	}
	counts := make([][]int, slots)
	for x := range counts {
		counts[x] = []int{20} // 20 work/slot arriving
	}
	return Inputs{
		Cluster:      c,
		Prices:       []price.Source{price.Constant(0.5)},
		Workload:     &workload.Trace{Counts: counts},
		Availability: &availability.Static{Avail: [][]float64{{5}}}, // capacity 5
	}
}

func TestAdmissionControlBoundsOverloadedSystem(t *testing.T) {
	const slots = 200
	in := overloadedInputs(t, slots)
	g, err := core.New(in.Cluster, core.Config{V: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Without admission control the backlog grows without bound.
	unbounded, err := Run(in, g, Options{Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.FinalBacklog < 1000 {
		t.Fatalf("overloaded system backlog %v; expected unbounded growth", unbounded.FinalBacklog)
	}

	// With a threshold, queues stay bounded and drops are counted.
	adm, err := NewThresholdAdmission([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(in, g, Options{Slots: slots, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	// The threshold caps the central queue at 50; a local queue can hold up
	// to roughly its own near-central level plus one full routed batch, so
	// the system-wide bound is ~2*limit + one slot of arrivals.
	if bounded.MaxQueue > 2*50+20 {
		t.Errorf("max queue %v exceeds the admission-bounded region", bounded.MaxQueue)
	}
	// And the bound must be load-independent: twice the horizon, same bound.
	longer, err := Run(in, g, Options{Slots: 2 * slots, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	if longer.MaxQueue > bounded.MaxQueue+20 {
		t.Errorf("max queue grew with horizon: %v -> %v", bounded.MaxQueue, longer.MaxQueue)
	}
	if bounded.TotalDropped <= 0 {
		t.Error("no drops recorded in an overloaded system")
	}
	// Conservation including drops.
	got := bounded.TotalArrived - bounded.TotalDropped - bounded.TotalProcessed - bounded.FinalBacklog
	if math.Abs(got) > 1e-6 {
		t.Errorf("conservation violated by %v", got)
	}
}

func TestAdmissionRejectsMisbehavingPolicy(t *testing.T) {
	in := overloadedInputs(t, 5)
	g, _ := core.New(in.Cluster, core.Config{V: 1})
	if _, err := Run(in, g, Options{Slots: 5, Admission: badPolicy{}}); err == nil {
		t.Error("over-admitting policy accepted")
	}
}

type badPolicy struct{}

func (badPolicy) Admit(_ int, arrivals []int, _ []float64) []int {
	out := make([]int, len(arrivals))
	for j := range out {
		out[j] = arrivals[j] + 5 // admit more than arrived
	}
	return out
}

func (badPolicy) Name() string { return "bad" }
