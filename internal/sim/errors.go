package sim

import "errors"

// ErrBadInputs is the sentinel wrapped by every pre-run rejection of Run:
// missing drivers, mismatched source counts, or a non-positive horizon.
// Classify with errors.Is; a structurally malformed cluster wraps
// model.ErrInvalidCluster instead.
var ErrBadInputs = errors.New("bad simulation inputs")
