package sim

import (
	"math/rand"
	"testing"

	"grefar/internal/core"
	"grefar/internal/price"
	"grefar/internal/tariff"
)

// TestTariffAwareSchedulingPaysLess checks the section III-A2 extension end
// to end: under a convex tariff with diurnal base load, a GreFar configured
// with the tariff pays less than a tariff-blind GreFar, and both pay more
// than under linear pricing.
func TestTariffAwareSchedulingPaysLess(t *testing.T) {
	const slots = 24 * 20
	in, err := NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]price.Source, in.Cluster.N())
	for i := range base {
		tr, err := price.GenerateDiurnal(rand.New(rand.NewSource(int64(i))), slots, price.DiurnalParams{
			Mean: 30, Amplitude: 15, NoiseSigma: 2, PhaseHours: i * 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		base[i] = tr
	}
	quad, err := tariff.NewQuadratic(60)
	if err != nil {
		t.Fatal(err)
	}

	run := func(simTariff, schedTariff tariff.Tariff) float64 {
		t.Helper()
		inputs := in
		inputs.Tariff = simTariff
		inputs.BaseLoad = base
		g, err := core.New(inputs.Cluster, core.Config{V: 7.5, Tariff: schedTariff})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(inputs, g, Options{Slots: slots, ValidateActions: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgEnergy
	}

	linear := run(tariff.Linear{}, nil)
	blind := run(quad, nil)
	aware := run(quad, quad)

	if blind <= linear {
		t.Errorf("convex tariff bill %v not above linear %v", blind, linear)
	}
	if aware >= blind {
		t.Errorf("tariff-aware cost %v not below tariff-blind %v", aware, blind)
	}
}
