// Package serve implements the long-running service mode of GreFar: a
// stateful Session wrapping the simulator's resumable Engine, fed by a live
// arrival stream instead of a workload generator, ticking slots on demand,
// and surviving restarts through durable checkpoints (internal/serve/snapshot).
// Server exposes a Session over HTTP — see server.go for the endpoints and
// cmd/grefar-serve for the daemon.
package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"grefar/internal/core"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/serve/snapshot"
	"grefar/internal/sim"
)

// Sentinel errors of the serving mode. ErrCorruptSnapshot, ErrNoSnapshot,
// and ErrSnapshotVersion alias the snapshot package's sentinels so callers
// need only this package.
var (
	// ErrCorruptSnapshot marks checkpoint bytes that are not a valid
	// snapshot: a damaged frame, a failed checksum, or an undecodable
	// payload.
	ErrCorruptSnapshot = snapshot.ErrCorrupt
	// ErrNoSnapshot marks a snapshot store with nothing to restore.
	ErrNoSnapshot = snapshot.ErrNotFound
	// ErrSnapshotVersion marks a snapshot written by a newer format version.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotMismatch marks a valid snapshot taken on a different
	// system: the cluster shape it records does not match the session's.
	ErrSnapshotMismatch = errors.New("serve: snapshot from a different cluster")
	// ErrBadJob marks a rejected job submission (unknown type, bad count).
	ErrBadJob = errors.New("serve: bad job")
	// ErrClosed marks use of a closed session.
	ErrClosed = errors.New("serve: session closed")
)

// Job is one unit of the arrival stream: count jobs of one of the cluster's
// job types. A job type maps to the paper's (organization, characteristics)
// pair — the account is implied by the type (rho_j).
type Job struct {
	// Type is the job type index into Cluster.JobTypes.
	Type int `json:"type"`
	// Count is how many such jobs arrive; zero means one.
	Count int `json:"count,omitempty"`
}

// SessionConfig assembles a Session. The facade (grefar.Open) builds it from
// functional options; tests and cmd/grefar-serve may fill it directly.
type SessionConfig struct {
	// Inputs carries the cluster and its per-slot environment (prices,
	// availability, optional base load and tariff). Workload is optional in
	// a session — arrivals normally come from Submit — and when present its
	// output is added on top of the submitted stream.
	Inputs sim.Inputs
	// Scheduler configures the GreFar scheduler driving the session.
	Scheduler core.Config
	// Sim carries the per-slot engine options (action validation, invariant
	// checking, observers). Slots and Context are ignored: a session has no
	// horizon and Tick takes its context per call.
	Sim sim.Options
}

// Session is a long-lived GreFar control loop: jobs arrive via Submit, slots
// execute via Tick, and the whole durable state round-trips through
// Checkpoint/Restore. All methods are safe for concurrent use; slots always
// execute one at a time, so checkpoints and reconfigurations land exactly on
// slot boundaries.
type Session struct {
	mu     sync.Mutex
	cfg    SessionConfig
	c      *model.Cluster
	g      *core.GreFar
	eng    *sim.Engine
	closed bool

	// pending accumulates submitted jobs per type until Tick admits them.
	// Each Tick drains at most a_max_j per type (paper eq. 1); the rest
	// carries over to later slots.
	pending []int
	// submitted counts lifetime accepted jobs; rejected counts rejected
	// Submit batches (a batch is rejected atomically).
	submitted, rejected float64
}

// NewSession validates the configuration and opens a session at slot 0.
func NewSession(cfg SessionConfig) (*Session, error) {
	cfg.Sim.Slots = 0
	cfg.Sim.Context = nil
	g, err := core.New(cfg.Inputs.Cluster, cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(cfg.Inputs, g, cfg.Sim)
	if err != nil {
		return nil, err
	}
	return &Session{
		cfg:     cfg,
		c:       cfg.Inputs.Cluster,
		g:       g,
		eng:     eng,
		pending: make([]int, cfg.Inputs.Cluster.J()),
	}, nil
}

// Submit queues jobs for admission at the next Ticks and returns how many
// jobs were accepted. The batch is validated first and rejected atomically:
// either every job is queued or none is, so a half-applied batch can never
// be checkpointed.
func (s *Session) Submit(jobs []Job) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	total := 0
	for k, job := range jobs {
		if job.Type < 0 || job.Type >= s.c.J() {
			s.rejected++
			return 0, fmt.Errorf("%w: job %d: type %d out of range [0,%d)", ErrBadJob, k, job.Type, s.c.J())
		}
		if job.Count < 0 {
			s.rejected++
			return 0, fmt.Errorf("%w: job %d: negative count %d", ErrBadJob, k, job.Count)
		}
		if job.Count == 0 {
			total++
		} else {
			total += job.Count
		}
	}
	for _, job := range jobs {
		n := job.Count
		if n == 0 {
			n = 1
		}
		s.pending[job.Type] += n
	}
	s.submitted += float64(total)
	return total, nil
}

// TickReport summarizes one executed slot.
type TickReport struct {
	// Slot is the slot that was executed.
	Slot int `json:"slot"`
	// Admitted is how many submitted jobs entered the central queues this
	// slot (the a_max_j caps can hold some back).
	Admitted int `json:"admitted"`
	// Pending is how many submitted jobs still await admission.
	Pending int `json:"pending"`
	// Backlog is the total queue backlog after the slot.
	Backlog float64 `json:"backlog"`
}

// Tick executes exactly one slot: it drains the pending arrival buffer (at
// most a_max_j jobs per type, paper eq. 1 — the remainder stays pending),
// runs the scheduler, applies the queue dynamics, and re-verifies the slot
// when invariant checking is on. Reconfigurations and checkpoints
// interleave only between Ticks, so every externally observable state is a
// slot boundary.
func (s *Session) Tick(ctx context.Context) (*TickReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.eng.Slot()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("slot %d: tick canceled: %w", t, err)
	}
	extra := make([]int, s.c.J())
	admitted := 0
	for j := range extra {
		n := s.pending[j]
		if amax := s.c.JobTypes[j].MaxArrival; amax > 0 && n > amax {
			n = amax
		}
		extra[j] = n
		admitted += n
	}
	if err := s.eng.Step(extra); err != nil {
		return nil, err
	}
	// The slot committed; only now do the admitted jobs leave the buffer,
	// so a failed Step loses nothing.
	for j := range extra {
		s.pending[j] -= extra[j]
	}
	return &TickReport{
		Slot:     t,
		Admitted: admitted,
		Pending:  s.pendingTotalLocked(),
		Backlog:  s.eng.Lengths().Sum(),
	}, nil
}

func (s *Session) pendingTotalLocked() int {
	total := 0
	for _, n := range s.pending {
		total += n
	}
	return total
}

// Slot returns the next slot index Tick will execute.
func (s *Session) Slot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Slot()
}

// Lengths returns a snapshot of the current queue backlogs.
func (s *Session) Lengths() queue.Lengths {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Lengths()
}

// Pending returns a copy of the per-type pending arrival buffer.
func (s *Session) Pending() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.pending...)
}

// Submitted returns the lifetime count of accepted jobs.
func (s *Session) Submitted() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted
}

// Result aggregates the metrics of the slots executed since this process
// opened or restored the session (aggregates are derived state and restart
// on restore; see DESIGN.md §12).
func (s *Session) Result() *sim.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Result()
}

// Cluster returns the session's system description.
func (s *Session) Cluster() *model.Cluster { return s.c }

// Config returns the scheduler configuration currently in effect.
func (s *Session) Config() core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Scheduler
}

// Reconfigure swaps the scheduler configuration at the current slot
// boundary — the serving mode's hot reload of V, beta, or the tariff. The
// queues are untouched. Warm-start state carries over when the new
// configuration solves the same convex problem shape; otherwise the new
// scheduler cold-starts (its first convex slot falls back to the zero
// iterate, exactly like a fresh process).
func (s *Session) Reconfigure(cfg core.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ng, err := core.New(s.c, cfg)
	if err != nil {
		return err
	}
	st := s.g.ExportState()
	// The new options block should reach telemetry once, so never carry the
	// reporting latch across a reconfiguration.
	st.OptsReported = false
	if err := ng.RestoreState(st); err != nil {
		// Incompatible solver layout (e.g. beta crossed zero): keep only the
		// cumulative counters and cold-start the iterate.
		_ = ng.RestoreState(&core.SchedulerState{
			WarmHits:      st.WarmHits,
			WarmRepairs:   st.WarmRepairs,
			WarmFallbacks: st.WarmFallbacks,
		})
	}
	s.g = ng
	s.cfg.Scheduler = cfg
	s.eng.SetScheduler(ng)
	return nil
}

// Close marks the session closed; subsequent calls fail with ErrClosed.
// Closing does not checkpoint — callers decide whether the final state is
// worth persisting.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// checkpointPayload is the gob wire form of a session's durable state.
// Everything else a session holds (metric aggregates, histograms, the
// invariant checker's ledger, telemetry gauges) is derived from this
// trajectory and deliberately restarts on restore.
type checkpointPayload struct {
	// N, J, M guard against restoring onto a different cluster shape.
	N, J, M int
	// Engine is the queue trajectory state: slot counter, FIFO cohorts,
	// lifetime totals.
	Engine sim.EngineState
	// Scheduler is the cross-slot scheduler memory: warm iterate and
	// cumulative solver counters.
	Scheduler core.SchedulerState
	// Pending is the not-yet-admitted arrival buffer.
	Pending []int
	// Submitted counts lifetime accepted jobs; Rejected counts rejected
	// Submit batches.
	Submitted, Rejected float64
}

// EncodeState serializes the session's durable state as an unframed
// payload — what Store.Write persists. Checkpoint adds the snapshot frame
// for self-contained files.
func (s *Session) EncodeState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	eng, err := s.eng.ExportState()
	if err != nil {
		return nil, err
	}
	p := checkpointPayload{
		N:         s.c.N(),
		J:         s.c.J(),
		M:         s.c.M(),
		Engine:    *eng,
		Scheduler: *s.g.ExportState(),
		Pending:   append([]int(nil), s.pending...),
		Submitted: s.submitted,
		Rejected:  s.rejected,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("serve: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState rewinds the session onto a previously encoded payload. The
// session must have been opened with the same cluster and scheduler
// configuration for the continuation to be byte-identical to the
// uninterrupted run. Undecodable payloads return ErrCorruptSnapshot;
// payloads from a different cluster shape return ErrSnapshotMismatch.
func (s *Session) RestoreState(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var p checkpointPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return fmt.Errorf("%w: undecodable payload: %v", ErrCorruptSnapshot, err)
	}
	if p.N != s.c.N() || p.J != s.c.J() || p.M != s.c.M() {
		return fmt.Errorf("%w: snapshot is %d sites x %d job types x %d accounts, session is %dx%dx%d",
			ErrSnapshotMismatch, p.N, p.J, p.M, s.c.N(), s.c.J(), s.c.M())
	}
	if len(p.Pending) != s.c.J() {
		return fmt.Errorf("%w: pending buffer has %d types, cluster has %d", ErrCorruptSnapshot, len(p.Pending), s.c.J())
	}
	for j, n := range p.Pending {
		if n < 0 {
			return fmt.Errorf("%w: pending buffer type %d is negative", ErrCorruptSnapshot, j)
		}
	}
	if err := s.eng.RestoreState(&p.Engine); err != nil {
		return fmt.Errorf("%w: engine state: %v", ErrCorruptSnapshot, err)
	}
	if err := s.g.RestoreState(&p.Scheduler); err != nil {
		return fmt.Errorf("%w: scheduler state: %v", ErrCorruptSnapshot, err)
	}
	copy(s.pending, p.Pending)
	s.submitted = p.Submitted
	s.rejected = p.Rejected
	return nil
}

// Checkpoint writes the session's durable state to w as a self-contained
// snapshot frame, restorable with Restore.
func (s *Session) Checkpoint(w io.Writer) error {
	payload, err := s.EncodeState()
	if err != nil {
		return err
	}
	if _, err := w.Write(snapshot.Encode(payload)); err != nil {
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	return nil
}

// Restore reads a Checkpoint frame from r and rewinds the session onto it.
func (s *Session) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: read checkpoint: %w", err)
	}
	payload, err := snapshot.Decode(data)
	if err != nil {
		return err
	}
	return s.RestoreState(payload)
}
