// Package snapshot implements the durable on-disk checkpoint format of the
// serving mode: a small versioned frame around an opaque payload, written
// crash-consistently (temp file, fsync of both file and directory, atomic
// rename) with one generation of fallback. The payload's schema belongs to
// the caller (internal/serve encodes a Session checkpoint); this package
// guarantees only that what Load returns is byte-identical to what Write was
// given, or a typed error.
//
// Frame layout (all integers big-endian):
//
//	offset size  field
//	0      8     magic "GFSNAP\r\n"
//	8      2     format version (currently 1)
//	10     4     payload length
//	14     4     CRC-32 (IEEE) of the payload
//	18     n     payload
//
// Version history:
//
//	1: initial format (this PR).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Version is the current frame format version.
const Version = 1

// magic marks snapshot files; the CR-LF pair catches text-mode mangling the
// way PNG's signature does.
var magic = [8]byte{'G', 'F', 'S', 'N', 'A', 'P', '\r', '\n'}

const headerSize = 8 + 2 + 4 + 4

var (
	// ErrCorrupt reports a snapshot that is not a well-formed frame: wrong
	// magic, truncated header or payload, trailing garbage, or a checksum
	// mismatch.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrVersion reports a well-formed frame whose format version this
	// build does not understand (written by a newer build).
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrNotFound reports that a store holds no snapshot at all.
	ErrNotFound = errors.New("snapshot: none found")
)

// Encode frames a payload: header, checksum, payload bytes.
func Encode(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, magic[:])
	binary.BigEndian.PutUint16(out[8:], Version)
	binary.BigEndian.PutUint32(out[10:], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[14:], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// Decode verifies a frame and returns its payload (aliasing data's memory).
// Malformed frames return ErrCorrupt; frames from a newer format version
// return ErrVersion.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header is %d", ErrCorrupt, len(data), headerSize)
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: format %d, this build reads %d", ErrVersion, v, Version)
	}
	n := binary.BigEndian.Uint32(data[10:])
	if uint64(len(data)-headerSize) != uint64(n) {
		return nil, fmt.Errorf("%w: header says %d payload bytes, file carries %d", ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[14:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Store persists framed snapshots in a directory, keeping the latest write
// in current.snap and the previous one in prev.snap. Writes are
// crash-consistent: a crash at any point leaves at least one of the two
// files a complete, verifiable frame, and Load falls back from a corrupt or
// missing current to prev. A Store has a single writer; Write and Load are
// not safe for concurrent use.
type Store struct {
	dir string
}

// File names inside a store directory.
const (
	CurrentName = "current.snap"
	PrevName    = "prev.snap"
	tmpName     = "current.snap.tmp"
)

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: create store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// CurrentPath returns the path of the latest snapshot file.
func (s *Store) CurrentPath() string { return filepath.Join(s.dir, CurrentName) }

// PrevPath returns the path of the fallback snapshot file.
func (s *Store) PrevPath() string { return filepath.Join(s.dir, PrevName) }

// Write durably persists a payload as the store's current snapshot and
// demotes the previous current to the fallback slot. The sequence is: frame
// to a temp file, fsync the temp file, rename current over prev, rename temp
// over current, fsync the directory. The directory fsync is what makes the
// renames themselves durable — without it a power cut can roll the directory
// back to an entry pointing at nothing.
func (s *Store) Write(payload []byte) error {
	tmp := filepath.Join(s.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: create temp: %w", err)
	}
	if _, err := f.Write(Encode(payload)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snapshot: fsync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: close temp: %w", err)
	}
	// Demote current to prev before promoting the temp file. If we crash
	// between the renames, current is briefly missing but prev holds the
	// last good snapshot and Load falls back to it.
	cur := s.CurrentPath()
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, s.PrevPath()); err != nil {
			return fmt.Errorf("snapshot: rotate current to prev: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("snapshot: promote temp to current: %w", err)
	}
	return s.syncDir()
}

// syncDir fsyncs the store directory, making completed renames durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("snapshot: open store dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: fsync store dir: %w", err)
	}
	return nil
}

// LoadResult reports where a successful Load found its payload.
type LoadResult struct {
	// Payload is the verified snapshot payload.
	Payload []byte
	// Path is the file the payload came from.
	Path string
	// Fallback is true when current.snap was missing or rejected and the
	// payload came from prev.snap.
	Fallback bool
	// CurrentErr records why current.snap was rejected when Fallback is
	// true (wraps ErrCorrupt or ErrVersion); nil when current was simply
	// missing or was used.
	CurrentErr error
}

// Load returns the newest restorable snapshot: current.snap when it
// verifies, otherwise prev.snap. When neither file exists the error is
// ErrNotFound; when files exist but none verifies, the error wraps the
// current file's failure (ErrCorrupt or ErrVersion).
func (s *Store) Load() (*LoadResult, error) {
	curPayload, curErr := loadFile(s.CurrentPath())
	if curErr == nil {
		return &LoadResult{Payload: curPayload, Path: s.CurrentPath()}, nil
	}
	prevPayload, prevErr := loadFile(s.PrevPath())
	if prevErr == nil {
		res := &LoadResult{Payload: prevPayload, Path: s.PrevPath(), Fallback: true}
		if !errors.Is(curErr, os.ErrNotExist) {
			res.CurrentErr = curErr
		}
		return res, nil
	}
	if errors.Is(curErr, os.ErrNotExist) && errors.Is(prevErr, os.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNotFound, s.dir)
	}
	if errors.Is(curErr, os.ErrNotExist) {
		return nil, fmt.Errorf("snapshot: no current, prev unusable: %w", prevErr)
	}
	return nil, fmt.Errorf("snapshot: prev unusable too (%v): %w", prevErr, curErr)
}

// loadFile reads and verifies one snapshot file.
func loadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return payload, nil
}
