package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 1<<16)} {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("payload len %d: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload len %d: round trip changed bytes", len(payload))
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	good := Encode([]byte("hello snapshot"))

	short := good[:headerSize-1]
	if _, err := Decode(short); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: got %v, want ErrCorrupt", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	if _, err := Decode(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}

	future := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(future[8:], Version+1)
	if _, err := Decode(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}

	truncated := good[:len(good)-3]
	if _, err := Decode(truncated); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}

	trailing := append(append([]byte(nil), good...), 0)
	if _, err := Decode(trailing); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 1
	if _, err := Decode(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload bit: got %v, want ErrCorrupt", err)
	}
}

func TestStoreWriteLoadRotation(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: got %v, want ErrNotFound", err)
	}

	if err := st.Write([]byte("gen1")); err != nil {
		t.Fatal(err)
	}
	res, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "gen1" || res.Fallback {
		t.Fatalf("after first write: %+v", res)
	}

	if err := st.Write([]byte("gen2")); err != nil {
		t.Fatal(err)
	}
	res, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "gen2" || res.Fallback {
		t.Fatalf("after second write: %+v", res)
	}
	prev, err := os.ReadFile(st.PrevPath())
	if err != nil {
		t.Fatal(err)
	}
	if p, err := Decode(prev); err != nil || string(p) != "gen1" {
		t.Fatalf("prev slot holds %q (%v), want gen1", p, err)
	}
}

// TestStoreCrashConsistency simulates the torn writes a crash can leave
// behind and verifies Load always falls back to the previous good snapshot
// with the corruption surfaced as ErrCorrupt.
func TestStoreCrashConsistency(t *testing.T) {
	newStore := func(t *testing.T) *Store {
		st, err := NewStore(filepath.Join(t.TempDir(), "snaps"))
		if err != nil {
			t.Fatal(err)
		}
		for _, gen := range []string{"gen1", "gen2"} {
			if err := st.Write([]byte(gen)); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	t.Run("truncated-current", func(t *testing.T) {
		st := newStore(t)
		data, err := os.ReadFile(st.CurrentPath())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.CurrentPath(), data[:len(data)-2], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Payload) != "gen1" || !res.Fallback {
			t.Fatalf("got %+v, want fallback to gen1", res)
		}
		if !errors.Is(res.CurrentErr, ErrCorrupt) {
			t.Fatalf("CurrentErr = %v, want ErrCorrupt", res.CurrentErr)
		}
	})

	t.Run("missing-current", func(t *testing.T) {
		st := newStore(t)
		if err := os.Remove(st.CurrentPath()); err != nil {
			t.Fatal(err)
		}
		res, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Payload) != "gen1" || !res.Fallback || res.CurrentErr != nil {
			t.Fatalf("got %+v, want silent fallback to gen1", res)
		}
	})

	t.Run("leftover-temp-ignored", func(t *testing.T) {
		st := newStore(t)
		if err := os.WriteFile(filepath.Join(st.Dir(), tmpName), []byte("half-written gen3"), 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Payload) != "gen2" || res.Fallback {
			t.Fatalf("got %+v, want current gen2", res)
		}
		// The next write replaces the junk temp file.
		if err := st.Write([]byte("gen3")); err != nil {
			t.Fatal(err)
		}
		res, err = st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Payload) != "gen3" || res.Fallback {
			t.Fatalf("after recovery write: %+v", res)
		}
	})

	t.Run("both-corrupt", func(t *testing.T) {
		st := newStore(t)
		for _, p := range []string{st.CurrentPath(), st.PrevPath()} {
			if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Load(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// FuzzDecode feeds arbitrary bytes to the frame parser: it must never panic,
// and whatever it accepts must re-encode to the identical frame.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(nil))
	f.Add(Encode([]byte("seed payload")))
	long := Encode(bytes.Repeat([]byte("grefar"), 100))
	f.Add(long)
	f.Add(long[:headerSize])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(Encode(payload), data) {
			t.Fatal("accepted frame does not re-encode to itself")
		}
	})
}
