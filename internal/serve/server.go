package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"grefar/internal/serve/snapshot"
	"grefar/internal/tariff"
	"grefar/internal/telemetry"
)

// ServerConfig assembles a Server around an open Session.
type ServerConfig struct {
	// Session is the control loop the server fronts. Required.
	Session *Session
	// Store, when non-nil, persists checkpoints: every SnapshotEvery ticks,
	// on POST /v1/checkpoint, and on Server.Checkpoint (the daemon's
	// graceful-shutdown hook).
	Store *snapshot.Store
	// SnapshotEvery checkpoints automatically after every n-th served tick.
	// Zero disables automatic checkpoints (explicit ones still work).
	SnapshotEvery int
	// Registry receives the serve metric families; nil builds a private one.
	Registry *telemetry.Registry
	// EnablePprof mounts /debug/pprof/ on the handler.
	EnablePprof bool
	// MaxBodyBytes bounds ingest request bodies; zero selects 8 MiB.
	MaxBodyBytes int64
	// Now supplies timestamps for the snapshot-age metric; nil selects
	// time.Now (tests inject a fake clock).
	Now func() time.Time
}

// Server exposes a Session over HTTP. Endpoints (all JSON):
//
//	POST /v1/jobs        {"type":0,"count":3} or [{"type":0},{"type":5,"count":2}]
//	POST /v1/jobs/batch  JSONL stream, one job object per line
//	POST /v1/tick        ?n=20 executes n slots (default 1)
//	GET  /v1/status      slot, backlogs, pending, lifetime totals
//	POST /v1/reconfigure {"v":7.5,"beta":100} hot-reloads knobs at the slot boundary
//	POST /v1/checkpoint  forces a durable snapshot write
//	GET  /metrics        Prometheus exposition (plus /healthz, optional pprof)
type Server struct {
	s     *Session
	store *snapshot.Store
	every int
	now   func() time.Time
	mux   *http.ServeMux

	maxBody int64

	// mu serializes ticks, checkpoints, and restore against each other, so
	// the snapshot cadence counter and last-snapshot timestamp stay
	// consistent even with concurrent HTTP tickers.
	mu             sync.Mutex
	ticksSinceSnap int
	lastSnapTime   time.Time

	reg          *telemetry.Registry
	ingested     *telemetry.Counter
	rejectedJobs *telemetry.Counter
	ticks        *telemetry.Counter
	tickErrors   *telemetry.Counter
	tickSeconds  *telemetry.Histogram
	snapshots    *telemetry.Counter
	snapErrors   *telemetry.Counter
	restores     *telemetry.Counter
	snapBytes    *telemetry.Gauge
	snapSlot     *telemetry.Gauge
	snapAge      *telemetry.Gauge
	backlog      *telemetry.Gauge
	pendingJobs  *telemetry.Gauge
	slotGauge    *telemetry.Gauge
}

// tickSecondsBounds buckets tick latency from 10us to ~10s.
var tickSecondsBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// NewServer wires a Session (and optionally a snapshot store) into an HTTP
// handler with the grefar_serve_* metric families registered.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("serve: nil session")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	sv := &Server{
		s:       cfg.Session,
		store:   cfg.Store,
		every:   cfg.SnapshotEvery,
		now:     now,
		reg:     reg,
		maxBody: maxBody,

		ingested:     reg.Counter("grefar_serve_jobs_ingested_total", "Jobs accepted into the pending arrival buffer.").With(),
		rejectedJobs: reg.Counter("grefar_serve_submissions_rejected_total", "Submit batches rejected by validation.").With(),
		ticks:        reg.Counter("grefar_serve_ticks_total", "Slots served.").With(),
		tickErrors:   reg.Counter("grefar_serve_tick_errors_total", "Ticks that failed (scheduler, dynamics, or invariant errors).").With(),
		tickSeconds:  reg.Histogram("grefar_serve_tick_seconds", "Wall-clock latency of one served slot.", tickSecondsBounds).With(),
		snapshots:    reg.Counter("grefar_serve_snapshots_total", "Durable checkpoints written.").With(),
		snapErrors:   reg.Counter("grefar_serve_snapshot_errors_total", "Checkpoint writes that failed.").With(),
		restores:     reg.Counter("grefar_serve_restores_total", "Sessions restored from a snapshot at boot.").With(),
		snapBytes:    reg.Gauge("grefar_serve_snapshot_bytes", "Size of the last checkpoint payload.").With(),
		snapSlot:     reg.Gauge("grefar_serve_snapshot_slot", "Slot counter recorded in the last checkpoint.").With(),
		snapAge:      reg.Gauge("grefar_serve_snapshot_age_seconds", "Seconds since the last checkpoint (as of the last scrape-side update).").With(),
		backlog:      reg.Gauge("grefar_serve_backlog_jobs", "Total queue backlog after the last served slot.").With(),
		pendingJobs:  reg.Gauge("grefar_serve_pending_jobs", "Submitted jobs not yet admitted into the central queues.").With(),
		slotGauge:    reg.Gauge("grefar_serve_slot", "Next slot index to execute.").With(),
	}
	sv.slotGauge.Set(float64(cfg.Session.Slot()))

	mux := telemetry.NewMux(reg, telemetry.MuxOptions{EnablePprof: cfg.EnablePprof})
	mux.HandleFunc("POST /v1/jobs", sv.handleJobs)
	mux.HandleFunc("POST /v1/jobs/batch", sv.handleJobsBatch)
	mux.HandleFunc("POST /v1/tick", sv.handleTick)
	mux.HandleFunc("GET /v1/status", sv.handleStatus)
	mux.HandleFunc("POST /v1/reconfigure", sv.handleReconfigure)
	mux.HandleFunc("POST /v1/checkpoint", sv.handleCheckpoint)
	sv.mux = mux
	return sv, nil
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

// Session returns the fronted session.
func (sv *Server) Session() *Session { return sv.s }

// RestoreOnBoot loads the newest restorable snapshot from the store and
// rewinds the session onto it. A store with no snapshot (first boot) is not
// an error and leaves the session at slot 0; everything else — including a
// corrupt current.snap with a good fallback — is reported via the returned
// LoadResult. Returns nil, nil when there was nothing to restore.
func (sv *Server) RestoreOnBoot() (*snapshot.LoadResult, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.store == nil {
		return nil, nil
	}
	res, err := sv.store.Load()
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			return nil, nil
		}
		return nil, err
	}
	if err := sv.s.RestoreState(res.Payload); err != nil {
		return nil, fmt.Errorf("restore %s: %w", res.Path, err)
	}
	sv.restores.Inc()
	sv.lastSnapTime = sv.now()
	sv.snapSlot.Set(float64(sv.s.Slot()))
	sv.snapBytes.Set(float64(len(res.Payload)))
	sv.slotGauge.Set(float64(sv.s.Slot()))
	sv.updateGauges()
	return res, nil
}

// Checkpoint writes a durable snapshot now (the daemon calls this on
// graceful shutdown; /v1/checkpoint calls it on demand).
func (sv *Server) Checkpoint() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.checkpointLocked()
}

func (sv *Server) checkpointLocked() error {
	if sv.store == nil {
		return fmt.Errorf("serve: no snapshot store configured")
	}
	payload, err := sv.s.EncodeState()
	if err != nil {
		sv.snapErrors.Inc()
		return err
	}
	if err := sv.store.Write(payload); err != nil {
		sv.snapErrors.Inc()
		return err
	}
	sv.snapshots.Inc()
	sv.snapBytes.Set(float64(len(payload)))
	sv.snapSlot.Set(float64(sv.s.Slot()))
	sv.lastSnapTime = sv.now()
	sv.snapAge.Set(0)
	sv.ticksSinceSnap = 0
	return nil
}

// Tick serves one slot, recording latency and maintaining the automatic
// checkpoint cadence. The daemon's wall-clock loop and POST /v1/tick both
// funnel through here.
func (sv *Server) Tick(ctx context.Context) (*TickReport, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	start := sv.now()
	rep, err := sv.s.Tick(ctx)
	sv.tickSeconds.Observe(sv.now().Sub(start).Seconds())
	if err != nil {
		sv.tickErrors.Inc()
		return nil, err
	}
	sv.ticks.Inc()
	sv.updateGauges()
	sv.ticksSinceSnap++
	if sv.store != nil && sv.every > 0 && sv.ticksSinceSnap >= sv.every {
		if err := sv.checkpointLocked(); err != nil {
			return rep, fmt.Errorf("slot %d served, but checkpoint failed: %w", rep.Slot, err)
		}
	}
	return rep, nil
}

func (sv *Server) updateGauges() {
	sv.slotGauge.Set(float64(sv.s.Slot()))
	sv.backlog.Set(sv.s.Lengths().Sum())
	pending := 0
	for _, n := range sv.s.Pending() {
		pending += n
	}
	sv.pendingJobs.Set(float64(pending))
	if !sv.lastSnapTime.IsZero() {
		sv.snapAge.Set(sv.now().Sub(sv.lastSnapTime).Seconds())
	}
}

// --- HTTP handlers ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadJob):
		code = http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// handleJobs ingests one job object or a JSON array of them.
func (sv *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sv.maxBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	var jobs []Job
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(data, &jobs)
	} else {
		var one Job
		err = json.Unmarshal(data, &one)
		jobs = []Job{one}
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body is neither a job object nor an array of jobs"})
		return
	}
	sv.ingest(w, jobs)
}

// handleJobsBatch ingests a JSONL stream, one job object per line. The whole
// stream is validated and applied as one atomic batch.
func (sv *Server) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, sv.maxBody)
	var jobs []Job
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var job Job
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&job); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("line %d: %v", line, err)})
			return
		}
		jobs = append(jobs, job)
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	sv.ingest(w, jobs)
}

func (sv *Server) ingest(w http.ResponseWriter, jobs []Job) {
	accepted, err := sv.s.Submit(jobs)
	if err != nil {
		sv.rejectedJobs.Inc()
		writeError(w, err)
		return
	}
	sv.ingested.Add(float64(accepted))
	pending := 0
	for _, n := range sv.s.Pending() {
		pending += n
	}
	sv.pendingJobs.Set(float64(pending))
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": accepted})
}

// handleTick executes n slots (?n=, default 1) and returns the last slot's
// report.
func (sv *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	n := 1
	if q := r.URL.Query().Get("n"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad n %q", q)})
			return
		}
	}
	var rep *TickReport
	for k := 0; k < n; k++ {
		var err error
		rep, err = sv.Tick(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, rep)
}

// statusBody is the GET /v1/status response.
type statusBody struct {
	Slot           int       `json:"slot"`
	Backlog        float64   `json:"backlog"`
	CentralBacklog []float64 `json:"central_backlog"`
	LocalBacklog   []float64 `json:"local_backlog"`
	Pending        []int     `json:"pending"`
	Submitted      float64   `json:"submitted"`
	V              float64   `json:"v"`
	Beta           float64   `json:"beta"`
	SnapshotSlot   int       `json:"snapshot_slot"`
}

func (sv *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	lengths := sv.s.Lengths()
	cfg := sv.s.Config()
	body := statusBody{
		Slot:           sv.s.Slot(),
		Backlog:        lengths.Sum(),
		CentralBacklog: lengths.Central,
		Pending:        sv.s.Pending(),
		Submitted:      sv.s.Submitted(),
		V:              cfg.V,
		Beta:           cfg.Beta,
		SnapshotSlot:   int(sv.snapSlot.Value()),
	}
	body.LocalBacklog = make([]float64, len(lengths.Local))
	for i := range lengths.Local {
		for _, v := range lengths.Local[i] {
			body.LocalBacklog[i] += v
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// reconfigureBody is the POST /v1/reconfigure request: pointer fields
// distinguish "leave unchanged" from explicit zeros. Tariff selects "linear"
// (the baseline), "quadratic" (with scale), or "tiered" (with limits and
// multipliers).
type reconfigureBody struct {
	V      *float64    `json:"v,omitempty"`
	Beta   *float64    `json:"beta,omitempty"`
	Tariff *tariffBody `json:"tariff,omitempty"`
}

type tariffBody struct {
	Kind        string    `json:"kind"`
	Scale       float64   `json:"scale,omitempty"`
	Limits      []float64 `json:"limits,omitempty"`
	Multipliers []float64 `json:"multipliers,omitempty"`
}

func (sv *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, sv.maxBody))
	dec.DisallowUnknownFields()
	var body reconfigureBody
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	cfg := sv.s.Config()
	if body.V != nil {
		cfg.V = *body.V
	}
	if body.Beta != nil {
		cfg.Beta = *body.Beta
	}
	if body.Tariff != nil {
		trf, err := buildTariff(*body.Tariff)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		cfg.Tariff = trf
	}
	if err := sv.s.Reconfigure(cfg); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"slot": sv.s.Slot(), "v": cfg.V, "beta": cfg.Beta})
}

// buildTariff maps the wire form onto the tariff implementations.
func buildTariff(b tariffBody) (tariff.Tariff, error) {
	switch b.Kind {
	case "linear", "":
		return nil, nil
	case "quadratic":
		return tariff.NewQuadratic(b.Scale)
	case "tiered":
		return tariff.NewTiered(b.Limits, b.Multipliers)
	default:
		return nil, fmt.Errorf("unknown tariff kind %q (want linear, quadratic, or tiered)", b.Kind)
	}
}

func (sv *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if err := sv.Checkpoint(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slot":  int(sv.snapSlot.Value()),
		"bytes": int(sv.snapBytes.Value()),
	})
}
