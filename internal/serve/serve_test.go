package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"grefar/internal/core"
	"grefar/internal/queue"
	"grefar/internal/sim"
)

// testConfig builds a serving-mode session config: the reference environment
// with the workload generator removed, so every arrival comes from Submit.
func testConfig(t *testing.T, sched core.Config) SessionConfig {
	t.Helper()
	in, err := sim.NewReferenceInputs(2012, 256)
	if err != nil {
		t.Fatal(err)
	}
	in.Workload = nil
	return SessionConfig{
		Inputs:    in,
		Scheduler: sched,
		Sim:       sim.Options{ValidateActions: true, Check: true},
	}
}

// arrivalSchedule is a deterministic ingest stream: the jobs submitted
// before each slot's tick. Replaying it drives identical sessions.
func arrivalSchedule(slots, j int) [][]Job {
	out := make([][]Job, slots)
	for s := range out {
		var jobs []Job
		for typ := 0; typ < j; typ++ {
			if n := (s + 3*typ) % 7; n > 0 {
				jobs = append(jobs, Job{Type: typ, Count: n})
			}
		}
		out[s] = jobs
	}
	return out
}

func TestSessionSubmitValidation(t *testing.T) {
	s, err := NewSession(testConfig(t, core.Config{V: 7.5}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit([]Job{{Type: -1}}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("negative type: got %v, want ErrBadJob", err)
	}
	if _, err := s.Submit([]Job{{Type: s.Cluster().J()}}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("out-of-range type: got %v, want ErrBadJob", err)
	}
	// Batches are atomic: a bad tail must not apply the good head.
	if _, err := s.Submit([]Job{{Type: 0, Count: 5}, {Type: 1, Count: -2}}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("negative count: got %v, want ErrBadJob", err)
	}
	for _, n := range s.Pending() {
		if n != 0 {
			t.Fatalf("rejected batch leaked into pending: %v", s.Pending())
		}
	}
	// Zero count means one job; valid batches accumulate.
	accepted, err := s.Submit([]Job{{Type: 0}, {Type: 0, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 5 || s.Pending()[0] != 5 || s.Submitted() != 5 {
		t.Fatalf("accepted=%d pending=%v submitted=%v", accepted, s.Pending(), s.Submitted())
	}
}

func TestSessionTickAdmitsWithArrivalCap(t *testing.T) {
	s, err := NewSession(testConfig(t, core.Config{V: 7.5}))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cluster()
	amax := c.JobTypes[0].MaxArrival
	if amax <= 0 {
		t.Skip("reference job type 0 has no arrival bound")
	}
	if _, err := s.Submit([]Job{{Type: 0, Count: 2*amax + 3}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slot != 0 || rep.Admitted != amax || rep.Pending != amax+3 {
		t.Fatalf("first tick: %+v, want slot 0 admitting a_max=%d", rep, amax)
	}
	rep, err = s.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != amax || rep.Pending != 3 {
		t.Fatalf("second tick: %+v", rep)
	}
	if s.Slot() != 2 {
		t.Fatalf("slot counter %d after two ticks", s.Slot())
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Tick(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled tick: got %v", err)
	}
}

// TestSessionCheckpointRestore runs 20 slots, checkpoints, restores into a
// fresh session, runs 20 more, and requires the queue trajectory and tick
// reports to match the uninterrupted 40-slot run exactly.
func TestSessionCheckpointRestore(t *testing.T) {
	const slots, split = 40, 20
	cfg := core.Config{V: 7.5, Beta: 100, WarmStart: true}
	schedule := arrivalSchedule(slots, 8)

	drive := func(s *Session, from, to int) ([]TickReport, []queue.Lengths) {
		t.Helper()
		var reps []TickReport
		var traj []queue.Lengths
		for slot := from; slot < to; slot++ {
			if _, err := s.Submit(schedule[slot]); err != nil {
				t.Fatal(err)
			}
			rep, err := s.Tick(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, *rep)
			traj = append(traj, s.Lengths())
		}
		return reps, traj
	}

	full, err := NewSession(testConfig(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantReps, wantTraj := drive(full, 0, slots)

	first, err := NewSession(testConfig(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	drive(first, 0, split)
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Keep driving the original past the checkpoint to prove the snapshot
	// is detached from the live session.
	drive(first, split, split+3)

	second, err := NewSession(testConfig(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if second.Slot() != split {
		t.Fatalf("restored at slot %d, want %d", second.Slot(), split)
	}
	gotReps, gotTraj := drive(second, split, slots)
	if !reflect.DeepEqual(gotTraj, wantTraj[split:]) {
		t.Fatal("restored session's queue trajectory diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(gotReps, wantReps[split:]) {
		t.Fatalf("restored session's tick reports diverged:\n got %+v\nwant %+v", gotReps, wantReps[split:])
	}
	if got, want := second.Submitted(), full.Submitted(); got != want {
		t.Fatalf("lifetime submitted %v, want %v", got, want)
	}
}

func TestSessionRestoreRejections(t *testing.T) {
	s, err := NewSession(testConfig(t, core.Config{V: 7.5}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader([]byte("junk"))); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("framing junk: got %v, want ErrCorruptSnapshot", err)
	}
	if err := s.RestoreState([]byte("not gob")); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("payload junk: got %v, want ErrCorruptSnapshot", err)
	}

	// A structurally valid payload from a different cluster shape.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(checkpointPayload{N: 99, J: 1, M: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreState(buf.Bytes()); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("wrong shape: got %v, want ErrSnapshotMismatch", err)
	}

	// A rejected restore must leave the session usable at its old state.
	if _, err := s.Tick(context.Background()); err != nil {
		t.Fatalf("session unusable after rejected restore: %v", err)
	}
}

func TestSessionReconfigure(t *testing.T) {
	s, err := NewSession(testConfig(t, core.Config{V: 7.5, Beta: 100, WarmStart: true}))
	if err != nil {
		t.Fatal(err)
	}
	schedule := arrivalSchedule(12, 8)
	ctx := context.Background()
	for slot := 0; slot < 6; slot++ {
		if _, err := s.Submit(schedule[slot]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Same convex shape: warm state carries across the V change.
	cfg := s.Config()
	cfg.V = 20
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if got := s.Config(); got.V != 20 || got.Beta != 100 {
		t.Fatalf("config after reconfigure: %+v", got)
	}
	// Crossing beta to zero drops the convex path entirely; the session
	// must keep ticking on the linear solver.
	cfg.Beta = 0
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	for slot := 6; slot < 12; slot++ {
		if _, err := s.Submit(schedule[slot]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if s.Slot() != 12 {
		t.Fatalf("slot %d after reconfigured run", s.Slot())
	}

	if err := s.Reconfigure(core.Config{V: -1}); err == nil {
		t.Fatal("invalid reconfigure accepted")
	}
	if got := s.Config(); got.V != 20 || got.Beta != 0 {
		t.Fatalf("failed reconfigure mutated config: %+v", got)
	}
}

func TestSessionClose(t *testing.T) {
	s, err := NewSession(testConfig(t, core.Config{V: 7.5}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("tick after close: %v", err)
	}
	if _, err := s.Submit([]Job{{Type: 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, err := s.EncodeState(); !errors.Is(err, ErrClosed) {
		t.Fatalf("encode after close: %v", err)
	}
}

// FuzzRestoreSnapshot feeds arbitrary bytes to the full restore path (frame
// decode + gob decode + state validation): it must never panic and must fail
// only with the typed sentinels, leaving the session usable.
func FuzzRestoreSnapshot(f *testing.F) {
	seedCfg := func() SessionConfig {
		in, err := sim.NewReferenceInputs(2012, 64)
		if err != nil {
			f.Fatal(err)
		}
		in.Workload = nil
		return SessionConfig{Inputs: in, Scheduler: core.Config{V: 7.5, Beta: 100, WarmStart: true},
			Sim: sim.Options{ValidateActions: true}}
	}

	// Seed with a real checkpoint and mutations of it.
	seed, err := NewSession(seedCfg())
	if err != nil {
		f.Fatal(err)
	}
	if _, err := seed.Submit([]Job{{Type: 0, Count: 5}, {Type: 3, Count: 2}}); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := seed.Tick(context.Background()); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := seed.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("GFSNAP\r\n"))
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped)

	s, err := NewSession(seedCfg())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		err := s.Restore(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) && !errors.Is(err, ErrSnapshotVersion) &&
				!errors.Is(err, ErrSnapshotMismatch) {
				t.Fatalf("untyped restore error: %v", err)
			}
		}
		// Whatever happened, the session must still tick.
		if _, err := s.Tick(context.Background()); err != nil {
			t.Fatalf("session broken after restore attempt: %v", err)
		}
	})
}
