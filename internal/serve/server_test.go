package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grefar/internal/core"
	"grefar/internal/serve/snapshot"
)

func newTestServer(t *testing.T, store *snapshot.Store, every int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewSession(testConfig(t, core.Config{V: 7.5, Beta: 100}))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewServer(ServerConfig{Session: s, Store: store, SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	return sv, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	data, _ := io.ReadAll(resp.Body)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("non-JSON response %q: %v", data, err)
		}
	}
	return resp.StatusCode, out
}

func TestServerEndpoints(t *testing.T) {
	sv, ts := newTestServer(t, nil, 0)

	// Single object, array, and JSONL batch ingestion.
	code, out := postJSON(t, ts.URL+"/v1/jobs", `{"type":0,"count":3}`)
	if code != http.StatusAccepted || out["accepted"].(float64) != 3 {
		t.Fatalf("single job: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/v1/jobs", `[{"type":1,"count":2},{"type":2}]`)
	if code != http.StatusAccepted || out["accepted"].(float64) != 3 {
		t.Fatalf("array: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/v1/jobs/batch", "{\"type\":3,\"count\":4}\n\n{\"type\":4}\n")
	if code != http.StatusAccepted || out["accepted"].(float64) != 5 {
		t.Fatalf("batch: %d %v", code, out)
	}

	// Rejections: unknown type, malformed JSON, unknown field.
	if code, _ := postJSON(t, ts.URL+"/v1/jobs", `{"type":999}`); code != http.StatusBadRequest {
		t.Fatalf("unknown type accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/jobs", `{nope`); code != http.StatusBadRequest {
		t.Fatalf("malformed body accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/jobs/batch", `{"type":0,"bogus":1}`+"\n"); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}

	// Tick five slots at once.
	code, out = postJSON(t, ts.URL+"/v1/tick?n=5", "")
	if code != http.StatusOK || out["slot"].(float64) != 4 {
		t.Fatalf("tick n=5: %d %v", code, out)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/tick?n=0", ""); code != http.StatusBadRequest {
		t.Fatalf("n=0 accepted: %d", code)
	}

	// Status reflects the served slots and ingested jobs.
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status statusBody
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Slot != 5 || status.Submitted != 11 || status.V != 7.5 || status.Beta != 100 {
		t.Fatalf("status: %+v", status)
	}

	// Hot reload V and beta at the slot boundary, then keep ticking.
	code, out = postJSON(t, ts.URL+"/v1/reconfigure", `{"v":20,"beta":0}`)
	if code != http.StatusOK || out["v"].(float64) != 20 {
		t.Fatalf("reconfigure: %d %v", code, out)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/reconfigure", `{"v":-3}`); code != http.StatusInternalServerError {
		t.Fatalf("invalid reconfigure status: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/reconfigure", `{"tariff":{"kind":"nope"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown tariff accepted: %d", code)
	}
	code, out = postJSON(t, ts.URL+"/v1/reconfigure", `{"tariff":{"kind":"quadratic","scale":500}}`)
	if code != http.StatusOK {
		t.Fatalf("quadratic tariff reconfigure: %d %v", code, out)
	}
	if code, _ = postJSON(t, ts.URL+"/v1/tick", ""); code != http.StatusOK {
		t.Fatalf("tick after reconfigure: %d", code)
	}

	// No store configured: checkpoint endpoint reports failure.
	if code, _ := postJSON(t, ts.URL+"/v1/checkpoint", ""); code != http.StatusInternalServerError {
		t.Fatalf("checkpoint without store: %d", code)
	}

	// Metrics exposition carries the serve families.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"grefar_serve_jobs_ingested_total 11",
		"grefar_serve_ticks_total 6",
		"grefar_serve_tick_seconds_count 6",
		"grefar_serve_slot 6",
	} {
		if !strings.Contains(string(metrics), fam) {
			t.Fatalf("metrics missing %q:\n%s", fam, metrics)
		}
	}
	_ = sv
}

func TestServerSnapshotCadenceAndRestore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	store, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, store, 5)

	if code, _ := postJSON(t, ts.URL+"/v1/jobs", `{"type":0,"count":40}`); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/tick?n=12", ""); code != http.StatusOK {
		t.Fatal("tick failed")
	}
	// Cadence 5 over 12 ticks: snapshots at slots 5 and 10.
	res, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	payload5, err := os.ReadFile(store.PrevPath())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Decode(payload5); err != nil {
		t.Fatal(err)
	}

	// Boot a fresh server from the store: it must resume at slot 10.
	store2, err := snapshot.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sv2, _ := newTestServer(t, store2, 5)
	boot, err := sv2.RestoreOnBoot()
	if err != nil {
		t.Fatal(err)
	}
	if boot == nil || boot.Fallback || sv2.Session().Slot() != 10 {
		t.Fatalf("boot restore: %+v, slot %d", boot, sv2.Session().Slot())
	}

	// Crash consistency: truncate current.snap mid-write; the next boot
	// falls back to prev (slot 5) and surfaces ErrCorruptSnapshot.
	if err := os.WriteFile(store.CurrentPath(), res.Payload[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	sv3, _ := newTestServer(t, store2, 5)
	boot, err = sv3.RestoreOnBoot()
	if err != nil {
		t.Fatal(err)
	}
	if boot == nil || !boot.Fallback {
		t.Fatalf("expected fallback restore, got %+v", boot)
	}
	if !errors.Is(boot.CurrentErr, ErrCorruptSnapshot) {
		t.Fatalf("CurrentErr = %v, want ErrCorruptSnapshot", boot.CurrentErr)
	}
	if got := sv3.Session().Slot(); got != 5 {
		t.Fatalf("fallback restored slot %d, want 5", got)
	}

	// Empty store: not an error, session stays at slot 0.
	empty, err := snapshot.NewStore(filepath.Join(t.TempDir(), "none"))
	if err != nil {
		t.Fatal(err)
	}
	sv4, _ := newTestServer(t, empty, 0)
	boot, err = sv4.RestoreOnBoot()
	if err != nil || boot != nil {
		t.Fatalf("empty store boot: %v %+v", err, boot)
	}
	if sv4.Session().Slot() != 0 {
		t.Fatal("empty store moved the slot counter")
	}
}

func TestServerForcedCheckpoint(t *testing.T) {
	store, err := snapshot.NewStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, store, 0)
	if code, _ := postJSON(t, ts.URL+"/v1/tick?n=3", ""); code != http.StatusOK {
		t.Fatal("tick failed")
	}
	code, out := postJSON(t, ts.URL+"/v1/checkpoint", "")
	if code != http.StatusOK || out["slot"].(float64) != 3 {
		t.Fatalf("forced checkpoint: %d %v", code, out)
	}
	res, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) == 0 {
		t.Fatal("empty checkpoint payload")
	}
}
