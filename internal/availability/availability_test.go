package availability

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"grefar/internal/model"
	"grefar/internal/workload"
)

func TestStaticProcess(t *testing.T) {
	s := &Static{Avail: [][]float64{{5}, {7}}}
	if s.At(0)[0][0] != 5 || s.At(99)[1][0] != 7 {
		t.Error("static availability not static")
	}
}

func TestTraceWrap(t *testing.T) {
	tr := &Trace{Values: [][][]float64{{{1}}, {{2}}}}
	if tr.At(0)[0][0] != 1 || tr.At(3)[0][0] != 2 || tr.At(-1)[0][0] != 2 {
		t.Error("wrap-around broken")
	}
	if (&Trace{}).At(0) != nil {
		t.Error("empty trace should return nil")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestGenerateValidation(t *testing.T) {
	c := model.NewReferenceCluster()
	rng := rand.New(rand.NewSource(1))
	p := ReferenceParams()
	if _, err := Generate(rng, c, 0, p); err == nil {
		t.Error("zero length accepted")
	}
	bad := ReferenceParams()
	bad.Base = bad.Base[:1]
	if _, err := Generate(rng, c, 5, bad); err == nil {
		t.Error("wrong base shape accepted")
	}
	bad = ReferenceParams()
	bad.Base[0][0] = -1
	if _, err := Generate(rng, c, 5, bad); err == nil {
		t.Error("negative base accepted")
	}
	bad = ReferenceParams()
	bad.InteractiveShare = 1.0
	if _, err := Generate(rng, c, 5, bad); err == nil {
		t.Error("interactive share 1.0 accepted")
	}
	bad = ReferenceParams()
	bad.DiurnalDepth = 2
	if _, err := Generate(rng, c, 5, bad); err == nil {
		t.Error("diurnal depth 2 accepted")
	}
	bad = ReferenceParams()
	bad.Jitter = -1
	if _, err := Generate(rng, c, 5, bad); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestGenerateBoundsAndFloor(t *testing.T) {
	c := model.NewReferenceCluster()
	tr, err := NewReferenceAvailability(99, c, 24*100)
	if err != nil {
		t.Fatal(err)
	}
	p := ReferenceParams()
	for t2 := 0; t2 < tr.Len(); t2++ {
		a := tr.At(t2)
		for i := range a {
			for k, v := range a[i] {
				base := p.Base[i][k]
				if v < p.MinShare*base-1e-9 {
					t.Fatalf("slot %d dc %d: availability %v below floor %v", t2, i, v, p.MinShare*base)
				}
				if v > base+1e-9 {
					t.Fatalf("slot %d dc %d: availability %v above base %v", t2, i, v, base)
				}
			}
		}
	}
}

func TestGenerateDiurnalDip(t *testing.T) {
	// Afternoon availability should be lower on average than night
	// availability (interactive workloads peak during the day).
	c := model.NewReferenceCluster()
	tr, err := NewReferenceAvailability(7, c, 24*200)
	if err != nil {
		t.Fatal(err)
	}
	var night, day float64
	for d := 0; d < 200; d++ {
		night += tr.At(24*d + 4)[0][0]
		day += tr.At(24*d + 16)[0][0]
	}
	if day >= night {
		t.Errorf("day availability %v should be below night %v", day, night)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := model.NewReferenceCluster()
	a, err := NewReferenceAvailability(3, c, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReferenceAvailability(3, c, 50)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 50; t2++ {
		av, bv := a.At(t2), b.At(t2)
		for i := range av {
			for k := range av[i] {
				if av[i][k] != bv[i][k] {
					t.Fatalf("same seed differs at %d/%d/%d", t2, i, k)
				}
			}
		}
	}
}

func TestPeakWork(t *testing.T) {
	c := model.NewReferenceCluster()
	// 18*1 + 11*4 + 11*1 + 6*3 + 12*1 + 6*2 + 9*1 + 5*2 = 134.
	if got := PeakWork(c); math.Abs(got-134) > 1e-12 {
		t.Errorf("PeakWork = %v, want 134", got)
	}
	// Structural slackness: even the worst-case arrival burst fits inside
	// the reference availability floor, so the realized sample path always
	// satisfies condition (22).
	p := ReferenceParams()
	var floor float64
	for i, row := range p.Base {
		for k, b := range row {
			floor += b * p.MinShare * c.DataCenters[i].Servers[k].Speed
		}
	}
	if floor <= PeakWork(c) {
		t.Errorf("availability floor %v does not cover worst-case arrivals %v", floor, PeakWork(c))
	}
}

func TestReferenceSatisfiesSlackness(t *testing.T) {
	// The reference availability must satisfy the capacity slackness
	// condition against the realized reference arrivals — the prerequisite
	// of Theorem 1. (Uses the same seeds as sim.NewReferenceInputs.)
	c := model.NewReferenceCluster()
	tr, err := NewReferenceAvailability(2012+2, c, 24*500)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.NewReferenceWorkload(2012+1, c, 24*500)
	if err != nil {
		t.Fatal(err)
	}
	work := make([]float64, wl.Len())
	for t2 := range work {
		work[t2] = wl.TotalWork(c, t2)
	}
	margin, err := VerifySlackness(c, tr, work, 1.0)
	if err != nil {
		t.Fatalf("slackness violated: %v", err)
	}
	if margin < 1.0 {
		t.Errorf("margin = %v, want >= 1", margin)
	}
}

func TestVerifySlacknessDetectsViolation(t *testing.T) {
	c := model.NewReferenceCluster()
	tiny := &Static{Avail: [][]float64{{1}, {1}, {1}}}
	if _, err := VerifySlackness(c, tiny, []float64{50, 50}, 1.0); err == nil {
		t.Error("undersized system passed slackness check")
	}
}

func TestAvailabilityReadCSV(t *testing.T) {
	c := model.NewReferenceCluster()
	in := "a,b,c\n10,20,30\n11,21,31\n"
	tr, err := ReadCSV(strings.NewReader(in), c)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.At(1)[2][0] != 31 {
		t.Errorf("At(1)[2][0] = %v, want 31", tr.At(1)[2][0])
	}
	for _, bad := range []string{"", "a,b,c\n", "a,b\n1,2\n", "a,b,c\n1,2\n", "a,b,c\nx,2,3\n", "a,b,c\n-1,2,3\n"} {
		if _, err := ReadCSV(strings.NewReader(bad), c); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}
