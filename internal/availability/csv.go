package availability

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"grefar/internal/model"
)

// ReadCSV loads an availability trace from CSV: one column per (data center,
// server type) pair in cluster order, one row per slot, with a header row.
// It is the inverse of the tracegen tool's output and the hook for replaying
// recorded fleet capacity instead of the synthetic process.
func ReadCSV(r io.Reader, c *model.Cluster) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("csv needs a header and at least one data row, got %d rows", len(rows))
	}
	want := 0
	for i := 0; i < c.N(); i++ {
		want += c.K(i)
	}
	if len(rows[0]) != want {
		return nil, fmt.Errorf("csv has %d columns, cluster needs %d (one per data center and server type)", len(rows[0]), want)
	}
	values := make([][][]float64, 0, len(rows)-1)
	for rIdx, rowCells := range rows[1:] {
		if len(rowCells) != want {
			return nil, fmt.Errorf("row %d has %d fields, want %d", rIdx+2, len(rowCells), want)
		}
		slot := make([][]float64, c.N())
		col := 0
		for i := 0; i < c.N(); i++ {
			slot[i] = make([]float64, c.K(i))
			for k := 0; k < c.K(i); k++ {
				v, err := strconv.ParseFloat(rowCells[col], 64)
				if err != nil {
					return nil, fmt.Errorf("row %d column %d: %w", rIdx+2, col+1, err)
				}
				if v < 0 {
					return nil, fmt.Errorf("row %d column %d: negative availability %v", rIdx+2, col+1, v)
				}
				slot[i][k] = v
				col++
			}
		}
		values = append(values, slot)
	}
	return &Trace{Values: values}, nil
}
