// Package availability models the time-varying number of servers available
// for batch processing, n_{i,k}(t). Availability changes when servers fail,
// are upgraded, or are claimed by higher-priority interactive workloads; the
// paper treats these as external events with arbitrary (possibly
// non-stationary) dynamics, subject only to the slackness conditions
// (20)-(22) that guarantee the system can drain its queues.
package availability

import (
	"fmt"
	"math"
	"math/rand"

	"grefar/internal/model"
)

// Process yields the availability matrix n_{i,k}(t) at slot t.
// Implementations must be deterministic in t.
type Process interface {
	// At returns availability per data center and server type. Callers must
	// not mutate the result.
	At(t int) [][]float64
}

// Static is a time-invariant availability matrix.
type Static struct {
	Avail [][]float64
}

var _ Process = (*Static)(nil)

// At implements Process.
func (s *Static) At(int) [][]float64 { return s.Avail }

// Trace replays a materialized availability series, wrapping at the end.
type Trace struct {
	// Values[t][i][k] is n_{i,k}(t).
	Values [][][]float64
}

var _ Process = (*Trace)(nil)

// At implements Process.
func (tr *Trace) At(t int) [][]float64 {
	if len(tr.Values) == 0 {
		return nil
	}
	return tr.Values[((t%len(tr.Values))+len(tr.Values))%len(tr.Values)]
}

// Len returns the number of materialized slots.
func (tr *Trace) Len() int { return len(tr.Values) }

// Params configure the fluctuating availability generator.
type Params struct {
	// Base[i][k] is the installed server count per data center and type.
	Base [][]float64
	// InteractiveShare in [0,1) is the average fraction of servers claimed
	// by interactive workloads (unavailable for batch).
	InteractiveShare float64
	// DiurnalDepth in [0,1] makes the interactive claim follow the day:
	// more servers are taken from batch during the afternoon peak.
	DiurnalDepth float64
	// Jitter is the standard deviation of multiplicative noise on the
	// available count (relative, e.g. 0.05).
	Jitter float64
	// MinShare in (0,1] floors availability at this fraction of Base, so
	// capacity never collapses entirely.
	MinShare float64
}

func (p Params) withDefaults() Params {
	if p.MinShare <= 0 {
		p.MinShare = 0.4
	}
	return p
}

// Generate materializes n slots of fluctuating availability.
func Generate(rng *rand.Rand, c *model.Cluster, n int, p Params) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace length %d is not positive", n)
	}
	if len(p.Base) != c.N() {
		return nil, fmt.Errorf("base has %d data centers, cluster has %d", len(p.Base), c.N())
	}
	for i := range p.Base {
		if len(p.Base[i]) != c.K(i) {
			return nil, fmt.Errorf("data center %d: base has %d server types, cluster has %d", i, len(p.Base[i]), c.K(i))
		}
		for k, b := range p.Base[i] {
			if b < 0 {
				return nil, fmt.Errorf("data center %d type %d: negative base %v", i, k, b)
			}
		}
	}
	if p.InteractiveShare < 0 || p.InteractiveShare >= 1 {
		return nil, fmt.Errorf("interactive share %v outside [0,1)", p.InteractiveShare)
	}
	if p.DiurnalDepth < 0 || p.DiurnalDepth > 1 {
		return nil, fmt.Errorf("diurnal depth %v outside [0,1]", p.DiurnalDepth)
	}
	if p.Jitter < 0 {
		return nil, fmt.Errorf("negative jitter %v", p.Jitter)
	}
	p = p.withDefaults()

	values := make([][][]float64, n)
	for t := 0; t < n; t++ {
		slot := make([][]float64, c.N())
		hour := float64(t % 24)
		day := -math.Cos(2 * math.Pi * (hour - 4) / 24) // -1 at 4am, +1 at 4pm
		for i := range slot {
			slot[i] = make([]float64, c.K(i))
			for k := range slot[i] {
				claimed := p.InteractiveShare * (1 + p.DiurnalDepth*day)
				share := 1 - claimed
				if p.Jitter > 0 {
					share *= 1 + p.Jitter*rng.NormFloat64()
				}
				if share < p.MinShare {
					share = p.MinShare
				}
				if share > 1 {
					share = 1
				}
				slot[i][k] = p.Base[i][k] * share
			}
		}
		values[t] = slot
	}
	return &Trace{Values: values}, nil
}

// ReferenceParams returns the availability configuration of the reference
// system: installed bases sized so total capacity comfortably exceeds the
// worst-case arriving work (the slackness conditions), with a 15% average
// interactive claim that deepens during the day.
func ReferenceParams() Params {
	return Params{
		Base:             [][]float64{{55}, {72}, {50}},
		InteractiveShare: 0.10,
		DiurnalDepth:     0.4,
		Jitter:           0.03,
		MinShare:         0.82,
	}
}

// NewReferenceAvailability materializes n slots for the reference cluster.
func NewReferenceAvailability(seed int64, c *model.Cluster, n int) (*Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	return Generate(rng, c, n, ReferenceParams())
}

// VerifySlackness checks the capacity half of the paper's slackness
// conditions (20)-(22) on a realized sample path: at every slot t the total
// capacity must exceed the service demand that actually arrived, work[t], by
// at least delta. (The paper states the conditions for the realized states
// x(t) and arrivals a_j(t), not for worst-case bounds.) It returns the worst
// observed margin.
func VerifySlackness(c *model.Cluster, proc Process, work []float64, delta float64) (float64, error) {
	worst := math.Inf(1)
	st := model.NewState(c)
	for t := range work {
		avail := proc.At(t)
		for i := range avail {
			copy(st.Avail[i], avail[i])
		}
		var capacity float64
		for i := 0; i < c.N(); i++ {
			capacity += st.Capacity(c, i)
		}
		margin := capacity - work[t]
		if margin < worst {
			worst = margin
		}
		if margin < delta {
			return margin, fmt.Errorf("slot %d: capacity %v leaves margin %v < delta %v over arriving work %v",
				t, capacity, margin, delta, work[t])
		}
	}
	return worst, nil
}

// PeakWork returns the worst-case service demand arriving in one slot,
// sum_j a_max_j * d_j, the bound implied by paper eq. 1.
func PeakWork(c *model.Cluster) float64 {
	var w float64
	for _, jt := range c.JobTypes {
		w += float64(jt.MaxArrival) * jt.Demand
	}
	return w
}
