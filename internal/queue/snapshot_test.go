package queue

import (
	"testing"

	"grefar/internal/model"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := model.NewReferenceCluster()
	s := NewSet(c)

	arr := make([]int, c.J())
	arr[0], arr[3] = 5, 2
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}
	act := model.NewAction(c)
	act.Route[1][0] = 3
	if _, err := s.Apply(1, act); err != nil {
		t.Fatal(err)
	}
	arr2 := make([]int, c.J())
	arr2[0] = 4
	if err := s.Arrive(1, arr2); err != nil {
		t.Fatal(err)
	}

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSet(c)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Backlogs identical.
	a, b := s.Lengths(), restored.Lengths()
	for j := range a.Central {
		if a.Central[j] != b.Central[j] {
			t.Errorf("central[%d]: %v != %v", j, a.Central[j], b.Central[j])
		}
	}
	for i := range a.Local {
		for j := range a.Local[i] {
			if a.Local[i][j] != b.Local[i][j] {
				t.Errorf("local[%d][%d]: %v != %v", i, j, a.Local[i][j], b.Local[i][j])
			}
		}
	}

	// Delay accounting identical: process from both and compare waiting
	// times, which requires the arrival slots to have survived.
	act = model.NewAction(c)
	act.Process[1][0] = 3
	fs1, err := s.Apply(5, act)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := restored.Apply(5, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs1.LocalDelaySum[1][0] != fs2.LocalDelaySum[1][0] {
		t.Errorf("delay sums differ after restore: %v vs %v", fs1.LocalDelaySum[1][0], fs2.LocalDelaySum[1][0])
	}
}

// TestRestorePreservesLiveTotal pins the ulp contract: the ledger's
// incrementally-maintained total — not the re-summed cohorts — is what a
// restore reproduces, including the clamp-at-zero case where the live total
// is exactly 0 while a cohort retains an ulp-sized residue.
func TestRestorePreservesLiveTotal(t *testing.T) {
	var l Ledger
	l.Push(0, 0.1)
	l.Push(0, 0.2)
	// Interleaved pops drift the incrementally-maintained total away from
	// the re-summed cohort amounts in the last ulp.
	l.PopVisit(2, 0.1+0.2-5e-17, nil)
	live := l.Len()
	restored := &Ledger{}
	restored.restore(l.snapshot())
	if got := restored.Len(); got != live {
		t.Errorf("restored total %v, live total %v", got, live)
	}

	// Clamp-at-zero: pop (slightly) more than the total, leaving total == 0
	// with a possible residual cohort. The restored total must be exactly 0
	// too, not the residue re-sum.
	var z Ledger
	z.Push(0, 0.1)
	z.Push(1, 0.2)
	z.PopVisit(2, 0.30000000000000004, nil)
	if z.Len() != 0 {
		t.Skipf("pop did not clamp total to zero (got %v); clamp case not reachable here", z.Len())
	}
	zr := &Ledger{}
	zr.restore(z.snapshot())
	if got := zr.Len(); got != 0 {
		t.Errorf("restored clamped total %v, want exactly 0", got)
	}

	// Legacy snapshots (no recorded total) fall back to the re-sum.
	data := l.snapshot()
	data.HasTotal = false
	data.Total = 0
	legacy := &Ledger{}
	legacy.restore(data)
	var sum float64
	for _, c := range data.Cohorts {
		sum += c.Amount
	}
	if got := legacy.Len(); got != sum {
		t.Errorf("legacy restore total %v, want re-summed %v", got, sum)
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	c := model.NewReferenceCluster()
	s := NewSet(c)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	small := &model.Cluster{
		DataCenters: c.DataCenters[:1],
		JobTypes:    c.JobTypes,
		Accounts:    c.Accounts,
	}
	other := NewSet(small)
	if err := other.Restore(snap); err == nil {
		t.Error("wrong-shape snapshot accepted")
	}
	if err := s.Restore([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestRestoreOverwritesExistingState(t *testing.T) {
	c := model.NewReferenceCluster()
	s := NewSet(c)
	arr := make([]int, c.J())
	arr[0] = 7
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate further, then restore: state must rewind.
	arr[0] = 5
	if err := s.Arrive(1, arr); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.CentralLen(0); got != 7 {
		t.Errorf("CentralLen = %v, want 7 after rewind", got)
	}
}
