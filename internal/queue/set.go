package queue

import (
	"fmt"

	"grefar/internal/model"
)

// Lengths is a snapshot of all queue backlogs Theta(t): the central queue
// length per job type and the local queue length per (data center, job type)
// pair. It is the input the GreFar per-slot optimization consumes.
type Lengths struct {
	// Central[j] is Q_j(t).
	Central []float64
	// Local[i][j] is q_{i,j}(t).
	Local [][]float64
}

// Sum returns the total backlog across all queues, the quantity bounded by
// P/delta in the proof of Theorem 1.
func (l Lengths) Sum() float64 {
	var s float64
	for _, q := range l.Central {
		s += q
	}
	for i := range l.Local {
		for _, q := range l.Local[i] {
			s += q
		}
	}
	return s
}

// Clone returns a deep copy of the snapshot.
func (l Lengths) Clone() Lengths {
	cp := Lengths{
		Central: append([]float64(nil), l.Central...),
		Local:   make([][]float64, len(l.Local)),
	}
	for i := range l.Local {
		cp.Local[i] = append([]float64(nil), l.Local[i]...)
	}
	return cp
}

// FlowStats summarizes what one Apply call actually moved, including the
// delay samples needed for the paper's "Average Delay in DC #i" curves.
type FlowStats struct {
	// Routed[i][j] is the number of type-j jobs actually moved from the
	// central queue to data center i (after capping at queue content).
	Routed [][]float64
	// Processed[i][j] is the number of type-j jobs actually processed at
	// data center i (after capping at queue content).
	Processed [][]float64
	// CentralDelaySum[j] is the summed waiting time (in slots, weighted by
	// job count) of the jobs routed out of the central queue this slot.
	CentralDelaySum []float64
	// CentralRouted[j] is the total number of type-j jobs routed this slot.
	CentralRouted []float64
	// LocalDelaySum[i][j] is the summed waiting time of the jobs processed
	// at data center i this slot.
	LocalDelaySum [][]float64
	// LocalDelaySamples[i] lists the (delay, jobs) cohorts processed at data
	// center i this slot, for delay-distribution metrics.
	LocalDelaySamples [][]DelaySample
}

// DelaySample is one cohort of jobs that completed with the same waiting
// time.
type DelaySample struct {
	// Delay is the waiting time in slots.
	Delay float64
	// Jobs is the number of jobs in the cohort.
	Jobs float64
}

// TotalRouted returns the total number of jobs routed this slot.
func (f *FlowStats) TotalRouted() float64 {
	var s float64
	for _, r := range f.CentralRouted {
		s += r
	}
	return s
}

// Set tracks the physical queues of the system with per-cohort FIFO ledgers.
// Unlike the Virtual dynamics used by the Lyapunov analysis, a Set caps the
// scheduler's routing and processing decisions at the jobs actually present,
// so queue lengths always equal real backlog and measured delays are exact.
type Set struct {
	cluster *model.Cluster
	central []Ledger   // per job type j
	local   [][]Ledger // per data center i, job type j
}

// NewSet builds an empty queue set shaped for the cluster.
func NewSet(c *model.Cluster) *Set {
	s := &Set{
		cluster: c,
		central: make([]Ledger, c.J()),
		local:   make([][]Ledger, c.N()),
	}
	for i := range s.local {
		s.local[i] = make([]Ledger, c.J())
	}
	return s
}

// CentralLen returns Q_j(t).
func (s *Set) CentralLen(j int) float64 { return s.central[j].Len() }

// LocalLen returns q_{i,j}(t).
func (s *Set) LocalLen(i, j int) float64 { return s.local[i][j].Len() }

// Lengths returns a snapshot of all backlogs.
func (s *Set) Lengths() Lengths {
	out := Lengths{
		Central: make([]float64, len(s.central)),
		Local:   make([][]float64, len(s.local)),
	}
	for j := range s.central {
		out.Central[j] = s.central[j].Len()
	}
	for i := range s.local {
		out.Local[i] = make([]float64, len(s.local[i]))
		for j := range s.local[i] {
			out.Local[i][j] = s.local[i][j].Len()
		}
	}
	return out
}

// Arrive records a_j(t) new jobs of each type entering the central queue
// during slot t. len(arrivals) must equal the number of job types.
func (s *Set) Arrive(t int, arrivals []int) error {
	if len(arrivals) != len(s.central) {
		return fmt.Errorf("got %d arrival counts, want %d", len(arrivals), len(s.central))
	}
	for j, a := range arrivals {
		if a < 0 {
			return fmt.Errorf("job type %d: negative arrivals %d", j, a)
		}
		s.central[j].Push(t, float64(a))
	}
	return nil
}

// Apply executes the movement part of an action during slot t: first it
// processes h_{i,j} jobs from each local queue (capped at queue content),
// then it routes r_{i,j} jobs from the central queues to the local queues
// (capped so the total routed per type never exceeds Q_j(t)). Routed jobs
// enter the local ledgers at slot t, so a job routed at t and processed at
// t+1 has a local delay of exactly one slot — matching the paper's remark
// that the Always policy exhibits an average delay of about one.
//
// Apply returns what actually moved. It does not validate resource
// feasibility; use model.Action.Validate for that.
func (s *Set) Apply(t int, act *model.Action) (*FlowStats, error) {
	n, j := len(s.local), len(s.central)
	if len(act.Route) != n || len(act.Process) != n {
		return nil, fmt.Errorf("action shaped for %d data centers, queues have %d", len(act.Route), n)
	}
	fs := &FlowStats{
		Routed:            make([][]float64, n),
		Processed:         make([][]float64, n),
		CentralDelaySum:   make([]float64, j),
		CentralRouted:     make([]float64, j),
		LocalDelaySum:     make([][]float64, n),
		LocalDelaySamples: make([][]DelaySample, n),
	}
	for i := 0; i < n; i++ {
		if len(act.Route[i]) != j || len(act.Process[i]) != j {
			return nil, fmt.Errorf("data center %d: action has wrong job dimension", i)
		}
		fs.Routed[i] = make([]float64, j)
		fs.Processed[i] = make([]float64, j)
		fs.LocalDelaySum[i] = make([]float64, j)
	}

	// Process from local queues out of the system.
	for i := 0; i < n; i++ {
		for jj := 0; jj < j; jj++ {
			h := act.Process[i][jj]
			if h < 0 {
				return nil, fmt.Errorf("process[%d][%d] = %v is negative", i, jj, h)
			}
			popped, delay := s.local[i][jj].PopVisit(t, h, func(d, jobs float64) {
				fs.LocalDelaySamples[i] = append(fs.LocalDelaySamples[i], DelaySample{Delay: d, Jobs: jobs})
			})
			fs.Processed[i][jj] = popped
			fs.LocalDelaySum[i][jj] = delay
		}
	}

	// Route from central queues into local queues. Routing is capped at the
	// central queue content; when the action over-asks across several data
	// centers the cap is consumed in data-center order.
	for jj := 0; jj < j; jj++ {
		for i := 0; i < n; i++ {
			r := float64(act.Route[i][jj])
			if r < 0 {
				return nil, fmt.Errorf("route[%d][%d] = %v is negative", i, jj, r)
			}
			if r == 0 {
				continue
			}
			popped, delay := s.central[jj].Pop(t, r)
			if popped <= 0 {
				continue
			}
			s.local[i][jj].Push(t, popped)
			fs.Routed[i][jj] = popped
			fs.CentralRouted[jj] += popped
			fs.CentralDelaySum[jj] += delay
		}
	}
	return fs, nil
}

// Virtual applies the queue dynamics (12)-(13) literally, with the max[.,0]
// clipping of the analysis: the scheduler may nominally route or process more
// than is queued, and the excess simply vanishes. The Lyapunov proof bounds
// these virtual lengths; the property tests compare them against the capped
// Set to show capping never increases backlog.
type Virtual struct {
	// Central[j] is Q_j(t).
	Central []float64
	// Local[i][j] is q_{i,j}(t).
	Local [][]float64
}

// NewVirtual builds a zero virtual queue state shaped for the cluster.
func NewVirtual(c *model.Cluster) *Virtual {
	v := &Virtual{
		Central: make([]float64, c.J()),
		Local:   make([][]float64, c.N()),
	}
	for i := range v.Local {
		v.Local[i] = make([]float64, c.J())
	}
	return v
}

// Step advances the dynamics one slot under the given action and arrivals:
// exactly equations (12) and (13) of the paper.
func (v *Virtual) Step(act *model.Action, arrivals []int) {
	for j := range v.Central {
		var routed float64
		for i := range act.Route {
			routed += float64(act.Route[i][j])
		}
		q := v.Central[j] - routed
		if q < 0 {
			q = 0
		}
		v.Central[j] = q + float64(arrivals[j])
	}
	for i := range v.Local {
		for j := range v.Local[i] {
			q := v.Local[i][j] - act.Process[i][j]
			if q < 0 {
				q = 0
			}
			v.Local[i][j] = q + float64(act.Route[i][j])
		}
	}
}

// Lengths returns a snapshot of the virtual backlogs.
func (v *Virtual) Lengths() Lengths {
	out := Lengths{
		Central: append([]float64(nil), v.Central...),
		Local:   make([][]float64, len(v.Local)),
	}
	for i := range v.Local {
		out.Local[i] = append([]float64(nil), v.Local[i]...)
	}
	return out
}
