package queue

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The snapshot format captures every FIFO cohort of every ledger, so a
// restored queue set resumes with exact backlogs *and* exact per-job waiting
// times — a restarted agent or controller keeps measuring delays correctly
// instead of resetting them to zero.

// cohortData is the exported wire form of one FIFO cohort.
type cohortData struct {
	Slot   int
	Amount float64
}

// ledgerData is the exported wire form of one ledger.
type ledgerData struct {
	Cohorts []cohortData
	// Total is the ledger's live incrementally-maintained length. It can
	// differ from the sum of the cohort amounts in the last ulp (the live
	// value accumulates interleaved pushes and pops — including the clamp
	// at zero, so Total can be exactly 0 while a cohort retains an ulp-sized
	// residue), and restoring the exact value is what makes a restored
	// scheduler's decision stream byte-identical to the uninterrupted one.
	Total float64
	// HasTotal distinguishes a recorded Total — even an exact zero — from a
	// snapshot written before the field existed; restore falls back to
	// re-summing the cohorts only when it is unset.
	HasTotal bool
}

// setData is the exported wire form of a whole queue set.
type setData struct {
	Central []ledgerData
	Local   [][]ledgerData
}

// snapshot extracts the live cohorts of a ledger.
func (l *Ledger) snapshot() ledgerData {
	out := ledgerData{Cohorts: make([]cohortData, 0, len(l.entries)-l.head), Total: l.total, HasTotal: true}
	for _, e := range l.entries[l.head:] {
		if e.amount > 0 {
			out.Cohorts = append(out.Cohorts, cohortData{Slot: e.slot, Amount: e.amount})
		}
	}
	return out
}

// restore replaces the ledger contents from a snapshot.
func (l *Ledger) restore(data ledgerData) {
	l.entries = l.entries[:0]
	l.head = 0
	l.total = 0
	for _, c := range data.Cohorts {
		l.Push(c.Slot, c.Amount)
	}
	// Prefer the recorded live total over the re-summed one: the two can
	// differ in the last ulp and exact restoration is the contract. Legacy
	// snapshots carry no total (gob leaves HasTotal false); keep the
	// re-summed value then.
	if data.HasTotal {
		l.total = data.Total
	}
}

// SnapshotLedgers serializes a flat ledger slice (an agent's local queues).
func SnapshotLedgers(ls []Ledger) ([]byte, error) {
	data := make([]ledgerData, len(ls))
	for j := range ls {
		data[j] = ls[j].snapshot()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(data); err != nil {
		return nil, fmt.Errorf("encode ledger snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreLedgers replaces the contents of a flat ledger slice from a
// SnapshotLedgers payload of the same length.
func RestoreLedgers(ls []Ledger, snapshot []byte) error {
	var data []ledgerData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&data); err != nil {
		return fmt.Errorf("decode ledger snapshot: %w", err)
	}
	if len(data) != len(ls) {
		return fmt.Errorf("snapshot has %d ledgers, want %d", len(data), len(ls))
	}
	for j := range ls {
		ls[j].restore(data[j])
	}
	return nil
}

// Snapshot serializes the full queue state (central and local ledgers with
// their arrival slots) with gob.
func (s *Set) Snapshot() ([]byte, error) {
	data := setData{
		Central: make([]ledgerData, len(s.central)),
		Local:   make([][]ledgerData, len(s.local)),
	}
	for j := range s.central {
		data.Central[j] = s.central[j].snapshot()
	}
	for i := range s.local {
		data.Local[i] = make([]ledgerData, len(s.local[i]))
		for j := range s.local[i] {
			data.Local[i][j] = s.local[i][j].snapshot()
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(data); err != nil {
		return nil, fmt.Errorf("encode queue snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the queue state from a Snapshot taken on a set with the
// same shape (same cluster).
func (s *Set) Restore(snapshot []byte) error {
	var data setData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&data); err != nil {
		return fmt.Errorf("decode queue snapshot: %w", err)
	}
	if len(data.Central) != len(s.central) || len(data.Local) != len(s.local) {
		return fmt.Errorf("snapshot shaped %dx%d, set is %dx%d",
			len(data.Central), len(data.Local), len(s.central), len(s.local))
	}
	for i := range data.Local {
		if len(data.Local[i]) != len(s.local[i]) {
			return fmt.Errorf("snapshot site %d has %d job types, set has %d", i, len(data.Local[i]), len(s.local[i]))
		}
	}
	for j := range s.central {
		s.central[j].restore(data.Central[j])
	}
	for i := range s.local {
		for j := range s.local[i] {
			s.local[i][j].restore(data.Local[i][j])
		}
	}
	return nil
}
