package queue_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grefar/internal/model"
	"grefar/internal/queue"
)

// fuzzCluster is a small two-site, two-type system; every type runs anywhere
// so no decode can trip an eligibility error instead of a queue invariant.
func fuzzCluster() *model.Cluster {
	all := []int{0, 1}
	return &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "w", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "e", Servers: []model.ServerType{{Name: "s", Speed: 1.2, Power: 0.9}}},
		},
		JobTypes: []model.JobType{
			{Name: "a", Demand: 1, Eligible: all, Account: 0, MaxArrival: 50, MaxProcess: 100},
			{Name: "b", Demand: 2, Eligible: all, Account: 0, MaxArrival: 50, MaxProcess: 100},
		},
		Accounts: []model.Account{{Name: "acct", Weight: 1}},
	}
}

// FuzzApply drives a queue.Set with arbitrary non-negative arrivals and
// scheduler actions — including wildly infeasible ones that demand more work
// than exists — and checks the ledger invariants the rest of the system
// relies on: lengths never go negative, Apply only moves or removes jobs
// (routing conserves, processing removes at most the commanded amount),
// Arrive adds exactly the arrivals, routed flow never exceeds either the
// command or the central backlog, and the physical Set is dominated
// componentwise by the Virtual dynamics of eqs. (12)-(13).
func FuzzApply(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{8, 255, 254, 253, 0, 1, 2, 128, 127, 126, 64, 63, 62, 31, 200, 100})
	f.Add([]byte{12, 7, 0, 31, 0, 7, 31, 0, 0, 31, 7, 7, 0, 0, 0, 31, 31, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		c := fuzzCluster()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		slots := 1 + int(data[0]%12)
		pos := 1
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}

		set := queue.NewSet(c)
		virt := queue.NewVirtual(c)
		const tol = 1e-9
		var totalArrived float64
		for slot := 0; slot < slots; slot++ {
			act := model.NewAction(c)
			var commandRoute, commandProcess float64
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					act.Route[i][j] = int(next() % 8)
					commandRoute += float64(act.Route[i][j])
					act.Process[i][j] = float64(next()%32) / 4
					commandProcess += act.Process[i][j]
				}
			}
			arrivals := make([]int, c.J())
			for j := range arrivals {
				arrivals[j] = int(next() % 8)
				totalArrived += float64(arrivals[j])
			}

			pre := set.Lengths()
			preCentral := 0.0
			for _, q := range pre.Central {
				preCentral += q
			}
			flow, err := set.Apply(slot, act)
			if err != nil {
				t.Fatalf("slot %d: Apply on non-negative action: %v", slot, err)
			}
			post := set.Lengths()
			assertNonNegative(t, slot, post)

			// Apply routes (conserving) and processes (removing at most the
			// commanded amount): the total can only shrink, and by no more
			// than sum h.
			removed := pre.Sum() - post.Sum()
			if removed < -tol {
				t.Fatalf("slot %d: Apply created %v jobs", slot, -removed)
			}
			if removed > commandProcess+tol {
				t.Fatalf("slot %d: Apply removed %v > commanded processing %v", slot, removed, commandProcess)
			}
			if r := flow.TotalRouted(); r > commandRoute+tol || r > preCentral+tol {
				t.Fatalf("slot %d: routed %v exceeds command %v or central backlog %v", slot, r, commandRoute, preCentral)
			}

			if err := set.Arrive(slot, arrivals); err != nil {
				t.Fatalf("slot %d: Arrive: %v", slot, err)
			}
			var arrived float64
			for _, a := range arrivals {
				arrived += float64(a)
			}
			final := set.Lengths()
			if math.Abs(final.Sum()-(post.Sum()+arrived)) > tol {
				t.Fatalf("slot %d: Arrive changed total by %v, want %v", slot, final.Sum()-post.Sum(), arrived)
			}
			if final.Sum() > totalArrived+tol {
				t.Fatalf("slot %d: backlog %v exceeds everything that ever arrived %v", slot, final.Sum(), totalArrived)
			}

			// The physical queues cap actions at real content, so they can
			// never exceed the clipped virtual dynamics fed the same inputs.
			virt.Step(act, arrivals)
			vl := virt.Lengths()
			for j := range final.Central {
				if final.Central[j] > vl.Central[j]+tol {
					t.Fatalf("slot %d: central[%d] set %v > virtual %v", slot, j, final.Central[j], vl.Central[j])
				}
			}
			for i := range final.Local {
				for j := range final.Local[i] {
					if final.Local[i][j] > vl.Local[i][j]+tol {
						t.Fatalf("slot %d: local[%d][%d] set %v > virtual %v", slot, i, j, final.Local[i][j], vl.Local[i][j])
					}
				}
			}
		}
	})
}

func assertNonNegative(t *testing.T, slot int, l queue.Lengths) {
	t.Helper()
	for j, q := range l.Central {
		if q < 0 {
			t.Fatalf("slot %d: central[%d] = %v negative", slot, j, q)
		}
	}
	for i := range l.Local {
		for j, q := range l.Local[i] {
			if q < 0 {
				t.Fatalf("slot %d: local[%d][%d] = %v negative", slot, i, j, q)
			}
		}
	}
}

// TestSetMatchesVirtualOnFeasibleActions pins the two queue implementations
// together: when every action is feasible against current content — routing
// never asks for more than the central backlog, processing never more than
// the local backlog, and all quantities are integers so float arithmetic is
// exact — the capped Set and the clipped Virtual dynamics must produce
// bit-identical Lengths() trajectories.
func TestSetMatchesVirtualOnFeasibleActions(t *testing.T) {
	c := fuzzCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := queue.NewSet(c)
		virt := queue.NewVirtual(c)
		for slot := 0; slot < 30; slot++ {
			cur := set.Lengths()
			act := model.NewAction(c)
			for j := 0; j < c.J(); j++ {
				remaining := int(cur.Central[j])
				for i := 0; i < c.N(); i++ {
					r := rng.Intn(remaining + 1)
					act.Route[i][j] = r
					remaining -= r
				}
			}
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					act.Process[i][j] = float64(rng.Intn(int(cur.Local[i][j]) + 1))
				}
			}
			arrivals := make([]int, c.J())
			for j := range arrivals {
				arrivals[j] = rng.Intn(9)
			}
			if _, err := set.Apply(slot, act); err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			if err := set.Arrive(slot, arrivals); err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			virt.Step(act, arrivals)
			sl, vl := set.Lengths(), virt.Lengths()
			for j := range sl.Central {
				if sl.Central[j] != vl.Central[j] {
					t.Logf("slot %d: central[%d] set %v != virtual %v", slot, j, sl.Central[j], vl.Central[j])
					return false
				}
			}
			for i := range sl.Local {
				for j := range sl.Local[i] {
					if sl.Local[i][j] != vl.Local[i][j] {
						t.Logf("slot %d: local[%d][%d] set %v != virtual %v", slot, i, j, sl.Local[i][j], vl.Local[i][j])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
