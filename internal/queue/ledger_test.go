package queue

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLedgerPushPopFIFO(t *testing.T) {
	var l Ledger
	l.Push(0, 3)
	l.Push(1, 2)
	if got := l.Len(); got != 5 {
		t.Fatalf("Len = %v, want 5", got)
	}

	// Pop 4 at slot 3: takes 3 from slot 0 (delay 3 each) and 1 from slot 1
	// (delay 2).
	popped, delay := l.Pop(3, 4)
	if popped != 4 {
		t.Errorf("popped = %v, want 4", popped)
	}
	if want := 3.0*3 + 1*2; delay != want {
		t.Errorf("delaySum = %v, want %v", delay, want)
	}
	if got := l.Len(); got != 1 {
		t.Errorf("Len = %v, want 1", got)
	}

	// Remaining job is from slot 1.
	if slot, ok := l.OldestSlot(); !ok || slot != 1 {
		t.Errorf("OldestSlot = %v,%v, want 1,true", slot, ok)
	}
}

func TestLedgerPopMoreThanQueued(t *testing.T) {
	var l Ledger
	l.Push(0, 2.5)
	popped, delay := l.Pop(2, 10)
	if popped != 2.5 {
		t.Errorf("popped = %v, want 2.5", popped)
	}
	if delay != 5 {
		t.Errorf("delaySum = %v, want 5", delay)
	}
	if l.Len() != 0 {
		t.Errorf("Len = %v, want 0", l.Len())
	}
	if _, ok := l.OldestSlot(); ok {
		t.Error("OldestSlot reported a job in an empty ledger")
	}
}

func TestLedgerFractionalPops(t *testing.T) {
	var l Ledger
	l.Push(0, 1)
	p1, _ := l.Pop(1, 0.4)
	p2, _ := l.Pop(1, 0.4)
	p3, d3 := l.Pop(2, 0.4)
	if p1 != 0.4 || p2 != 0.4 {
		t.Errorf("partial pops = %v, %v, want 0.4 each", p1, p2)
	}
	if math.Abs(p3-0.2) > 1e-12 {
		t.Errorf("final pop = %v, want 0.2", p3)
	}
	if math.Abs(d3-0.4) > 1e-12 { // 0.2 jobs * delay 2
		t.Errorf("final delaySum = %v, want 0.4", d3)
	}
	if math.Abs(l.Len()) > 1e-12 {
		t.Errorf("Len = %v, want 0", l.Len())
	}
}

func TestLedgerIgnoresNonPositivePush(t *testing.T) {
	var l Ledger
	l.Push(0, 0)
	l.Push(0, -3)
	if l.Len() != 0 {
		t.Errorf("Len = %v, want 0", l.Len())
	}
}

func TestLedgerMergesSameSlotPushes(t *testing.T) {
	var l Ledger
	for x := 0; x < 1000; x++ {
		l.Push(7, 1)
	}
	if len(l.entries) != 1 {
		t.Errorf("entries = %d, want 1 (same-slot pushes should merge)", len(l.entries))
	}
	if l.Len() != 1000 {
		t.Errorf("Len = %v, want 1000", l.Len())
	}
}

func TestLedgerCompaction(t *testing.T) {
	var l Ledger
	for slot := 0; slot < 500; slot++ {
		l.Push(slot, 1)
		l.Pop(slot, 1)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %v, want 0", l.Len())
	}
	if len(l.entries) > 200 {
		t.Errorf("entries grew to %d; compaction is not working", len(l.entries))
	}
	// Ledger still behaves after compaction.
	l.Push(500, 2)
	popped, delay := l.Pop(501, 2)
	if popped != 2 || delay != 2 {
		t.Errorf("post-compaction Pop = %v,%v, want 2,2", popped, delay)
	}
}

// TestLedgerConservation property: total pushed equals total popped plus
// remaining length, and pops never exceed asks.
func TestLedgerConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		var l Ledger
		var pushed, popped float64
		for slot, op := range ops {
			amt := float64(op%100) / 10
			if op%2 == 0 {
				l.Push(slot, amt)
				pushed += amt
			} else {
				p, d := l.Pop(slot, amt)
				if p > amt+1e-9 || d < -1e-9 {
					return false
				}
				popped += p
			}
		}
		return math.Abs(pushed-popped-l.Len()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLedgerDelayNonNegative property: waiting times are never negative when
// slots are monotone.
func TestLedgerDelayNonNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		var l Ledger
		for slot, op := range ops {
			if op%3 == 0 {
				l.Push(slot, float64(op%7)+0.5)
			} else {
				p, d := l.Pop(slot, float64(op%5)+0.5)
				if p > 0 && d/p < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPopVisitConsistency property: the visited cohorts sum to exactly the
// popped amount and the weighted delay sum.
func TestPopVisitConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		var l Ledger
		for slot, op := range ops {
			if op%2 == 0 {
				l.Push(slot, float64(op%9)+0.5)
				continue
			}
			var visitJobs, visitDelay float64
			popped, delaySum := l.PopVisit(slot, float64(op%7)+0.5, func(d, jobs float64) {
				visitJobs += jobs
				visitDelay += d * jobs
			})
			if math.Abs(visitJobs-popped) > 1e-9 || math.Abs(visitDelay-delaySum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
