package queue

import (
	"math"
	"testing"
	"testing/quick"

	"grefar/internal/model"
)

func testCluster(t *testing.T) *model.Cluster {
	t.Helper()
	c := model.NewReferenceCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetArriveAndLengths(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	arr := make([]int, c.J())
	arr[0], arr[3] = 5, 2
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}
	if got := s.CentralLen(0); got != 5 {
		t.Errorf("CentralLen(0) = %v, want 5", got)
	}
	if got := s.CentralLen(3); got != 2 {
		t.Errorf("CentralLen(3) = %v, want 2", got)
	}
	l := s.Lengths()
	if got := l.Sum(); got != 7 {
		t.Errorf("Lengths().Sum() = %v, want 7", got)
	}
}

func TestSetArriveRejectsBadInput(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	if err := s.Arrive(0, []int{1, 2}); err == nil {
		t.Error("short arrival slice not rejected")
	}
	arr := make([]int, c.J())
	arr[1] = -1
	if err := s.Arrive(0, arr); err == nil {
		t.Error("negative arrivals not rejected")
	}
}

func TestSetRouteThenProcessDelays(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)

	// Slot 0: 4 jobs of type 0 arrive.
	arr := make([]int, c.J())
	arr[0] = 4
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}

	// Slot 1: route all 4 to data center 1. Central delay should be 1 slot
	// per job.
	act := model.NewAction(c)
	act.Route[1][0] = 4
	fs, err := s.Apply(1, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs.CentralRouted[0] != 4 {
		t.Fatalf("routed %v, want 4", fs.CentralRouted[0])
	}
	if fs.CentralDelaySum[0] != 4 {
		t.Errorf("central delay sum = %v, want 4 (1 slot each)", fs.CentralDelaySum[0])
	}
	if got := s.LocalLen(1, 0); got != 4 {
		t.Errorf("LocalLen(1,0) = %v, want 4", got)
	}

	// Slot 2: process 3 of them. Local delay should be 1 slot per job.
	act = model.NewAction(c)
	act.Process[1][0] = 3
	fs, err = s.Apply(2, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Processed[1][0] != 3 {
		t.Errorf("processed %v, want 3", fs.Processed[1][0])
	}
	if fs.LocalDelaySum[1][0] != 3 {
		t.Errorf("local delay sum = %v, want 3", fs.LocalDelaySum[1][0])
	}

	// Slot 5: process the last one; it waited 4 slots in the data center.
	act = model.NewAction(c)
	act.Process[1][0] = 1
	fs, err = s.Apply(5, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs.LocalDelaySum[1][0] != 4 {
		t.Errorf("local delay sum = %v, want 4", fs.LocalDelaySum[1][0])
	}
	if got := s.LocalLen(1, 0); got != 0 {
		t.Errorf("LocalLen(1,0) = %v, want 0", got)
	}
}

func TestSetRoutingCappedAtQueueContent(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	arr := make([]int, c.J())
	arr[0] = 3
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}

	// Ask for 5 to dc0 and 5 to dc1: only 3 exist.
	act := model.NewAction(c)
	act.Route[0][0] = 5
	act.Route[1][0] = 5
	fs, err := s.Apply(1, act)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.TotalRouted(); got != 3 {
		t.Errorf("TotalRouted = %v, want 3", got)
	}
	if s.CentralLen(0) != 0 {
		t.Errorf("CentralLen = %v, want 0", s.CentralLen(0))
	}
	if got := s.LocalLen(0, 0) + s.LocalLen(1, 0); got != 3 {
		t.Errorf("local total = %v, want 3", got)
	}
}

func TestSetProcessingCappedAtQueueContent(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	arr := make([]int, c.J())
	arr[0] = 2
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}
	act := model.NewAction(c)
	act.Route[0][0] = 2
	if _, err := s.Apply(1, act); err != nil {
		t.Fatal(err)
	}

	act = model.NewAction(c)
	act.Process[0][0] = 99
	fs, err := s.Apply(2, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Processed[0][0] != 2 {
		t.Errorf("Processed = %v, want 2", fs.Processed[0][0])
	}
}

func TestSetSameSlotRoutedJobsNotProcessable(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	arr := make([]int, c.J())
	arr[0] = 1
	if err := s.Arrive(0, arr); err != nil {
		t.Fatal(err)
	}
	// Route and process in the same slot: processing happens first (paper
	// dynamics), so the routed job must remain in the local queue.
	act := model.NewAction(c)
	act.Route[0][0] = 1
	act.Process[0][0] = 1
	fs, err := s.Apply(1, act)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Processed[0][0] != 0 {
		t.Errorf("processed a job the same slot it was routed: %v", fs.Processed[0][0])
	}
	if got := s.LocalLen(0, 0); got != 1 {
		t.Errorf("LocalLen = %v, want 1", got)
	}
}

func TestSetApplyRejectsMalformed(t *testing.T) {
	c := testCluster(t)
	s := NewSet(c)
	act := model.NewAction(c)
	act.Route = act.Route[:1]
	if _, err := s.Apply(0, act); err == nil {
		t.Error("malformed action not rejected")
	}
	act = model.NewAction(c)
	act.Process[0][0] = -1
	if _, err := s.Apply(0, act); err == nil {
		t.Error("negative process not rejected")
	}
	act = model.NewAction(c)
	act.Route[0][0] = -1
	if _, err := s.Apply(0, act); err == nil {
		t.Error("negative route not rejected")
	}
}

func TestVirtualDynamicsMatchPaperEquations(t *testing.T) {
	c := testCluster(t)
	v := NewVirtual(c)
	arr := make([]int, c.J())
	arr[0] = 3

	// Q starts 0; route 5 (over-asks): max[0-5,0] + 3 = 3.
	act := model.NewAction(c)
	act.Route[0][0] = 5
	v.Step(act, arr)
	if v.Central[0] != 3 {
		t.Errorf("Central = %v, want 3", v.Central[0])
	}
	// Local: max[0 - 0, 0] + 5 = 5. Virtual queues really receive the
	// nominal (uncapped) routing.
	if v.Local[0][0] != 5 {
		t.Errorf("Local = %v, want 5", v.Local[0][0])
	}

	// Next slot: process 2, route 1 more.
	act = model.NewAction(c)
	act.Route[0][0] = 1
	act.Process[0][0] = 2
	v.Step(act, make([]int, c.J()))
	if v.Central[0] != 2 {
		t.Errorf("Central = %v, want 2", v.Central[0])
	}
	if v.Local[0][0] != 4 { // max[5-2,0] + 1
		t.Errorf("Local = %v, want 4", v.Local[0][0])
	}
}

// TestCappedNeverExceedsVirtual property: under an arbitrary action stream,
// the physical (capped) backlog never exceeds the virtual backlog of the
// analysis, so Theorem 1's O(V) bound transfers to the real system.
func TestCappedNeverExceedsVirtual(t *testing.T) {
	c := testCluster(t)
	f := func(seed []uint8) bool {
		s := NewSet(c)
		v := NewVirtual(c)
		for slot, b := range seed {
			act := model.NewAction(c)
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					act.Route[i][j] = int(b+uint8(3*i+5*j)) % 4
					act.Process[i][j] = float64((b+uint8(7*i+j))%5) / 2
				}
			}
			if _, err := s.Apply(slot, act); err != nil {
				return false
			}
			arr := make([]int, c.J())
			for j := range arr {
				arr[j] = int(b+uint8(j)) % 3
			}
			if err := s.Arrive(slot, arr); err != nil {
				return false
			}
			v.Step(act, arr)

			sl, vl := s.Lengths(), v.Lengths()
			for j := range sl.Central {
				if sl.Central[j] > vl.Central[j]+1e-9 {
					return false
				}
			}
			// Total physical backlog never exceeds total virtual backlog.
			if sl.Sum() > vl.Sum()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSetConservation property: jobs arrived = jobs processed + jobs still
// queued (centrally or locally).
func TestSetConservation(t *testing.T) {
	c := testCluster(t)
	f := func(seed []uint8) bool {
		s := NewSet(c)
		var arrived, processed float64
		for slot, b := range seed {
			act := model.NewAction(c)
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					act.Route[i][j] = int(b+uint8(i+j)) % 3
					act.Process[i][j] = float64((b+uint8(2*i+3*j))%4) / 2
				}
			}
			fs, err := s.Apply(slot, act)
			if err != nil {
				return false
			}
			for i := range fs.Processed {
				for _, p := range fs.Processed[i] {
					processed += p
				}
			}
			arr := make([]int, c.J())
			for j := range arr {
				arr[j] = int(b+uint8(5*j)) % 2
				arrived += float64(arr[j])
			}
			if err := s.Arrive(slot, arr); err != nil {
				return false
			}
		}
		return math.Abs(arrived-processed-s.Lengths().Sum()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
