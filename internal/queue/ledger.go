// Package queue implements the two-tier queueing substrate of the GreFar
// system: central per-job-type queues Q_j(t) held at the scheduler and local
// per-data-center queues q_{i,j}(t), evolving under the paper's dynamics
//
//	Q_j(t+1) = max[Q_j(t) - sum_i r_{i,j}(t), 0] + a_j(t)      (12)
//	q_{i,j}(t+1) = max[q_{i,j}(t) - h_{i,j}(t), 0] + r_{i,j}(t) (13)
//
// Two implementations are provided. Virtual applies the dynamics literally,
// exactly as the Lyapunov analysis assumes (actions may overshoot the queue
// content and are clipped by the max[.,0]). Set tracks individual job cohorts
// in FIFO ledgers so that per-job queueing delay — the quantity plotted in
// the paper's figures — is measured exactly rather than inferred.
package queue

// entry is one FIFO cohort: an amount of jobs that entered a ledger during
// the same slot.
type entry struct {
	slot   int
	amount float64
}

// Ledger is a FIFO queue of job cohorts for a single (queue, job type) pair.
// Amounts are float64 because processing decisions h_{i,j}(t) may be
// fractional (jobs can be suspended mid-slot).
//
// The zero value is an empty ledger ready for use.
type Ledger struct {
	entries []entry
	head    int // index of the first live entry
	total   float64
}

// Len returns the number of jobs currently queued.
func (l *Ledger) Len() float64 { return l.total }

// Clone returns an independent deep copy: cohort entries, head, and total,
// so the copy can be mutated (or used to restore this ledger) without
// sharing state. Cheap relative to a serialized snapshot — one slice copy.
func (l *Ledger) Clone() Ledger {
	out := *l
	out.entries = append([]entry(nil), l.entries...)
	return out
}

// Push appends amount jobs that entered during the given slot. Pushing a
// non-positive amount is a no-op.
func (l *Ledger) Push(slot int, amount float64) {
	if amount <= 0 {
		return
	}
	// Merge with the tail cohort when the slot matches, so repeated pushes
	// within one slot do not grow the ledger.
	if n := len(l.entries); n > l.head && l.entries[n-1].slot == slot {
		l.entries[n-1].amount += amount
	} else {
		l.entries = append(l.entries, entry{slot: slot, amount: amount})
	}
	l.total += amount
}

// Pop removes up to amount jobs in FIFO order and returns the amount actually
// removed together with the sum of their waiting times (now - entry slot),
// weighted by the amount taken from each cohort. The caller divides the
// weighted sum by the popped amount to obtain the mean delay of this batch.
func (l *Ledger) Pop(now int, amount float64) (popped, delaySum float64) {
	return l.PopVisit(now, amount, nil)
}

// PopVisit is Pop with an optional per-cohort callback receiving the waiting
// time and job count of each batch removed, enabling delay *distributions*
// rather than only means.
func (l *Ledger) PopVisit(now int, amount float64, visit func(delay, jobs float64)) (popped, delaySum float64) {
	for amount > 0 && l.head < len(l.entries) {
		e := &l.entries[l.head]
		take := e.amount
		if take > amount {
			take = amount
		}
		e.amount -= take
		amount -= take
		popped += take
		delay := float64(now - e.slot)
		delaySum += take * delay
		if visit != nil {
			visit(delay, take)
		}
		if e.amount <= 0 {
			l.head++
		}
	}
	l.total -= popped
	if l.total < 0 {
		l.total = 0
	}
	// Compact once the dead prefix dominates, keeping Pop amortized O(1).
	if l.head > 64 && l.head*2 > len(l.entries) {
		n := copy(l.entries, l.entries[l.head:])
		l.entries = l.entries[:n]
		l.head = 0
	}
	return popped, delaySum
}

// OldestSlot returns the arrival slot of the job at the head of the queue,
// and false when the ledger is empty.
func (l *Ledger) OldestSlot() (int, bool) {
	if l.head >= len(l.entries) {
		return 0, false
	}
	return l.entries[l.head].slot, true
}
