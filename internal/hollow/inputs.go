// Package hollow hosts a kubemark-style hollow fleet: thousands of real
// agent.Agent state machines in one process, behind the real gob-over-TCP
// wire format, multiplexed onto a single listener and a handful of pipelined
// connections instead of one socket pair per agent. The fleet exists to
// exercise the real controller — gather, decide, scatter, health tracking,
// degraded-mode masking — at agent counts the point-to-point transport
// cannot reach, so control-plane scale work is judged against measurements
// rather than extrapolation.
package hollow

import (
	"fmt"
	"math"
	"math/rand"

	"grefar/internal/availability"
	"grefar/internal/model"
	"grefar/internal/price"
	"grefar/internal/sim"
	"grefar/internal/workload"
)

// scaleJobTypes is how many job types the synthetic scale cluster models.
// Small on purpose: scale experiments stress the control plane's per-agent
// costs (N), not the solver's per-job costs (J), and ROADMAP item 2 owns the
// latter.
const scaleJobTypes = 3

// scaleAccounts is the number of organizations sharing the scale cluster.
const scaleAccounts = 2

// NewScaleCluster builds a synthetic cluster with n single-server-type data
// centers, scaleJobTypes job types eligible everywhere, and scaleAccounts
// accounts. Per-site shape mirrors the reference cluster's magnitudes
// (speed/power around 1-2, a handful of servers per site) so per-slot
// decisions look like the paper's, just wider.
func NewScaleCluster(n int) (*model.Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hollow: cluster size %d is not positive", n)
	}
	c := &model.Cluster{
		DataCenters: make([]model.DataCenter, n),
		JobTypes:    make([]model.JobType, scaleJobTypes),
		Accounts:    make([]model.Account, scaleAccounts),
	}
	everywhere := make([]int, n)
	for i := range everywhere {
		everywhere[i] = i
	}
	for i := range c.DataCenters {
		// Three site classes with different efficiency, striped across the
		// fleet so prices and energy densities vary the way geography does.
		class := i % 3
		c.DataCenters[i] = model.DataCenter{
			Name: fmt.Sprintf("hollow-dc%d", i),
			Servers: []model.ServerType{{
				Name:  "std",
				Speed: []float64{2.0, 1.6, 1.2}[class],
				Power: []float64{1.0, 1.1, 1.3}[class],
			}},
		}
	}
	for j := range c.JobTypes {
		c.JobTypes[j] = model.JobType{
			Name:       fmt.Sprintf("type%d", j),
			Demand:     []float64{1.0, 1.5, 2.0}[j%3],
			Eligible:   everywhere,
			Account:    j % scaleAccounts,
			MaxArrival: 16 * n,
			MaxRoute:   0, // unbounded per site; the central queue caps it
			MaxProcess: 0,
		}
	}
	c.Accounts[0] = model.Account{Name: "org1", Weight: 0.6}
	c.Accounts[1] = model.Account{Name: "org2", Weight: 0.4}
	return c, nil
}

// NewScaleInputs assembles the hollow fleet's simulation inputs for an
// n-agent cluster: deterministic diurnal prices with per-site phase and
// level, static per-site availability, and a seeded arrival trace whose
// volume scales with the fleet so utilization stays constant as n grows
// (otherwise large fleets idle and the gather dominates everything).
func NewScaleInputs(seed int64, n, slots int) (sim.Inputs, error) {
	c, err := NewScaleCluster(n)
	if err != nil {
		return sim.Inputs{}, err
	}
	if slots <= 0 {
		return sim.Inputs{}, fmt.Errorf("hollow: horizon %d is not positive", slots)
	}

	// Prices: a pure function of (site, slot) — diurnal cosine with a
	// per-site phase from its stripe and a level from its class. No RNG, so
	// any two runs at any fleet size see identical per-site prices.
	prices := make([]price.Source, n)
	for i := 0; i < n; i++ {
		level := []float64{0.40, 0.45, 0.55}[i%3]
		phase := float64(i%24) / 24
		vals := make([]float64, 24)
		for h := range vals {
			vals[h] = level * (1 + 0.3*math.Cos(2*math.Pi*(float64(h)/24+phase)))
		}
		prices[i] = &price.Trace{Values: vals}
	}

	// Availability: static 4 servers per site. The control plane's scale
	// behavior does not depend on availability dynamics, and a static matrix
	// keeps per-slot agent reports bit-stable for divergence checks.
	avail := make([][]float64, n)
	for i := range avail {
		avail[i] = []float64{4}
	}

	// Workload: seeded per-slot arrivals targeting ~60% of fleet capacity.
	// Capacity is sum(speed*servers) work/slot; arrivals convert that into
	// jobs via the mean demand, split across types with diurnal shape and
	// multiplicative noise.
	var capacity float64
	for i := range c.DataCenters {
		capacity += c.DataCenters[i].Servers[0].Speed * avail[i][0]
	}
	var meanDemand float64
	for j := range c.JobTypes {
		meanDemand += c.JobTypes[j].Demand
	}
	meanDemand /= float64(c.J())
	jobsPerSlot := 0.6 * capacity / meanDemand
	rng := rand.New(rand.NewSource(seed))
	counts := make([][]int, slots)
	for t := range counts {
		diurnal := 1 + 0.25*math.Sin(2*math.Pi*float64(t%24)/24)
		counts[t] = make([]int, c.J())
		for j := range counts[t] {
			mean := jobsPerSlot * diurnal / float64(c.J())
			a := int(mean * (0.7 + 0.6*rng.Float64()))
			if max := c.JobTypes[j].MaxArrival; a > max {
				a = max
			}
			counts[t][j] = a
		}
	}

	return sim.Inputs{
		Cluster:      c,
		Prices:       prices,
		Workload:     &workload.Trace{Counts: counts},
		Availability: &availability.Static{Avail: avail},
	}, nil
}
