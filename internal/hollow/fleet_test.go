package hollow

import (
	"sync"
	"testing"
	"time"

	"grefar/internal/controller"
	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

// startFleet builds inputs, a fleet, and a Degrade-mode controller with the
// invariant checker attached; the checker is returned for the final Err call.
func startFleet(t *testing.T, n, slots int) (*Fleet, *controller.Controller, *invariant.Checker, sim.Inputs) {
	t.Helper()
	in, err := NewScaleInputs(7, n, slots)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	g, err := core.New(in.Cluster, core.Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
	ct, err := controller.New(in.Cluster, g, f.Conns(),
		controller.WithObserver(telemetry.Multi(ck)),
		controller.WithFailurePolicy(controller.Degrade),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f, ct, ck, in
}

func TestScaleInputsValidate(t *testing.T) {
	for _, n := range []int{1, 3, 64, 500} {
		in, err := NewScaleInputs(1, n, 48)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := in.Cluster.Validate(); err != nil {
			t.Fatalf("n=%d: invalid cluster: %v", n, err)
		}
		if got := in.Cluster.N(); got != n {
			t.Fatalf("n=%d: cluster has %d sites", n, got)
		}
		// The arrival trace must carry real load: an idle fleet measures
		// nothing but gather overhead.
		var jobs int
		for _, a := range in.Workload.Arrivals(0) {
			jobs += a
		}
		if jobs == 0 {
			t.Errorf("n=%d: slot 0 has no arrivals", n)
		}
	}
	if _, err := NewScaleInputs(1, 0, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewScaleInputs(1, 3, 0); err == nil {
		t.Error("slots=0 accepted")
	}
}

// TestFleetRunsRealControlLoop drives a 64-agent fleet through real slots
// over the mux wire and checks work actually flows: queues move, energy is
// spent, and the invariant checker accepts every slot.
func TestFleetRunsRealControlLoop(t *testing.T) {
	const n, slots = 64, 12
	f, ct, ck, in := startFleet(t, n, slots)
	var energy float64
	for tt := 0; tt < slots; tt++ {
		_, _, acks, err := ct.RunSlot(tt, in.Workload.Arrivals(tt))
		if err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		for _, ack := range acks {
			energy += ack.Energy
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if energy <= 0 {
		t.Error("no energy spent across the run; the fleet did no work")
	}
	if f.TotalBacklog() < 0 {
		t.Error("negative fleet backlog")
	}
}

// TestFleetKillReviveRejoins kills a batch of agents mid-run, revives them,
// and requires the controller to mask, probe, and rejoin every one — with the
// invariant checker green across the entire trajectory.
func TestFleetKillReviveRejoins(t *testing.T) {
	const n, slots = 48, 36
	const killFrom, reviveAt = 10, 18
	f, ct, ck, in := startFleet(t, n, slots)
	killed := []int{1, 5, 9} // a small batch; the 5%-scale version runs in experiments
	sawDegraded := false
	for tt := 0; tt < slots; tt++ {
		if tt == killFrom {
			for _, i := range killed {
				f.Kill(i)
			}
		}
		if tt == reviveAt {
			for _, i := range killed {
				f.Revive(i)
			}
		}
		if _, _, _, err := ct.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		if tt > killFrom && tt < reviveAt {
			for _, i := range killed {
				if ct.Health()[i] == controller.Healthy {
					t.Errorf("slot %d: killed agent %d still healthy", tt, i)
				}
			}
			sawDegraded = true
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if !sawDegraded {
		t.Fatal("test never observed the degraded window")
	}
	for _, i := range killed {
		if got := ct.Health()[i]; got != controller.Healthy {
			t.Errorf("agent %d ended %v, want healthy", i, got)
		}
	}
}

// TestFleetRestartResyncsFromShadow crash-restarts an agent (losing its local
// queues) and requires the controller's rejoin path to push the shadow state
// back so the trajectory continues exactly.
func TestFleetRestartResyncsFromShadow(t *testing.T) {
	const n, slots = 16, 30
	f, ct, ck, in := startFleet(t, n, slots)
	const victim, killAt, restartAt = 3, 8, 14
	for tt := 0; tt < slots; tt++ {
		if tt == killAt {
			f.Kill(victim)
		}
		if tt == restartAt {
			if err := f.Restart(victim); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, _, err := ct.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if got := ct.Health()[victim]; got != controller.Healthy {
		t.Errorf("restarted agent ended %v, want healthy", got)
	}
	// After rejoin the agent's physical queues must march with the fleet
	// again: a fresh agent left unsynced would sit at zero while the shadow
	// grows. Non-zero backlog on the victim proves the restore landed (the
	// scale inputs keep every site loaded).
	lens := f.Agent(victim).QueueLens()
	var sum float64
	for _, l := range lens {
		sum += l
	}
	if sum == 0 {
		t.Error("restarted agent has empty queues; shadow restore did not land")
	}
}

// TestFleetServeErrorSurfaces yanks the listener out from under the accept
// loop — the in-process stand-in for FD exhaustion or a dying NIC — and
// requires the failure to surface on ServeErr instead of wedging silently,
// and to come back from Close when the run loop never drained it.
func TestFleetServeErrorSurfaces(t *testing.T) {
	in, err := NewScaleInputs(5, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.lis.Close()
	select {
	case err := <-f.ServeErr():
		if err == nil {
			t.Fatal("Serve returned nil after the listener died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept failure never surfaced on ServeErr")
	}
	f.Close()

	// Same failure, but left undrained: Close must report it.
	f2, err := NewFleet(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2.lis.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(f2.serveErr) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := f2.Close(); err == nil {
		t.Fatal("Close swallowed the accept-loop failure")
	}
}

// TestFleetRestartRacesInflightHandles hammers one agent with concurrent
// calls while crash-restarting it in a loop, pinning the atomic pointer-swap
// semantics: an in-flight request completes on the agent it loaded (no call
// errors, no torn state — the race detector holds this), and the first
// request after a restart sees the fresh instance (empty queues where the
// old one held backlog). Runs under -race in tier1.
func TestFleetRestartRacesInflightHandles(t *testing.T) {
	in, err := NewScaleInputs(3, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const target = 2
	conns := f.Conns()

	// Seed backlog on the victim so the post-restart emptiness is observable.
	c := in.Cluster
	route := make([]int, c.J())
	route[0] = 5
	alloc := transport.Allocate{
		Slot:    0,
		Route:   route,
		Process: make([]float64, c.J()),
		Busy:    make([]float64, c.K(target)),
	}
	var ack transport.AllocateAck
	if err := conns[target].Call(transport.KindAllocate, alloc, &ack); err != nil {
		t.Fatal(err)
	}
	var before float64
	for _, l := range f.Agent(target).QueueLens() {
		before += l
	}
	if before == 0 {
		t.Fatal("seeding allocation left the victim's queues empty")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var pong transport.Ping
				if err := conns[target].Call(transport.KindPing, transport.Ping{Nonce: uint64(w*1000 + n)}, &pong); err != nil {
					t.Errorf("worker %d call %d: %v", w, n, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 50; r++ {
		if err := f.Restart(target); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	var after float64
	for _, l := range f.Agent(target).QueueLens() {
		after += l
	}
	if after != 0 {
		t.Errorf("post-restart agent holds backlog %v; a fresh instance should be empty", after)
	}
}
