package hollow

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/sim"
	"grefar/internal/transport"
)

// Options tune a Fleet. The zero value is usable.
type Options struct {
	// Conns is how many client connections the fleet's call traffic is spread
	// over (default 4). One pipelined connection carries any number of
	// concurrent calls; a handful avoids single-socket throughput ceilings
	// without approaching one-FD-per-agent.
	Conns int
	// CallTimeout bounds each RPC (default 5s). The controller's health
	// tracker converts timeouts into Suspect/Dead transitions, so this also
	// sets how long a hung hollow agent can stall a gather.
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	return o
}

// Fleet hosts every agent of a cluster in one process behind a single
// multiplexed listener. Each agent is a real agent.Agent — real ledgers, real
// idempotent-replay cache, real restore path — and every call crosses the
// real gob-over-TCP wire, so the controller observes the same protocol as a
// geographically distributed fleet minus the WAN latency.
//
// Kill, Revive, and Restart flip per-agent fault switches at the RPC
// boundary, which is exactly where real failures appear to the controller.
type Fleet struct {
	inputs sim.Inputs
	opts   Options

	agents []atomic.Pointer[agent.Agent]
	down   []atomic.Bool

	srv      *transport.MuxServer
	lis      net.Listener
	serveErr chan error // buffered; Serve's return value, surfaced by ServeErr/Close
	clients  []*transport.MuxClient
}

// NewFleet builds and starts a fleet: one agent per data center of
// in.Cluster, a shared MuxServer on loopback TCP, and Options.Conns dialed
// client connections. Close releases everything.
func NewFleet(in sim.Inputs, opts Options) (*Fleet, error) {
	if in.Cluster == nil {
		return nil, fmt.Errorf("hollow: inputs have no cluster")
	}
	opts = opts.withDefaults()
	n := in.Cluster.N()
	if len(in.Prices) != n {
		return nil, fmt.Errorf("hollow: %d price sources for %d data centers", len(in.Prices), n)
	}
	f := &Fleet{
		inputs: in,
		opts:   opts,
		agents: make([]atomic.Pointer[agent.Agent], n),
		down:   make([]atomic.Bool, n),
	}
	for i := 0; i < n; i++ {
		a, err := f.newAgent(i)
		if err != nil {
			return nil, err
		}
		f.agents[i].Store(a)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("hollow: listen: %w", err)
	}
	f.lis = lis
	f.srv = transport.NewMuxServer(lis, f.handle)
	f.serveErr = make(chan error, 1)
	go func() { f.serveErr <- f.srv.Serve() }()

	f.clients = make([]*transport.MuxClient, opts.Conns)
	for c := range f.clients {
		cli, err := transport.DialMux(f.srv.Addr(), opts.CallTimeout)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("hollow: dial conn %d: %w", c, err)
		}
		f.clients[c] = cli
	}
	return f, nil
}

func (f *Fleet) newAgent(i int) (*agent.Agent, error) {
	a, err := agent.New(agent.Config{
		Cluster:      f.inputs.Cluster,
		DataCenter:   i,
		Price:        f.inputs.Prices[i],
		Availability: f.inputs.Availability,
	})
	if err != nil {
		return nil, fmt.Errorf("hollow: agent %d: %w", i, err)
	}
	return a, nil
}

// handle is the fleet's MuxHandler: it routes each request to the target
// agent's real Handle, or refuses it when the agent is killed — from the
// controller's side a killed hollow agent is indistinguishable from a
// partitioned real one.
func (f *Fleet) handle(target int, kind string, body []byte) (any, error) {
	if target < 0 || target >= len(f.agents) {
		return nil, fmt.Errorf("hollow: no agent %d", target)
	}
	if f.down[target].Load() {
		return nil, fmt.Errorf("hollow: agent %d is down", target)
	}
	return f.agents[target].Load().Handle(kind, body)
}

// Addr is the shared listener's address.
func (f *Fleet) Addr() string { return f.srv.Addr() }

// N is the fleet size.
func (f *Fleet) N() int { return len(f.agents) }

// Inputs returns the simulation inputs the fleet was built from.
func (f *Fleet) Inputs() sim.Inputs { return f.inputs }

// Conns returns one controller connection per agent, striped across the
// fleet's shared client connections. Slot them straight into controller.New.
func (f *Fleet) Conns() []controller.AgentConn {
	out := make([]controller.AgentConn, len(f.agents))
	for i := range out {
		out[i] = f.clients[i%len(f.clients)].Agent(i)
	}
	return out
}

// Kill makes agent i refuse every RPC until Revive or Restart. The agent's
// queue state is retained, modeling a network partition or a wedged process
// that later comes back intact.
func (f *Fleet) Kill(i int) { f.down[i].Store(true) }

// Revive brings a killed agent back with its state intact.
func (f *Fleet) Revive(i int) { f.down[i].Store(false) }

// Restart replaces agent i with a fresh instance — empty queues, cold replay
// cache — and brings it back up, modeling a crash-restart that lost local
// state. The controller's rejoin path must resync it from shadow ledgers.
func (f *Fleet) Restart(i int) error {
	a, err := f.newAgent(i)
	if err != nil {
		return err
	}
	f.agents[i].Store(a)
	f.down[i].Store(false)
	return nil
}

// Agent exposes hollow agent i for test assertions (queue lengths,
// snapshots). The returned agent may be replaced by a concurrent Restart.
func (f *Fleet) Agent(i int) *agent.Agent { return f.agents[i].Load() }

// TotalBacklog sums the local backlogs across every live hollow agent.
func (f *Fleet) TotalBacklog() float64 {
	var sum float64
	for i := range f.agents {
		for _, l := range f.agents[i].Load().QueueLens() {
			sum += l
		}
	}
	return sum
}

// ServeErr exposes the accept loop's failure, if any: the channel receives
// exactly one value when Serve returns — nil on a clean Close, the accept
// error otherwise (e.g. FD exhaustion under a huge fleet). Run loops should
// poll it non-blockingly each slot so a wedged listener surfaces as an error
// instead of a silent stall.
func (f *Fleet) ServeErr() <-chan error { return f.serveErr }

// Close shuts down the client connections and the shared server, and returns
// any accept-loop error the run loop did not already consume, so a fleet
// whose listener died mid-run cannot shut down silently.
func (f *Fleet) Close() error {
	for _, cli := range f.clients {
		if cli != nil {
			cli.Close()
		}
	}
	err := f.srv.Close()
	select {
	case serr := <-f.serveErr:
		if err == nil {
			err = serr
		}
	default:
		// Serve has not returned yet; its nil result after this Close is
		// uninteresting, and a late error stays readable on ServeErr.
	}
	return err
}
