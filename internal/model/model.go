// Package model defines the shared domain vocabulary for the GreFar
// scheduling system: data centers, server types, job types, organizational
// accounts, the time-varying cluster state x(t) revealed at the beginning of
// each slot, and the slot action z(t) chosen by a scheduler.
//
// The notation follows the paper "Provably-Efficient Job Scheduling for
// Energy and Fairness in Geographically Distributed Data Centers"
// (Ren, He, Xu — ICDCS 2012): a system of N data centers indexed by i, each
// housing server types indexed by k with speed s_k and active power p_k;
// J job types indexed by j, each characterized by y_j = {d_j, D_j, rho_j};
// and M accounts indexed by m with fairness weights gamma_m.
package model

import (
	"errors"
	"fmt"
	"grefar/internal/tariff"
)

// ServerType describes one class of server hardware (paper section III-A).
// Idle power is normalized to zero, so Power is the marginal power draw of a
// busy server over an idle one (p_k with underline-p_k = 0).
type ServerType struct {
	// Name identifies the server class, e.g. "gen3-commodity".
	Name string
	// Speed is the processing speed s_k in work units per time slot. A busy
	// server of this type completes Speed units of service demand per slot.
	Speed float64
	// Power is the active power p_k drawn by a busy server, in normalized
	// energy units per slot.
	Power float64
}

// CostPerWork returns the energy consumed per unit of work processed on this
// server type (p_k / s_k). Multiplied by the local electricity price it gives
// the energy cost per unit work, the quantity Table I of the paper reports.
func (s ServerType) CostPerWork() float64 {
	return s.Power / s.Speed
}

// DataCenter describes one geographically distinct site housing one or more
// server types. The number of servers of each type that are available for
// batch processing varies over time and is part of State, not DataCenter.
type DataCenter struct {
	// Name identifies the site, e.g. "dc-west".
	Name string
	// Servers lists the K server types housed at this site, indexed by k.
	Servers []ServerType
	// AuxCapacity[r] is the site's capacity of auxiliary resource r
	// (memory, storage, ...) available to concurrently processing jobs.
	// Empty means the cluster models no auxiliary resources. This is the
	// paper's footnote 3 extension: the service demand becomes a vector.
	AuxCapacity []float64
}

// JobType is the paper's y_j = {d_j, D_j, rho_j}: jobs with approximately the
// same characteristics are grouped into a type.
type JobType struct {
	// Name identifies the job type, e.g. "org1-etl".
	Name string
	// Demand is the service demand d_j in work units (processor cycles). It
	// must be positive.
	Demand float64
	// Eligible is D_j: the indices of the data centers this job type may be
	// scheduled to, typically determined by data placement.
	Eligible []int
	// Account is rho_j: the index of the account (organization) that
	// submits jobs of this type.
	Account int
	// MaxArrival is a_max_j, the bound on per-slot arrivals (paper eq. 1).
	MaxArrival int
	// MaxRoute is r_max_{i,j}, the bound on per-slot routing decisions to any
	// single data center (paper eq. 4).
	MaxRoute int
	// MaxProcess is h_max_{i,j}, the bound on per-slot processing decisions
	// in any single data center (paper eq. 5), in jobs (possibly fractional).
	MaxProcess float64
	// AuxDemand[r] is the job's consumption of auxiliary resource r (memory,
	// storage, ...) per processed job-slot. Must have the same length as
	// the cluster's auxiliary resource list (empty when unused).
	AuxDemand []float64
}

// EligibleSet reports whether data center i is in this job type's D_j.
func (j JobType) EligibleSet(i int) bool {
	for _, e := range j.Eligible {
		if e == i {
			return true
		}
	}
	return false
}

// Account represents an organization (or user group) sharing the cluster.
type Account struct {
	// Name identifies the organization.
	Name string
	// Weight is gamma_m >= 0, the desired share of total computing resource
	// for this account. The paper's experiment uses 40%, 30%, 15%, 15%.
	Weight float64
}

// Cluster is the static description of the whole system: N data centers,
// J job types and M accounts. The time-varying parts (availability, prices)
// live in State.
type Cluster struct {
	DataCenters []DataCenter
	JobTypes    []JobType
	Accounts    []Account
}

// N returns the number of data centers.
func (c *Cluster) N() int { return len(c.DataCenters) }

// J returns the number of job types.
func (c *Cluster) J() int { return len(c.JobTypes) }

// M returns the number of accounts.
func (c *Cluster) M() int { return len(c.Accounts) }

// K returns the number of server types at data center i.
func (c *Cluster) K(i int) int { return len(c.DataCenters[i].Servers) }

// Aux returns the number of auxiliary resource dimensions (0 when the
// cluster models CPU work only).
func (c *Cluster) Aux() int {
	if len(c.DataCenters) == 0 {
		return 0
	}
	return len(c.DataCenters[0].AuxCapacity)
}

// Validate checks structural consistency: non-empty components, positive
// speeds/demands, non-negative powers and weights, eligible and account
// indices in range, and sane bounds. It returns the first problem found,
// wrapping ErrInvalidCluster so callers can classify it with errors.Is.
func (c *Cluster) Validate() error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidCluster, err)
	}
	return nil
}

func (c *Cluster) validate() error {
	if len(c.DataCenters) == 0 {
		return errors.New("cluster has no data centers")
	}
	if len(c.JobTypes) == 0 {
		return errors.New("cluster has no job types")
	}
	if len(c.Accounts) == 0 {
		return errors.New("cluster has no accounts")
	}
	for i, dc := range c.DataCenters {
		if len(dc.Servers) == 0 {
			return fmt.Errorf("data center %d (%s) has no server types", i, dc.Name)
		}
		for k, s := range dc.Servers {
			if s.Speed <= 0 {
				return fmt.Errorf("data center %d server type %d: speed %v is not positive", i, k, s.Speed)
			}
			if s.Power < 0 {
				return fmt.Errorf("data center %d server type %d: power %v is negative", i, k, s.Power)
			}
		}
	}
	for j, jt := range c.JobTypes {
		if jt.Demand <= 0 {
			return fmt.Errorf("job type %d (%s): demand %v is not positive", j, jt.Name, jt.Demand)
		}
		if len(jt.Eligible) == 0 {
			return fmt.Errorf("job type %d (%s): empty eligible set", j, jt.Name)
		}
		seen := make(map[int]bool, len(jt.Eligible))
		for _, i := range jt.Eligible {
			if i < 0 || i >= len(c.DataCenters) {
				return fmt.Errorf("job type %d (%s): eligible data center %d out of range", j, jt.Name, i)
			}
			if seen[i] {
				return fmt.Errorf("job type %d (%s): duplicate eligible data center %d", j, jt.Name, i)
			}
			seen[i] = true
		}
		if jt.Account < 0 || jt.Account >= len(c.Accounts) {
			return fmt.Errorf("job type %d (%s): account %d out of range", j, jt.Name, jt.Account)
		}
		if jt.MaxArrival < 0 {
			return fmt.Errorf("job type %d (%s): negative MaxArrival", j, jt.Name)
		}
		if jt.MaxRoute < 0 {
			return fmt.Errorf("job type %d (%s): negative MaxRoute", j, jt.Name)
		}
		if jt.MaxProcess < 0 {
			return fmt.Errorf("job type %d (%s): negative MaxProcess", j, jt.Name)
		}
	}
	for m, a := range c.Accounts {
		if a.Weight < 0 {
			return fmt.Errorf("account %d (%s): negative weight %v", m, a.Name, a.Weight)
		}
	}
	aux := c.Aux()
	for i, dc := range c.DataCenters {
		if len(dc.AuxCapacity) != aux {
			return fmt.Errorf("data center %d (%s): %d auxiliary capacities, want %d", i, dc.Name, len(dc.AuxCapacity), aux)
		}
		for r, cap := range dc.AuxCapacity {
			if cap < 0 {
				return fmt.Errorf("data center %d (%s): negative auxiliary capacity %v for resource %d", i, dc.Name, cap, r)
			}
		}
	}
	for j, jt := range c.JobTypes {
		if len(jt.AuxDemand) != 0 && len(jt.AuxDemand) != aux {
			return fmt.Errorf("job type %d (%s): %d auxiliary demands, cluster models %d resources", j, jt.Name, len(jt.AuxDemand), aux)
		}
		for r, d := range jt.AuxDemand {
			if d < 0 {
				return fmt.Errorf("job type %d (%s): negative auxiliary demand %v for resource %d", j, jt.Name, d, r)
			}
		}
	}
	return nil
}

// State is x(t) = {n(t), phi(t)}: the time-varying cluster state revealed at
// the beginning of each slot (paper section III-A). Availability may be
// fractional to model servers shared with interactive workloads for part of
// a slot.
type State struct {
	// Avail[i][k] is n_{i,k}(t): servers of type k available for batch jobs
	// at data center i during this slot.
	Avail [][]float64
	// Price[i] is phi_i(t): the electricity price at data center i during
	// this slot, in cost units per energy unit.
	Price []float64
	// BaseEnergy[i] is the energy drawn by other (interactive) workloads at
	// data center i this slot. It is nil (treated as zero) under the
	// paper's baseline linear pricing and only matters under convex
	// tariffs, where the section III-A2 extension makes the marginal price
	// of batch work depend on the total draw.
	BaseEnergy []float64
}

// NewState allocates a zero State shaped for the cluster.
func NewState(c *Cluster) *State {
	st := &State{
		Avail: make([][]float64, c.N()),
		Price: make([]float64, c.N()),
	}
	for i := range st.Avail {
		st.Avail[i] = make([]float64, c.K(i))
	}
	return st
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	cp := &State{
		Avail: make([][]float64, len(s.Avail)),
		Price: append([]float64(nil), s.Price...),
	}
	if s.BaseEnergy != nil {
		cp.BaseEnergy = append([]float64(nil), s.BaseEnergy...)
	}
	for i := range s.Avail {
		cp.Avail[i] = append([]float64(nil), s.Avail[i]...)
	}
	return cp
}

// BaseEnergyAt returns the base (non-batch) energy draw at data center i,
// zero when no base load is modeled.
func (s *State) BaseEnergyAt(i int) float64 {
	if s.BaseEnergy == nil {
		return 0
	}
	return s.BaseEnergy[i]
}

// Capacity returns the maximum amount of work data center i can process this
// slot: sum_k n_{i,k}(t) * s_k (the right-hand side of paper eq. 11).
func (s *State) Capacity(c *Cluster, i int) float64 {
	var cap float64
	for k, st := range c.DataCenters[i].Servers {
		cap += s.Avail[i][k] * st.Speed
	}
	return cap
}

// TotalResource returns R(t) = sum_i sum_k n_{i,k}(t)*s_k, the total
// computing resource available across all data centers this slot (the
// denominator of the fairness function, paper eq. 3).
func (s *State) TotalResource(c *Cluster) float64 {
	var total float64
	for i := range s.Avail {
		total += s.Capacity(c, i)
	}
	return total
}

// Validate checks the state is shaped for the cluster with non-negative
// availability and prices. Failures wrap ErrInvalidState.
func (s *State) Validate(c *Cluster) error {
	if err := s.validate(c); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidState, err)
	}
	return nil
}

func (s *State) validate(c *Cluster) error {
	if len(s.Avail) != c.N() || len(s.Price) != c.N() {
		return fmt.Errorf("state shaped for %d data centers, cluster has %d", len(s.Avail), c.N())
	}
	for i := range s.Avail {
		if len(s.Avail[i]) != c.K(i) {
			return fmt.Errorf("data center %d: state has %d server types, cluster has %d", i, len(s.Avail[i]), c.K(i))
		}
		for k, n := range s.Avail[i] {
			if n < 0 {
				return fmt.Errorf("data center %d server type %d: negative availability %v", i, k, n)
			}
		}
		if s.Price[i] < 0 {
			return fmt.Errorf("data center %d: negative price %v", i, s.Price[i])
		}
	}
	if s.BaseEnergy != nil {
		if len(s.BaseEnergy) != c.N() {
			return fmt.Errorf("base energy has %d entries, cluster has %d data centers", len(s.BaseEnergy), c.N())
		}
		for i, b := range s.BaseEnergy {
			if b < 0 {
				return fmt.Errorf("data center %d: negative base energy %v", i, b)
			}
		}
	}
	return nil
}

// Action is z(t) = {r_{i,j}(t), h_{i,j}(t), b_{i,k}(t)}: the decisions made at
// the beginning of a slot (paper section III-C2).
type Action struct {
	// Route[i][j] is r_{i,j}(t): jobs of type j dispatched from the central
	// queue to data center i this slot. Integer per the paper (jobs cannot
	// be split across data centers).
	Route [][]int
	// Process[i][j] is h_{i,j}(t): jobs of type j processed at data center i
	// this slot. Fractional values model jobs suspended mid-slot.
	Process [][]float64
	// Busy[i][k] is b_{i,k}(t): servers of type k kept busy at data center i
	// this slot. Fractional values model servers active part of the slot.
	Busy [][]float64
}

// NewAction allocates a zero Action shaped for the cluster.
func NewAction(c *Cluster) *Action {
	a := &Action{
		Route:   make([][]int, c.N()),
		Process: make([][]float64, c.N()),
		Busy:    make([][]float64, c.N()),
	}
	// One backing array per matrix: an Action is allocated every slot on the
	// scheduling hot path, so row-per-row allocation tripled its cost.
	n, j := c.N(), c.J()
	routeFlat := make([]int, n*j)
	processFlat := make([]float64, n*j)
	kTotal := 0
	for i := 0; i < n; i++ {
		kTotal += c.K(i)
	}
	busyFlat := make([]float64, kTotal)
	kOff := 0
	for i := 0; i < n; i++ {
		a.Route[i] = routeFlat[i*j : (i+1)*j : (i+1)*j]
		a.Process[i] = processFlat[i*j : (i+1)*j : (i+1)*j]
		a.Busy[i] = busyFlat[kOff : kOff+c.K(i) : kOff+c.K(i)]
		kOff += c.K(i)
	}
	return a
}

// Clone returns a deep copy of the action.
func (a *Action) Clone() *Action {
	cp := &Action{
		Route:   make([][]int, len(a.Route)),
		Process: make([][]float64, len(a.Process)),
		Busy:    make([][]float64, len(a.Busy)),
	}
	for i := range a.Route {
		cp.Route[i] = append([]int(nil), a.Route[i]...)
		cp.Process[i] = append([]float64(nil), a.Process[i]...)
		cp.Busy[i] = append([]float64(nil), a.Busy[i]...)
	}
	return cp
}

// WorkAt returns the work processed at data center i: sum_j h_{i,j}(t)*d_j.
func (a *Action) WorkAt(c *Cluster, i int) float64 {
	var w float64
	for j, h := range a.Process[i] {
		w += h * c.JobTypes[j].Demand
	}
	return w
}

// AuxUsageAt returns the consumption of auxiliary resource r at data center
// i: sum_j h_{i,j}(t) * AuxDemand_{j,r}. Job types without auxiliary demands
// consume nothing.
func (a *Action) AuxUsageAt(c *Cluster, i, r int) float64 {
	var u float64
	for j, h := range a.Process[i] {
		if r < len(c.JobTypes[j].AuxDemand) {
			u += h * c.JobTypes[j].AuxDemand[r]
		}
	}
	return u
}

// ProvidedAt returns the computing resource provided at data center i:
// sum_k b_{i,k}(t)*s_k.
func (a *Action) ProvidedAt(c *Cluster, i int) float64 {
	var w float64
	for k, b := range a.Busy[i] {
		w += b * c.DataCenters[i].Servers[k].Speed
	}
	return w
}

// EnergyAt returns e_i(t) = phi_i(t) * sum_k b_{i,k}(t)*p_k, the energy cost
// at data center i under the given state (paper eq. 2).
func (a *Action) EnergyAt(c *Cluster, s *State, i int) float64 {
	var p float64
	for k, b := range a.Busy[i] {
		p += b * c.DataCenters[i].Servers[k].Power
	}
	return s.Price[i] * p
}

// Energy returns the total energy cost e(t) = sum_i e_i(t).
func (a *Action) Energy(c *Cluster, s *State) float64 {
	var e float64
	for i := range a.Busy {
		e += a.EnergyAt(c, s, i)
	}
	return e
}

// BilledCost returns the money billed for the action's energy draw under the
// given tariff (nil means linear pricing, i.e. Energy), counting only the
// increment the batch load adds on top of the state's base load — the
// section III-A2 generalization.
func (a *Action) BilledCost(c *Cluster, s *State, trf tariff.Tariff) float64 {
	var e float64
	for i := range a.Busy {
		e += a.BilledCostAt(c, s, i, trf)
	}
	return e
}

// BilledCostAt returns data center i's share of BilledCost: the billed cost
// of the batch energy drawn at site i under the tariff (nil means linear
// pricing, i.e. EnergyAt). Summing BilledCostAt over all sites in index order
// reproduces BilledCost exactly.
func (a *Action) BilledCostAt(c *Cluster, s *State, i int, trf tariff.Tariff) float64 {
	if trf == nil {
		return a.EnergyAt(c, s, i)
	}
	var draw float64
	for k, b := range a.Busy[i] {
		draw += b * c.DataCenters[i].Servers[k].Power
	}
	base := s.BaseEnergyAt(i)
	return trf.Cost(s.Price[i], base+draw) - trf.Cost(s.Price[i], base)
}

// AccountWork returns r_m(t) for every account m: the computing resource
// allocated to jobs from account m this slot, measured as processed work.
func (a *Action) AccountWork(c *Cluster) []float64 {
	out := make([]float64, c.M())
	for i := range a.Process {
		for j, h := range a.Process[i] {
			jt := c.JobTypes[j]
			out[jt.Account] += h * jt.Demand
		}
	}
	return out
}

// feasibilityTol absorbs floating-point slack when validating actions.
const feasibilityTol = 1e-6

// Validate checks the action is shaped for the cluster and feasible under
// the state: non-negative decisions, b_{i,k} <= n_{i,k}, routing and
// processing restricted to eligible data centers, per-slot bounds respected,
// and the capacity constraint sum_j h*d <= sum_k b*s (paper eq. 11).
// Failures wrap ErrInfeasibleAction.
func (a *Action) Validate(c *Cluster, s *State) error {
	if err := a.validate(c, s); err != nil {
		return fmt.Errorf("%w: %w", ErrInfeasibleAction, err)
	}
	return nil
}

func (a *Action) validate(c *Cluster, s *State) error {
	if len(a.Route) != c.N() || len(a.Process) != c.N() || len(a.Busy) != c.N() {
		return fmt.Errorf("action shaped for %d data centers, cluster has %d", len(a.Route), c.N())
	}
	for i := 0; i < c.N(); i++ {
		if len(a.Route[i]) != c.J() || len(a.Process[i]) != c.J() {
			return fmt.Errorf("data center %d: action has wrong job-type dimension", i)
		}
		if len(a.Busy[i]) != c.K(i) {
			return fmt.Errorf("data center %d: action has %d server types, cluster has %d", i, len(a.Busy[i]), c.K(i))
		}
		for j := 0; j < c.J(); j++ {
			jt := c.JobTypes[j]
			if a.Route[i][j] < 0 {
				return fmt.Errorf("route[%d][%d] = %d is negative", i, j, a.Route[i][j])
			}
			if a.Process[i][j] < 0 {
				return fmt.Errorf("process[%d][%d] = %v is negative", i, j, a.Process[i][j])
			}
			if !jt.EligibleSet(i) && (a.Route[i][j] > 0 || a.Process[i][j] > 0) {
				return fmt.Errorf("job type %d is not eligible at data center %d", j, i)
			}
			if jt.MaxRoute > 0 && a.Route[i][j] > jt.MaxRoute {
				return fmt.Errorf("route[%d][%d] = %d exceeds bound %d", i, j, a.Route[i][j], jt.MaxRoute)
			}
			if jt.MaxProcess > 0 && a.Process[i][j] > jt.MaxProcess+feasibilityTol {
				return fmt.Errorf("process[%d][%d] = %v exceeds bound %v", i, j, a.Process[i][j], jt.MaxProcess)
			}
		}
		for k := range a.Busy[i] {
			if a.Busy[i][k] < -feasibilityTol {
				return fmt.Errorf("busy[%d][%d] = %v is negative", i, k, a.Busy[i][k])
			}
			if a.Busy[i][k] > s.Avail[i][k]+feasibilityTol {
				return fmt.Errorf("busy[%d][%d] = %v exceeds availability %v", i, k, a.Busy[i][k], s.Avail[i][k])
			}
		}
		if w, p := a.WorkAt(c, i), a.ProvidedAt(c, i); w > p+feasibilityTol {
			return fmt.Errorf("data center %d: processed work %v exceeds provided resource %v", i, w, p)
		}
		for r := 0; r < c.Aux(); r++ {
			if u, cap := a.AuxUsageAt(c, i, r), c.DataCenters[i].AuxCapacity[r]; u > cap+feasibilityTol {
				return fmt.Errorf("data center %d: auxiliary resource %d usage %v exceeds capacity %v", i, r, u, cap)
			}
		}
	}
	return nil
}
