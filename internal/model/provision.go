package model

import (
	"fmt"
	"math"
	"sort"
)

// Segment describes one server type of a data center viewed as a capacity
// segment: up to Cap units of work available at Rate energy per unit work.
// Segments are the unit of the greedy provisioning and scheduling logic: the
// cheapest way to supply W units of work at a data center fills segments in
// increasing Rate order.
type Segment struct {
	// ServerType indexes the server type k inside the data center.
	ServerType int
	// Cap is the work this segment can process this slot: n_{i,k}(t) * s_k.
	Cap float64
	// Rate is the energy per unit work on this segment: p_k / s_k. The
	// energy *cost* per unit work is Rate multiplied by the local price.
	Rate float64
}

// Segments returns the capacity segments of data center i under the given
// availability, sorted by increasing energy per unit work. Segments with zero
// capacity are omitted. The ordering does not depend on the electricity price
// because the price multiplies every segment of a data center equally.
func Segments(dc DataCenter, avail []float64) []Segment {
	segs := make([]Segment, 0, len(dc.Servers))
	for k, st := range dc.Servers {
		cap := avail[k] * st.Speed
		if cap <= 0 {
			continue
		}
		segs = append(segs, Segment{ServerType: k, Cap: cap, Rate: st.CostPerWork()})
	}
	sort.Slice(segs, func(a, b int) bool {
		if segs[a].Rate != segs[b].Rate {
			return segs[a].Rate < segs[b].Rate
		}
		return segs[a].ServerType < segs[b].ServerType
	})
	return segs
}

// Provision computes the cheapest (minimum-power) busy-server vector b for
// data center dc that supplies at least work units of computing resource,
// given per-type availability. It activates server types in increasing
// p_k/s_k order. It returns the busy vector, the total power drawn, and an
// error if the available capacity cannot cover the requested work.
func Provision(dc DataCenter, avail []float64, work float64) ([]float64, float64, error) {
	if work < 0 {
		return nil, 0, fmt.Errorf("negative work %v", work)
	}
	busy := make([]float64, len(dc.Servers))
	if work == 0 {
		return busy, 0, nil
	}
	remaining := work
	var power float64
	for _, seg := range Segments(dc, avail) {
		take := seg.Cap
		if take > remaining {
			take = remaining
		}
		st := dc.Servers[seg.ServerType]
		busy[seg.ServerType] = take / st.Speed
		power += take / st.Speed * st.Power
		remaining -= take
		if remaining <= 0 {
			return busy, power, nil
		}
	}
	if remaining > feasibilityTol*(1+work) {
		return nil, 0, fmt.Errorf("work %v exceeds available capacity by %v", work, remaining)
	}
	return busy, power, nil
}

// RateOrder returns the server-type indices of dc sorted by increasing
// energy per unit work (p_k/s_k), ties broken by index — the same visit
// order Segments produces, but availability-independent, so callers on a hot
// path can compute it once per data center and provision every slot through
// ProvisionOrdered without re-sorting or allocating.
func RateOrder(dc DataCenter) []int {
	order := make([]int, len(dc.Servers))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := dc.Servers[order[a]].CostPerWork(), dc.Servers[order[b]].CostPerWork()
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
	return order
}

// ProvisionOrdered is Provision with a precomputed RateOrder and a
// caller-owned busy vector: it writes the cheapest busy-server mix covering
// work into busy (len = number of server types) and returns the total power
// drawn. Semantics are identical to Provision; the only difference is that
// nothing is allocated.
func ProvisionOrdered(dc DataCenter, order []int, avail []float64, busy []float64, work float64) (float64, error) {
	for k := range busy {
		busy[k] = 0
	}
	if work < 0 {
		return 0, fmt.Errorf("negative work %v", work)
	}
	if work == 0 {
		return 0, nil
	}
	remaining := work
	var power float64
	for _, k := range order {
		st := dc.Servers[k]
		cap := avail[k] * st.Speed
		if cap <= 0 {
			continue
		}
		take := cap
		if take > remaining {
			take = remaining
		}
		busy[k] = take / st.Speed
		power += take / st.Speed * st.Power
		remaining -= take
		if remaining <= 0 {
			return power, nil
		}
	}
	if remaining > feasibilityTol*(1+work) {
		return 0, fmt.Errorf("work %v exceeds available capacity by %v", work, remaining)
	}
	return power, nil
}

// EnergyPerWork returns the marginal energy cost per unit work at data center
// i when it is loaded with the given amount of work: the Rate of the segment
// the next unit of work would land on, times the price. It returns +Inf when
// the data center is already at capacity. This is the quantity driving the
// paper's threshold rule: process only while q_{i,j}/d_j > V * price * rate.
func EnergyPerWork(dc DataCenter, avail []float64, price, load float64) float64 {
	remaining := load
	for _, seg := range Segments(dc, avail) {
		if remaining < seg.Cap {
			return price * seg.Rate
		}
		remaining -= seg.Cap
	}
	return math.Inf(1)
}

// NewReferenceCluster builds the three-data-center, four-organization system
// of the paper's evaluation (Table I): one server type per data center with
// normalized speeds 1.00/0.75/1.15 and powers 1.00/0.60/1.20, and fairness
// weights 40%, 30%, 15%, 15%. Each account submits two job types (a short and
// a long one) and every job type may run at every data center, matching the
// paper's setup where job eligibility is wide and heterogeneity comes from
// the sites. Service demands are in the paper's scaled units. The reference
// workload deliberately arrives in proportions that deviate from the target
// weights (org1 over-submits, org2 under-submits), so a fairness-blind policy
// realizes an unfair allocation — the situation the energy-fairness
// parameter beta exists to correct.
func NewReferenceCluster() *Cluster {
	all := []int{0, 1, 2}
	return &Cluster{
		DataCenters: []DataCenter{
			{Name: "dc1", Servers: []ServerType{{Name: "std-1.00", Speed: 1.00, Power: 1.00}}},
			{Name: "dc2", Servers: []ServerType{{Name: "eco-0.75", Speed: 0.75, Power: 0.60}}},
			{Name: "dc3", Servers: []ServerType{{Name: "perf-1.15", Speed: 1.15, Power: 1.20}}},
		},
		JobTypes: []JobType{
			{Name: "org1-short", Demand: 1.0, Eligible: all, Account: 0, MaxArrival: 18, MaxRoute: 60, MaxProcess: 120},
			{Name: "org1-long", Demand: 4.0, Eligible: all, Account: 0, MaxArrival: 11, MaxRoute: 30, MaxProcess: 50},
			{Name: "org2-short", Demand: 1.0, Eligible: all, Account: 1, MaxArrival: 11, MaxRoute: 50, MaxProcess: 100},
			{Name: "org2-long", Demand: 3.0, Eligible: all, Account: 1, MaxArrival: 6, MaxRoute: 25, MaxProcess: 40},
			{Name: "org3-short", Demand: 1.0, Eligible: all, Account: 2, MaxArrival: 12, MaxRoute: 30, MaxProcess: 60},
			{Name: "org3-long", Demand: 2.0, Eligible: all, Account: 2, MaxArrival: 6, MaxRoute: 20, MaxProcess: 30},
			{Name: "org4-short", Demand: 1.0, Eligible: all, Account: 3, MaxArrival: 9, MaxRoute: 30, MaxProcess: 60},
			{Name: "org4-long", Demand: 2.0, Eligible: all, Account: 3, MaxArrival: 5, MaxRoute: 20, MaxProcess: 30},
		},
		Accounts: []Account{
			{Name: "org1", Weight: 0.40},
			{Name: "org2", Weight: 0.30},
			{Name: "org3", Weight: 0.15},
			{Name: "org4", Weight: 0.15},
		},
	}
}
