package model

import "errors"

// Sentinel errors for the three validation surfaces of the domain model.
// Every error returned by Cluster.Validate, State.Validate, and
// Action.Validate wraps the matching sentinel, so callers can classify
// failures with errors.Is regardless of how many layers of slot or site
// context have been wrapped around them.
var (
	// ErrInvalidCluster marks a structurally inconsistent system description.
	ErrInvalidCluster = errors.New("invalid cluster")
	// ErrInvalidState marks a slot state that is malformed for its cluster.
	ErrInvalidState = errors.New("invalid state")
	// ErrInfeasibleAction marks an action violating the model constraints
	// (shape, eligibility, bounds, or the capacity constraint of eq. 11).
	ErrInfeasibleAction = errors.New("infeasible action")
)
