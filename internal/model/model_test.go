package model

import (
	"math"
	"strings"
	"testing"
)

func refCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewReferenceCluster()
	if err := c.Validate(); err != nil {
		t.Fatalf("reference cluster invalid: %v", err)
	}
	return c
}

func refState(t *testing.T, c *Cluster) *State {
	t.Helper()
	s := NewState(c)
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(i); k++ {
			s.Avail[i][k] = 100
		}
		s.Price[i] = 0.4 + 0.1*float64(i)
	}
	if err := s.Validate(c); err != nil {
		t.Fatalf("state invalid: %v", err)
	}
	return s
}

func TestReferenceClusterShape(t *testing.T) {
	c := refCluster(t)
	if got, want := c.N(), 3; got != want {
		t.Errorf("N() = %d, want %d", got, want)
	}
	if got, want := c.J(), 8; got != want {
		t.Errorf("J() = %d, want %d", got, want)
	}
	if got, want := c.M(), 4; got != want {
		t.Errorf("M() = %d, want %d", got, want)
	}
	var weights float64
	for _, a := range c.Accounts {
		weights += a.Weight
	}
	if math.Abs(weights-1.0) > 1e-12 {
		t.Errorf("account weights sum to %v, want 1.0", weights)
	}
}

func TestCostPerWorkOrdering(t *testing.T) {
	// Table I: energy per unit work is p/s = 1.00, 0.80, ~1.043 for the
	// three sites; combined with average prices the cheapest site is dc2.
	c := refCluster(t)
	r1 := c.DataCenters[0].Servers[0].CostPerWork()
	r2 := c.DataCenters[1].Servers[0].CostPerWork()
	r3 := c.DataCenters[2].Servers[0].CostPerWork()
	if !(r2 < r1 && r1 < r3) {
		t.Errorf("cost-per-work ordering = %v, %v, %v; want dc2 < dc1 < dc3", r1, r2, r3)
	}
	if math.Abs(r1-1.0) > 1e-12 || math.Abs(r2-0.8) > 1e-12 {
		t.Errorf("unexpected rates: %v, %v", r1, r2)
	}
}

func TestValidateCatchesBadCluster(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Cluster)
		substr string
	}{
		{"no dcs", func(c *Cluster) { c.DataCenters = nil }, "no data centers"},
		{"no jobs", func(c *Cluster) { c.JobTypes = nil }, "no job types"},
		{"no accounts", func(c *Cluster) { c.Accounts = nil }, "no accounts"},
		{"zero speed", func(c *Cluster) { c.DataCenters[0].Servers[0].Speed = 0 }, "speed"},
		{"negative power", func(c *Cluster) { c.DataCenters[1].Servers[0].Power = -1 }, "power"},
		{"zero demand", func(c *Cluster) { c.JobTypes[0].Demand = 0 }, "demand"},
		{"empty eligible", func(c *Cluster) { c.JobTypes[2].Eligible = nil }, "eligible"},
		{"bad eligible", func(c *Cluster) { c.JobTypes[2].Eligible = []int{7} }, "out of range"},
		{"dup eligible", func(c *Cluster) { c.JobTypes[2].Eligible = []int{1, 1} }, "duplicate"},
		{"bad account", func(c *Cluster) { c.JobTypes[3].Account = 9 }, "account"},
		{"negative weight", func(c *Cluster) { c.Accounts[0].Weight = -0.1 }, "weight"},
		{"negative max arrival", func(c *Cluster) { c.JobTypes[0].MaxArrival = -1 }, "MaxArrival"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewReferenceCluster()
			tc.mutate(c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("Validate() = %q, want substring %q", err, tc.substr)
			}
		})
	}
}

func TestStateCapacityAndResource(t *testing.T) {
	c := refCluster(t)
	s := refState(t, c)
	// 100 servers each: capacities 100*1.00, 100*0.75, 100*1.15.
	wants := []float64{100, 75, 115}
	var total float64
	for i, want := range wants {
		if got := s.Capacity(c, i); math.Abs(got-want) > 1e-12 {
			t.Errorf("Capacity(%d) = %v, want %v", i, got, want)
		}
		total += want
	}
	if got := s.TotalResource(c); math.Abs(got-total) > 1e-12 {
		t.Errorf("TotalResource() = %v, want %v", got, total)
	}
}

func TestStateValidate(t *testing.T) {
	c := refCluster(t)
	s := refState(t, c)
	s.Avail[1][0] = -1
	if err := s.Validate(c); err == nil {
		t.Error("negative availability not rejected")
	}
	s = refState(t, c)
	s.Price[2] = -0.1
	if err := s.Validate(c); err == nil {
		t.Error("negative price not rejected")
	}
	s = refState(t, c)
	s.Price = s.Price[:2]
	if err := s.Validate(c); err == nil {
		t.Error("wrong shape not rejected")
	}
}

func TestStateClone(t *testing.T) {
	c := refCluster(t)
	s := refState(t, c)
	cp := s.Clone()
	cp.Avail[0][0] = -99
	cp.Price[0] = -99
	if s.Avail[0][0] == -99 || s.Price[0] == -99 {
		t.Error("Clone shares storage with original")
	}
}

func TestActionEnergyAndWork(t *testing.T) {
	c := refCluster(t)
	s := refState(t, c)
	a := NewAction(c)
	a.Process[1][0] = 10 // 10 jobs of demand 1 at dc2
	a.Process[1][1] = 5  // 5 jobs of demand 4 at dc2
	// Need 30 units of work at dc2, speed 0.75 -> 40 busy servers.
	a.Busy[1][0] = 40
	if got, want := a.WorkAt(c, 1), 30.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("WorkAt = %v, want %v", got, want)
	}
	if got, want := a.ProvidedAt(c, 1), 30.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ProvidedAt = %v, want %v", got, want)
	}
	// Energy at dc2: price 0.5 * 40 busy * power 0.60 = 12.
	if got, want := a.EnergyAt(c, s, 1), 12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyAt = %v, want %v", got, want)
	}
	if got, want := a.Energy(c, s), 12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
	if err := a.Validate(c, s); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestActionAccountWork(t *testing.T) {
	c := refCluster(t)
	a := NewAction(c)
	a.Process[0][0] = 3 // org1, demand 1
	a.Process[2][1] = 2 // org1, demand 4
	a.Process[1][4] = 5 // org3, demand 1
	got := a.AccountWork(c)
	want := []float64{11, 0, 5, 0}
	for m := range want {
		if math.Abs(got[m]-want[m]) > 1e-12 {
			t.Errorf("AccountWork[%d] = %v, want %v", m, got[m], want[m])
		}
	}
}

func TestActionValidateCatchesInfeasible(t *testing.T) {
	c := refCluster(t)
	s := refState(t, c)

	t.Run("busy exceeds availability", func(t *testing.T) {
		a := NewAction(c)
		a.Busy[0][0] = 101
		if err := a.Validate(c, s); err == nil {
			t.Error("want error")
		}
	})
	t.Run("work exceeds provided", func(t *testing.T) {
		a := NewAction(c)
		a.Process[0][0] = 10
		a.Busy[0][0] = 5
		if err := a.Validate(c, s); err == nil {
			t.Error("want error")
		}
	})
	t.Run("negative route", func(t *testing.T) {
		a := NewAction(c)
		a.Route[0][0] = -1
		if err := a.Validate(c, s); err == nil {
			t.Error("want error")
		}
	})
	t.Run("route bound", func(t *testing.T) {
		a := NewAction(c)
		a.Route[0][0] = c.JobTypes[0].MaxRoute + 1
		if err := a.Validate(c, s); err == nil {
			t.Error("want error")
		}
	})
	t.Run("ineligible data center", func(t *testing.T) {
		cc := NewReferenceCluster()
		cc.JobTypes[0].Eligible = []int{1}
		ss := refState(t, &Cluster{DataCenters: cc.DataCenters, JobTypes: cc.JobTypes, Accounts: cc.Accounts})
		a := NewAction(cc)
		a.Route[0][0] = 1
		if err := a.Validate(cc, ss); err == nil {
			t.Error("want error")
		}
	})
}

func TestEligibleSet(t *testing.T) {
	jt := JobType{Eligible: []int{0, 2}}
	if !jt.EligibleSet(0) || !jt.EligibleSet(2) {
		t.Error("expected members missing")
	}
	if jt.EligibleSet(1) {
		t.Error("unexpected member 1")
	}
}
