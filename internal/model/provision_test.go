package model

import (
	"math"
	"testing"
	"testing/quick"
)

func multiTierDC() DataCenter {
	return DataCenter{
		Name: "multi",
		Servers: []ServerType{
			{Name: "old", Speed: 0.8, Power: 1.2},  // rate 1.5
			{Name: "eco", Speed: 1.0, Power: 0.5},  // rate 0.5
			{Name: "perf", Speed: 2.0, Power: 1.6}, // rate 0.8
		},
	}
}

func TestSegmentsSortedByRate(t *testing.T) {
	dc := multiTierDC()
	segs := Segments(dc, []float64{10, 10, 10})
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	for x := 1; x < len(segs); x++ {
		if segs[x-1].Rate > segs[x].Rate {
			t.Errorf("segments not sorted: %v then %v", segs[x-1].Rate, segs[x].Rate)
		}
	}
	if segs[0].ServerType != 1 || segs[1].ServerType != 2 || segs[2].ServerType != 0 {
		t.Errorf("segment order = %v,%v,%v; want eco,perf,old", segs[0].ServerType, segs[1].ServerType, segs[2].ServerType)
	}
	if math.Abs(segs[0].Cap-10) > 1e-12 || math.Abs(segs[1].Cap-20) > 1e-12 {
		t.Errorf("unexpected caps %v, %v", segs[0].Cap, segs[1].Cap)
	}
}

func TestSegmentsSkipsEmpty(t *testing.T) {
	dc := multiTierDC()
	segs := Segments(dc, []float64{0, 5, 0})
	if len(segs) != 1 || segs[0].ServerType != 1 {
		t.Fatalf("got %+v, want single eco segment", segs)
	}
}

func TestProvisionPrefersCheapSegments(t *testing.T) {
	dc := multiTierDC()
	avail := []float64{10, 10, 10}

	// 5 units fit entirely on the eco tier (cap 10).
	busy, power, err := Provision(dc, avail, 5)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if busy[1] != 5 || busy[0] != 0 || busy[2] != 0 {
		t.Errorf("busy = %v, want only eco used", busy)
	}
	if math.Abs(power-2.5) > 1e-12 {
		t.Errorf("power = %v, want 2.5", power)
	}

	// 25 units: 10 on eco, 15 on perf (7.5 servers).
	busy, power, err = Provision(dc, avail, 25)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if math.Abs(busy[1]-10) > 1e-12 || math.Abs(busy[2]-7.5) > 1e-12 || busy[0] != 0 {
		t.Errorf("busy = %v, want eco full + 7.5 perf", busy)
	}
	wantPower := 10*0.5 + 7.5*1.6
	if math.Abs(power-wantPower) > 1e-12 {
		t.Errorf("power = %v, want %v", power, wantPower)
	}
}

func TestProvisionExhaustsCapacity(t *testing.T) {
	dc := multiTierDC()
	avail := []float64{1, 1, 1}
	// Capacity is 0.8 + 1.0 + 2.0 = 3.8.
	if _, _, err := Provision(dc, avail, 3.8); err != nil {
		t.Errorf("full capacity should be feasible: %v", err)
	}
	if _, _, err := Provision(dc, avail, 4.0); err == nil {
		t.Error("over-capacity request not rejected")
	}
	if _, _, err := Provision(dc, avail, -1); err == nil {
		t.Error("negative work not rejected")
	}
}

func TestProvisionZeroWork(t *testing.T) {
	dc := multiTierDC()
	busy, power, err := Provision(dc, []float64{1, 1, 1}, 0)
	if err != nil || power != 0 {
		t.Fatalf("zero work: busy=%v power=%v err=%v", busy, power, err)
	}
	for _, b := range busy {
		if b != 0 {
			t.Errorf("zero work should keep all servers idle, got %v", busy)
		}
	}
}

// TestProvisionOptimality checks by brute-force grid search that the greedy
// provisioning is power-optimal for random two-type configurations.
func TestProvisionOptimality(t *testing.T) {
	f := func(seedA, seedB uint8, loadFrac uint8) bool {
		s1 := 0.5 + float64(seedA%40)/20.0 // speed in [0.5, 2.45]
		s2 := 0.5 + float64(seedB%40)/20.0
		p1 := 0.2 + float64(seedB%30)/15.0
		p2 := 0.2 + float64(seedA%30)/15.0
		dc := DataCenter{Servers: []ServerType{
			{Speed: s1, Power: p1},
			{Speed: s2, Power: p2},
		}}
		avail := []float64{3, 3}
		capTotal := 3*s1 + 3*s2
		work := capTotal * float64(loadFrac%100) / 100.0
		busy, power, err := Provision(dc, avail, work)
		if err != nil {
			return false
		}
		// Feasibility.
		if busy[0] < -1e-9 || busy[0] > 3+1e-9 || busy[1] < -1e-9 || busy[1] > 3+1e-9 {
			return false
		}
		if busy[0]*s1+busy[1]*s2 < work-1e-6 {
			return false
		}
		// Optimality vs a fine grid over b1 (b2 determined by the work).
		for g := 0; g <= 300; g++ {
			b1 := 3 * float64(g) / 300
			rem := work - b1*s1
			if rem < 0 {
				rem = 0
			}
			b2 := rem / s2
			if b2 > 3 {
				continue // infeasible split
			}
			alt := b1*p1 + b2*p2
			if alt < power-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnergyPerWork(t *testing.T) {
	dc := multiTierDC()
	avail := []float64{10, 10, 10}
	price := 2.0
	// Load 0: marginal unit lands on eco (rate 0.5).
	if got := EnergyPerWork(dc, avail, price, 0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("EnergyPerWork(load=0) = %v, want 1.0", got)
	}
	// Load 15: eco (10) full, lands on perf (rate 0.8).
	if got := EnergyPerWork(dc, avail, price, 15); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("EnergyPerWork(load=15) = %v, want 1.6", got)
	}
	// Load 35: eco+perf (30) full, lands on old (rate 1.5).
	if got := EnergyPerWork(dc, avail, price, 35); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("EnergyPerWork(load=35) = %v, want 3.0", got)
	}
	// Load beyond total capacity 38: +Inf.
	if got := EnergyPerWork(dc, avail, price, 38); !math.IsInf(got, 1) {
		t.Errorf("EnergyPerWork(load=38) = %v, want +Inf", got)
	}
}
