package lp

import (
	"math"
	"math/rand"
	"testing"
)

// boundsAsRows rebuilds a problem with every native upper bound expressed as
// an explicit x_j <= u row, the formulation the solver used before the
// bounded-variable simplex. It is the independent reference for equivalence
// testing.
func boundsAsRows(p *Problem) *Problem {
	q := NewProblem(p.n)
	copy(q.c, p.c)
	q.rows = append(q.rows, p.rows...)
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		dense := make([]float64, p.n)
		dense[j] = 1
		q.rows = append(q.rows, row{coef: dense, op: LE, rhs: u})
	}
	return q
}

func TestBoundedEnteringFlip(t *testing.T) {
	// max x (min -x) with x <= 2.5 and no other constraints: the optimum is
	// reached purely by flipping the entering variable to its bound.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{-1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 2.5); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -2.5, []float64{2.5})
}

func TestBoundedBasicHitsUpper(t *testing.T) {
	// min -x - y s.t. x - y <= 1, y <= 3, x <= 10. Increasing x first drives
	// slack; then y enters and x (basic) is limited by its own upper bound
	// on the way: exercises the limitUpper path. Optimum x=4? Check:
	// constraint x <= y + 1, y <= 3 -> x <= 4, obj = -(4+3) = -7.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, -1}, LE, 1)
	if err := p.AddUpperBound(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(1, 3); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -7, []float64{4, 3})
}

func TestBoundedTightestBoundWins(t *testing.T) {
	p := NewProblem(1)
	if err := p.SetObjective([]float64{-1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 7); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -2, []float64{2})
}

func TestBoundedNegativeBoundInfeasible(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddUpperBound(0, -1); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestBoundedZeroBoundFixesVariable(t *testing.T) {
	// min -x - y with x <= 0, y <= 4: x pinned at 0.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(1, 4); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -4, []float64{0, 4})
}

func TestBoundedWithEqualityConstraints(t *testing.T) {
	// Phase 1 (artificials) combined with native bounds: min x + 2y s.t.
	// x + y = 5, x <= 2 -> x=2, y=3, obj 8.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, EQ, 5)
	if err := p.AddUpperBound(0, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	// Wait: minimizing prefers small y; but x+y=5 forces total; x cheaper,
	// so x as large as possible: x=2, y=3, obj 2+6=8.
	wantOptimal(t, sol, 8, []float64{2, 3})
}

// TestBoundedMatchesRowFormulation solves random LPs both ways — native
// bounds and bounds-as-rows — and requires identical optimal objectives.
func TestBoundedMatchesRowFormulation(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		if err := p.SetObjective(c); err != nil {
			t.Fatal(err)
		}
		// A couple of random LE/GE/EQ rows with non-negative coefficients
		// and generous RHS so feasibility is common.
		for r := 0; r < 1+rng.Intn(3); r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64()
			}
			switch rng.Intn(3) {
			case 0:
				mustAdd(t, p, coef, LE, 2+rng.Float64()*6)
			case 1:
				mustAdd(t, p, coef, GE, rng.Float64()*2)
			default:
				mustAdd(t, p, coef, EQ, 1+rng.Float64()*3)
			}
		}
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				if err := p.AddUpperBound(j, rng.Float64()*4); err != nil {
					t.Fatal(err)
				}
			}
		}

		ref := boundsAsRows(p)
		solNative, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d native: %v", trial, err)
		}
		solRows, err := Solve(ref)
		if err != nil {
			t.Fatalf("trial %d rows: %v", trial, err)
		}
		if solNative.Status != solRows.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, solNative.Status, solRows.Status)
		}
		if solNative.Status != Optimal {
			continue
		}
		if math.Abs(solNative.Objective-solRows.Objective) > 1e-6*(1+math.Abs(solRows.Objective)) {
			t.Fatalf("trial %d: objective %v vs %v", trial, solNative.Objective, solRows.Objective)
		}
		// The native solution must respect its bounds.
		for j, u := range p.upper {
			if solNative.X[j] > u+1e-7 || solNative.X[j] < -1e-7 {
				t.Fatalf("trial %d: x[%d]=%v outside [0,%v]", trial, j, solNative.X[j], u)
			}
		}
	}
}
