package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantOptimal(t *testing.T, sol *Solution, obj float64, x []float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-obj) > 1e-6 {
		t.Errorf("objective = %v, want %v", sol.Objective, obj)
	}
	if x == nil {
		return
	}
	for j := range x {
		if math.Abs(sol.X[j]-x[j]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v (x=%v)", j, sol.X[j], x[j], sol.X)
		}
	}
}

func TestSolveTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman).
	// Optimum x=2, y=6, value 36. We minimize the negation.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-3, -5}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 0}, LE, 4)
	mustAdd(t, p, []float64{0, 2}, LE, 12)
	mustAdd(t, p, []float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	wantOptimal(t, sol, -36, []float64{2, 6})
}

func mustAdd(t *testing.T, p *Problem, coef []float64, op Op, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(coef, op, rhs); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithEqualityAndGE(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2. Optimum x=8, y=2, obj 22.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, EQ, 10)
	mustAdd(t, p, []float64{1, 0}, GE, 3)
	mustAdd(t, p, []float64{0, 1}, GE, 2)
	sol := solveOK(t, p)
	wantOptimal(t, sol, 22, []float64{8, 2})
}

func TestSolveDiet(t *testing.T) {
	// Classic diet-style LP: min 0.6a + 1.0b
	// s.t. 10a + 4b >= 20, 5a + 5b >= 20, 2a + 6b >= 12.
	// Optimum at the intersection of the last two rows: a+b=4 and a+3b=6
	// give a=3, b=1 (first row holds with slack). Objective 2.8.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{0.6, 1.0}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{10, 4}, GE, 20)
	mustAdd(t, p, []float64{5, 5}, GE, 20)
	mustAdd(t, p, []float64{2, 6}, GE, 12)
	sol := solveOK(t, p)
	wantOptimal(t, sol, 2.8, []float64{3, 1})
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(1)
	mustAdd(t, p, []float64{1}, GE, 5)
	mustAdd(t, p, []float64{1}, LE, 3)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{0, 1}, LE, 5)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNoConstraints(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, 0, []float64{0, 0})
}

func TestSolveNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x + y: flip handling must work. Feasible needs
	// y >= x + 2, so optimum x=0, y=2, obj 2.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, -1}, LE, -2)
	sol := solveOK(t, p)
	wantOptimal(t, sol, 2, []float64{0, 2})
}

func TestSolveUpperBounds(t *testing.T) {
	// max x + y with x <= 1.5, y <= 2.5 via AddUpperBound.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUpperBound(1, 2.5); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -4, []float64{1.5, 2.5})
}

func TestSolveDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; Dantzig's rule cycles without an
	// anti-cycling safeguard. Optimum value is -0.05.
	p := NewProblem(4)
	if err := p.SetObjective([]float64{-0.75, 150, -0.02, 6}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{0.25, -60, -0.04, 9}, LE, 0)
	mustAdd(t, p, []float64{0.5, -90, -0.02, 3}, LE, 0)
	mustAdd(t, p, []float64{0, 0, 1, 0}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicated equality rows leave an artificial basic at zero; the solver
	// must drop it and still answer.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, EQ, 4)
	mustAdd(t, p, []float64{2, 2}, EQ, 8)
	sol := solveOK(t, p)
	wantOptimal(t, sol, 4, []float64{4, 0})
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(5)
	if err := p.SetObjective([]float64{0, -1, 0, -1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSparseConstraint([]int{1, 3}, []float64{1, 1}, LE, 7); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	wantOptimal(t, sol, -7, nil)
	if math.Abs(sol.X[1]+sol.X[3]-7) > 1e-6 {
		t.Errorf("x1+x3 = %v, want 7", sol.X[1]+sol.X[3])
	}
}

func TestProblemValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Error("short objective accepted")
	}
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Error("out-of-range coeff accepted")
	}
	if err := p.AddConstraint([]float64{1}, LE, 0); err == nil {
		t.Error("short constraint accepted")
	}
	if err := p.AddConstraint([]float64{1, 1}, Op(9), 0); err == nil {
		t.Error("bad op accepted")
	}
	if err := p.AddSparseConstraint([]int{0}, []float64{1, 2}, LE, 0); err == nil {
		t.Error("mismatched sparse constraint accepted")
	}
	if err := p.AddSparseConstraint([]int{9}, []float64{1}, LE, 0); err == nil {
		t.Error("out-of-range sparse index accepted")
	}
	if err := p.AddUpperBound(9, 1); err == nil {
		t.Error("out-of-range bound accepted")
	}
}

// TestSolveAgainstGridSearch solves random small LPs over a box and checks
// the simplex result against a fine grid search. The grid is only a lower
// bound on quality (grid points are feasible candidates), so the simplex
// objective must be <= the best grid value plus tolerance.
func TestSolveAgainstGridSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		c := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		a1 := []float64{rng.Float64() + 0.2, rng.Float64() + 0.2}
		b1 := rng.Float64()*4 + 1
		p := NewProblem(2)
		if err := p.SetObjective(c); err != nil {
			t.Fatal(err)
		}
		mustAdd(t, p, a1, LE, b1)
		if err := p.AddUpperBound(0, 3); err != nil {
			t.Fatal(err)
		}
		if err := p.AddUpperBound(1, 3); err != nil {
			t.Fatal(err)
		}
		sol := solveOK(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		best := math.Inf(1)
		const grid = 120
		for gx := 0; gx <= grid; gx++ {
			for gy := 0; gy <= grid; gy++ {
				x := 3 * float64(gx) / grid
				y := 3 * float64(gy) / grid
				if a1[0]*x+a1[1]*y > b1 {
					continue
				}
				if v := c[0]*x + c[1]*y; v < best {
					best = v
				}
			}
		}
		if sol.Objective > best+1e-6 {
			t.Errorf("trial %d: simplex %v worse than grid %v", trial, sol.Objective, best)
		}
		// Solution must itself be feasible.
		if a1[0]*sol.X[0]+a1[1]*sol.X[1] > b1+1e-6 {
			t.Errorf("trial %d: infeasible solution %v", trial, sol.X)
		}
		for j := 0; j < 2; j++ {
			if sol.X[j] < -1e-9 || sol.X[j] > 3+1e-6 {
				t.Errorf("trial %d: x[%d]=%v out of box", trial, j, sol.X[j])
			}
		}
	}
}

// TestSolveTransportation exercises equality-constrained problems of the
// shape used by the T-step lookahead LP.
func TestSolveTransportation(t *testing.T) {
	// 2 supplies (10, 15), 3 demands (8, 9, 8), costs:
	//   [4 6 9]
	//   [5 3 2]
	// Optimal plan: supply1 -> d1 (8) + d2 (2); supply2 -> d2 (7) + d3 (8).
	// Cost = 32 + 12 + 21 + 16 = 81.
	p := NewProblem(6) // x[s][d] row-major
	if err := p.SetObjective([]float64{4, 6, 9, 5, 3, 2}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1, 1, 0, 0, 0}, LE, 10)
	mustAdd(t, p, []float64{0, 0, 0, 1, 1, 1}, LE, 15)
	mustAdd(t, p, []float64{1, 0, 0, 1, 0, 0}, EQ, 8)
	mustAdd(t, p, []float64{0, 1, 0, 0, 1, 0}, EQ, 9)
	mustAdd(t, p, []float64{0, 0, 1, 0, 0, 1}, EQ, 8)
	sol := solveOK(t, p)
	wantOptimal(t, sol, 81, nil)
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("op strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Op(42).String() == "" || Status(42).String() == "" {
		t.Error("unknown values should still render")
	}
}
