package lp_test

import (
	"math"
	"testing"

	"grefar/internal/lp"
)

// decodeCoef maps one fuzz byte to a small signed coefficient in [-8, 7.9375].
func decodeCoef(b byte) float64 { return (float64(b) - 128) / 16 }

// FuzzSimplex feeds the two-phase bounded simplex random LPs that are
// feasible by construction: every row is a <= constraint with nonnegative
// right-hand side, so the origin is always a feasible point. That pins three
// properties for any byte input: the solver must terminate without hitting
// the Bland iteration limit, must never report infeasible, and on an optimal
// status the returned point must be primal feasible with objective c.x <= 0
// (the origin achieves 0 and we minimize).
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{2, 2, 100, 200, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add([]byte{4, 3, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1, 200, 150, 100, 50, 25, 12, 6, 3})
	f.Add([]byte{1, 1, 127, 129})
	f.Add([]byte{3, 4, 90, 12, 240, 17, 66, 203, 5, 180, 44, 99, 211, 7, 133, 250, 61, 148, 23, 76})
	f.Add([]byte{4, 4, 255, 255, 255, 255, 0, 0, 0, 0, 128, 128, 128, 128, 64, 192, 64, 192, 32, 224, 96, 160})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		nVars := 1 + int(data[0]%4)
		nRows := 1 + int(data[1]%4)
		pos := 2
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}

		prob := lp.NewProblem(nVars)
		costs := make([]float64, nVars)
		for j := range costs {
			costs[j] = decodeCoef(next())
		}
		if err := prob.SetObjective(costs); err != nil {
			t.Fatal(err)
		}

		type row struct {
			coef []float64
			rhs  float64
		}
		rows := make([]row, nRows)
		for r := range rows {
			coef := make([]float64, nVars)
			for j := range coef {
				coef[j] = decodeCoef(next())
			}
			rhs := math.Abs(decodeCoef(next()))
			rows[r] = row{coef: coef, rhs: rhs}
			if err := prob.AddConstraint(coef, lp.LE, rhs); err != nil {
				t.Fatal(err)
			}
		}

		// Sprinkle variable upper bounds; a bound of zero pins the variable.
		upper := make([]float64, nVars)
		for j := range upper {
			upper[j] = math.Inf(1)
			b := next()
			if b%3 == 0 {
				upper[j] = math.Abs(decodeCoef(next()))
				if err := prob.AddUpperBound(j, upper[j]); err != nil {
					t.Fatal(err)
				}
			}
		}

		sol, err := lp.Solve(prob)
		if err != nil {
			// Any error here includes ErrIterationLimit: Bland's rule must
			// terminate on every input.
			t.Fatalf("solve failed on a feasible-by-construction LP: %v", err)
		}
		switch sol.Status {
		case lp.Unbounded:
			return
		case lp.Infeasible:
			t.Fatal("reported infeasible, but the origin is feasible")
		case lp.Optimal:
		default:
			t.Fatalf("unexpected status %v", sol.Status)
		}

		const tol = 1e-7
		if len(sol.X) != nVars {
			t.Fatalf("solution has %d vars, want %d", len(sol.X), nVars)
		}
		var obj float64
		for j, x := range sol.X {
			if x < -tol {
				t.Errorf("x[%d] = %v negative", j, x)
			}
			if x > upper[j]+tol {
				t.Errorf("x[%d] = %v exceeds upper bound %v", j, x, upper[j])
			}
			obj += costs[j] * x
		}
		for r, rw := range rows {
			var lhs float64
			for j := range rw.coef {
				lhs += rw.coef[j] * sol.X[j]
			}
			if lhs > rw.rhs+tol {
				t.Errorf("row %d violated: %v > %v", r, lhs, rw.rhs)
			}
		}
		if math.Abs(obj-sol.Objective) > tol*(1+math.Abs(obj)) {
			t.Errorf("reported objective %v does not match c.x = %v", sol.Objective, obj)
		}
		if sol.Objective > tol {
			t.Errorf("optimal objective %v above 0, but the origin achieves 0", sol.Objective)
		}
	})
}
