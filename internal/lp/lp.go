// Package lp provides a self-contained dense linear-programming solver based
// on the two-phase primal simplex method with an anti-cycling safeguard.
//
// It exists because the GreFar reproduction needs exact linear optimization
// in two places: as a cross-check oracle for the closed-form greedy that
// solves the beta=0 per-slot problem (paper eq. 14), and to compute the
// optimal T-step lookahead policy of Theorem 1 (paper eqs. 15-18). Problem
// sizes are modest (hundreds of variables), so a robust dense implementation
// is preferred over a sparse one.
//
// Problems are stated as
//
//	minimize    c'x
//	subject to  A x (<= | = | >=) b
//	            0 <= x, and optionally x_j <= u_j
//
// Variable upper bounds are handled natively by the bounded-variable simplex
// (the classic bound-flip technique), so a bound costs no constraint row;
// the randomized tests in bounded_test.go verify the bounded solver against
// the bounds-as-rows formulation.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	// LE is "less than or equal".
	LE Op = iota + 1
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the conventional symbol for the relation.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

type row struct {
	coef []float64
	op   Op
	rhs  float64
}

// Problem is a linear program under construction. Create one with NewProblem,
// set the objective, add constraints, then call Solve.
type Problem struct {
	n     int
	c     []float64
	rows  []row
	upper []float64 // per-variable upper bound, +Inf when absent
}

// NewProblem creates a problem with n non-negative decision variables and a
// zero objective.
func NewProblem(n int) *Problem {
	upper := make([]float64, n)
	for j := range upper {
		upper[j] = math.Inf(1)
	}
	return &Problem{n: n, c: make([]float64, n), upper: upper}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the full cost vector c (minimization). The slice is
// copied.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.n {
		return fmt.Errorf("objective has %d coefficients, problem has %d variables", len(c), p.n)
	}
	copy(p.c, c)
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("variable %d out of range [0,%d)", j, p.n)
	}
	p.c[j] = v
	return nil
}

// AddConstraint adds the dense row coef'x (op) rhs. The slice is copied.
func (p *Problem) AddConstraint(coef []float64, op Op, rhs float64) error {
	if len(coef) != p.n {
		return fmt.Errorf("constraint has %d coefficients, problem has %d variables", len(coef), p.n)
	}
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("unknown constraint op %d", op)
	}
	p.rows = append(p.rows, row{coef: append([]float64(nil), coef...), op: op, rhs: rhs})
	return nil
}

// AddSparseConstraint adds the row sum_t coef[t]*x[idx[t]] (op) rhs.
func (p *Problem) AddSparseConstraint(idx []int, coef []float64, op Op, rhs float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("got %d indices but %d coefficients", len(idx), len(coef))
	}
	dense := make([]float64, p.n)
	for t, j := range idx {
		if j < 0 || j >= p.n {
			return fmt.Errorf("variable %d out of range [0,%d)", j, p.n)
		}
		dense[j] += coef[t]
	}
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("unknown constraint op %d", op)
	}
	p.rows = append(p.rows, row{coef: dense, op: op, rhs: rhs})
	return nil
}

// AddUpperBound sets the bound x_j <= u. Bounds are handled natively by the
// bounded-variable simplex (no constraint row is added); repeated calls keep
// the tightest bound. A negative bound makes the problem infeasible, which
// Solve reports.
func (p *Problem) AddUpperBound(j int, u float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("variable %d out of range [0,%d)", j, p.n)
	}
	if u < p.upper[j] {
		p.upper[j] = u
	}
	return nil
}

// Solution is the result of a successful Solve call.
type Solution struct {
	// Status reports whether the problem was solved to optimality.
	Status Status
	// Objective is c'x at the returned point (meaningful only for Optimal).
	Objective float64
	// X is the optimal point (meaningful only for Optimal).
	X []float64
}

const (
	tol = 1e-9
	// maxIters caps simplex iterations as a defense against numerical
	// stalling; it is generous relative to the problem sizes in this repo.
	maxIters = 200000
	// blandTrigger is the number of non-improving (degenerate) pivots after
	// which the pivot rule switches from Dantzig to Bland, which provably
	// terminates.
	blandTrigger = 200
)

// ErrIterationLimit is returned when the simplex exceeds its iteration cap,
// which indicates a numerically pathological instance.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// Solve runs the two-phase bounded-variable simplex method on a copy of the
// problem. Variable upper bounds are handled natively with the bound-flip
// technique rather than as constraint rows.
func Solve(p *Problem) (*Solution, error) {
	for _, u := range p.upper {
		if u < 0 {
			return &Solution{Status: Infeasible}, nil
		}
	}
	t := newTableau(p)
	if t.needPhase1() {
		if err := t.runSimplex(); err != nil {
			return nil, err
		}
		if t.objectiveValue() > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		t.dropArtificials()
	}
	t.installPhase2Objective(p.c)
	if err := t.runSimplex(); err != nil {
		return nil, err
	}
	if t.unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := t.extract(p.n)
	var obj float64
	for j, cj := range p.c {
		obj += cj * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x}, nil
}

// tableau is a full dense simplex tableau with native variable upper bounds.
// Columns are laid out as [structural (n)] [slack/surplus (#rows)]
// [artificial (<=#rows)], with one extra objective row at the bottom and the
// RHS in the last column.
//
// Upper bounds use the classic bound-flip substitution: a nonbasic variable
// resting at its upper bound is replaced by x_j = u_j - x_j' (column negated,
// RHS adjusted), so every nonbasic variable is canonically at zero and the
// usual entering test applies unchanged. flipped[j] records the substitution.
type tableau struct {
	m, n      int // constraint rows, structural variables
	cols      int // total variable columns (structural + slack + artificial)
	artStart  int // first artificial column; cols == artStart when none
	a         [][]float64
	obj       []float64 // reduced-cost row, length cols+1 (last is -value)
	basis     []int     // basis[r] = column basic in row r
	upper     []float64 // per-column upper bound (+Inf when none)
	flipped   []bool    // per-column bound-flip state
	unbounded bool
	phase1    bool
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.rows), p.n
	// Count slack and artificial columns.
	numSlack := 0
	numArt := 0
	for _, r := range p.rows {
		rhs, op := r.rhs, r.op
		if rhs < 0 {
			// Row will be negated; LE becomes GE and vice versa.
			if op == LE {
				op = GE
			} else if op == GE {
				op = LE
			}
		}
		switch op {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		m:        m,
		n:        n,
		cols:     n + numSlack + numArt,
		artStart: n + numSlack,
		basis:    make([]int, m),
		phase1:   numArt > 0,
	}
	t.upper = make([]float64, t.cols)
	t.flipped = make([]bool, t.cols)
	for j := range t.upper {
		if j < n {
			t.upper[j] = p.upper[j]
		} else {
			t.upper[j] = math.Inf(1)
		}
	}
	t.a = make([][]float64, m)
	slackCol := n
	artCol := t.artStart
	for rIdx, r := range p.rows {
		rowVals := make([]float64, t.cols+1)
		sign := 1.0
		op := r.op
		if r.rhs < 0 {
			sign = -1
			if op == LE {
				op = GE
			} else if op == GE {
				op = LE
			}
		}
		for j, v := range r.coef {
			rowVals[j] = sign * v
		}
		rowVals[t.cols] = sign * r.rhs
		switch op {
		case LE:
			rowVals[slackCol] = 1
			t.basis[rIdx] = slackCol
			slackCol++
		case GE:
			rowVals[slackCol] = -1
			slackCol++
			rowVals[artCol] = 1
			t.basis[rIdx] = artCol
			artCol++
		case EQ:
			rowVals[artCol] = 1
			t.basis[rIdx] = artCol
			artCol++
		}
		t.a[rIdx] = rowVals
	}
	t.obj = make([]float64, t.cols+1)
	if t.phase1 {
		// Phase-1 objective: minimize the sum of artificials. Price out the
		// basic artificials so reduced costs start consistent.
		for j := t.artStart; j < t.cols; j++ {
			t.obj[j] = 1
		}
		for rIdx, b := range t.basis {
			if b >= t.artStart {
				for j := 0; j <= t.cols; j++ {
					t.obj[j] -= t.a[rIdx][j]
				}
			}
		}
	}
	return t
}

func (t *tableau) needPhase1() bool { return t.phase1 }

// objectiveValue returns the current objective value (phase-1 infeasibility
// during phase 1).
func (t *tableau) objectiveValue() float64 { return -t.obj[t.cols] }

// leaving-limit kinds for the bounded ratio test.
const (
	limitNone     = iota
	limitLower    // a basic variable reaches its lower bound 0: regular pivot
	limitUpper    // a basic variable reaches its upper bound: flip then pivot
	limitEntering // the entering variable reaches its own upper bound: flip only
)

// runSimplex pivots until optimality, unboundedness, or the iteration cap.
func (t *tableau) runSimplex() error {
	t.unbounded = false
	stall := 0
	lastObj := t.objectiveValue()
	for iter := 0; iter < maxIters; iter++ {
		bland := stall >= blandTrigger
		e := t.chooseEntering(bland)
		if e < 0 {
			return nil // optimal
		}
		r, kind := t.chooseLeaving(e)
		switch kind {
		case limitNone:
			t.unbounded = true
			return nil
		case limitEntering:
			t.flip(e)
		case limitLower:
			t.pivot(r, e)
		case limitUpper:
			t.flip(t.basis[r])
			t.pivot(r, e)
		}
		if v := t.objectiveValue(); v < lastObj-tol {
			lastObj = v
			stall = 0
		} else {
			stall++
		}
	}
	return ErrIterationLimit
}

// flip applies the bound substitution x_j = u_j - x_j' to column j: the RHS
// absorbs u_j times the column, the column (including its reduced cost)
// negates, and the flip state toggles. A nonbasic variable at its upper
// bound thereby becomes a substituted variable at zero.
func (t *tableau) flip(j int) {
	u := t.upper[j]
	for r := 0; r < t.m; r++ {
		if t.a[r][j] != 0 {
			t.a[r][t.cols] -= t.a[r][j] * u
			t.a[r][j] = -t.a[r][j]
		}
	}
	if t.obj[j] != 0 {
		t.obj[t.cols] -= t.obj[j] * u
		t.obj[j] = -t.obj[j]
	}
	t.flipped[j] = !t.flipped[j]
}

// chooseEntering picks the entering column: Dantzig's most-negative reduced
// cost normally, or Bland's lowest index under the anti-cycling regime.
// During phase 2 artificial columns are never eligible. Returns -1 at
// optimality.
func (t *tableau) chooseEntering(bland bool) int {
	limit := t.cols
	if !t.phase1 {
		limit = t.artStart
	}
	best, bestVal := -1, -tol
	for j := 0; j < limit; j++ {
		if t.obj[j] < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, t.obj[j]
		}
	}
	return best
}

// chooseLeaving runs the bounded minimum-ratio test on column e: the
// entering variable may be blocked by a basic variable reaching zero, by a
// basic variable reaching its own upper bound, or by its own upper bound.
// Ties break toward the smallest basis variable index (the Bland-compatible
// rule). kind is limitNone when the column is unbounded.
func (t *tableau) chooseLeaving(e int) (row, kind int) {
	bestRow, bestKind := -1, limitNone
	bestRatio := math.Inf(1)
	if u := t.upper[e]; !math.IsInf(u, 1) {
		bestRatio, bestKind = u, limitEntering
	}
	for r := 0; r < t.m; r++ {
		pivot := t.a[r][e]
		var ratio float64
		var kindHere int
		switch {
		case pivot > tol:
			// Basic variable decreases toward 0.
			ratio = t.a[r][t.cols] / pivot
			kindHere = limitLower
		case pivot < -tol:
			// Basic variable increases toward its upper bound.
			ub := t.upper[t.basis[r]]
			if math.IsInf(ub, 1) {
				continue
			}
			ratio = (ub - t.a[r][t.cols]) / -pivot
			kindHere = limitUpper
		default:
			continue
		}
		better := ratio < bestRatio-tol
		tied := !better && ratio < bestRatio+tol
		if better || (tied && (bestRow < 0 || t.basis[r] < t.basis[bestRow])) {
			bestRow, bestRatio, bestKind = r, ratio, kindHere
		}
	}
	return bestRow, bestKind
}

// pivot makes column e basic in row r.
func (t *tableau) pivot(r, e int) {
	pr := t.a[r]
	inv := 1 / pr[e]
	for j := range pr {
		pr[j] *= inv
	}
	pr[e] = 1 // kill roundoff on the pivot element
	for rr := 0; rr < t.m; rr++ {
		if rr == r {
			continue
		}
		factor := t.a[rr][e]
		if factor == 0 {
			continue
		}
		arr := t.a[rr]
		for j := range arr {
			arr[j] -= factor * pr[j]
		}
		arr[e] = 0
	}
	if factor := t.obj[e]; factor != 0 {
		for j := range t.obj {
			t.obj[j] -= factor * pr[j]
		}
		t.obj[e] = 0
	}
	t.basis[r] = e
}

// dropArtificials removes any artificial variables remaining in the basis at
// the end of phase 1 by pivoting in a non-artificial column, or zeroing the
// (redundant) row when no such column exists.
func (t *tableau) dropArtificials() {
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > tol {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain a pivot.
			for j := range t.a[r] {
				t.a[r][j] = 0
			}
		}
	}
	// Forbid artificials from re-entering by erasing their columns.
	for r := 0; r < t.m; r++ {
		for j := t.artStart; j < t.cols; j++ {
			t.a[r][j] = 0
		}
	}
	t.phase1 = false
}

// installPhase2Objective replaces the objective row with the real cost
// vector, rewritten in terms of any bound-flipped variables and priced out
// against the current basis.
func (t *tableau) installPhase2Objective(c []float64) {
	t.phase1 = false
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j, cj := range c {
		if t.flipped[j] {
			// x_j = u_j - x_j': cost contributes a constant c_j*u_j and a
			// coefficient -c_j on the substituted variable.
			t.obj[j] = -cj
			t.obj[t.cols] -= cj * t.upper[j]
		} else {
			t.obj[j] = cj
		}
	}
	for r, b := range t.basis {
		factor := t.obj[b]
		if factor == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.obj[j] -= factor * t.a[r][j]
		}
		t.obj[b] = 0
	}
}

// extract reads the structural variable values out of the tableau, undoing
// bound flips.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for r, b := range t.basis {
		if b < n {
			v := t.a[r][t.cols]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	for j := 0; j < n; j++ {
		if t.flipped[j] {
			x[j] = t.upper[j] - x[j]
		}
	}
	return x
}
