package core

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/fairness"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

func TestSlotObjectiveMatchesExplicitQuadratic(t *testing.T) {
	// The composite objective with the paper's quadratic term must agree
	// exactly (value, gradient, curvature) with an explicitly constructed
	// solve.Quadratic.
	c := refCluster(t)
	rng := rand.New(rand.NewSource(4))
	weights := AccountWeights(c)
	quad, err := fairness.NewQuadratic(weights)
	if err != nil {
		t.Fatal(err)
	}

	hVars := c.N() * c.J()
	totalVars := hVars
	for i := 0; i < c.N(); i++ {
		totalVars += c.K(i)
	}
	linear := make([]float64, totalVars)
	for j := range linear {
		linear[j] = rng.Float64()*4 - 2
	}
	const vbeta, totalRes = 750.0, 180.0

	so := wrapSlotObjective(newSlotObjective(c, linear, vbeta, totalRes, quad))

	// Explicit quadratic: V*beta * sum_m (sum d_j h / R - gamma_m)^2.
	explicit := &solve.Quadratic{Linear: append([]float64(nil), linear...)}
	for m := 0; m < c.M(); m++ {
		var idx []int
		var coef []float64
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				if c.JobTypes[j].Account == m {
					idx = append(idx, i*c.J()+j)
					coef = append(coef, c.JobTypes[j].Demand/totalRes)
				}
			}
		}
		explicit.Squares = append(explicit.Squares, solve.AffineSquare{
			Weight: vbeta, Index: idx, Coef: coef, Offset: -weights[m],
		})
	}

	for trial := 0; trial < 20; trial++ {
		x := make([]float64, totalVars)
		d := make([]float64, totalVars)
		for j := range x {
			x[j] = rng.Float64() * 5
			d[j] = rng.Float64()*2 - 1
		}
		// Both forms include the full square with its offset, so values
		// agree exactly, not merely up to a constant.
		if a, b := so.Value(x), explicit.Value(x); math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
			t.Fatalf("Value %v != explicit %v", a, b)
		}
		g1 := make([]float64, totalVars)
		g2 := make([]float64, totalVars)
		so.Grad(x, g1)
		explicit.Grad(x, g2)
		for j := range g1 {
			if math.Abs(g1[j]-g2[j]) > 1e-9*(1+math.Abs(g2[j])) {
				t.Fatalf("Grad[%d] %v != explicit %v", j, g1[j], g2[j])
			}
		}
		ca := so.(solve.CurvatureAlong).CurvatureAlong(x, d)
		cb := explicit.CurvatureAlong(x, d)
		if math.Abs(ca-cb) > 1e-9*(1+math.Abs(cb)) {
			t.Fatalf("Curvature %v != explicit %v", ca, cb)
		}
	}
}

func TestAlphaFairObjectiveHasNoCurvature(t *testing.T) {
	c := refCluster(t)
	af, err := fairness.NewAlphaFair(2, AccountWeights(c))
	if err != nil {
		t.Fatal(err)
	}
	total := c.N()*c.J() + 3
	so := wrapSlotObjective(newSlotObjective(c, make([]float64, total), 100, 150, af))
	if _, ok := so.(solve.CurvatureAlong); ok {
		t.Error("alpha-fair objective must not claim exact curvature")
	}
}

func TestGreFarWithAlphaFairness(t *testing.T) {
	// The scheduler runs end-to-end with a non-quadratic fairness term and
	// still produces feasible actions; with a strongly fairness-weighted
	// alpha term the starved account (org2) receives a larger share than
	// under beta=0.
	c := refCluster(t)
	af, err := fairness.NewAlphaFair(1, AccountWeights(c))
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c, Config{V: 7.5, Beta: 50, Fairness: af, FW: solve.FWOptions{MaxIters: 300}})
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 40, []float64{0.39, 0.43, 0.55})
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		q := randomLengths(rng, c, 30)
		act, err := g.Decide(trial, st, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := act.Validate(c, st); err != nil {
			t.Fatalf("trial %d: infeasible action: %v", trial, err)
		}
	}
}

func TestGreFarAlphaFairAllocatesToStarvedAccount(t *testing.T) {
	// One job type per account queued at the same site with equal backlog;
	// the log-utility term must spread processing across accounts rather
	// than starve any of them when capacity is tight.
	c := refCluster(t)
	af, err := fairness.NewAlphaFair(1, AccountWeights(c))
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c, Config{V: 1, Beta: 200, Fairness: af, FW: solve.FWOptions{MaxIters: 400}})
	if err != nil {
		t.Fatal(err)
	}
	// Tight capacity at a single site.
	st := stateWith(c, 0, []float64{0.4, 0.4, 0.4})
	st.Avail[0][0] = 20 // 20 work units at dc1 only
	q := queueWithEqualShortBacklogs(c, 30)
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	alloc := act.AccountWork(c)
	for m, w := range alloc {
		if w <= 0 {
			t.Errorf("account %d starved under alpha-fairness: alloc %v", m, alloc)
		}
	}
}

// queueWithEqualShortBacklogs queues n short jobs of each org's short type
// at data center 0.
func queueWithEqualShortBacklogs(c *model.Cluster, n float64) queue.Lengths {
	q := queue.Lengths{
		Central: make([]float64, c.J()),
		Local:   make([][]float64, c.N()),
	}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
	}
	// Short job types of the reference cluster are at indices 0,2,4,6.
	for _, j := range []int{0, 2, 4, 6} {
		q.Local[0][j] = n
	}
	return q
}
