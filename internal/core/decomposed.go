package core

import (
	"context"
	"fmt"
	"math"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/runner"
	"grefar/internal/solve"
	"grefar/internal/telemetry"
)

// This file implements Config.Solver = SolverDecomposed: the slot decision
// split into per-data-center blocks — each site's (h_i., b_i.) variables
// under its own availability and h-cap box — coupled only through the
// per-account allocation sums the fairness penalty charges. The coupling is
// handled by the scaled sharing form of ADMM (internal/solve/admm.go): each
// outer iteration solves every site's box-constrained quadratic subproblem
// independently (concurrently on the internal/runner pool when
// Config.SolverWorkers > 1), averages the per-account contributions serially
// in site order, and updates the shared dual prices. The dual prices live in
// account space, persist across slots (consecutive slot problems differ only
// by backlogs and prices, so last slot's prices are nearly right), and are
// part of the exported SchedulerState.
//
// After the ADMM rounds, the concatenated block iterate — feasible by
// construction, since every block stayed inside its own polytope — seeds one
// warm-started away-step Frank-Wolfe polish on the compact monolithic
// objective. The polish owns the accuracy guarantee: it terminates
// immediately when the ADMM point already meets the monolithic gap tolerance
// and otherwise finishes the job, which is what makes the decomposed solver
// agree with the monolithic ones to CrossCheckSolvers tolerance no matter
// how the ADMM rounds went.
//
// Determinism at any worker count: block subproblems write only their own
// site's buffers, every reduction (contribution averaging, dual update,
// final gather) runs serially in site order after the block barrier, and
// the per-site solves are themselves deterministic — so serial and pooled
// runs produce byte-identical actions.

// decSite is one data center's block: the site-local subproblem
//
//	min  cost.x + sum_m (rho/2) (A_m.x - v_m)^2   over the site's box/capacity polytope
//
// in site-local layout (the site's active h variables first, then its b
// variables), solved by away-step Frank-Wolfe with the site-local greedy
// exchange as oracle.
type decSite struct {
	nh, nb int
	x      []float64 // current block iterate
	cost   []float64 // site-local linear cost (copied from the compact linear)
	hCap   []float64 // site-local h caps
	acct   []int     // account of each local h variable
	dem    []float64 // demand of each local h variable

	// contrib is A_i x_i: the site's per-account allocated work.
	contrib []float64

	// obj is the block quadratic: Linear = cost, one AffineSquare per
	// account present at the site (weights/offsets set per ADMM round).
	obj    solve.Quadratic
	sqAcct []int

	fw solve.FWWorkspace
}

// decomposedScratch is the per-scheduler state of the decomposed solver.
type decomposedScratch struct {
	sites    []decSite
	contribs [][]float64 // contribs[i] aliases sites[i].contrib
	oracles  []solve.LinearOracle
	scr      []siteScratch // per-site greedy scratch (pooled stages)
	shw      solve.SharingWorkspace
	xfull    []float64 // concatenated compact iterate for the polish
	allocBuf []float64 // prox scratch, len M
	gradBuf  []float64
	gen      int // sparse index generation the sites were built for
}

func newDecomposedScratch(c *model.Cluster) *decomposedScratch {
	n, m := c.N(), c.M()
	d := &decomposedScratch{
		sites:    make([]decSite, n),
		contribs: make([][]float64, n),
		oracles:  make([]solve.LinearOracle, n),
		scr:      make([]siteScratch, n),
		allocBuf: make([]float64, m),
		gradBuf:  make([]float64, m),
		gen:      -1,
	}
	for i := range d.scr {
		d.scr[i].segs = make([]segment, 0, c.K(i))
		d.scr[i].jobs = make([]jobDemand, 0, c.J())
	}
	return d
}

// parallelSites runs f for every site, serially when workers <= 1 and on the
// runner pool otherwise, handing each site its own scratch. Callers must
// only write site-owned state (or disjoint ranges of a shared vector).
func (d *decomposedScratch) parallelSites(sp *sparseSlot, workers int, f func(i int, scr *siteScratch) error) error {
	n := sp.c.N()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i, &d.scr[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return runner.Do(context.Background(), workers, n, func(_ context.Context, i int) error {
		return f(i, &d.scr[i])
	})
}

// rebuildSites reconstructs the per-site block structures for the current
// active-pair index. Runs only when the index generation moved; the per-slot
// value refresh is refreshValues.
func (d *decomposedScratch) rebuildSites(sp *sparseSlot) {
	c := sp.c
	m := c.M()
	for i := range d.sites {
		ds := &d.sites[i]
		nh := sp.siteOff[i+1] - sp.siteOff[i]
		nb := c.K(i)
		ds.nh, ds.nb = nh, nb
		ds.x = resizeFloats(ds.x, nh+nb)
		ds.cost = resizeFloats(ds.cost, nh+nb)
		ds.hCap = resizeFloats(ds.hCap, nh)
		ds.acct = resizeInts(ds.acct, nh)
		ds.dem = resizeFloats(ds.dem, nh)
		if len(ds.contrib) != m {
			ds.contrib = make([]float64, m)
		}
		d.contribs[i] = ds.contrib
		for s := 0; s < nh; s++ {
			t := sp.siteOff[i] + s
			ds.acct[s] = sp.account[t]
			ds.dem[s] = sp.demand[t]
		}
		// One affine square per account present at the site, in account
		// order (deterministic; absent accounts contribute a constant and
		// are skipped).
		ds.obj.Squares = ds.obj.Squares[:0]
		ds.sqAcct = ds.sqAcct[:0]
		for acct := 0; acct < m; acct++ {
			var idx []int
			var coef []float64
			for s := 0; s < nh; s++ {
				if ds.acct[s] == acct {
					idx = append(idx, s)
					coef = append(coef, ds.dem[s])
				}
			}
			if len(idx) == 0 {
				continue
			}
			ds.obj.Squares = append(ds.obj.Squares, solve.AffineSquare{Index: idx, Coef: coef})
			ds.sqAcct = append(ds.sqAcct, acct)
		}
		ds.obj.Linear = ds.cost
	}
}

// refreshValues copies the current compact coefficients into the site-local
// cost and cap vectors (the index is unchanged, only values moved).
func (d *decomposedScratch) refreshValues(sp *sparseSlot) {
	for i := range d.sites {
		ds := &d.sites[i]
		copy(ds.cost[:ds.nh], sp.linear[sp.siteOff[i]:sp.siteOff[i+1]])
		copy(ds.cost[ds.nh:], sp.linear[sp.bOffC[i]:sp.bOffC[i]+ds.nb])
		copy(ds.hCap, sp.hCap[sp.siteOff[i]:sp.siteOff[i+1]])
	}
}

// computeContrib fills A_i x_i from the current block iterate.
func (ds *decSite) computeContrib() {
	for m := range ds.contrib {
		ds.contrib[m] = 0
	}
	for s := 0; s < ds.nh; s++ {
		ds.contrib[ds.acct[s]] += ds.dem[s] * ds.x[s]
	}
}

// oracle is the site-local greedy exchange in the block's local layout.
func (ds *decSite) oracle(c *model.Cluster, st *model.State, i int, scr *siteScratch) solve.LinearOracle {
	return func(grad, out []float64) {
		for j := range out {
			out[j] = 0
		}
		segs := scr.segs[:0]
		for k, stype := range c.DataCenters[i].Servers {
			cb := grad[ds.nh+k]
			if cb < 0 {
				cb = 0
			}
			capWork := st.Avail[i][k] * stype.Speed
			if capWork <= 0 {
				continue
			}
			segs = append(segs, segment{
				serverType: k,
				cap:        capWork,
				density:    cb / stype.Speed,
				speed:      stype.Speed,
			})
		}
		sortSegsByDensity(segs)
		jobs := scr.jobs[:0]
		for s := 0; s < ds.nh; s++ {
			if grad[s] >= 0 || ds.hCap[s] <= 0 {
				continue
			}
			d := ds.dem[s]
			jobs = append(jobs, jobDemand{job: s, work: ds.hCap[s] * d, density: -grad[s] / d, demand: d})
		}
		sortJobsByDensity(jobs)
		scr.segs, scr.jobs = segs, jobs
		greedyExchange(segs, jobs, out, ds.nh)
	}
}

// decomposedRho picks the starting ADMM penalty from the curvature scale of
// the quadratic fairness coupling: P is O(1/total^2) per unit squared
// allocation, charged with weight vbeta over n sites. Residual balancing
// (SharingOptions.Adaptive) corrects any misestimate, and the polish owns
// final accuracy regardless.
func decomposedRho(vbeta float64, n int, total float64) float64 {
	if vbeta > 0 && total > 0 {
		if r := 2 * vbeta * float64(n) / (total * total); r > 1e-8 {
			return r
		}
	}
	return 1
}

// decomposedFWOptions tunes the per-block subproblem solves: away steps for
// linear convergence on the small site polytopes, a tolerance well under the
// outer residual thresholds, and a bounded iteration budget (the polish
// cleans up whatever the blocks leave).
var decomposedFWOptions = solve.FWOptions{MaxIters: 120, Tol: 1e-10, AwaySteps: true}

// proxFor builds the sharing prox for the fairness coupling g(a) =
// vbeta*P(a, total): per account, the scalar stationarity condition
//
//	vbeta * dP/da_m(n*z) + rho*(z - t_m) = 0
//
// is solved by bracketed bisection — monotone in z by convexity of P. Cross
// terms of a non-separable P are frozen at the averaged point n*t (exact for
// the paper's separable quadratic penalty; for anything else the polish
// restores full accuracy).
func (d *decomposedScratch) proxFor(term FairnessTerm, vbeta, total float64, n int) solve.SharingProx {
	nf := float64(n)
	return func(t []float64, rho float64, z []float64) {
		if vbeta == 0 || total <= 0 {
			copy(z, t)
			return
		}
		for m := range t {
			d.allocBuf[m] = nf * t[m]
		}
		for m := range t {
			z[m] = d.proxScalar(term, vbeta, total, nf, m, t[m], rho)
			d.allocBuf[m] = nf * t[m] // restore for the next coordinate
		}
	}
}

func (d *decomposedScratch) proxScalar(term FairnessTerm, vbeta, total, nf float64, m int, t, rho float64) float64 {
	psi := func(z float64) float64 {
		d.allocBuf[m] = nf * z
		term.PenaltyGrad(d.allocBuf, total, d.gradBuf)
		gm := d.gradBuf[m]
		if math.IsNaN(gm) || math.IsInf(gm, 0) {
			// Outside the penalty's domain (e.g. alpha-fair at non-positive
			// allocation): the penalty pushes toward larger allocations.
			return math.Inf(-1)
		}
		return vbeta*gm + rho*(z-t)
	}
	p0 := psi(t)
	if p0 == 0 {
		return t
	}
	lo, hi := t, t
	step := 1 + math.Abs(t)
	if p0 > 0 {
		lo = t - step
		for it := 0; psi(lo) > 0 && it < 60; it++ {
			step *= 2
			lo = t - step
		}
	} else {
		hi = t + step
		for it := 0; psi(hi) < 0 && it < 60; it++ {
			step *= 2
			hi = t + step
		}
	}
	for it := 0; it < 80; it++ {
		mid := 0.5 * (lo + hi)
		if psi(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// solveDecomposedQuadratic is the beta > 0 decomposed slot solve; see the
// file comment for the architecture.
func (g *GreFar) solveDecomposedQuadratic(st *model.State, act *model.Action, stats *telemetry.SolveStats) error {
	c, ws := g.cluster, g.ws
	sp, d := ws.sparse, ws.dec
	n, m := c.N(), c.M()
	vbeta := g.cfg.V * g.cfg.Beta
	total := st.TotalResource(c)
	sp.ensureObjective(g.cfg, total)

	if d.gen != sp.gen {
		// The index moved: rebuild the block structures. The duals live in
		// account space and survive — only the variable mapping changed.
		d.rebuildSites(sp)
		d.gen = sp.gen
	}
	d.shw.Resize(n, m)
	d.refreshValues(sp)

	// Block iterates are derived state: every Decide re-seeds them from the
	// repaired dense warm iterate (or zero), so restoring SchedulerState
	// alone reproduces the decision stream exactly.
	warm := ""
	warmLoaded := false
	if g.cfg.WarmStart {
		outcome := warmFallback
		if ws.warmValid {
			outcome = sp.repairWarm(st, ws.warm)
		}
		switch outcome {
		case warmHit:
			warm = telemetry.WarmHit
			g.warmHits++
		case warmRepaired:
			warm = telemetry.WarmRepaired
			g.warmRepairs++
		default:
			warm = telemetry.WarmFallback
			g.warmFallbacks++
		}
		warmLoaded = outcome != warmFallback
	}
	for i := 0; i < n; i++ {
		ds := &d.sites[i]
		if warmLoaded {
			for s := 0; s < ds.nh; s++ {
				ds.x[s] = ws.warm[sp.denseIdx[sp.siteOff[i]+s]]
			}
			for k := 0; k < ds.nb; k++ {
				ds.x[ds.nh+k] = ws.warm[sp.l.bOff[i]+k]
			}
		} else {
			for s := range ds.x {
				ds.x[s] = 0
			}
		}
		ds.computeContrib()
		d.oracles[i] = ds.oracle(c, st, i, &d.scr[i])
	}

	blockSolve := func(i int, v []float64, rho float64, _ []float64) error {
		ds := &d.sites[i]
		half := rho / 2
		for qi := range ds.obj.Squares {
			sq := &ds.obj.Squares[qi]
			sq.Weight = half
			sq.Offset = -v[ds.sqAcct[qi]]
		}
		res, err := solve.FrankWolfeWS(&ds.fw, &ds.obj, d.oracles[i], ds.x, decomposedFWOptions)
		if err != nil {
			return fmt.Errorf("data center %d block: %w", i, err)
		}
		copy(ds.x, res.X)
		ds.computeContrib()
		return nil
	}
	par := func(nTasks int, f func(i int) error) error {
		workers := g.cfg.SolverWorkers
		if workers <= 1 {
			for i := 0; i < nTasks; i++ {
				if err := f(i); err != nil {
					return err
				}
			}
			return nil
		}
		return runner.Do(context.Background(), workers, nTasks, func(_ context.Context, i int) error {
			return f(i)
		})
	}
	shOpts := solve.SharingOptions{
		Rho:      decomposedRho(vbeta, n, total),
		Adaptive: true,
	}
	prox := d.proxFor(g.cfg.Fairness, vbeta, total, n)
	shRes, err := solve.SharingADMM(n, m, &d.shw, blockSolve, prox, d.contribs, par, shOpts)
	if err != nil {
		return err
	}

	// Polish: away-step Frank-Wolfe on the compact monolithic objective,
	// seeded with the concatenated (feasible) block iterate.
	d.xfull = resizeFloats(d.xfull, sp.total)
	for i := 0; i < n; i++ {
		ds := &d.sites[i]
		copy(d.xfull[sp.siteOff[i]:sp.siteOff[i+1]], ds.x[:ds.nh])
		copy(d.xfull[sp.bOffC[i]:sp.bOffC[i]+ds.nb], ds.x[ds.nh:])
	}
	opts := g.cfg.FW
	if opts.MaxIters <= 0 {
		opts.MaxIters = 150
	}
	opts.AwaySteps = true
	res, err := solve.FrankWolfeWS(&ws.fw, sp.wrapped, sp.oracle(st), d.xfull, opts)
	if err != nil {
		return fmt.Errorf("frank-wolfe polish: %w", err)
	}
	// Keep the final compact iterate in the scratch (res.X aliases the shared
	// FW workspace): SolveSlotDecomposed reads it back out after Decide-level
	// helpers have run.
	copy(d.xfull, res.X)
	if g.cfg.WarmStart {
		sp.scatterWarm(res.X, ws.warm)
		ws.warmValid = true
	}
	if stats != nil {
		*stats = telemetry.SolveStats{
			Solver:     telemetry.SolverDecomposed,
			Iterations: res.Iters,
			Outer:      shRes.Iters,
			Converged:  res.Converged,
			Residual:   res.Gap,
		}
		g.attachWarmStats(stats, warm)
		g.attachSolverOptions(stats, opts)
	}
	sp.clampProcess(res.X, act)
	return nil
}

// SolveSlotDecomposed runs the decomposed slot solver standalone on one
// slot's inputs and returns the (h, b) solution in dense slotLayout order —
// the differential harness's entry point for cross-checking the decomposed
// path against the monolithic solvers. The cluster must satisfy the
// decomposed solver's requirements (no auxiliary resources, linear or absent
// tariff); cfg.Solver and cfg.Observer are overridden.
func SolveSlotDecomposed(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) ([]float64, error) {
	cfg.Solver = SolverDecomposed
	cfg.Observer = nil
	// Standalone solves are certificates, not slot decisions: default the
	// polish to the same budget the differential harness gives its reference
	// solvers, so the comparison measures correctness rather than truncation.
	if cfg.FW.MaxIters == 0 {
		cfg.FW.MaxIters = 4000
	}
	if cfg.FW.Tol == 0 {
		cfg.FW.Tol = 1e-10
	}
	g, err := New(c, cfg)
	if err != nil {
		return nil, err
	}
	sp := g.ws.sparse
	sp.refresh(g.cfg, st, q, nil)
	act := model.NewAction(c)
	x := make([]float64, sp.l.total)
	if g.linearSlot() {
		if err := g.solveSparseLinear(st, act, nil); err != nil {
			return nil, err
		}
		sp.scatterWarm(sp.vertex, x)
		return x, nil
	}
	if err := g.solveDecomposedQuadratic(st, act, nil); err != nil {
		return nil, err
	}
	sp.scatterWarm(g.ws.dec.xfull, x)
	return x, nil
}
