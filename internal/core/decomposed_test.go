package core

import (
	"math"
	"testing"

	"grefar/internal/model"
	"grefar/internal/solve"
)

// TestDecomposedLinearBitIdentical pins the beta = 0 decomposed path against
// the monolithic greedy: the linear slot decomposes trivially per site, so
// the decisions must be byte-identical, serial and pooled alike.
func TestDecomposedLinearBitIdentical(t *testing.T) {
	c := refCluster(t)
	states, lengths := stateTestWorld(t, c, 20)
	dense, err := New(c, Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		dec, err := New(c, Config{V: 7.5, Solver: SolverDecomposed, SolverWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for s := range states {
			da, err := dense.Decide(s, states[s], lengths[s])
			if err != nil {
				t.Fatal(err)
			}
			xa, err := dec.Decide(s, states[s], lengths[s])
			if err != nil {
				t.Fatal(err)
			}
			decisionsEqual(t, s, "decomposed-linear", da, xa)
		}
		dense, err = New(c, Config{V: 7.5}) // reset for the next worker count
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecomposedQuadraticAgreesWithDense requires the decomposed solver's
// slot decisions to match the monolithic Frank-Wolfe solution in objective
// value to solver tolerance, slot after slot.
func TestDecomposedQuadraticAgreesWithDense(t *testing.T) {
	c := refCluster(t)
	states, lengths := stateTestWorld(t, c, 12)
	cfg := Config{V: 7.5, Beta: 100, FW: solve.FWOptions{MaxIters: 2000, Tol: 1e-9, AwaySteps: true}}

	dense, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgDec := cfg
	cfgDec.Solver = SolverDecomposed
	dec, err := New(c, cfgDec)
	if err != nil {
		t.Fatal(err)
	}
	for s := range states {
		da, err := dense.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		xa, err := dec.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		vd := processingObjective(c, cfg, states[s], lengths[s], da.Process)
		vx := processingObjective(c, cfg, states[s], lengths[s], xa.Process)
		scale := math.Max(1, math.Max(math.Abs(vd), math.Abs(vx)))
		if rel := math.Abs(vd-vx) / scale; rel > 1e-6 {
			t.Errorf("slot %d: dense objective %v vs decomposed %v (rel %.3g)", s, vd, vx, rel)
		}
	}
}

// TestDecomposedDeterministicAcrossWorkers pins the pooled-reduction
// determinism claim: the decomposed solver's decision stream is byte-identical
// at every worker count, because block solves write disjoint state and all
// reductions run serially in site order.
func TestDecomposedDeterministicAcrossWorkers(t *testing.T) {
	c := refCluster(t)
	states, lengths := stateTestWorld(t, c, 15)
	run := func(workers int) []*model.Action {
		cfg := Config{V: 7.5, Beta: 100, WarmStart: true, Solver: SolverDecomposed, SolverWorkers: workers}
		g, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var acts []*model.Action
		for s := range states {
			a, err := g.Decide(s, states[s], lengths[s])
			if err != nil {
				t.Fatal(err)
			}
			acts = append(acts, a)
		}
		return acts
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for s := range want {
			decisionsEqual(t, s, "workers", want[s], got[s])
		}
	}
}

// TestDecomposedStateRoundTrip exports a decomposed scheduler's state
// mid-stream — warm iterate plus ADMM dual prices — restores it into a fresh
// instance, and requires the continuation to be byte-identical to the
// uninterrupted run.
func TestDecomposedStateRoundTrip(t *testing.T) {
	c := refCluster(t)
	const slots, split = 20, 10
	states, lengths := stateTestWorld(t, c, slots)
	cfg := Config{V: 7.5, Beta: 100, WarmStart: true, Solver: SolverDecomposed}

	full, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []*model.Action
	for s := 0; s < slots; s++ {
		a, err := full.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, a)
	}

	first, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < split; s++ {
		if _, err := first.Decide(s, states[s], lengths[s]); err != nil {
			t.Fatal(err)
		}
	}
	exported := first.ExportState()
	if exported.DecomposedU == nil || exported.DecomposedZ == nil {
		t.Fatal("decomposed scheduler exported no dual state")
	}

	second, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreState(exported); err != nil {
		t.Fatal(err)
	}
	for s := split; s < slots; s++ {
		a, err := second.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		decisionsEqual(t, s, "restored", want[s], a)
	}
}

// TestDecomposedConfigValidation pins the gate: sparse solver kinds reject
// auxiliary resources and non-linear tariffs, and bad knobs are ErrBadConfig.
func TestDecomposedConfigValidation(t *testing.T) {
	c := refCluster(t)
	if _, err := New(c, Config{V: 1, Solver: SolverKind(99)}); err == nil {
		t.Error("unknown solver kind accepted")
	}
	if _, err := New(c, Config{V: 1, SolverWorkers: -2}); err == nil {
		t.Error("negative worker count accepted")
	}
	aux := auxCluster()
	if _, err := New(aux, Config{V: 1, Solver: SolverSparse}); err == nil {
		t.Error("sparse solver accepted a cluster with auxiliary resources")
	}
	if _, err := New(aux, Config{V: 1, Solver: SolverDecomposed}); err == nil {
		t.Error("decomposed solver accepted a cluster with auxiliary resources")
	}
	// Monolithic kinds still take auxiliary clusters.
	if _, err := New(aux, Config{V: 1, Solver: SolverMonolithic}); err != nil {
		t.Errorf("monolithic solver rejected auxiliary cluster: %v", err)
	}
	for kind, want := range map[SolverKind]string{
		SolverAuto: "auto", SolverMonolithic: "monolithic",
		SolverSparse: "sparse", SolverDecomposed: "decomposed",
	} {
		if got := kind.String(); got != want {
			t.Errorf("SolverKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

// TestDecomposedRho pins the penalty heuristic's edges.
func TestDecomposedRho(t *testing.T) {
	if r := decomposedRho(0, 10, 100); r != 1 {
		t.Errorf("vbeta=0: rho %v, want 1", r)
	}
	if r := decomposedRho(750, 3, 150); r != 2*750*3/(150.0*150.0) {
		t.Errorf("rho %v, want curvature scale", r)
	}
	if r := decomposedRho(1e-30, 2, 1e10); r != 1 {
		t.Errorf("tiny curvature: rho %v, want fallback 1", r)
	}
}
