package core

import (
	"fmt"
	"math"
)

// SchedulerState is the resumable cross-slot state of a GreFar scheduler —
// everything a scheduler remembers between Decide calls beyond its static
// configuration. Exporting it before shutdown and restoring it into a
// freshly constructed scheduler (same cluster, same Config) makes the new
// instance's decision stream byte-identical to the uninterrupted one, warm
// starts included. All fields are exported so the state serializes with
// encoding/gob.
//
// The state is intentionally small: the per-slot solver workspace
// (decideScratch) is derived and rebuilt by New; only the cross-slot memory
// listed here is durable.
type SchedulerState struct {
	// Warm is the previous slot's (h, b) iterate in slotLayout order, the
	// seed of the next warm-started solve. Nil for schedulers whose
	// configuration never reaches the convex path (beta = 0 with a linear
	// tariff).
	Warm []float64
	// WarmValid reports whether Warm holds a real iterate (false before the
	// first convex solve).
	WarmValid bool
	// WarmHits, WarmRepairs, and WarmFallbacks are the cumulative warm-start
	// outcome counters surfaced in telemetry SolveStats.
	WarmHits, WarmRepairs, WarmFallbacks int
	// OptsReported latches whether the effective solver options were already
	// attached to a telemetry event, so a restored scheduler does not attach
	// them a second time mid-stream.
	OptsReported bool
	// DecomposedU and DecomposedZ are the decomposed solver's carried ADMM
	// dual state (one entry per account): the scaled coupling dual and the
	// averaged coupling iterate. Nil for other solver kinds. The block
	// iterates themselves are re-derived from Warm every slot, so these two
	// vectors are the only extra memory a decomposed scheduler carries.
	DecomposedU, DecomposedZ []float64
}

// ExportState captures the scheduler's resumable cross-slot state. The
// returned state owns its memory; the scheduler may keep deciding afterwards
// without invalidating it.
func (g *GreFar) ExportState() *SchedulerState {
	st := &SchedulerState{
		WarmValid:     g.ws.warmValid,
		WarmHits:      g.warmHits,
		WarmRepairs:   g.warmRepairs,
		WarmFallbacks: g.warmFallbacks,
		OptsReported:  g.optsReported,
	}
	if g.ws.warm != nil {
		st.Warm = append([]float64(nil), g.ws.warm...)
	}
	if g.ws.dec != nil && g.ws.dec.shw.U != nil {
		st.DecomposedU = append([]float64(nil), g.ws.dec.shw.U...)
		st.DecomposedZ = append([]float64(nil), g.ws.dec.shw.Z...)
	}
	return st
}

// RestoreState replaces the scheduler's cross-slot state with a previously
// exported one. The scheduler must have been constructed for the same
// cluster shape (the warm iterate's length is checked against the solver
// layout) and should carry the same configuration, or the restored warm
// iterate seeds a different optimization than the one it came from. A nil
// state is a no-op.
func (g *GreFar) RestoreState(st *SchedulerState) error {
	if st == nil {
		return nil
	}
	if st.Warm != nil {
		if g.ws.warm == nil {
			return fmt.Errorf("%w: state carries a warm iterate but this configuration has no convex path", ErrBadConfig)
		}
		if len(st.Warm) != len(g.ws.warm) {
			return fmt.Errorf("%w: warm iterate has %d variables, solver layout has %d",
				ErrBadConfig, len(st.Warm), len(g.ws.warm))
		}
		for i, v := range st.Warm {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: warm iterate variable %d is not finite", ErrBadConfig, i)
			}
		}
		copy(g.ws.warm, st.Warm)
	}
	if st.WarmValid && st.Warm == nil {
		return fmt.Errorf("%w: state marks a warm iterate valid but carries none", ErrBadConfig)
	}
	if st.DecomposedU != nil || st.DecomposedZ != nil {
		if g.ws.dec == nil {
			return fmt.Errorf("%w: state carries decomposed dual state but this configuration does not use the decomposed solver", ErrBadConfig)
		}
		m := g.cluster.M()
		if len(st.DecomposedU) != m || len(st.DecomposedZ) != m {
			return fmt.Errorf("%w: decomposed dual state has %d/%d entries, cluster has %d accounts",
				ErrBadConfig, len(st.DecomposedU), len(st.DecomposedZ), m)
		}
		for i := 0; i < m; i++ {
			if u, z := st.DecomposedU[i], st.DecomposedZ[i]; math.IsNaN(u) || math.IsInf(u, 0) || math.IsNaN(z) || math.IsInf(z, 0) {
				return fmt.Errorf("%w: decomposed dual state entry %d is not finite", ErrBadConfig, i)
			}
		}
		g.ws.dec.shw.Resize(g.cluster.N(), m)
		copy(g.ws.dec.shw.U, st.DecomposedU)
		copy(g.ws.dec.shw.Z, st.DecomposedZ)
	}
	g.ws.warmValid = st.WarmValid
	g.warmHits = st.WarmHits
	g.warmRepairs = st.WarmRepairs
	g.warmFallbacks = st.WarmFallbacks
	g.optsReported = st.OptsReported
	return nil
}
