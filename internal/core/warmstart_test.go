package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
	"grefar/internal/telemetry"
)

// warmTestSlotFeasible verifies a flat (h, b) vector against the scheduling
// polytope with the model's feasibility tolerance; the warm-start tests use
// it on repaired iterates before handing them to the solver.
func warmTestSlotFeasible(t *testing.T, c *model.Cluster, st *model.State, hCap [][]float64, l slotLayout, x []float64) {
	t.Helper()
	const tol = 1e-9
	for i := 0; i < c.N(); i++ {
		var work, capWork float64
		for j := 0; j < c.J(); j++ {
			h := x[l.hIndex(i, j)]
			if h < -tol || h > hCap[i][j]+tol {
				t.Fatalf("site %d job %d: h=%v outside [0, %v]", i, j, h, hCap[i][j])
			}
			work += c.JobTypes[j].Demand * h
		}
		for k, stype := range c.DataCenters[i].Servers {
			b := x[l.bOff[i]+k]
			if b < -tol || b > st.Avail[i][k]+tol {
				t.Fatalf("site %d server %d: b=%v outside [0, %v]", i, k, b, st.Avail[i][k])
			}
			capWork += stype.Speed * b
		}
		if work > capWork*(1+1e-9)+tol {
			t.Fatalf("site %d: work %v exceeds capacity %v", i, work, capWork)
		}
		for r := 0; r < c.Aux(); r++ {
			var usage float64
			for j := 0; j < c.J(); j++ {
				if r < len(c.JobTypes[j].AuxDemand) {
					usage += c.JobTypes[j].AuxDemand[r] * x[l.hIndex(i, j)]
				}
			}
			if capR := c.DataCenters[i].AuxCapacity[r]; usage > capR*(1+1e-9)+tol {
				t.Fatalf("site %d aux %d: usage %v exceeds capacity %v", i, r, usage, capR)
			}
		}
	}
}

// TestRepairWarmStartOutcomes unit-tests the repair state machine: a
// feasible iterate passes untouched, box and capacity violations are
// repaired into feasibility, a capacity collapse or non-finite entry forces
// the fallback.
func TestRepairWarmStartOutcomes(t *testing.T) {
	c := refCluster(t)
	l := newSlotLayout(c)
	st := stateWith(c, 10, []float64{0.4, 0.5, 0.6})
	q := randomLengths(rand.New(rand.NewSource(7)), c, 30)
	_, _, hCap := SlotCoefficients(c, Config{V: 7.5, Beta: 100}, st, q)

	feasible := make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(i); k++ {
			feasible[l.bOff[i]+k] = st.Avail[i][k] / 2
		}
	}
	x := append([]float64(nil), feasible...)
	if got := repairWarmStart(c, st, hCap, l, x); got != warmHit {
		t.Errorf("feasible iterate: outcome %v, want warmHit", got)
	}
	for j := range x {
		if x[j] != feasible[j] {
			t.Fatalf("warmHit mutated the iterate at %d: %v -> %v", j, feasible[j], x[j])
		}
	}

	// Box violations: h above its cap, b above availability, negatives.
	x = append([]float64(nil), feasible...)
	x[l.hIndex(0, 0)] = hCap[0][0] + 50
	x[l.bOff[1]] = st.Avail[1][0] + 3
	x[l.hIndex(2, 1)] = -4
	if got := repairWarmStart(c, st, hCap, l, x); got != warmRepaired {
		t.Errorf("box violations: outcome %v, want warmRepaired", got)
	}
	warmTestSlotFeasible(t, c, st, hCap, l, x)

	// Capacity violation within the collapse threshold: all servers busy at
	// the previous slot, availability halves, h stays high.
	x = make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		cap := 0.0
		for k, stype := range c.DataCenters[i].Servers {
			x[l.bOff[i]+k] = st.Avail[i][k]
			cap += stype.Speed * st.Avail[i][k]
		}
		// Spread work filling ~150% of current capacity over the job types
		// (bounded by the per-pair caps so only the coupling row binds).
		for j := 0; j < c.J(); j++ {
			h := 1.5 * cap / (c.JobTypes[j].Demand * float64(c.J()))
			if h > hCap[i][j] {
				h = hCap[i][j]
			}
			x[l.hIndex(i, j)] = h
		}
	}
	switch got := repairWarmStart(c, st, hCap, l, x); got {
	case warmRepaired, warmHit:
		warmTestSlotFeasible(t, c, st, hCap, l, x)
	default:
		t.Errorf("capacity overflow: outcome %v, want warmRepaired or warmHit", got)
	}

	// Availability collapse: the iterate uses 10x the remaining capacity.
	collapsed := st.Clone()
	for i := range collapsed.Avail {
		for k := range collapsed.Avail[i] {
			collapsed.Avail[i][k] = 0.01
		}
	}
	x = make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			x[l.hIndex(i, j)] = hCap[i][j]
		}
		for k := 0; k < c.K(i); k++ {
			x[l.bOff[i]+k] = st.Avail[i][k]
		}
	}
	hasWork := false
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			if x[l.hIndex(i, j)] > 0 {
				hasWork = true
			}
		}
	}
	if !hasWork {
		t.Fatal("test setup: no work in the iterate")
	}
	if got := repairWarmStart(c, collapsed, hCap, l, x); got != warmFallback {
		t.Errorf("availability collapse: outcome %v, want warmFallback", got)
	}

	// Non-finite entries always fall back.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x = append([]float64(nil), feasible...)
		x[l.hIndex(1, 1)] = bad
		if got := repairWarmStart(c, st, hCap, l, x); got != warmFallback {
			t.Errorf("entry %v: outcome %v, want warmFallback", bad, got)
		}
	}
}

// collectSolves records the SolveStats of every Decide-origin event.
func collectSolves(dst *[]telemetry.SolveStats) telemetry.SlotObserver {
	return telemetry.ObserverFunc(func(ev telemetry.SlotEvent) {
		if ev.Solve != nil {
			*dst = append(*dst, *ev.Solve)
		}
	})
}

// TestWarmStartShrunkAvailability drives a warm-started scheduler through an
// availability drop sharp enough that the saved iterate violates the new
// caps: the repaired start must still produce a valid action whose objective
// matches a cold-started scheduler's to within the cross-check tolerance.
func TestWarmStartShrunkAvailability(t *testing.T) {
	c := refCluster(t)
	// Tight tolerance + away steps in both schedulers: parity then measures
	// the warm start, not residual solver error.
	cfg := Config{V: 7.5, Beta: 100, WarmStart: true}
	cfg.FW.AwaySteps = true
	cfg.FW.Tol = 1e-9
	var stats []telemetry.SolveStats
	cfg.Observer = collectSolves(&stats)
	warm, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.WarmStart = false
	coldCfg.Observer = nil
	cold, err := New(c, coldCfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	gamma := AccountWeights(c)
	prices := []float64{0.45, 0.55, 0.65}
	// Slot 0: plentiful servers, heavy backlog -> the iterate saturates.
	// Slot 1: availability drops to 30% -> box and capacity repairs fire.
	avails := []float64{60, 18}
	for slot, avail := range avails {
		st := stateWith(c, avail, prices)
		q := randomLengths(rng, c, 80)
		wAct, err := warm.Decide(slot, st, q)
		if err != nil {
			t.Fatalf("slot %d warm: %v", slot, err)
		}
		if err := wAct.Validate(c, st); err != nil {
			t.Fatalf("slot %d: warm action invalid: %v", slot, err)
		}
		cAct, err := cold.Decide(slot, st, q)
		if err != nil {
			t.Fatalf("slot %d cold: %v", slot, err)
		}
		wObj := DriftPlusPenalty(c, cfg, st, q, wAct, gamma)
		cObj := DriftPlusPenalty(c, cfg, st, q, cAct, gamma)
		rel := math.Abs(wObj-cObj) / math.Max(1, math.Max(math.Abs(wObj), math.Abs(cObj)))
		if rel > 1e-6 {
			t.Errorf("slot %d: warm objective %v vs cold %v (rel %.3g)", slot, wObj, cObj, rel)
		}
	}
	if len(stats) != 2 {
		t.Fatalf("got %d solve stats, want 2", len(stats))
	}
	if stats[0].Warm != telemetry.WarmFallback {
		t.Errorf("slot 0 warm outcome %q, want %q (no previous iterate)", stats[0].Warm, telemetry.WarmFallback)
	}
	if stats[1].Warm != telemetry.WarmRepaired {
		t.Errorf("slot 1 warm outcome %q, want %q (availability shrank)", stats[1].Warm, telemetry.WarmRepaired)
	}
}

// TestWarmVsColdParity runs a longer randomized slot sequence with warm
// start and away steps on, asserting per-slot objective parity with the
// cold vanilla scheduler and that the telemetry counters account for every
// slot.
func TestWarmVsColdParity(t *testing.T) {
	const slots = 30
	c := refCluster(t)
	// Same solver in both schedulers (away steps, tight tolerance) so the
	// only difference is the starting point: any objective drift then
	// isolates a warm-start bug rather than a convergence-rate artifact.
	cfg := Config{V: 7.5, Beta: 100, WarmStart: true}
	cfg.FW.AwaySteps = true
	cfg.FW.Tol = 1e-9
	var stats []telemetry.SolveStats
	cfg.Observer = collectSolves(&stats)
	warm, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.WarmStart = false
	coldCfg.Observer = nil
	cold, err := New(c, coldCfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2012))
	gamma := AccountWeights(c)
	for slot := 0; slot < slots; slot++ {
		avail := 10 + 50*rng.Float64()
		st := stateWith(c, avail, []float64{0.3 + rng.Float64(), 0.3 + rng.Float64(), 0.3 + rng.Float64()})
		q := randomLengths(rng, c, 60)
		wAct, err := warm.Decide(slot, st, q)
		if err != nil {
			t.Fatalf("slot %d warm: %v", slot, err)
		}
		if err := wAct.Validate(c, st); err != nil {
			t.Fatalf("slot %d: warm action invalid: %v", slot, err)
		}
		cAct, err := cold.Decide(slot, st, q)
		if err != nil {
			t.Fatalf("slot %d cold: %v", slot, err)
		}
		wObj := DriftPlusPenalty(c, cfg, st, q, wAct, gamma)
		cObj := DriftPlusPenalty(c, cfg, st, q, cAct, gamma)
		rel := math.Abs(wObj-cObj) / math.Max(1, math.Max(math.Abs(wObj), math.Abs(cObj)))
		if rel > 1e-6 {
			t.Errorf("slot %d: warm objective %v vs cold %v (rel %.3g)", slot, wObj, cObj, rel)
		}
	}

	if len(stats) != slots {
		t.Fatalf("got %d solve stats, want %d", len(stats), slots)
	}
	last := stats[slots-1]
	if got := last.WarmHits + last.WarmRepairs + last.WarmFallbacks; got != slots {
		t.Errorf("counters sum to %d, want %d (hits=%d repairs=%d fallbacks=%d)",
			got, slots, last.WarmHits, last.WarmRepairs, last.WarmFallbacks)
	}
	if last.WarmFallbacks == slots {
		t.Error("warm start never engaged: every slot fell back")
	}
	for s, st := range stats {
		want := telemetry.WarmFallback
		if s > 0 {
			want = "" // any outcome, but must be set
		}
		if s == 0 && st.Warm != want {
			t.Errorf("slot 0 outcome %q, want %q", st.Warm, want)
		}
		if st.Warm == "" {
			t.Errorf("slot %d: warm outcome missing", s)
		}
		if st.Variant != "away-step" {
			t.Errorf("slot %d: variant %q, want away-step", s, st.Variant)
		}
	}
}

// TestSolverOptionsReportedOnce pins the once-per-scheduler options
// surfacing: a scheduler with non-default solver knobs attaches the
// effective options to its first event only; a default-configured scheduler
// never attaches them (golden traces depend on this).
func TestSolverOptionsReportedOnce(t *testing.T) {
	c := refCluster(t)
	st := stateWith(c, 40, []float64{0.4, 0.5, 0.6})
	rng := rand.New(rand.NewSource(3))

	var tuned []telemetry.SolveStats
	cfg := Config{V: 7.5, Beta: 100, WarmStart: true}
	cfg.FW.AwaySteps = true
	cfg.Observer = collectSolves(&tuned)
	g, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		if _, err := g.Decide(slot, st, randomLengths(rng, c, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if len(tuned) != 3 {
		t.Fatalf("got %d events, want 3", len(tuned))
	}
	if tuned[0].Options == nil {
		t.Fatal("first event missing effective options")
	}
	if !tuned[0].Options.AwaySteps || !tuned[0].Options.WarmStart {
		t.Errorf("options %+v do not reflect the configuration", *tuned[0].Options)
	}
	if tuned[0].Options.MaxIters != 150 {
		t.Errorf("effective MaxIters %d, want the default 150", tuned[0].Options.MaxIters)
	}
	if tuned[1].Options != nil || tuned[2].Options != nil {
		t.Error("options attached to more than the first event")
	}

	var plain []telemetry.SolveStats
	g2, err := New(c, Config{V: 7.5, Beta: 100, Observer: collectSolves(&plain)})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		if _, err := g2.Decide(slot, st, randomLengths(rng, c, 40)); err != nil {
			t.Fatal(err)
		}
	}
	for s, ev := range plain {
		if ev.Options != nil {
			t.Errorf("default scheduler event %d carries options", s)
		}
		if ev.Warm != "" || ev.Variant != "" {
			t.Errorf("default scheduler event %d carries warm/variant fields: %+v", s, ev)
		}
	}
}

// TestNewRejectsBadFWOptions pins the ErrBadConfig validation of the solver
// knobs at construction.
func TestNewRejectsBadFWOptions(t *testing.T) {
	c := refCluster(t)
	bad := []Config{
		{V: 1, FW: solve.FWOptions{MaxIters: -1}},
		{V: 1, FW: solve.FWOptions{Tol: -1e-9}},
		{V: 1, FW: solve.FWOptions{Tol: math.NaN()}},
	}
	for n, cfg := range bad {
		_, err := New(c, cfg)
		if err == nil {
			t.Errorf("case %d: bad FW options accepted", n)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error %v does not wrap ErrBadConfig", n, err)
		}
	}
	if _, err := New(c, Config{V: 1, FW: solve.FWOptions{MaxIters: 500, Tol: 1e-9}}); err != nil {
		t.Errorf("valid FW options rejected: %v", err)
	}
}

// FuzzWarmRepair feeds arbitrary availability levels and iterates through
// the feasibility repair and checks its contract: a non-fallback result is
// feasible for the current slot, a warmHit left the iterate untouched, and
// the repair is idempotent (repairing a repaired iterate is a hit).
func FuzzWarmRepair(f *testing.F) {
	f.Add([]byte{10, 10, 10, 50, 50, 50, 50, 50, 50, 50, 50, 50})
	f.Add([]byte{1, 200, 3, 255, 0, 255, 0, 255, 0, 128, 64, 32})
	f.Add([]byte{0, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		c := model.NewReferenceCluster()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		l := newSlotLayout(c)

		// Decode: one byte per (site, server-type) availability, then one
		// byte per flat variable; missing bytes read as zero.
		at := func(n int) float64 {
			if n < len(data) {
				return float64(data[n])
			}
			return 0
		}
		st := model.NewState(c)
		n := 0
		for i := range st.Avail {
			for k := range st.Avail[i] {
				st.Avail[i][k] = at(n) / 4
				n++
			}
			st.Price[i] = 0.5
		}
		q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
		for i := range q.Local {
			q.Local[i] = make([]float64, c.J())
			for j := range q.Local[i] {
				q.Local[i][j] = 40
			}
		}
		_, _, hCap := SlotCoefficients(c, Config{V: 7.5, Beta: 100}, st, q)
		x := make([]float64, l.total)
		for j := range x {
			x[j] = at(n)/2 - 16 // some entries negative
			n++
		}

		before := append([]float64(nil), x...)
		switch repairWarmStart(c, st, hCap, l, x) {
		case warmFallback:
			return
		case warmHit:
			for j := range x {
				if x[j] != before[j] {
					t.Fatalf("warmHit mutated index %d: %v -> %v", j, before[j], x[j])
				}
			}
		}
		// Feasible now, and stable under a second pass.
		const tol = 1e-9
		for i := 0; i < c.N(); i++ {
			var work, capWork float64
			for j := 0; j < c.J(); j++ {
				h := x[l.hIndex(i, j)]
				if h < 0 || h > hCap[i][j] {
					t.Fatalf("site %d job %d: h=%v outside [0, %v]", i, j, h, hCap[i][j])
				}
				work += c.JobTypes[j].Demand * h
			}
			for k, stype := range c.DataCenters[i].Servers {
				b := x[l.bOff[i]+k]
				if b < 0 || b > st.Avail[i][k] {
					t.Fatalf("site %d server %d: b=%v outside [0, %v]", i, k, b, st.Avail[i][k])
				}
				capWork += stype.Speed * b
			}
			if work > capWork*(1+1e-9)+tol {
				t.Fatalf("site %d: work %v exceeds capacity %v", i, work, capWork)
			}
		}
		if got := repairWarmStart(c, st, hCap, l, x); got != warmHit {
			t.Fatalf("repair not idempotent: second pass returned %v", got)
		}
	})
}
