package core

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

func refCluster(t *testing.T) *model.Cluster {
	t.Helper()
	c := model.NewReferenceCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func stateWith(c *model.Cluster, avail float64, prices []float64) *model.State {
	st := model.NewState(c)
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(i); k++ {
			st.Avail[i][k] = avail
		}
		st.Price[i] = prices[i]
	}
	return st
}

func randomLengths(rng *rand.Rand, c *model.Cluster, scale float64) queue.Lengths {
	l := queue.Lengths{
		Central: make([]float64, c.J()),
		Local:   make([][]float64, c.N()),
	}
	for j := range l.Central {
		l.Central[j] = math.Floor(rng.Float64() * scale)
	}
	for i := range l.Local {
		l.Local[i] = make([]float64, c.J())
		for j := range l.Local[i] {
			l.Local[i][j] = math.Floor(rng.Float64() * scale * 10 / 10)
		}
	}
	return l
}

func TestNewValidation(t *testing.T) {
	c := refCluster(t)
	if _, err := New(c, Config{V: -1}); err == nil {
		t.Error("negative V accepted")
	}
	if _, err := New(c, Config{Beta: -1}); err == nil {
		t.Error("negative beta accepted")
	}
	bad := model.NewReferenceCluster()
	bad.JobTypes[0].Demand = 0
	if _, err := New(bad, Config{V: 1}); err == nil {
		t.Error("invalid cluster accepted")
	}
	g, err := New(c, Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
}

func TestRoutingPrefersLeastBackloggedSite(t *testing.T) {
	c := refCluster(t)
	g, err := New(c, Config{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{0.4, 0.4, 0.4})
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
	}
	q.Central[0] = 10
	q.Local[0][0] = 8
	q.Local[1][0] = 2
	q.Local[2][0] = 20 // above Q_j: routing coefficient positive, must get 0

	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Route[2][0] != 0 {
		t.Errorf("routed %d jobs to a site with backlog above the central queue", act.Route[2][0])
	}
	// The 10 available jobs go to the least-backlogged site first (dc1 can
	// take up to MaxRoute=60, so it takes all 10).
	if act.Route[1][0] != 10 {
		t.Errorf("Route[1][0] = %d, want 10 (least-backlogged site)", act.Route[1][0])
	}
	if act.Route[0][0] != 0 {
		t.Errorf("Route[0][0] = %d, want 0", act.Route[0][0])
	}
}

func TestRoutingHonorsMaxRoute(t *testing.T) {
	c := model.NewReferenceCluster()
	c.JobTypes[0].MaxRoute = 3
	g, err := New(c, Config{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{0.4, 0.4, 0.4})
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
	}
	q.Central[0] = 10
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for i := 0; i < c.N(); i++ {
		if act.Route[i][0] > 3 {
			t.Errorf("Route[%d][0] = %d exceeds MaxRoute 3", i, act.Route[i][0])
		}
		total += act.Route[i][0]
	}
	if total != 9 { // 3 sites x 3 each; 1 job stays queued
		t.Errorf("total routed = %d, want 9", total)
	}
}

func TestThresholdRule(t *testing.T) {
	// The paper's core intuition: with beta=0, jobs are processed at site i
	// only when q_{i,j}/d_j > V * phi_i * p_k/s_k.
	c := refCluster(t)
	st := stateWith(c, 100, []float64{0.5, 0.5, 0.5})
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
	}
	// dc1: speed 1, power 1, price 0.5 -> threshold backlog per unit work is
	// V*0.5. With V=10 the threshold is 5.
	q.Local[0][0] = 4 // below threshold (demand 1): must NOT process
	q.Local[0][2] = 6 // above threshold: must process

	g, err := New(c, Config{V: 10})
	if err != nil {
		t.Fatal(err)
	}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] != 0 {
		t.Errorf("processed a job below the price threshold: h=%v", act.Process[0][0])
	}
	if act.Process[0][2] <= 0 {
		t.Errorf("did not process a job above the price threshold")
	}
	// With V=1 the threshold is 0.5 and both types clear it.
	g, err = New(c, Config{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	act, err = g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] <= 0 || act.Process[0][2] <= 0 {
		t.Errorf("small V should process everything: %v, %v", act.Process[0][0], act.Process[0][2])
	}
}

func TestDecideActionsAreFeasible(t *testing.T) {
	c := refCluster(t)
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range []Config{{V: 0}, {V: 2.5}, {V: 20}, {V: 7.5, Beta: 100}} {
		g, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			st := stateWith(c, 50+rng.Float64()*100, []float64{
				0.3 + rng.Float64()*0.3, 0.3 + rng.Float64()*0.3, 0.4 + rng.Float64()*0.4})
			q := randomLengths(rng, c, 40)
			act, err := g.Decide(trial, st, q)
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
			if err := act.Validate(c, st); err != nil {
				t.Fatalf("cfg %+v trial %d: infeasible action: %v", cfg, trial, err)
			}
			// Processing never exceeds physical queue content.
			for i := 0; i < c.N(); i++ {
				for j := 0; j < c.J(); j++ {
					if act.Process[i][j] > q.Local[i][j]+1e-9 {
						t.Fatalf("h[%d][%d]=%v exceeds queue %v", i, j, act.Process[i][j], q.Local[i][j])
					}
				}
			}
		}
	}
}

// TestGreedyMatchesLP cross-validates the closed-form greedy against the
// simplex LP on random slot problems: the drift-plus-penalty objective must
// agree to tolerance.
func TestGreedyMatchesLP(t *testing.T) {
	c := refCluster(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		cfg := Config{V: []float64{0.1, 2.5, 7.5, 20}[trial%4]}
		g, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := stateWith(c, 20+rng.Float64()*80, []float64{
			0.2 + rng.Float64()*0.5, 0.2 + rng.Float64()*0.5, 0.2 + rng.Float64()*0.5})
		q := randomLengths(rng, c, 60)

		act, err := g.Decide(0, st, q)
		if err != nil {
			t.Fatal(err)
		}
		_, _, lpObj, err := SolveSlotLP(c, cfg, st, q)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy objective: recompute the processing part of the DPP.
		var greedyObj float64
		for i := 0; i < c.N(); i++ {
			greedyObj += cfg.V * act.EnergyAt(c, st, i)
			for j := 0; j < c.J(); j++ {
				greedyObj -= q.Local[i][j] * act.Process[i][j]
			}
		}
		if math.Abs(greedyObj-lpObj) > 1e-5*(1+math.Abs(lpObj)) {
			t.Errorf("trial %d: greedy objective %v != LP %v", trial, greedyObj, lpObj)
		}
	}
}

// TestFrankWolfeMatchesProjectedGradient cross-validates the beta > 0 path.
// The reference cluster has one server type per site, so given h the optimal
// b is determined and the objective is a smooth quadratic of h alone, which
// projected gradient can solve over the per-site capacity polytopes.
func TestFrankWolfeMatchesProjectedGradient(t *testing.T) {
	c := refCluster(t)
	cfg := Config{V: 7.5, Beta: 100, FW: solve.FWOptions{MaxIters: 600, Tol: 1e-10}}
	g, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		st := stateWith(c, 40+rng.Float64()*60, []float64{
			0.3 + rng.Float64()*0.3, 0.35 + rng.Float64()*0.3, 0.45 + rng.Float64()*0.3})
		q := randomLengths(rng, c, 50)
		act, err := g.Decide(0, st, q)
		if err != nil {
			t.Fatal(err)
		}
		fwObj := processingObjective(c, cfg, st, q, act.Process)

		// Projected gradient over h with b eliminated (energy is linear in
		// work at single-server-type sites).
		pgH := solveSlotByProjectedGradient(c, cfg, st, q)
		pgObj := processingObjective(c, cfg, st, q, pgH)

		if fwObj > pgObj+1e-3*(1+math.Abs(pgObj)) {
			t.Errorf("trial %d: FW objective %v worse than PG %v", trial, fwObj, pgObj)
		}
		if pgObj > fwObj+1e-3*(1+math.Abs(fwObj)) {
			t.Errorf("trial %d: PG objective %v worse than FW %v (both should agree)", trial, pgObj, fwObj)
		}
	}
}

// processingObjective evaluates V*e + V*beta*penalty - sum q*h for a given
// processing matrix with optimally provisioned servers.
func processingObjective(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths, process [][]float64) float64 {
	var obj float64
	total := st.TotalResource(c)
	alloc := make([]float64, c.M())
	for i := 0; i < c.N(); i++ {
		var work float64
		for j := 0; j < c.J(); j++ {
			work += process[i][j] * c.JobTypes[j].Demand
			obj -= q.Local[i][j] * process[i][j]
			alloc[c.JobTypes[j].Account] += process[i][j] * c.JobTypes[j].Demand
		}
		_, power, err := model.Provision(c.DataCenters[i], st.Avail[i], work)
		if err != nil {
			return math.Inf(1)
		}
		obj += cfg.V * st.Price[i] * power
	}
	for m, w := range AccountWeights(c) {
		share := 0.0
		if total > 0 {
			share = alloc[m] / total
		}
		d := share - w
		obj += cfg.V * cfg.Beta * d * d
	}
	return obj
}

// solveSlotByProjectedGradient solves the beta>0 slot problem for clusters
// with one server type per site by projected gradient on h.
func solveSlotByProjectedGradient(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) [][]float64 {
	n := c.N() * c.J()
	hIndex := func(i, j int) int { return i*c.J() + j }
	total := st.TotalResource(c)

	obj := &solve.Quadratic{Linear: make([]float64, n)}
	for i := 0; i < c.N(); i++ {
		stype := c.DataCenters[i].Servers[0]
		for j := 0; j < c.J(); j++ {
			// Energy per processed job: price * p/s * d.
			obj.Linear[hIndex(i, j)] = cfg.V*st.Price[i]*stype.CostPerWork()*c.JobTypes[j].Demand - q.Local[i][j]
		}
	}
	for m, w := range AccountWeights(c) {
		var idx []int
		var coef []float64
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				if c.JobTypes[j].Account == m {
					idx = append(idx, hIndex(i, j))
					coef = append(coef, c.JobTypes[j].Demand/total)
				}
			}
		}
		obj.Squares = append(obj.Squares, solve.AffineSquare{
			Weight: cfg.V * cfg.Beta, Index: idx, Coef: coef, Offset: -w,
		})
	}

	caps := make([][]float64, c.N())
	weights := make([][]float64, c.N())
	for i := 0; i < c.N(); i++ {
		caps[i] = make([]float64, c.J())
		weights[i] = make([]float64, c.J())
		for j := 0; j < c.J(); j++ {
			jt := c.JobTypes[j]
			if jt.EligibleSet(i) {
				caps[i][j] = processBudgetFor(jt, q.Local[i][j])
			}
			weights[i][j] = jt.Demand
		}
	}
	project := func(x []float64) {
		for i := 0; i < c.N(); i++ {
			seg := x[i*c.J() : (i+1)*c.J()]
			solve.ProjectWeightedCapBox(seg, weights[i], caps[i], st.Capacity(c, i))
		}
	}
	res := solve.ProjectedGradient(obj, project, make([]float64, n), solve.PGOptions{MaxIters: 4000, Step: 0.5})
	out := make([][]float64, c.N())
	for i := range out {
		out[i] = append([]float64(nil), res.X[i*c.J():(i+1)*c.J()]...)
	}
	return out
}

// TestGreFarBeatsAlternativesOnDPP property: GreFar's action minimizes (14),
// so random feasible alternatives must never score better.
func TestGreFarBeatsAlternativesOnDPP(t *testing.T) {
	c := refCluster(t)
	rng := rand.New(rand.NewSource(123))
	gamma := AccountWeights(c)
	for _, cfg := range []Config{{V: 5}, {V: 7.5, Beta: 100, FW: solve.FWOptions{MaxIters: 400}}} {
		g, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := stateWith(c, 80, []float64{0.39, 0.43, 0.55})
		q := randomLengths(rng, c, 50)
		act, err := g.Decide(0, st, q)
		if err != nil {
			t.Fatal(err)
		}
		best := DriftPlusPenalty(c, cfg, st, q, act, gamma)

		for trial := 0; trial < 60; trial++ {
			alt := model.NewAction(c)
			for j := 0; j < c.J(); j++ {
				// Random routing split respecting the central queue.
				remaining := int(q.Central[j])
				for _, i := range c.JobTypes[j].Eligible {
					r := rng.Intn(remaining + 1)
					if mr := c.JobTypes[j].MaxRoute; mr > 0 && r > mr {
						r = mr
					}
					alt.Route[i][j] = r
					remaining -= r
				}
			}
			for i := 0; i < c.N(); i++ {
				var work float64
				capi := st.Capacity(c, i)
				for j := 0; j < c.J(); j++ {
					if !c.JobTypes[j].EligibleSet(i) {
						continue
					}
					h := rng.Float64() * processBudgetFor(c.JobTypes[j], q.Local[i][j])
					if work+h*c.JobTypes[j].Demand > capi {
						continue
					}
					alt.Process[i][j] = h
					work += h * c.JobTypes[j].Demand
				}
				busy, _, err := model.Provision(c.DataCenters[i], st.Avail[i], work)
				if err != nil {
					t.Fatal(err)
				}
				alt.Busy[i] = busy
			}
			if v := DriftPlusPenalty(c, cfg, st, q, alt, gamma); v < best-1e-4*(1+math.Abs(best)) {
				t.Errorf("cfg %+v: random action scored %v, better than GreFar's %v", cfg, v, best)
			}
		}
	}
}

func TestVZeroProcessesEverythingAffordable(t *testing.T) {
	// V=0 ignores cost entirely: every queued job whose backlog is positive
	// should be processed (capacity permitting).
	c := refCluster(t)
	g, err := New(c, Config{V: 0})
	if err != nil {
		t.Fatal(err)
	}
	st := stateWith(c, 100, []float64{5, 5, 5}) // absurd prices, irrelevant at V=0
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
	}
	q.Local[0][0] = 10
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] < 10-1e-9 {
		t.Errorf("V=0 processed only %v of 10 queued jobs", act.Process[0][0])
	}
}

func TestEnergyFairnessCost(t *testing.T) {
	c := refCluster(t)
	st := stateWith(c, 100, []float64{0.5, 0.5, 0.5})
	act := model.NewAction(c)
	act.Process[0][0] = 10
	act.Busy[0][0] = 10
	gamma := AccountWeights(c)

	e := EnergyFairnessCost(c, st, act, 0, gamma)
	if math.Abs(e-5) > 1e-12 { // 10 busy * power 1 * price 0.5
		t.Errorf("energy = %v, want 5", e)
	}
	g100 := EnergyFairnessCost(c, st, act, 100, gamma)
	if g100 <= e {
		t.Errorf("with beta=100 and an unfair allocation, cost %v should exceed energy %v", g100, e)
	}
}
