package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
)

// stateTestWorld builds a deterministic sequence of slot states and backlogs
// for driving Decide outside the simulator.
func stateTestWorld(t *testing.T, c *model.Cluster, slots int) ([]*model.State, []queue.Lengths) {
	t.Helper()
	states := make([]*model.State, slots)
	lengths := make([]queue.Lengths, slots)
	for s := 0; s < slots; s++ {
		st := model.NewState(c)
		for i := 0; i < c.N(); i++ {
			st.Price[i] = 0.3 + 0.1*float64(i) + 0.05*math.Sin(float64(s+i))
			for k := range st.Avail[i] {
				st.Avail[i][k] = 40 + float64(((s+1)*(i+2)*(k+3))%20)
			}
		}
		if err := st.Validate(c); err != nil {
			t.Fatal(err)
		}
		q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
		for j := range q.Central {
			q.Central[j] = float64((s*7 + j*3) % 40)
		}
		for i := range q.Local {
			q.Local[i] = make([]float64, c.J())
			for j := range q.Local[i] {
				q.Local[i][j] = float64((s*5 + i*11 + j) % 25)
			}
		}
		states[s] = st
		lengths[s] = q
	}
	return states, lengths
}

// TestSchedulerStateRoundTrip drives a warm-starting beta > 0 scheduler for a
// prefix of slots, exports its state into a fresh instance, and requires the
// continuation's decisions to be byte-identical to the uninterrupted run.
func TestSchedulerStateRoundTrip(t *testing.T) {
	c := model.NewReferenceCluster()
	const slots, split = 24, 12
	states, lengths := stateTestWorld(t, c, slots)
	cfg := Config{V: 7.5, Beta: 100, WarmStart: true}

	full, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []*model.Action
	for s := 0; s < slots; s++ {
		act, err := full.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, act)
	}

	first, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < split; s++ {
		if _, err := first.Decide(s, states[s], lengths[s]); err != nil {
			t.Fatal(err)
		}
	}
	exported := first.ExportState()
	if !exported.WarmValid {
		t.Fatal("warm-starting scheduler exported no valid warm iterate")
	}
	// Keep deciding on the original to prove the export is a snapshot, not a
	// live alias.
	if _, err := first.Decide(split, states[split], lengths[split]); err != nil {
		t.Fatal(err)
	}

	second, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreState(exported); err != nil {
		t.Fatal(err)
	}
	for s := split; s < slots; s++ {
		act, err := second.Decide(s, states[s], lengths[s])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(act, want[s]) {
			t.Fatalf("slot %d: restored scheduler diverged from uninterrupted run", s)
		}
	}
	if second.warmHits != full.warmHits || second.warmRepairs != full.warmRepairs || second.warmFallbacks != full.warmFallbacks {
		t.Fatalf("warm counters diverged: restored %d/%d/%d, uninterrupted %d/%d/%d",
			second.warmHits, second.warmRepairs, second.warmFallbacks,
			full.warmHits, full.warmRepairs, full.warmFallbacks)
	}
}

// TestSchedulerStateLinearPath checks that beta = 0 schedulers export an
// empty (but restorable) state.
func TestSchedulerStateLinearPath(t *testing.T) {
	c := model.NewReferenceCluster()
	g, err := New(c, Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	st := g.ExportState()
	if st.Warm != nil || st.WarmValid {
		t.Fatalf("linear-path scheduler exported warm state: %+v", st)
	}
	g2, err := New(c, Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if err := g2.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerStateRejectsMismatch checks the typed rejections: wrong warm
// length, warm state into a configuration without a convex path, non-finite
// iterates, and a valid flag without an iterate.
func TestSchedulerStateRejectsMismatch(t *testing.T) {
	c := model.NewReferenceCluster()
	quad, err := New(c, Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := New(c, Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *GreFar
		st   *SchedulerState
	}{
		{"wrong-length", quad, &SchedulerState{Warm: make([]float64, 3), WarmValid: true}},
		{"no-convex-path", lin, &SchedulerState{Warm: make([]float64, 3), WarmValid: true}},
		{"non-finite", quad, &SchedulerState{Warm: append(make([]float64, len(quad.ws.warm)-1), math.NaN()), WarmValid: true}},
		{"valid-without-iterate", quad, &SchedulerState{WarmValid: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.RestoreState(tc.st); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("got %v, want ErrBadConfig", err)
			}
		})
	}
}
