package core

import "errors"

// ErrBadConfig is the sentinel wrapped by every Config rejection (negative V
// or beta), so callers can classify construction failures with errors.Is and
// distinguish them from cluster-validation failures, which wrap
// model.ErrInvalidCluster instead.
var ErrBadConfig = errors.New("bad scheduler config")
