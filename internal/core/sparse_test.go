package core

import (
	"math/rand"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

// sparseTestLengths draws a backlog snapshot with roughly the given fraction
// of eligible pairs holding positive backlog.
func sparseTestLengths(rng *rand.Rand, c *model.Cluster, density float64) queue.Lengths {
	q := queue.Lengths{Central: make([]float64, c.J()), Local: make([][]float64, c.N())}
	for j := range q.Central {
		q.Central[j] = float64(rng.Intn(30))
	}
	for i := range q.Local {
		q.Local[i] = make([]float64, c.J())
		for j := range q.Local[i] {
			if rng.Float64() < density {
				q.Local[i][j] = float64(1 + rng.Intn(25))
			}
		}
	}
	return q
}

// TestSparseCoefficientsMatchDense is the dense == sparse coefficient
// property: for random backlogs — including the all-zero and all-active
// extremes — every compact coefficient must equal its dense counterpart, and
// every eligible pair left out of the index must be one the dense build gives
// zero backlog.
func TestSparseCoefficientsMatchDense(t *testing.T) {
	c := refCluster(t)
	cfg := Config{V: 7.5, Beta: 100}
	rng := rand.New(rand.NewSource(41))
	densities := []float64{0, 0.1, 0.5, 1}
	for trial := 0; trial < 40; trial++ {
		density := densities[trial%len(densities)]
		st := stateWith(c, 50, []float64{0.3, 0.5, 0.7})
		st.Price[trial%c.N()] = 0.2 + rng.Float64()
		q := sparseTestLengths(rng, c, density)

		sp := newSparseSlot(c)
		sp.refresh(cfg, st, q, nil)
		cH, cB, hCap := SlotCoefficients(c, cfg, st, q)

		seen := make(map[int]bool)
		for i := 0; i < c.N(); i++ {
			for ct := sp.siteOff[i]; ct < sp.siteOff[i+1]; ct++ {
				j := sp.pairJ[ct]
				idx := sp.denseIdx[ct]
				seen[idx] = true
				if idx != i*c.J()+j {
					t.Fatalf("trial %d: compact %d maps to dense %d, want %d", trial, ct, idx, i*c.J()+j)
				}
				if sp.linear[ct] != cH[i][j] {
					t.Errorf("trial %d site %d job %d: compact cH %v, dense %v", trial, i, j, sp.linear[ct], cH[i][j])
				}
				if sp.hCap[ct] != hCap[i][j] {
					t.Errorf("trial %d site %d job %d: compact hCap %v, dense %v", trial, i, j, sp.hCap[ct], hCap[i][j])
				}
				if sp.account[ct] != c.JobTypes[j].Account || sp.demand[ct] != c.JobTypes[j].Demand {
					t.Errorf("trial %d site %d job %d: wrong account/demand maps", trial, i, j)
				}
			}
			for k := 0; k < c.K(i); k++ {
				if sp.linear[sp.bOffC[i]+k] != cB[i][k] {
					t.Errorf("trial %d site %d server %d: compact cB %v, dense %v", trial, i, k, sp.linear[sp.bOffC[i]+k], cB[i][k])
				}
			}
			// Pairs outside the index must carry no dense signal: zero backlog
			// (so cH = 0 and hCap = 0) or ineligibility (hCap = 0 by
			// construction).
			for j := 0; j < c.J(); j++ {
				idx := i*c.J() + j
				if seen[idx] {
					continue
				}
				if sp.eligible[idx] && q.Local[i][j] != 0 {
					t.Errorf("trial %d site %d job %d: backlogged eligible pair missing from index", trial, i, j)
				}
				if hCap[i][j] != 0 && !sp.eligible[idx] {
					t.Errorf("trial %d site %d job %d: ineligible pair has dense cap %v", trial, i, j, hCap[i][j])
				}
			}
		}
		wantH := 0
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				if sp.eligible[i*c.J()+j] && q.Local[i][j] > 0 {
					wantH++
				}
			}
		}
		if sp.nH != wantH {
			t.Errorf("trial %d: index has %d active pairs, want %d", trial, sp.nH, wantH)
		}
		if density == 0 && sp.nH != 0 {
			t.Errorf("trial %d: all-zero backlog produced %d active pairs", trial, sp.nH)
		}
	}
}

// decisionsEqual compares two actions exactly.
func decisionsEqual(t *testing.T, slot int, label string, a, b *model.Action) {
	t.Helper()
	for i := range a.Process {
		for j := range a.Process[i] {
			if a.Process[i][j] != b.Process[i][j] {
				t.Fatalf("slot %d %s: process[%d][%d] = %v vs %v", slot, label, i, j, a.Process[i][j], b.Process[i][j])
			}
		}
		for k := range a.Busy[i] {
			if a.Busy[i][k] != b.Busy[i][k] {
				t.Fatalf("slot %d %s: busy[%d][%d] = %v vs %v", slot, label, i, k, a.Busy[i][k], b.Busy[i][k])
			}
		}
		for j := range a.Route[i] {
			if a.Route[i][j] != b.Route[i][j] {
				t.Fatalf("slot %d %s: route[%d][%d] = %d vs %d", slot, label, i, j, a.Route[i][j], b.Route[i][j])
			}
		}
	}
}

// TestSparseDecideBitIdentical drives the monolithic and sparse schedulers
// through the same evolving slot sequence and requires byte-identical
// decisions — the bit-identity argument of the sparse representation, pinned
// for the linear path, the convex path, and the warm-started convex path.
func TestSparseDecideBitIdentical(t *testing.T) {
	c := refCluster(t)
	states, lengths := stateTestWorld(t, c, 30)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"beta=0", Config{V: 7.5}},
		{"beta=100", Config{V: 7.5, Beta: 100}},
		{"beta=100-warm", Config{V: 7.5, Beta: 100, WarmStart: true}},
		{"beta=100-away", Config{V: 7.5, Beta: 100, FW: awayFWOptions()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dense, err := New(c, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfgSparse := tc.cfg
			cfgSparse.Solver = SolverSparse
			sparse, err := New(c, cfgSparse)
			if err != nil {
				t.Fatal(err)
			}
			for s := range states {
				da, err := dense.Decide(s, states[s], lengths[s])
				if err != nil {
					t.Fatal(err)
				}
				sa, err := sparse.Decide(s, states[s], lengths[s])
				if err != nil {
					t.Fatal(err)
				}
				decisionsEqual(t, s, tc.name, da, sa)
			}
		})
	}
}

func awayFWOptions() (o solve.FWOptions) {
	o.MaxIters = 150
	o.AwaySteps = true
	return o
}

// TestSparseRefreshIncremental pins the refresh machinery: with stable active
// membership, slot-to-slot input drift lands on the in-place path (row
// refreshes, no rebuilds); a membership flip forces a rebuild.
func TestSparseRefreshIncremental(t *testing.T) {
	c := refCluster(t)
	cfg := Config{V: 7.5, Beta: 100}
	st := stateWith(c, 50, []float64{0.3, 0.5, 0.7})
	rng := rand.New(rand.NewSource(7))
	q := sparseTestLengths(rng, c, 1) // fully active: value drift cannot flip membership

	sp := newSparseSlot(c)
	sp.refresh(cfg, st, q, nil)
	if sp.rebuilds != 1 || sp.rowRefreshes != 0 {
		t.Fatalf("first refresh: rebuilds=%d rowRefreshes=%d, want 1/0", sp.rebuilds, sp.rowRefreshes)
	}
	gen := sp.gen

	// Backlog and price drift with unchanged membership: in-place refresh.
	q.Local[1][0] += 3
	st.Price[2] = 0.9
	sp.refresh(cfg, st, q, nil)
	if sp.rebuilds != 1 {
		t.Errorf("value drift triggered a rebuild (rebuilds=%d)", sp.rebuilds)
	}
	if sp.rowRefreshes == 0 {
		t.Error("value drift refreshed no rows")
	}
	if sp.gen != gen {
		t.Error("in-place refresh bumped the index generation")
	}
	if sp.linear[sp.siteOff[1]] != -q.Local[1][0] {
		t.Errorf("refreshed cH = %v, want %v", sp.linear[sp.siteOff[1]], -q.Local[1][0])
	}

	// Unchanged inputs: no work at all.
	rows := sp.rowRefreshes
	sp.refresh(cfg, st, q, nil)
	if sp.rowRefreshes != rows || sp.rebuilds != 1 {
		t.Error("no-op refresh did work")
	}

	// Draining a queue flips membership: rebuild.
	q.Local[0][1] = 0
	sp.refresh(cfg, st, q, nil)
	if sp.rebuilds != 2 {
		t.Errorf("membership flip did not rebuild (rebuilds=%d)", sp.rebuilds)
	}
	if sp.gen == gen {
		t.Error("rebuild did not bump the index generation")
	}
}

// FuzzSparseRefresh drives a sparseSlot through fuzzer-chosen backlog and
// price mutations, refreshing incrementally after each, and requires the
// refreshed representation to equal a from-scratch rebuild on the final
// inputs — the incremental path must be indistinguishable from the rebuild
// path.
func FuzzSparseRefresh(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(9))
	f.Add(int64(-7), uint8(0))
	f.Add(int64(9000), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, mutations uint8) {
		c := model.NewReferenceCluster()
		if err := c.Validate(); err != nil {
			t.Skip()
		}
		cfg := Config{V: 7.5, Beta: 100}
		rng := rand.New(rand.NewSource(seed))
		st := stateWith(c, 50, []float64{0.3, 0.5, 0.7})
		q := sparseTestLengths(rng, c, 0.4)

		inc := newSparseSlot(c)
		inc.refresh(cfg, st, q, nil)
		for m := 0; m < int(mutations); m++ {
			switch rng.Intn(4) {
			case 0: // backlog drift on one pair
				q.Local[rng.Intn(c.N())][rng.Intn(c.J())] = float64(rng.Intn(30))
			case 1: // price drift on one site
				st.Price[rng.Intn(c.N())] = 0.1 + rng.Float64()
			case 2: // drain a whole site
				site := rng.Intn(c.N())
				for j := range q.Local[site] {
					q.Local[site][j] = 0
				}
			case 3: // no-op slot
			}
			inc.refresh(cfg, st, q, nil)
		}

		fresh := newSparseSlot(c)
		fresh.refresh(cfg, st, q, nil)

		if inc.nH != fresh.nH || inc.total != fresh.total {
			t.Fatalf("index shape diverged: nH %d/%d total %d/%d", inc.nH, fresh.nH, inc.total, fresh.total)
		}
		for ct := 0; ct < inc.nH; ct++ {
			if inc.denseIdx[ct] != fresh.denseIdx[ct] || inc.pairJ[ct] != fresh.pairJ[ct] {
				t.Fatalf("compact %d: index diverged (%d/%d vs %d/%d)",
					ct, inc.denseIdx[ct], inc.pairJ[ct], fresh.denseIdx[ct], fresh.pairJ[ct])
			}
			if inc.hCap[ct] != fresh.hCap[ct] {
				t.Fatalf("compact %d: hCap %v vs %v", ct, inc.hCap[ct], fresh.hCap[ct])
			}
		}
		for ct := range fresh.linear {
			if inc.linear[ct] != fresh.linear[ct] {
				t.Fatalf("compact %d: linear %v vs %v", ct, inc.linear[ct], fresh.linear[ct])
			}
		}
		for idx := range fresh.active {
			if inc.active[idx] != fresh.active[idx] {
				t.Fatalf("dense %d: active %v vs %v", idx, inc.active[idx], fresh.active[idx])
			}
		}
	})
}
