package core
