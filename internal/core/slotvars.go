package core

import (
	"grefar/internal/fairness"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
	"grefar/internal/tariff"
)

// slotLayout maps the processing decision variables of one slot onto the
// flat vector the convex solvers operate on: the N*J processing variables
// h_{i,j} first, then each data center's busy-server variables b_{i,k}.
type slotLayout struct {
	nJ    int   // job types per site (stride of the h block)
	bOff  []int // bOff[i] is the first b index of data center i
	total int   // total variable count
}

func newSlotLayout(c *model.Cluster) slotLayout {
	l := slotLayout{nJ: c.J(), bOff: make([]int, c.N()), total: c.N() * c.J()}
	for i := 0; i < c.N(); i++ {
		l.bOff[i] = l.total
		l.total += c.K(i)
	}
	return l
}

func (l slotLayout) hIndex(i, j int) int { return i*l.nJ + j }

// SlotCoefficients assembles the linear data of the per-slot processing
// subproblem of (14) for the given backlogs and state:
//
//	cH[i][j]   = -q_{i,j}            (reward for processing)
//	cB[i][k]   = V * phi_i * p_k     (energy cost of a busy server)
//	hCap[i][j] = min(q_{i,j}, h_max) on eligible sites, 0 elsewhere
//
// Every beta = 0 slot solver in this package (the greedy exchange, the
// simplex LP) minimizes exactly cH.h + cB.b over the scheduling polytope;
// the invariant package's differential harness uses the same coefficients to
// cross-run the iterative solvers on identical inputs.
func SlotCoefficients(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) (cH, cB, hCap [][]float64) {
	cH = newMatrixNJ(c)
	cB = newMatrixNK(c)
	hCap = newMatrixNJ(c)
	slotCoefficientsInto(c, cfg, st, q, cH, cB, hCap)
	return cH, cB, hCap
}

// slotCoefficientsInto fills caller-owned coefficient matrices, overwriting
// every entry; the Decide hot path reuses one set per scheduler.
func slotCoefficientsInto(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths, cH, cB, hCap [][]float64) {
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			cH[i][j] = -q.Local[i][j]
			if c.JobTypes[j].EligibleSet(i) {
				hCap[i][j] = processBudgetFor(c.JobTypes[j], q.Local[i][j])
			} else {
				hCap[i][j] = 0
			}
		}
		for k, stype := range c.DataCenters[i].Servers {
			cB[i][k] = cfg.V * st.Price[i] * stype.Power
		}
	}
}

// SlotObjective builds the full convex slot objective of (14) over the
// concatenated (h, b) variables in slotLayout order — the same objective
// Decide minimizes when beta > 0: the linear drift/energy coefficients plus
// V*beta times the fairness penalty (and, under a non-linear tariff, the
// convex tariff term with the b-columns moved out of the linear part). It
// also returns the per-pair processing caps hCap that, together with
// SlotOracle, pin down the feasible set. The invariant package's
// differential harness uses this to run independent solvers against the
// exact objective the scheduler optimizes, so a disagreement isolates the
// iterative machinery rather than the problem statement. A nil cfg.Fairness
// resolves to the paper's quadratic penalty, as in New.
func SlotObjective(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) (solve.Objective, [][]float64, error) {
	cH, cB, hCap := SlotCoefficients(c, cfg, st, q)
	l := newSlotLayout(c)

	nonlinearTariff := false
	if cfg.Tariff != nil {
		_, isLinear := cfg.Tariff.(tariff.Linear)
		nonlinearTariff = !isLinear
	}
	linear := make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			linear[l.hIndex(i, j)] = cH[i][j]
		}
		if !nonlinearTariff {
			for k := 0; k < c.K(i); k++ {
				linear[l.bOff[i]+k] = cB[i][k]
			}
		}
	}

	term := cfg.Fairness
	if term == nil {
		quad, err := fairness.NewQuadratic(AccountWeights(c))
		if err != nil {
			return nil, nil, err
		}
		term = quad
	}
	so := newSlotObjective(c, linear, cfg.V*cfg.Beta, st.TotalResource(c), term)
	if nonlinearTariff {
		so.attachTariff(c, st, cfg.Tariff, cfg.V)
	}
	return wrapSlotObjective(so), hCap, nil
}

// SlotOracle returns the linear-minimization oracle of the slot scheduling
// polytope (paper eq. 11 plus the per-pair bounds hCap and availability):
// given a gradient over the concatenated (h, b) variables in slotLayout
// order, it writes a vertex minimizing grad.v. The Frank-Wolfe path of the
// scheduler and the differential solver cross-checks share this oracle, so a
// disagreement between them isolates the iterative machinery rather than the
// feasible set.
func SlotOracle(c *model.Cluster, st *model.State, hCap [][]float64) solve.LinearOracle {
	return slotOracleWS(c, st, hCap, newMatrixNJ(c), newMatrixNK(c), newLinearScratch(c))
}

// slotOracleWS is SlotOracle running on caller-owned gradient matrices and a
// greedy-exchange workspace. The oracle is invoked once per Frank-Wolfe
// iteration and the solver copies each vertex out immediately, so one
// workspace safely serves every iteration of a Decide call.
func slotOracleWS(c *model.Cluster, st *model.State, hCap, gradH, gradB [][]float64, lin *linearScratch) solve.LinearOracle {
	l := newSlotLayout(c)
	return func(grad []float64, out []float64) {
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				gradH[i][j] = grad[l.hIndex(i, j)]
			}
			for k := 0; k < c.K(i); k++ {
				v := grad[l.bOff[i]+k]
				if v < 0 {
					v = 0 // b only enters with non-negative marginal cost; guard roundoff
				}
				gradB[i][k] = v
			}
		}
		var pr, bu [][]float64
		if c.Aux() > 0 {
			var err error
			pr, bu, _, err = solveSlotLPGeneral(c, st, gradH, gradB, hCap)
			if err != nil {
				return // zero vertex fallback
			}
		} else {
			la, err := solveLinearSlotWS(lin, c, st, gradH, gradB, hCap)
			if err != nil {
				return // unreachable given the clamp; zero vertex fallback
			}
			pr, bu = la.process, la.busy
		}
		for i := 0; i < c.N(); i++ {
			for j := 0; j < c.J(); j++ {
				out[l.hIndex(i, j)] = pr[i][j]
			}
			for k := 0; k < c.K(i); k++ {
				out[l.bOff[i]+k] = bu[i][k]
			}
		}
	}
}
