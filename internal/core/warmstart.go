package core

import (
	"math"

	"grefar/internal/model"
)

// warmOutcome classifies one warm-start attempt; solveQuadraticSlot maps it
// to the telemetry Warm* constants and counters.
type warmOutcome int

const (
	// warmHit: the saved iterate is feasible for the current slot as-is.
	warmHit warmOutcome = iota
	// warmRepaired: the iterate violated a cap and was clamped/rescaled back
	// into the feasible set.
	warmRepaired
	// warmFallback: the iterate is unusable (non-finite, or repairing it
	// would destroy it); the caller must cold-start from zero.
	warmFallback
)

// warmCollapseScale is the give-up threshold of the feasibility repair: when
// a coupling constraint forces the processing block of a site to shrink by
// more than this factor (capacity or auxiliary headroom collapsed to under
// 10% of what the iterate uses), the state has jumped far enough that the
// rescaled iterate carries no useful information, and the zero cold start is
// the better seed.
const warmCollapseScale = 0.1

// warmFeasEps is the relative slack tolerated on the coupling rows before
// repair kicks in. The saved iterate is a convex combination of oracle
// vertices, each exactly feasible, but re-summing the rows in a different
// order can flip the inequality at the last ulp; without the slack, every
// unchanged slot would be misclassified as "repaired". The slack is ~1e-12
// relative, six orders below the model's feasibilityTol.
const warmFeasEps = 1e-12

// repairWarmStart clamps and rescales x — a previous slot's (h, b) iterate
// in slotLayout order — into the current slot's feasible set, in place.
//
// Per site, the repair (1) clamps h into [0, hCap] and b into
// [0, avail]; (2) restores the capacity row sum_j d_j*h <= sum_k s_k*b by
// scaling the site's h block down (scaling down is always safe: it keeps the
// box and only loosens the auxiliary rows); and (3) restores each auxiliary
// row the same way. Every move shrinks h, so the steps cannot un-repair each
// other and a single pass suffices.
//
// It returns warmHit when nothing needed repair, warmRepaired when the
// result is feasible but was moved, and warmFallback when the iterate is
// non-finite or a coupling row would force a site's h block below
// warmCollapseScale of itself — in which case x is left in an unspecified
// state and the caller must use the zero start.
func repairWarmStart(c *model.Cluster, st *model.State, hCap [][]float64, l slotLayout, x []float64) warmOutcome {
	repaired := false
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			idx := l.hIndex(i, j)
			v := x[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return warmFallback
			}
			if v < 0 {
				v = 0
			}
			if cap := hCap[i][j]; v > cap {
				v = cap
			}
			if v != x[idx] {
				x[idx] = v
				repaired = true
			}
		}
		for k := 0; k < c.K(i); k++ {
			idx := l.bOff[i] + k
			v := x[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return warmFallback
			}
			if v < 0 {
				v = 0
			}
			if avail := st.Avail[i][k]; v > avail {
				v = avail
			}
			if v != x[idx] {
				x[idx] = v
				repaired = true
			}
		}

		// Capacity row (eq. 11): sum_j d_j h_{i,j} <= sum_k s_k b_{i,k}.
		work := 0.0
		for j := 0; j < c.J(); j++ {
			work += c.JobTypes[j].Demand * x[l.hIndex(i, j)]
		}
		capWork := 0.0
		for k, stype := range c.DataCenters[i].Servers {
			capWork += stype.Speed * x[l.bOff[i]+k]
		}
		if work > capWork*(1+warmFeasEps) {
			if capWork < warmCollapseScale*work {
				return warmFallback
			}
			scale := capWork / work
			for j := 0; j < c.J(); j++ {
				x[l.hIndex(i, j)] *= scale
			}
			repaired = true
		}

		// Auxiliary rows (footnote 3): sum_j AuxDemand_{j,r} h_{i,j} <= cap_r.
		for r := 0; r < c.Aux(); r++ {
			usage := 0.0
			for j := 0; j < c.J(); j++ {
				if r < len(c.JobTypes[j].AuxDemand) {
					usage += c.JobTypes[j].AuxDemand[r] * x[l.hIndex(i, j)]
				}
			}
			capR := c.DataCenters[i].AuxCapacity[r]
			if usage > capR*(1+warmFeasEps) {
				if capR < warmCollapseScale*usage {
					return warmFallback
				}
				scale := capR / usage
				for j := 0; j < c.J(); j++ {
					x[l.hIndex(i, j)] *= scale
				}
				repaired = true
			}
		}
	}
	if repaired {
		return warmRepaired
	}
	return warmHit
}
