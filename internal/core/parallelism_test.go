package core

import (
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
)

// TestParallelismConstraint exercises the paper's section III-B adaptation:
// "we need to add a constraint on the scheduling decisions such that the
// maximum number of servers that can be used to process a job simultaneously
// is upper bounded." In this model the bound is expressed through
// MaxProcess = h_max_{i,j}: a job type whose jobs can use at most P servers
// of speed s processes at most P*s/d jobs per slot per site, no matter how
// much backlog or capacity exists.
func TestParallelismConstraint(t *testing.T) {
	c := &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "dc", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
		},
		JobTypes: []model.JobType{
			// A long job (demand 8) that may use at most 16 servers in
			// parallel: at speed 1 that is 16 work/slot, i.e. h_max = 2.
			{Name: "limited", Demand: 8, Eligible: []int{0}, Account: 0, MaxProcess: 2},
			// An unconstrained short type for contrast.
			{Name: "free", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 0},
		},
		Accounts: []model.Account{{Name: "a", Weight: 1}},
	}
	g, err := New(c, Config{V: 0}) // V=0: process as much as possible
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0] = 1000 // capacity far beyond any backlog
	st.Price[0] = 0.1

	q := queue.Lengths{Central: make([]float64, 2), Local: [][]float64{{10, 10}}}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.Process[0][0] > 2+1e-9 {
		t.Errorf("parallelism-limited type processed %v jobs/slot, cap is 2", act.Process[0][0])
	}
	if act.Process[0][1] < 10-1e-9 {
		t.Errorf("unconstrained type processed only %v of 10", act.Process[0][1])
	}

	// Draining 10 limited jobs therefore takes at least 5 slots.
	remaining := 10.0
	slots := 0
	for remaining > 1e-9 && slots < 20 {
		q.Local[0][0] = remaining
		act, err := g.Decide(slots, st, q)
		if err != nil {
			t.Fatal(err)
		}
		remaining -= act.Process[0][0]
		slots++
	}
	if slots < 5 {
		t.Errorf("drained in %d slots; parallelism cap implies >= 5", slots)
	}
}
