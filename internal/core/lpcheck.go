package core

import (
	"fmt"

	"grefar/internal/lp"
	"grefar/internal/model"
	"grefar/internal/queue"
)

// SolveSlotLP solves the beta = 0 processing subproblem of one GreFar slot
// as an explicit linear program:
//
//	minimize  V * sum_{i,k} phi_i p_k b_{i,k} - sum_{i,j} q_{i,j} h_{i,j}
//	s.t.      sum_j d_j h_{i,j} <= sum_k s_k b_{i,k}   for every i
//	          0 <= b_{i,k} <= n_{i,k},  0 <= h_{i,j} <= hCap_{i,j}
//
// It exists to cross-validate the closed-form greedy in solveLinearSlot: the
// two must agree on the objective value to solver tolerance. The ablation
// benchmark also uses it to quantify how much faster the greedy is.
func SolveSlotLP(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) (process, busy [][]float64, objective float64, err error) {
	if cfg.Beta != 0 {
		return nil, nil, 0, fmt.Errorf("slot LP handles beta = 0 only, got %v", cfg.Beta)
	}
	cH, cB, hCap := SlotCoefficients(c, cfg, st, q)
	return solveSlotLPGeneral(c, st, cH, cB, hCap)
}

// SolveSlotGreedy solves the same beta = 0 processing subproblem as
// SolveSlotLP with the closed-form greedy exchange, exposed so ablations can
// time the two solvers head to head.
func SolveSlotGreedy(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths) (process, busy [][]float64, objective float64, err error) {
	if cfg.Beta != 0 {
		return nil, nil, 0, fmt.Errorf("greedy slot solver handles beta = 0 only, got %v", cfg.Beta)
	}
	cH, cB, hCap := SlotCoefficients(c, cfg, st, q)
	la, err := solveLinearSlot(c, st, cH, cB, hCap)
	if err != nil {
		return nil, nil, 0, err
	}
	return la.process, la.busy, la.value, nil
}

// solveSlotLPGeneral solves the linear slot problem with arbitrary
// coefficients, including the footnote-3 auxiliary resource constraints
// sum_j h_{i,j} * aux_{j,r} <= AuxCapacity_{i,r}. It is both the production
// path for clusters with auxiliary resources (where the single-constraint
// greedy does not apply) and the Frank-Wolfe linear oracle for such
// clusters.
func solveSlotLPGeneral(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) (process, busy [][]float64, objective float64, err error) {
	l := newSlotLayout(c)
	hIndex, bOffset := l.hIndex, l.bOff

	prob := lp.NewProblem(l.total)
	costs := make([]float64, l.total)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			costs[hIndex(i, j)] = cH[i][j]
		}
		for k := 0; k < c.K(i); k++ {
			costs[bOffset[i]+k] = cB[i][k]
		}
	}
	if err := prob.SetObjective(costs); err != nil {
		return nil, nil, 0, err
	}

	for i := 0; i < c.N(); i++ {
		// Capacity coupling: sum_j d_j h - sum_k s_k b <= 0.
		idx := make([]int, 0, c.J()+c.K(i))
		coef := make([]float64, 0, c.J()+c.K(i))
		for j := 0; j < c.J(); j++ {
			idx = append(idx, hIndex(i, j))
			coef = append(coef, c.JobTypes[j].Demand)
		}
		for k, stype := range c.DataCenters[i].Servers {
			idx = append(idx, bOffset[i]+k)
			coef = append(coef, -stype.Speed)
		}
		if err := prob.AddSparseConstraint(idx, coef, lp.LE, 0); err != nil {
			return nil, nil, 0, err
		}
		// Auxiliary resource constraints (footnote 3 vector demands).
		for r := 0; r < c.Aux(); r++ {
			var aIdx []int
			var aCoef []float64
			for j := 0; j < c.J(); j++ {
				if r < len(c.JobTypes[j].AuxDemand) && c.JobTypes[j].AuxDemand[r] > 0 {
					aIdx = append(aIdx, hIndex(i, j))
					aCoef = append(aCoef, c.JobTypes[j].AuxDemand[r])
				}
			}
			if len(aIdx) == 0 {
				continue
			}
			if err := prob.AddSparseConstraint(aIdx, aCoef, lp.LE, c.DataCenters[i].AuxCapacity[r]); err != nil {
				return nil, nil, 0, err
			}
		}
		for j := 0; j < c.J(); j++ {
			if err := prob.AddUpperBound(hIndex(i, j), hCap[i][j]); err != nil {
				return nil, nil, 0, err
			}
		}
		for k := 0; k < c.K(i); k++ {
			if err := prob.AddUpperBound(bOffset[i]+k, st.Avail[i][k]); err != nil {
				return nil, nil, 0, err
			}
		}
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, 0, fmt.Errorf("slot LP is %v, want optimal", sol.Status)
	}

	process = make([][]float64, c.N())
	busy = make([][]float64, c.N())
	for i := 0; i < c.N(); i++ {
		process[i] = make([]float64, c.J())
		busy[i] = make([]float64, c.K(i))
		for j := 0; j < c.J(); j++ {
			process[i][j] = sol.X[hIndex(i, j)]
		}
		for k := 0; k < c.K(i); k++ {
			busy[i][k] = sol.X[bOffset[i]+k]
		}
	}
	return process, busy, sol.Objective, nil
}
