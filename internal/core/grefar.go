package core

import (
	"fmt"

	"grefar/internal/fairness"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/solve"
	"grefar/internal/tariff"
	"grefar/internal/telemetry"
)

// Config carries GreFar's two control knobs (paper section IV-B).
type Config struct {
	// V >= 0 is the cost-delay parameter: larger V weighs the
	// energy-fairness cost more heavily against queue drift, reducing cost
	// at the expense of O(V) queue backlog (Theorem 1).
	V float64
	// Beta >= 0 is the energy-fairness parameter: 0 ignores fairness
	// entirely; large values prioritize fairness over energy cost.
	Beta float64
	// Fairness selects the fairness function whose penalty enters the slot
	// objective (paper footnote 5 allows any). Nil selects the paper's
	// quadratic deviation function (eq. 3) with the cluster's account
	// weights.
	Fairness FairnessTerm
	// Tariff maps each site's energy draw to cost (paper section III-A2
	// allows increasing convex functions). Nil selects the paper's baseline
	// linear pricing cost = phi * energy, for which the closed-form greedy
	// slot solver applies.
	Tariff tariff.Tariff
	// FW tunes the Frank-Wolfe solver used when Beta > 0. Zero values select
	// defaults; invalid values (negative MaxIters, NaN or negative Tol) are
	// rejected at New with ErrBadConfig.
	FW solve.FWOptions
	// WarmStart seeds each slot's convex solve (Beta > 0) with the previous
	// slot's iterate, repaired against the current slot's availability caps,
	// instead of cold-starting from zero. Consecutive slot problems differ
	// only by backlogs, prices, and availability, so the previous optimum is
	// usually a few iterations from the new one. Off by default: results are
	// equal within the solver tolerance but not bit-identical, and golden
	// traces pin the cold-start behavior.
	WarmStart bool
	// Routing selects how routing ties are broken (sites with equal local
	// backlog have identical coefficients in (14), so the minimizer is not
	// unique). The default SplitTies emulates the uncapped paper algorithm,
	// which routes r_max to every tied site; FirstSiteWins is the naive
	// alternative kept for the DESIGN.md ablation.
	Routing RoutingRule
	// Observer, when non-nil, receives one telemetry.SlotEvent per Decide
	// call (origin "decide") carrying the backlog snapshot, the drift and
	// V*g(t) penalty decomposition of the chosen action, and solver
	// statistics. Nil costs nothing on the decision path.
	Observer telemetry.SlotObserver
	// Solver selects the slot-solver implementation. SolverAuto (the zero
	// value) keeps the monolithic dense path and its byte-identical golden
	// traces; SolverSparse runs the same algorithms on the active-pair
	// compact representation; SolverDecomposed additionally splits the
	// beta > 0 solve into per-data-center blocks coordinated by sharing ADMM.
	// The sparse kinds require a cluster without auxiliary resources and a
	// linear (or absent) tariff; New rejects other combinations.
	Solver SolverKind
	// SolverWorkers bounds the concurrency of the decomposed solver's block
	// stage: <= 1 solves blocks serially on the calling goroutine, larger
	// values pool them on internal/runner. Results are byte-identical at any
	// worker count. Ignored by the monolithic and sparse solvers.
	SolverWorkers int
}

// SolverKind selects the slot-solver implementation (Config.Solver).
type SolverKind int

const (
	// SolverAuto picks the historical monolithic dense solver (the default).
	SolverAuto SolverKind = iota
	// SolverMonolithic pins the monolithic dense solver explicitly.
	SolverMonolithic
	// SolverSparse runs the slot solve on the active-pair compact
	// representation: identical algorithms, bit-identical decisions,
	// O(active) work instead of O(N*J).
	SolverSparse
	// SolverDecomposed runs the sparse representation with the beta > 0
	// solve block-decomposed per data center (sharing ADMM + Frank-Wolfe
	// polish), optionally pooling block solves across SolverWorkers.
	SolverDecomposed
)

// String names the solver kind as it appears in telemetry and flags.
func (k SolverKind) String() string {
	switch k {
	case SolverAuto:
		return "auto"
	case SolverMonolithic:
		return "monolithic"
	case SolverSparse:
		return "sparse"
	case SolverDecomposed:
		return "decomposed"
	}
	return fmt.Sprintf("SolverKind(%d)", int(k))
}

// ApplyScheduler replaces the whole configuration with c, making a Config
// literal usable wherever a scheduler option is accepted. This is the
// compatibility bridge for the pre-options construction style
// (grefar.New(cluster, grefar.Config{...})): a Config used as an option
// resets every knob, so combine it with finer-grained options only before
// them, not after.
//
// Deprecated: pass functional options (WithV, WithBeta, WithTariff, ...)
// instead of a positional Config literal; the struct form remains supported
// but new knobs will only get option constructors.
func (c Config) ApplyScheduler(dst *Config) { *dst = c }

// RoutingRule selects the tie-breaking behavior of the routing step.
type RoutingRule int

const (
	// SplitTies divides the available jobs evenly across sites whose
	// backlogs tie (the default, matching the uncapped paper algorithm).
	SplitTies RoutingRule = iota
	// FirstSiteWins gives the whole remaining budget to the lowest-index
	// site of a tie group. At small V this hides expensive sites by
	// accident of ordering; the ablation quantifies the distortion.
	FirstSiteWins
)

// GreFar is the paper's online scheduling algorithm. It implements
// sched.Scheduler using only per-slot observable information: no statistics
// of arrivals, prices, or availability are ever used.
type GreFar struct {
	cluster *model.Cluster
	cfg     Config
	weights []float64 // account target shares gamma_m

	// ws is the per-scheduler solver workspace. Its single-owner rule makes
	// Decide NOT safe for concurrent calls on one GreFar instance; parallel
	// sweeps must construct one scheduler per run (see decideScratch).
	ws *decideScratch

	// Warm-start outcome counters, cumulative over the scheduler's lifetime
	// and surfaced in every SolveStats when WarmStart is on.
	warmHits, warmRepairs, warmFallbacks int

	// reportOpts marks a scheduler whose solver options depart from the
	// defaults; the effective options are then attached to its first
	// telemetry event (optsReported latches). Default-configured schedulers
	// never attach them, keeping their event streams byte-identical to
	// pre-option traces.
	reportOpts   bool
	optsReported bool
}

var _ sched.Scheduler = (*GreFar)(nil)

// New builds a GreFar scheduler for the cluster. A malformed cluster yields
// an error wrapping model.ErrInvalidCluster; a bad knob yields one wrapping
// ErrBadConfig.
func New(c *model.Cluster, cfg Config) (*GreFar, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil cluster", model.ErrInvalidCluster)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if cfg.V < 0 {
		return nil, fmt.Errorf("%w: cost-delay parameter V = %v is negative", ErrBadConfig, cfg.V)
	}
	if cfg.Beta < 0 {
		return nil, fmt.Errorf("%w: energy-fairness parameter beta = %v is negative", ErrBadConfig, cfg.Beta)
	}
	if err := cfg.FW.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	weights := make([]float64, c.M())
	for m, a := range c.Accounts {
		weights[m] = a.Weight
	}
	if cfg.Fairness == nil {
		quad, err := fairness.NewQuadratic(weights)
		if err != nil {
			return nil, err
		}
		cfg.Fairness = quad
	}
	if cfg.Solver < SolverAuto || cfg.Solver > SolverDecomposed {
		return nil, fmt.Errorf("%w: unknown solver kind %d", ErrBadConfig, int(cfg.Solver))
	}
	if cfg.SolverWorkers < 0 {
		return nil, fmt.Errorf("%w: solver worker count %d is negative", ErrBadConfig, cfg.SolverWorkers)
	}
	g := &GreFar{cluster: c, cfg: cfg, weights: weights}
	if g.useSparse() {
		if c.Aux() > 0 {
			return nil, fmt.Errorf("%w: solver %v requires a cluster without auxiliary resources", ErrBadConfig, cfg.Solver)
		}
		if cfg.Tariff != nil {
			if _, isLinear := cfg.Tariff.(tariff.Linear); !isLinear {
				return nil, fmt.Errorf("%w: solver %v requires a linear (or absent) tariff", ErrBadConfig, cfg.Solver)
			}
		}
	}
	g.ws = newDecideScratch(c, !g.linearSlot())
	if g.useSparse() {
		g.ws.sparse = newSparseSlot(c)
		if g.ws.warm == nil {
			// The sparse membership rule and state restore read the dense warm
			// buffer even for linear slots.
			g.ws.warm = make([]float64, g.ws.layout.total)
		}
	}
	if cfg.Solver == SolverDecomposed {
		g.ws.dec = newDecomposedScratch(c)
	}
	g.reportOpts = cfg.FW != (solve.FWOptions{}) || cfg.WarmStart ||
		cfg.Solver != SolverAuto || cfg.SolverWorkers != 0
	return g, nil
}

// Name implements sched.Scheduler.
func (g *GreFar) Name() string {
	return fmt.Sprintf("grefar(V=%g,beta=%g)", g.cfg.V, g.cfg.Beta)
}

// Decide implements sched.Scheduler: it minimizes the drift-plus-penalty
// expression (14) for slot t.
func (g *GreFar) Decide(t int, st *model.State, q queue.Lengths) (*model.Action, error) {
	act := model.NewAction(g.cluster)
	g.decideRouting(q, act)
	var stats *telemetry.SolveStats
	if g.cfg.Observer != nil {
		stats = &telemetry.SolveStats{}
	}
	if err := g.decideProcessing(st, q, act, stats); err != nil {
		return nil, err
	}
	if g.cfg.Observer != nil {
		ev := g.slotEvent(t, st, q, act, stats)
		if telemetry.WantsDetail(g.cfg.Observer) {
			ev.Detail = &telemetry.SlotDetail{
				State:  st.Clone(),
				Action: act.Clone(),
				Pre:    q.Clone(),
			}
		}
		g.cfg.Observer.ObserveSlot(ev)
	}
	return act, nil
}

// slotEvent assembles the origin-"decide" telemetry event for the chosen
// action: the pre-decision backlog snapshot, the drift and penalty
// components whose sum is the drift-plus-penalty value (14) the decision
// minimizes, and the solver statistics collected by decideProcessing.
func (g *GreFar) slotEvent(t int, st *model.State, q queue.Lengths, act *model.Action, stats *telemetry.SolveStats) telemetry.SlotEvent {
	c := g.cluster
	ev := telemetry.SlotEvent{
		Slot:      t,
		Origin:    telemetry.OriginDecide,
		Scheduler: g.Name(),
		// A scheduler sees the whole cluster, not one site.
		DataCenter: -1,
		Solve:      stats,
	}
	for _, v := range q.Central {
		ev.CentralBacklog += v
	}
	ev.LocalBacklog = make([]float64, c.N())
	for i := range q.Local {
		for _, v := range q.Local[i] {
			ev.LocalBacklog[i] += v
		}
	}
	ev.TotalBacklog = ev.CentralBacklog
	for _, v := range ev.LocalBacklog {
		ev.TotalBacklog += v
	}

	// Penalty = V*g(t) where g = billed energy + beta*P(alloc, total); the
	// fairness term's P equals -f, so this matches eq. 6.
	ev.Energy = act.BilledCost(c, st, g.cfg.Tariff)
	fairPenalty := 0.0
	if g.cfg.Beta != 0 {
		p := g.cfg.Fairness.Penalty(act.AccountWork(c), st.TotalResource(c))
		fairPenalty = g.cfg.Beta * p
		ev.Fairness = -p
	}
	ev.Penalty = g.cfg.V * (ev.Energy + fairPenalty)

	// Drift: the routing and processing queue terms of (14).
	for j := 0; j < c.J(); j++ {
		for _, i := range c.JobTypes[j].Eligible {
			r := float64(act.Route[i][j])
			ev.Drift += q.Local[i][j]*(r-act.Process[i][j]) - q.Central[j]*r
		}
	}
	ev.Objective = ev.Drift + ev.Penalty
	return ev
}

// decideRouting solves the routing part of (14). The routing terms are
//
//	sum_j sum_{i in D_j} (q_{i,j} - Q_j) * r_{i,j},
//
// linear and separable, so the paper's minimizer routes r_max to every
// eligible site whose local backlog is below the central backlog. Because
// this simulator moves real jobs, the total routed per type is additionally
// capped at the central queue content, spent on the most-negative
// coefficients (the least-backlogged sites) first.
func (g *GreFar) decideRouting(q queue.Lengths, act *model.Action) {
	c := g.cluster
	for j := 0; j < c.J(); j++ {
		jt := c.JobTypes[j]
		qj := q.Central[j]
		available := int(qj)
		if available <= 0 {
			continue
		}
		// Eligible sites with negative routing coefficient, most negative
		// (smallest local backlog) first.
		order := g.ws.order[:0]
		for _, i := range jt.Eligible {
			if q.Local[i][j] < qj {
				order = append(order, i)
			}
		}
		// Insertion sort by (backlog, site index): the site list is a handful
		// of entries and this runs once per job type per slot, where
		// sort.Slice's reflection-based swapping dominated the routing
		// profile. The comparator is a strict total order (index tie-break),
		// so the result is identical to any correct sort.
		for a := 1; a < len(order); a++ {
			for b := a; b > 0; b-- {
				qa, qb := q.Local[order[b]][j], q.Local[order[b-1]][j]
				if qa > qb || (qa == qb && order[b] > order[b-1]) {
					break
				}
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		// Fill strictly better (smaller-backlog) sites first; sites whose
		// backlogs tie have identical coefficients in (14), and the
		// uncapped paper algorithm routes r_max to each of them, so the
		// capped emulation splits the remaining jobs evenly across the tie
		// group instead of privileging the lowest index.
		budget := routeBudgetFor(jt)
		for a := 0; a < len(order) && available > 0; {
			b := a + 1
			for b < len(order) && q.Local[order[b]][j] == q.Local[order[a]][j] {
				b++
			}
			group := order[a:b]
			if g.cfg.Routing == FirstSiteWins {
				group = group[:1]
			}
			for g, remaining := 0, available; g < len(group); g++ {
				share := remaining / len(group)
				if g < remaining%len(group) {
					share++
				}
				if share > budget {
					share = budget
				}
				act.Route[group[g]][j] = share
				available -= share
			}
			a = b
		}
	}
}

func routeBudgetFor(jt model.JobType) int {
	if jt.MaxRoute > 0 {
		return jt.MaxRoute
	}
	return 1 << 30
}

// decideProcessing solves the processing part of (14):
//
//	minimize  V*e(t) + V*beta * sum_m (r_m/R - gamma_m)^2 - sum_{i,j} q_{i,j} h_{i,j}
//
// over the capacity polytope (11). With beta = 0 the problem is linear and
// the greedy exchange solves it exactly, realizing the paper's threshold
// rule: process type j at site i only while q_{i,j}/d_j > V * phi_i * p_k/s_k.
// With beta > 0 it is a convex QP solved by Frank-Wolfe with the greedy as
// its linear oracle and exact line search.
func (g *GreFar) decideProcessing(st *model.State, q queue.Lengths, act *model.Action, stats *telemetry.SolveStats) error {
	if g.useSparse() {
		return g.decideProcessingSparse(st, q, act, stats)
	}
	c := g.cluster
	ws := g.ws

	// Linear coefficients and per-pair processing caps shared by all paths,
	// rebuilt in the scheduler's workspace each slot.
	slotCoefficientsInto(c, g.cfg, st, q, ws.cH, ws.cB, ws.hCap)
	cH, cB, hCap := ws.cH, ws.cB, ws.hCap

	var process [][]float64
	switch {
	case g.linearSlot() && c.Aux() == 0:
		la, err := solveLinearSlotWS(&ws.lin, c, st, cH, cB, hCap)
		if err != nil {
			return err
		}
		process = la.process
		if stats != nil {
			*stats = telemetry.SolveStats{Solver: telemetry.SolverGreedy, Iterations: 1, Converged: true}
		}
	case g.linearSlot():
		// Auxiliary resource constraints (footnote 3) break the
		// single-constraint greedy; the simplex solves the linear slot
		// problem exactly.
		p, _, _, err := solveSlotLPGeneral(c, st, cH, cB, hCap)
		if err != nil {
			return err
		}
		process = p
		if stats != nil {
			*stats = telemetry.SolveStats{Solver: telemetry.SolverLP, Iterations: 1, Converged: true}
		}
	default:
		var err error
		process, err = g.solveQuadraticSlot(st, cH, cB, hCap, stats)
		if err != nil {
			return err
		}
	}

	// Provision the cheapest busy-server mix for the chosen work; this is
	// optimal given h because b enters the objective linearly with
	// non-negative cost. The cheapest-first server order is cluster-static,
	// so the precomputed ws.provOrder avoids re-sorting every slot.
	for i := 0; i < c.N(); i++ {
		copy(act.Process[i], process[i])
		if _, err := model.ProvisionOrdered(c.DataCenters[i], ws.provOrder[i], st.Avail[i], act.Busy[i], act.WorkAt(c, i)); err != nil {
			return fmt.Errorf("data center %d: %w", i, err)
		}
	}
	return nil
}

func processBudgetFor(jt model.JobType, queued float64) float64 {
	b := queued
	if jt.MaxProcess > 0 && jt.MaxProcess < b {
		b = jt.MaxProcess
	}
	return b
}

// linearSlot reports whether the slot problem is linear, i.e. exactly
// solvable by the greedy exchange: no fairness term in play and a linear
// (or absent) tariff.
func (g *GreFar) linearSlot() bool {
	if g.cfg.V == 0 {
		return true // cost is irrelevant; greedy processes everything queued
	}
	if g.cfg.Beta != 0 {
		return false
	}
	if g.cfg.Tariff == nil {
		return true
	}
	_, linear := g.cfg.Tariff.(tariff.Linear)
	return linear
}

// solveQuadraticSlot handles beta > 0 by Frank-Wolfe over the concatenated
// (h, b) variables. The fairness penalty V*beta*P(alloc(h)) couples job
// types of the same account across sites; everything else is linear. With
// the paper's quadratic fairness the program is a QP solved with exact line
// search; other convex penalties (alpha-fair) use diminishing steps.
func (g *GreFar) solveQuadraticSlot(st *model.State, cH, cB, hCap [][]float64, stats *telemetry.SolveStats) ([][]float64, error) {
	c := g.cluster
	ws := g.ws
	l := ws.layout

	// Non-linear tariffs move the energy cost out of the linear part and
	// into the convex tariff term.
	nonlinearTariff := false
	if g.cfg.Tariff != nil {
		_, isLinear := g.cfg.Tariff.(tariff.Linear)
		nonlinearTariff = !isLinear
	}
	linear := ws.linear
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			linear[l.hIndex(i, j)] = cH[i][j]
		}
		for k := 0; k < c.K(i); k++ {
			if nonlinearTariff {
				linear[l.bOff[i]+k] = 0
			} else {
				linear[l.bOff[i]+k] = cB[i][k]
			}
		}
	}
	// The objective's structural maps (per-variable account, demand, power)
	// depend only on the cluster and configuration, so the objective is built
	// once and refreshed with the slot's prices and resource total thereafter.
	if ws.obj == nil {
		ws.obj = newSlotObjective(c, linear, g.cfg.V*g.cfg.Beta, st.TotalResource(c), g.cfg.Fairness)
		if nonlinearTariff {
			ws.obj.attachTariff(c, st, g.cfg.Tariff, g.cfg.V)
		}
		ws.wrapped = wrapSlotObjective(ws.obj)
	} else {
		ws.obj.total = st.TotalResource(c)
		if nonlinearTariff {
			ws.obj.refreshTariff(c, st)
		}
	}

	oracle := slotOracleWS(c, st, hCap, ws.gradH, ws.gradB, &ws.lin)

	opts := g.cfg.FW
	if opts.MaxIters <= 0 {
		opts.MaxIters = 150
	}

	// Starting point: the previous slot's iterate when warm-starting is on
	// and the iterate survives repair against this slot's caps, the zero
	// vector otherwise. The repair mutates ws.warm in place; on fallback the
	// half-repaired buffer is simply not used (and is overwritten by this
	// slot's result below).
	start := ws.x0
	warm := ""
	if g.cfg.WarmStart {
		outcome := warmFallback
		if ws.warmValid {
			outcome = repairWarmStart(c, st, hCap, l, ws.warm)
		}
		switch outcome {
		case warmHit:
			start = ws.warm
			warm = telemetry.WarmHit
			g.warmHits++
		case warmRepaired:
			start = ws.warm
			warm = telemetry.WarmRepaired
			g.warmRepairs++
		default:
			warm = telemetry.WarmFallback
			g.warmFallbacks++
		}
	}
	if &start[0] == &ws.x0[0] {
		for j := range ws.x0 {
			ws.x0[j] = 0
		}
	}
	res, err := solve.FrankWolfeWS(&ws.fw, ws.wrapped, oracle, start, opts)
	if err != nil {
		return nil, fmt.Errorf("frank-wolfe: %w", err)
	}
	if g.cfg.WarmStart {
		copy(ws.warm, res.X)
		ws.warmValid = true
	}
	if stats != nil {
		*stats = telemetry.SolveStats{
			Solver:     telemetry.SolverFrankWolfe,
			Iterations: res.Iters,
			Converged:  res.Converged,
			Residual:   res.Gap,
		}
		if res.Variant != solve.VariantVanilla {
			stats.Variant = res.Variant
		}
		g.attachWarmStats(stats, warm)
		g.attachSolverOptions(stats, opts)
	}

	process := ws.process
	for i := range process {
		for j := 0; j < c.J(); j++ {
			h := res.X[l.hIndex(i, j)]
			if h < 0 {
				h = 0
			}
			if h > hCap[i][j] {
				h = hCap[i][j]
			}
			process[i][j] = h
		}
	}
	return process, nil
}
