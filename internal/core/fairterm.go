package core

import (
	"grefar/internal/model"
	"grefar/internal/solve"
	"grefar/internal/tariff"
)

// FairnessTerm is the pluggable convex fairness penalty the slot optimizer
// adds when beta > 0: P(alloc) should equal -f(alloc, total) for the chosen
// fairness function f, evaluated on per-account allocated work. The paper's
// footnote 5 ("our analysis also applies if other fairness functions are
// considered") is realized by swapping this term; fairness.Quadratic (the
// paper's eq. 3) and fairness.AlphaFair both satisfy it.
type FairnessTerm interface {
	// Penalty evaluates P(alloc) given the total available resource.
	Penalty(alloc []float64, total float64) float64
	// PenaltyGrad writes dP/d(alloc) into grad (len = number of accounts).
	PenaltyGrad(alloc []float64, total float64, grad []float64)
}

// CurvedFairnessTerm is implemented by quadratic penalties that can report
// exact directional curvature, enabling exact Frank-Wolfe line search.
type CurvedFairnessTerm interface {
	FairnessTerm
	// PenaltyCurvatureAlong returns dir' H dir for a direction expressed in
	// per-account allocation space.
	PenaltyCurvatureAlong(dir []float64, total float64) float64
}

// slotObjective is the general convex slot program over the concatenated
// variables x = [h (N*J) ; b (sum K)]:
//
//	Linear.x + V*beta * P(alloc(h)) + V * sum_i [T(phi_i, base_i+E_i(b)) - T(phi_i, base_i)]
//
// where alloc_m(h) = sum over h-variables of account m of d_j*h_{i,j} and
// E_i(b) = sum_k p_k*b_{i,k}. The tariff term is present only under
// non-linear pricing (the section III-A2 extension); with the baseline
// linear tariff the energy cost is folded into the linear coefficients.
type slotObjective struct {
	linear []float64
	vbeta  float64
	term   FairnessTerm
	total  float64 // R(t)

	nH      int       // number of h variables
	account []int     // account of each h variable
	demand  []float64 // demand of each h variable
	m       int       // number of accounts

	// Non-linear tariff support (nil trf means the energy cost is linear
	// and already inside `linear`).
	trf   tariff.Tariff
	v     float64   // V, scaling the tariff term
	price []float64 // phi_i
	base  []float64 // base energy per site
	power []float64 // per b-variable: p_k
	bSite []int     // per b-variable: site index

	// scratch buffers (the optimizer is single-threaded per Decide call)
	alloc     []float64
	allocGrad []float64
	allocDir  []float64
	energyBuf []float64
}

var _ solve.Objective = (*slotObjective)(nil)

func newSlotObjective(c *model.Cluster, linear []float64, vbeta, total float64, term FairnessTerm) *slotObjective {
	nH := c.N() * c.J()
	so := &slotObjective{
		linear:    linear,
		vbeta:     vbeta,
		term:      term,
		total:     total,
		nH:        nH,
		account:   make([]int, nH),
		demand:    make([]float64, nH),
		m:         c.M(),
		alloc:     make([]float64, c.M()),
		allocGrad: make([]float64, c.M()),
		allocDir:  make([]float64, c.M()),
	}
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.J(); j++ {
			v := i*c.J() + j
			so.account[v] = c.JobTypes[j].Account
			so.demand[v] = c.JobTypes[j].Demand
		}
	}
	return so
}

// attachTariff activates the non-linear tariff term. The b-columns of the
// linear coefficient vector must be zero when this is used.
func (so *slotObjective) attachTariff(c *model.Cluster, st *model.State, trf tariff.Tariff, v float64) {
	so.trf = trf
	so.v = v
	so.price = st.Price
	so.base = make([]float64, c.N())
	so.energyBuf = make([]float64, c.N())
	nB := 0
	for i := 0; i < c.N(); i++ {
		so.base[i] = st.BaseEnergyAt(i)
		nB += c.K(i)
	}
	so.power = make([]float64, nB)
	so.bSite = make([]int, nB)
	v2 := 0
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(i); k++ {
			so.power[v2] = c.DataCenters[i].Servers[k].Power
			so.bSite[v2] = i
			v2++
		}
	}
}

// refreshTariff updates the tariff term's per-slot state (prices, base
// energy) in place; the per-variable power and site maps are cluster-static
// and stay untouched. Only valid after attachTariff.
func (so *slotObjective) refreshTariff(c *model.Cluster, st *model.State) {
	so.price = st.Price
	for i := 0; i < c.N(); i++ {
		so.base[i] = st.BaseEnergyAt(i)
	}
}

// fillEnergy computes per-site batch energy from the b-part of x.
func (so *slotObjective) fillEnergy(x []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for v, p := range so.power {
		out[so.bSite[v]] += p * x[so.nH+v]
	}
}

func (so *slotObjective) fillAlloc(x []float64, out []float64) {
	for m := range out {
		out[m] = 0
	}
	for v := 0; v < so.nH; v++ {
		out[so.account[v]] += so.demand[v] * x[v]
	}
}

// Value implements solve.Objective.
func (so *slotObjective) Value(x []float64) float64 {
	var v float64
	for j, c := range so.linear {
		v += c * x[j]
	}
	if so.vbeta > 0 && so.total > 0 {
		so.fillAlloc(x, so.alloc)
		v += so.vbeta * so.term.Penalty(so.alloc, so.total)
	}
	if so.trf != nil {
		so.fillEnergy(x, so.energyBuf)
		for i, e := range so.energyBuf {
			v += so.v * (so.trf.Cost(so.price[i], so.base[i]+e) - so.trf.Cost(so.price[i], so.base[i]))
		}
	}
	return v
}

// Grad implements solve.Objective.
func (so *slotObjective) Grad(x, grad []float64) {
	copy(grad, so.linear)
	if so.vbeta > 0 && so.total > 0 {
		so.fillAlloc(x, so.alloc)
		so.term.PenaltyGrad(so.alloc, so.total, so.allocGrad)
		for v := 0; v < so.nH; v++ {
			grad[v] += so.vbeta * so.allocGrad[so.account[v]] * so.demand[v]
		}
	}
	if so.trf != nil {
		so.fillEnergy(x, so.energyBuf)
		for v, p := range so.power {
			i := so.bSite[v]
			grad[so.nH+v] += so.v * so.trf.Marginal(so.price[i], so.base[i]+so.energyBuf[i]) * p
		}
	}
}

// curvedSlotObjective wraps a slotObjective whose fairness term is
// quadratic, exposing exact directional curvature so Frank-Wolfe can use
// exact line search. Non-quadratic terms (alpha-fair) deliberately do NOT
// expose CurvatureAlong, which makes the solver fall back to its provably
// convergent diminishing step rule.
type curvedSlotObjective struct {
	*slotObjective
	curved CurvedFairnessTerm
}

var _ solve.CurvatureAlong = (*curvedSlotObjective)(nil)

// CurvatureAlong implements solve.CurvatureAlong.
func (co *curvedSlotObjective) CurvatureAlong(_, dir []float64) float64 {
	var v float64
	if co.vbeta > 0 && co.total > 0 {
		co.fillAlloc(dir, co.allocDir)
		v += co.vbeta * co.curved.PenaltyCurvatureAlong(co.allocDir, co.total)
	}
	if co.trf != nil {
		curvedTrf, ok := co.trf.(tariff.SecondDerivative)
		if ok {
			co.fillEnergy(dir, co.energyBuf)
			for i, de := range co.energyBuf {
				v += co.v * curvedTrf.CostCurvature(co.price[i]) * de * de
			}
		}
	}
	return v
}

// wrapSlotObjective selects the curved variant when exact directional
// curvature is available: the fairness term must be quadratic (or absent)
// and the tariff must have a constant second derivative (or be absent).
// Otherwise the solver falls back to the provably convergent diminishing
// step rule.
func wrapSlotObjective(so *slotObjective) solve.Objective {
	curved, fairOK := so.term.(CurvedFairnessTerm)
	if so.vbeta == 0 {
		fairOK = true
	}
	tariffOK := so.trf == nil
	if !tariffOK {
		_, tariffOK = so.trf.(tariff.SecondDerivative)
	}
	if fairOK && tariffOK {
		return &curvedSlotObjective{slotObjective: so, curved: curved}
	}
	return so
}
