// Package core implements GreFar, the paper's online drift-plus-penalty
// scheduling algorithm (Algorithm 1). At each slot it observes only the
// current data center state x(t) and queue backlogs Theta(t) and minimizes
//
//	V*g(t) - sum_j Q_j(t) * [sum_{i in D_j} r_{i,j}(t)]
//	       + sum_j sum_{i in D_j} q_{i,j}(t) * [r_{i,j}(t) - h_{i,j}(t)]   (14)
//
// over the feasible actions, where g(t) = e(t) - beta*f(t) is the
// energy-fairness cost. The routing part is linear and separable and is
// solved in closed form; the processing part is solved exactly by a greedy
// exchange when beta = 0 and by Frank-Wolfe (whose linear oracle is that same
// greedy) when beta > 0.
package core

import (
	"fmt"

	"grefar/internal/model"
)

// sortSegsByDensity stable-sorts capacity segments by ascending cost
// density. The greedy runs once per site per slot — and once per Frank-Wolfe
// oracle call — on a handful of server types, so a reflection-free stable
// insertion sort beats sort.Slice by a wide margin while preserving the tied
// ordering sort.Slice produced on short inputs (its small-slice path is the
// same stable insertion sort, and golden traces pin the tie behavior).
func sortSegsByDensity(segs []segment) {
	for a := 1; a < len(segs); a++ {
		for b := a; b > 0 && segs[b].density < segs[b-1].density; b-- {
			segs[b], segs[b-1] = segs[b-1], segs[b]
		}
	}
}

// sortJobsByDensity stable-sorts job demands by descending reward density;
// see sortSegsByDensity for why insertion sort.
func sortJobsByDensity(jobs []jobDemand) {
	for a := 1; a < len(jobs); a++ {
		for b := a; b > 0 && jobs[b].density > jobs[b-1].density; b-- {
			jobs[b], jobs[b-1] = jobs[b-1], jobs[b]
		}
	}
}

// linearAssignment is the solution of one linear slot subproblem.
type linearAssignment struct {
	process [][]float64 // h_{i,j}
	busy    [][]float64 // b_{i,k}
	value   float64     // objective value achieved
}

// segment is one server-type capacity tranche with a linear activation cost.
type segment struct {
	serverType int
	cap        float64 // work units available
	density    float64 // cost per unit work, cB/s
	speed      float64
}

// jobDemand is one job type's processable work with a linear reward.
type jobDemand struct {
	job     int
	work    float64 // d_j * processable jobs
	density float64 // reward per unit work, -cH/d
	demand  float64
}

// solveLinearSlot minimizes
//
//	sum_{i,j} cH[i][j]*h_{i,j} + sum_{i,k} cB[i][k]*b_{i,k}
//
// subject to the per-data-center capacity coupling (paper eq. 11),
// 0 <= b_{i,k} <= avail[i][k] and 0 <= h_{i,j} <= hCap[i][j]. All cB must be
// non-negative (true for GreFar, where cB = V*phi*p); the problem then
// decomposes per data center and is solved exactly by matching job types in
// decreasing reward density with capacity segments in increasing cost
// density while the exchange is profitable.
//
// This routine doubles as the Frank-Wolfe linear oracle for the beta > 0
// case, because the gradient of the quadratic slot objective with respect to
// b is exactly the constant cB.
func solveLinearSlot(c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) (*linearAssignment, error) {
	return solveLinearSlotWS(newLinearScratch(c), c, st, cH, cB, hCap)
}

// solveLinearSlotWS is solveLinearSlot running entirely inside the given
// workspace: the returned assignment aliases ws.out and is valid only until
// the next call with the same workspace. The Decide hot path and the
// Frank-Wolfe oracle (one greedy solve per iteration) both go through here
// with a per-scheduler workspace, making the greedy exchange allocation-free.
func solveLinearSlotWS(ws *linearScratch, c *model.Cluster, st *model.State, cH, cB, hCap [][]float64) (*linearAssignment, error) {
	out := &ws.out
	out.value = 0
	for i := 0; i < c.N(); i++ {
		for j := range out.process[i] {
			out.process[i][j] = 0
		}
		for k := range out.busy[i] {
			out.busy[i][k] = 0
		}

		// Build capacity segments sorted by cost density.
		dc := c.DataCenters[i]
		segs := ws.segs[:0]
		for k, stype := range dc.Servers {
			if cB[i][k] < 0 {
				return nil, fmt.Errorf("data center %d server type %d: negative capacity cost %v", i, k, cB[i][k])
			}
			capWork := st.Avail[i][k] * stype.Speed
			if capWork <= 0 {
				continue
			}
			segs = append(segs, segment{
				serverType: k,
				cap:        capWork,
				density:    cB[i][k] / stype.Speed,
				speed:      stype.Speed,
			})
		}
		sortSegsByDensity(segs)

		// Build job demands sorted by reward density.
		jobs := ws.jobs[:0]
		for j := 0; j < c.J(); j++ {
			if cH[i][j] >= 0 || hCap[i][j] <= 0 {
				continue // processing this type here cannot reduce the objective
			}
			d := c.JobTypes[j].Demand
			jobs = append(jobs, jobDemand{
				job:     j,
				work:    hCap[i][j] * d,
				density: -cH[i][j] / d,
				demand:  d,
			})
		}
		sortJobsByDensity(jobs)

		// Exchange: highest-reward work onto cheapest capacity, while the
		// reward strictly exceeds the cost.
		seg := 0
		for _, jd := range jobs {
			remaining := jd.work
			for remaining > 1e-15 && seg < len(segs) {
				s := &segs[seg]
				if jd.density <= s.density {
					break // this and all costlier segments are unprofitable
				}
				take := remaining
				if take > s.cap {
					take = s.cap
				}
				out.process[i][jd.job] += take / jd.demand
				out.busy[i][s.serverType] += take / s.speed
				out.value += take * (s.density - jd.density)
				s.cap -= take
				remaining -= take
				if s.cap <= 1e-15 {
					seg++
				}
			}
			if seg >= len(segs) {
				break
			}
		}
	}
	return out, nil
}
