package core

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
	"grefar/internal/tariff"
)

// twoSiteCluster builds two identical sites so tariff-driven load spreading
// is the only asymmetry.
func twoSiteCluster() *model.Cluster {
	return &model.Cluster{
		DataCenters: []model.DataCenter{
			{Name: "a", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
			{Name: "b", Servers: []model.ServerType{{Name: "s", Speed: 1, Power: 1}}},
		},
		JobTypes: []model.JobType{
			{Name: "j", Demand: 1, Eligible: []int{0, 1}, Account: 0, MaxProcess: 1000},
		},
		Accounts: []model.Account{{Name: "o", Weight: 1}},
	}
}

func TestQuadraticTariffSpreadsLoad(t *testing.T) {
	// Under linear pricing with equal prices, processing 40 jobs at one
	// site or across two sites costs the same. Under a convex tariff,
	// splitting halves the marginal price — the optimizer must spread.
	c := twoSiteCluster()
	trf, err := tariff.NewQuadratic(20)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c, Config{V: 1, Tariff: trf, FW: solve.FWOptions{MaxIters: 500, Tol: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0], st.Avail[1][0] = 100, 100
	st.Price[0], st.Price[1] = 0.4, 0.4

	// Big backlog at both sites (jobs already routed 20/20).
	q := queue.Lengths{Central: []float64{0}, Local: [][]float64{{20}, {20}}}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := act.Validate(c, st); err != nil {
		t.Fatal(err)
	}
	// Both sites should process comparable amounts (the convex tariff
	// penalizes concentration).
	w0, w1 := act.WorkAt(c, 0), act.WorkAt(c, 1)
	if w0+w1 <= 0 {
		t.Fatal("nothing processed")
	}
	if math.Abs(w0-w1) > 0.2*(w0+w1) {
		t.Errorf("load not spread: %v vs %v", w0, w1)
	}
}

func TestQuadraticTariffDefersAtHighDraw(t *testing.T) {
	// A big base load pushes the marginal price up; the scheduler should
	// process less there than at an otherwise identical idle site.
	c := twoSiteCluster()
	trf, err := tariff.NewQuadratic(20)
	if err != nil {
		t.Fatal(err)
	}
	// V chosen so the backlog reward per job (15) sits between the idle
	// site's marginal cost (V*0.4 = 4) and the loaded site's
	// (V*0.4*(1+60/20) = 16): the threshold rule must split them.
	g, err := New(c, Config{V: 10, Tariff: trf, FW: solve.FWOptions{MaxIters: 500, Tol: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0], st.Avail[1][0] = 100, 100
	st.Price[0], st.Price[1] = 0.4, 0.4
	st.BaseEnergy = []float64{60, 0} // site a already drawing heavily

	q := queue.Lengths{Central: []float64{0}, Local: [][]float64{{15}, {15}}}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if act.WorkAt(c, 0) >= act.WorkAt(c, 1) {
		t.Errorf("loaded site processed %v >= idle site %v", act.WorkAt(c, 0), act.WorkAt(c, 1))
	}
}

// TestTariffSlotMatchesProjectedGradient cross-validates the Frank-Wolfe
// tariff path against projected gradient on the h-polytope (single server
// type per site, so b is determined by h).
func TestTariffSlotMatchesProjectedGradient(t *testing.T) {
	c := refCluster(t)
	trf, err := tariff.NewQuadratic(40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{V: 7.5, Tariff: trf, FW: solve.FWOptions{MaxIters: 800, Tol: 1e-12}}
	g, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		st := stateWith(c, 40+rng.Float64()*40, []float64{
			0.3 + rng.Float64()*0.3, 0.35 + rng.Float64()*0.3, 0.45 + rng.Float64()*0.3})
		q := randomLengths(rng, c, 40)
		act, err := g.Decide(0, st, q)
		if err != nil {
			t.Fatal(err)
		}
		fwObj := tariffObjective(c, cfg, st, q, act.Process, trf)

		pgH := tariffSlotByProjectedGradient(c, cfg, st, q, trf)
		pgObj := tariffObjective(c, cfg, st, q, pgH, trf)
		if fwObj > pgObj+5e-3*(1+math.Abs(pgObj)) {
			t.Errorf("trial %d: FW objective %v worse than PG %v", trial, fwObj, pgObj)
		}
	}
}

// tariffObjective evaluates V*BilledCost - sum q*h for a processing matrix
// with optimally provisioned servers.
func tariffObjective(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths, process [][]float64, trf tariff.Tariff) float64 {
	var obj float64
	act := model.NewAction(c)
	for i := 0; i < c.N(); i++ {
		copy(act.Process[i], process[i])
		busy, _, err := model.Provision(c.DataCenters[i], st.Avail[i], act.WorkAt(c, i))
		if err != nil {
			return math.Inf(1)
		}
		act.Busy[i] = busy
		for j := 0; j < c.J(); j++ {
			obj -= q.Local[i][j] * process[i][j]
		}
	}
	return obj + cfg.V*act.BilledCost(c, st, trf)
}

// tariffSlotByProjectedGradient solves the tariff slot problem by projected
// gradient over h (valid for single-server-type sites).
func tariffSlotByProjectedGradient(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths, trf tariff.Tariff) [][]float64 {
	n := c.N() * c.J()
	obj := &tariffHObjective{c: c, cfg: cfg, st: st, q: q, trf: trf}
	caps := make([][]float64, c.N())
	weights := make([][]float64, c.N())
	for i := 0; i < c.N(); i++ {
		caps[i] = make([]float64, c.J())
		weights[i] = make([]float64, c.J())
		for j := 0; j < c.J(); j++ {
			jt := c.JobTypes[j]
			if jt.EligibleSet(i) {
				caps[i][j] = processBudgetFor(jt, q.Local[i][j])
			}
			weights[i][j] = jt.Demand
		}
	}
	project := func(x []float64) {
		for i := 0; i < c.N(); i++ {
			seg := x[i*c.J() : (i+1)*c.J()]
			solve.ProjectWeightedCapBox(seg, weights[i], caps[i], st.Capacity(c, i))
		}
	}
	res := solve.ProjectedGradient(obj, project, make([]float64, n), solve.PGOptions{MaxIters: 6000, Step: 0.2})
	out := make([][]float64, c.N())
	for i := range out {
		out[i] = append([]float64(nil), res.X[i*c.J():(i+1)*c.J()]...)
	}
	return out
}

// tariffHObjective is the slot objective in h alone for single-server sites.
type tariffHObjective struct {
	c   *model.Cluster
	cfg Config
	st  *model.State
	q   queue.Lengths
	trf tariff.Tariff
}

func (o *tariffHObjective) Value(x []float64) float64 {
	var v float64
	for i := 0; i < o.c.N(); i++ {
		stype := o.c.DataCenters[i].Servers[0]
		var work float64
		for j := 0; j < o.c.J(); j++ {
			h := x[i*o.c.J()+j]
			work += h * o.c.JobTypes[j].Demand
			v -= o.q.Local[i][j] * h
		}
		energy := work / stype.Speed * stype.Power
		base := o.st.BaseEnergyAt(i)
		v += o.cfg.V * (o.trf.Cost(o.st.Price[i], base+energy) - o.trf.Cost(o.st.Price[i], base))
	}
	return v
}

func (o *tariffHObjective) Grad(x, grad []float64) {
	for i := 0; i < o.c.N(); i++ {
		stype := o.c.DataCenters[i].Servers[0]
		var work float64
		for j := 0; j < o.c.J(); j++ {
			work += x[i*o.c.J()+j] * o.c.JobTypes[j].Demand
		}
		energy := work / stype.Speed * stype.Power
		marg := o.trf.Marginal(o.st.Price[i], o.st.BaseEnergyAt(i)+energy)
		for j := 0; j < o.c.J(); j++ {
			grad[i*o.c.J()+j] = -o.q.Local[i][j] + o.cfg.V*marg*stype.CostPerWork()*o.c.JobTypes[j].Demand
		}
	}
}
