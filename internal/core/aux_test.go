package core

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
)

// auxCluster builds a one-site cluster with a memory-like auxiliary
// resource: plenty of CPU capacity but scarce memory, shared by a
// memory-hungry and a memory-light job type.
func auxCluster() *model.Cluster {
	return &model.Cluster{
		DataCenters: []model.DataCenter{
			{
				Name:        "dc",
				Servers:     []model.ServerType{{Name: "s", Speed: 1, Power: 1}},
				AuxCapacity: []float64{100}, // memory units
			},
		},
		JobTypes: []model.JobType{
			// Memory-hungry: 20 memory per processing job.
			{Name: "hungry", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 1000, AuxDemand: []float64{20}},
			// Memory-light: 1 memory per job.
			{Name: "light", Demand: 1, Eligible: []int{0}, Account: 0, MaxProcess: 1000, AuxDemand: []float64{1}},
		},
		Accounts: []model.Account{{Name: "a", Weight: 1}},
	}
}

func TestAuxValidation(t *testing.T) {
	c := auxCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Aux() != 1 {
		t.Fatalf("Aux = %d", c.Aux())
	}
	bad := auxCluster()
	bad.JobTypes[0].AuxDemand = []float64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched aux dimensions accepted")
	}
	bad = auxCluster()
	bad.JobTypes[0].AuxDemand = []float64{-1}
	if err := bad.Validate(); err == nil {
		t.Error("negative aux demand accepted")
	}
	bad = auxCluster()
	bad.DataCenters[0].AuxCapacity = []float64{-5}
	if err := bad.Validate(); err == nil {
		t.Error("negative aux capacity accepted")
	}
}

func TestAuxActionValidate(t *testing.T) {
	c := auxCluster()
	st := model.NewState(c)
	st.Avail[0][0] = 1000
	st.Price[0] = 0.4
	act := model.NewAction(c)
	act.Process[0][0] = 6 // 120 memory > 100 capacity
	act.Busy[0][0] = 6
	if err := act.Validate(c, st); err == nil {
		t.Error("aux over-capacity action accepted")
	}
	act.Process[0][0] = 5 // exactly at capacity
	act.Busy[0][0] = 5
	if err := act.Validate(c, st); err != nil {
		t.Errorf("feasible action rejected: %v", err)
	}
}

func TestAuxConstrainedSlotRespectsMemory(t *testing.T) {
	// CPU is abundant (1000 units); memory allows at most 5 hungry jobs.
	// With equal backlogs and V=0, the optimizer must fill memory with
	// light jobs instead of starving throughput.
	c := auxCluster()
	g, err := New(c, Config{V: 0})
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0] = 1000
	st.Price[0] = 0.4
	q := queue.Lengths{Central: []float64{0, 0}, Local: [][]float64{{50, 50}}}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := act.Validate(c, st); err != nil {
		t.Fatalf("infeasible action: %v", err)
	}
	// All 50 light jobs fit in 50 memory; the remaining 50 memory carries
	// at most 2.5 hungry jobs. Total processed should be ~52.5, certainly
	// not capped at 5 (hungry-only) nor above the memory bound.
	totalMem := act.Process[0][0]*20 + act.Process[0][1]*1
	if totalMem > 100+1e-6 {
		t.Errorf("memory used %v exceeds 100", totalMem)
	}
	if act.Process[0][1] < 50-1e-6 {
		t.Errorf("light jobs processed %v, want all 50", act.Process[0][1])
	}
}

func TestAuxConstrainedSlotPrefersBackloggedHungry(t *testing.T) {
	// When the hungry type has far more backlog pressure, memory should go
	// to it even though light jobs are more memory-efficient.
	c := auxCluster()
	g, err := New(c, Config{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0] = 1000
	st.Price[0] = 0.01 // prices negligible
	q := queue.Lengths{Central: []float64{0, 0}, Local: [][]float64{{100, 1}}}
	act, err := g.Decide(0, st, q)
	if err != nil {
		t.Fatal(err)
	}
	// 1 light job takes 1 memory; the rest goes to hungry: (100-1)/20 = 4.95.
	if act.Process[0][0] < 4.9-1e-6 {
		t.Errorf("hungry processed %v, want ~4.95", act.Process[0][0])
	}
}

func TestAuxWithFairnessFrankWolfe(t *testing.T) {
	// Two accounts competing for memory under beta > 0: the FW path with
	// the LP oracle must produce feasible actions that spread memory.
	c := auxCluster()
	c.JobTypes[1].Account = 1
	c.Accounts = []model.Account{{Name: "a", Weight: 0.5}, {Name: "b", Weight: 0.5}}
	g, err := New(c, Config{V: 1, Beta: 500, FW: solve.FWOptions{MaxIters: 300}})
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState(c)
	st.Avail[0][0] = 1000
	st.Price[0] = 0.4
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		q := queue.Lengths{
			Central: []float64{0, 0},
			Local:   [][]float64{{float64(rng.Intn(80)), float64(rng.Intn(80))}},
		}
		act, err := g.Decide(trial, st, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := act.Validate(c, st); err != nil {
			t.Fatalf("trial %d: infeasible action: %v", trial, err)
		}
	}
}

// TestAuxLPMatchesBruteForce cross-checks the aux-constrained slot LP
// against a fine grid search on the two-variable problem.
func TestAuxLPMatchesBruteForce(t *testing.T) {
	c := auxCluster()
	st := model.NewState(c)
	st.Avail[0][0] = 30 // CPU now binding too: h0 + h1 <= 30
	st.Price[0] = 0.5
	cfg := Config{V: 3}
	q := queue.Lengths{Central: []float64{0, 0}, Local: [][]float64{{40, 25}}}
	process, _, obj, err := SolveSlotLP(c, cfg, st, q)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over h0, h1 grids.
	best := math.Inf(1)
	for g0 := 0; g0 <= 200; g0++ {
		for g1 := 0; g1 <= 200; g1++ {
			h0 := float64(g0) * 5 / 200 // up to 5 (memory bound)
			h1 := float64(g1) * 25 / 200
			if 20*h0+h1 > 100 || h0+h1 > 30 {
				continue
			}
			if h0 > 40 || h1 > 25 {
				continue
			}
			v := -40*h0 - 25*h1 + cfg.V*0.5*(h0+h1) // energy: speed 1, power 1
			if v < best {
				best = v
			}
		}
	}
	if obj > best+1e-3*(1+math.Abs(best)) {
		t.Errorf("LP objective %v worse than brute force %v (process %v)", obj, best, process)
	}
	if obj < best-0.5 {
		t.Errorf("LP objective %v implausibly below grid %v", obj, best)
	}
}
