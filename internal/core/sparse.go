package core

import (
	"fmt"
	"math"

	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/solve"
	"grefar/internal/telemetry"
)

// This file implements the sparse slot representation behind
// Config.Solver = SolverSparse / SolverDecomposed: an active-pair index over
// the (i, j) processing variables that skips every pair with zero backlog and
// zero warm-start mass, threaded through the coefficient build, the
// objective/gradient, the greedy oracle, and the Frank-Wolfe workspace. At
// production scale most pairs are inactive — a job type's data lives at a
// handful of sites and most queues are empty — so the dense N*J vectors the
// monolithic path iterates over are mostly exact zeros. The compact layout
// makes every solver pass O(active) instead of O(N*J) while producing
// bit-identical iterates: an inactive pair has x = v = dir = 0 on the dense
// path, contributing exactly +0.0 to every inner product, and the compact
// index preserves the dense (i, j) lexicographic order, so the fairness
// account sums, the greedy candidate lists, and the line-search scalars all
// come out float-for-float equal.

// sparseSlot is the active-pair slot representation owned by one scheduler.
// Pair (i, j) is active when j is eligible at i and the pair has positive
// local backlog or positive warm-start mass; only active pairs get compact h
// variables. The b variables are never sparsified — server-type counts are
// small and every site provisions.
type sparseSlot struct {
	c *model.Cluster
	l slotLayout

	// eligible[i*J+j] is cluster-static: j in D_j at site i.
	eligible []bool

	// Active-pair index. Compact h variable t covers the dense pair
	// denseIdx[t] = i*J+j with job type pairJ[t]; a site's compact h
	// variables are the contiguous run [siteOff[i], siteOff[i+1]), in
	// ascending j — the dense lexicographic order restricted to the index.
	active   []bool // dense membership mask, len N*J
	pairJ    []int
	denseIdx []int
	siteOff  []int // len N+1
	bOffC    []int // bOffC[i] is the first compact b index of site i
	nH       int   // compact h count
	total    int   // nH + sum_i K(i)
	gen      int   // bumped on every index rebuild (consumers re-derive)

	// Compact slot coefficients: linear is [cH | cB] in compact layout
	// (cH[t] = -q for the pair, cB = V*phi*p as in slotCoefficientsInto);
	// hCap[t] is the pair's processing cap.
	linear []float64
	hCap   []float64

	// Compact fairness maps: account/demand per compact h variable.
	account []int
	demand  []float64

	// Compact convex objective over the compact layout (beta > 0).
	obj     *slotObjective
	wrapped solve.Objective

	// Inputs backing the incremental refresh: between ticks only queue
	// contents and prices move, so only rows whose inputs moved are
	// recomputed, and the index itself is rebuilt only when the active
	// membership changes.
	prevLocal []float64 // dense N*J backlog snapshot
	prevPrice []float64
	prevValid bool

	// Refresh counters: full index rebuilds vs in-place site-row refreshes.
	rebuilds, rowRefreshes int

	// Solver buffers in compact layout.
	x0, xw, vertex []float64
	scr            siteScratch
}

// siteScratch holds one site's greedy-exchange buffers. The decomposed
// solver keeps one per site so pooled block solves never share state.
type siteScratch struct {
	segs []segment
	jobs []jobDemand
}

func newSparseSlot(c *model.Cluster) *sparseSlot {
	nJ := c.N() * c.J()
	sp := &sparseSlot{
		c:         c,
		l:         newSlotLayout(c),
		eligible:  make([]bool, nJ),
		active:    make([]bool, nJ),
		siteOff:   make([]int, 0, c.N()+1),
		bOffC:     make([]int, c.N()),
		prevLocal: make([]float64, nJ),
		prevPrice: make([]float64, c.N()),
	}
	for j, jt := range c.JobTypes {
		for _, i := range jt.Eligible {
			sp.eligible[i*c.J()+j] = true
		}
	}
	sp.scr.segs = make([]segment, 0, maxServerTypes(c))
	sp.scr.jobs = make([]jobDemand, 0, c.J())
	return sp
}

// wantActive is the membership rule: eligible, and carrying either backlog
// or warm-start mass (warm nil means no warm iterate is in play).
func (sp *sparseSlot) wantActive(idx int, q float64, warm []float64) bool {
	return sp.eligible[idx] && (q > 0 || (warm != nil && warm[idx] > 0))
}

// refresh brings the compact representation up to date with this slot's
// inputs. If the active membership is unchanged since the previous slot, only
// the coefficient rows whose backing inputs (a pair's backlog, a site's
// price) moved are recomputed in place; otherwise the whole index is rebuilt.
// In-place refreshed values are computed by the same expressions as a
// rebuild, so the two paths are exactly equivalent (FuzzSparseRefresh pins
// this).
func (sp *sparseSlot) refresh(cfg Config, st *model.State, q queue.Lengths, warm []float64) {
	c := sp.c
	n, nJ := c.N(), c.J()
	if !sp.prevValid {
		sp.rebuildIndex(cfg, st, q, warm)
		return
	}
	for i := 0; i < n; i++ {
		row := q.Local[i]
		base := i * nJ
		for j := 0; j < nJ; j++ {
			if sp.wantActive(base+j, row[j], warm) != sp.active[base+j] {
				sp.rebuildIndex(cfg, st, q, warm)
				return
			}
		}
	}
	// Membership unchanged: refresh only the rows whose inputs moved.
	for i := 0; i < n; i++ {
		touched := false
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			qv := q.Local[i][sp.pairJ[t]]
			if qv == sp.prevLocal[sp.denseIdx[t]] {
				continue
			}
			sp.prevLocal[sp.denseIdx[t]] = qv
			sp.linear[t] = -qv
			sp.hCap[t] = processBudgetFor(c.JobTypes[sp.pairJ[t]], qv)
			touched = true
		}
		if st.Price[i] != sp.prevPrice[i] {
			sp.prevPrice[i] = st.Price[i]
			b := sp.bOffC[i]
			for k, stype := range c.DataCenters[i].Servers {
				sp.linear[b+k] = cfg.V * st.Price[i] * stype.Power
			}
			touched = true
		}
		if touched {
			sp.rowRefreshes++
		}
	}
}

// rebuildIndex reconstructs the active-pair index and every compact
// coefficient from scratch, and snapshots the inputs for the next
// incremental refresh.
func (sp *sparseSlot) rebuildIndex(cfg Config, st *model.State, q queue.Lengths, warm []float64) {
	c := sp.c
	n, nJ := c.N(), c.J()
	sp.pairJ = sp.pairJ[:0]
	sp.denseIdx = sp.denseIdx[:0]
	sp.siteOff = sp.siteOff[:0]
	for i := 0; i < n; i++ {
		sp.siteOff = append(sp.siteOff, len(sp.pairJ))
		row := q.Local[i]
		base := i * nJ
		for j := 0; j < nJ; j++ {
			idx := base + j
			want := sp.wantActive(idx, row[j], warm)
			sp.active[idx] = want
			if want {
				sp.pairJ = append(sp.pairJ, j)
				sp.denseIdx = append(sp.denseIdx, idx)
			}
			sp.prevLocal[idx] = row[j]
		}
	}
	sp.siteOff = append(sp.siteOff, len(sp.pairJ))
	sp.nH = len(sp.pairJ)
	nB := 0
	for i := 0; i < n; i++ {
		sp.bOffC[i] = sp.nH + nB
		nB += c.K(i)
	}
	sp.total = sp.nH + nB

	sp.linear = resizeFloats(sp.linear, sp.total)
	sp.hCap = resizeFloats(sp.hCap, sp.nH)
	sp.account = resizeInts(sp.account, sp.nH)
	sp.demand = resizeFloats(sp.demand, sp.nH)
	for i := 0; i < n; i++ {
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			j := sp.pairJ[t]
			jt := c.JobTypes[j]
			qv := q.Local[i][j]
			sp.linear[t] = -qv
			sp.hCap[t] = processBudgetFor(jt, qv)
			sp.account[t] = jt.Account
			sp.demand[t] = jt.Demand
		}
		sp.prevPrice[i] = st.Price[i]
		b := sp.bOffC[i]
		for k, stype := range c.DataCenters[i].Servers {
			sp.linear[b+k] = cfg.V * st.Price[i] * stype.Power
		}
	}
	sp.prevValid = true
	sp.rebuilds++
	sp.gen++
}

// ensureObjective (re)binds the compact convex objective to the current
// index and slot total. The slotObjective struct is reused; only its slice
// headers and totals move.
func (sp *sparseSlot) ensureObjective(cfg Config, total float64) {
	if sp.obj == nil {
		m := sp.c.M()
		sp.obj = &slotObjective{
			vbeta:     cfg.V * cfg.Beta,
			term:      cfg.Fairness,
			m:         m,
			alloc:     make([]float64, m),
			allocGrad: make([]float64, m),
			allocDir:  make([]float64, m),
		}
		sp.wrapped = wrapSlotObjective(sp.obj)
	}
	sp.obj.linear = sp.linear
	sp.obj.nH = sp.nH
	sp.obj.account = sp.account
	sp.obj.demand = sp.demand
	sp.obj.total = total
}

// oracle returns the compact greedy linear-minimization oracle: the same
// per-site exchange as slotOracleWS, restricted to active pairs, writing a
// vertex in compact layout.
func (sp *sparseSlot) oracle(st *model.State) solve.LinearOracle {
	return func(grad, out []float64) {
		for j := range out {
			out[j] = 0
		}
		for i := 0; i < sp.c.N(); i++ {
			sp.greedySite(&sp.scr, st, i, grad, out, true)
		}
	}
}

// greedySite runs one site's greedy exchange over the site's active pairs
// with the compact cost vector cost, adding the chosen vertex into out
// (caller-zeroed, compact layout) and returning the site's objective
// contribution. With clampNegB, negative b costs clamp to zero exactly as in
// slotOracleWS; without it they are an error, mirroring solveLinearSlotWS.
func (sp *sparseSlot) greedySite(scr *siteScratch, st *model.State, i int, cost, out []float64, clampNegB bool) (float64, error) {
	c := sp.c
	segs := scr.segs[:0]
	for k, stype := range c.DataCenters[i].Servers {
		cb := cost[sp.bOffC[i]+k]
		if cb < 0 {
			if !clampNegB {
				return 0, fmt.Errorf("data center %d server type %d: negative capacity cost %v", i, k, cb)
			}
			cb = 0
		}
		capWork := st.Avail[i][k] * stype.Speed
		if capWork <= 0 {
			continue
		}
		segs = append(segs, segment{
			serverType: k,
			cap:        capWork,
			density:    cb / stype.Speed,
			speed:      stype.Speed,
		})
	}
	sortSegsByDensity(segs)
	jobs := scr.jobs[:0]
	for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
		if cost[t] >= 0 || sp.hCap[t] <= 0 {
			continue
		}
		d := sp.demand[t]
		jobs = append(jobs, jobDemand{
			job:     t,
			work:    sp.hCap[t] * d,
			density: -cost[t] / d,
			demand:  d,
		})
	}
	sortJobsByDensity(jobs)
	scr.segs, scr.jobs = segs, jobs
	return greedyExchange(segs, jobs, out, sp.bOffC[i]), nil
}

// greedyExchange is the exchange core of solveLinearSlotWS operating on a
// flat output vector: jobs[].job indexes out directly for the h side and a
// segment's server type maps to out[bBase+k]. Both lists must be pre-sorted
// (jobs by descending reward density, segs by ascending cost density); the
// arithmetic — take splitting, the 1e-15 epsilons, the accumulation order —
// replicates solveLinearSlotWS exactly so vertices come out bit-identical.
func greedyExchange(segs []segment, jobs []jobDemand, out []float64, bBase int) float64 {
	value := 0.0
	seg := 0
	for _, jd := range jobs {
		remaining := jd.work
		for remaining > 1e-15 && seg < len(segs) {
			s := &segs[seg]
			if jd.density <= s.density {
				break
			}
			take := remaining
			if take > s.cap {
				take = s.cap
			}
			out[jd.job] += take / jd.demand
			out[bBase+s.serverType] += take / s.speed
			value += take * (s.density - jd.density)
			s.cap -= take
			remaining -= take
			if s.cap <= 1e-15 {
				seg++
			}
		}
		if seg >= len(segs) {
			break
		}
	}
	return value
}

// repairWarm is repairWarmStart for the sparse path: it repairs the dense
// warm vector in place against the compact caps without materializing a
// dense hCap matrix. An inactive pair's cap is zero, so any mass there
// clamps away; the capacity-row sums skip inactive pairs, whose terms are
// exact zeros, and therefore match the dense sums float-for-float. The
// outcome classification is identical to repairWarmStart on the dense
// coefficients. Auxiliary rows are absent by construction: New rejects the
// sparse solvers on clusters with auxiliary resources.
func (sp *sparseSlot) repairWarm(st *model.State, x []float64) warmOutcome {
	c := sp.c
	n, nJ := c.N(), c.J()
	repaired := false
	for i := 0; i < n; i++ {
		base := i * nJ
		for j := 0; j < nJ; j++ {
			idx := base + j
			v := x[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return warmFallback
			}
			if sp.active[idx] {
				continue // clamped against the compact cap below
			}
			w := v
			if w < 0 {
				w = 0
			}
			if w > 0 {
				w = 0 // cap is 0 off the active index
			}
			if w != v {
				x[idx] = w
				repaired = true
			}
		}
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			idx := sp.denseIdx[t]
			v := x[idx]
			w := v
			if w < 0 {
				w = 0
			}
			if cap := sp.hCap[t]; w > cap {
				w = cap
			}
			if w != v {
				x[idx] = w
				repaired = true
			}
		}
		for k := 0; k < c.K(i); k++ {
			idx := sp.l.bOff[i] + k
			v := x[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return warmFallback
			}
			w := v
			if w < 0 {
				w = 0
			}
			if avail := st.Avail[i][k]; w > avail {
				w = avail
			}
			if w != v {
				x[idx] = w
				repaired = true
			}
		}

		// Capacity row (eq. 11) over active pairs; inactive pairs are exact
		// zeros after the clamp above.
		work := 0.0
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			work += sp.demand[t] * x[sp.denseIdx[t]]
		}
		capWork := 0.0
		for k, stype := range c.DataCenters[i].Servers {
			capWork += stype.Speed * x[sp.l.bOff[i]+k]
		}
		if work > capWork*(1+warmFeasEps) {
			if capWork < warmCollapseScale*work {
				return warmFallback
			}
			scale := capWork / work
			for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
				x[sp.denseIdx[t]] *= scale
			}
			repaired = true
		}
	}
	if repaired {
		return warmRepaired
	}
	return warmHit
}

// gather copies the dense (h, b) vector x into the compact vector out.
func (sp *sparseSlot) gather(x, out []float64) {
	for t := 0; t < sp.nH; t++ {
		out[t] = x[sp.denseIdx[t]]
	}
	for i := 0; i < sp.c.N(); i++ {
		copy(out[sp.bOffC[i]:sp.bOffC[i]+sp.c.K(i)], x[sp.l.bOff[i]:sp.l.bOff[i]+sp.c.K(i)])
	}
}

// scatterWarm writes the compact iterate x back into the dense warm buffer,
// zeroing the h block first: the dense path keeps exact zeros on inactive
// pairs, so zero-then-scatter reproduces its buffer exactly.
func (sp *sparseSlot) scatterWarm(x, warm []float64) {
	for idx := 0; idx < sp.c.N()*sp.c.J(); idx++ {
		warm[idx] = 0
	}
	for t := 0; t < sp.nH; t++ {
		warm[sp.denseIdx[t]] = x[t]
	}
	for i := 0; i < sp.c.N(); i++ {
		copy(warm[sp.l.bOff[i]:sp.l.bOff[i]+sp.c.K(i)], x[sp.bOffC[i]:sp.bOffC[i]+sp.c.K(i)])
	}
}

// useSparse reports whether this scheduler's Decide runs on the sparse slot
// representation.
func (g *GreFar) useSparse() bool {
	return g.cfg.Solver == SolverSparse || g.cfg.Solver == SolverDecomposed
}

// decideProcessingSparse is decideProcessing on the sparse representation:
// refresh the active-pair index incrementally, solve on the compact layout
// (greedy for linear slots, compact Frank-Wolfe for SolverSparse, the
// sharing-ADMM block decomposition for SolverDecomposed), scatter the
// clamped h into the action, and provision exactly as the dense path does.
func (g *GreFar) decideProcessingSparse(st *model.State, q queue.Lengths, act *model.Action, stats *telemetry.SolveStats) error {
	c, ws := g.cluster, g.ws
	sp := ws.sparse
	var warmRef []float64
	if g.cfg.WarmStart && ws.warmValid {
		warmRef = ws.warm
	}
	sp.refresh(g.cfg, st, q, warmRef)

	var err error
	switch {
	case g.linearSlot():
		err = g.solveSparseLinear(st, act, stats)
	case g.cfg.Solver == SolverDecomposed:
		err = g.solveDecomposedQuadratic(st, act, stats)
	default:
		err = g.solveSparseQuadratic(st, act, stats)
	}
	if err != nil {
		return err
	}

	for i := 0; i < c.N(); i++ {
		if _, err := model.ProvisionOrdered(c.DataCenters[i], ws.provOrder[i], st.Avail[i], act.Busy[i], act.WorkAt(c, i)); err != nil {
			return fmt.Errorf("data center %d: %w", i, err)
		}
	}
	return nil
}

// solveSparseLinear is the beta = 0 slot solve on the compact layout: the
// per-site greedy exchange over active pairs, site by site — or pooled on
// the runner when the decomposed solver is configured with workers, with
// per-site scratch and disjoint output ranges, so the result is
// bit-identical at any worker count.
func (g *GreFar) solveSparseLinear(st *model.State, act *model.Action, stats *telemetry.SolveStats) error {
	c, ws := g.cluster, g.ws
	sp := ws.sparse
	sp.vertex = resizeFloats(sp.vertex, sp.total)
	for j := range sp.vertex {
		sp.vertex[j] = 0
	}
	solver := telemetry.SolverGreedy
	workers := 1
	if g.cfg.Solver == SolverDecomposed {
		solver = telemetry.SolverDecomposed
		workers = g.cfg.SolverWorkers
	}
	if workers > 1 {
		if err := ws.dec.parallelSites(sp, workers, func(i int, scr *siteScratch) error {
			_, err := sp.greedySite(scr, st, i, sp.linear, sp.vertex, false)
			return err
		}); err != nil {
			return err
		}
	} else {
		for i := 0; i < c.N(); i++ {
			if _, err := sp.greedySite(&sp.scr, st, i, sp.linear, sp.vertex, false); err != nil {
				return err
			}
		}
	}
	for i := 0; i < c.N(); i++ {
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			act.Process[i][sp.pairJ[t]] = sp.vertex[t]
		}
	}
	if stats != nil {
		*stats = telemetry.SolveStats{Solver: solver, Iterations: 1, Converged: true}
		g.attachSolverOptions(stats, g.cfg.FW)
	}
	return nil
}

// solveSparseQuadratic is solveQuadraticSlot on the compact layout: same
// Frank-Wolfe machinery, same warm-start protocol against the canonical
// dense warm buffer, bit-identical iterates (see the file comment).
func (g *GreFar) solveSparseQuadratic(st *model.State, act *model.Action, stats *telemetry.SolveStats) error {
	c, ws := g.cluster, g.ws
	sp := ws.sparse
	sp.ensureObjective(g.cfg, st.TotalResource(c))
	oracle := sp.oracle(st)

	opts := g.cfg.FW
	if opts.MaxIters <= 0 {
		opts.MaxIters = 150
	}

	sp.x0 = resizeFloats(sp.x0, sp.total)
	start := sp.x0
	warm := ""
	if g.cfg.WarmStart {
		outcome := warmFallback
		if ws.warmValid {
			outcome = sp.repairWarm(st, ws.warm)
		}
		switch outcome {
		case warmHit:
			warm = telemetry.WarmHit
			g.warmHits++
		case warmRepaired:
			warm = telemetry.WarmRepaired
			g.warmRepairs++
		default:
			warm = telemetry.WarmFallback
			g.warmFallbacks++
		}
		if outcome != warmFallback {
			sp.xw = resizeFloats(sp.xw, sp.total)
			sp.gather(ws.warm, sp.xw)
			start = sp.xw
		}
	}
	if len(start) > 0 && &start[0] == &sp.x0[0] {
		for j := range sp.x0 {
			sp.x0[j] = 0
		}
	}
	res, err := solve.FrankWolfeWS(&ws.fw, sp.wrapped, oracle, start, opts)
	if err != nil {
		return fmt.Errorf("frank-wolfe: %w", err)
	}
	if g.cfg.WarmStart {
		sp.scatterWarm(res.X, ws.warm)
		ws.warmValid = true
	}
	if stats != nil {
		*stats = telemetry.SolveStats{
			Solver:     telemetry.SolverFrankWolfe,
			Iterations: res.Iters,
			Converged:  res.Converged,
			Residual:   res.Gap,
		}
		if res.Variant != solve.VariantVanilla {
			stats.Variant = res.Variant
		}
		g.attachWarmStats(stats, warm)
		g.attachSolverOptions(stats, opts)
	}
	sp.clampProcess(res.X, act)
	return nil
}

// clampProcess scatters the compact iterate's h block into the action,
// clamped into [0, hCap] exactly as the dense path clamps its result.
func (sp *sparseSlot) clampProcess(x []float64, act *model.Action) {
	for i := 0; i < sp.c.N(); i++ {
		for t := sp.siteOff[i]; t < sp.siteOff[i+1]; t++ {
			h := x[t]
			if h < 0 {
				h = 0
			}
			if cap := sp.hCap[t]; h > cap {
				h = cap
			}
			act.Process[i][sp.pairJ[t]] = h
		}
	}
}

// attachWarmStats fills the warm-start telemetry fields when warm starts are
// configured.
func (g *GreFar) attachWarmStats(stats *telemetry.SolveStats, warm string) {
	if !g.cfg.WarmStart {
		return
	}
	stats.Warm = warm
	stats.WarmHits = g.warmHits
	stats.WarmRepairs = g.warmRepairs
	stats.WarmFallbacks = g.warmFallbacks
}

// attachSolverOptions attaches the effective solver options to the first
// telemetry event of a non-default-configured scheduler (same latch as the
// dense path).
func (g *GreFar) attachSolverOptions(stats *telemetry.SolveStats, opts solve.FWOptions) {
	if !g.reportOpts || g.optsReported {
		return
	}
	stats.Options = &telemetry.SolverOptions{
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		AwaySteps: opts.AwaySteps,
		WarmStart: g.cfg.WarmStart,
	}
	if g.cfg.Solver != SolverAuto {
		stats.Options.Solver = g.cfg.Solver.String()
	}
	if g.cfg.SolverWorkers != 0 {
		stats.Options.Workers = g.cfg.SolverWorkers
	}
	g.optsReported = true
}

// resizeFloats returns s with length n, reusing capacity; contents are
// unspecified and must be overwritten by the caller.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// resizeInts is resizeFloats for int slices.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
