package core

import (
	"grefar/internal/model"
	"grefar/internal/solve"
)

// decideScratch is the reusable per-scheduler workspace of the Decide hot
// path. Every slot decision needs the same fixed-size buffers — the linear
// slot coefficients, the routing order, the greedy exchange's segment and
// demand lists, and (when beta > 0) the flat variable vectors of the convex
// solver — and a 2000-slot sweep calls Decide 2000 times, so allocating them
// fresh each slot dominated the allocation profile (see
// BenchmarkSlotDecision). The workspace is allocated once in New, sized by
// the cluster, and owned exclusively by its GreFar instance: Decide is
// therefore NOT safe for concurrent calls on one scheduler. Parallel sweeps
// (internal/runner) construct one scheduler per run, which keeps every
// workspace single-owner; the repo-wide -race run verifies this.
//
// Ownership rule for buffers handed outward: anything that escapes Decide —
// the returned *model.Action, telemetry events and their slices — is still
// allocated fresh per call. Scratch covers only solver-internal state whose
// lifetime ends when Decide returns.
type decideScratch struct {
	layout slotLayout

	// Linear slot data (SlotCoefficients output).
	cH, cB, hCap [][]float64

	// Routing order buffer (decideRouting).
	order []int

	// Greedy exchange workspace, shared by the direct beta = 0 path and the
	// Frank-Wolfe linear oracle (whose calls are sequential within one
	// Decide, so one workspace serves both).
	lin linearScratch

	// Cheapest-first server order per data center for busy-server
	// provisioning: availability changes per slot but the energy-per-work
	// rate of a server type does not, so the order is cluster-static.
	provOrder [][]int

	// Quadratic (beta > 0 / non-linear tariff) path, allocated only when the
	// configuration can take it.
	linear  []float64 // linear coefficients over the flat (h, b) vector
	x0      []float64 // Frank-Wolfe starting point
	gradH   [][]float64
	gradB   [][]float64
	process [][]float64 // clamped h result
	obj     *slotObjective
	wrapped solve.Objective
	fw      solve.FWWorkspace

	// Cross-slot warm start (Config.WarmStart): warm holds the previous
	// slot's (h, b) iterate in slotLayout order, and warmValid reports
	// whether it exists (false before the first solve). The buffer follows
	// the workspace's single-owner rule — it is this scheduler's memory of
	// its own trajectory, so sharing a scheduler across runs would leak one
	// run's iterate into another; one scheduler per run keeps it sound.
	// Decide repairs the iterate against the current slot's caps before use
	// and falls back to the zero start when repair fails (see
	// repairWarmStart).
	warm      []float64
	warmValid bool

	// Sparse representation (Config.Solver = SolverSparse / SolverDecomposed)
	// and the decomposed solver's block scratch; nil on the monolithic path.
	sparse *sparseSlot
	dec    *decomposedScratch
}

// linearScratch holds the buffers of one greedy-exchange slot solve.
type linearScratch struct {
	out  linearAssignment
	segs []segment
	jobs []jobDemand
}

// newLinearScratch sizes a greedy-exchange workspace for the cluster.
func newLinearScratch(c *model.Cluster) *linearScratch {
	ws := &linearScratch{}
	ws.out.process = newMatrixNJ(c)
	ws.out.busy = newMatrixNK(c)
	ws.segs = make([]segment, 0, maxServerTypes(c))
	ws.jobs = make([]jobDemand, 0, c.J())
	return ws
}

// newDecideScratch builds the full workspace for one scheduler. The
// quadratic-path buffers are allocated only when quad is set (beta > 0 or a
// non-linear tariff can reach Frank-Wolfe).
func newDecideScratch(c *model.Cluster, quad bool) *decideScratch {
	ws := &decideScratch{
		layout: newSlotLayout(c),
		cH:     newMatrixNJ(c),
		cB:     newMatrixNK(c),
		hCap:   newMatrixNJ(c),
		order:  make([]int, 0, c.N()),
		lin:    *newLinearScratch(c),
	}
	ws.provOrder = make([][]int, c.N())
	for i := 0; i < c.N(); i++ {
		ws.provOrder[i] = model.RateOrder(c.DataCenters[i])
	}
	if quad {
		ws.linear = make([]float64, ws.layout.total)
		ws.x0 = make([]float64, ws.layout.total)
		ws.gradH = newMatrixNJ(c)
		ws.gradB = newMatrixNK(c)
		ws.process = newMatrixNJ(c)
		ws.warm = make([]float64, ws.layout.total)
	}
	return ws
}

// newMatrixNJ builds an N x J matrix backed by one flat allocation.
func newMatrixNJ(c *model.Cluster) [][]float64 {
	flat := make([]float64, c.N()*c.J())
	m := make([][]float64, c.N())
	for i := range m {
		m[i] = flat[i*c.J() : (i+1)*c.J() : (i+1)*c.J()]
	}
	return m
}

// newMatrixNK builds the ragged N x K(i) matrix backed by one flat
// allocation.
func newMatrixNK(c *model.Cluster) [][]float64 {
	total := 0
	for i := 0; i < c.N(); i++ {
		total += c.K(i)
	}
	flat := make([]float64, total)
	m := make([][]float64, c.N())
	off := 0
	for i := range m {
		m[i] = flat[off : off+c.K(i) : off+c.K(i)]
		off += c.K(i)
	}
	return m
}

func maxServerTypes(c *model.Cluster) int {
	max := 0
	for i := 0; i < c.N(); i++ {
		if k := c.K(i); k > max {
			max = k
		}
	}
	return max
}
