package core_test

// Metamorphic tests: instead of asserting absolute outputs, these pin down
// how the scheduler must transform under input transformations with known
// consequences — price scaling, the (V, phi) <-> (cV, phi/c) equivalence of
// the drift-plus-penalty objective, and the Theorem 1 cost/backlog tradeoff
// in V.

import (
	"math"
	"testing"

	"grefar/internal/core"
	"grefar/internal/price"
	"grefar/internal/sched"
	"grefar/internal/sim"
)

// scaledSource multiplies an underlying price source by a constant factor.
type scaledSource struct {
	src price.Source
	c   float64
}

func (s scaledSource) At(t int) float64 { return s.c * s.src.At(t) }

func scaleInputPrices(in sim.Inputs, c float64) sim.Inputs {
	scaled := make([]price.Source, len(in.Prices))
	for i, p := range in.Prices {
		scaled[i] = scaledSource{src: p, c: c}
	}
	in.Prices = scaled
	return in
}

func referenceInputs(t *testing.T, slots int) sim.Inputs {
	t.Helper()
	in, err := sim.NewReferenceInputs(404, slots)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestPriceScalingScalesEnergyCost: a price-blind policy makes identical
// decisions whatever the tariff, so doubling every electricity price must
// double its energy bill exactly — doubling is exact in IEEE-754, so the
// comparison needs no tolerance.
func TestPriceScalingScalesEnergyCost(t *testing.T) {
	const slots = 24 * 20
	const factor = 2
	in := referenceInputs(t, slots)

	a, err := sched.NewAlways(in.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{Slots: slots, ValidateActions: true, Check: true}
	base, err := sim.Run(in, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := sim.Run(scaleInputPrices(in, factor), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.AvgEnergy != factor*base.AvgEnergy {
		t.Errorf("doubled prices: energy %v, want exactly %v", scaled.AvgEnergy, factor*base.AvgEnergy)
	}
	if scaled.TotalProcessed != base.TotalProcessed || scaled.MaxQueue != base.MaxQueue {
		t.Error("price-blind policy changed its decisions under scaled prices")
	}
}

// TestVPriceScalingEquivalence: GreFar's slot objective weighs energy as
// V * phi(t) * p. Running at (V, c*phi) and at (c*V, phi) therefore produces
// bit-identical coefficients — hence identical decisions and backlog — while
// the billed energy differs by exactly the factor c.
func TestVPriceScalingEquivalence(t *testing.T) {
	const slots = 24 * 20
	const factor = 2
	in := referenceInputs(t, slots)
	opt := sim.Options{Slots: slots, ValidateActions: true, Check: true}

	gHi, err := core.New(in.Cluster, core.Config{V: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	scaledPrices, err := sim.Run(scaleInputPrices(in, factor), gHi, opt)
	if err != nil {
		t.Fatal(err)
	}
	gScaledV, err := core.New(in.Cluster, core.Config{V: factor * 7.5})
	if err != nil {
		t.Fatal(err)
	}
	scaledV, err := sim.Run(in, gScaledV, opt)
	if err != nil {
		t.Fatal(err)
	}

	if scaledPrices.TotalProcessed != scaledV.TotalProcessed ||
		scaledPrices.MaxQueue != scaledV.MaxQueue ||
		scaledPrices.AvgQueue != scaledV.AvgQueue ||
		scaledPrices.FinalBacklog != scaledV.FinalBacklog {
		t.Errorf("(V, c*phi) and (c*V, phi) diverged: backlog (%v, %v, %v) vs (%v, %v, %v)",
			scaledPrices.MaxQueue, scaledPrices.AvgQueue, scaledPrices.FinalBacklog,
			scaledV.MaxQueue, scaledV.AvgQueue, scaledV.FinalBacklog)
	}
	// Same busy-server trajectory billed under prices scaled by c.
	if scaledPrices.AvgEnergy != factor*scaledV.AvgEnergy {
		t.Errorf("energy under scaled prices %v, want exactly %v", scaledPrices.AvgEnergy, factor*scaledV.AvgEnergy)
	}
}

// TestLargerVNeverDecreasesBacklog: Theorem 1 trades queue backlog O(V)
// against cost gap O(1/V). Along a V ladder on the reference workload the
// time-average backlog must be nondecreasing and the average energy cost
// nonincreasing (tiny tie tolerance; the trend, not the magnitude, is the
// invariant).
func TestLargerVNeverDecreasesBacklog(t *testing.T) {
	const slots = 24 * 30
	in := referenceInputs(t, slots)
	opt := sim.Options{Slots: slots, ValidateActions: true, Check: true}

	vs := []float64{0.5, 2.5, 7.5, 20}
	backlog := make([]float64, len(vs))
	energy := make([]float64, len(vs))
	for k, v := range vs {
		g, err := core.New(in.Cluster, core.Config{V: v})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(in, g, opt)
		if err != nil {
			t.Fatalf("V=%g: %v", v, err)
		}
		backlog[k] = r.AvgQueue
		energy[k] = r.AvgEnergy
	}
	for k := 1; k < len(vs); k++ {
		tieTol := 1e-9 * (1 + math.Abs(backlog[k-1]))
		if backlog[k] < backlog[k-1]-tieTol {
			t.Errorf("V=%g -> %g: avg backlog dropped %v -> %v", vs[k-1], vs[k], backlog[k-1], backlog[k])
		}
		if energy[k] > energy[k-1]+1e-9*(1+math.Abs(energy[k-1])) {
			t.Errorf("V=%g -> %g: avg energy rose %v -> %v", vs[k-1], vs[k], energy[k-1], energy[k])
		}
	}
	t.Logf("V ladder %v: backlog %v, energy %v", vs, backlog, energy)
}
