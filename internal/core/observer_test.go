package core

import (
	"math"
	"math/rand"
	"testing"

	"grefar/internal/telemetry"
)

// TestSlotEventMatchesDriftPlusPenalty checks the telemetry contract of the
// decide-origin event: Drift + Penalty must equal Objective exactly, and
// Objective must equal the drift-plus-penalty expression (paper eq. 14) that
// the independent DriftPlusPenalty oracle computes for the chosen action.
func TestSlotEventMatchesDriftPlusPenalty(t *testing.T) {
	c := refCluster(t)
	rng := rand.New(rand.NewSource(99))
	gamma := AccountWeights(c)
	for _, cfg := range []Config{{V: 5}, {V: 7.5, Beta: 100}} {
		var events []telemetry.SlotEvent
		cfg.Observer = telemetry.ObserverFunc(func(ev telemetry.SlotEvent) {
			events = append(events, ev)
		})
		g, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := stateWith(c, 80, []float64{0.39, 0.43, 0.55})
		q := randomLengths(rng, c, 50)
		act, err := g.Decide(3, st, q)
		if err != nil {
			t.Fatal(err)
		}

		if len(events) != 1 {
			t.Fatalf("beta=%g: got %d events, want 1", cfg.Beta, len(events))
		}
		ev := events[0]
		if ev.Slot != 3 || ev.Origin != telemetry.OriginDecide || ev.DataCenter != -1 {
			t.Errorf("beta=%g: event header = slot %d origin %q dc %d", cfg.Beta, ev.Slot, ev.Origin, ev.DataCenter)
		}

		if ev.Drift+ev.Penalty != ev.Objective {
			t.Errorf("beta=%g: Drift %g + Penalty %g != Objective %g", cfg.Beta, ev.Drift, ev.Penalty, ev.Objective)
		}
		want := DriftPlusPenalty(c, cfg, st, q, act, gamma)
		if diff := math.Abs(ev.Objective - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Errorf("beta=%g: Objective = %g, DriftPlusPenalty = %g (diff %g)", cfg.Beta, ev.Objective, want, diff)
		}

		// The backlog snapshot is the pre-decision queue state.
		var central float64
		for _, v := range q.Central {
			central += v
		}
		if ev.CentralBacklog != central {
			t.Errorf("beta=%g: CentralBacklog = %g, want %g", cfg.Beta, ev.CentralBacklog, central)
		}
		total := central
		for i := range q.Local {
			var local float64
			for _, v := range q.Local[i] {
				local += v
			}
			total += local
			if ev.LocalBacklog[i] != local {
				t.Errorf("beta=%g: LocalBacklog[%d] = %g, want %g", cfg.Beta, i, ev.LocalBacklog[i], local)
			}
		}
		if ev.TotalBacklog != total {
			t.Errorf("beta=%g: TotalBacklog = %g, want %g", cfg.Beta, ev.TotalBacklog, total)
		}

		// Energy is the billed cost of the chosen action.
		if got, want := ev.Energy, act.BilledCost(c, st, cfg.Tariff); got != want {
			t.Errorf("beta=%g: Energy = %g, want %g", cfg.Beta, got, want)
		}

		// Solver diagnostics: greedy for beta=0, Frank-Wolfe otherwise.
		if ev.Solve == nil {
			t.Fatalf("beta=%g: missing Solve stats", cfg.Beta)
		}
		if cfg.Beta == 0 {
			if ev.Solve.Solver != telemetry.SolverGreedy {
				t.Errorf("beta=0: solver = %q, want greedy", ev.Solve.Solver)
			}
		} else {
			if ev.Solve.Solver != telemetry.SolverFrankWolfe {
				t.Errorf("beta=%g: solver = %q, want frank-wolfe", cfg.Beta, ev.Solve.Solver)
			}
			if ev.Solve.Iterations <= 0 {
				t.Errorf("beta=%g: Iterations = %d, want > 0", cfg.Beta, ev.Solve.Iterations)
			}
		}
	}
}

// TestDecideWithoutObserverAllocatesNoStats pins the nil-observer fast path:
// Decide must not build telemetry when nobody listens.
func TestDecideWithoutObserverAllocatesNoStats(t *testing.T) {
	c := refCluster(t)
	g, err := New(c, Config{V: 7.5, Beta: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	st := stateWith(c, 80, []float64{0.39, 0.43, 0.55})
	q := randomLengths(rng, c, 50)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.Decide(0, st, q); err != nil {
			t.Fatal(err)
		}
	})
	withObs := func() float64 {
		g2, err := New(c, Config{V: 7.5, Beta: 100, Observer: telemetry.ObserverFunc(func(telemetry.SlotEvent) {})})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := g2.Decide(0, st, q); err != nil {
				t.Fatal(err)
			}
		})
	}()
	if allocs >= withObs+1 {
		t.Errorf("nil-observer Decide allocates %v, observed Decide %v; expected fewer allocations without observer", allocs, withObs)
	}
}
