package core

import (
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/tariff"
)

// EnergyCost returns the money billed for an action's energy draw under the
// given tariff (nil means the paper's baseline linear pricing), counting
// only the increment the batch load adds on top of any base load. It is a
// convenience alias for model.Action.BilledCost.
func EnergyCost(c *model.Cluster, st *model.State, act *model.Action, trf tariff.Tariff) float64 {
	return act.BilledCost(c, st, trf)
}

// EnergyFairnessCost returns g(t) = e(t) - beta*f(t) for an action under a
// state (paper eq. 6), with the paper's quadratic fairness function (eq. 3)
// evaluated at the account target shares gamma and baseline linear pricing.
func EnergyFairnessCost(c *model.Cluster, st *model.State, act *model.Action, beta float64, gamma []float64) float64 {
	e := act.Energy(c, st)
	if beta == 0 {
		return e
	}
	return e - beta*quadraticFairness(c, st, act, gamma)
}

// quadraticFairness evaluates the paper's fairness score f(t) (eq. 3) for an
// action's realized allocation.
func quadraticFairness(c *model.Cluster, st *model.State, act *model.Action, gamma []float64) float64 {
	total := st.TotalResource(c)
	alloc := act.AccountWork(c)
	var f float64
	for m, w := range gamma {
		share := 0.0
		if total > 0 {
			share = alloc[m] / total
		}
		d := share - w
		f -= d * d
	}
	return f
}

// DriftPlusPenalty evaluates the full expression GreFar minimizes each slot
// (paper eq. 14):
//
//	V*g(t) - sum_j Q_j * [sum_{i in D_j} r_{i,j}]
//	       + sum_j sum_{i in D_j} q_{i,j} * [r_{i,j} - h_{i,j}]
//
// It is used by tests to verify that GreFar's action is no worse than any
// alternative feasible action, and by the ablation benchmarks.
func DriftPlusPenalty(c *model.Cluster, cfg Config, st *model.State, q queue.Lengths, act *model.Action, gamma []float64) float64 {
	g := EnergyCost(c, st, act, cfg.Tariff)
	if cfg.Beta != 0 {
		g -= cfg.Beta * quadraticFairness(c, st, act, gamma)
	}
	v := cfg.V * g
	for j := 0; j < c.J(); j++ {
		for _, i := range c.JobTypes[j].Eligible {
			r := float64(act.Route[i][j])
			v -= q.Central[j] * r
			v += q.Local[i][j] * (r - act.Process[i][j])
		}
	}
	return v
}

// AccountWeights extracts the gamma vector from a cluster's accounts.
func AccountWeights(c *model.Cluster) []float64 {
	out := make([]float64, c.M())
	for m, a := range c.Accounts {
		out[m] = a.Weight
	}
	return out
}
