package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"DC", "Speed"}, [][]string{
		{"dc1", "1.00"},
		{"dc2-long-name", "0.75"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "DC") || !strings.Contains(lines[0], "Speed") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	// The Speed column must start at the same offset in every row.
	off := strings.Index(lines[0], "Speed")
	if got := strings.Index(lines[3], "0.75"); got != off {
		t.Errorf("column misaligned: %d vs %d\n%s", got, off, sb.String())
	}
}

func TestTableShortRow(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, []string{"a", "b"}, [][]string{{"only"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestChartRendersSeries(t *testing.T) {
	var sb strings.Builder
	err := Chart(&sb, "energy", []Series{
		{Name: "V=0.1", Values: []float64{5, 5, 5, 5}},
		{Name: "V=20", Values: []float64{1, 2, 3, 4}},
	}, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "energy") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series glyphs missing")
	}
	if !strings.Contains(out, "V=0.1") || !strings.Contains(out, "V=20") {
		t.Error("legend missing")
	}
	// Y-axis labels: max 5 and min 1 should appear.
	if !strings.Contains(out, "5") || !strings.Contains(out, "1") {
		t.Error("axis labels missing")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, "empty", nil, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := Chart(&sb, "flat", []Series{{Name: "c", Values: []float64{2, 2}}}, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestChartDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	var sb strings.Builder
	if err := Chart(&sb, "big", []Series{{Name: "s", Values: vals}}, 30, 5); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 60 {
			t.Errorf("line too long after downsampling: %d chars", len(line))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"t", "x"}, [][]float64{{0, 1, 2}, {5.5, 6.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "t,x\n0,5.5\n1,6.5\n2,\n"
	if sb.String() != want {
		t.Errorf("got %q, want %q", sb.String(), want)
	}
	if err := WriteCSV(&sb, []string{"a"}, nil); err == nil {
		t.Error("mismatched headers/columns accepted")
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(3.14159, 2); got != "3.14" {
		t.Errorf("FormatFloat = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestHistogramBar(t *testing.T) {
	got := HistogramBar("<=1", 5, 10, 10)
	if !strings.Contains(got, "#####") || strings.Contains(got, "######") {
		t.Errorf("bar = %q, want 5 hashes", got)
	}
	if got := HistogramBar("x", 0, 0, 10); strings.Contains(got, "#") {
		t.Errorf("empty histogram drew bars: %q", got)
	}
	if got := HistogramBar("x", 20, 10, 10); strings.Count(got, "#") != 10 {
		t.Errorf("overflow not clamped: %q", got)
	}
}

func TestHistogramRender(t *testing.T) {
	var sb strings.Builder
	err := Histogram(&sb, "delays", []float64{1, 2, math.Inf(1)}, []float64{10, 5, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"delays", "<=1", "<=2", "+Inf", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := Histogram(&sb, "bad", []float64{1}, []float64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
