// Package report renders experiment results as aligned ASCII tables, simple
// multi-series ASCII line charts (the textual stand-in for the paper's
// figures), and CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for c, h := range headers {
		widths[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for c := range widths {
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			parts[c] = fmt.Sprintf("%-*s", widths[c], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// chartGlyphs mark successive series in a chart.
var chartGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders a multi-series ASCII line chart of the given width and
// height. Series are downsampled (by averaging) to the width; the y-range
// spans all series. Each series gets a distinct glyph, listed in the legend.
func Chart(w io.Writer, title string, series []Series, width, height int) error {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for sIdx, s := range series {
		glyph := chartGlyphs[sIdx%len(chartGlyphs)]
		for col := 0; col < width; col++ {
			v, ok := sampleAt(s.Values, col, width)
			if !ok {
				continue
			}
			rowF := (v - lo) / (hi - lo) * float64(height-1)
			row := height - 1 - int(math.Round(rowF))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = trimFloat(hi)
		case height - 1:
			label = trimFloat(lo)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s|\n", label, string(rowBytes)); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(series))
	for sIdx, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", chartGlyphs[sIdx%len(chartGlyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "   "))
	return err
}

// sampleAt averages the slice values mapped to one chart column.
func sampleAt(values []float64, col, width int) (float64, bool) {
	n := len(values)
	if n == 0 {
		return 0, false
	}
	start := col * n / width
	end := (col + 1) * n / width
	if end <= start {
		end = start + 1
	}
	if start >= n {
		return 0, false
	}
	if end > n {
		end = n
	}
	var sum float64
	for _, v := range values[start:end] {
		sum += v
	}
	return sum / float64(end-start), true
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return s
}

// HistogramBar renders one labeled bar of a text histogram: a count scaled
// to width against the maximum count.
func HistogramBar(label string, count, maxCount float64, width int) string {
	if width < 1 {
		width = 1
	}
	n := 0
	if maxCount > 0 {
		n = int(math.Round(count / maxCount * float64(width)))
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%12s |%-*s| %.0f", label, width, strings.Repeat("#", n), count)
}

// Histogram writes a text histogram from bucket bounds and counts (as
// returned by metrics.Histogram.Buckets). Empty buckets are printed so the
// shape reads correctly.
func Histogram(w io.Writer, title string, bounds, counts []float64, width int) error {
	if len(bounds) != len(counts) {
		return fmt.Errorf("got %d bounds but %d counts", len(bounds), len(counts))
	}
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	var max float64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for b := range bounds {
		label := "+Inf"
		if !math.IsInf(bounds[b], 1) {
			label = "<=" + trimFloat(bounds[b])
		}
		if _, err := fmt.Fprintln(w, HistogramBar(label, counts[b], max, width)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes named columns of equal or ragged lengths as CSV; missing
// cells are left empty.
func WriteCSV(w io.Writer, headers []string, cols [][]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("got %d headers but %d columns", len(headers), len(cols))
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	rows := 0
	for _, c := range cols {
		if len(c) > rows {
			rows = len(c)
		}
	}
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		sb.Reset()
		for ci, c := range cols {
			if ci > 0 {
				sb.WriteByte(',')
			}
			if r < len(c) {
				sb.WriteString(strconv.FormatFloat(c[r], 'g', -1, 64))
			}
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a value with the given number of decimals, for table
// cells.
func FormatFloat(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// SortedKeys returns the sorted keys of a string-keyed map, for stable
// report ordering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
