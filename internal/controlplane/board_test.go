package controlplane

import (
	"sync"
	"testing"
)

func boardWith(lens ...float64) *board {
	b := newBoard(len(lens))
	for j, l := range lens {
		b.ledgers[j].Push(0, l)
	}
	return b
}

// TestBoardConflictRejectsStaleClaim pins the optimistic-commit core: a
// claim against a snapshot that another commit has advanced must be
// rejected without registering anything, and succeed after re-snapshotting.
func TestBoardConflictRejectsStaleClaim(t *testing.T) {
	b := boardWith(10, 10)
	v1 := b.snapshot()
	v2 := b.snapshot()
	if !b.claim(v1, []float64{4, 0}, true) {
		t.Fatal("first claim on a fresh snapshot rejected")
	}
	if b.claim(v2, []float64{3, 0}, true) {
		t.Fatal("stale claim on an advanced row accepted")
	}
	if got := b.snapshot().lens[0]; got != 6 {
		t.Fatalf("rejected claim changed row 0: remaining %v, want 6", got)
	}
	// Rows the stale view merely read, but does not claim from, never conflict.
	if !b.claim(v2, []float64{0, 5}, true) {
		t.Fatal("claim on an unadvanced row rejected")
	}
	v3 := b.snapshot()
	if v3.lens[0] != 6 || v3.lens[1] != 5 {
		t.Fatalf("claim-reduced snapshot %v, want [6 5]", v3.lens)
	}
	if !b.claim(v3, []float64{3, 0}, true) {
		t.Fatal("retried claim on a fresh snapshot rejected")
	}
}

// TestBoardForcedClaimCapsAtContent pins the forced-commit escape hatch: an
// unvalidated claim always succeeds but can never register more than the
// rows still hold, so a forced commit may over-promise but never over-pop.
func TestBoardForcedClaimCapsAtContent(t *testing.T) {
	b := boardWith(5)
	v := b.snapshot()
	if !b.claim(v, []float64{4}, false) {
		t.Fatal("unvalidated claim rejected")
	}
	if !b.claim(v, []float64{4}, false) {
		t.Fatal("second unvalidated claim rejected")
	}
	if got := b.snapshot().lens[0]; got != 0 {
		t.Fatalf("remaining %v after over-claim, want 0", got)
	}
	b.mu.Lock()
	claimed := b.claimed[0]
	b.mu.Unlock()
	if claimed != 5 {
		t.Fatalf("claimed %v from a row of 5", claimed)
	}
	if got := b.lensUnclaimed()[0]; got != 5 {
		t.Fatalf("claims leaked into the ledger: lens %v, want 5", got)
	}
}

// TestBoardResetClaimsOpensSlot pins the slot boundary: resetClaims restores
// full visibility without touching the ledgers.
func TestBoardResetClaimsOpensSlot(t *testing.T) {
	b := boardWith(8)
	if !b.claim(b.snapshot(), []float64{8}, true) {
		t.Fatal("claim rejected")
	}
	if got := b.snapshot().lens[0]; got != 0 {
		t.Fatalf("remaining %v, want 0", got)
	}
	b.resetClaims()
	if got := b.snapshot().lens[0]; got != 8 {
		t.Fatalf("remaining %v after resetClaims, want 8", got)
	}
}

// TestBoardConcurrentClaimsNeverOverdraw races many claimants at one row:
// whatever interleaving wins, the registered total can never exceed the
// row's content.
func TestBoardConcurrentClaimsNeverOverdraw(t *testing.T) {
	b := boardWith(20)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				v := b.snapshot()
				if !b.claim(v, []float64{3}, true) {
					continue
				}
			}
		}()
	}
	wg.Wait()
	b.mu.Lock()
	claimed := b.claimed[0]
	b.mu.Unlock()
	if claimed > 20 {
		t.Fatalf("claims total %v exceeds row content 20", claimed)
	}
	if got := b.snapshot().lens[0]; got < 0 {
		t.Fatalf("negative claim-reduced length %v", got)
	}
}
