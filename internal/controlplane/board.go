package controlplane

import (
	"sync"

	"grefar/internal/queue"
)

// board is the shared-state heart of the partitioned control plane: the
// authoritative central ledgers Q_j plus a per-row version and a running
// claim total for the slot in flight. Partitions never pop the ledgers
// themselves — they snapshot the claim-reduced lengths, decide against them,
// and commit a claim; the plane executes the merged pops once, centrally,
// after every partition has committed. That keeps the realized routing equal
// to the data-center-order consumption of the merged nominal route, which is
// exactly what the invariant checker's flow rules demand.
//
// Optimistic concurrency, Arktos-style: a commit that wants jobs from row j
// validates that no other partition's commit advanced row j since its
// snapshot; on a version mismatch the commit is rejected and the partition
// re-snapshots and re-decides. Conflict = overlapping central-queue claims,
// nothing else — rows a partition only read but did not claim from never
// conflict.
type board struct {
	mu      sync.Mutex
	ledgers []queue.Ledger
	version []uint64  // bumped once per committed claim that takes jobs from the row
	claimed []float64 // jobs claimed this slot, per row; reset at slot start
}

func newBoard(rows int) *board {
	return &board{
		ledgers: make([]queue.Ledger, rows),
		version: make([]uint64, rows),
		claimed: make([]float64, rows),
	}
}

// view is one partition's read of the board: claim-reduced row lengths and
// the versions they were read at.
type view struct {
	lens     []float64
	versions []uint64
}

// snapshot returns the current claim-reduced lengths and row versions.
func (b *board) snapshot() view {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := view{lens: make([]float64, len(b.ledgers)), versions: make([]uint64, len(b.ledgers))}
	for j := range b.ledgers {
		rem := b.ledgers[j].Len() - b.claimed[j]
		if rem < 0 {
			rem = 0
		}
		v.lens[j] = rem
		v.versions[j] = b.version[j]
	}
	return v
}

// claim registers a partition's intended pops (want[j] = nominal routed jobs
// from row j). With validate set, the claim is rejected — and nothing is
// registered — if any row the partition wants jobs from advanced since its
// snapshot. Claims are capped at remaining content; a row's version bumps
// only when the claim actually takes jobs, so partitions draining disjoint
// rows never conflict.
func (b *board) claim(v view, want []float64, validate bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if validate {
		for j, w := range want {
			if w > 0 && b.version[j] != v.versions[j] {
				return false
			}
		}
	}
	for j, w := range want {
		if w <= 0 {
			continue
		}
		rem := b.ledgers[j].Len() - b.claimed[j]
		if rem < 0 {
			rem = 0
		}
		take := w
		if take > rem {
			take = rem
		}
		if take > 0 {
			b.claimed[j] += take
			b.version[j]++
		}
	}
	return true
}

// resetClaims opens a new slot: the previous slot's claims were realized (or
// restored) on the ledgers themselves.
func (b *board) resetClaims() {
	b.mu.Lock()
	for j := range b.claimed {
		b.claimed[j] = 0
	}
	b.mu.Unlock()
}

// lens returns the true ledger lengths (no claim reduction) — the slot-initial
// central backlog used for state assembly, telemetry, and deterministic mode.
func (b *board) lensUnclaimed() []float64 {
	out := make([]float64, len(b.ledgers))
	for j := range b.ledgers {
		out[j] = b.ledgers[j].Len()
	}
	return out
}
