// Package controlplane implements a partitioned shared-state control plane
// for the distributed GreFar deployment: N controller partitions, each
// owning a disjoint contiguous subset of the data centers, run
// gather -> decide -> scatter concurrently against a shared versioned
// snapshot of the queue state (the central ledgers plus the health tracker's
// shadow views) with optimistic commit. A partition's commit is rejected —
// and its decision retried against a fresh snapshot — when a conflicting
// commit advanced a central-queue row it claims jobs from, the
// conflict-aware request distribution of Arktos-style scale-out schedulers.
//
// The partitions reuse the single controller's building blocks rather than
// forking them: the controller.Tracker drives the identical
// Healthy/Suspect/Dead/Rejoining machine and shadow ledgers per owned agent,
// gather and scatter ride transport.MuxClient with calls batched per
// connection, and the emitted per-slot telemetry is constructed field by
// field like the controller's, so the invariant checker accepts every
// applied slot.
//
// Deterministic mode (Config.Deterministic) makes every partition decide
// from the slot-initial snapshot with commit validation disabled: because
// each partition runs an identically-configured deterministic scheduler on
// identical inputs, the merged action equals the single controller's and the
// whole trajectory is byte-identical to it — the equivalence
// TestPartitionedMatchesSingle pins against a golden trace.
package controlplane

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"grefar/internal/controller"
	"grefar/internal/fairness"
	"grefar/internal/metrics"
	"grefar/internal/model"
	"grefar/internal/queue"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
	"grefar/internal/workload"
)

// Config tunes a Plane. Partitions and NewScheduler are required.
type Config struct {
	// Partitions is the number of controller partitions; the data centers are
	// split into that many contiguous, near-equal ownership ranges.
	Partitions int
	// Deterministic disables optimistic concurrency: every partition decides
	// from the slot-initial snapshot and commits without validation, which
	// reproduces the single-controller trajectory byte-identically.
	Deterministic bool
	// NewScheduler builds one scheduler per partition. Schedulers are
	// stateful, so each partition needs its own instance; for deterministic
	// mode they must be identically configured.
	NewScheduler func() (sched.Scheduler, error)
	// Policy, SuspectAfter, DeadAfter configure the shared health tracker
	// exactly like the single controller's options.
	Policy       controller.FailurePolicy
	SuspectAfter int
	DeadAfter    int
	// MaxRetries bounds a partition's conflict-retry loop per slot; after
	// that many rejections it commits unvalidated (counted in Stats.Forced).
	// Default: Partitions — by then every conflicting peer has committed.
	MaxRetries int
	// Observer receives one SlotEvent per slot (origin "controller"),
	// identical in shape to the single controller's.
	Observer telemetry.SlotObserver
	// Registry, when set, publishes the tracker's health families plus the
	// per-partition commit telemetry (conflicts, retries, commits, commit
	// latency).
	Registry *telemetry.Registry
}

// Plane drives the partitioned control loop. It exposes the same slot and
// run surfaces as controller.Controller so daemons and experiments can treat
// the two interchangeably.
type Plane struct {
	cluster *model.Cluster
	conns   []controller.AgentConn
	cfg     Config
	fair    fairness.Function
	obs     telemetry.SlotObserver
	detail  bool
	tracker *controller.Tracker
	board   *board
	parts   []*partition
	metrics *planeMetrics
}

// partition is one controller partition: its contiguous ownership range, its
// scheduler instance, and its commit telemetry.
type partition struct {
	id    int
	owned []int // global data-center ids, ascending
	sch   sched.Scheduler

	conflicts atomic.Int64
	retries   atomic.Int64
	commits   atomic.Int64
	forced    atomic.Int64
}

// planeMetrics is the registry surface of the commit protocol.
type planeMetrics struct {
	conflicts *telemetry.CounterVec
	retries   *telemetry.CounterVec
	commits   *telemetry.CounterVec
	latency   *telemetry.HistogramVec
}

// PartitionStats is one partition's commit-protocol counters.
type PartitionStats struct {
	Partition int
	Owned     int
	Conflicts int64 // commits rejected on a version mismatch
	Retries   int64 // re-decide rounds after a rejection
	Commits   int64 // successful commits (slots decided)
	Forced    int64 // commits applied unvalidated after MaxRetries rejections
}

// New builds a partitioned control plane over the given agent connections;
// conns[i] must serve data center i.
func New(c *model.Cluster, conns []controller.AgentConn, cfg Config) (*Plane, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(conns) != c.N() {
		return nil, fmt.Errorf("got %d agent conns, cluster has %d data centers", len(conns), c.N())
	}
	if cfg.Partitions < 1 || cfg.Partitions > c.N() {
		return nil, fmt.Errorf("partitions %d outside [1,%d]", cfg.Partitions, c.N())
	}
	if cfg.NewScheduler == nil {
		return nil, fmt.Errorf("nil scheduler factory")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = cfg.Partitions
	}
	weights := make([]float64, c.M())
	for m, a := range c.Accounts {
		weights[m] = a.Weight
	}
	fair, err := fairness.NewQuadratic(weights)
	if err != nil {
		return nil, err
	}
	pl := &Plane{
		cluster: c,
		conns:   conns,
		cfg:     cfg,
		fair:    fair,
		obs:     cfg.Observer,
		board:   newBoard(c.J()),
		tracker: controller.NewTracker(c, conns, controller.HealthConfig{
			Policy:       cfg.Policy,
			SuspectAfter: cfg.SuspectAfter,
			DeadAfter:    cfg.DeadAfter,
		}, cfg.Registry),
	}
	pl.detail = telemetry.WantsDetail(pl.obs)
	n, p := c.N(), cfg.Partitions
	for id := 0; id < p; id++ {
		lo, hi := id*n/p, (id+1)*n/p
		owned := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			owned = append(owned, i)
		}
		s, err := cfg.NewScheduler()
		if err != nil {
			return nil, fmt.Errorf("partition %d scheduler: %w", id, err)
		}
		if s == nil {
			return nil, fmt.Errorf("partition %d: scheduler factory returned nil", id)
		}
		pl.parts = append(pl.parts, &partition{id: id, owned: owned, sch: s})
	}
	if cfg.Registry != nil {
		pl.metrics = &planeMetrics{
			conflicts: cfg.Registry.Counter("grefar_controlplane_commit_conflicts_total",
				"Optimistic commits rejected because a conflicting commit advanced a claimed central-queue row.", "partition"),
			retries: cfg.Registry.Counter("grefar_controlplane_commit_retries_total",
				"Re-decide rounds run after a rejected commit.", "partition"),
			commits: cfg.Registry.Counter("grefar_controlplane_commits_total",
				"Successful partition commits (one per partition per applied slot).", "partition"),
			latency: cfg.Registry.Histogram("grefar_controlplane_commit_seconds",
				"Wall-clock time from a partition's first snapshot to its accepted commit, retries included.",
				[]float64{.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25}, "partition"),
		}
	}
	return pl, nil
}

// Partitions returns the number of controller partitions.
func (pl *Plane) Partitions() int { return len(pl.parts) }

// Owned returns partition p's data-center ids.
func (pl *Plane) Owned(p int) []int { return append([]int(nil), pl.parts[p].owned...) }

// Health returns the per-agent health states from the shared tracker.
func (pl *Plane) Health() []controller.AgentHealth { return pl.tracker.Health() }

// CentralLens returns the central backlog per job type.
func (pl *Plane) CentralLens() []float64 { return pl.board.lensUnclaimed() }

// Stats returns each partition's commit-protocol counters.
func (pl *Plane) Stats() []PartitionStats {
	out := make([]PartitionStats, len(pl.parts))
	for i, p := range pl.parts {
		out[i] = PartitionStats{
			Partition: p.id,
			Owned:     len(p.owned),
			Conflicts: p.conflicts.Load(),
			Retries:   p.retries.Load(),
			Commits:   p.commits.Load(),
			Forced:    p.forced.Load(),
		}
	}
	return out
}

func partLabel(id int) string { return strconv.Itoa(id) }

// errAgentDead marks an agent excluded from the gather set because its
// health state is Dead; the slot opens with a probe for it instead.
var errAgentDead = errors.New("agent is dead; probing instead of gathering")

// joinAgentErrors aggregates per-agent failures into one error naming every
// failed agent, matching the single controller's strict-abort shape.
func joinAgentErrors(phase string, errs []error) error {
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("agent %d %s: %w", i, phase, err))
		}
	}
	return errors.Join(joined...)
}

// callPlan groups one partition's owned agents by wire: agents behind the
// same MuxClient share one batched frame; everything else (chaos-wrapped
// conns, reconnecting clients, in-process fakes) falls back to a concurrent
// per-agent call.
type callPlan struct {
	batches  map[*transport.MuxClient][]int // client -> global agent ids
	fallback []int
}

func (pl *Plane) plan(agents []int) callPlan {
	cp := callPlan{batches: make(map[*transport.MuxClient][]int)}
	for _, i := range agents {
		if mc, ok := pl.conns[i].(*transport.MuxConn); ok {
			cli := mc.Client()
			cp.batches[cli] = append(cp.batches[cli], i)
		} else {
			cp.fallback = append(cp.fallback, i)
		}
	}
	return cp
}

// callMany issues one kind of RPC to every listed agent — batched per
// MuxClient, concurrent singles otherwise — writing results and errors at
// the agents' global indices. req(i) builds the request; resp(i) returns the
// decode destination (may be nil to discard).
func (pl *Plane) callMany(ctx context.Context, agents []int, kind string,
	req func(i int) any, resp func(i int) any, errs []error) {
	cp := pl.plan(agents)
	var wg sync.WaitGroup
	for cli, ids := range cp.batches {
		wg.Add(1)
		go func(cli *transport.MuxClient, ids []int) {
			defer wg.Done()
			calls := make([]transport.BatchCall, len(ids))
			for k, i := range ids {
				calls[k] = transport.BatchCall{
					Target: pl.conns[i].(*transport.MuxConn).Target(),
					Kind:   kind,
					Req:    req(i),
					Resp:   resp(i),
				}
			}
			start := time.Now()
			err := cli.CallBatch(ctx, calls)
			rtt := time.Since(start)
			for k, i := range ids {
				pl.tracker.ObserveRTT(i, rtt)
				if err != nil {
					errs[i] = err
					continue
				}
				errs[i] = calls[k].Err
			}
		}(cli, ids)
	}
	for _, i := range cp.fallback {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = pl.tracker.Call(ctx, i, kind, req(i), resp(i))
		}(i)
	}
	wg.Wait()
}

// RunSlot executes one slot of the partitioned control loop.
func (pl *Plane) RunSlot(t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	return pl.RunSlotContext(context.Background(), t, arrivals)
}

// RunSlotContext is RunSlot with cancellation threaded into the agent calls.
//
// Slot structure: (1) each partition concurrently probes its Dead agents,
// gathers its owned agents' state reports (batched per connection), and
// resolves them into the shared health tracker; (2) the global state is
// assembled once from the reports and shadows; (3) each partition
// concurrently decides against a versioned snapshot of the central board and
// commits its claim optimistically, retrying on conflict; (4) the merged
// action's central pops execute once in data-center order — so the realized
// routing is identical to what a single controller dispatching the merged
// action would produce — and each partition scatters its owned allocations
// (batched); (5) acks settle against the shadow ledgers and the slot's
// arrivals enter the central queues. Failure semantics per policy match the
// single controller, including the strict-mode checkpoint that restores the
// central ledgers when an allocate failure aborts an already-popped slot.
func (pl *Plane) RunSlotContext(ctx context.Context, t int, arrivals []int) (*model.Action, *model.State, []transport.AllocateAck, error) {
	c := pl.cluster
	if len(arrivals) != c.J() {
		return nil, nil, nil, fmt.Errorf("got %d arrival counts, want %d", len(arrivals), c.J())
	}
	for j, a := range arrivals {
		if a < 0 {
			return nil, nil, nil, fmt.Errorf("negative arrivals for job type %d", j)
		}
	}
	degrade := pl.cfg.Policy == controller.Degrade

	// Phase 1: per-partition probe + gather + resolve, concurrently. Every
	// write lands at an owned agent's index, and ownership is disjoint, so
	// the shared arrays and tracker records never race.
	reports := make([]transport.StateReport, c.N())
	errs := make([]error, c.N())
	ok := make([]bool, c.N())
	var wg sync.WaitGroup
	for _, p := range pl.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			if degrade {
				pl.tracker.ProbeDead(ctx, t, p.owned)
			}
			live := make([]int, 0, len(p.owned))
			for _, i := range p.owned {
				if pl.tracker.State(i) == controller.Dead {
					errs[i] = errAgentDead
					continue
				}
				live = append(live, i)
			}
			pl.callMany(ctx, live, transport.KindState,
				func(i int) any { return transport.StateRequest{Slot: t} },
				func(i int) any { return &reports[i] },
				errs)
			for _, i := range live {
				if errs[i] == nil {
					errs[i] = reports[i].Validate(i, t, c.K(i), c.J())
				}
			}
			if !degrade {
				return // strict resolution happens globally after the barrier
			}
			for _, i := range p.owned {
				if errs[i] != nil {
					pl.tracker.RecordFailure(i)
					continue
				}
				ok[i] = pl.tracker.ResolveReport(ctx, i, t, &reports[i])
			}
		}(p)
	}
	wg.Wait()
	if !degrade {
		if err := joinAgentErrors("state", errs); err != nil {
			return nil, nil, nil, err
		}
		for i := range reports {
			pl.tracker.TrueUpShadow(i, t, &reports[i])
			ok[i] = true
		}
	}

	// Phase 2: assemble the global state exactly like the single controller.
	st := model.NewState(c)
	pre := queue.Lengths{Central: pl.board.lensUnclaimed(), Local: make([][]float64, c.N())}
	var masked []int
	for i := 0; i < c.N(); i++ {
		if ok[i] {
			copy(st.Avail[i], reports[i].Avail)
			st.Price[i] = reports[i].Price
		} else {
			st.Price[i] = pl.tracker.LastPrice(i)
			masked = append(masked, i)
		}
		pre.Local[i] = pl.tracker.ShadowLens(i)
	}
	if err := st.Validate(c); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: bad assembled state: %w", t, err)
	}
	if len(masked) > 0 {
		pl.tracker.NoteDegraded()
	}

	// Phase 3: concurrent decide + optimistic commit. Each partition decides
	// full-cluster (the schedulers are whole-problem solvers) but only its
	// owned rows enter the merged action; claims cover only owned-row routes,
	// so conflicts are exactly overlapping central-queue demands.
	pl.board.resetClaims()
	initView := view{lens: pre.Central, versions: nil}
	merged := model.NewAction(c)
	partErrs := make([]error, len(pl.parts))
	for _, p := range pl.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			start := time.Now()
			var act *model.Action
			for attempt := 0; ; attempt++ {
				v := initView
				if !pl.cfg.Deterministic {
					v = pl.board.snapshot()
				}
				a, err := p.sch.Decide(t, st, queue.Lengths{Central: v.lens, Local: pre.Local})
				if err != nil {
					partErrs[p.id] = fmt.Errorf("partition %d: %s: %w", p.id, p.sch.Name(), err)
					return
				}
				if pl.cfg.Deterministic {
					act = a
					break
				}
				want := make([]float64, c.J())
				for _, i := range p.owned {
					for j, r := range a.Route[i] {
						want[j] += float64(r)
					}
				}
				if attempt >= pl.cfg.MaxRetries {
					pl.board.claim(v, want, false)
					p.forced.Add(1)
					act = a
					break
				}
				if pl.board.claim(v, want, true) {
					act = a
					break
				}
				p.conflicts.Add(1)
				p.retries.Add(1)
				if pl.metrics != nil {
					pl.metrics.conflicts.With(partLabel(p.id)).Inc()
					pl.metrics.retries.With(partLabel(p.id)).Inc()
				}
			}
			p.commits.Add(1)
			if pl.metrics != nil {
				pl.metrics.commits.With(partLabel(p.id)).Inc()
				pl.metrics.latency.With(partLabel(p.id)).Observe(time.Since(start).Seconds())
			}
			for _, i := range p.owned {
				copy(merged.Route[i], act.Route[i])
				copy(merged.Process[i], act.Process[i])
				copy(merged.Busy[i], act.Busy[i])
			}
		}(p)
	}
	wg.Wait()
	if err := errors.Join(partErrs...); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: %w", t, err)
	}

	// Flow around masked sites, as the single controller does.
	for _, i := range masked {
		for j := range merged.Route[i] {
			merged.Route[i][j] = 0
			merged.Process[i][j] = 0
		}
		for k := range merged.Busy[i] {
			merged.Busy[i][k] = 0
		}
	}
	if err := merged.Validate(c, st); err != nil {
		return nil, nil, nil, fmt.Errorf("slot %d: infeasible merged action: %w", t, err)
	}

	// Strict checkpoint: allocate failures below abort after the pops.
	var checkpoint []queue.Ledger
	if !degrade {
		checkpoint = make([]queue.Ledger, c.J())
		for j := range pl.board.ledgers {
			checkpoint[j] = pl.board.ledgers[j].Clone()
		}
	}

	// Phase 4a: realize the merged routing with one central pop pass in
	// (job type, data-center) order — the same consumption order as
	// queue.Set.Apply and the single controller, which is what the invariant
	// checker's flow-routed rule recomputes.
	routed := make([][]int, c.N())
	routedF := make([][]float64, c.N())
	for i := range routed {
		routed[i] = make([]int, c.J())
		routedF[i] = make([]float64, c.J())
	}
	for j := 0; j < c.J(); j++ {
		for i := 0; i < c.N(); i++ {
			r := merged.Route[i][j]
			if r <= 0 {
				continue
			}
			popped, _ := pl.board.ledgers[j].Pop(t, float64(r))
			routed[i][j] = int(popped)
			routedF[i][j] = popped
		}
	}

	// Phase 4b: per-partition batched scatter.
	acks := make([]transport.AllocateAck, c.N())
	errsA := make([]error, c.N())
	for _, p := range pl.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			live := make([]int, 0, len(p.owned))
			for _, i := range p.owned {
				if ok[i] {
					live = append(live, i)
				}
			}
			pl.callMany(ctx, live, transport.KindAllocate,
				func(i int) any {
					return transport.Allocate{
						Slot:    t,
						Route:   routed[i],
						Process: merged.Process[i],
						Busy:    merged.Busy[i],
					}
				},
				func(i int) any { return &acks[i] },
				errsA)
		}(p)
	}
	wg.Wait()
	if !degrade {
		if err := joinAgentErrors("allocate", errsA); err != nil {
			copy(pl.board.ledgers, checkpoint)
			return nil, nil, nil, err
		}
	}

	// Phase 5: settle acks against the shadows in agent index order, then
	// admit the slot's arrivals — identical to the single controller.
	processedEv := make([][]float64, c.N())
	for i := 0; i < c.N(); i++ {
		popped, delays := pl.tracker.ApplyShadow(i, t, merged.Process[i], routed[i])
		processedEv[i] = popped
		if !ok[i] {
			acks[i] = transport.AllocateAck{
				Slot:      t,
				Processed: make([]float64, c.J()),
				DelaySum:  make([]float64, c.J()),
			}
			continue
		}
		if errsA[i] != nil {
			pl.tracker.RecordFailure(i)
			acks[i] = pl.tracker.SynthesizeAck(i, t, popped, delays, st, merged)
			continue
		}
		for j := range popped {
			if acks[i].Processed[j] != popped[j] {
				pl.tracker.NoteDivergence(i)
				break
			}
		}
	}

	for j, a := range arrivals {
		pl.board.ledgers[j].Push(t, float64(a))
	}

	pl.emitSlot(t, arrivals, st, merged, pre, routedF, processedEv, acks, masked)
	return merged, st, acks, nil
}

// emitSlot publishes the merged slot event, constructed field by field like
// controller.Controller.emitSlot so deterministic mode is byte-identical.
func (pl *Plane) emitSlot(t int, arrivals []int, st *model.State, act *model.Action,
	pre queue.Lengths, routedF, processedEv [][]float64, acks []transport.AllocateAck, masked []int) {
	if pl.obs == nil {
		return
	}
	c := pl.cluster
	post := queue.Lengths{Central: pl.board.lensUnclaimed(), Local: make([][]float64, c.N())}
	for i := 0; i < c.N(); i++ {
		post.Local[i] = pl.tracker.ShadowLens(i)
	}
	ev := telemetry.SlotEvent{
		Slot:       t,
		Origin:     telemetry.OriginController,
		Scheduler:  pl.parts[0].sch.Name(),
		DataCenter: -1,
		Degraded:   masked,
	}
	ev.EnergyPerDC = make([]float64, c.N())
	alloc := make([]float64, c.M())
	for i, ack := range acks {
		ev.Energy += ack.Energy
		ev.EnergyPerDC[i] = ack.Energy
	}
	for i := range processedEv {
		for j, p := range processedEv[i] {
			ev.Processed += p
			alloc[c.JobTypes[j].Account] += p * c.JobTypes[j].Demand
		}
	}
	ev.Fairness = pl.fair.Score(alloc, st.TotalResource(c))
	for _, a := range arrivals {
		ev.Arrived += float64(a)
	}
	for _, v := range post.Central {
		ev.CentralBacklog += v
	}
	ev.LocalBacklog = make([]float64, c.N())
	for i := range post.Local {
		for _, v := range post.Local[i] {
			ev.LocalBacklog[i] += v
		}
	}
	ev.TotalBacklog = ev.CentralBacklog
	for _, v := range ev.LocalBacklog {
		ev.TotalBacklog += v
	}
	if pl.detail {
		ev.Detail = &telemetry.SlotDetail{
			State:     st.Clone(),
			Action:    act.Clone(),
			Pre:       pre.Clone(),
			Post:      post.Clone(),
			Arrivals:  append([]int(nil), arrivals...),
			Routed:    routedF,
			Processed: processedEv,
		}
	}
	pl.obs.ObserveSlot(ev)
}

// Run drives the loop for the given horizon, aggregating the same metrics as
// controller.Controller.Run.
func (pl *Plane) Run(slots int, wl workload.Generator) (*sim.Result, error) {
	return pl.RunContext(context.Background(), slots, wl)
}

// RunContext is Run with cancellation between slots.
func (pl *Plane) RunContext(ctx context.Context, slots int, wl workload.Generator) (*sim.Result, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("horizon %d is not positive", slots)
	}
	if wl == nil {
		return nil, fmt.Errorf("nil workload")
	}
	c := pl.cluster
	energy := metrics.NewRunning(false)
	fairScore := metrics.NewRunning(false)
	localDelay := make([]*metrics.Ratio, c.N())
	workAvg := make([]*metrics.Running, c.N())
	for i := range localDelay {
		localDelay[i] = metrics.NewRatio(false)
		workAvg[i] = metrics.NewRunning(false)
	}

	res := &sim.Result{SchedulerName: pl.parts[0].sch.Name(), Slots: slots}
	for t := 0; t < slots; t++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("slot %d: run canceled: %w", t, err)
			}
		}
		arrivals := wl.Arrivals(t)
		_, st, acks, err := pl.RunSlotContext(ctx, t, arrivals)
		if err != nil {
			return nil, err
		}
		var e float64
		alloc := make([]float64, c.M())
		for i, ack := range acks {
			e += ack.Energy
			var dSum, dCount float64
			for j := 0; j < c.J(); j++ {
				dSum += ack.DelaySum[j]
				dCount += ack.Processed[j]
				alloc[c.JobTypes[j].Account] += ack.Processed[j] * c.JobTypes[j].Demand
				res.TotalProcessed += ack.Processed[j]
			}
			localDelay[i].Add(dSum, dCount)
			workAvg[i].Add(ack.Work)
		}
		energy.Add(e)
		fairScore.Add(pl.fair.Score(alloc, st.TotalResource(c)))
		for _, a := range arrivals {
			res.TotalArrived += float64(a)
		}
	}
	res.AvgEnergy = energy.Mean()
	res.AvgFairness = fairScore.Mean()
	res.AvgLocalDelay = make([]float64, c.N())
	res.AvgWorkPerDC = make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		res.AvgLocalDelay[i] = localDelay[i].Value()
		res.AvgWorkPerDC[i] = workAvg[i].Mean()
	}
	var backlog float64
	for _, v := range pl.board.lensUnclaimed() {
		backlog += v
	}
	res.FinalBacklog = backlog // central only; agents hold the rest
	return res, nil
}
