package controlplane

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"grefar/internal/agent"
	"grefar/internal/controller"
	"grefar/internal/core"
	"grefar/internal/invariant"
	"grefar/internal/sched"
	"grefar/internal/sim"
	"grefar/internal/telemetry"
	"grefar/internal/transport"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_partitioned.jsonl")

// localConn adapts an in-process agent to controller.AgentConn without TCP,
// mirroring the controller package's unit-test harness.
type localConn struct {
	a interface {
		Handle(kind string, body []byte) (any, error)
	}
}

func (l localConn) Call(kind string, reqBody, respBody any) error {
	body, err := transport.Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := l.a.Handle(kind, body)
	if err != nil {
		return err
	}
	if respBody == nil {
		return nil
	}
	data, err := transport.Marshal(out)
	if err != nil {
		return err
	}
	return transport.Unmarshal(data, respBody)
}

func buildSystem(t *testing.T, slots int) (sim.Inputs, []controller.AgentConn, func()) {
	t.Helper()
	in, err := sim.NewReferenceInputs(2012, slots)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]controller.AgentConn, in.Cluster.N())
	for i := 0; i < in.Cluster.N(); i++ {
		a, err := agent.New(agent.Config{
			Cluster:      in.Cluster,
			DataCenter:   i,
			Price:        in.Prices[i],
			Availability: in.Availability,
		})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = localConn{a: a}
	}
	return in, conns, func() {}
}

func grefarFactory(in sim.Inputs) func() (sched.Scheduler, error) {
	return func() (sched.Scheduler, error) {
		return core.New(in.Cluster, core.Config{V: 7.5})
	}
}

// TestPartitionedMatchesSingle pins the deterministic-mode equivalence that
// makes the partitioned plane trustworthy: with commit validation off and
// every partition deciding from the slot-initial snapshot, a P-partition
// plane must reproduce the single controller's event trace byte for byte,
// for every partition count, and match the checked-in golden trace.
// Regenerate deliberately with
// `go test ./internal/controlplane -run TestPartitionedMatchesSingle -update`.
func TestPartitionedMatchesSingle(t *testing.T) {
	const slots = 24

	runSingle := func() []byte {
		in, conns, cleanup := buildSystem(t, slots)
		defer cleanup()
		g, err := core.New(in.Cluster, core.Config{V: 7.5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ct, err := controller.New(in.Cluster, g, conns,
			controller.WithObserver(telemetry.NewJSONLObserver(&buf)))
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < slots; tt++ {
			if _, _, _, err := ct.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
				t.Fatalf("single controller slot %d: %v", tt, err)
			}
		}
		return buf.Bytes()
	}
	single := runSingle()

	runPartitioned := func(parts int) ([]byte, *Plane) {
		in, conns, cleanup := buildSystem(t, slots)
		defer cleanup()
		var buf bytes.Buffer
		pl, err := New(in.Cluster, conns, Config{
			Partitions:    parts,
			Deterministic: true,
			NewScheduler:  grefarFactory(in),
			Observer:      telemetry.NewJSONLObserver(&buf),
		})
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < slots; tt++ {
			if _, _, _, err := pl.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
				t.Fatalf("partitioned (P=%d) slot %d: %v", parts, tt, err)
			}
		}
		return buf.Bytes(), pl
	}

	var golden []byte
	for parts := 1; parts <= 3; parts++ {
		trace, pl := runPartitioned(parts)
		if diff := invariant.DiffJSONL(trace, single); diff != "" {
			t.Fatalf("P=%d deterministic trace deviates from single controller:\n%s", parts, diff)
		}
		for _, st := range pl.Stats() {
			if st.Conflicts != 0 || st.Forced != 0 {
				t.Errorf("P=%d partition %d: deterministic mode recorded conflicts=%d forced=%d",
					parts, st.Partition, st.Conflicts, st.Forced)
			}
			if st.Commits != slots {
				t.Errorf("P=%d partition %d: %d commits, want %d", parts, st.Partition, st.Commits, slots)
			}
		}
		golden = trace
	}

	path := filepath.Join("testdata", "golden_partitioned.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(golden))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden partitioned trace (regenerate with -update): %v", err)
	}
	if diff := invariant.DiffJSONL(golden, want); diff != "" {
		t.Errorf("partitioned trace deviates from %s:\n%s", path, diff)
	}
}

// TestConcurrentCommitsKeepInvariants runs the plane in full optimistic
// concurrency — every partition snapshotting, deciding, and committing
// against the live board — with the invariant checker attached: whatever
// interleaving the scheduler produces, every applied slot must satisfy
// conservation, queue dynamics, and flow realization, and the commit
// telemetry must account for every slot.
func TestConcurrentCommitsKeepInvariants(t *testing.T) {
	const slots, parts = 40, 3
	in, conns, cleanup := buildSystem(t, slots)
	defer cleanup()
	ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
	reg := telemetry.NewRegistry()
	pl, err := New(in.Cluster, conns, Config{
		Partitions:   parts,
		NewScheduler: grefarFactory(in),
		Observer:     ck,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < slots; tt++ {
		if _, _, _, err := pl.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Errorf("invariant violation under concurrent commits: %v", err)
	}
	if ck.Slots() != slots {
		t.Errorf("checker saw %d slots, want %d", ck.Slots(), slots)
	}
	var commits, conflicts, retries int64
	for _, st := range pl.Stats() {
		commits += st.Commits
		conflicts += st.Conflicts
		retries += st.Retries
		if st.Commits != slots {
			t.Errorf("partition %d: %d commits, want %d", st.Partition, st.Commits, slots)
		}
	}
	if commits != int64(slots*parts) {
		t.Errorf("total commits %d, want %d", commits, slots*parts)
	}
	if conflicts != retries {
		t.Errorf("conflicts %d != retries %d: every rejection must trigger exactly one retry", conflicts, retries)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"grefar_controlplane_commits_total",
		"grefar_controlplane_commit_conflicts_total",
		"grefar_controlplane_commit_seconds",
	} {
		if !strings.Contains(prom.String(), fam) {
			t.Errorf("registry missing %s", fam)
		}
	}
}

// failFromConn fails every call to one agent from a given slot onward,
// modeling a mid-run outage visible only at the wire.
type failFromConn struct {
	inner controller.AgentConn
	down  *atomic.Bool
}

func (f failFromConn) Call(kind string, reqBody, respBody any) error {
	if f.down.Load() {
		return errors.New("failFromConn: agent unreachable")
	}
	return f.inner.Call(kind, reqBody, respBody)
}

// TestPartitionedDegradeMasksFailedAgent checks that the partition owning a
// failed agent drives the shared health machine exactly like the single
// controller: under Degrade the run continues, the failed agent is masked
// out of the slot evidence, its health leaves Healthy, and the invariant
// checker holds on every applied slot.
func TestPartitionedDegradeMasksFailedAgent(t *testing.T) {
	const slots, failAt, victim = 16, 4, 1
	in, conns, cleanup := buildSystem(t, slots)
	defer cleanup()
	var down atomic.Bool
	conns[victim] = failFromConn{inner: conns[victim], down: &down}
	ck := invariant.NewChecker(in.Cluster, invariant.CheckerOptions{})
	var buf bytes.Buffer
	pl, err := New(in.Cluster, conns, Config{
		Partitions:   3,
		NewScheduler: grefarFactory(in),
		Policy:       controller.Degrade,
		SuspectAfter: 1,
		DeadAfter:    3,
		Observer:     telemetry.MultiObserver{ck, telemetry.NewJSONLObserver(&buf)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < slots; tt++ {
		if tt == failAt {
			down.Store(true)
		}
		if _, _, _, err := pl.RunSlot(tt, in.Workload.Arrivals(tt)); err != nil {
			t.Fatalf("degrade slot %d: %v", tt, err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Errorf("invariant violation in degraded partitioned run: %v", err)
	}
	if got := pl.Health()[victim]; got == controller.Healthy {
		t.Errorf("victim agent still Healthy after %d failed slots", slots-failAt)
	}
	events := bytes.Count(buf.Bytes(), []byte(`"degraded":[`))
	masked := bytes.Count(buf.Bytes(), []byte(`"degraded":[1]`))
	if masked == 0 {
		t.Errorf("no slot event masked agent %d (saw %d degraded fields)", victim, events)
	}
}

// TestNewValidation pins the constructor's error surface.
func TestNewValidation(t *testing.T) {
	in, conns, cleanup := buildSystem(t, 8)
	defer cleanup()
	fac := grefarFactory(in)
	if _, err := New(in.Cluster, conns, Config{Partitions: 0, NewScheduler: fac}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := New(in.Cluster, conns, Config{Partitions: in.Cluster.N() + 1, NewScheduler: fac}); err == nil {
		t.Error("more partitions than data centers accepted")
	}
	if _, err := New(in.Cluster, conns, Config{Partitions: 2}); err == nil {
		t.Error("nil scheduler factory accepted")
	}
	if _, err := New(in.Cluster, conns[:1], Config{Partitions: 1, NewScheduler: fac}); err == nil {
		t.Error("missing agent conns accepted")
	}
	pl, err := New(in.Cluster, conns, Config{Partitions: 2, NewScheduler: fac})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Partitions(); got != 2 {
		t.Errorf("Partitions() = %d, want 2", got)
	}
	seen := make(map[int]bool)
	for p := 0; p < 2; p++ {
		for _, i := range pl.Owned(p) {
			if seen[i] {
				t.Errorf("data center %d owned by two partitions", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != in.Cluster.N() {
		t.Errorf("ownership covers %d of %d data centers", len(seen), in.Cluster.N())
	}
}
